//===- tests/CampaignFabricTests.cpp - Sharded campaign fabric -----------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// The sharded, resumable campaign fabric (DESIGN.md Sec. 16): storage
// primitives (CRC framing, atomic publication, exclusive record logs), the
// JSON reader the store round-trips through, the work list and --cells
// grammar, the shard store's manifest/duplicate/torn-tail discipline, and
// the headline property — any partition of the work list across any number
// of workers, completed in any order, with duplicates, torn tails and
// crashes injected, merges back to the monolithic report byte for byte.
//
// The SIGKILL crash-injection path is exercised twice: in-process here via
// fork() + waitpid(), and end-to-end against the CLI binary by
// tests/CampaignResumeSmoke.cmake (cli.campaign_resume).
//
//===----------------------------------------------------------------------===//

#include "harness/Campaign.h"
#include "harness/Merge.h"
#include "harness/ShardStore.h"
#include "harness/WorkList.h"
#include "support/Json.h"
#include "support/ShardIo.h"

#include "gtest/gtest.h"

#include <sys/types.h>
#include <sys/wait.h>

#include <algorithm>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <random>
#include <sstream>
#include <unistd.h>

using namespace gpuwmm;

namespace {

/// A fresh campaign directory per test, removed on teardown. The path does
/// not exist on entry — ShardStore::open creates it, which is itself part
/// of the contract under test.
struct TempCampaignDir {
  std::filesystem::path Path;

  TempCampaignDir() {
    const auto *Info = ::testing::UnitTest::GetInstance()->current_test_info();
    Path = std::filesystem::path(::testing::TempDir()) /
           (std::string("gpuwmm-") + Info->test_suite_name() + "-" +
            Info->name());
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  ~TempCampaignDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  std::string str() const { return Path.string(); }
};

/// The fabric test grid: small enough for a property-test loop, but with
/// both cell kinds, a stressed and an unstressed environment, and the
/// oracle on — every field the shard records carry is non-trivial.
harness::CampaignConfig fabricGrid() {
  harness::CampaignConfig Config;
  Config.Chips = {sim::ChipProfile::lookup("titan")};
  Config.Envs = {{stress::StressKind::None, false},
                 {stress::StressKind::Sys, true}};
  Config.Apps = {apps::AppKind::CbeDot, apps::AppKind::SdkRedNf};
  Config.LitmusTests = {litmus::findCatalogProgram("MP")};
  Config.Runs = 6;
  Config.Seed = 3;
  Config.OracleEvery = 1;
  return Config;
}

std::string reportJson(const harness::CampaignReport &Report) {
  std::ostringstream OS;
  harness::writeCampaignJson(Report, OS);
  return OS.str();
}

std::string monolithicJson(const harness::CampaignConfig &Config) {
  return reportJson(harness::runCampaign(Config));
}

/// Runs one fabric worker over \p Selection (all cells when empty).
harness::FabricOutcome runWorker(const harness::CampaignConfig &Config,
                                 const std::string &Dir,
                                 const std::vector<size_t> &Selection = {},
                                 bool Resume = false) {
  harness::FabricOptions Opts;
  Opts.Dir = Dir;
  Opts.Resume = Resume;
  if (!Selection.empty())
    Opts.Selection = &Selection;
  harness::FabricOutcome Out;
  std::string Err;
  EXPECT_TRUE(harness::runCampaignFabric(Config, Opts, nullptr, Out, &Err))
      << Err;
  return Out;
}

std::string mergedJson(const std::string &Dir,
                       harness::MergeStats *StatsOut = nullptr) {
  harness::CampaignReport Report;
  harness::MergeStats Stats;
  std::string Err;
  EXPECT_TRUE(harness::mergeCampaignShards(Dir, Report, Stats, &Err)) << Err;
  if (StatsOut)
    *StatsOut = Stats;
  return reportJson(Report);
}

//===----------------------------------------------------------------------===//
// ShardIo: CRC framing, torn tails, atomic writes, exclusive logs
//===----------------------------------------------------------------------===//

TEST(CampaignShardIoTest, Crc32MatchesStandardCheckValue) {
  // The canonical CRC-32 check value: any polynomial/reflection mistake
  // would change stored frames and break cross-version shard reads.
  EXPECT_EQ(crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(crc32(""), 0u);
}

TEST(CampaignShardIoTest, FrameRoundTrip) {
  const std::vector<std::string> Payloads = {"{\"a\": 1}", "", "x",
                                             std::string(4096, 'z')};
  std::string Log;
  for (const std::string &P : Payloads)
    Log += frameRecord(P);
  const FramedRecords R = parseFramedRecords(Log);
  EXPECT_FALSE(R.TornTail);
  EXPECT_EQ(R.ValidBytes, Log.size());
  EXPECT_EQ(R.Payloads, Payloads);
}

TEST(CampaignShardIoTest, TornTailIsTruncatedNotFatal) {
  const std::string Whole = frameRecord("{\"ok\": true}");
  // Every strict prefix of an appended record is a torn tail; the records
  // before it must survive untouched.
  for (size_t Cut = 1; Cut != Whole.size(); ++Cut) {
    const std::string Log = Whole + Whole.substr(0, Cut);
    const FramedRecords R = parseFramedRecords(Log);
    EXPECT_TRUE(R.TornTail) << "cut at " << Cut;
    EXPECT_EQ(R.ValidBytes, Whole.size());
    ASSERT_EQ(R.Payloads.size(), 1u);
    EXPECT_EQ(R.Payloads[0], "{\"ok\": true}");
  }
}

TEST(CampaignShardIoTest, CorruptCrcAndGarbageAreTornTails) {
  std::string Bad = frameRecord("payload");
  Bad[0] = Bad[0] == '0' ? '1' : '0'; // Flip a CRC digit.
  EXPECT_TRUE(parseFramedRecords(Bad).TornTail);
  EXPECT_EQ(parseFramedRecords(Bad).ValidBytes, 0u);
  EXPECT_TRUE(parseFramedRecords("not a frame at all\n").TornTail);
  // Payload tampering (same length, wrong bytes) must not pass the CRC.
  std::string Tampered = frameRecord("{\"errors\": 1}");
  Tampered[Tampered.size() - 3] = '9';
  EXPECT_TRUE(parseFramedRecords(Tampered).TornTail);
}

TEST(CampaignShardIoTest, AtomicWritePublishesAndReplaces) {
  TempCampaignDir Dir;
  std::filesystem::create_directories(Dir.Path);
  const std::string Path = (Dir.Path / "manifest.json").string();
  std::string Err;
  ASSERT_TRUE(atomicWriteFile(Path, "first", &Err)) << Err;
  std::string Back;
  ASSERT_TRUE(readFile(Path, Back, &Err)) << Err;
  EXPECT_EQ(Back, "first");
  ASSERT_TRUE(atomicWriteFile(Path, "second", &Err)) << Err;
  ASSERT_TRUE(readFile(Path, Back, &Err)) << Err;
  EXPECT_EQ(Back, "second");
  // No temp file left behind.
  EXPECT_FALSE(std::filesystem::exists(Path + ".tmp"));
}

TEST(CampaignShardIoTest, RecordLogClaimsExclusively) {
  TempCampaignDir Dir;
  std::filesystem::create_directories(Dir.Path);
  const std::string Path = (Dir.Path / "shard-0000.jsonl").string();
  std::string Err;
  bool Exists = false;
  auto First = RecordLog::createExclusive(Path, &Err, &Exists);
  ASSERT_TRUE(First.has_value()) << Err;
  // A second claimant loses with Exists set — the shard-name allocator's
  // arbitration signal — not a generic error.
  auto Second = RecordLog::createExclusive(Path, &Err, &Exists);
  EXPECT_FALSE(Second.has_value());
  EXPECT_TRUE(Exists);

  ASSERT_TRUE(First->append("one", &Err)) << Err;
  ASSERT_TRUE(First->append("two", &Err)) << Err;
  std::string Text;
  ASSERT_TRUE(readFile(Path, Text, &Err)) << Err;
  const FramedRecords R = parseFramedRecords(Text);
  EXPECT_FALSE(R.TornTail);
  EXPECT_EQ(R.Payloads, (std::vector<std::string>{"one", "two"}));
}

//===----------------------------------------------------------------------===//
// Json: the reader the fabric round-trips its own artifacts through
//===----------------------------------------------------------------------===//

TEST(CampaignJsonTest, ParsesScalarsAndStructure) {
  std::string Err;
  const auto Doc = parseJson(
      " {\"n\": null, \"t\": true, \"f\": false, \"s\": \"a\\\"b\\\\c\\n\", "
      "\"a\": [1, 2.5, -3e2], \"o\": {\"inner\": 0}} ",
      &Err);
  ASSERT_TRUE(Doc.has_value()) << Err;
  ASSERT_TRUE(Doc->isObject());
  EXPECT_EQ(Doc->find("n")->kind(), JsonValue::Kind::Null);
  EXPECT_TRUE(Doc->find("t")->asBool());
  EXPECT_FALSE(Doc->find("f")->asBool());
  EXPECT_EQ(Doc->find("s")->asString(), "a\"b\\c\n");
  ASSERT_TRUE(Doc->find("a")->isArray());
  EXPECT_EQ(Doc->find("a")->items()[1].numberText(), "2.5");
  EXPECT_EQ(Doc->find("o")->find("inner")->asInt64(), 0);
  EXPECT_EQ(Doc->find("missing"), nullptr);
  // Member order is source order (manifests are byte-compared).
  EXPECT_EQ(Doc->members()[0].first, "n");
  EXPECT_EQ(Doc->members()[5].first, "o");
}

TEST(CampaignJsonTest, Uint64SeedsSurviveUnmangled) {
  // Seeds are full-width uint64s; a lossy trip through double would
  // corrupt them and break the merge's seed-scheme check.
  std::string Err;
  const auto Doc = parseJson("{\"seed\": 18446744073709551615}", &Err);
  ASSERT_TRUE(Doc.has_value()) << Err;
  EXPECT_EQ(Doc->find("seed")->asUInt64(), ~0ull);
  EXPECT_EQ(Doc->find("seed")->numberText(), "18446744073709551615");
}

TEST(CampaignJsonTest, RejectsMalformedInput) {
  for (const char *Bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\": 1} trailing", "+1",
        "\"unterminated", "{\"a\" 1}", "nul", "{\"a\": 1 \"b\": 2}"}) {
    std::string Err;
    EXPECT_FALSE(parseJson(Bad, &Err).has_value()) << Bad;
    EXPECT_FALSE(Err.empty()) << Bad;
  }
  // Depth-bomb: the parser must bail, not overflow the stack.
  std::string Deep(1000, '[');
  Deep += std::string(1000, ']');
  std::string Err;
  EXPECT_FALSE(parseJson(Deep, &Err).has_value());
}

TEST(CampaignJsonTest, EscapeRoundTripsThroughParser) {
  const std::string Nasty = "a\"b\\c\n\t\x01z";
  std::string Err;
  const auto Doc = parseJson("\"" + jsonEscape(Nasty) + "\"", &Err);
  ASSERT_TRUE(Doc.has_value()) << Err;
  EXPECT_EQ(Doc->asString(), Nasty);
}

//===----------------------------------------------------------------------===//
// WorkList: report-order layout, keys, canonical seeds, --cells grammar
//===----------------------------------------------------------------------===//

TEST(CampaignWorkListTest, LayoutMatchesReportOrder) {
  const auto Config = fabricGrid();
  const auto Work = harness::buildWorkList(Config);
  // App cells chip-major over the selection, then litmus cells — the
  // exact order writeCampaignJson renders, which is what lets the merge
  // fill cells by work-list position.
  ASSERT_EQ(Work.size(), 5u);
  EXPECT_EQ(harness::workItemKey(Config, Work[0]), "app/titan/no-str-/cbe-dot");
  EXPECT_EQ(harness::workItemKey(Config, Work[1]),
            "app/titan/no-str-/sdk-red-nf");
  EXPECT_EQ(harness::workItemKey(Config, Work[2]),
            "app/titan/sys-str+/cbe-dot");
  EXPECT_EQ(harness::workItemKey(Config, Work[3]),
            "app/titan/sys-str+/sdk-red-nf");
  EXPECT_EQ(harness::workItemKey(Config, Work[4]), "litmus/titan/MP");
}

TEST(CampaignWorkListTest, SeedsAreCanonical) {
  const auto Config = fabricGrid();
  const auto Work = harness::buildWorkList(Config);
  for (const auto &Item : Work) {
    if (Item.ItemKind == harness::CampaignWorkItem::Kind::Litmus)
      EXPECT_EQ(harness::workItemSeed(Config, Item),
                harness::campaignLitmusSeed(
                    Config.Seed, *Config.Chips[Item.ChipIdx],
                    *Config.LitmusTests[Item.TestIdx]));
    else
      EXPECT_EQ(harness::workItemSeed(Config, Item),
                harness::campaignCellSeed(
                    Config.Seed, *Config.Chips[Item.ChipIdx],
                    Config.Envs[Item.EnvIdx], Config.Apps[Item.AppIdx]));
  }
}

TEST(CampaignCellSpecTest, ParsesIndicesAndRanges) {
  std::string Err;
  EXPECT_EQ(harness::parseCellSelection("0", 5, Err),
            (std::vector<size_t>{0}));
  EXPECT_EQ(harness::parseCellSelection("4,0,2", 5, Err),
            (std::vector<size_t>{0, 2, 4}));
  EXPECT_EQ(harness::parseCellSelection("1..3", 5, Err),
            (std::vector<size_t>{1, 2, 3}));
  EXPECT_EQ(harness::parseCellSelection("2..2", 5, Err),
            (std::vector<size_t>{2}));
  // Overlaps and duplicates collapse: the result is a sorted set.
  EXPECT_EQ(harness::parseCellSelection("0..2,1..3,3", 5, Err),
            (std::vector<size_t>{0, 1, 2, 3}));
  EXPECT_EQ(harness::parseCellSelection("0..4", 5, Err),
            (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(CampaignCellSpecTest, RejectsMalformedSpecs) {
  // The getPositiveInt convention: every malformed item is rejected with
  // one clear message naming the offending token; callers exit 2.
  for (const char *Bad : {"", ",", "a", "-1", "1..", "..3", "..", "5..2",
                          "1..a", "0,,2", "5", "0..5", "1e2", " 1", "1 "}) {
    std::string Err;
    EXPECT_FALSE(harness::parseCellSelection(Bad, 5, Err).has_value())
        << "'" << Bad << "' should be rejected";
    EXPECT_NE(Err.find("--cells expects"), std::string::npos) << Err;
  }
  std::string Err;
  EXPECT_FALSE(
      harness::parseCellSelection("18446744073709551616", 5, Err).has_value());
}

//===----------------------------------------------------------------------===//
// ShardStore: record round-trip, manifest discipline, shard claiming
//===----------------------------------------------------------------------===//

harness::ShardRecord sampleAppRecord() {
  harness::ShardRecord R;
  R.Chip = "titan";
  R.Env = "sys-str+";
  R.App = "cbe-dot";
  R.Seed = 0xdeadbeefcafef00dull;
  R.Runs = 6;
  R.Errors = 2;
  R.Timeouts = 1;
  R.OracleChecked = 6;
  return R;
}

TEST(CampaignShardStoreTest, RecordJsonRoundTrips) {
  const harness::ShardRecord App = sampleAppRecord();
  std::string Err;
  auto Back = harness::ShardRecord::fromJson(App.toJson(), &Err);
  ASSERT_TRUE(Back.has_value()) << Err;
  EXPECT_EQ(*Back, App);
  EXPECT_EQ(Back->key(), "app/titan/sys-str+/cbe-dot");

  harness::ShardRecord Lit;
  Lit.IsLitmus = true;
  Lit.Chip = "k20";
  Lit.Test = "MP";
  Lit.Seed = ~0ull;
  Lit.Runs = 100;
  Lit.Weak = 17;
  Back = harness::ShardRecord::fromJson(Lit.toJson(), &Err);
  ASSERT_TRUE(Back.has_value()) << Err;
  EXPECT_EQ(*Back, Lit);
  EXPECT_EQ(Back->key(), "litmus/k20/MP");
}

TEST(CampaignShardStoreTest, RecordParserRejectsDamage) {
  for (const char *Bad :
       {"[]", "{\"kind\": \"app\"}", "{\"kind\": \"nope\", \"chip\": \"t\"}",
        "{\"kind\": \"litmus\", \"chip\": \"k20\", \"test\": \"MP\", "
        "\"seed\": 1, \"runs\": -1, \"weak\": 0, \"oracle_checked\": 0, "
        "\"oracle_violations\": 0}",
        "not json"}) {
    std::string Err;
    EXPECT_FALSE(harness::ShardRecord::fromJson(Bad, &Err).has_value())
        << Bad;
    EXPECT_FALSE(Err.empty());
  }
}

TEST(CampaignShardStoreTest, ManifestRoundTripsThroughParser) {
  const auto Config = fabricGrid();
  const std::string Manifest = harness::campaignManifestJson(Config);
  harness::CampaignConfig Back;
  std::string Err;
  ASSERT_TRUE(harness::parseCampaignManifest(Manifest, Back, &Err)) << Err;
  // Byte-stable round trip: re-rendering the parsed config reproduces the
  // manifest exactly, which is what makes "same campaign" a byte compare.
  EXPECT_EQ(harness::campaignManifestJson(Back), Manifest);
  EXPECT_EQ(Back.Runs, Config.Runs);
  EXPECT_EQ(Back.Seed, Config.Seed);
  EXPECT_EQ(Back.OracleEvery, Config.OracleEvery);
  ASSERT_EQ(Back.LitmusTests.size(), 1u);
  EXPECT_EQ(Back.LitmusTests[0], Config.LitmusTests[0]);
}

TEST(CampaignShardStoreTest, OpenRefusesForeignManifest) {
  TempCampaignDir Dir;
  auto Config = fabricGrid();
  std::string Err;
  ASSERT_TRUE(harness::ShardStore::open(Dir.str(), Config, &Err).has_value())
      << Err;
  // Any config drift — here the seed — must refuse to join the store.
  Config.Seed = 4;
  EXPECT_FALSE(
      harness::ShardStore::open(Dir.str(), Config, &Err).has_value());
  EXPECT_NE(Err.find("describes a different campaign"), std::string::npos)
      << Err;
}

TEST(CampaignShardStoreTest, WorkersClaimDistinctShards) {
  TempCampaignDir Dir;
  const auto Config = fabricGrid();
  std::string Err;
  auto A = harness::ShardStore::open(Dir.str(), Config, &Err);
  auto B = harness::ShardStore::open(Dir.str(), Config, &Err);
  ASSERT_TRUE(A.has_value() && B.has_value()) << Err;
  ASSERT_TRUE(A->append(sampleAppRecord(), &Err)) << Err;
  ASSERT_TRUE(B->append(sampleAppRecord(), &Err)) << Err;
  EXPECT_EQ(A->shardPath(), Dir.str() + "/shard-0000.jsonl");
  EXPECT_EQ(B->shardPath(), Dir.str() + "/shard-0001.jsonl");
}

TEST(CampaignShardStoreTest, ConflictingDuplicateIsCorruption) {
  TempCampaignDir Dir;
  const auto Config = fabricGrid();
  std::string Err;
  auto A = harness::ShardStore::open(Dir.str(), Config, &Err);
  auto B = harness::ShardStore::open(Dir.str(), Config, &Err);
  ASSERT_TRUE(A.has_value() && B.has_value()) << Err;
  harness::ShardRecord R = sampleAppRecord();
  ASSERT_TRUE(A->append(R, &Err)) << Err;
  R.Errors += 1; // Same cell identity, different counts.
  ASSERT_TRUE(B->append(R, &Err)) << Err;
  harness::LoadedShards Loaded;
  EXPECT_FALSE(harness::loadCampaignShards(Dir.str(), Loaded, &Err));
  EXPECT_NE(Err.find("conflicting duplicate record"), std::string::npos)
      << Err;
}

//===----------------------------------------------------------------------===//
// Merge: random partitions, shuffled arrival, dupes, torn tails
//===----------------------------------------------------------------------===//

TEST(CampaignMergeTest, RandomPartitionsMergeByteIdentically) {
  // The headline property: partition the work list across 1..4 workers
  // uniformly at random, shuffle each worker's completion order and the
  // workers' arrival order, and the merged report must equal the
  // monolithic one byte for byte — every trial, at a pinned seed.
  const auto Config = fabricGrid();
  const std::string Mono = monolithicJson(Config);
  const size_t NumCells = harness::buildWorkList(Config).size();
  std::mt19937 Rand(20260808);
  for (int Trial = 0; Trial != 6; ++Trial) {
    TempCampaignDir Dir;
    const unsigned Workers = 1 + Rand() % 4;
    std::vector<std::vector<size_t>> Stripes(Workers);
    for (size_t Cell = 0; Cell != NumCells; ++Cell)
      Stripes[Rand() % Workers].push_back(Cell);
    for (auto &Stripe : Stripes)
      std::shuffle(Stripe.begin(), Stripe.end(), Rand);
    std::shuffle(Stripes.begin(), Stripes.end(), Rand);
    unsigned Completed = 0;
    for (const auto &Stripe : Stripes) {
      if (Stripe.empty())
        continue;
      Completed += runWorker(Config, Dir.str(), Stripe).Completed;
    }
    EXPECT_EQ(Completed, NumCells);
    harness::MergeStats Stats;
    EXPECT_EQ(mergedJson(Dir.str(), &Stats), Mono) << "trial " << Trial;
    EXPECT_EQ(Stats.CellsMerged, NumCells);
    EXPECT_EQ(Stats.Duplicates, 0u);
    EXPECT_EQ(Stats.TornShards, 0u);
  }
}

TEST(CampaignMergeTest, OverlappingStripesDedupeByIdentity) {
  // Two workers racing overlapping stripes produce byte-equal duplicate
  // records; the merge dedupes them and the report is untouched.
  const auto Config = fabricGrid();
  TempCampaignDir Dir;
  runWorker(Config, Dir.str(), {0, 1, 2, 4});
  runWorker(Config, Dir.str(), {2, 3, 4});
  harness::MergeStats Stats;
  EXPECT_EQ(mergedJson(Dir.str(), &Stats), monolithicJson(Config));
  EXPECT_EQ(Stats.Duplicates, 2u);
  EXPECT_EQ(Stats.ShardFiles, 2u);
}

TEST(CampaignMergeTest, TornTailIsTruncatedWithWarning) {
  const auto Config = fabricGrid();
  TempCampaignDir Dir;
  const auto Out = runWorker(Config, Dir.str());
  // Simulate a crash mid-append of a straggler: garbage after the last
  // durable record. The merge must warn, truncate, and still match.
  {
    std::ofstream OS(Out.ShardPath, std::ios::app | std::ios::binary);
    OS << "deadbeef:{\"kind\": \"app\", \"chip\": \"tit";
  }
  harness::MergeStats Stats;
  EXPECT_EQ(mergedJson(Dir.str(), &Stats), monolithicJson(Config));
  EXPECT_EQ(Stats.TornShards, 1u);
  ASSERT_EQ(Stats.Warnings.size(), 1u);
  EXPECT_NE(Stats.Warnings[0].find("torn tail"), std::string::npos);
}

TEST(CampaignMergeTest, IncompleteStoreNamesMissingCellsAndFails) {
  const auto Config = fabricGrid();
  TempCampaignDir Dir;
  runWorker(Config, Dir.str(), {0, 3});
  harness::CampaignReport Report;
  harness::MergeStats Stats;
  std::string Err;
  EXPECT_FALSE(harness::mergeCampaignShards(Dir.str(), Report, Stats, &Err));
  // "Resume me", not "malformed input": the caller maps this to exit 1.
  EXPECT_EQ(Stats.MissingCells.size(), 3u);
  EXPECT_NE(Err.find("--resume"), std::string::npos) << Err;
}

TEST(CampaignMergeTest, RecordContradictingManifestIsRejected) {
  // A record whose derived seed disagrees with the manifest's scheme is
  // from another campaign (or another seed-derivation version) — merging
  // its counts would be silent corruption.
  const auto Config = fabricGrid();
  TempCampaignDir Dir;
  runWorker(Config, Dir.str(), {1, 2, 3, 4});
  const auto Work = harness::buildWorkList(Config);
  harness::ShardRecord Fake;
  Fake.Chip = "titan";
  Fake.Env = "no-str-";
  Fake.App = "cbe-dot"; // Key of work item 0, but a wrong seed.
  Fake.Seed = harness::workItemSeed(Config, Work[0]) + 1;
  Fake.Runs = Config.Runs;
  std::string Err;
  auto Store = harness::ShardStore::open(Dir.str(), Config, &Err);
  ASSERT_TRUE(Store.has_value()) << Err;
  ASSERT_TRUE(Store->append(Fake, &Err)) << Err;
  harness::CampaignReport Report;
  harness::MergeStats Stats;
  EXPECT_FALSE(harness::mergeCampaignShards(Dir.str(), Report, Stats, &Err));
  EXPECT_NE(Err.find("contradicts the manifest"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// Resume and crash injection
//===----------------------------------------------------------------------===//

TEST(CampaignResumeTest, ResumeSkipsDurableCellsOnly) {
  const auto Config = fabricGrid();
  TempCampaignDir Dir;
  runWorker(Config, Dir.str(), {0, 2});
  const auto Out = runWorker(Config, Dir.str(), {}, /*Resume=*/true);
  EXPECT_EQ(Out.Skipped, 2u);
  EXPECT_EQ(Out.Completed, 3u);
  EXPECT_EQ(mergedJson(Dir.str()), monolithicJson(Config));
  // Resuming a complete store is a no-op, and merging stays idempotent.
  const auto Again = runWorker(Config, Dir.str(), {}, /*Resume=*/true);
  EXPECT_EQ(Again.Skipped, 5u);
  EXPECT_EQ(Again.Completed, 0u);
  EXPECT_EQ(mergedJson(Dir.str()), monolithicJson(Config));
}

TEST(CampaignResumeTest, ResumeRerunsTornCell) {
  const auto Config = fabricGrid();
  TempCampaignDir Dir;
  const auto Out = runWorker(Config, Dir.str());
  // Tear the final record: truncate the shard mid-frame, as a crash
  // between write() and fsync() could leave it.
  std::string Text, Err;
  ASSERT_TRUE(readFile(Out.ShardPath, Text, &Err)) << Err;
  const FramedRecords Before = parseFramedRecords(Text);
  ASSERT_EQ(Before.Payloads.size(), 5u);
  std::filesystem::resize_file(Out.ShardPath, Text.size() - 10);
  const auto Resumed = runWorker(Config, Dir.str(), {}, /*Resume=*/true);
  EXPECT_EQ(Resumed.Skipped, 4u);
  EXPECT_EQ(Resumed.Completed, 1u);
  ASSERT_EQ(Resumed.Warnings.size(), 1u);
  EXPECT_NE(Resumed.Warnings[0].find("torn tail"), std::string::npos);
  EXPECT_EQ(mergedJson(Dir.str()), monolithicJson(Config));
}

TEST(CampaignResumeTest, SigkillAfterNthAppendResumesByteIdentically) {
  // The crash-injection hook itself, in-process: a forked child SIGKILLs
  // itself right after its 2nd durable append; the parent verifies the
  // kill, resumes, and the merged report matches the monolithic run.
  // (The CLI spelling of the same scenario — GPUWMM_CAMPAIGN_CRASH_AFTER
  // against the gpuwmm binary — is cli.campaign_resume.)
  const auto Config = fabricGrid();
  TempCampaignDir Dir;
  const pid_t Child = fork();
  ASSERT_GE(Child, 0);
  if (Child == 0) {
    harness::FabricOptions Opts;
    Opts.Dir = Dir.str();
    Opts.CrashAfterAppends = 2;
    harness::FabricOutcome Out;
    harness::runCampaignFabric(Config, Opts, nullptr, Out, nullptr);
    _exit(0); // Unreachable when the hook fires.
  }
  int Status = 0;
  ASSERT_EQ(waitpid(Child, &Status, 0), Child);
  ASSERT_TRUE(WIFSIGNALED(Status));
  EXPECT_EQ(WTERMSIG(Status), SIGKILL);

  // The incomplete store must refuse to merge...
  harness::CampaignReport Report;
  harness::MergeStats Stats;
  std::string Err;
  EXPECT_FALSE(harness::mergeCampaignShards(Dir.str(), Report, Stats, &Err));
  EXPECT_EQ(Stats.MissingCells.size(), 3u);
  // ...and the two pre-crash records must already be durable and clean.
  harness::LoadedShards Loaded;
  ASSERT_TRUE(harness::loadCampaignShards(Dir.str(), Loaded, &Err)) << Err;
  EXPECT_EQ(Loaded.Records.size(), 2u);
  EXPECT_EQ(Loaded.TornShards, 0u);

  const auto Resumed = runWorker(Config, Dir.str(), {}, /*Resume=*/true);
  EXPECT_EQ(Resumed.Skipped, 2u);
  EXPECT_EQ(Resumed.Completed, 3u);
  EXPECT_EQ(mergedJson(Dir.str()), monolithicJson(Config));
}

TEST(CampaignResumeTest, FabricMatchesMonolithWithPoolAndWithout) {
  // The per-cell runners under a pool must equal the monolithic flattened
  // loop — the determinism contract (DESIGN.md Sec. 11) extended to the
  // fabric path.
  const auto Config = fabricGrid();
  const std::string Mono = monolithicJson(Config);
  {
    TempCampaignDir Dir;
    ThreadPool Pool(8);
    harness::FabricOptions Opts;
    Opts.Dir = Dir.str();
    harness::FabricOutcome Out;
    std::string Err;
    ASSERT_TRUE(harness::runCampaignFabric(Config, Opts, &Pool, Out, &Err))
        << Err;
    EXPECT_EQ(mergedJson(Dir.str()), Mono);
  }
  {
    TempCampaignDir Dir;
    runWorker(Config, Dir.str());
    EXPECT_EQ(mergedJson(Dir.str()), Mono);
  }
}

TEST(CampaignResumeTest, DuplicateSelectionEntriesAreRefused) {
  // A grid whose selections repeat an entry (e.g. --chips=titan,titan)
  // would collapse distinct cells onto one identity key; the fabric must
  // refuse it up front rather than merge garbage later.
  auto Config = fabricGrid();
  Config.Chips.push_back(Config.Chips[0]);
  TempCampaignDir Dir;
  harness::FabricOptions Opts;
  Opts.Dir = Dir.str();
  harness::FabricOutcome Out;
  std::string Err;
  EXPECT_FALSE(harness::runCampaignFabric(Config, Opts, nullptr, Out, &Err));
  EXPECT_FALSE(Err.empty());
}

} // namespace
