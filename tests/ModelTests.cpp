//===- tests/ModelTests.cpp - Trace seam + axiomatic oracle tests -------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// Covers the event-trace instrumentation layer (sim/TraceSink.h) and the
// axiomatic consistency checker (model/ConsistencyChecker.h): tracing is
// pure observation (results and the zero-allocation steady state are
// unchanged), hand-built traces trip each axiom, and — the differential
// oracle — the checker's SC-vs-weak classification agrees with the
// operational interpreter on every catalog litmus program at pinned seeds.
//
//===----------------------------------------------------------------------===//

#include "apps/Application.h"
#include "fuzz/Shrink.h"
#include "harness/Campaign.h"
#include "litmus/Format.h"
#include "litmus/Litmus.h"
#include "model/ConsistencyChecker.h"
#include "sim/Device.h"
#include "sim/ThreadContext.h"
#include "stress/Environment.h"

#include <gtest/gtest.h>

using namespace gpuwmm;
using model::CheckResult;
using model::ConsistencyChecker;
using sim::LoadSource;
using sim::TraceEvent;
using sim::TraceEventKind;

namespace {

const sim::ChipProfile &titan() {
  const sim::ChipProfile *Chip = sim::ChipProfile::lookup("titan");
  EXPECT_NE(Chip, nullptr);
  return *Chip;
}

/// Stressed per-bank scan (as `litmus --stress`), tracing every run and
/// cross-checking the checker's verdict against the interpreter's.
struct OracleTally {
  unsigned Checked = 0;
  unsigned Weak = 0;
  unsigned Disagreements = 0;
  unsigned AxiomViolations = 0;
};

OracleTally crossCheck(const litmus::Program &P, unsigned Runs,
                       uint64_t Seed, bool Fenced = false) {
  const sim::ChipProfile &Chip = titan();
  litmus::LitmusRunner Runner(Chip, Seed);
  litmus::LitmusRunner::RunOpts Opts;
  Opts.WithFences = Fenced;
  Opts.Trace = true;
  const auto Tuned = stress::TunedStressParams::paperDefaults(Chip);
  ConsistencyChecker Checker;
  OracleTally T;
  for (unsigned Region = 0; Region != Chip.NumBanks; ++Region) {
    const auto S = litmus::LitmusRunner::MicroStress::at(
        Tuned.Seq, Region * Tuned.PatchWords);
    for (unsigned I = 0; I != Runs; ++I) {
      const bool Forbidden =
          Runner.runOnce(P, 2 * Chip.PatchSizeWords, S, Opts);
      const CheckResult R = Checker.check(Runner.trace());
      ++T.Checked;
      T.Weak += Forbidden;
      T.AxiomViolations += !R.AxiomsOk;
      if (!R.AxiomsOk || R.weak() != Forbidden)
        ++T.Disagreements;
    }
  }
  return T;
}

} // namespace

//===----------------------------------------------------------------------===//
// The trace seam
//===----------------------------------------------------------------------===//

TEST(TraceTest, OffByDefaultAndEmpty) {
  litmus::LitmusRunner Runner(titan(), 1);
  (void)Runner.runOnce(litmus::catalogProgram(litmus::LitmusKind::MP), 64,
                       litmus::LitmusRunner::MicroStress::none());
  EXPECT_TRUE(Runner.trace().empty());
}

TEST(TraceTest, RecordsLitmusEvents) {
  litmus::LitmusRunner Runner(titan(), 1);
  litmus::LitmusRunner::RunOpts Opts;
  Opts.Trace = true;
  (void)Runner.runOnce(litmus::catalogProgram(litmus::LitmusKind::MP), 64,
                       litmus::LitmusRunner::MicroStress::none(), Opts);
  const auto &Events = Runner.trace().events();
  ASSERT_FALSE(Events.empty());
  unsigned Issues = 0, Drains = 0, Binds = 0;
  for (const TraceEvent &E : Events) {
    Issues += E.Kind == TraceEventKind::StoreIssue;
    Drains += E.Kind == TraceEventKind::StoreDrain;
    Binds += E.Kind == TraceEventKind::LoadBind;
  }
  // MP: 2 communication stores + 2 register writebacks, each drained
  // exactly once by the end of the run, and 2 loads.
  EXPECT_EQ(Issues, 4u);
  EXPECT_EQ(Drains, 4u);
  EXPECT_EQ(Binds, 2u);
}

TEST(TraceTest, TracingDoesNotPerturbResults) {
  // Two runners, same seed: one traced, one not. Weak sequences must be
  // bit-identical — tracing observes, it cannot steer.
  const litmus::Program &P = litmus::catalogProgram(litmus::LitmusKind::SB);
  const auto Tuned = stress::TunedStressParams::paperDefaults(titan());
  const auto S = litmus::LitmusRunner::MicroStress::at(Tuned.Seq, 0);
  litmus::LitmusRunner Plain(titan(), 42), Traced(titan(), 42);
  litmus::LitmusRunner::RunOpts TraceOpts;
  TraceOpts.Trace = true;
  for (unsigned I = 0; I != 300; ++I) {
    const bool A = Plain.runOnce(P, 128, S);
    const bool B = Traced.runOnce(P, 128, S, TraceOpts);
    ASSERT_EQ(A, B) << "run " << I;
  }
}

TEST(TraceTest, SteadyStateTraceIsAllocationFree) {
  // Identical reruns on one context: after the first traced run the
  // recorder's backing buffer is warm, so rerunning the same seed must
  // reuse it (same capacity, same storage address) while recording the
  // same events — the PR 3 reuse contract extended to the recorder.
  sim::ExecutionContext Ctx;
  Ctx.requestTracing(true);
  const auto RunOne = [&] {
    sim::Device Dev(Ctx, titan(), /*Seed=*/77);
    const sim::Addr Buf = Dev.alloc(64);
    Dev.run({2, 32}, [&](sim::ThreadContext &TC) -> sim::Kernel {
      co_await TC.st(Buf + TC.globalId(), TC.globalId() + 1);
      (void)co_await TC.ld(Buf + TC.globalId());
    });
  };
  RunOne();
  const std::vector<TraceEvent> First = Ctx.trace().events();
  ASSERT_FALSE(First.empty());
  const size_t Cap = Ctx.trace().capacity();
  const TraceEvent *Data = First.empty() ? nullptr
                                         : Ctx.trace().events().data();
  RunOne();
  EXPECT_EQ(Ctx.trace().capacity(), Cap);
  EXPECT_EQ(Ctx.trace().events().data(), Data);
  EXPECT_EQ(Ctx.trace().size(), First.size());
}

TEST(TraceTest, LeaseDisarmsTracing) {
  // A context returned to the pool must come back with tracing off.
  sim::ExecutionContext *Raw = nullptr;
  {
    sim::ContextLease Lease;
    Raw = &Lease.get();
    Lease.get().requestTracing(true);
  }
  {
    sim::ContextLease Lease;
    if (&Lease.get() == Raw) {
      EXPECT_FALSE(Lease.get().tracingRequested());
    }
  }
}

//===----------------------------------------------------------------------===//
// Checker unit tests over hand-built traces
//===----------------------------------------------------------------------===//

namespace {

TraceEvent storeIssue(unsigned Tid, unsigned Bank, sim::Addr A, sim::Word V,
                      uint64_t Id) {
  return {TraceEventKind::StoreIssue, LoadSource::Memory, false, Tid, Tid,
          Bank, A, V, Id, 0};
}
TraceEvent storeDrain(unsigned Tid, unsigned Bank, sim::Addr A, sim::Word V,
                      uint64_t Id, bool Applied = true) {
  return {TraceEventKind::StoreDrain, LoadSource::Memory, Applied, Tid, Tid,
          Bank, A, V, Id, 0};
}
TraceEvent loadBind(unsigned Tid, unsigned Bank, sim::Addr A, sim::Word V) {
  return {TraceEventKind::LoadBind, LoadSource::Memory, false, Tid, Tid,
          Bank, A, V, 0, 0};
}

} // namespace

TEST(CheckerTest, EmptyTraceIsSc) {
  ConsistencyChecker Checker;
  const CheckResult R = Checker.check(std::vector<TraceEvent>{});
  EXPECT_TRUE(R.AxiomsOk);
  EXPECT_TRUE(R.Sc);
}

TEST(CheckerTest, ClassifiesWeakMpTrace) {
  // The canonical MP weak run: y's store drains first, the reader sees
  // y = 1 but x = 0, x drains last.
  const std::vector<TraceEvent> Events = {
      storeIssue(0, /*Bank=*/0, /*A=*/0, 1, 1), // st x
      storeIssue(0, /*Bank=*/1, /*A=*/8, 1, 2), // st y
      storeDrain(0, 1, 8, 1, 2),                // y visible first
      loadBind(1, 1, 8, 1),                     // r0 = y = 1
      loadBind(1, 0, 0, 0),                     // r1 = x = 0
      storeDrain(0, 0, 0, 1, 1),                // x visible last
  };
  ConsistencyChecker Checker;
  const CheckResult R = Checker.check(Events);
  EXPECT_TRUE(R.AxiomsOk) << R.AxiomViolation;
  EXPECT_FALSE(R.Sc);
  EXPECT_EQ(R.Cycle.size(), 4u);
  // The decisive pair is the from-read edge: the x-read against x's store.
  EXPECT_EQ(R.ViolatingA, 4u);
  EXPECT_EQ(R.ViolatingB, 0u);
}

TEST(CheckerTest, ClassifiesScMpTrace) {
  // Same shape, but x drains before the reader looks: both loads read the
  // writer's values — a sequential interleaving explains it.
  const std::vector<TraceEvent> Events = {
      storeIssue(0, 0, 0, 1, 1),
      storeIssue(0, 1, 8, 1, 2),
      storeDrain(0, 0, 0, 1, 1),
      storeDrain(0, 1, 8, 1, 2),
      loadBind(1, 1, 8, 1),
      loadBind(1, 0, 0, 1),
  };
  ConsistencyChecker Checker;
  const CheckResult R = Checker.check(Events);
  EXPECT_TRUE(R.AxiomsOk) << R.AxiomViolation;
  EXPECT_TRUE(R.Sc);
  EXPECT_TRUE(R.Cycle.empty());
}

TEST(CheckerTest, FlagsFifoViolation) {
  // Two same-bank stores by one thread draining in the wrong order.
  const std::vector<TraceEvent> Events = {
      storeIssue(0, 0, 0, 1, 1),
      storeIssue(0, 0, 1, 2, 2),
      storeDrain(0, 0, 1, 2, 2), // Should have been id 1 first.
      storeDrain(0, 0, 0, 1, 1),
  };
  ConsistencyChecker Checker;
  const CheckResult R = Checker.check(Events);
  EXPECT_FALSE(R.AxiomsOk);
  EXPECT_NE(R.AxiomViolation.find("FIFO"), std::string::npos)
      << R.AxiomViolation;
}

TEST(CheckerTest, FlagsFenceDrainViolation) {
  // A device fence completing while the thread still buffers a store.
  std::vector<TraceEvent> Events = {
      storeIssue(0, 0, 0, 1, 1),
      {TraceEventKind::FenceDevice, LoadSource::Memory, false, 0, 0, 0, 0,
       0, 0, 0},
      storeDrain(0, 0, 0, 1, 1),
  };
  ConsistencyChecker Checker;
  const CheckResult R = Checker.check(Events);
  EXPECT_FALSE(R.AxiomsOk);
  EXPECT_NE(R.AxiomViolation.find("fence-drain"), std::string::npos)
      << R.AxiomViolation;
}

TEST(CheckerTest, FlagsReadValueViolation) {
  // A load binding a value no write produced.
  const std::vector<TraceEvent> Events = {
      storeIssue(0, 0, 0, 1, 1),
      storeDrain(0, 0, 0, 1, 1),
      loadBind(1, 0, 0, 7),
  };
  ConsistencyChecker Checker;
  const CheckResult R = Checker.check(Events);
  EXPECT_FALSE(R.AxiomsOk);
  EXPECT_NE(R.AxiomViolation.find("read-value"), std::string::npos)
      << R.AxiomViolation;
}

TEST(CheckerTest, FlagsCoherenceViolation) {
  // A stale store (id 1) applied over a newer write (id 2).
  const std::vector<TraceEvent> Events = {
      storeIssue(0, 0, 0, 1, 1),
      storeIssue(1, 0, 0, 2, 2),
      storeDrain(1, 0, 0, 2, 2),
      storeDrain(0, 0, 0, 1, 1, /*Applied=*/true), // Must be dropped.
  };
  ConsistencyChecker Checker;
  const CheckResult R = Checker.check(Events);
  EXPECT_FALSE(R.AxiomsOk);
  EXPECT_NE(R.AxiomViolation.find("coherence"), std::string::npos)
      << R.AxiomViolation;
}

TEST(CheckerTest, AcceptsCoherenceDrop) {
  // The same trace with the stale drain correctly dropped: axioms hold,
  // and the final value is the newer write's.
  const std::vector<TraceEvent> Events = {
      storeIssue(0, 0, 0, 1, 1),
      storeIssue(1, 0, 0, 2, 2),
      storeDrain(1, 0, 0, 2, 2),
      storeDrain(0, 0, 0, 1, 1, /*Applied=*/false),
      loadBind(0, 0, 0, 2),
  };
  ConsistencyChecker Checker;
  const CheckResult R = Checker.check(Events);
  EXPECT_TRUE(R.AxiomsOk) << R.AxiomViolation;
  EXPECT_TRUE(R.Sc);
}

TEST(CheckerTest, FlagsSelfCoherenceViolation) {
  // A load binding from memory while its own bank still buffers a store.
  const std::vector<TraceEvent> Events = {
      storeIssue(0, 0, 0, 1, 1),
      loadBind(0, 0, 1, 0), // Same bank (different address): must drain.
      storeDrain(0, 0, 0, 1, 1),
  };
  ConsistencyChecker Checker;
  const CheckResult R = Checker.check(Events);
  EXPECT_FALSE(R.AxiomsOk);
  EXPECT_NE(R.AxiomViolation.find("self-coherence"), std::string::npos)
      << R.AxiomViolation;
}

TEST(CheckerTest, ExplanationRendersCycle) {
  const std::vector<TraceEvent> Events = {
      storeIssue(0, 0, 0, 1, 1),
      storeIssue(0, 1, 8, 1, 2),
      storeDrain(0, 1, 8, 1, 2),
      loadBind(1, 1, 8, 1),
      loadBind(1, 0, 0, 0),
      storeDrain(0, 0, 0, 1, 1),
  };
  ConsistencyChecker Checker;
  const CheckResult R = Checker.check(Events);
  ASSERT_FALSE(R.Sc);
  const model::AddrNamer Namer = [](sim::Addr A) {
    return std::string(A == 0 ? "x" : "y");
  };
  const std::string Text = model::renderExplanation(Events, R, Namer);
  EXPECT_NE(Text.find("--rf-->"), std::string::npos) << Text;
  EXPECT_NE(Text.find("--fr-->"), std::string::npos) << Text;
  EXPECT_NE(Text.find("store-issue y = 1"), std::string::npos) << Text;
  EXPECT_NE(Text.find("load-bind x = 0"), std::string::npos) << Text;
}

//===----------------------------------------------------------------------===//
// The differential oracle (checker vs operational interpreter)
//===----------------------------------------------------------------------===//

TEST(OracleTest, AgreesWithSimulatorOnAllCatalogPrograms) {
  // The acceptance pin: on every catalog program, per-run SC-vs-weak
  // classification agrees between the axiomatic checker and the
  // operational interpreter, at pinned seeds under tuned stress. S and
  // 2+2W never exhibit their weak outcome (the documented per-location-
  // coherence strengthening, DESIGN.md Sec. 6) — the checker concurs.
  unsigned TotalWeak = 0;
  for (const litmus::Program &P : litmus::catalog()) {
    const OracleTally T = crossCheck(P, /*Runs=*/40, /*Seed=*/42);
    EXPECT_EQ(T.Disagreements, 0u) << P.Name;
    EXPECT_EQ(T.AxiomViolations, 0u) << P.Name;
    if (P.Name == "S" || P.Name == "2+2W") {
      EXPECT_EQ(T.Weak, 0u) << P.Name;
    }
    TotalWeak += T.Weak;
  }
  // The oracle must actually have judged weak runs, not only SC ones.
  EXPECT_GT(TotalWeak, 0u);
}

TEST(OracleTest, FencedRunsStaySc) {
  for (litmus::LitmusKind K : litmus::AllLitmusKinds) {
    const OracleTally T = crossCheck(litmus::catalogProgram(K),
                                     /*Runs=*/25, /*Seed=*/7,
                                     /*Fenced=*/true);
    EXPECT_EQ(T.Disagreements, 0u) << litmus::litmusName(K);
    EXPECT_EQ(T.Weak, 0u) << litmus::litmusName(K);
  }
}

TEST(OracleTest, AppTracesSatisfyAxioms) {
  // Application runs exercise what litmus runs cannot: barriers, block
  // fences, overlay reads, spinlocks (failed CAS), multi-kernel launches.
  // The replay axioms must hold on every recorded run; SC classification
  // is deliberately not asserted (weak behaviour is the expected finding).
  const sim::ChipProfile &Chip = titan();
  const stress::Environment Env{stress::StressKind::Sys, true};
  const auto Tuned = stress::TunedStressParams::paperDefaults(Chip);
  ConsistencyChecker Checker;
  sim::ExecutionContext Ctx;
  Ctx.requestTracing(true);
  for (apps::AppKind App : {apps::AppKind::CbeDot, apps::AppKind::SdkRed,
                            apps::AppKind::CbeHt, apps::AppKind::CubScan}) {
    for (unsigned Run = 0; Run != 8; ++Run) {
      (void)apps::runApplicationOnce(Ctx, App, Chip, Env, Tuned,
                                     /*Policy=*/nullptr,
                                     Rng::deriveStream(11, Run));
      ASSERT_FALSE(Ctx.trace().empty());
      const CheckResult R = Checker.check(Ctx.trace());
      EXPECT_TRUE(R.AxiomsOk)
          << apps::appName(App) << " run " << Run << ": "
          << R.AxiomViolation << "\n"
          << model::renderExplanation(Ctx.trace().events(), R);
    }
  }
}

TEST(OracleTest, CampaignOracleSamplesAndStaysClean) {
  harness::CampaignConfig Config;
  Config.Chips = {&titan()};
  Config.Envs = {{stress::StressKind::Sys, true}};
  Config.Apps = {apps::AppKind::CbeDot};
  Config.LitmusTests = {litmus::findCatalogProgram("MP")};
  Config.Runs = 12;
  Config.Seed = 3;
  Config.OracleEvery = 4;
  const harness::CampaignReport Report = harness::runCampaign(Config);
  ASSERT_EQ(Report.Cells.size(), 1u);
  EXPECT_EQ(Report.Cells[0].OracleChecked, 3u); // Runs 0, 4, 8.
  EXPECT_EQ(Report.Cells[0].OracleViolations, 0u);
  ASSERT_EQ(Report.LitmusCells.size(), 1u);
  EXPECT_GT(Report.LitmusCells[0].OracleChecked, 0u);
  EXPECT_EQ(Report.LitmusCells[0].OracleViolations, 0u);

  // Counts must be identical with the oracle off (tracing observes only).
  harness::CampaignConfig Off = Config;
  Off.OracleEvery = 0;
  const harness::CampaignReport Plain = harness::runCampaign(Off);
  EXPECT_EQ(Plain.Cells[0].Result.Errors,
            Report.Cells[0].Result.Errors);
  EXPECT_EQ(Plain.LitmusCells[0].Weak, Report.LitmusCells[0].Weak);
}

//===----------------------------------------------------------------------===//
// Shrinking
//===----------------------------------------------------------------------===//

namespace {

const char *ReplayDemoText = R"(
litmus "replay demo"
locations data flag aux
init { flag = 9 }
jitter 8
thread 0 @ block 1 {
  add aux 3
  st data 5
  st flag 1
}
thread 1 @ block 0 {
  ld r0 flag
  ld r1 data
  fence
}
forbidden r0 != 9 /\ r0 != 0 /\ r1 = 0
)";

} // namespace

TEST(ShrinkTest, ReducesReplayDemoToTheWeakCore) {
  litmus::ParseError Err;
  std::optional<litmus::Program> P =
      litmus::parseLitmus(ReplayDemoText, Err);
  ASSERT_TRUE(P.has_value()) << Err.render("replay-demo");

  fuzz::ShrinkOptions Opts;
  Opts.Distance = 128;
  Opts.RunsPerAttempt = 150;
  Opts.Seed = 1;
  const fuzz::ShrinkResult R = fuzz::shrinkWeakProgram(*P, titan(), Opts);
  ASSERT_TRUE(R.Reproduced);
  EXPECT_EQ(R.OriginalOps, 6u);
  // The atomic bump of `aux` and the reader's too-late fence go; the two
  // communication stores and the two pinned loads must survive.
  EXPECT_EQ(R.ReducedOps, 4u);
  EXPECT_LT(R.ReducedOps, R.OriginalOps);
  EXPECT_TRUE(R.Reduced.validate().empty()) << R.Reduced.validate();
  ASSERT_EQ(R.Reduced.Threads.size(), 2u);
  EXPECT_EQ(R.Reduced.Threads[0].Ops.size(), 2u);
  EXPECT_EQ(R.Reduced.Threads[1].Ops.size(), 2u);
  for (const litmus::ProgOp &O : R.Reduced.Threads[0].Ops)
    EXPECT_EQ(O.K, litmus::ProgOp::Kind::Store);
  for (const litmus::ProgOp &O : R.Reduced.Threads[1].Ops)
    EXPECT_EQ(O.K, litmus::ProgOp::Kind::Load);
  // The forbidden clause is untouched: same outcome, smaller program.
  EXPECT_EQ(R.Reduced.Forbidden.size(), P->Forbidden.size());
}

TEST(ShrinkTest, UnprovokableCaseIsLeftAlone) {
  // MP with a real fence between each thread's accesses: the forbidden
  // outcome is never provoked weakly, so nothing may be shrunk.
  litmus::ParseError Err;
  std::optional<litmus::Program> P = litmus::parseLitmus(R"(
litmus fenced-mp
locations x y
thread 0 { st x 1
  fence
  st y 1 }
thread 1 { ld r0 y
  fence
  ld r1 x }
forbidden r0 = 1 /\ r1 = 0
)",
                                                        Err);
  ASSERT_TRUE(P.has_value()) << Err.render("fenced-mp");
  fuzz::ShrinkOptions Opts;
  Opts.Distance = 128;
  Opts.RunsPerAttempt = 60;
  Opts.Seed = 5;
  const fuzz::ShrinkResult R = fuzz::shrinkWeakProgram(*P, titan(), Opts);
  EXPECT_FALSE(R.Reproduced);
  EXPECT_EQ(R.ReducedOps, R.OriginalOps);
}

//===----------------------------------------------------------------------===//
// Explain plumbing (runner-provided address names)
//===----------------------------------------------------------------------===//

TEST(ExplainTest, RunnerNamesAddressesInExplanations) {
  const litmus::Program &P = litmus::catalogProgram(litmus::LitmusKind::MP);
  const sim::ChipProfile &Chip = titan();
  litmus::LitmusRunner Runner(Chip, 42);
  litmus::LitmusRunner::RunOpts Opts;
  Opts.Trace = true;
  const auto Tuned = stress::TunedStressParams::paperDefaults(Chip);
  ConsistencyChecker Checker;
  for (unsigned Region = 0; Region != Chip.NumBanks; ++Region) {
    const auto S = litmus::LitmusRunner::MicroStress::at(
        Tuned.Seq, Region * Tuned.PatchWords);
    for (unsigned I = 0; I != 60; ++I) {
      if (!Runner.runOnce(P, 2 * Chip.PatchSizeWords, S, Opts))
        continue;
      const CheckResult R = Checker.check(Runner.trace());
      ASSERT_TRUE(R.weak());
      const std::string Text = model::renderExplanation(
          Runner.trace().events(), R,
          [&Runner](sim::Addr A) { return Runner.addrName(A); });
      EXPECT_NE(Text.find("load-bind y = 1"), std::string::npos) << Text;
      EXPECT_NE(Text.find("load-bind x = 0"), std::string::npos) << Text;
      return; // One explained weak run is what this test needs.
    }
  }
  FAIL() << "no weak MP outcome found to explain";
}
