//===- tests/LitmusTests.cpp - litmus harness tests ----------------------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// Property tests over the MP/LB/SB litmus tests: sequential consistency
// and fences forbid all weak behaviours; same-patch distances show none;
// targeted stress amplifies them dramatically at cross-patch distances.
//
//===----------------------------------------------------------------------===//

#include "litmus/Litmus.h"
#include "stress/Environment.h"

#include "gtest/gtest.h"

#include <tuple>

using namespace gpuwmm;
using namespace gpuwmm::litmus;

namespace {

const sim::ChipProfile &titan() {
  return *sim::ChipProfile::lookup("titan");
}

/// The tuned access sequence used for stress in these tests.
stress::AccessSequence tunedSeq() {
  return stress::AccessSequence::parse("ld st2 ld");
}

/// Finds the most effective single stress location for an instance by
/// scanning the first NumBanks patch-aligned scratchpad offsets.
unsigned bestStressWeakCount(LitmusRunner &Runner, const LitmusInstance &T,
                             unsigned Runs) {
  const unsigned P = titan().PatchSizeWords;
  unsigned Best = 0;
  for (unsigned Region = 0; Region != titan().NumBanks; ++Region) {
    const unsigned W = Runner.countWeak(
        T, LitmusRunner::MicroStress::at(tunedSeq(), Region * P), Runs);
    Best = std::max(Best, W);
  }
  return Best;
}

} // namespace

//===----------------------------------------------------------------------===//
// Parameterised sweeps: kind x distance
//===----------------------------------------------------------------------===//

class LitmusSweep
    : public ::testing::TestWithParam<std::tuple<LitmusKind, unsigned>> {};

TEST_P(LitmusSweep, SequentialModeForbidsWeakBehaviour) {
  const auto [Kind, Distance] = GetParam();
  LitmusRunner Runner(titan(), 1000 + Distance);
  LitmusRunner::RunOpts Opts;
  Opts.Sequential = true;
  EXPECT_EQ(Runner.countWeak({Kind, Distance},
                             LitmusRunner::MicroStress::none(), 300, Opts),
            0u);
}

TEST_P(LitmusSweep, FencesForbidWeakBehaviourEvenUnderStress) {
  const auto [Kind, Distance] = GetParam();
  LitmusRunner Runner(titan(), 2000 + Distance);
  LitmusRunner::RunOpts Opts;
  Opts.WithFences = true;
  const unsigned P = titan().PatchSizeWords;
  unsigned Weak = 0;
  for (unsigned Region = 0; Region != 4; ++Region)
    Weak += Runner.countWeak(
        {Kind, Distance},
        LitmusRunner::MicroStress::at(tunedSeq(), Region * P), 100, Opts);
  EXPECT_EQ(Weak, 0u);
}

TEST_P(LitmusSweep, NativeWeakBehaviourIsRare) {
  const auto [Kind, Distance] = GetParam();
  LitmusRunner Runner(titan(), 3000 + Distance);
  const unsigned Weak = Runner.countWeak(
      {Kind, Distance}, LitmusRunner::MicroStress::none(), 500);
  EXPECT_LE(Weak, 8u) << "native weak rate must stay below ~1.5%";
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndDistances, LitmusSweep,
    ::testing::Combine(::testing::Values(LitmusKind::MP, LitmusKind::LB,
                                         LitmusKind::SB),
                       ::testing::Values(0u, 16u, 32u, 64u, 128u)),
    [](const auto &Info) {
      return std::string(litmusName(std::get<0>(Info.param))) + "_d" +
             std::to_string(std::get<1>(Info.param));
    });

//===----------------------------------------------------------------------===//
// The paper's headline patch phenomena
//===----------------------------------------------------------------------===//

class LitmusKindTest : public ::testing::TestWithParam<LitmusKind> {};

TEST_P(LitmusKindTest, SamePatchDistanceShowsNoWeakBehaviourUnderStress) {
  // Fig. 3: no weak behaviour when communication locations are fewer than
  // a patch apart (same bank keeps ordering).
  LitmusRunner Runner(titan(), 4000);
  const LitmusInstance T{GetParam(), 0};
  EXPECT_EQ(bestStressWeakCount(Runner, T, 150), 0u);
}

TEST_P(LitmusKindTest, TargetedStressAmplifiesWeakBehaviour) {
  LitmusRunner Runner(titan(), 5000);
  const unsigned P = titan().PatchSizeWords;
  const LitmusInstance T{GetParam(), 2 * P};

  const unsigned Native =
      Runner.countWeak(T, LitmusRunner::MicroStress::none(), 400);
  const unsigned Stressed = bestStressWeakCount(Runner, T, 400);
  EXPECT_GT(Stressed, 20u) << "tuned stress must be highly effective";
  EXPECT_GT(Stressed, 8 * std::max(Native, 1u))
      << "stress must amplify far beyond the native rate";
}

TEST_P(LitmusKindTest, WrongBankStressIsIneffective) {
  // Stressing locations whose bank differs from both communication
  // locations' banks behaves like no stress at all.
  LitmusRunner Runner(titan(), 6000);
  const unsigned P = titan().PatchSizeWords;
  const LitmusInstance T{GetParam(), 2 * P};

  // x sits at bank(base). The litmus array (delta+1 words) plus results
  // occupy the first patches; scratch offset banks cycle mod NumBanks.
  // Find a weak location by scanning, then check some other location is
  // near-native.
  unsigned Weakest = ~0u;
  for (unsigned Region = 0; Region != titan().NumBanks; ++Region) {
    const unsigned W = Runner.countWeak(
        T, LitmusRunner::MicroStress::at(tunedSeq(), Region * P), 200);
    Weakest = std::min(Weakest, W);
  }
  EXPECT_LE(Weakest, 4u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, LitmusKindTest,
                         ::testing::Values(LitmusKind::MP, LitmusKind::LB,
                                           LitmusKind::SB),
                         [](const auto &Info) {
                           return litmusName(Info.param);
                         });

//===----------------------------------------------------------------------===//
// Per-chip sanity
//===----------------------------------------------------------------------===//

class LitmusChipTest : public ::testing::TestWithParam<const char *> {};

TEST_P(LitmusChipTest, StressEffectiveOnEveryChip) {
  const sim::ChipProfile &Chip = *sim::ChipProfile::lookup(GetParam());
  LitmusRunner Runner(Chip, 7000);
  const unsigned P = Chip.PatchSizeWords;
  const LitmusInstance T{LitmusKind::SB, 2 * P};
  unsigned Best = 0;
  for (unsigned Region = 0; Region != Chip.NumBanks && Best < 20;
       ++Region) {
    const auto Seq = stress::TunedStressParams::paperDefaults(Chip).Seq;
    Best = std::max(Best,
                    Runner.countWeak(
                        T, LitmusRunner::MicroStress::at(Seq, Region * P),
                        150));
  }
  EXPECT_GE(Best, 15u);
}

INSTANTIATE_TEST_SUITE_P(AllChips, LitmusChipTest,
                         ::testing::Values("980", "k5200", "titan", "k20",
                                           "770", "c2075", "c2050"));

//===----------------------------------------------------------------------===//
// Misc
//===----------------------------------------------------------------------===//

TEST(LitmusTest, AddressDeltaNeverZero) {
  EXPECT_EQ((LitmusInstance{LitmusKind::MP, 0}).addressDelta(), 1u);
  EXPECT_EQ((LitmusInstance{LitmusKind::MP, 5}).addressDelta(), 5u);
}

TEST(LitmusTest, NamesAreStable) {
  EXPECT_STREQ(litmusName(LitmusKind::MP), "MP");
  EXPECT_STREQ(litmusName(LitmusKind::LB), "LB");
  EXPECT_STREQ(litmusName(LitmusKind::SB), "SB");
}

TEST(LitmusTest, RunnerIsDeterministicForSeed) {
  const LitmusInstance T{LitmusKind::MP, 64};
  const auto S = LitmusRunner::MicroStress::at(tunedSeq(), 64);
  LitmusRunner A(titan(), 99), B(titan(), 99);
  EXPECT_EQ(A.countWeak(T, S, 100), B.countWeak(T, S, 100));
}

TEST(LitmusTest, ExecutionsAreCounted) {
  LitmusRunner Runner(titan(), 1);
  Runner.countWeak({LitmusKind::SB, 32},
                   LitmusRunner::MicroStress::none(), 25);
  EXPECT_EQ(Runner.executions(), 25u);
}

//===----------------------------------------------------------------------===//
// Extended shapes (R, S, 2+2W)
//===----------------------------------------------------------------------===//

TEST(ExtendedLitmusTest, NamesAreStable) {
  EXPECT_STREQ(litmusName(LitmusKind::R), "R");
  EXPECT_STREQ(litmusName(LitmusKind::S), "S");
  EXPECT_STREQ(litmusName(LitmusKind::TwoPlusTwoW), "2+2W");
}

TEST(ExtendedLitmusTest, RWeakBehaviourIsProvokable) {
  // R's weak outcome (the reader's y-write coherence-wins while its read
  // of x misses the writer's earlier store) rides on store buffering and
  // is observable, and amplified by targeted stress.
  LitmusRunner Runner(titan(), 8100);
  const unsigned P = titan().PatchSizeWords;
  const LitmusInstance T{LitmusKind::R, 2 * P};
  EXPECT_GT(bestStressWeakCount(Runner, T, 300), 10u);
}

TEST(ExtendedLitmusTest, RWeakBehaviourForbiddenByFencesAndSc) {
  LitmusRunner Runner(titan(), 8200);
  const unsigned P = titan().PatchSizeWords;
  LitmusRunner::RunOpts Fenced;
  Fenced.WithFences = true;
  unsigned Weak = 0;
  for (unsigned Region = 0; Region != 4; ++Region)
    Weak += Runner.countWeak(
        {LitmusKind::R, 2 * P},
        LitmusRunner::MicroStress::at(tunedSeq(), Region * P), 100, Fenced);
  EXPECT_EQ(Weak, 0u);

  LitmusRunner::RunOpts Sc;
  Sc.Sequential = true;
  EXPECT_EQ(Runner.countWeak({LitmusKind::R, 2 * P},
                             LitmusRunner::MicroStress::none(), 200, Sc),
            0u);
}

class ForbiddenShapeTest : public ::testing::TestWithParam<LitmusKind> {};

TEST_P(ForbiddenShapeTest, WriteWriteShapesAreForbiddenByIssueCoherence) {
  // S and 2+2W require two writes to one location to become visible
  // against their issue order. Our model's per-location coherence follows
  // issue order, so these shapes can never exhibit weak behaviour — a
  // documented strengthening relative to real GPUs (DESIGN.md Sec. 6).
  LitmusRunner Runner(titan(), 8300);
  const unsigned P = titan().PatchSizeWords;
  const LitmusInstance T{GetParam(), 2 * P};
  EXPECT_EQ(bestStressWeakCount(Runner, T, 200), 0u);
}

INSTANTIATE_TEST_SUITE_P(WriteWriteShapes, ForbiddenShapeTest,
                         ::testing::Values(LitmusKind::S,
                                           LitmusKind::TwoPlusTwoW),
                         [](const auto &Info) {
                           return Info.param == LitmusKind::S
                                      ? std::string("S")
                                      : std::string("TwoPlusTwoW");
                         });
