//===- tests/LitmusTests.cpp - litmus harness tests ----------------------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// Property tests over the MP/LB/SB litmus tests: sequential consistency
// and fences forbid all weak behaviours; same-patch distances show none;
// targeted stress amplifies them dramatically at cross-patch distances.
//
//===----------------------------------------------------------------------===//

#include "litmus/Format.h"
#include "litmus/Litmus.h"
#include "stress/Environment.h"

#include "gtest/gtest.h"

#include <tuple>

using namespace gpuwmm;
using namespace gpuwmm::litmus;

namespace {

const sim::ChipProfile &titan() {
  return *sim::ChipProfile::lookup("titan");
}

/// The tuned access sequence used for stress in these tests.
stress::AccessSequence tunedSeq() {
  return stress::AccessSequence::parse("ld st2 ld");
}

/// Finds the most effective single stress location for an instance by
/// scanning the first NumBanks patch-aligned scratchpad offsets.
unsigned bestStressWeakCount(LitmusRunner &Runner, const LitmusInstance &T,
                             unsigned Runs) {
  const unsigned P = titan().PatchSizeWords;
  unsigned Best = 0;
  for (unsigned Region = 0; Region != titan().NumBanks; ++Region) {
    const unsigned W = Runner.countWeak(
        T, LitmusRunner::MicroStress::at(tunedSeq(), Region * P), Runs);
    Best = std::max(Best, W);
  }
  return Best;
}

} // namespace

//===----------------------------------------------------------------------===//
// Parameterised sweeps: kind x distance
//===----------------------------------------------------------------------===//

class LitmusSweep
    : public ::testing::TestWithParam<std::tuple<LitmusKind, unsigned>> {};

TEST_P(LitmusSweep, SequentialModeForbidsWeakBehaviour) {
  const auto [Kind, Distance] = GetParam();
  LitmusRunner Runner(titan(), 1000 + Distance);
  LitmusRunner::RunOpts Opts;
  Opts.Sequential = true;
  EXPECT_EQ(Runner.countWeak({Kind, Distance},
                             LitmusRunner::MicroStress::none(), 300, Opts),
            0u);
}

TEST_P(LitmusSweep, FencesForbidWeakBehaviourEvenUnderStress) {
  const auto [Kind, Distance] = GetParam();
  LitmusRunner Runner(titan(), 2000 + Distance);
  LitmusRunner::RunOpts Opts;
  Opts.WithFences = true;
  const unsigned P = titan().PatchSizeWords;
  unsigned Weak = 0;
  for (unsigned Region = 0; Region != 4; ++Region)
    Weak += Runner.countWeak(
        {Kind, Distance},
        LitmusRunner::MicroStress::at(tunedSeq(), Region * P), 100, Opts);
  EXPECT_EQ(Weak, 0u);
}

TEST_P(LitmusSweep, NativeWeakBehaviourIsRare) {
  const auto [Kind, Distance] = GetParam();
  LitmusRunner Runner(titan(), 3000 + Distance);
  const unsigned Weak = Runner.countWeak(
      {Kind, Distance}, LitmusRunner::MicroStress::none(), 500);
  EXPECT_LE(Weak, 8u) << "native weak rate must stay below ~1.5%";
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndDistances, LitmusSweep,
    ::testing::Combine(::testing::Values(LitmusKind::MP, LitmusKind::LB,
                                         LitmusKind::SB),
                       ::testing::Values(0u, 16u, 32u, 64u, 128u)),
    [](const auto &Info) {
      return std::string(litmusName(std::get<0>(Info.param))) + "_d" +
             std::to_string(std::get<1>(Info.param));
    });

//===----------------------------------------------------------------------===//
// The paper's headline patch phenomena
//===----------------------------------------------------------------------===//

class LitmusKindTest : public ::testing::TestWithParam<LitmusKind> {};

TEST_P(LitmusKindTest, SamePatchDistanceShowsNoWeakBehaviourUnderStress) {
  // Fig. 3: no weak behaviour when communication locations are fewer than
  // a patch apart (same bank keeps ordering).
  LitmusRunner Runner(titan(), 4000);
  const LitmusInstance T{GetParam(), 0};
  EXPECT_EQ(bestStressWeakCount(Runner, T, 150), 0u);
}

TEST_P(LitmusKindTest, TargetedStressAmplifiesWeakBehaviour) {
  LitmusRunner Runner(titan(), 5000);
  const unsigned P = titan().PatchSizeWords;
  const LitmusInstance T{GetParam(), 2 * P};

  const unsigned Native =
      Runner.countWeak(T, LitmusRunner::MicroStress::none(), 400);
  const unsigned Stressed = bestStressWeakCount(Runner, T, 400);
  EXPECT_GT(Stressed, 20u) << "tuned stress must be highly effective";
  EXPECT_GT(Stressed, 8 * std::max(Native, 1u))
      << "stress must amplify far beyond the native rate";
}

TEST_P(LitmusKindTest, WrongBankStressIsIneffective) {
  // Stressing locations whose bank differs from both communication
  // locations' banks behaves like no stress at all.
  LitmusRunner Runner(titan(), 6000);
  const unsigned P = titan().PatchSizeWords;
  const LitmusInstance T{GetParam(), 2 * P};

  // x sits at bank(base). The litmus array (delta+1 words) plus results
  // occupy the first patches; scratch offset banks cycle mod NumBanks.
  // Find a weak location by scanning, then check some other location is
  // near-native.
  unsigned Weakest = ~0u;
  for (unsigned Region = 0; Region != titan().NumBanks; ++Region) {
    const unsigned W = Runner.countWeak(
        T, LitmusRunner::MicroStress::at(tunedSeq(), Region * P), 200);
    Weakest = std::min(Weakest, W);
  }
  EXPECT_LE(Weakest, 4u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, LitmusKindTest,
                         ::testing::Values(LitmusKind::MP, LitmusKind::LB,
                                           LitmusKind::SB),
                         [](const auto &Info) {
                           return litmusName(Info.param);
                         });

//===----------------------------------------------------------------------===//
// Per-chip sanity
//===----------------------------------------------------------------------===//

class LitmusChipTest : public ::testing::TestWithParam<const char *> {};

TEST_P(LitmusChipTest, StressEffectiveOnEveryChip) {
  const sim::ChipProfile &Chip = *sim::ChipProfile::lookup(GetParam());
  LitmusRunner Runner(Chip, 7000);
  const unsigned P = Chip.PatchSizeWords;
  const LitmusInstance T{LitmusKind::SB, 2 * P};
  unsigned Best = 0;
  for (unsigned Region = 0; Region != Chip.NumBanks && Best < 20;
       ++Region) {
    const auto Seq = stress::TunedStressParams::paperDefaults(Chip).Seq;
    Best = std::max(Best,
                    Runner.countWeak(
                        T, LitmusRunner::MicroStress::at(Seq, Region * P),
                        150));
  }
  EXPECT_GE(Best, 15u);
}

INSTANTIATE_TEST_SUITE_P(AllChips, LitmusChipTest,
                         ::testing::Values("980", "k5200", "titan", "k20",
                                           "770", "c2075", "c2050"));

//===----------------------------------------------------------------------===//
// Misc
//===----------------------------------------------------------------------===//

TEST(LitmusTest, AddressDeltaNeverZero) {
  EXPECT_EQ((LitmusInstance{LitmusKind::MP, 0}).addressDelta(), 1u);
  EXPECT_EQ((LitmusInstance{LitmusKind::MP, 5}).addressDelta(), 5u);
}

TEST(LitmusTest, NamesAreStable) {
  EXPECT_STREQ(litmusName(LitmusKind::MP), "MP");
  EXPECT_STREQ(litmusName(LitmusKind::LB), "LB");
  EXPECT_STREQ(litmusName(LitmusKind::SB), "SB");
}

TEST(LitmusTest, RunnerIsDeterministicForSeed) {
  const LitmusInstance T{LitmusKind::MP, 64};
  const auto S = LitmusRunner::MicroStress::at(tunedSeq(), 64);
  LitmusRunner A(titan(), 99), B(titan(), 99);
  EXPECT_EQ(A.countWeak(T, S, 100), B.countWeak(T, S, 100));
}

TEST(LitmusTest, ExecutionsAreCounted) {
  LitmusRunner Runner(titan(), 1);
  Runner.countWeak({LitmusKind::SB, 32},
                   LitmusRunner::MicroStress::none(), 25);
  EXPECT_EQ(Runner.executions(), 25u);
}

//===----------------------------------------------------------------------===//
// Extended shapes (R, S, 2+2W)
//===----------------------------------------------------------------------===//

TEST(ExtendedLitmusTest, NamesAreStable) {
  EXPECT_STREQ(litmusName(LitmusKind::R), "R");
  EXPECT_STREQ(litmusName(LitmusKind::S), "S");
  EXPECT_STREQ(litmusName(LitmusKind::TwoPlusTwoW), "2+2W");
}

TEST(ExtendedLitmusTest, RWeakBehaviourIsProvokable) {
  // R's weak outcome (the reader's y-write coherence-wins while its read
  // of x misses the writer's earlier store) rides on store buffering and
  // is observable, and amplified by targeted stress.
  LitmusRunner Runner(titan(), 8100);
  const unsigned P = titan().PatchSizeWords;
  const LitmusInstance T{LitmusKind::R, 2 * P};
  EXPECT_GT(bestStressWeakCount(Runner, T, 300), 10u);
}

TEST(ExtendedLitmusTest, RWeakBehaviourForbiddenByFencesAndSc) {
  LitmusRunner Runner(titan(), 8200);
  const unsigned P = titan().PatchSizeWords;
  LitmusRunner::RunOpts Fenced;
  Fenced.WithFences = true;
  unsigned Weak = 0;
  for (unsigned Region = 0; Region != 4; ++Region)
    Weak += Runner.countWeak(
        {LitmusKind::R, 2 * P},
        LitmusRunner::MicroStress::at(tunedSeq(), Region * P), 100, Fenced);
  EXPECT_EQ(Weak, 0u);

  LitmusRunner::RunOpts Sc;
  Sc.Sequential = true;
  EXPECT_EQ(Runner.countWeak({LitmusKind::R, 2 * P},
                             LitmusRunner::MicroStress::none(), 200, Sc),
            0u);
}

class ForbiddenShapeTest : public ::testing::TestWithParam<LitmusKind> {};

TEST_P(ForbiddenShapeTest, WriteWriteShapesAreForbiddenByIssueCoherence) {
  // S and 2+2W require two writes to one location to become visible
  // against their issue order. Our model's per-location coherence follows
  // issue order, so these shapes can never exhibit weak behaviour — a
  // documented strengthening relative to real GPUs (DESIGN.md Sec. 6).
  LitmusRunner Runner(titan(), 8300);
  const unsigned P = titan().PatchSizeWords;
  const LitmusInstance T{GetParam(), 2 * P};
  EXPECT_EQ(bestStressWeakCount(Runner, T, 200), 0u);
}

INSTANTIATE_TEST_SUITE_P(WriteWriteShapes, ForbiddenShapeTest,
                         ::testing::Values(LitmusKind::S,
                                           LitmusKind::TwoPlusTwoW),
                         [](const auto &Info) {
                           return Info.param == LitmusKind::S
                                      ? std::string("S")
                                      : std::string("TwoPlusTwoW");
                         });

//===----------------------------------------------------------------------===//
// The enum API is a catalog lookup: enum-based and IR-based execution are
// bit-identical (the contract that keeps the PR 2/3 goldens pinned).
//===----------------------------------------------------------------------===//

class EnumVsIrTest : public ::testing::TestWithParam<LitmusKind> {};

TEST_P(EnumVsIrTest, ExecutionIsBitIdenticalAtSeed42) {
  const LitmusKind Kind = GetParam();
  const Program &P = catalogProgram(Kind);
  const unsigned D = 2 * titan().PatchSizeWords;

  // Two independent runners at seed 42; interleave plain, stressed and
  // fenced runs and demand per-run equality of the weak verdicts.
  LitmusRunner Enum(titan(), 42), Ir(titan(), 42);
  LitmusRunner::RunOpts Fenced;
  Fenced.WithFences = true;
  const auto S = LitmusRunner::MicroStress::at(tunedSeq(), 2 * D);
  for (unsigned I = 0; I != 120; ++I) {
    EXPECT_EQ(Enum.runOnce({Kind, D}, LitmusRunner::MicroStress::none()),
              Ir.runOnce(P, D, LitmusRunner::MicroStress::none()))
        << "plain run " << I;
    EXPECT_EQ(Enum.runOnce({Kind, D}, S), Ir.runOnce(P, D, S))
        << "stressed run " << I;
    EXPECT_EQ(Enum.runOnce({Kind, D}, S, Fenced),
              Ir.runOnce(P, D, S, Fenced))
        << "fenced run " << I;
  }
  EXPECT_EQ(Enum.executions(), Ir.executions());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, EnumVsIrTest,
                         ::testing::ValuesIn(AllLitmusKindsExtended),
                         [](const auto &Info) {
                           return Info.param == LitmusKind::TwoPlusTwoW
                                      ? std::string("TwoPlusTwoW")
                                      : std::string(litmusName(Info.param));
                         });

TEST(EnumVsIrTest, GoldenWeakCountsPinnedAtSeed42) {
  // Absolute weak counts of the six historical shapes at seed 42,
  // recorded from the PR 3 hand-written kernels (verified bit-identical
  // to the IR interpreter when it was introduced). EnumVsIrTest above
  // proves enum == IR; this golden pins both against the *historical*
  // behaviour, so a change to the interpreter's issue sequence cannot
  // slip through by changing both sides equally. Regenerate by copying
  // the reported actuals — but any diff here means litmus execution
  // semantics changed and PR 2/3 reproducibility is broken.
  struct Golden {
    LitmusKind Kind;
    unsigned Plain, Stressed, Fenced;
  };
  const Golden Table[] = {
      {LitmusKind::MP, 0, 69, 0},  {LitmusKind::LB, 2, 34, 0},
      {LitmusKind::SB, 0, 78, 0},  {LitmusKind::R, 0, 79, 0},
      {LitmusKind::S, 0, 0, 0},    {LitmusKind::TwoPlusTwoW, 0, 0, 0}};
  const unsigned D = 2 * titan().PatchSizeWords;
  for (const Golden &G : Table) {
    LitmusRunner Runner(titan(), 42);
    const LitmusInstance T{G.Kind, D};
    EXPECT_EQ(Runner.countWeak(T, LitmusRunner::MicroStress::none(), 300),
              G.Plain)
        << litmusName(G.Kind) << " plain";
    EXPECT_EQ(bestStressWeakCount(Runner, T, 200), G.Stressed)
        << litmusName(G.Kind) << " stressed (best per-bank location)";
    LitmusRunner::RunOpts Fenced;
    Fenced.WithFences = true;
    unsigned FencedWeak = 0;
    for (unsigned Region = 0; Region != 4; ++Region)
      FencedWeak += Runner.countWeak(
          T,
          LitmusRunner::MicroStress::at(tunedSeq(),
                                        Region * titan().PatchSizeWords),
          100, Fenced);
    EXPECT_EQ(FencedWeak, G.Fenced) << litmusName(G.Kind) << " fenced";
  }
}

TEST(EnumVsIrTest, ParsedTextExecutesBitIdenticallyToTheEnumPath) {
  // End-to-end: a .litmus document (as a user would write it) parses to
  // a program whose execution matches the historical enum path exactly.
  ParseError Err;
  std::optional<Program> P = parseLitmus("litmus MP\n"
                                         "locations x y\n"
                                         "thread 0 {\n"
                                         "  st x 1\n"
                                         "  fence?\n"
                                         "  st y 1\n"
                                         "}\n"
                                         "thread 1 {\n"
                                         "  ld r0 y\n"
                                         "  fence?\n"
                                         "  ld r1 x\n"
                                         "}\n"
                                         "forbidden r0 = 1 /\\ r1 = 0\n",
                                         Err);
  ASSERT_TRUE(P.has_value()) << Err.render("<test>");
  ASSERT_TRUE(*P == catalogProgram(LitmusKind::MP));

  const unsigned D = 2 * titan().PatchSizeWords;
  const auto S = LitmusRunner::MicroStress::at(tunedSeq(), 2 * D);
  LitmusRunner Enum(titan(), 42), Parsed(titan(), 42);
  EXPECT_EQ(Enum.countWeak({LitmusKind::MP, D}, S, 200),
            Parsed.countWeak(*P, D, S, 200));
}

//===----------------------------------------------------------------------===//
// Multi-thread catalog idioms (IRIW, WRC, ISA2, RWC, W+RWC)
//===----------------------------------------------------------------------===//

class MultiThreadIdiomTest : public ::testing::TestWithParam<const char *> {
protected:
  const Program &program() const {
    const Program *P = findCatalogProgram(GetParam());
    EXPECT_NE(P, nullptr);
    return *P;
  }
};

TEST_P(MultiThreadIdiomTest, WeakBehaviourIsProvokableUnderStress) {
  LitmusRunner Runner(titan(), 9100);
  const unsigned P = titan().PatchSizeWords;
  unsigned Best = 0;
  for (unsigned Region = 0; Region != titan().NumBanks; ++Region)
    Best = std::max(Best,
                    Runner.countWeak(program(), 2 * P,
                                     LitmusRunner::MicroStress::at(
                                         tunedSeq(), Region * P),
                                     400));
  EXPECT_GT(Best, 3u) << GetParam()
                      << " must be provokable by targeted stress";
}

TEST_P(MultiThreadIdiomTest, FencesAndScForbidTheWeakOutcome) {
  LitmusRunner Runner(titan(), 9200);
  const unsigned P = titan().PatchSizeWords;
  LitmusRunner::RunOpts Fenced;
  Fenced.WithFences = true;
  unsigned Weak = 0;
  for (unsigned Region = 0; Region != 4; ++Region)
    Weak += Runner.countWeak(program(), 2 * P,
                             LitmusRunner::MicroStress::at(tunedSeq(),
                                                           Region * P),
                             100, Fenced);
  EXPECT_EQ(Weak, 0u);

  LitmusRunner::RunOpts Sc;
  Sc.Sequential = true;
  EXPECT_EQ(Runner.countWeak(program(), 2 * P,
                             LitmusRunner::MicroStress::none(), 200, Sc),
            0u);
}

INSTANTIATE_TEST_SUITE_P(Catalog, MultiThreadIdiomTest,
                         ::testing::Values("IRIW", "WRC", "ISA2", "RWC",
                                           "W+RWC"),
                         [](const auto &Info) {
                           std::string Name = Info.param;
                           for (char &C : Name)
                             if (C == '+')
                               C = 'p';
                           return Name;
                         });

TEST(MultiThreadIdiomTest, IriwRunsFromAParsedFileIdenticallyToCatalog) {
  // The acceptance scenario: IRIW from a parsed .litmus text behaves
  // exactly like the built-in catalog entry.
  ParseError Err;
  std::optional<Program> P =
      parseLitmus(printLitmus(*findCatalogProgram("IRIW")), Err);
  ASSERT_TRUE(P.has_value()) << Err.render("<print>");
  const unsigned D = 2 * titan().PatchSizeWords;
  const auto S = LitmusRunner::MicroStress::at(tunedSeq(), 2 * D);
  LitmusRunner A(titan(), 42), B(titan(), 42);
  EXPECT_EQ(A.countWeak(*findCatalogProgram("IRIW"), D, S, 150),
            B.countWeak(*P, D, S, 150));
}

TEST(MultiThreadIdiomTest, InitialStateIsApplied) {
  // A one-thread program that only observes its init values.
  ParseError Err;
  std::optional<Program> P = parseLitmus("litmus init-check\n"
                                         "locations a b\n"
                                         "init { a = 41 b = 7 }\n"
                                         "thread 0 {\n"
                                         "  add a 1\n"
                                         "  ld r0 a\n"
                                         "  ld r1 b\n"
                                         "}\n"
                                         "forbidden r0 = 42 /\\ r1 = 7 "
                                         "/\\ a != 0 /\\ b = 7\n",
                                         Err);
  ASSERT_TRUE(P.has_value()) << Err.render("<test>");
  LitmusRunner Runner(titan(), 1);
  EXPECT_EQ(Runner.countWeak(*P, 64, LitmusRunner::MicroStress::none(), 20),
            20u)
      << "the forbidden clause describes the only possible outcome, so "
         "every run must report it";
}
