//===- tests/SchedulerTests.cpp - scheduler and kernel execution tests --------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// Tests kernel execution end to end through the Device facade: thread
// identifiers, barriers (including divergence detection), timeouts,
// faults, delayed policy fences, determinism and thread randomisation.
//
//===----------------------------------------------------------------------===//

#include "sim/Device.h"
#include "sim/ThreadContext.h"

#include "gtest/gtest.h"

#include <set>

using namespace gpuwmm;
using namespace gpuwmm::sim;

namespace {

const ChipProfile &titan() { return *ChipProfile::lookup("titan"); }

Kernel writeIdsKernel(ThreadContext &Ctx, Addr Base) {
  co_await Ctx.st(Base + Ctx.globalId(),
                  (Ctx.blockIdx() << 16) | (Ctx.warpIdx() << 8) |
                      Ctx.threadIdx());
}

Kernel barrierSumKernel(ThreadContext &Ctx, Addr Cells, Addr Out) {
  co_await Ctx.st(Cells + Ctx.blockIdx() * Ctx.blockDim() + Ctx.threadIdx(),
                  Ctx.threadIdx() + 1);
  co_await Ctx.syncthreads();
  if (Ctx.threadIdx() != 0)
    co_return;
  Word Sum = 0;
  for (unsigned I = 0; I != Ctx.blockDim(); ++I)
    Sum += co_await Ctx.ld(Cells + Ctx.blockIdx() * Ctx.blockDim() + I);
  co_await Ctx.st(Out + Ctx.blockIdx(), Sum);
}

Kernel divergentBarrierKernel(ThreadContext &Ctx) {
  // Half the block skips the barrier: undefined behaviour in CUDA,
  // detected by the simulator.
  if (Ctx.threadIdx() % 2 == 0)
    co_await Ctx.syncthreads();
  co_await Ctx.yield(1);
}

Kernel spinForeverKernel(ThreadContext &Ctx, Addr Flag) {
  // Awaits must not appear in condition expressions (GCC 12 coroutine
  // bug: the frame is miscompiled and the kernel silently wedges); see
  // the regression test AwaitInConditionConventionHolds below.
  for (;;) {
    const Word V = co_await Ctx.ld(Flag);
    if (V != 0)
      co_return;
    co_await Ctx.yield(1);
  }
}

Kernel faultingKernel(ThreadContext &Ctx) {
  co_await Ctx.yield(1);
  if (Ctx.globalId() == 3) {
    Ctx.fault();
    co_return;
  }
  co_await Ctx.yield(5);
}

} // namespace

TEST(SchedulerTest, RunsAllThreadsToCompletion) {
  Device Dev(titan(), 1);
  const Addr Base = Dev.alloc(64);
  const RunResult R = Dev.run({2, 32}, [=](ThreadContext &Ctx) -> Kernel {
    return writeIdsKernel(Ctx, Base);
  });
  EXPECT_TRUE(R.completed());
  EXPECT_EQ(R.Mem.Stores, 64u);
  for (unsigned B = 0; B != 2; ++B)
    for (unsigned L = 0; L != 32; ++L)
      EXPECT_EQ(Dev.read(Base + B * 32 + L), (B << 16) | L);
}

TEST(SchedulerTest, MultiWarpBlocksKeepWarpIndexing) {
  Device Dev(titan(), 1);
  const Addr Base = Dev.alloc(64);
  const RunResult R = Dev.run({1, 64}, [=](ThreadContext &Ctx) -> Kernel {
    return writeIdsKernel(Ctx, Base);
  });
  EXPECT_TRUE(R.completed());
  EXPECT_EQ(Dev.read(Base + 40) >> 8 & 0xff, 1u) << "lane 40 is in warp 1";
}

TEST(SchedulerTest, BarrierMakesBlockStoresVisible) {
  for (uint64_t Seed = 0; Seed != 20; ++Seed) {
    Device Dev(titan(), Seed);
    const Addr Cells = Dev.alloc(64);
    const Addr Out = Dev.alloc(2);
    const RunResult R = Dev.run({2, 32}, [=](ThreadContext &Ctx) -> Kernel {
      return barrierSumKernel(Ctx, Cells, Out);
    });
    ASSERT_TRUE(R.completed());
    // Sum 1..32 = 528, regardless of drain timing: the barrier guarantees
    // block-level consistency.
    EXPECT_EQ(Dev.read(Out), 528u);
    EXPECT_EQ(Dev.read(Out + 1), 528u);
  }
}

TEST(SchedulerTest, BarrierDivergenceIsDetected) {
  Device Dev(titan(), 1);
  const RunResult R = Dev.run({1, 32}, [](ThreadContext &Ctx) -> Kernel {
    return divergentBarrierKernel(Ctx);
  });
  EXPECT_EQ(R.Status, RunStatus::BarrierDivergence);
}

TEST(SchedulerTest, TimeoutIsDetected) {
  Device Dev(titan(), 1);
  Dev.setMaxTicks(500);
  const Addr Flag = Dev.alloc(1); // Never set.
  const RunResult R = Dev.run({1, 1}, [=](ThreadContext &Ctx) -> Kernel {
    return spinForeverKernel(Ctx, Flag);
  });
  EXPECT_EQ(R.Status, RunStatus::Timeout);
  EXPECT_EQ(Dev.lastStatus(), RunStatus::Timeout);
}

TEST(SchedulerTest, KernelFaultIsReported) {
  Device Dev(titan(), 1);
  const RunResult R = Dev.run({1, 32}, [](ThreadContext &Ctx) -> Kernel {
    return faultingKernel(Ctx);
  });
  EXPECT_EQ(R.Status, RunStatus::KernelFault);
}

TEST(SchedulerTest, DeterministicForSeed) {
  auto Fingerprint = [](uint64_t Seed, bool Randomise) {
    Device Dev(titan(), Seed);
    Dev.setRandomiseThreads(Randomise);
    const Addr Counter = Dev.alloc(1);
    const Addr Order = Dev.alloc(64);
    Dev.run({2, 32}, [=](ThreadContext &Ctx) -> Kernel {
      return [](ThreadContext &C, Addr Cnt, Addr Ord) -> Kernel {
        co_await C.yield(1 + static_cast<unsigned>(C.rand(4)));
        const Word Slot = co_await C.atomicAdd(Cnt, 1);
        co_await C.st(Ord + Slot, C.globalId());
      }(Ctx, Counter, Order);
    });
    uint64_t H = 1469598103934665603ull;
    for (unsigned I = 0; I != 64; ++I)
      H = (H ^ Dev.read(Order + I)) * 1099511628211ull;
    return H;
  };
  EXPECT_EQ(Fingerprint(7, false), Fingerprint(7, false));
  EXPECT_EQ(Fingerprint(7, true), Fingerprint(7, true));
  EXPECT_NE(Fingerprint(7, false), Fingerprint(8, false));
}

TEST(SchedulerTest, RandomisationChangesInterleavings) {
  // With randomisation, different seeds produce different thread arrival
  // orders (block placement + priority jitter).
  auto ArrivalOrder = [](uint64_t Seed) {
    Device Dev(titan(), Seed);
    Dev.setRandomiseThreads(true);
    const Addr Counter = Dev.alloc(1);
    const Addr First = Dev.alloc(1);
    Dev.run({4, 32}, [=](ThreadContext &Ctx) -> Kernel {
      return [](ThreadContext &C, Addr Cnt, Addr Fst) -> Kernel {
        const Word Slot = co_await C.atomicAdd(Cnt, 1);
        if (Slot == 0)
          co_await C.st(Fst, C.globalId() + 1);
      }(Ctx, Counter, First);
    });
    return Dev.read(First);
  };
  std::set<Word> FirstArrivals;
  for (uint64_t Seed = 0; Seed != 16; ++Seed)
    FirstArrivals.insert(ArrivalOrder(Seed));
  EXPECT_GT(FirstArrivals.size(), 1u);
}

TEST(SchedulerTest, YieldConsumesTicks) {
  Device Fast(titan(), 1);
  const RunResult RFast =
      Fast.run({1, 1}, [](ThreadContext &Ctx) -> Kernel {
        return [](ThreadContext &C) -> Kernel { co_await C.yield(1); }(Ctx);
      });
  Device Slow(titan(), 1);
  const RunResult RSlow =
      Slow.run({1, 1}, [](ThreadContext &Ctx) -> Kernel {
        return
            [](ThreadContext &C) -> Kernel { co_await C.yield(500); }(Ctx);
      });
  EXPECT_GT(RSlow.Ticks, RFast.Ticks + 400);
}

TEST(SchedulerTest, MultipleLaunchesShareMemory) {
  Device Dev(titan(), 1);
  const Addr A = Dev.alloc(1);
  Dev.run({1, 1}, [=](ThreadContext &Ctx) -> Kernel {
    return [](ThreadContext &C, Addr X) -> Kernel {
      co_await C.st(X, 41);
    }(Ctx, A);
  });
  // Kernel boundary synchronises; the second launch reads the first's
  // result.
  Dev.run({1, 1}, [=](ThreadContext &Ctx) -> Kernel {
    return [](ThreadContext &C, Addr X) -> Kernel {
      const Word V = co_await C.ld(X);
      co_await C.st(X, V + 1);
    }(Ctx, A);
  });
  EXPECT_EQ(Dev.read(A), 42u);
  EXPECT_GT(Dev.totalTicks(), 0u);
}

TEST(SchedulerTest, PolicyFenceClosesStoreWindow) {
  // With a fence policy on the data-store site, a reader polling the flag
  // must never see stale data (MP with writer-side inserted fence).
  FencePolicy Policy = FencePolicy::ofSites(2, {0});
  unsigned Weak = 0;
  for (uint64_t Seed = 0; Seed != 200; ++Seed) {
    Device Dev(titan(), Seed);
    Dev.setFencePolicy(&Policy);
    const Addr Data = Dev.alloc(1);
    const Addr Flag = Dev.alloc(1);
    const Addr Result = Dev.alloc(1);
    Dev.run({2, 1}, [=](ThreadContext &Ctx) -> Kernel {
      if (Ctx.blockIdx() == 0)
        return [](ThreadContext &C, Addr D, Addr F) -> Kernel {
          co_await C.st(D, 1, /*Site=*/0); // Fenced by policy.
          co_await C.st(F, 1, /*Site=*/1);
        }(Ctx, Data, Flag);
      return [](ThreadContext &C, Addr D, Addr F, Addr R) -> Kernel {
        for (;;) {
          const Word V = co_await C.ld(F);
          if (V != 0)
            break;
          co_await C.yield(1);
        }
        co_await C.st(R, co_await C.ld(D));
      }(Ctx, Data, Flag, Result);
    });
    Weak += Dev.read(Result) == 0;
  }
  EXPECT_EQ(Weak, 0u);
}

TEST(SchedulerTest, PolicyFenceIsDelayedNotAtomicWithOp) {
  // The inserted fence is a separate instruction: there must exist a
  // window (>= 1 tick) between the access and the fence's drain. We
  // detect it by fencing the FLAG store: the data store (earlier, other
  // bank) is drained by the same fence, so weak outcomes become rare but
  // the flag itself stays buffered only until its own drain — meaning the
  // run still completes. Mostly this documents that fencing is modelled
  // as code, not as a side effect folded into the access.
  FencePolicy Policy = FencePolicy::ofSites(2, {1});
  Device Dev(titan(), 5);
  Dev.setFencePolicy(&Policy);
  const Addr Data = Dev.alloc(1);
  const RunResult R = Dev.run({1, 1}, [=](ThreadContext &Ctx) -> Kernel {
    return [](ThreadContext &C, Addr D) -> Kernel {
      co_await C.st(D, 1, /*Site=*/1);
      co_await C.yield(1);
    }(Ctx, Data);
  });
  ASSERT_TRUE(R.completed());
  // The fence executed: exactly one device fence in the stats.
  EXPECT_EQ(R.Mem.DeviceFences, 1u);
  EXPECT_EQ(Dev.read(Data), 1u);
}

TEST(SchedulerTest, RuntimeAndEnergyModelRespondToFences) {
  auto Measure = [](bool Fenced) {
    FencePolicy All = FencePolicy::all(1);
    Device Dev(titan(), 3);
    if (Fenced)
      Dev.setFencePolicy(&All);
    const Addr Base = Dev.alloc(64);
    Dev.run({2, 32}, [=](ThreadContext &Ctx) -> Kernel {
      return [](ThreadContext &C, Addr B) -> Kernel {
        for (unsigned I = 0; I != 8; ++I)
          co_await C.st(B + C.globalId(), I, /*Site=*/0);
      }(Ctx, Base);
    });
    return std::make_pair(Dev.runtimeMs(), Dev.energy().Joules);
  };
  const auto [PlainMs, PlainJ] = Measure(false);
  const auto [FencedMs, FencedJ] = Measure(true);
  EXPECT_GT(FencedMs, PlainMs * 1.5);
  EXPECT_GT(FencedJ, PlainJ * 1.2);
}

TEST(SchedulerTest, EnergyValidityTracksPowerInstrumentation) {
  size_t Count = 0;
  const ChipProfile *Chips = ChipProfile::all(Count);
  for (size_t I = 0; I != Count; ++I) {
    Device Dev(Chips[I], 1);
    Dev.run({1, 1}, [](ThreadContext &Ctx) -> Kernel {
      return [](ThreadContext &C) -> Kernel { co_await C.yield(1); }(Ctx);
    });
    EXPECT_EQ(Dev.energy().Valid, Chips[I].SupportsPowerQuery);
  }
}
