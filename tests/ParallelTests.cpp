//===- tests/ParallelTests.cpp - Parallel engine & determinism -----------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// The parallel campaign engine's determinism contract (DESIGN.md Sec. 11):
// for a fixed base seed, results of every parallelized layer are
// bit-identical to serial execution regardless of the job count, because
// every cell/trial/program owns an independently derived RNG stream. Each
// suite here runs one layer serially and on an 8-job pool and asserts
// equality; the golden test additionally pins a Tab. 5 sub-grid so silent
// simulator drift fails loudly.
//
//===----------------------------------------------------------------------===//

#include "fuzz/ProgramFuzzer.h"
#include "harden/FenceInsertion.h"
#include "harness/Campaign.h"
#include "harness/EnvironmentRunner.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"
#include "tuning/PatchFinder.h"
#include "tuning/SequenceTuner.h"
#include "tuning/SpreadTuner.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <atomic>
#include <set>
#include <sstream>

using namespace gpuwmm;

namespace {

const sim::ChipProfile &chip(const char *Name) {
  const sim::ChipProfile *Chip = sim::ChipProfile::lookup(Name);
  EXPECT_NE(Chip, nullptr);
  return *Chip;
}

//===----------------------------------------------------------------------===//
// Rng::deriveStream
//===----------------------------------------------------------------------===//

TEST(DeriveStreamTest, PureAndOrderIndependent) {
  // A pure function of (base, index): recomputing in any order, on any
  // "history", yields the same seeds.
  std::vector<uint64_t> Forward;
  for (uint64_t I = 0; I != 256; ++I)
    Forward.push_back(Rng::deriveStream(123, I));
  for (uint64_t I = 256; I != 0; --I)
    EXPECT_EQ(Rng::deriveStream(123, I - 1), Forward[I - 1]);
}

TEST(DeriveStreamTest, DistinctAcrossIndicesAndBases) {
  std::set<uint64_t> Seen;
  for (uint64_t Base : {0ull, 1ull, 2ull, 42ull, ~0ull})
    for (uint64_t I = 0; I != 4096; ++I)
      Seen.insert(Rng::deriveStream(Base, I));
  // All 5 * 4096 derived seeds distinct: no stream aliasing between
  // adjacent indices or adjacent user seeds.
  EXPECT_EQ(Seen.size(), 5u * 4096u);
}

TEST(DeriveStreamTest, StreamsAreNonOverlapping) {
  // Independently derived generators should share no outputs in a long
  // prefix (a collision among 64-bit outputs is astronomically unlikely,
  // and this is deterministic given the implementation).
  std::set<uint64_t> Outputs;
  constexpr unsigned NumStreams = 16;
  constexpr unsigned Draws = 512;
  for (uint64_t S = 0; S != NumStreams; ++S) {
    Rng Stream(Rng::deriveStream(7, S));
    for (unsigned I = 0; I != Draws; ++I)
      Outputs.insert(Stream.next());
  }
  EXPECT_EQ(Outputs.size(), size_t(NumStreams) * Draws);
}

TEST(DeriveStreamTest, ForkMatchesDeriveStream) {
  // Rng::fork is the stateful spelling of deriveStream; the campaign
  // engine relies on runner-internal forks staying pure in the seed.
  Rng A(99);
  A.next();
  A.next(); // Draws must not affect forking.
  Rng Forked = A.fork(5);
  Rng Derived(Rng::deriveStream(99, 5));
  for (int I = 0; I != 16; ++I)
    EXPECT_EQ(Forked.next(), Derived.next());
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.jobs(), 4u);
  std::vector<std::atomic<unsigned>> Hits(1000);
  Pool.parallelFor(Hits.size(), [&](size_t I) { ++Hits[I]; });
  for (const auto &H : Hits)
    EXPECT_EQ(H.load(), 1u);
}

TEST(ThreadPoolTest, SingleJobRunsInline) {
  ThreadPool Pool(1);
  std::vector<unsigned> Order;
  Pool.parallelFor(8, [&](size_t I) { Order.push_back(unsigned(I)); });
  EXPECT_EQ(Order, (std::vector<unsigned>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(ThreadPoolTest, EmptyAndSingletonLoops) {
  ThreadPool Pool(4);
  unsigned Calls = 0;
  Pool.parallelFor(0, [&](size_t) { ++Calls; });
  EXPECT_EQ(Calls, 0u);
  Pool.parallelFor(1, [&](size_t I) {
    EXPECT_EQ(I, 0u);
    ++Calls;
  });
  EXPECT_EQ(Calls, 1u);
}

TEST(ThreadPoolTest, ReusableAcrossManyBatches) {
  // Many small batches back to back: exercises the generation handshake
  // (and is the prime ThreadSanitizer target).
  ThreadPool Pool(4);
  std::atomic<uint64_t> Sum{0};
  uint64_t Expected = 0;
  for (unsigned Batch = 0; Batch != 100; ++Batch) {
    const size_t N = Batch % 7; // Includes empty batches.
    for (size_t I = 0; I != N; ++I)
      Expected += Batch * I;
    Pool.parallelFor(N, [&, Batch](size_t I) { Sum += Batch * I; });
  }
  EXPECT_EQ(Sum.load(), Expected);
}

TEST(ThreadPoolTest, MoreJobsThanWork) {
  ThreadPool Pool(8);
  std::vector<std::atomic<unsigned>> Hits(3);
  Pool.parallelFor(Hits.size(), [&](size_t I) { ++Hits[I]; });
  for (const auto &H : Hits)
    EXPECT_EQ(H.load(), 1u);
}

//===----------------------------------------------------------------------===//
// Layer determinism: parallel == serial, bit for bit
//===----------------------------------------------------------------------===//

TEST(ParallelDeterminismTest, RunCell) {
  const auto &Chip = chip("titan");
  const stress::Environment Env{stress::StressKind::Sys, true};
  const auto Tuned = stress::TunedStressParams::paperDefaults(Chip);
  const auto Serial = harness::runCell(apps::AppKind::CbeDot, Chip, Env,
                                       Tuned, /*Runs=*/40, /*Seed=*/5);
  ThreadPool Pool(8);
  const auto Parallel = harness::runCell(apps::AppKind::CbeDot, Chip, Env,
                                         Tuned, 40, 5, &Pool);
  EXPECT_EQ(Serial, Parallel);
  EXPECT_EQ(Serial.Runs, 40u);
}

TEST(ParallelDeterminismTest, EnvironmentSummary) {
  const auto &Chip = chip("980");
  const stress::Environment Env{stress::StressKind::Sys, true};
  const auto Tuned = stress::TunedStressParams::paperDefaults(Chip);
  const auto Serial =
      harness::runEnvironmentSummary(Chip, Env, Tuned, /*Runs=*/10, 17);
  ThreadPool Pool(8);
  const auto Parallel =
      harness::runEnvironmentSummary(Chip, Env, Tuned, 10, 17, &Pool);
  EXPECT_EQ(Serial, Parallel);
}

TEST(ParallelDeterminismTest, EnvironmentSummaryMatchesPerAppCells) {
  // The summary's per-app cells are runCell at the app's derived stream —
  // the composition contract call sites rely on.
  const auto &Chip = chip("titan");
  const stress::Environment Env{stress::StressKind::Sys, true};
  const auto Tuned = stress::TunedStressParams::paperDefaults(Chip);
  const uint64_t Seed = 23;
  harness::EnvironmentSummary Expected;
  for (size_t A = 0; A != apps::AllAppKinds.size(); ++A) {
    const auto Cell =
        harness::runCell(apps::AllAppKinds[A], Chip, Env, Tuned, 8,
                         Rng::deriveStream(Seed, A));
    Expected.AppsWithErrors += Cell.observed();
    Expected.AppsEffective += Cell.effective();
  }
  EXPECT_EQ(harness::runEnvironmentSummary(Chip, Env, Tuned, 8, Seed),
            Expected);
}

TEST(ParallelDeterminismTest, PatchFinderScan) {
  tuning::PatchFinder Serial(chip("k20"), 31);
  tuning::PatchFinder Parallel(chip("k20"), 31);
  tuning::PatchFinder::Config Cfg;
  Cfg.NumLocations = 48;
  Cfg.Distances = {16, 32, 64};
  Cfg.Executions = 3;
  const auto A = Serial.scan(Cfg);
  ThreadPool Pool(8);
  // The parallel arm also uses a deliberately odd batch width: histograms
  // must be invariant to both jobs and K.
  Cfg.BatchWidth = 7;
  const auto B = Parallel.scan(Cfg, &Pool);
  EXPECT_EQ(A.Hist, B.Hist);
  EXPECT_EQ(Serial.executions(), Parallel.executions());
  EXPECT_EQ(Serial.executions(), uint64_t(3 * 3 * 48) * 3);
}

TEST(ParallelDeterminismTest, SequenceTunerRanking) {
  tuning::SequenceTuner Serial(chip("titan"), 37);
  tuning::SequenceTuner Parallel(chip("titan"), 37);
  tuning::SequenceTuner::Config Cfg;
  Cfg.NumLocations = 64; // One patch-aligned location on a 64-word chip.
  Cfg.Executions = 2;
  const auto A = Serial.rankAll(64, Cfg);
  ThreadPool Pool(8);
  Cfg.BatchWidth = 3; // Rankings are invariant to jobs and batch width.
  const auto B = Parallel.rankAll(64, Cfg, &Pool);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Seq.str(), B[I].Seq.str());
    EXPECT_EQ(A[I].Scores, B[I].Scores);
  }
  EXPECT_EQ(Serial.executions(), Parallel.executions());
}

TEST(ParallelDeterminismTest, SpreadTunerRanking) {
  tuning::SpreadTuner Serial(chip("k20"), 41);
  tuning::SpreadTuner Parallel(chip("k20"), 41);
  tuning::SpreadTuner::Config Cfg;
  Cfg.MaxSpread = 6;
  Cfg.Executions = 8;
  const auto Seq = stress::AccessSequence::parse("st ld");
  const auto A = Serial.rankAll(32, Seq, Cfg);
  ThreadPool Pool(8);
  Cfg.BatchWidth = 5; // Rankings are invariant to jobs and batch width.
  const auto B = Parallel.rankAll(32, Seq, Cfg, &Pool);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Spread, B[I].Spread);
    EXPECT_EQ(A[I].Scores, B[I].Scores);
  }
}

TEST(ParallelDeterminismTest, FenceInsertion) {
  const auto &Chip = chip("titan");
  harden::InsertionConfig Config;
  Config.InitialIterations = 8;
  Config.MaxRounds = 4;
  const unsigned NumSites = apps::appNumSites(apps::AppKind::CbeDot);

  harden::AppCheckOracle SerialOracle(apps::AppKind::CbeDot, Chip, 11,
                                      /*StableRuns=*/24);
  const auto A = harden::empiricalFenceInsertion(
      sim::FencePolicy::all(NumSites), SerialOracle, Config);

  ThreadPool Pool(8);
  harden::AppCheckOracle ParallelOracle(apps::AppKind::CbeDot, Chip, 11, 24,
                                        &Pool);
  const auto B = harden::empiricalFenceInsertion(
      sim::FencePolicy::all(NumSites), ParallelOracle, Config);

  EXPECT_EQ(A.Fences.sites(), B.Fences.sites());
  EXPECT_EQ(A.Stable, B.Stable);
  EXPECT_EQ(A.Rounds, B.Rounds);
  // The oracle's early exit is chunk-granular (full fixed-size chunks
  // always execute), so its execution count is jobs-invariant too.
  EXPECT_EQ(SerialOracle.executions(), ParallelOracle.executions());
}

TEST(ParallelDeterminismTest, FuzzBatch) {
  fuzz::BatchConfig Cfg;
  Cfg.Programs = 6;
  Cfg.RunsPerProgram = 8;
  const auto A = fuzz::fuzzBatch(chip("980"), Cfg, 13);
  ThreadPool Pool(8);
  const auto B = fuzz::fuzzBatch(chip("980"), Cfg, 13, &Pool);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].P.str(), B[I].P.str());
    EXPECT_EQ(A[I].R.WeakOutcomes, B[I].R.WeakOutcomes);
    EXPECT_EQ(A[I].R.DistinctWeak, B[I].R.DistinctWeak);
    EXPECT_EQ(A[I].R.DistinctScSeen, B[I].R.DistinctScSeen);
    EXPECT_EQ(A[I].R.ScSetSize, B[I].R.ScSetSize);
  }
}

//===----------------------------------------------------------------------===//
// Campaign: JSON byte-stability and cell/seed contracts
//===----------------------------------------------------------------------===//

harness::CampaignConfig smallGrid() {
  harness::CampaignConfig Config;
  Config.Chips = {sim::ChipProfile::lookup("titan"),
                  sim::ChipProfile::lookup("k20")};
  Config.Envs = {{stress::StressKind::None, false},
                 {stress::StressKind::Sys, true}};
  Config.Apps = {apps::AppKind::CbeDot, apps::AppKind::SdkRedNf};
  Config.Runs = 10;
  Config.Seed = 3;
  return Config;
}

TEST(CampaignTest, JsonIsJobsInvariant) {
  const auto Config = smallGrid();
  const auto Serial = harness::runCampaign(Config);
  ThreadPool Pool(8);
  const auto Parallel = harness::runCampaign(Config, &Pool);

  std::ostringstream A, B;
  harness::writeCampaignJson(Serial, A);
  harness::writeCampaignJson(Parallel, B);
  EXPECT_EQ(A.str(), B.str());
  EXPECT_NE(A.str().find("\"schema\": \"gpuwmm-campaign-v2\""),
            std::string::npos);
  EXPECT_NE(A.str().find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(A.str().find("\"tool\": {\"name\": \"gpuwmm\""),
            std::string::npos);
  // The oracle was off: its fields must not dirty the report.
  EXPECT_EQ(A.str().find("oracle"), std::string::npos);
}

TEST(CampaignTest, CellsMatchDirectRunCell) {
  // Campaign cells are exactly runCell at the cell's canonical derived
  // seed — so any sub-grid reproduces the full grid's cells.
  const auto Config = smallGrid();
  const auto Report = harness::runCampaign(Config);
  ASSERT_EQ(Report.Cells.size(), 8u);
  for (const harness::CampaignCell &Cell : Report.Cells) {
    const auto Direct = harness::runCell(
        Cell.App, *Cell.Chip, Cell.Env,
        stress::TunedStressParams::paperDefaults(*Cell.Chip), Config.Runs,
        harness::campaignCellSeed(Config.Seed, *Cell.Chip, Cell.Env,
                                  Cell.App));
    EXPECT_EQ(Cell.Result, Direct);
  }
}

TEST(CampaignTest, CellSeedsIgnoreSelectionOrder) {
  // Seeds derive from canonical identity, not selection position.
  const auto &Titan = chip("titan");
  const auto &K20 = chip("k20");
  const stress::Environment Env{stress::StressKind::Sys, true};
  EXPECT_EQ(
      harness::campaignCellSeed(1, Titan, Env, apps::AppKind::CbeDot),
      harness::campaignCellSeed(1, Titan, Env, apps::AppKind::CbeDot));
  EXPECT_NE(harness::campaignCellSeed(1, Titan, Env, apps::AppKind::CbeDot),
            harness::campaignCellSeed(1, K20, Env, apps::AppKind::CbeDot));

  auto Config = smallGrid();
  const auto Report = harness::runCampaign(Config);
  std::swap(Config.Chips[0], Config.Chips[1]);
  std::reverse(Config.Apps.begin(), Config.Apps.end());
  const auto Swapped = harness::runCampaign(Config);
  // Same (chip, env, app) tuple -> same result, wherever it sits.
  for (const harness::CampaignCell &Cell : Report.Cells)
    for (const harness::CampaignCell &Other : Swapped.Cells)
      if (Cell.Chip == Other.Chip && Cell.App == Other.App &&
          Cell.Env.Kind == Other.Env.Kind &&
          Cell.Env.Randomise == Other.Env.Randomise) {
        EXPECT_EQ(Cell.Result, Other.Result);
      }
}

//===----------------------------------------------------------------------===//
// Golden regression: a pinned Tab. 5 sub-grid
//===----------------------------------------------------------------------===//

TEST(GoldenCampaignTest, SubGridSummariesArePinned) {
  // 2 chips x 3 environments x all 10 apps, 20 runs at seed 42. These
  // exact counts are a regression anchor: a simulator or seed-derivation
  // change that silently shifts Tab. 5 error rates must fail here, not
  // slip through. Regenerate with: gpuwmm campaign --chips=titan,980
  //   --envs=no-str-,sys-str+,rand-str+ --runs=20 --seed=42 --jobs=1
  harness::CampaignConfig Config;
  Config.Chips = {sim::ChipProfile::lookup("titan"),
                  sim::ChipProfile::lookup("980")};
  Config.Envs = {{stress::StressKind::None, false},
                 {stress::StressKind::Sys, true},
                 {stress::StressKind::Rand, true}};
  Config.Apps.assign(apps::AllAppKinds.begin(), apps::AllAppKinds.end());
  Config.Runs = 20;
  Config.Seed = 42;

  ThreadPool Pool; // Default jobs: the golden values are jobs-invariant.
  const auto Report = harness::runCampaign(Config, &Pool);

  struct Golden {
    const char *Chip;
    const char *Env;
    unsigned AppsEffective;
    unsigned AppsWithErrors;
  };
  const Golden Expected[] = {
      {"titan", "no-str-", 0, 0}, {"titan", "sys-str+", 7, 7},
      {"titan", "rand-str+", 1, 2}, {"980", "no-str-", 0, 0},
      {"980", "sys-str+", 6, 8},    {"980", "rand-str+", 1, 3},
  };
  ASSERT_EQ(Report.Summaries.size(), std::size(Expected));
  for (size_t C = 0; C != Config.Chips.size(); ++C)
    for (size_t E = 0; E != Config.Envs.size(); ++E) {
      const Golden &G = Expected[C * Config.Envs.size() + E];
      ASSERT_STREQ(Config.Chips[C]->ShortName, G.Chip);
      ASSERT_EQ(Config.Envs[E].name(), G.Env);
      const harness::EnvironmentSummary &S = Report.summary(C, E);
      EXPECT_EQ(S.AppsEffective, G.AppsEffective)
          << G.Chip << " under " << G.Env;
      EXPECT_EQ(S.AppsWithErrors, G.AppsWithErrors)
          << G.Chip << " under " << G.Env;
    }
}

//===----------------------------------------------------------------------===//
// Golden engine grid: scalar and batched campaigns are interchangeable
//===----------------------------------------------------------------------===//

TEST(GoldenCampaignTest, EngineJobsAndBatchWidthGridIsInvariant) {
  // The batched application engine (DESIGN.md Sec. 19) must leave every
  // campaign number untouched: a sub-grid mixing lowerable kernels
  // (cbe-dot, sdk-red, cub-scan) with a coroutine-only fallback (ls-bh),
  // with the streaming oracle sampling every 5th run, is executed under
  // engine {scalar, auto} x jobs {1, 8} x batch width {1, 64} and every
  // combination must reproduce the scalar/serial reference cell for cell
  // — error counts, oracle tallies and all.
  harness::CampaignConfig Config;
  Config.Chips = {sim::ChipProfile::lookup("titan")};
  Config.Envs = {{stress::StressKind::None, false},
                 {stress::StressKind::Sys, true}};
  Config.Apps = {apps::AppKind::CbeDot, apps::AppKind::SdkRed,
                 apps::AppKind::CubScan, apps::AppKind::LsBh};
  Config.Runs = 16;
  Config.Seed = 42;
  Config.OracleEvery = 5;

  sim::setEngineMode(sim::EngineMode::Scalar);
  const auto Reference = harness::runCampaign(Config);
  ASSERT_EQ(Reference.Cells.size(), 8u);

  for (sim::EngineMode Mode :
       {sim::EngineMode::Scalar, sim::EngineMode::Auto}) {
    sim::setEngineMode(Mode);
    for (unsigned Jobs : {1u, 8u}) {
      for (unsigned Width : {1u, 64u}) {
        sim::setDefaultBatchWidth(Width);
        ThreadPool Pool(Jobs);
        const auto Report = harness::runCampaign(Config, &Pool);
        ASSERT_EQ(Report.Cells.size(), Reference.Cells.size());
        for (size_t I = 0; I != Report.Cells.size(); ++I)
          EXPECT_EQ(Report.Cells[I].Result, Reference.Cells[I].Result)
              << "engine=" << sim::engineModeName(Mode)
              << " jobs=" << Jobs << " batch=" << Width << " cell " << I;
      }
    }
  }
  sim::setDefaultBatchWidth(0);
  sim::setEngineMode(sim::EngineMode::Auto);
}

} // namespace
