//===- tests/HardenTests.cpp - empirical fence insertion tests ------------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// Unit tests of Alg. 1 against deterministic mock oracles (binary/linear
// reduction behaviour, restart-with-doubled-iterations) and integration
// tests rediscovering the paper's fences on the real case studies.
//
//===----------------------------------------------------------------------===//

#include "harden/FenceInsertion.h"

#include "gtest/gtest.h"

#include <set>

using namespace gpuwmm;
using namespace gpuwmm::harden;
using sim::FencePolicy;

namespace {

/// Deterministic oracle: the program is stable iff the policy covers all
/// of a fixed set of required sites.
class RequiredSitesOracle final : public CheckOracle {
public:
  RequiredSitesOracle(unsigned NumSites, std::set<unsigned> Required)
      : NumSites(NumSites), Required(std::move(Required)) {}

  bool checkApplication(const FencePolicy &F, unsigned Iterations) override {
    ++Checks;
    IterationsUsed += Iterations;
    return covers(F);
  }

  bool empiricallyStable(const FencePolicy &F) override {
    ++StableChecks;
    return covers(F);
  }

  unsigned Checks = 0;
  unsigned StableChecks = 0;
  uint64_t IterationsUsed = 0;

private:
  bool covers(const FencePolicy &F) const {
    for (unsigned S : Required)
      if (!F.fenceAfter(static_cast<int>(S)))
        return false;
    return true;
  }

  unsigned NumSites;
  std::set<unsigned> Required;
};

/// An oracle whose CheckApplication misses bugs until the iteration count
/// is large enough — exercising Alg. 1's restart-with-doubled-I loop.
class FlakyOracle final : public CheckOracle {
public:
  FlakyOracle(unsigned NumSites, std::set<unsigned> Required,
              unsigned MinIterations)
      : Inner(NumSites, std::move(Required)), MinIterations(MinIterations) {}

  bool checkApplication(const FencePolicy &F, unsigned Iterations) override {
    if (Iterations < MinIterations)
      return true; // Too few runs: bugs go unnoticed.
    return Inner.checkApplication(F, Iterations);
  }

  bool empiricallyStable(const FencePolicy &F) override {
    return Inner.empiricallyStable(F);
  }

  RequiredSitesOracle Inner;
  unsigned MinIterations;
};

} // namespace

//===----------------------------------------------------------------------===//
// FencePolicy
//===----------------------------------------------------------------------===//

TEST(FencePolicyTest, Constructors) {
  EXPECT_EQ(FencePolicy::none(5).count(), 0u);
  EXPECT_EQ(FencePolicy::all(5).count(), 5u);
  const auto P = FencePolicy::ofSites(5, {1, 3});
  EXPECT_EQ(P.count(), 2u);
  EXPECT_TRUE(P.fenceAfter(1));
  EXPECT_TRUE(P.fenceAfter(3));
  EXPECT_FALSE(P.fenceAfter(0));
  EXPECT_FALSE(P.fenceAfter(sim::NoSite));
}

TEST(FencePolicyTest, SitesRoundTrip) {
  const auto P = FencePolicy::ofSites(8, {0, 4, 7});
  EXPECT_EQ(P.sites(), (std::vector<unsigned>{0, 4, 7}));
  EXPECT_EQ(FencePolicy::ofSites(8, P.sites()), P);
}

//===----------------------------------------------------------------------===//
// Reductions against mock oracles
//===----------------------------------------------------------------------===//

TEST(ReductionTest, LinearRemovesAllUnnecessaryFences) {
  RequiredSitesOracle Oracle(10, {3, 7});
  const auto F =
      linearReduction(FencePolicy::all(10), Oracle, /*Iterations=*/4);
  EXPECT_EQ(F.sites(), (std::vector<unsigned>{3, 7}));
}

TEST(ReductionTest, LinearKeepsEverythingWhenAllRequired) {
  RequiredSitesOracle Oracle(4, {0, 1, 2, 3});
  const auto F = linearReduction(FencePolicy::all(4), Oracle, 4);
  EXPECT_EQ(F.count(), 4u);
}

TEST(ReductionTest, BinaryDiscardsWholeHalves) {
  // Required sites all in the second half: binary reduction can discard
  // the first half in one probe.
  RequiredSitesOracle Oracle(8, {6});
  const auto F = binaryReduction(FencePolicy::all(8), Oracle, 4);
  EXPECT_TRUE(F.fenceAfter(6));
  EXPECT_LE(F.count(), 2u);
  EXPECT_LE(Oracle.Checks, 8u) << "binary reduction is logarithmic-ish";
}

TEST(ReductionTest, BinaryStopsWhenBothHalvesNeeded) {
  // One required site per half: neither half can be removed wholesale.
  RequiredSitesOracle Oracle(8, {1, 6});
  const auto F = binaryReduction(FencePolicy::all(8), Oracle, 4);
  EXPECT_EQ(F.count(), 8u) << "worst case: binary reduction removes "
                              "nothing (paper Sec. 5.1)";
}

TEST(InsertionTest, ConvergesToExactRequiredSet) {
  RequiredSitesOracle Oracle(12, {2, 9});
  const auto R =
      empiricalFenceInsertion(FencePolicy::all(12), Oracle);
  EXPECT_TRUE(R.Stable);
  EXPECT_EQ(R.Rounds, 1u);
  EXPECT_EQ(R.Fences.sites(), (std::vector<unsigned>{2, 9}));
}

TEST(InsertionTest, ResultIsMinimal) {
  // Property: removing any fence from the converged set must break the
  // oracle — the paper's definition of the reduced set.
  RequiredSitesOracle Oracle(10, {0, 5, 9});
  const auto R = empiricalFenceInsertion(FencePolicy::all(10), Oracle);
  ASSERT_TRUE(R.Stable);
  for (unsigned S : R.Fences.sites()) {
    FencePolicy Without = R.Fences;
    Without.set(S, false);
    EXPECT_FALSE(Oracle.checkApplication(Without, 1))
        << "fence " << S << " is removable: result not minimal";
  }
}

TEST(InsertionTest, EmptyRequirementYieldsNoFences) {
  RequiredSitesOracle Oracle(6, {});
  const auto R = empiricalFenceInsertion(FencePolicy::all(6), Oracle);
  EXPECT_TRUE(R.Stable);
  EXPECT_EQ(R.Fences.count(), 0u);
}

TEST(InsertionTest, RestartsWithDoubledIterationsUntilStable) {
  // The oracle misses bugs below 128 iterations; the insertion loop must
  // double I (32 -> 64 -> 128) and restart from the full set (Alg. 1
  // lines 5-6).
  FlakyOracle Oracle(8, {4}, /*MinIterations=*/128);
  InsertionConfig Cfg;
  Cfg.InitialIterations = 32;
  const auto R = empiricalFenceInsertion(FencePolicy::all(8), Oracle, Cfg);
  EXPECT_TRUE(R.Stable);
  EXPECT_EQ(R.Rounds, 3u);
  EXPECT_TRUE(R.Fences.fenceAfter(4));
}

TEST(InsertionTest, GivesUpAfterMaxRounds) {
  // An oracle that never stabilises.
  class NeverStable final : public CheckOracle {
  public:
    bool checkApplication(const FencePolicy &, unsigned) override {
      return true; // Everything looks removable...
    }
    bool empiricallyStable(const FencePolicy &) override {
      return false; // ...but nothing is ever stable.
    }
  };
  NeverStable Oracle;
  InsertionConfig Cfg;
  Cfg.MaxRounds = 3;
  const auto R = empiricalFenceInsertion(FencePolicy::all(4), Oracle, Cfg);
  EXPECT_FALSE(R.Stable);
  EXPECT_EQ(R.Rounds, 3u);
}

//===----------------------------------------------------------------------===//
// Integration: rediscovering the paper's fences
//===----------------------------------------------------------------------===//

TEST(InsertionIntegration, CbeDotFindsTheCriticalSectionStoreFence) {
  // The paper's running example: a single fence after the store to *c
  // (before the unlock), matching the hand analysis of [8].
  const auto &Chip = *sim::ChipProfile::lookup("titan");
  AppCheckOracle Oracle(apps::AppKind::CbeDot, Chip, 4242,
                        /*StableRuns=*/200);
  const unsigned NumSites = apps::appNumSites(apps::AppKind::CbeDot);
  const auto R =
      empiricalFenceInsertion(FencePolicy::all(NumSites), Oracle);
  ASSERT_TRUE(R.Stable);
  ASSERT_EQ(R.Fences.count(), 1u);
  const auto App = apps::makeApp(apps::AppKind::CbeDot);
  EXPECT_STREQ(App->siteName(R.Fences.sites()[0]), "critical: store *c");
}

TEST(InsertionIntegration, CbeHtFindsTheHeadPublishFence) {
  const auto &Chip = *sim::ChipProfile::lookup("titan");
  AppCheckOracle Oracle(apps::AppKind::CbeHt, Chip, 4243,
                        /*StableRuns=*/200);
  const unsigned NumSites = apps::appNumSites(apps::AppKind::CbeHt);
  const auto R =
      empiricalFenceInsertion(FencePolicy::all(NumSites), Oracle);
  ASSERT_TRUE(R.Stable);
  ASSERT_EQ(R.Fences.count(), 1u);
  const auto App = apps::makeApp(apps::AppKind::CbeHt);
  EXPECT_STREQ(App->siteName(R.Fences.sites()[0]),
               "insert: store bucket head");
}

TEST(InsertionIntegration, HardenedPolicyIsEmpiricallyStable) {
  // Whatever set the insertion returns for ct-octree must pass a fresh
  // stability check with a different seed.
  const auto &Chip = *sim::ChipProfile::lookup("k20");
  const unsigned NumSites = apps::appNumSites(apps::AppKind::CtOctree);
  AppCheckOracle Search(apps::AppKind::CtOctree, Chip, 4244, 150);
  const auto R =
      empiricalFenceInsertion(FencePolicy::all(NumSites), Search);
  ASSERT_TRUE(R.Stable);
  AppCheckOracle Verify(apps::AppKind::CtOctree, Chip, 999, 150);
  EXPECT_TRUE(Verify.empiricallyStable(R.Fences));
}
