//===- tests/SupportTests.cpp - support library unit tests --------------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//

#include "support/Options.h"
#include "support/Rng.h"
#include "support/Statistics.h"
#include "support/Suggest.h"
#include "support/Table.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <set>
#include <sstream>

using namespace gpuwmm;

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, DeterministicForSeed) {
  Rng A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  unsigned Same = 0;
  for (int I = 0; I != 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 2u);
}

TEST(RngTest, BelowStaysInBounds) {
  Rng R(7);
  for (uint64_t Bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int I = 0; I != 200; ++I)
      EXPECT_LT(R.below(Bound), Bound);
  }
}

TEST(RngTest, BelowOneIsAlwaysZero) {
  Rng R(7);
  for (int I = 0; I != 50; ++I)
    EXPECT_EQ(R.below(1), 0u);
}

TEST(RngTest, RangeIsInclusive) {
  Rng R(3);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 2000; ++I) {
    const int64_t V = R.range(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    SawLo |= V == -2;
    SawHi |= V == 2;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RngTest, RealInUnitInterval) {
  Rng R(11);
  for (int I = 0; I != 1000; ++I) {
    const double V = R.real();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng R(5);
  for (int I = 0; I != 100; ++I) {
    EXPECT_FALSE(R.chance(0.0));
    EXPECT_TRUE(R.chance(1.0));
    EXPECT_FALSE(R.chance(-1.0));
    EXPECT_TRUE(R.chance(2.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng R(13);
  unsigned Hits = 0;
  const unsigned N = 20000;
  for (unsigned I = 0; I != N; ++I)
    Hits += R.chance(0.3);
  EXPECT_NEAR(static_cast<double>(Hits) / N, 0.3, 0.02);
}

TEST(RngTest, ForkIsIndependentOfDrawCount) {
  // fork(K) must not depend on how many numbers were drawn beforehand.
  Rng A(99), B(99);
  B.next();
  B.next();
  EXPECT_EQ(A.fork(5).next(), B.fork(5).next());
}

TEST(RngTest, ForkStreamsDiffer) {
  Rng R(123);
  EXPECT_NE(R.fork(0).next(), R.fork(1).next());
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng R(17);
  std::vector<int> V{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> Orig = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Orig);
}

TEST(RngTest, SampleDistinctIsDistinctAndBounded) {
  Rng R(23);
  for (int Trial = 0; Trial != 50; ++Trial) {
    const auto S = R.sampleDistinct(5, 16);
    EXPECT_EQ(S.size(), 5u);
    std::set<unsigned> Set(S.begin(), S.end());
    EXPECT_EQ(Set.size(), 5u);
    for (unsigned V : S)
      EXPECT_LT(V, 16u);
  }
}

TEST(RngTest, SampleDistinctFullUniverse) {
  Rng R(29);
  const auto S = R.sampleDistinct(8, 8);
  std::set<unsigned> Set(S.begin(), S.end());
  EXPECT_EQ(Set.size(), 8u);
}

TEST(RngTest, SampleDistinctCoversUniverse) {
  // Over many draws of 1-of-4, every element should appear.
  Rng R(31);
  std::set<unsigned> Seen;
  for (int I = 0; I != 200; ++I)
    Seen.insert(R.sampleDistinct(1, 4)[0]);
  EXPECT_EQ(Seen.size(), 4u);
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

TEST(StatisticsTest, MeanBasic) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
}

TEST(StatisticsTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(StatisticsTest, QuantileEndpoints) {
  const std::vector<double> V{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(quantile(V, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(V, 1.0), 40.0);
}

TEST(StatisticsTest, QuantileInterpolates) {
  const std::vector<double> V{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(V, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(V, 0.5), 5.0);
}

TEST(StatisticsTest, SummarizeFields) {
  const auto S = summarize({2.0, 4.0, 6.0});
  EXPECT_EQ(S.Count, 3u);
  EXPECT_DOUBLE_EQ(S.Min, 2.0);
  EXPECT_DOUBLE_EQ(S.Max, 6.0);
  EXPECT_DOUBLE_EQ(S.Mean, 4.0);
  EXPECT_DOUBLE_EQ(S.Median, 4.0);
}

//===----------------------------------------------------------------------===//
// Table
//===----------------------------------------------------------------------===//

TEST(TableTest, AlignsColumns) {
  Table T({"a", "bbbb"});
  T.addRow({"xxx", "y"});
  std::ostringstream OS;
  T.print(OS);
  const std::string Out = OS.str();
  EXPECT_NE(Out.find("a    bbbb"), std::string::npos);
  EXPECT_NE(Out.find("xxx  y"), std::string::npos);
}

TEST(TableTest, PadsShortRows) {
  Table T({"a", "b", "c"});
  T.addRow({"1"});
  std::ostringstream OS;
  T.print(OS);
  EXPECT_EQ(T.numRows(), 1u);
}

TEST(TableTest, CsvQuotesCommas) {
  Table T({"k", "v"});
  T.addRow({"x,y", "z"});
  std::ostringstream OS;
  T.printCsv(OS);
  EXPECT_NE(OS.str().find("\"x,y\",z"), std::string::npos);
}

TEST(TableTest, FormatDouble) {
  EXPECT_EQ(formatDouble(1.2345, 2), "1.23");
  EXPECT_EQ(formatDouble(1.0, 0), "1");
}

TEST(TableTest, FormatOverheadPercent) {
  EXPECT_EQ(formatOverheadPercent(1.45), "+45%");
  EXPECT_EQ(formatOverheadPercent(1.0), "+0%");
  EXPECT_EQ(formatOverheadPercent(2.74), "+174%");
}

//===----------------------------------------------------------------------===//
// Options
//===----------------------------------------------------------------------===//

TEST(OptionsTest, ParsesKeyValueAndFlags) {
  const char *Argv[] = {"prog", "--runs=50", "--verbose", "positional"};
  Options O(4, const_cast<char **>(Argv));
  EXPECT_EQ(O.getInt("runs", 0), 50);
  EXPECT_TRUE(O.has("verbose"));
  EXPECT_FALSE(O.has("positional"));
  EXPECT_EQ(O.getInt("missing", 7), 7);
}

TEST(OptionsTest, ParsesDoubleAndString) {
  const char *Argv[] = {"prog", "--scale=0.5", "--chip=titan"};
  Options O(3, const_cast<char **>(Argv));
  EXPECT_DOUBLE_EQ(O.getDouble("scale", 1.0), 0.5);
  EXPECT_EQ(O.getString("chip", ""), "titan");
  EXPECT_EQ(O.getString("other", "dflt"), "dflt");
}

TEST(OptionsTest, ScaledCountHasFloor) {
  EXPECT_GE(scaledCount(0, 3), 3u);
  EXPECT_GE(scaledCount(100), 1u);
}

TEST(OptionsTest, GetPositiveIntAbsentReturnsDefault) {
  const char *Argv[] = {"prog"};
  Options O(1, const_cast<char **>(Argv));
  EXPECT_EQ(O.getPositiveInt("jobs", 0, 1 << 16), 0);
}

TEST(OptionsTest, GetPositiveIntAcceptsTheMaxBoundaryExactly) {
  // Max is inclusive: a value equal to the bound parses; one past it is
  // rejected (the truncation guard for narrowing casts).
  const char *Argv[] = {"prog", "--jobs=65536"};
  Options O(2, const_cast<char **>(Argv));
  EXPECT_EQ(O.getPositiveInt("jobs", 0, 65536), 65536);
}

TEST(OptionsDeathTest, GetPositiveIntRejectsOnePastMax) {
  const char *Argv[] = {"prog", "--jobs=65537"};
  Options O(2, const_cast<char **>(Argv));
  EXPECT_EXIT((void)O.getPositiveInt("jobs", 0, 65536),
              ::testing::ExitedWithCode(2), "positive integer");
}

TEST(OptionsDeathTest, GetPositiveIntRejectsZeroNegativeAndJunk) {
  for (const char *Bad : {"--jobs=0", "--jobs=-3", "--jobs=abc",
                          "--jobs=", "--jobs=12x"}) {
    const char *Argv[] = {"prog", Bad};
    Options O(2, const_cast<char **>(Argv));
    EXPECT_EXIT((void)O.getPositiveInt("jobs", 0, 1 << 16),
                ::testing::ExitedWithCode(2), "positive integer")
        << Bad;
  }
}

//===----------------------------------------------------------------------===//
// Suggest
//===----------------------------------------------------------------------===//

TEST(SuggestTest, EditDistanceBasics) {
  EXPECT_EQ(editDistance("", ""), 0u);
  EXPECT_EQ(editDistance("", "abc"), 3u);
  EXPECT_EQ(editDistance("abc", ""), 3u);
  EXPECT_EQ(editDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(editDistance("MP", "mp"), 0u); // Case-insensitive.
}

TEST(SuggestTest, EmptyInputsYieldNothing) {
  EXPECT_TRUE(closeMatches("anything", {}).empty());
  // An empty given string is within distance 2 of short candidates only.
  const auto M = closeMatches("", {"ab", "toolongname"});
  ASSERT_EQ(M.size(), 1u);
  EXPECT_EQ(M[0], "ab");
  EXPECT_EQ(suggestClause("anything", {}), "");
}

TEST(SuggestTest, AllDistantCandidatesYieldNothing) {
  const auto M = closeMatches("zzzzzz", {"MP", "LB", "SB", "IRIW"});
  EXPECT_TRUE(M.empty());
  EXPECT_EQ(suggestClause("zzzzzz", {"MP", "LB", "SB"}), "");
}

TEST(SuggestTest, TiesKeepCandidateOrder) {
  // Both candidates are at distance 1; the candidate list's order is the
  // suggestion order (no hidden re-ranking).
  const auto M = closeMatches("ax", {"ay", "az"});
  ASSERT_EQ(M.size(), 2u);
  EXPECT_EQ(M[0], "ay");
  EXPECT_EQ(M[1], "az");
  // A strictly closer candidate wins alone.
  const auto Best = closeMatches("ax", {"axy", "ax"});
  ASSERT_EQ(Best.size(), 1u);
  EXPECT_EQ(Best[0], "ax");
}

TEST(SuggestTest, ClauseFormatsOneOrTwoMatches) {
  EXPECT_EQ(suggestClause("IRIV", {"IRIW", "WRC"}),
            " (did you mean 'IRIW'?)");
  const std::string Two = suggestClause("ax", {"ay", "az"});
  EXPECT_NE(Two.find("'ay'"), std::string::npos);
  EXPECT_NE(Two.find("'az'"), std::string::npos);
}
