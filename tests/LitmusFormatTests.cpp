//===- tests/LitmusFormatTests.cpp - .litmus format tests ---------------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// The .litmus text format: parse -> print -> parse round-trip identity
// (over the catalog, hand-written documents and random fuzz exports),
// precise line/column error reporting, and the fuzz <-> litmus bridge.
//
//===----------------------------------------------------------------------===//

#include "fuzz/LitmusBridge.h"
#include "litmus/Format.h"

#include "gtest/gtest.h"

using namespace gpuwmm;
using namespace gpuwmm::litmus;

namespace {

Program parseOk(const std::string &Text) {
  ParseError Err;
  std::optional<Program> P = parseLitmus(Text, Err);
  EXPECT_TRUE(P.has_value())
      << Err.render("<test>") << "\nin document:\n" << Text;
  return P ? *P : Program();
}

ParseError parseFail(const std::string &Text) {
  ParseError Err;
  std::optional<Program> P = parseLitmus(Text, Err);
  EXPECT_FALSE(P.has_value()) << "expected a parse error in:\n" << Text;
  return Err;
}

} // namespace

//===----------------------------------------------------------------------===//
// Round-trip identity
//===----------------------------------------------------------------------===//

TEST(LitmusFormatTest, CatalogRoundTripsIdentically) {
  for (const Program &P : catalog()) {
    const std::string Text = printLitmus(P);
    const Program Reparsed = parseOk(Text);
    EXPECT_TRUE(Reparsed == P) << "round-trip changed " << P.Name
                               << ":\n" << Text;
    // Byte fixpoint from the second generation on (the first print also
    // carries the catalog Doc comment, which parsing discards).
    const std::string Canonical = printLitmus(Reparsed);
    EXPECT_EQ(printLitmus(parseOk(Canonical)), Canonical) << P.Name;
  }
}

TEST(LitmusFormatTest, EveryGrammarConstructRoundTrips) {
  // A document using every construct: quoted name, comments, init,
  // jitter, explicit block placement, every op, and both comparisons.
  const std::string Text = "# comment\n"
                           "litmus \"kitchen sink\"\n"
                           "locations x y\n"
                           "init { y = 7 }\n"
                           "jitter 5\n"
                           "thread 0 @ block 1 {\n"
                           "  st x 1\n"
                           "  add y 2\n"
                           "  fence\n"
                           "  ldasync r0 y\n"
                           "  fence?\n"
                           "  await r0\n"
                           "}\n"
                           "thread 1 @ block 0 {\n"
                           "  ld r1 x\n"
                           "}\n"
                           "forbidden r0 != 7 /\\ r1 = 0 /\\ x = 1\n";
  const Program P = parseOk(Text);
  EXPECT_EQ(P.Name, "kitchen sink");
  EXPECT_EQ(P.PhaseJitter, 5u);
  EXPECT_EQ(P.Init, (std::vector<sim::Word>{0, 7}));
  EXPECT_EQ(P.Threads[0].Block, 1u);
  EXPECT_EQ(P.Threads[1].Block, 0u);
  ASSERT_EQ(P.Forbidden.size(), 3u);
  EXPECT_TRUE(P.Forbidden[0].Negated);
  EXPECT_FALSE(P.Forbidden[2].IsReg);

  const Program Reparsed = parseOk(printLitmus(P));
  EXPECT_TRUE(Reparsed == P);
}

TEST(LitmusFormatTest, DefaultsAreOmittedWhenPrinting) {
  const Program &MP = *findCatalogProgram("MP");
  const std::string Text = printLitmus(MP);
  EXPECT_EQ(Text.find("init"), std::string::npos)
      << "all-zero init must not be printed";
  EXPECT_EQ(Text.find("jitter"), std::string::npos)
      << "default jitter must not be printed";
  EXPECT_EQ(Text.find("@ block"), std::string::npos)
      << "thread-ordinal placement must not be printed";
}

TEST(LitmusFormatTest, RandomFuzzExportsRoundTrip) {
  // Property test: any generated fuzz program survives
  // fuzz -> litmus -> text -> litmus -> fuzz unchanged.
  for (uint64_t Seed = 0; Seed != 50; ++Seed) {
    Rng R(Seed);
    const fuzz::Program P = fuzz::Program::generate(
        R, /*NumVars=*/3, /*OpsPerThread=*/6, /*WithFences=*/true);
    const Program L = fuzz::toLitmusProgram(P, "t");
    const Program Reparsed = parseOk(printLitmus(L));
    EXPECT_TRUE(Reparsed == L) << "seed " << Seed;

    std::string Why;
    std::optional<fuzz::Program> Back =
        fuzz::fromLitmusProgram(Reparsed, &Why);
    ASSERT_TRUE(Back.has_value()) << Why;
    EXPECT_EQ(Back->NumVars, P.NumVars);
    for (unsigned T = 0; T != 2; ++T) {
      ASSERT_EQ(Back->Thread[T].size(), P.Thread[T].size());
      for (size_t I = 0; I != P.Thread[T].size(); ++I) {
        EXPECT_EQ(Back->Thread[T][I].K, P.Thread[T][I].K);
        EXPECT_EQ(Back->Thread[T][I].Var, P.Thread[T][I].Var);
        if (P.Thread[T][I].K != fuzz::Op::Kind::Load &&
            P.Thread[T][I].K != fuzz::Op::Kind::Fence) {
          EXPECT_EQ(Back->Thread[T][I].Value, P.Thread[T][I].Value);
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Parse errors carry exact positions
//===----------------------------------------------------------------------===//

TEST(LitmusFormatTest, UnknownLocationReportsLineAndColumn) {
  const ParseError Err = parseFail("litmus t\n"
                                   "locations x\n"
                                   "thread 0 {\n"
                                   "  st z 1\n"
                                   "}\n");
  EXPECT_EQ(Err.Line, 4u);
  EXPECT_EQ(Err.Col, 6u); // The 'z'.
  EXPECT_NE(Err.Message.find("unknown location 'z'"), std::string::npos)
      << Err.Message;
  EXPECT_EQ(Err.render("t.litmus"),
            "t.litmus:4:6: error: " + Err.Message);
}

TEST(LitmusFormatTest, MissingLitmusHeaderIsRejected) {
  const ParseError Err = parseFail("locations x\n");
  EXPECT_EQ(Err.Line, 1u);
  EXPECT_EQ(Err.Col, 1u);
  EXPECT_NE(Err.Message.find("litmus"), std::string::npos);
}

TEST(LitmusFormatTest, OutOfOrderThreadIndexIsRejected) {
  const ParseError Err = parseFail("litmus t\nlocations x\n"
                                   "thread 1 {\n  st x 1\n}\n");
  EXPECT_EQ(Err.Line, 3u);
  EXPECT_EQ(Err.Col, 8u); // The '1'.
  EXPECT_NE(Err.Message.find("expected thread 0"), std::string::npos)
      << Err.Message;
}

TEST(LitmusFormatTest, AwaitWithoutAsyncLoadIsRejected) {
  // 'await r0' where r0 was a plain load: caught by validation.
  const ParseError Err = parseFail("litmus t\nlocations x\n"
                                   "thread 0 {\n  ld r0 x\n  await r0\n}\n");
  EXPECT_NE(Err.Message.find("no pending split-phase load"),
            std::string::npos)
      << Err.Message;
}

TEST(LitmusFormatTest, UnawaitedAsyncLoadIsRejected) {
  const ParseError Err = parseFail("litmus t\nlocations x\n"
                                   "thread 0 {\n  ldasync r0 x\n}\n");
  EXPECT_NE(Err.Message.find("unawaited"), std::string::npos)
      << Err.Message;
}

TEST(LitmusFormatTest, TwoLoadsIntoOneRegisterAreRejected) {
  const ParseError Err =
      parseFail("litmus t\nlocations x y\n"
                "thread 0 {\n  ld r0 x\n  ld r0 y\n}\n");
  EXPECT_NE(Err.Message.find("destination of 2 loads"), std::string::npos)
      << Err.Message;
}

TEST(LitmusFormatTest, UnknownNameInForbiddenReportsPosition) {
  const ParseError Err = parseFail("litmus t\nlocations x\n"
                                   "thread 0 {\n  st x 1\n}\n"
                                   "forbidden r9 = 1\n");
  EXPECT_EQ(Err.Line, 6u);
  EXPECT_EQ(Err.Col, 11u); // The 'r9'.
  EXPECT_NE(Err.Message.find("unknown register or location 'r9'"),
            std::string::npos)
      << Err.Message;
}

TEST(LitmusFormatTest, ReservedWordCannotNameARegister) {
  const ParseError Err = parseFail("litmus t\nlocations x\n"
                                   "thread 0 {\n  ld fence x\n}\n");
  EXPECT_NE(Err.Message.find("reserved word"), std::string::npos)
      << Err.Message;
}

TEST(LitmusFormatTest, OversizedIntegerIsRejected) {
  const ParseError Err = parseFail("litmus t\nlocations x\n"
                                   "thread 0 {\n  st x 4294967296\n}\n");
  EXPECT_EQ(Err.Line, 4u);
  EXPECT_NE(Err.Message.find("does not fit a word"), std::string::npos)
      << Err.Message;
}

TEST(LitmusFormatTest, UnterminatedStringIsRejected) {
  const ParseError Err = parseFail("litmus \"t\n");
  EXPECT_EQ(Err.Line, 1u);
  EXPECT_EQ(Err.Col, 8u);
  EXPECT_NE(Err.Message.find("unterminated"), std::string::npos);
}

TEST(LitmusFormatTest, StrayPunctuationIsRejected) {
  const ParseError Err = parseFail("litmus t\nlocations x\n"
                                   "forbidden x = 1 / x = 2\n");
  EXPECT_EQ(Err.Line, 3u);
  EXPECT_NE(Err.Message.find("'/\\'"), std::string::npos) << Err.Message;
}

//===----------------------------------------------------------------------===//
// Fuzz bridge semantics
//===----------------------------------------------------------------------===//

TEST(LitmusBridgeTest, ExportPinsTheObservedOutcome) {
  // A program whose SC outcomes are easy to enumerate: T0 stores, T1
  // loads twice. Pin a fabricated "outcome" and check the clause.
  fuzz::Program P;
  P.NumVars = 2;
  P.Thread[0] = {{fuzz::Op::Kind::Store, 0, 1}};
  P.Thread[1] = {{fuzz::Op::Kind::Load, 0, 0},
                 {fuzz::Op::Kind::Load, 1, 0}};
  const fuzz::Outcome Weak = {1, 0, 1, 0}; // r0, r1, v0, v1.
  const Program L = fuzz::toLitmusProgram(P, "case", &Weak);
  ASSERT_EQ(L.Forbidden.size(), 4u);
  EXPECT_TRUE(L.evalForbidden({1, 0}, {1, 0}));
  EXPECT_FALSE(L.evalForbidden({1, 1}, {1, 0}));
  EXPECT_EQ(L.PhaseJitter, 8u) << "must match the fuzz interpreter";

  // The exported artifact replays: the weak outcome the fuzzer saw is
  // exactly what LitmusRunner reports as weak.
  const std::string Text = printLitmus(L);
  EXPECT_NE(Text.find("forbidden"), std::string::npos);
}

TEST(LitmusBridgeTest, ImportRejectsUnrepresentablePrograms) {
  std::string Why;
  EXPECT_FALSE(
      fuzz::fromLitmusProgram(*findCatalogProgram("IRIW"), &Why));
  EXPECT_NE(Why.find("two threads"), std::string::npos) << Why;

  EXPECT_FALSE(fuzz::fromLitmusProgram(*findCatalogProgram("LB"), &Why));
  EXPECT_NE(Why.find("no fuzz equivalent"), std::string::npos) << Why;

  Program Init = parseOk("litmus t\nlocations x\ninit { x = 3 }\n"
                         "thread 0 @ block 0 {\n  st x 1\n}\n"
                         "thread 1 @ block 1 {\n  ld r0 x\n}\n");
  EXPECT_FALSE(fuzz::fromLitmusProgram(Init, &Why));
  EXPECT_NE(Why.find("all-zero initial state"), std::string::npos) << Why;
}

//===----------------------------------------------------------------------===//
// Validation (programmatic construction)
//===----------------------------------------------------------------------===//

TEST(ProgramValidationTest, CatalogIsValid) {
  for (const Program &P : catalog())
    EXPECT_EQ(P.validate(), "") << P.Name;
}

TEST(ProgramValidationTest, NameCollisionsAreRejected) {
  Program P = *findCatalogProgram("MP");
  P.Registers[0] = "x"; // Collides with the location.
  EXPECT_NE(P.validate().find("both a register and a location"),
            std::string::npos);
}

TEST(ProgramValidationTest, ConditionIndexBoundsAreChecked) {
  Program P = *findCatalogProgram("MP");
  P.Forbidden.push_back({/*IsReg=*/false, /*Index=*/7, false, 0});
  EXPECT_NE(P.validate().find("out of range"), std::string::npos);
}
