# End-to-end crash/resume smoke for the sharded campaign fabric, run as a
# CTest script (cli.campaign_resume / cli.campaign_resume_grid):
#
#   1. Run the campaign monolithically (--out) — the reference bytes.
#   2. Run it sharded with GPUWMM_CAMPAIGN_CRASH_AFTER=N: the worker must
#      SIGKILL itself after N durable appends (nonzero exit).
#   3. `gpuwmm report` on the incomplete store must fail and say --resume.
#   4. `campaign --resume` must finish only the missing cells.
#   5. `gpuwmm report` must now reproduce the monolithic JSON byte for
#      byte — across --jobs=1 and --jobs=4, and again for two workers
#      striping disjoint --cells halves.
#
# Inputs: GPUWMM_BIN (the gpuwmm binary), WORK_DIR (scratch; wiped),
# GRID (semicolon list of campaign flags), CRASH_AFTER (N), NUM_CELLS
# (the grid's work-list size, for the --cells stripe bounds).

if(NOT GPUWMM_BIN OR NOT WORK_DIR OR NOT GRID OR NOT CRASH_AFTER
   OR NOT NUM_CELLS)
  message(FATAL_ERROR "need -DGPUWMM_BIN, -DWORK_DIR, -DGRID, "
                      "-DCRASH_AFTER, -DNUM_CELLS")
endif()
separate_arguments(GRID UNIX_COMMAND "${GRID}")

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})
set(MONO ${WORK_DIR}/mono.json)

function(run_expect_success what)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rv
                  ERROR_VARIABLE err)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "${what} failed (exit ${rv}):\n${err}")
  endif()
endfunction()

# 1. The monolithic reference report.
run_expect_success("monolithic campaign"
  ${GPUWMM_BIN} campaign ${GRID} --out=${MONO})

function(check_resume_cycle label outdir)
  # 2. Crash mid-campaign: the hook SIGKILLs the worker, so the exit code
  # must be nonzero (ctest sees 128+SIGKILL or the shell's 137).
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env GPUWMM_CAMPAIGN_CRASH_AFTER=${CRASH_AFTER}
            ${GPUWMM_BIN} campaign ${GRID} --out-dir=${outdir} ${ARGN}
    RESULT_VARIABLE rv ERROR_VARIABLE err)
  if(rv EQUAL 0)
    message(FATAL_ERROR "${label}: crash hook did not fire:\n${err}")
  endif()

  # 3. Reporting the incomplete store must fail with the resume hint.
  execute_process(COMMAND ${GPUWMM_BIN} report --dir=${outdir}
                  RESULT_VARIABLE rv OUTPUT_QUIET ERROR_VARIABLE err)
  if(rv EQUAL 0)
    message(FATAL_ERROR "${label}: report accepted an incomplete store")
  endif()
  if(NOT err MATCHES "--resume")
    message(FATAL_ERROR "${label}: incomplete-store error lacks the "
                        "--resume hint:\n${err}")
  endif()

  # 4. Resume finishes the missing cells (the hook must be gone from the
  # environment here, which it is: -E env scoped it to the crashed run).
  run_expect_success("${label}: resume"
    ${GPUWMM_BIN} campaign ${GRID} --out-dir=${outdir} --resume ${ARGN})

  # 5. Merged report == monolithic report, byte for byte.
  set(merged ${outdir}.json)
  run_expect_success("${label}: report"
    ${GPUWMM_BIN} report --dir=${outdir} --out=${merged})
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${MONO} ${merged}
                  RESULT_VARIABLE rv)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "${label}: merged report differs from the "
                        "monolithic report (${merged} vs ${MONO})")
  endif()
endfunction()

check_resume_cycle("jobs=1" ${WORK_DIR}/resume-j1 --jobs=1)
check_resume_cycle("jobs=4" ${WORK_DIR}/resume-j4 --jobs=4)

# Two workers striping disjoint halves of the same store: worker A crashes
# mid-stripe and is resumed; worker B completes its stripe normally. The
# cell count is grid-dependent, so split at CRASH_AFTER + 1 — worker A's
# stripe always holds more than CRASH_AFTER cells, so the hook fires.
set(striped ${WORK_DIR}/striped)
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env GPUWMM_CAMPAIGN_CRASH_AFTER=${CRASH_AFTER}
          ${GPUWMM_BIN} campaign ${GRID} --out-dir=${striped}
          --cells=0..${CRASH_AFTER}
  RESULT_VARIABLE rv ERROR_VARIABLE err)
if(rv EQUAL 0)
  message(FATAL_ERROR "striped: crash hook did not fire:\n${err}")
endif()
math(EXPR rest_from "${CRASH_AFTER} + 1")
math(EXPR last_cell "${NUM_CELLS} - 1")
run_expect_success("striped: worker B"
  ${GPUWMM_BIN} campaign ${GRID} --out-dir=${striped}
  --cells=${rest_from}..${last_cell})
run_expect_success("striped: worker A resumes"
  ${GPUWMM_BIN} campaign ${GRID} --out-dir=${striped}
  --cells=0..${CRASH_AFTER} --resume)
run_expect_success("striped: report"
  ${GPUWMM_BIN} report --dir=${striped} --out=${striped}.json)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${MONO}
                ${striped}.json RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "striped: merged report differs from the monolithic "
                      "report")
endif()

message(STATUS "campaign resume smoke OK: crash -> resume -> byte-identical "
               "report (jobs 1 and 4, plus a striped two-worker store)")
