# Smoke-tests the `gpuwmm campaign` CLI: runs a tiny grid and validates
# that the JSON report parses and contains every grid cell, using CMake's
# native string(JSON) parser (no Python/network dependency).
#
# Usage:
#   cmake -DGPUWMM_BIN=<path-to-gpuwmm> -DOUT=<scratch.json>
#         -P ValidateCampaignJson.cmake

if(NOT GPUWMM_BIN OR NOT OUT)
  message(FATAL_ERROR "pass -DGPUWMM_BIN=... and -DOUT=...")
endif()

set(CHIPS titan k20)
set(ENVS no-str- sys-str+)
set(APPS cbe-dot cbe-ht)
set(LITMUS MP IRIW)
list(JOIN CHIPS "," CHIPS_CSV)
list(JOIN ENVS "," ENVS_CSV)
list(JOIN APPS "," APPS_CSV)
list(JOIN LITMUS "," LITMUS_CSV)

execute_process(
  COMMAND "${GPUWMM_BIN}" campaign "--chips=${CHIPS_CSV}"
          "--envs=${ENVS_CSV}" "--apps=${APPS_CSV}"
          "--litmus=${LITMUS_CSV}" --runs=10 --seed=3
          --jobs=2 --oracle=5 "--out=${OUT}"
  RESULT_VARIABLE RV)
if(NOT RV EQUAL 0)
  message(FATAL_ERROR "gpuwmm campaign exited with ${RV}")
endif()

file(READ "${OUT}" REPORT)

string(JSON SCHEMA ERROR_VARIABLE ERR GET "${REPORT}" schema)
if(NOT SCHEMA STREQUAL "gpuwmm-campaign-v2")
  message(FATAL_ERROR "bad or missing schema: ${SCHEMA} ${ERR}")
endif()

# The schema_version + tool/build metadata header (pinned: consumers key
# migrations off these fields).
string(JSON SCHEMA_VERSION ERROR_VARIABLE ERR GET "${REPORT}" schema_version)
if(NOT SCHEMA_VERSION EQUAL 2)
  message(FATAL_ERROR "bad or missing schema_version: ${SCHEMA_VERSION} ${ERR}")
endif()
string(JSON TOOL_NAME ERROR_VARIABLE ERR GET "${REPORT}" tool name)
if(NOT TOOL_NAME STREQUAL "gpuwmm")
  message(FATAL_ERROR "bad or missing tool.name: ${TOOL_NAME} ${ERR}")
endif()
string(JSON TOOL_VERSION ERROR_VARIABLE ERR GET "${REPORT}" tool version)
if(TOOL_VERSION STREQUAL "" OR TOOL_VERSION STREQUAL "unknown")
  message(FATAL_ERROR "bad or missing tool.version: ${TOOL_VERSION}")
endif()
string(JSON ORACLE_EVERY ERROR_VARIABLE ERR GET "${REPORT}" oracle_every)
if(NOT ORACLE_EVERY EQUAL 5)
  message(FATAL_ERROR "bad or missing oracle_every: ${ORACLE_EVERY} ${ERR}")
endif()

string(JSON NCELLS LENGTH "${REPORT}" cells)
if(NOT NCELLS EQUAL 8) # 2 chips * 2 envs * 2 apps
  message(FATAL_ERROR "expected 8 cells, got ${NCELLS}")
endif()

string(JSON NSUMMARIES LENGTH "${REPORT}" summaries)
if(NOT NSUMMARIES EQUAL 4) # 2 chips * 2 envs
  message(FATAL_ERROR "expected 4 summaries, got ${NSUMMARIES}")
endif()

# Collect the (chip, env, app) triple of every reported cell, checking
# each cell carries well-formed counts.
set(SEEN "")
math(EXPR LAST "${NCELLS} - 1")
foreach(I RANGE ${LAST})
  string(JSON CCHIP GET "${REPORT}" cells ${I} chip)
  string(JSON CENV GET "${REPORT}" cells ${I} env)
  string(JSON CAPP GET "${REPORT}" cells ${I} app)
  string(JSON CRUNS GET "${REPORT}" cells ${I} runs)
  string(JSON CERRS GET "${REPORT}" cells ${I} errors)
  if(NOT CRUNS EQUAL 10)
    message(FATAL_ERROR "cell ${I}: expected 10 runs, got ${CRUNS}")
  endif()
  if(CERRS GREATER CRUNS)
    message(FATAL_ERROR "cell ${I}: errors ${CERRS} > runs ${CRUNS}")
  endif()
  # The oracle sampled this cell: axiom validation must be clean.
  string(JSON CCHECKED GET "${REPORT}" cells ${I} oracle_checked)
  string(JSON CVIOL GET "${REPORT}" cells ${I} oracle_violations)
  if(CCHECKED EQUAL 0)
    message(FATAL_ERROR "cell ${I}: oracle sampled no runs")
  endif()
  if(NOT CVIOL EQUAL 0)
    message(FATAL_ERROR "cell ${I}: ${CVIOL} oracle violation(s)")
  endif()
  # The engine field (schema v2, additive): both grid apps lower to the
  # batched engine, and this validator runs without --engine, so every
  # cell must report the batched path.
  string(JSON CENGINE ERROR_VARIABLE ERR GET "${REPORT}" cells ${I} engine)
  if(NOT CENGINE STREQUAL "batched")
    message(FATAL_ERROR "cell ${I}: expected engine 'batched', got"
                        " ${CENGINE} ${ERR}")
  endif()
  list(APPEND SEEN "${CCHIP}/${CENV}/${CAPP}")
endforeach()

# Every grid cell must be present exactly once.
foreach(CHIP IN LISTS CHIPS)
  foreach(ENV IN LISTS ENVS)
    foreach(APP IN LISTS APPS)
      set(KEY "${CHIP}/${ENV}/${APP}")
      list(FIND SEEN "${KEY}" IDX)
      if(IDX EQUAL -1)
        message(FATAL_ERROR "missing grid cell ${KEY}")
      endif()
    endforeach()
  endforeach()
endforeach()

# The litmus dimension: one cell per (chip, test), counts well-formed.
string(JSON NLITMUS LENGTH "${REPORT}" litmus)
if(NOT NLITMUS EQUAL 4) # 2 chips * 2 tests
  message(FATAL_ERROR "expected 4 litmus cells, got ${NLITMUS}")
endif()
math(EXPR LAST "${NLITMUS} - 1")
foreach(I RANGE ${LAST})
  string(JSON LTEST GET "${REPORT}" litmus ${I} test)
  string(JSON LRUNS GET "${REPORT}" litmus ${I} runs)
  string(JSON LWEAK GET "${REPORT}" litmus ${I} weak)
  list(FIND LITMUS "${LTEST}" IDX)
  if(IDX EQUAL -1)
    message(FATAL_ERROR "litmus cell ${I}: unexpected test ${LTEST}")
  endif()
  if(LWEAK GREATER LRUNS)
    message(FATAL_ERROR "litmus cell ${I}: weak ${LWEAK} > runs ${LRUNS}")
  endif()
  # Sampled litmus runs additionally pin checker-vs-simulator agreement.
  string(JSON LVIOL GET "${REPORT}" litmus ${I} oracle_violations)
  if(NOT LVIOL EQUAL 0)
    message(FATAL_ERROR "litmus cell ${I}: ${LVIOL} oracle violation(s)")
  endif()
endforeach()

message(STATUS "campaign JSON valid: ${NCELLS} cells, ${NSUMMARIES} summaries, ${NLITMUS} litmus cells")

# --- --oracle=all: every run of every cell is verified ----------------------
# A second 2x3-cell grid (1 chip x 2 envs x 3 apps) with the streaming
# oracle on every run: per-cell oracle_checked must equal runs and stay
# violation-free, and the cell counts must be bit-identical to the same
# grid with the oracle off (the oracle observes only).
set(ALL_OUT "${OUT}.oracle-all.json")
set(OFF_OUT "${OUT}.oracle-off.json")
execute_process(
  COMMAND "${GPUWMM_BIN}" campaign --chips=titan
          "--envs=no-str-,sys-str+" "--apps=cbe-dot,cbe-ht,sdk-red"
          --runs=10 --seed=3 --jobs=2 --oracle=all "--out=${ALL_OUT}"
  RESULT_VARIABLE RV)
if(NOT RV EQUAL 0)
  message(FATAL_ERROR "gpuwmm campaign --oracle=all exited with ${RV}")
endif()
execute_process(
  COMMAND "${GPUWMM_BIN}" campaign --chips=titan
          "--envs=no-str-,sys-str+" "--apps=cbe-dot,cbe-ht,sdk-red"
          --runs=10 --seed=3 --jobs=2 "--out=${OFF_OUT}"
  RESULT_VARIABLE RV)
if(NOT RV EQUAL 0)
  message(FATAL_ERROR "gpuwmm campaign (oracle off) exited with ${RV}")
endif()

file(READ "${ALL_OUT}" ALL_REPORT)
string(JSON ORACLE_EVERY ERROR_VARIABLE ERR GET "${ALL_REPORT}" oracle_every)
if(NOT ORACLE_EVERY EQUAL 1)
  message(FATAL_ERROR "--oracle=all: expected oracle_every 1, got"
                      " ${ORACLE_EVERY} ${ERR}")
endif()
string(JSON NALL LENGTH "${ALL_REPORT}" cells)
if(NOT NALL EQUAL 6) # 1 chip * 2 envs * 3 apps
  message(FATAL_ERROR "--oracle=all: expected 6 cells, got ${NALL}")
endif()
file(READ "${OFF_OUT}" OFF_REPORT)
math(EXPR LAST "${NALL} - 1")
foreach(I RANGE ${LAST})
  string(JSON ARUNS GET "${ALL_REPORT}" cells ${I} runs)
  string(JSON ACHECKED GET "${ALL_REPORT}" cells ${I} oracle_checked)
  string(JSON AVIOL GET "${ALL_REPORT}" cells ${I} oracle_violations)
  if(NOT ACHECKED EQUAL ARUNS)
    message(FATAL_ERROR "--oracle=all cell ${I}: oracle_checked"
                        " ${ACHECKED} != runs ${ARUNS}")
  endif()
  if(NOT AVIOL EQUAL 0)
    message(FATAL_ERROR "--oracle=all cell ${I}: ${AVIOL} violation(s)")
  endif()
  # Counts must not depend on the oracle: compare against the oracle-off
  # report field by field.
  foreach(FIELD chip env app runs errors timeouts engine)
    string(JSON AVAL GET "${ALL_REPORT}" cells ${I} ${FIELD})
    string(JSON OVAL GET "${OFF_REPORT}" cells ${I} ${FIELD})
    if(NOT AVAL STREQUAL OVAL)
      message(FATAL_ERROR "--oracle=all cell ${I}: ${FIELD} perturbed"
                          " (${AVAL} vs ${OVAL})")
    endif()
  endforeach()
endforeach()

message(STATUS "campaign --oracle=all valid: ${NALL} cells, every run checked")
