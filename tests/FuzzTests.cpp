//===- tests/FuzzTests.cpp - random-program fuzzing tests ------------------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// Tests the exhaustive SC reference against hand-computed outcome sets and
// property-tests the memory model's soundness on random programs: with a
// fence after every access, the weak machine only ever produces
// SC-reachable outcomes, even under the aggressive testing environment.
//
//===----------------------------------------------------------------------===//

#include "fuzz/ProgramFuzzer.h"

#include "gtest/gtest.h"

using namespace gpuwmm;
using namespace gpuwmm::fuzz;

namespace {

const sim::ChipProfile &titan() {
  return *sim::ChipProfile::lookup("titan");
}

/// Builds the MP idiom as a fuzzer program:
///   T0: st(v0,1) st(v1,1)      T1: ld(v1) ld(v0)
Program mpProgram() {
  Program P;
  P.NumVars = 2;
  P.Thread[0] = {{Op::Kind::Store, 0, 1}, {Op::Kind::Store, 1, 1}};
  P.Thread[1] = {{Op::Kind::Load, 1, 0}, {Op::Kind::Load, 0, 0}};
  return P;
}

} // namespace

//===----------------------------------------------------------------------===//
// SC enumerator
//===----------------------------------------------------------------------===//

TEST(ScEnumeratorTest, MpOutcomesMatchHandEnumeration) {
  // Outcome layout for MP: [r1=ld(v1), r2=ld(v0), final v0, final v1].
  const auto Sc = enumerateScOutcomes(mpProgram());
  // SC allows (0,0), (0,1)... r1=1 implies r2=1. Finals always (1,1).
  EXPECT_EQ(Sc.size(), 3u);
  EXPECT_TRUE(Sc.count({0, 0, 1, 1}));
  EXPECT_TRUE(Sc.count({0, 1, 1, 1}));
  EXPECT_TRUE(Sc.count({1, 1, 1, 1}));
  EXPECT_FALSE(Sc.count({1, 0, 1, 1})) << "the MP weak outcome is not SC";
}

TEST(ScEnumeratorTest, SbOutcomesMatchHandEnumeration) {
  // SB: T0: st(v0,1) ld(v1); T1: st(v1,1) ld(v0).
  Program P;
  P.NumVars = 2;
  P.Thread[0] = {{Op::Kind::Store, 0, 1}, {Op::Kind::Load, 1, 0}};
  P.Thread[1] = {{Op::Kind::Store, 1, 1}, {Op::Kind::Load, 0, 0}};
  const auto Sc = enumerateScOutcomes(P);
  // Outcome layout: [r1=ld(v1), r2=ld(v0), v0, v1]. SC forbids (0,0).
  EXPECT_FALSE(Sc.count({0, 0, 1, 1}));
  EXPECT_TRUE(Sc.count({1, 1, 1, 1}));
  EXPECT_TRUE(Sc.count({0, 1, 1, 1}));
  EXPECT_TRUE(Sc.count({1, 0, 1, 1}));
}

TEST(ScEnumeratorTest, AtomicsAccumulate) {
  Program P;
  P.NumVars = 1;
  P.Thread[0] = {{Op::Kind::AtomicAdd, 0, 3}};
  P.Thread[1] = {{Op::Kind::AtomicAdd, 0, 5}};
  const auto Sc = enumerateScOutcomes(P);
  ASSERT_EQ(Sc.size(), 1u);
  EXPECT_TRUE(Sc.count({8})) << "adds commute; one final state";
}

TEST(ScEnumeratorTest, FencesAreScNoOps) {
  Program P = mpProgram();
  const auto Plain = enumerateScOutcomes(P);
  const auto Fenced = enumerateScOutcomes(P.fullyFenced());
  EXPECT_EQ(Plain, Fenced);
}

//===----------------------------------------------------------------------===//
// Program generation
//===----------------------------------------------------------------------===//

TEST(ProgramTest, GenerateRespectsBounds) {
  Rng R(5);
  for (int I = 0; I != 50; ++I) {
    const Program P = Program::generate(R, 3, 6, /*WithFences=*/false);
    EXPECT_EQ(P.NumVars, 3u);
    for (unsigned T = 0; T != 2; ++T) {
      EXPECT_EQ(P.Thread[T].size(), 6u);
      for (const Op &O : P.Thread[T]) {
        EXPECT_NE(O.K, Op::Kind::Fence);
        EXPECT_LT(O.Var, 3u);
      }
    }
  }
}

TEST(ProgramTest, FullyFencedDoublesAccesses) {
  Rng R(6);
  const Program P = Program::generate(R, 2, 5, false);
  const Program F = P.fullyFenced();
  EXPECT_EQ(F.Thread[0].size(), 10u);
  EXPECT_EQ(F.Thread[1].size(), 10u);
}

TEST(ProgramTest, ListingMentionsEveryOpKind) {
  Program P;
  P.NumVars = 1;
  P.Thread[0] = {{Op::Kind::Store, 0, 7},
                 {Op::Kind::Load, 0, 0},
                 {Op::Kind::AtomicAdd, 0, 1},
                 {Op::Kind::Fence, 0, 0}};
  const std::string S = P.str();
  EXPECT_NE(S.find("st(v0,7)"), std::string::npos);
  EXPECT_NE(S.find("ld(v0)"), std::string::npos);
  EXPECT_NE(S.find("add(v0,1)"), std::string::npos);
  EXPECT_NE(S.find("fence"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Weak-machine soundness (the headline property)
//===----------------------------------------------------------------------===//

TEST(FuzzSoundnessTest, FullyFencedOutcomesAreAlwaysScReachable) {
  // 60 random programs, each fully fenced, each run 6 times under the
  // aggressive environment: every outcome must be SC-reachable. This is
  // the model-soundness property the whole reproduction rests on.
  Rng R(4242);
  for (int I = 0; I != 60; ++I) {
    const Program P =
        Program::generate(R, 3, 4, /*WithFences=*/false).fullyFenced();
    const FuzzResult Result =
        fuzzProgram(P, titan(), /*Runs=*/6, 1000 + I, /*Stressed=*/true);
    EXPECT_EQ(Result.WeakOutcomes, 0u)
        << "non-SC outcome from a fully fenced program:\n"
        << P.str();
  }
}

TEST(FuzzSoundnessTest, SequentialOutcomesAreScReachableUnfenced) {
  // The same property for plain programs on rare native runs: most
  // executions are SC; the few that are not are genuine weak behaviours.
  Rng R(99);
  unsigned Weak = 0, Total = 0;
  for (int I = 0; I != 30; ++I) {
    const Program P = Program::generate(R, 3, 4, false);
    const FuzzResult Result =
        fuzzProgram(P, titan(), 10, 2000 + I, /*Stressed=*/false);
    Weak += Result.WeakOutcomes;
    Total += Result.Runs;
  }
  EXPECT_LT(Weak * 50, Total) << "native weak outcomes must be rare (<2%)";
}

TEST(FuzzWeaknessTest, StressExposesWeakOutcomesOnRandomPrograms) {
  // Black-box generality (the paper's Sec. 3 goal): the tuned stress
  // provokes non-SC outcomes on arbitrary unfenced programs, not just the
  // three hand-written litmus idioms.
  Rng R(77);
  unsigned ProgramsWithWeak = 0;
  for (int I = 0; I != 25; ++I) {
    const Program P = Program::generate(R, 3, 5, false);
    const FuzzResult Result =
        fuzzProgram(P, titan(), 40, 3000 + I, /*Stressed=*/true);
    ProgramsWithWeak += Result.WeakOutcomes > 0;
  }
  EXPECT_GE(ProgramsWithWeak, 5u)
      << "the tuned environment must surface weak behaviour on a healthy "
         "fraction of random programs";
}

TEST(FuzzWeaknessTest, MpWeakOutcomeIsObservableUnderStress) {
  const FuzzResult Result =
      fuzzProgram(mpProgram(), titan(), 300, 555, /*Stressed=*/true);
  EXPECT_GT(Result.WeakOutcomes, 5u);
  EXPECT_GE(Result.DistinctWeak, 1u);
  EXPECT_EQ(Result.ScSetSize, 3u);
}

//===----------------------------------------------------------------------===//
// Batched execution identity
//===----------------------------------------------------------------------===//

TEST(FuzzBatchedTest, CompiledRunsMatchInterpreterBitForBit) {
  // The batched engine behind fuzzProgram must reproduce the coroutine
  // interpreter's outcome exactly — same seed, same outcome vector — for
  // random programs, native and stressed alike.
  Rng R(7100);
  sim::ContextLease Scalar, Batched;
  for (int I = 0; I != 40; ++I) {
    const Program P = Program::generate(R, 3, 5, /*WithFences=*/true);
    const CompiledProgram CP = compileProgram(P, titan());
    const bool Stressed = I % 2 == 0;
    for (uint64_t Seed = 0; Seed != 5; ++Seed) {
      const uint64_t RunSeed = 9000 + 100 * I + Seed;
      EXPECT_EQ(runOnWeakMachine(Scalar.get(), P, titan(), RunSeed, Stressed),
                runCompiledOnWeakMachine(Batched.get(), CP, titan(), RunSeed,
                                         Stressed))
          << "divergence at seed " << RunSeed << " (stressed=" << Stressed
          << "):\n"
          << P.str();
    }
  }
}
