//===- tests/ExecutionContextTests.cpp - reusable engine tests ----------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// Pins the reusable execution engine's contract (DESIGN.md Sec. 12):
// a reset context is observably indistinguishable from a fresh one, so
// results are bit-identical between fresh-context and reused-context
// execution across every consumer layer (litmus, apps, fuzz, harden,
// harness), for any chip-rebinding history.
//
//===----------------------------------------------------------------------===//

#include "sim/ExecutionContext.h"

#include "apps/Application.h"
#include "fuzz/ProgramFuzzer.h"
#include "harden/FenceInsertion.h"
#include "harness/EnvironmentRunner.h"
#include "litmus/Litmus.h"
#include "sim/Device.h"
#include "sim/ThreadContext.h"

#include "gtest/gtest.h"

#include <vector>

using namespace gpuwmm;
using namespace gpuwmm::sim;

namespace {

const ChipProfile &titan() { return *ChipProfile::lookup("titan"); }
const ChipProfile &gtx980() { return *ChipProfile::lookup("980"); }

/// A workload that touches every engine subsystem: buffered stores across
/// banks, atomics, async loads, device/block fences, barriers, host
/// writes, and (optionally) congestion and thread randomisation.
struct ProbeResult {
  std::vector<Word> Memory;
  uint64_t Ticks = 0;
  MemStats Stats;

  bool operator==(const ProbeResult &O) const {
    return Memory == O.Memory && Ticks == O.Ticks &&
           Stats.Loads == O.Stats.Loads && Stats.Stores == O.Stats.Stores &&
           Stats.Atomics == O.Stats.Atomics &&
           Stats.DeviceFences == O.Stats.DeviceFences &&
           Stats.BlockFences == O.Stats.BlockFences &&
           Stats.DrainedStores == O.Stats.DrainedStores &&
           Stats.AsyncLoads == O.Stats.AsyncLoads &&
           Stats.ForcedSelfDrains == O.Stats.ForcedSelfDrains;
  }
};

Kernel probeKernel(ThreadContext &Ctx, Addr Data, Addr Flags, Addr Out) {
  const unsigned Id = Ctx.globalId();
  co_await Ctx.yield(1 + static_cast<unsigned>(Ctx.rand(8)));
  // Cross-bank stores (Data is patch-spread), then an atomic handshake.
  co_await Ctx.st(Data + Id * 64, Id + 1);
  co_await Ctx.atomicAdd(Flags, 1);
  if (Id % 2 == 0)
    co_await Ctx.fence();
  else
    co_await Ctx.fenceBlock();
  const Word Ticket = co_await Ctx.ldAsync(Data);
  co_await Ctx.syncthreads();
  const Word V = co_await Ctx.awaitLoad(Ticket);
  const Word F = co_await Ctx.ld(Flags);
  co_await Ctx.st(Out + Id, V + F);
}

ProbeResult runProbe(Device &Dev) {
  const Addr Data = Dev.alloc(8 * 64);
  const Addr Flags = Dev.alloc(1);
  const Addr Out = Dev.alloc(8);
  Dev.write(Data, 7);
  const RunResult R =
      Dev.run({/*GridDim=*/2, /*BlockDim=*/4},
              [=](ThreadContext &Ctx) -> Kernel {
                return probeKernel(Ctx, Data, Flags, Out);
              });
  EXPECT_TRUE(R.completed());
  ProbeResult P;
  for (Addr A = 0; A != Dev.memory().allocatedWords(); ++A)
    P.Memory.push_back(Dev.read(A));
  P.Ticks = R.Ticks;
  P.Stats = R.Mem;
  return P;
}

} // namespace

//===----------------------------------------------------------------------===//
// Device-level reset semantics
//===----------------------------------------------------------------------===//

TEST(ExecutionContext, ReusedContextReproducesFreshRun) {
  // Fresh reference.
  ExecutionContext Fresh;
  Device FreshDev(Fresh, titan(), /*Seed=*/123);
  const ProbeResult Expected = runProbe(FreshDev);

  // Same run on a context dirtied by a different prior workload.
  ExecutionContext Reused;
  {
    Device Warmup(Reused, titan(), /*Seed=*/999);
    runProbe(Warmup);
  }
  Device ReusedDev(Reused, titan(), /*Seed=*/123);
  EXPECT_EQ(runProbe(ReusedDev), Expected);
}

TEST(ExecutionContext, ResetClearsEverything) {
  ExecutionContext Ctx;
  {
    Device Dev(Ctx, titan(), /*Seed=*/5);
    runProbe(Dev);
    EXPECT_GT(Ctx.memory().allocatedWords(), 0u);
    EXPECT_GT(Ctx.memory().stats().Stores, 0u);
  }
  Ctx.reset(titan(), /*Seed=*/5);
  EXPECT_EQ(Ctx.memory().allocatedWords(), 0u);
  EXPECT_EQ(Ctx.memory().stats().Stores, 0u);
  EXPECT_EQ(Ctx.memory().stats().Loads, 0u);
  EXPECT_FALSE(Ctx.memory().hasPendingWork());
  // Every word the previous run wrote reads back zero after reallocation.
  const Addr A = Ctx.memory().alloc(8 * 64 + 9);
  for (Addr W = A; W != A + 8 * 64 + 9; ++W)
    EXPECT_EQ(Ctx.memory().hostRead(W), 0u) << "word " << W;
}

TEST(ExecutionContext, RunAResetRunBEqualsFreshB) {
  // The reset-clears-everything property, end to end: run A, reset, run B
  // must equal B run on a fresh context — for several (A, B) seed pairs.
  for (uint64_t SeedA : {1ULL, 77ULL, 1234567ULL}) {
    for (uint64_t SeedB : {2ULL, 99ULL}) {
      ExecutionContext CtxFresh;
      Device DevFresh(CtxFresh, titan(), SeedB);
      const ProbeResult Expected = runProbe(DevFresh);

      ExecutionContext CtxReused;
      {
        Device DevA(CtxReused, titan(), SeedA);
        runProbe(DevA);
      }
      Device DevB(CtxReused, titan(), SeedB);
      EXPECT_EQ(runProbe(DevB), Expected)
          << "A-seed " << SeedA << ", B-seed " << SeedB;
    }
  }
}

TEST(ExecutionContext, ChipRebindingDoesNotLeakState) {
  // titan (64-word patches, Kepler) and 980 (Maxwell) disagree on every
  // model parameter; interleave them on one context and compare each run
  // to a fresh-context reference.
  ExecutionContext Reused;
  for (const ChipProfile *Chip :
       {&titan(), &gtx980(), &titan(), &gtx980()}) {
    ExecutionContext Fresh;
    Device FreshDev(Fresh, *Chip, /*Seed=*/17);
    const ProbeResult Expected = runProbe(FreshDev);
    Device ReusedDev(Reused, *Chip, /*Seed=*/17);
    EXPECT_EQ(runProbe(ReusedDev), Expected) << Chip->ShortName;
  }
}

TEST(ExecutionContext, LeaseRecyclesContextsPerThread) {
  const ExecutionContext *First = nullptr;
  {
    ContextLease L;
    First = &L.get();
  }
  // The next lease on this thread must hand back the same context.
  ContextLease L2;
  EXPECT_EQ(&L2.get(), First);
  // A nested lease (reference runs inside an application run) must get a
  // distinct context.
  ContextLease L3;
  EXPECT_NE(&L3.get(), &L2.get());
}

TEST(ExecutionContext, OneShotDeviceReusesLeasedContext) {
  uint64_t ResetsBefore = 0;
  {
    Device Dev(titan(), /*Seed=*/3);
    ResetsBefore = Dev.context().resets();
  }
  Device Dev2(titan(), /*Seed=*/4);
  // Same recycled context, one more reset — the classic constructor is on
  // the reuse path too.
  EXPECT_EQ(Dev2.context().resets(), ResetsBefore + 1);
}

//===----------------------------------------------------------------------===//
// Fresh-vs-reused equality across the consumer layers
//===----------------------------------------------------------------------===//

TEST(ExecutionContextLayers, LitmusRunnerIsHistoryIndependent) {
  // Two runners at one seed — the second's leased context was warmed by
  // the first's executions — must agree run by run.
  const litmus::LitmusInstance T{litmus::LitmusKind::MP, 128};
  const auto Tuned = stress::TunedStressParams::paperDefaults(titan());
  const auto S = litmus::LitmusRunner::MicroStress::at(Tuned.Seq, 0);
  std::vector<bool> FirstRuns, SecondRuns;
  {
    litmus::LitmusRunner Runner(titan(), /*Seed=*/21);
    for (unsigned I = 0; I != 200; ++I)
      FirstRuns.push_back(Runner.runOnce(T, S));
  }
  {
    litmus::LitmusRunner Runner(titan(), /*Seed=*/21);
    for (unsigned I = 0; I != 200; ++I)
      SecondRuns.push_back(Runner.runOnce(T, S));
  }
  EXPECT_EQ(FirstRuns, SecondRuns);
}

TEST(ExecutionContextLayers, AppsFreshVsReusedVerdictsAgree) {
  const stress::Environment Env{stress::StressKind::Sys, true};
  const auto Tuned = stress::TunedStressParams::paperDefaults(titan());
  ExecutionContext Reused;
  for (apps::AppKind App : apps::AllAppKinds) {
    for (uint64_t Run = 0; Run != 3; ++Run) {
      const uint64_t Seed = Rng::deriveStream(11, Run);
      ExecutionContext Fresh;
      const apps::AppVerdict Expected = apps::runApplicationOnce(
          Fresh, App, titan(), Env, Tuned, /*Policy=*/nullptr, Seed);
      const apps::AppVerdict Actual = apps::runApplicationOnce(
          Reused, App, titan(), Env, Tuned, /*Policy=*/nullptr, Seed);
      EXPECT_EQ(Actual, Expected)
          << apps::appName(App) << " run " << Run;
    }
  }
}

TEST(ExecutionContextLayers, FuzzFreshVsReusedOutcomesAgree) {
  Rng Gen(31);
  const fuzz::Program P = fuzz::Program::generate(Gen, /*NumVars=*/3,
                                                  /*OpsPerThread=*/5,
                                                  /*WithFences=*/false);
  ExecutionContext Reused;
  for (uint64_t Run = 0; Run != 20; ++Run) {
    const uint64_t Seed = Rng::deriveStream(32, Run);
    ExecutionContext Fresh;
    EXPECT_EQ(
        fuzz::runOnWeakMachine(Reused, P, titan(), Seed, /*Stressed=*/true),
        fuzz::runOnWeakMachine(Fresh, P, titan(), Seed, /*Stressed=*/true))
        << "run " << Run;
  }
}

TEST(ExecutionContextLayers, HardenOracleIsHistoryIndependent) {
  // Two identical oracles — the second running on thread-warmed contexts —
  // must agree on every check verdict and on executions().
  const auto App = apps::AppKind::CbeDot;
  const unsigned NumSites = apps::appNumSites(App);
  harden::AppCheckOracle OracleA(App, titan(), /*Seed=*/51,
                                 /*StableRuns=*/40, /*Pool=*/nullptr);
  const bool FullA =
      OracleA.checkApplication(sim::FencePolicy::all(NumSites), 40);
  const bool NoneA =
      OracleA.checkApplication(sim::FencePolicy::none(NumSites), 40);

  harden::AppCheckOracle OracleB(App, titan(), /*Seed=*/51,
                                 /*StableRuns=*/40, /*Pool=*/nullptr);
  const bool FullB =
      OracleB.checkApplication(sim::FencePolicy::all(NumSites), 40);
  const bool NoneB =
      OracleB.checkApplication(sim::FencePolicy::none(NumSites), 40);

  EXPECT_EQ(FullA, FullB);
  EXPECT_EQ(NoneA, NoneB);
  EXPECT_EQ(OracleA.executions(), OracleB.executions());
}

TEST(ExecutionContextLayers, HarnessCellIsHistoryIndependent) {
  const stress::Environment Env{stress::StressKind::Sys, true};
  const auto Tuned = stress::TunedStressParams::paperDefaults(titan());
  const harness::CellResult First = harness::runCell(
      apps::AppKind::CbeDot, titan(), Env, Tuned, /*Runs=*/30, /*Seed=*/61);
  const harness::CellResult Second = harness::runCell(
      apps::AppKind::CbeDot, titan(), Env, Tuned, /*Runs=*/30, /*Seed=*/61);
  EXPECT_EQ(First, Second);
}
