//===- tests/AppsTests.cpp - application case-study tests -----------------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// Parameterised over all ten case studies (Tab. 4): sequential
// consistency always satisfies the post-condition; conservative fencing
// hardens against the aggressive environment; the weak machine exposes
// errors exactly where the paper says it should.
//
//===----------------------------------------------------------------------===//

#include "apps/AppCompile.h"
#include "apps/Application.h"
#include "model/StreamingChecker.h"

#include "gtest/gtest.h"

#include <vector>

using namespace gpuwmm;
using namespace gpuwmm::apps;

namespace {

const sim::ChipProfile &titan() {
  return *sim::ChipProfile::lookup("titan");
}

stress::TunedStressParams tunedTitan() {
  return stress::TunedStressParams::paperDefaults(titan());
}

constexpr stress::Environment NoStress{stress::StressKind::None, false};
constexpr stress::Environment SysPlus{stress::StressKind::Sys, true};

unsigned countErrors(AppKind App, const stress::Environment &Env,
                     const sim::FencePolicy *Policy, unsigned Runs,
                     uint64_t Seed) {
  unsigned Errors = 0;
  Rng Master(Seed);
  for (unsigned I = 0; I != Runs; ++I)
    Errors += isErroneous(runApplicationOnce(
        App, titan(), Env, tunedTitan(), Policy, Master.fork(I).next()));
  return Errors;
}

} // namespace

class AppTest : public ::testing::TestWithParam<AppKind> {};

TEST_P(AppTest, MetadataIsWellFormed) {
  const auto App = makeApp(GetParam());
  ASSERT_NE(App, nullptr);
  EXPECT_STREQ(App->name(),
               appName(GetParam() == AppKind::SdkRedNf ? AppKind::SdkRed
                       : GetParam() == AppKind::CubScanNf
                           ? AppKind::CubScan
                       : GetParam() == AppKind::LsBhNf ? AppKind::LsBh
                                                       : GetParam()));
  EXPECT_GT(App->numSites(), 0u);
  for (unsigned S = 0; S != App->numSites(); ++S) {
    ASSERT_NE(App->siteName(S), nullptr);
    EXPECT_GT(std::string(App->siteName(S)).size(), 0u);
  }
  EXPECT_GT(App->maxTicks(), 0u);
}

TEST_P(AppTest, NameParsesBack) {
  EXPECT_EQ(parseAppName(appName(GetParam())), GetParam());
}

TEST_P(AppTest, SequentialConsistencyAlwaysPasses) {
  // Tab. 4's post-conditions hold under SC for every app: all races are
  // benign by design.
  Rng Master(101);
  for (unsigned I = 0; I != 12; ++I) {
    const AppVerdict V = runApplicationOnce(
        GetParam(), titan(), NoStress, tunedTitan(), nullptr,
        Master.fork(I).next(), /*Sequential=*/true);
    EXPECT_EQ(V, AppVerdict::Pass) << appName(GetParam()) << " run " << I;
  }
}

TEST_P(AppTest, ConservativeFencesHardenAgainstAggressiveStress) {
  // Sec. 5's starting point: with a fence after every instrumented
  // access, the application is empirically stable even under sys-str+.
  const sim::FencePolicy All =
      sim::FencePolicy::all(appNumSites(GetParam()));
  EXPECT_EQ(countErrors(GetParam(), SysPlus, &All, 25, 202), 0u)
      << appName(GetParam());
}

TEST_P(AppTest, NativeErrorsAreRareOnTitan) {
  // Tab. 5: no-str exposes (almost) nothing on Titan.
  EXPECT_LE(countErrors(GetParam(), NoStress, nullptr, 30, 303), 1u)
      << appName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppTest,
                         ::testing::ValuesIn(AllAppKinds),
                         [](const auto &Info) {
                           std::string N = appName(Info.param);
                           for (char &C : N)
                             if (C == '-')
                               C = '_';
                           return N;
                         });

//===----------------------------------------------------------------------===//
// The paper's per-application findings (Sec. 4.3)
//===----------------------------------------------------------------------===//

class VulnerableAppTest : public ::testing::TestWithParam<AppKind> {};

TEST_P(VulnerableAppTest, SysStressExposesErrors) {
  // All applications except sdk-red and cub-scan exhibit weak-memory
  // errors under the tuned environment. (120 runs keeps the flake
  // probability negligible even for the least provocable apps, whose
  // error rates sit around 5-10%.)
  EXPECT_GE(countErrors(GetParam(), SysPlus, nullptr, 120, 404), 3u)
      << appName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    PaperSet, VulnerableAppTest,
    ::testing::Values(AppKind::CbeHt, AppKind::CbeDot, AppKind::CtOctree,
                      AppKind::TpoTm, AppKind::SdkRedNf,
                      AppKind::CubScanNf, AppKind::LsBhNf),
    [](const auto &Info) {
      std::string N = appName(Info.param);
      for (char &C : N)
        if (C == '-')
          C = '_';
      return N;
    });

TEST(AppFindingsTest, ProvidedFencesOfSdkRedSuffice) {
  // sdk-red (with its __threadfence) never errs; sdk-red-nf does.
  EXPECT_EQ(countErrors(AppKind::SdkRed, SysPlus, nullptr, 80, 505), 0u);
  EXPECT_GE(countErrors(AppKind::SdkRedNf, SysPlus, nullptr, 80, 505), 4u);
}

TEST(AppFindingsTest, ProvidedFencesOfCubScanSuffice) {
  EXPECT_EQ(countErrors(AppKind::CubScan, SysPlus, nullptr, 80, 606), 0u);
  EXPECT_GE(countErrors(AppKind::CubScanNf, SysPlus, nullptr, 80, 606),
            8u);
}

TEST(AppFindingsTest, ProvidedFencesOfLsBhAreInsufficient) {
  // The paper's discovery: ls-bh errs even WITH its provided fences (they
  // miss the displaced-body store), and so does ls-bh-nf (Tab. 5 reports
  // errors for both; it makes no claim about their relative rates).
  const unsigned Fenced =
      countErrors(AppKind::LsBh, SysPlus, nullptr, 150, 707);
  const unsigned NoFences =
      countErrors(AppKind::LsBhNf, SysPlus, nullptr, 150, 707);
  EXPECT_GT(Fenced, 0u) << "ls-bh's own fences must not fully protect it";
  EXPECT_GT(NoFences, 0u);
}

TEST(AppFindingsTest, BuiltinFenceFlags) {
  EXPECT_TRUE(appHasBuiltinFences(AppKind::SdkRed));
  EXPECT_TRUE(appHasBuiltinFences(AppKind::CubScan));
  EXPECT_TRUE(appHasBuiltinFences(AppKind::LsBh));
  EXPECT_FALSE(appHasBuiltinFences(AppKind::CbeDot));
  EXPECT_TRUE(isNoFenceVariant(AppKind::SdkRedNf));
  EXPECT_FALSE(isNoFenceVariant(AppKind::SdkRed));
}

TEST(AppFindingsTest, TpoTmCanTimeOut) {
  // Weak behaviour can affect termination (the paper's 30s timeout):
  // tpo-tm occasionally livelocks until the tick budget under stress.
  unsigned Timeouts = 0;
  Rng Master(808);
  for (unsigned I = 0; I != 120 && Timeouts == 0; ++I) {
    const AppVerdict V = runApplicationOnce(
        AppKind::TpoTm, titan(), SysPlus, tunedTitan(), nullptr,
        Master.fork(I).next());
    Timeouts += V == AppVerdict::Timeout;
  }
  EXPECT_GT(Timeouts, 0u);
}

TEST(AppFindingsTest, NativeErrorsOn770Hashtable) {
  // Tab. 5: the GTX 770 is the only chip with native cbe-ht errors.
  const sim::ChipProfile &C770 = *sim::ChipProfile::lookup("770");
  const auto Tuned = stress::TunedStressParams::paperDefaults(C770);
  unsigned Errors = 0;
  Rng Master(909);
  for (unsigned I = 0; I != 120; ++I)
    Errors += isErroneous(
        runApplicationOnce(AppKind::CbeHt, C770, NoStress, Tuned, nullptr,
                           Master.fork(I).next()));
  EXPECT_GT(Errors, 1u) << "770 drains slowly enough for native errors";
}

TEST(AppFindingsTest, VerdictNamesAreStable) {
  EXPECT_STREQ(appVerdictName(AppVerdict::Pass), "pass");
  EXPECT_STREQ(appVerdictName(AppVerdict::PostCondFail),
               "postcondition-fail");
  EXPECT_STREQ(appVerdictName(AppVerdict::Timeout), "timeout");
  EXPECT_STREQ(appVerdictName(AppVerdict::SimFault), "sim-fault");
}

//===----------------------------------------------------------------------===//
// Batched application execution (DESIGN.md Sec. 19)
//===----------------------------------------------------------------------===//

namespace {

std::vector<uint64_t> forkSeeds(uint64_t Master, unsigned N) {
  Rng M(Master);
  std::vector<uint64_t> Seeds(N);
  for (unsigned I = 0; I != N; ++I)
    Seeds[I] = M.fork(I).next();
  return Seeds;
}

std::vector<AppVerdict> scalarVerdicts(AppKind K,
                                       const sim::ChipProfile &Chip,
                                       const stress::Environment &Env,
                                       const sim::FencePolicy *Policy,
                                       const std::vector<uint64_t> &Seeds) {
  const auto Tuned = stress::TunedStressParams::paperDefaults(Chip);
  sim::ExecutionContext Ctx;
  std::vector<AppVerdict> V;
  for (const uint64_t S : Seeds)
    V.push_back(runApplicationOnce(Ctx, K, Chip, Env, Tuned, Policy, S));
  return V;
}

std::vector<AppVerdict> batchedVerdicts(AppKind K,
                                        const sim::ChipProfile &Chip,
                                        const stress::Environment &Env,
                                        const sim::FencePolicy *Policy,
                                        const std::vector<uint64_t> &Seeds,
                                        unsigned Width) {
  const auto Tuned = stress::TunedStressParams::paperDefaults(Chip);
  sim::ExecutionContext Ctx;
  std::vector<AppVerdict> V(Seeds.size());
  runApplicationBatch(Ctx, K, Chip, Env, Tuned, Policy, Seeds.data(),
                      V.data(), Seeds.size(), Width);
  return V;
}

const AppKind LowerableKinds[] = {AppKind::CbeHt,    AppKind::CbeDot,
                                  AppKind::SdkRed,   AppKind::SdkRedNf,
                                  AppKind::CubScan,  AppKind::CubScanNf};

} // namespace

TEST(AppBatchLowering, CapabilityMatrixIsStable) {
  for (const AppKind K : LowerableKinds)
    EXPECT_TRUE(appLowerable(K)) << appName(K);
  EXPECT_FALSE(appLowerable(AppKind::CtOctree));
  EXPECT_FALSE(appLowerable(AppKind::TpoTm));
  EXPECT_FALSE(appLowerable(AppKind::LsBh));
  EXPECT_FALSE(appLowerable(AppKind::LsBhNf));
}

class AppBatchIdentity : public ::testing::TestWithParam<AppKind> {};

TEST_P(AppBatchIdentity, MatchesScalarAcrossEnvironments) {
  // The tier-1 identity grid: every environment of the paper's sweep,
  // unfenced, 24 runs each, verdict-for-verdict agreement.
  const auto Seeds = forkSeeds(1010, 24);
  for (const stress::Environment &Env : stress::Environment::all()) {
    const auto Scalar =
        scalarVerdicts(GetParam(), titan(), Env, nullptr, Seeds);
    const auto Batched =
        batchedVerdicts(GetParam(), titan(), Env, nullptr, Seeds, 8);
    EXPECT_EQ(Scalar, Batched) << appName(GetParam()) << " " << Env.name();
  }
}

TEST_P(AppBatchIdentity, MatchesScalarUnderFencePolicies) {
  // Inserted fences reshape the op stream (two extra resumes per armed
  // site); sweep all-sites plus every single-site policy.
  const auto Seeds = forkSeeds(2020, 16);
  const unsigned NumSites = appNumSites(GetParam());
  std::vector<sim::FencePolicy> Policies;
  Policies.push_back(sim::FencePolicy::all(NumSites));
  for (unsigned S = 0; S != NumSites; ++S)
    Policies.push_back(sim::FencePolicy::ofSites(NumSites, {S}));
  for (const sim::FencePolicy &P : Policies) {
    const auto Scalar =
        scalarVerdicts(GetParam(), titan(), SysPlus, &P, Seeds);
    const auto Batched =
        batchedVerdicts(GetParam(), titan(), SysPlus, &P, Seeds, 8);
    EXPECT_EQ(Scalar, Batched)
        << appName(GetParam()) << " policy " << P.count() << " sites";
  }
}

TEST_P(AppBatchIdentity, WidthSweepIncludingDegenerateAndOversized) {
  // K = 1 (degenerate), K > N (oversized slab), awkward odd widths: the
  // stripe width must never leak into results.
  const auto Seeds = forkSeeds(3030, 12);
  const auto Ref =
      batchedVerdicts(GetParam(), titan(), SysPlus, nullptr, Seeds, 1);
  for (const unsigned W : {2u, 5u, 12u, 64u, 256u})
    EXPECT_EQ(Ref, batchedVerdicts(GetParam(), titan(), SysPlus, nullptr,
                                   Seeds, W))
        << appName(GetParam()) << " width " << W;
}

TEST_P(AppBatchIdentity, ChipRebindingInterleavings) {
  // One context alternating between chips (and so between plan shapes —
  // Kepler's 32-word patches vs. Maxwell's 64) must match per-chip
  // scalar references run on fresh contexts.
  const sim::ChipProfile &C980 = *sim::ChipProfile::lookup("980");
  const auto Seeds = forkSeeds(4040, 10);
  const auto RefTitan =
      scalarVerdicts(GetParam(), titan(), SysPlus, nullptr, Seeds);
  const auto Ref980 =
      scalarVerdicts(GetParam(), C980, SysPlus, nullptr, Seeds);

  sim::ExecutionContext Ctx;
  for (size_t I = 0; I != Seeds.size(); ++I) {
    const sim::ChipProfile &Chip = I % 2 ? C980 : titan();
    AppVerdict V;
    runApplicationBatch(Ctx, GetParam(), Chip, SysPlus,
                        stress::TunedStressParams::paperDefaults(Chip),
                        nullptr, &Seeds[I], &V, 1, 4);
    EXPECT_EQ(V, (I % 2 ? Ref980 : RefTitan)[I])
        << appName(GetParam()) << " run " << I;
  }
}

TEST_P(AppBatchIdentity, TracedContextsFallBackToScalar) {
  // A tracing request pins the batch API to the coroutine path — results
  // must still be identical, and the trace seam stays authoritative.
  const auto Seeds = forkSeeds(5050, 6);
  const auto Ref =
      scalarVerdicts(GetParam(), titan(), SysPlus, nullptr, Seeds);
  const auto Tuned = stress::TunedStressParams::paperDefaults(titan());
  sim::ExecutionContext Ctx;
  Ctx.requestTracing(true);
  std::vector<AppVerdict> V(Seeds.size());
  runApplicationBatch(Ctx, GetParam(), titan(), SysPlus, Tuned, nullptr,
                      Seeds.data(), V.data(), Seeds.size(), 8);
  EXPECT_EQ(Ref, V) << appName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Lowerable, AppBatchIdentity,
                         ::testing::ValuesIn(LowerableKinds),
                         [](const auto &Info) {
                           std::string N = appName(Info.param);
                           for (char &C : N)
                             if (C == '-')
                               C = '_';
                           return N;
                         });

TEST(AppBatchFallback, UnlowerableAppsMatchScalarViaFallback) {
  // runApplicationBatch on an irregular app silently takes the coroutine
  // path run-for-run.
  const auto Seeds = forkSeeds(6060, 6);
  for (const AppKind K : {AppKind::LsBh, AppKind::TpoTm}) {
    const auto Ref = scalarVerdicts(K, titan(), SysPlus, nullptr, Seeds);
    EXPECT_EQ(Ref, batchedVerdicts(K, titan(), SysPlus, nullptr, Seeds, 8))
        << appName(K);
  }
}

TEST(AppBatchFallback, ScalarEngineModeForcesCoroutinePath) {
  // --engine=scalar must be honoured by the batch API (identity again,
  // but exercised through the mode switch).
  const auto Seeds = forkSeeds(7070, 6);
  const auto Ref =
      scalarVerdicts(AppKind::CbeDot, titan(), SysPlus, nullptr, Seeds);
  sim::setEngineMode(sim::EngineMode::Scalar);
  const auto V =
      batchedVerdicts(AppKind::CbeDot, titan(), SysPlus, nullptr, Seeds, 8);
  sim::setEngineMode(sim::EngineMode::Auto);
  EXPECT_EQ(Ref, V);
}
