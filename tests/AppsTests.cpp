//===- tests/AppsTests.cpp - application case-study tests -----------------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// Parameterised over all ten case studies (Tab. 4): sequential
// consistency always satisfies the post-condition; conservative fencing
// hardens against the aggressive environment; the weak machine exposes
// errors exactly where the paper says it should.
//
//===----------------------------------------------------------------------===//

#include "apps/Application.h"

#include "gtest/gtest.h"

using namespace gpuwmm;
using namespace gpuwmm::apps;

namespace {

const sim::ChipProfile &titan() {
  return *sim::ChipProfile::lookup("titan");
}

stress::TunedStressParams tunedTitan() {
  return stress::TunedStressParams::paperDefaults(titan());
}

constexpr stress::Environment NoStress{stress::StressKind::None, false};
constexpr stress::Environment SysPlus{stress::StressKind::Sys, true};

unsigned countErrors(AppKind App, const stress::Environment &Env,
                     const sim::FencePolicy *Policy, unsigned Runs,
                     uint64_t Seed) {
  unsigned Errors = 0;
  Rng Master(Seed);
  for (unsigned I = 0; I != Runs; ++I)
    Errors += isErroneous(runApplicationOnce(
        App, titan(), Env, tunedTitan(), Policy, Master.fork(I).next()));
  return Errors;
}

} // namespace

class AppTest : public ::testing::TestWithParam<AppKind> {};

TEST_P(AppTest, MetadataIsWellFormed) {
  const auto App = makeApp(GetParam());
  ASSERT_NE(App, nullptr);
  EXPECT_STREQ(App->name(),
               appName(GetParam() == AppKind::SdkRedNf ? AppKind::SdkRed
                       : GetParam() == AppKind::CubScanNf
                           ? AppKind::CubScan
                       : GetParam() == AppKind::LsBhNf ? AppKind::LsBh
                                                       : GetParam()));
  EXPECT_GT(App->numSites(), 0u);
  for (unsigned S = 0; S != App->numSites(); ++S) {
    ASSERT_NE(App->siteName(S), nullptr);
    EXPECT_GT(std::string(App->siteName(S)).size(), 0u);
  }
  EXPECT_GT(App->maxTicks(), 0u);
}

TEST_P(AppTest, NameParsesBack) {
  EXPECT_EQ(parseAppName(appName(GetParam())), GetParam());
}

TEST_P(AppTest, SequentialConsistencyAlwaysPasses) {
  // Tab. 4's post-conditions hold under SC for every app: all races are
  // benign by design.
  Rng Master(101);
  for (unsigned I = 0; I != 12; ++I) {
    const AppVerdict V = runApplicationOnce(
        GetParam(), titan(), NoStress, tunedTitan(), nullptr,
        Master.fork(I).next(), /*Sequential=*/true);
    EXPECT_EQ(V, AppVerdict::Pass) << appName(GetParam()) << " run " << I;
  }
}

TEST_P(AppTest, ConservativeFencesHardenAgainstAggressiveStress) {
  // Sec. 5's starting point: with a fence after every instrumented
  // access, the application is empirically stable even under sys-str+.
  const sim::FencePolicy All =
      sim::FencePolicy::all(appNumSites(GetParam()));
  EXPECT_EQ(countErrors(GetParam(), SysPlus, &All, 25, 202), 0u)
      << appName(GetParam());
}

TEST_P(AppTest, NativeErrorsAreRareOnTitan) {
  // Tab. 5: no-str exposes (almost) nothing on Titan.
  EXPECT_LE(countErrors(GetParam(), NoStress, nullptr, 30, 303), 1u)
      << appName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppTest,
                         ::testing::ValuesIn(AllAppKinds),
                         [](const auto &Info) {
                           std::string N = appName(Info.param);
                           for (char &C : N)
                             if (C == '-')
                               C = '_';
                           return N;
                         });

//===----------------------------------------------------------------------===//
// The paper's per-application findings (Sec. 4.3)
//===----------------------------------------------------------------------===//

class VulnerableAppTest : public ::testing::TestWithParam<AppKind> {};

TEST_P(VulnerableAppTest, SysStressExposesErrors) {
  // All applications except sdk-red and cub-scan exhibit weak-memory
  // errors under the tuned environment. (120 runs keeps the flake
  // probability negligible even for the least provocable apps, whose
  // error rates sit around 5-10%.)
  EXPECT_GE(countErrors(GetParam(), SysPlus, nullptr, 120, 404), 3u)
      << appName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    PaperSet, VulnerableAppTest,
    ::testing::Values(AppKind::CbeHt, AppKind::CbeDot, AppKind::CtOctree,
                      AppKind::TpoTm, AppKind::SdkRedNf,
                      AppKind::CubScanNf, AppKind::LsBhNf),
    [](const auto &Info) {
      std::string N = appName(Info.param);
      for (char &C : N)
        if (C == '-')
          C = '_';
      return N;
    });

TEST(AppFindingsTest, ProvidedFencesOfSdkRedSuffice) {
  // sdk-red (with its __threadfence) never errs; sdk-red-nf does.
  EXPECT_EQ(countErrors(AppKind::SdkRed, SysPlus, nullptr, 80, 505), 0u);
  EXPECT_GE(countErrors(AppKind::SdkRedNf, SysPlus, nullptr, 80, 505), 4u);
}

TEST(AppFindingsTest, ProvidedFencesOfCubScanSuffice) {
  EXPECT_EQ(countErrors(AppKind::CubScan, SysPlus, nullptr, 80, 606), 0u);
  EXPECT_GE(countErrors(AppKind::CubScanNf, SysPlus, nullptr, 80, 606),
            8u);
}

TEST(AppFindingsTest, ProvidedFencesOfLsBhAreInsufficient) {
  // The paper's discovery: ls-bh errs even WITH its provided fences (they
  // miss the displaced-body store), and so does ls-bh-nf (Tab. 5 reports
  // errors for both; it makes no claim about their relative rates).
  const unsigned Fenced =
      countErrors(AppKind::LsBh, SysPlus, nullptr, 150, 707);
  const unsigned NoFences =
      countErrors(AppKind::LsBhNf, SysPlus, nullptr, 150, 707);
  EXPECT_GT(Fenced, 0u) << "ls-bh's own fences must not fully protect it";
  EXPECT_GT(NoFences, 0u);
}

TEST(AppFindingsTest, BuiltinFenceFlags) {
  EXPECT_TRUE(appHasBuiltinFences(AppKind::SdkRed));
  EXPECT_TRUE(appHasBuiltinFences(AppKind::CubScan));
  EXPECT_TRUE(appHasBuiltinFences(AppKind::LsBh));
  EXPECT_FALSE(appHasBuiltinFences(AppKind::CbeDot));
  EXPECT_TRUE(isNoFenceVariant(AppKind::SdkRedNf));
  EXPECT_FALSE(isNoFenceVariant(AppKind::SdkRed));
}

TEST(AppFindingsTest, TpoTmCanTimeOut) {
  // Weak behaviour can affect termination (the paper's 30s timeout):
  // tpo-tm occasionally livelocks until the tick budget under stress.
  unsigned Timeouts = 0;
  Rng Master(808);
  for (unsigned I = 0; I != 120 && Timeouts == 0; ++I) {
    const AppVerdict V = runApplicationOnce(
        AppKind::TpoTm, titan(), SysPlus, tunedTitan(), nullptr,
        Master.fork(I).next());
    Timeouts += V == AppVerdict::Timeout;
  }
  EXPECT_GT(Timeouts, 0u);
}

TEST(AppFindingsTest, NativeErrorsOn770Hashtable) {
  // Tab. 5: the GTX 770 is the only chip with native cbe-ht errors.
  const sim::ChipProfile &C770 = *sim::ChipProfile::lookup("770");
  const auto Tuned = stress::TunedStressParams::paperDefaults(C770);
  unsigned Errors = 0;
  Rng Master(909);
  for (unsigned I = 0; I != 120; ++I)
    Errors += isErroneous(
        runApplicationOnce(AppKind::CbeHt, C770, NoStress, Tuned, nullptr,
                           Master.fork(I).next()));
  EXPECT_GT(Errors, 1u) << "770 drains slowly enough for native errors";
}

TEST(AppFindingsTest, VerdictNamesAreStable) {
  EXPECT_STREQ(appVerdictName(AppVerdict::Pass), "pass");
  EXPECT_STREQ(appVerdictName(AppVerdict::PostCondFail),
               "postcondition-fail");
  EXPECT_STREQ(appVerdictName(AppVerdict::Timeout), "timeout");
  EXPECT_STREQ(appVerdictName(AppVerdict::SimFault), "sim-fault");
}
