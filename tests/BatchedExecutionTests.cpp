//===- tests/BatchedExecutionTests.cpp - batched-vs-scalar identity ----------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// The batched litmus engine's determinism contract (DESIGN.md Sec. 17):
// LitmusRunner::countWeakBatch must be bit-identical, run for run, to a
// scalar runOnce loop at the same derived seed streams — for every batch
// width K, every option combination, fresh and reused contexts, and under
// host-level parallelism. These property tests pin that contract over the
// full built-in catalog and a population of random fuzz programs.
//
//===----------------------------------------------------------------------===//

#include "fuzz/LitmusBridge.h"
#include "fuzz/ProgramFuzzer.h"
#include "litmus/Litmus.h"
#include "support/ThreadPool.h"

#include "gtest/gtest.h"

#include <string>
#include <vector>

using namespace gpuwmm;
using namespace gpuwmm::litmus;

namespace {

const sim::ChipProfile &titan() { return *sim::ChipProfile::lookup("titan"); }

stress::AccessSequence tunedSeq() {
  return stress::AccessSequence::parse("ld st2 ld");
}

LitmusRunner::MicroStress tunedStress() {
  return LitmusRunner::MicroStress::at(tunedSeq(),
                                       2 * titan().PatchSizeWords);
}

/// One named option combination for the identity sweep.
struct OptCase {
  const char *Name;
  LitmusRunner::RunOpts Opts;
  bool Stressed;
};

std::vector<OptCase> optCases() {
  std::vector<OptCase> Cases;
  LitmusRunner::RunOpts O;
  Cases.push_back({"plain", O, false});
  O = {};
  O.WithFences = true;
  Cases.push_back({"fenced", O, false});
  O = {};
  O.Sequential = true;
  Cases.push_back({"sc", O, false});
  O = {};
  O.Randomise = true;
  Cases.push_back({"randomise", O, false});
  O = {};
  Cases.push_back({"stressed", O, true});
  O = {};
  O.Randomise = true;
  Cases.push_back({"stressed-randomise", O, true});
  return Cases;
}

/// The scalar reference: a runOnce loop on a fresh runner, collecting the
/// per-run weak verdicts.
std::vector<uint8_t> scalarVerdicts(const Program &P, unsigned Distance,
                                    const LitmusRunner::MicroStress &S,
                                    unsigned Runs,
                                    const LitmusRunner::RunOpts &Opts,
                                    uint64_t Seed) {
  LitmusRunner Runner(titan(), Seed);
  std::vector<uint8_t> V;
  V.reserve(Runs);
  for (unsigned I = 0; I != Runs; ++I)
    V.push_back(Runner.runOnce(P, Distance, S, Opts));
  return V;
}

/// The batched run at width K on a fresh runner.
std::vector<uint8_t> batchedVerdicts(const Program &P, unsigned Distance,
                                     const LitmusRunner::MicroStress &S,
                                     unsigned Runs,
                                     const LitmusRunner::RunOpts &Opts,
                                     uint64_t Seed, unsigned K) {
  LitmusRunner Runner(titan(), Seed);
  Runner.setBatchWidth(K);
  std::vector<uint8_t> V;
  const unsigned Weak = Runner.countWeakBatch(P, Distance, S, Runs, Opts, &V);
  EXPECT_EQ(Weak, static_cast<unsigned>(
                      std::count(V.begin(), V.end(), uint8_t(1))));
  EXPECT_EQ(Runner.executions(), Runs);
  return V;
}

} // namespace

//===----------------------------------------------------------------------===//
// Full-catalog identity, all option combinations
//===----------------------------------------------------------------------===//

class CatalogIdentity : public ::testing::TestWithParam<unsigned> {};

TEST_P(CatalogIdentity, BatchedMatchesScalarBitForBit) {
  const Program &P = catalog()[GetParam()];
  const unsigned Distance = 128;
  const unsigned Runs = 120;
  for (const OptCase &C : optCases()) {
    const auto S = C.Stressed ? tunedStress() : LitmusRunner::MicroStress::none();
    const uint64_t Seed = 9000 + GetParam();
    const auto Scalar = scalarVerdicts(P, Distance, S, Runs, C.Opts, Seed);
    const auto Batched =
        batchedVerdicts(P, Distance, S, Runs, C.Opts, Seed, 7);
    EXPECT_EQ(Scalar, Batched) << P.Name << " under " << C.Name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FullCatalog, CatalogIdentity,
    ::testing::Range(0u, static_cast<unsigned>(catalog().size())),
    [](const ::testing::TestParamInfo<unsigned> &Info) {
      std::string N = catalog()[Info.param].Name;
      for (char &C : N)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return N;
    });

//===----------------------------------------------------------------------===//
// Batch width is purely an amortisation window
//===----------------------------------------------------------------------===//

TEST(BatchWidth, ResultsIdenticalForEveryK) {
  LitmusRunner::RunOpts Opts;
  Opts.Randomise = true;
  const auto S = tunedStress();
  for (LitmusKind Kind : AllLitmusKinds) {
    const Program &P = catalogProgram(Kind);
    const auto Ref = scalarVerdicts(P, 128, S, 150, Opts, 42);
    for (unsigned K : {1u, 2u, 7u, 64u})
      EXPECT_EQ(Ref, batchedVerdicts(P, 128, S, 150, Opts, 42, K))
          << litmusName(Kind) << " at K=" << K;
  }
}

TEST(BatchWidth, ZeroResolvesToProcessDefault) {
  LitmusRunner Runner(titan(), 1);
  EXPECT_EQ(Runner.batchWidth(), sim::defaultBatchWidth());
  Runner.setBatchWidth(5);
  EXPECT_EQ(Runner.batchWidth(), 5u);
  Runner.setBatchWidth(0);
  EXPECT_EQ(Runner.batchWidth(), sim::defaultBatchWidth());
}

//===----------------------------------------------------------------------===//
// Context reuse: plan switches and mixed scalar/batched streams
//===----------------------------------------------------------------------===//

TEST(ContextReuse, AlternatingInstancesMatchScalarSequence) {
  // One runner alternating programs/distances batched must replay the
  // exact verdict sequence of one scalar runner doing the same sequence:
  // plan rebuilds and slab reuse never leak state between instances.
  const Program &A = catalogProgram(LitmusKind::MP);
  const Program &B = catalogProgram(LitmusKind::SB);
  const auto S = tunedStress();
  const LitmusRunner::RunOpts Opts;

  LitmusRunner Scalar(titan(), 77);
  std::vector<uint8_t> Ref;
  for (unsigned Leg = 0; Leg != 4; ++Leg) {
    const Program &P = Leg % 2 ? B : A;
    const unsigned D = Leg % 2 ? 64 : 128;
    for (unsigned I = 0; I != 40; ++I)
      Ref.push_back(Scalar.runOnce(P, D, S, Opts));
  }

  LitmusRunner Batched(titan(), 77);
  Batched.setBatchWidth(16);
  std::vector<uint8_t> Got, Leg;
  for (unsigned L = 0; L != 4; ++L) {
    Batched.countWeakBatch(L % 2 ? B : A, L % 2 ? 64 : 128, S, 40, Opts,
                           &Leg);
    Got.insert(Got.end(), Leg.begin(), Leg.end());
  }
  EXPECT_EQ(Ref, Got);
  EXPECT_EQ(Scalar.executions(), Batched.executions());
}

TEST(ContextReuse, TracedRunsInterleaveWithBatchedRuns) {
  // Traced runs take the scalar path inside countWeak; the seed stream
  // must stay continuous across the seam so `litmus --explain` replays
  // are unaffected by batching around them.
  const Program &P = catalogProgram(LitmusKind::MP);
  const auto S = tunedStress();
  LitmusRunner::RunOpts Plain, Traced;
  Traced.Trace = true;

  LitmusRunner Ref(titan(), 5);
  std::vector<uint8_t> Want;
  for (unsigned I = 0; I != 100; ++I)
    Want.push_back(Ref.runOnce(P, 128, S, Plain));

  LitmusRunner Mixed(titan(), 5);
  std::vector<uint8_t> Got;
  for (unsigned I = 0; I != 3; ++I)
    Got.push_back(Mixed.countWeak(P, 128, S, 1, Traced) != 0);
  std::vector<uint8_t> Tail;
  Mixed.countWeakBatch(P, 128, S, 97, Plain, &Tail);
  Got.insert(Got.end(), Tail.begin(), Tail.end());
  EXPECT_EQ(Want, Got);
  EXPECT_EQ(Mixed.executions(), 100u);
}

TEST(ContextReuse, CountWeakDelegatesToBatchedPath) {
  // The public countWeak and the explicit batched call agree (they share
  // one code path when no trace/sink is requested).
  const Program &P = catalogProgram(LitmusKind::LB);
  const auto S = tunedStress();
  LitmusRunner A(titan(), 11), B(titan(), 11);
  std::vector<uint8_t> PerRun;
  EXPECT_EQ(A.countWeak(P, 128, S, 200),
            B.countWeakBatch(P, 128, S, 200, {}, &PerRun));
  EXPECT_EQ(PerRun.size(), 200u);
}

//===----------------------------------------------------------------------===//
// Host-level parallelism: pool vs serial
//===----------------------------------------------------------------------===//

TEST(PoolDeterminism, BatchedRunnersAreBitIdenticalUnderThreadPool) {
  // Each index runs a batched sweep on its own runner with a derived
  // seed; a 4-job pool must reproduce the serial results exactly (the
  // batched engine keeps all state in the per-thread leased context).
  const auto S = tunedStress();
  const auto RunIndex = [&](size_t I) {
    const Program &P = catalog()[I % catalog().size()];
    LitmusRunner Runner(titan(), 1234 + I);
    Runner.setBatchWidth(I % 2 ? 3 : 64);
    std::vector<uint8_t> V;
    Runner.countWeakBatch(P, 96, S, 80, {}, &V);
    return V;
  };

  constexpr size_t N = 12;
  std::vector<std::vector<uint8_t>> Serial(N), Pooled(N);
  for (size_t I = 0; I != N; ++I)
    Serial[I] = RunIndex(I);
  ThreadPool Pool(4);
  Pool.parallelFor(N, [&](size_t I) { Pooled[I] = RunIndex(I); });
  EXPECT_EQ(Serial, Pooled);
}

//===----------------------------------------------------------------------===//
// Random-program population: fuzz cases through the batched litmus path
//===----------------------------------------------------------------------===//

TEST(FuzzPrograms, FiftyRandomProgramsMatchScalarBitForBit) {
  // Fuzz-generated programs exercise op mixes (atomics, fences, repeated
  // loads of one variable) the hand-written catalog does not.
  Rng Gen(0xfeedu);
  unsigned Checked = 0;
  for (unsigned I = 0; I != 50; ++I) {
    Rng R = Gen.fork(I);
    const fuzz::Program FP = fuzz::Program::generate(R, 3, 5, I % 4 == 0);
    const Program P =
        fuzz::toLitmusProgram(FP, "fuzz" + std::to_string(I));
    ASSERT_TRUE(P.validate().empty()) << P.validate();
    LitmusRunner::RunOpts Opts;
    Opts.Randomise = I % 2 == 0;
    const auto S = I % 3 == 0 ? LitmusRunner::MicroStress::none()
                              : tunedStress();
    const auto Scalar = scalarVerdicts(P, 32, S, 30, Opts, 5000 + I);
    const auto Batched =
        batchedVerdicts(P, 32, S, 30, Opts, 5000 + I, 1 + I % 9);
    ASSERT_EQ(Scalar, Batched) << FP.str();
    ++Checked;
  }
  EXPECT_EQ(Checked, 50u);
}

//===----------------------------------------------------------------------===//
// Control-flow op semantics: the app-lowering ISA extensions (DESIGN.md
// Sec. 19) exercised directly through runBatchProgram, independent of any
// application emitter.
//===----------------------------------------------------------------------===//

namespace {

/// Runs a hand-assembled program once on a fresh context and returns the
/// RunResult; \p Regs receives the run's final register stripe.
sim::RunResult runRaw(const sim::BatchProgram &BP, sim::ExecutionContext &Ctx,
                      std::vector<sim::Word> &Regs) {
  sim::BatchRunConfig Cfg;
  Cfg.MaxTicks = 100000;
  Regs.assign(std::max(1u, BP.NumSlots), 0);
  return sim::runBatchProgram(BP, titan(), Ctx.memory(), Ctx.rng(),
                              Ctx.batchScratch(), Regs.data(), Cfg);
}

} // namespace

TEST(BatchOpSemantics, FreeOpLoopWithBackwardBranch) {
  // r0 = sum(0..4) computed entirely in free ops (MovImm/AddRR/AddImm/BrLt
  // form a register loop), then written back. The whole loop must execute
  // in the prefix of the single WbStore resume: exactly one suspending op
  // means the run completes in a handful of ticks, never a timeout.
  using sim::BatchOp;
  using Code = sim::BatchOp::Code;
  sim::ExecutionContext Ctx;
  Ctx.reset(titan(), 7);
  const sim::Addr Out = Ctx.memory().alloc(1);

  sim::BatchProgram BP;
  BP.GridDim = 1;
  BP.BlockDim = 1;
  BP.NumSlots = 2;
  BP.Ops.push_back({Code::MovImm, 0, 0, 0, 0}); // r0 = 0
  BP.Ops.push_back({Code::MovImm, 1, 0, 0, 0}); // r1 = 0
  BP.Ops.push_back({Code::AddRR, 0, 0, 1, 0});  // loop: r0 = r0 + r1
  BP.Ops.push_back({Code::AddImm, 1, 1, 0, 1}); // r1 += 1
  BP.Ops.push_back({Code::BrLt, 1, 0, 2, 5});   // if (r1 < 5) goto loop
  BP.Ops.push_back({Code::WbStore, 0, 0, Out, 0});
  BP.Lanes.push_back({0, static_cast<uint32_t>(BP.Ops.size())});

  std::vector<sim::Word> Regs;
  const sim::RunResult R = runRaw(BP, Ctx, Regs);
  EXPECT_EQ(R.Status, sim::RunStatus::Completed);
  EXPECT_EQ(Ctx.memory().hostRead(Out), 10u);
  EXPECT_EQ(Regs[0], 10u);
  EXPECT_EQ(Regs[1], 5u);
}

TEST(BatchOpSemantics, IndexedAddressingRoundTrip) {
  // MulImm/ModImm compute a bucket index; StoreIdx writes through it and
  // LoadIdx reads it back — the cbe-ht addressing shape in isolation.
  using Code = sim::BatchOp::Code;
  sim::ExecutionContext Ctx;
  Ctx.reset(titan(), 11);
  const sim::Addr Table = Ctx.memory().alloc(8);
  const sim::Addr Out = Ctx.memory().alloc(1);

  sim::BatchProgram BP;
  BP.GridDim = 1;
  BP.BlockDim = 1;
  BP.NumSlots = 3;
  BP.Ops.push_back({Code::MovImm, 0, 0, 0, 7});       // r0 = 7
  BP.Ops.push_back({Code::MulImm, 1, 0, 0, 3});       // r1 = 21
  BP.Ops.push_back({Code::ModImm, 1, 1, 0, 8});       // r1 = 5
  BP.Ops.push_back({Code::StoreIdx, 0, 1, Table, 9}); // Table[5] = 9
  BP.Ops.push_back({Code::LoadIdx, 2, 1, Table, 0});  // r2 = Table[5]
  BP.Ops.push_back({Code::WbStore, 2, 0, Out, 0});
  BP.Lanes.push_back({0, static_cast<uint32_t>(BP.Ops.size())});

  std::vector<sim::Word> Regs;
  const sim::RunResult R = runRaw(BP, Ctx, Regs);
  EXPECT_EQ(R.Status, sim::RunStatus::Completed);
  EXPECT_EQ(Ctx.memory().hostRead(Table + 5), 9u);
  EXPECT_EQ(Ctx.memory().hostRead(Out), 9u);
}

TEST(BatchOpSemantics, AtomicReturnValueOps) {
  // AtomicCas packs (compare, value) into Imm's (low, high) halves and
  // returns the old word; AtomicAddReg returns the pre-add value (a ticket
  // draw); AtomicExch is fire-and-forget. Single lane, so the sequence is
  // fully determined.
  using Code = sim::BatchOp::Code;
  sim::ExecutionContext Ctx;
  Ctx.reset(titan(), 13);
  const sim::Addr M = Ctx.memory().alloc(1);
  const sim::Addr Out = Ctx.memory().alloc(3);

  sim::BatchProgram BP;
  BP.GridDim = 1;
  BP.BlockDim = 1;
  BP.NumSlots = 3;
  // CAS(M, compare 0, value 1): succeeds, old value 0.
  BP.Ops.push_back({Code::AtomicCas, 0, 0, M, 1u << 16});
  // CAS(M, compare 0, value 7): fails (M == 1), old value 1.
  BP.Ops.push_back({Code::AtomicCas, 1, 0, M, 7u << 16});
  // Exch(M, 5), then AtomicAddReg returns the pre-add 5 and leaves 11.
  BP.Ops.push_back({Code::AtomicExch, 0, 0, M, 5});
  BP.Ops.push_back({Code::AtomicAddReg, 2, 0, M, 6});
  BP.Ops.push_back({Code::WbStore, 0, 0, Out + 0, 0});
  BP.Ops.push_back({Code::WbStore, 1, 0, Out + 1, 0});
  BP.Ops.push_back({Code::WbStore, 2, 0, Out + 2, 0});
  BP.Lanes.push_back({0, static_cast<uint32_t>(BP.Ops.size())});

  std::vector<sim::Word> Regs;
  const sim::RunResult R = runRaw(BP, Ctx, Regs);
  EXPECT_EQ(R.Status, sim::RunStatus::Completed);
  EXPECT_EQ(Ctx.memory().hostRead(Out + 0), 0u);
  EXPECT_EQ(Ctx.memory().hostRead(Out + 1), 1u);
  EXPECT_EQ(Ctx.memory().hostRead(Out + 2), 5u);
  EXPECT_EQ(Ctx.memory().hostRead(M), 11u);
}

TEST(BatchOpSemantics, BarrierSynchronisesBlockStores) {
  // Producer stores then barriers; consumer barriers then loads. The
  // release fences every parked lane's store buffer (block scope), so the
  // consumer must observe the store — the sdk-red partial-sum handoff in
  // miniature.
  using Code = sim::BatchOp::Code;
  sim::ExecutionContext Ctx;
  Ctx.reset(titan(), 17);
  const sim::Addr A = Ctx.memory().alloc(1);
  const sim::Addr Out = Ctx.memory().alloc(1);

  sim::BatchProgram BP;
  BP.GridDim = 1;
  BP.BlockDim = 2;
  BP.NumSlots = 1;
  const uint32_t P0 = static_cast<uint32_t>(BP.Ops.size());
  BP.Ops.push_back({Code::Store, 0, 0, A, 1});
  BP.Ops.push_back({Code::Barrier, 0, 0, 0, 0});
  const uint32_t P1 = static_cast<uint32_t>(BP.Ops.size());
  BP.Ops.push_back({Code::Barrier, 0, 0, 0, 0});
  BP.Ops.push_back({Code::Load, 0, 0, A, 0});
  BP.Ops.push_back({Code::WbStore, 0, 0, Out, 0});
  const uint32_t End = static_cast<uint32_t>(BP.Ops.size());
  BP.Lanes.push_back({P0, P1});
  BP.Lanes.push_back({P1, End});

  std::vector<sim::Word> Regs;
  const sim::RunResult R = runRaw(BP, Ctx, Regs);
  EXPECT_EQ(R.Status, sim::RunStatus::Completed);
  EXPECT_EQ(Ctx.memory().hostRead(Out), 1u);
}

TEST(BatchOpSemantics, BarrierDivergenceIsDetected) {
  // One lane parks at a barrier its sibling never reaches (the sibling
  // sleeps and completes). CUDA calls this UB; the engine classifies it
  // as BarrierDivergence exactly as the coroutine scheduler does.
  using Code = sim::BatchOp::Code;
  sim::ExecutionContext Ctx;
  Ctx.reset(titan(), 19);

  sim::BatchProgram BP;
  BP.GridDim = 1;
  BP.BlockDim = 2;
  BP.NumSlots = 1;
  const uint32_t P0 = static_cast<uint32_t>(BP.Ops.size());
  BP.Ops.push_back({Code::Barrier, 0, 0, 0, 0});
  const uint32_t P1 = static_cast<uint32_t>(BP.Ops.size());
  BP.Ops.push_back({Code::Sleep, 0, 0, 0, 5});
  const uint32_t End = static_cast<uint32_t>(BP.Ops.size());
  BP.Lanes.push_back({P0, P1});
  BP.Lanes.push_back({P1, End});

  std::vector<sim::Word> Regs;
  const sim::RunResult R = runRaw(BP, Ctx, Regs);
  EXPECT_EQ(R.Status, sim::RunStatus::BarrierDivergence);
}
