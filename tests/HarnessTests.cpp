//===- tests/HarnessTests.cpp - experiment harness tests ------------------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// Tests the Tab. 5 environment runner (effectiveness accounting) and the
// Sec. 6 cost benchmark (runtime/energy ordering of the three fencing
// strategies), plus the chip registry.
//
//===----------------------------------------------------------------------===//

#include "harness/CostBenchmark.h"
#include "harness/EnvironmentRunner.h"

#include "gtest/gtest.h"

using namespace gpuwmm;
using namespace gpuwmm::harness;

namespace {

const sim::ChipProfile &titan() {
  return *sim::ChipProfile::lookup("titan");
}

} // namespace

//===----------------------------------------------------------------------===//
// Chip registry (paper Tab. 1)
//===----------------------------------------------------------------------===//

TEST(ChipRegistryTest, SevenChips) {
  size_t Count = 0;
  sim::ChipProfile::all(Count);
  EXPECT_EQ(Count, 7u);
}

TEST(ChipRegistryTest, LookupByShortName) {
  for (const char *Name :
       {"980", "k5200", "titan", "k20", "770", "c2075", "c2050"}) {
    const auto *Chip = sim::ChipProfile::lookup(Name);
    ASSERT_NE(Chip, nullptr) << Name;
    EXPECT_STREQ(Chip->ShortName, Name);
  }
  EXPECT_EQ(sim::ChipProfile::lookup("gtx9000"), nullptr);
}

TEST(ChipRegistryTest, Table1Facts) {
  // Architectures and patch sizes as derived in the paper (Tabs. 1, 2).
  EXPECT_EQ(sim::ChipProfile::lookup("980")->Arch, sim::GpuArch::Maxwell);
  EXPECT_EQ(sim::ChipProfile::lookup("titan")->Arch, sim::GpuArch::Kepler);
  EXPECT_EQ(sim::ChipProfile::lookup("c2050")->Arch, sim::GpuArch::Fermi);
  EXPECT_EQ(sim::ChipProfile::lookup("titan")->PatchSizeWords, 32u);
  EXPECT_EQ(sim::ChipProfile::lookup("k20")->PatchSizeWords, 32u);
  EXPECT_EQ(sim::ChipProfile::lookup("c2075")->PatchSizeWords, 64u);
  EXPECT_EQ(sim::ChipProfile::lookup("980")->PatchSizeWords, 64u);
  // NVML power queries: K5200, Titan, K20 and C2075 only (Sec. 6).
  EXPECT_TRUE(sim::ChipProfile::lookup("k5200")->SupportsPowerQuery);
  EXPECT_TRUE(sim::ChipProfile::lookup("titan")->SupportsPowerQuery);
  EXPECT_TRUE(sim::ChipProfile::lookup("k20")->SupportsPowerQuery);
  EXPECT_TRUE(sim::ChipProfile::lookup("c2075")->SupportsPowerQuery);
  EXPECT_FALSE(sim::ChipProfile::lookup("980")->SupportsPowerQuery);
  EXPECT_FALSE(sim::ChipProfile::lookup("770")->SupportsPowerQuery);
  EXPECT_FALSE(sim::ChipProfile::lookup("c2050")->SupportsPowerQuery);
}

TEST(ChipRegistryTest, BankMapping) {
  const auto &Chip = *sim::ChipProfile::lookup("titan");
  EXPECT_EQ(Chip.bankOf(0), 0u);
  EXPECT_EQ(Chip.bankOf(31), 0u);
  EXPECT_EQ(Chip.bankOf(32), 1u);
  EXPECT_EQ(Chip.bankOf(32 * 8), 0u) << "banks wrap modulo NumBanks";
  EXPECT_EQ(archName(sim::GpuArch::Kepler), std::string("Kepler"));
}

//===----------------------------------------------------------------------===//
// Environment runner (Tab. 5 accounting)
//===----------------------------------------------------------------------===//

TEST(CellResultTest, EffectivenessThresholdIsStrict) {
  CellResult C;
  C.Runs = 100;
  C.Errors = 5;
  EXPECT_TRUE(C.observed());
  EXPECT_FALSE(C.effective()) << "exactly 5% is not 'more than 5%'";
  C.Errors = 6;
  EXPECT_TRUE(C.effective());
  C.Errors = 0;
  EXPECT_FALSE(C.observed());
  EXPECT_DOUBLE_EQ(C.errorRate(), 0.0);
}

TEST(EnvironmentRunnerTest, FencedSdkRedShowsNoErrors) {
  const auto Tuned = stress::TunedStressParams::paperDefaults(titan());
  const auto Cell =
      runCell(apps::AppKind::SdkRed, titan(),
              {stress::StressKind::Sys, true}, Tuned, 40, 11);
  EXPECT_EQ(Cell.Errors, 0u);
  EXPECT_EQ(Cell.Runs, 40u);
}

TEST(EnvironmentRunnerTest, SysStressIsEffectiveOnCbeDot) {
  const auto Tuned = stress::TunedStressParams::paperDefaults(titan());
  const auto Cell =
      runCell(apps::AppKind::CbeDot, titan(),
              {stress::StressKind::Sys, true}, Tuned, 60, 12);
  EXPECT_TRUE(Cell.effective())
      << "errors in " << Cell.Errors << "/" << Cell.Runs;
}

TEST(EnvironmentRunnerTest, SummaryCountsAreConsistent) {
  const auto Tuned = stress::TunedStressParams::paperDefaults(titan());
  const auto S = runEnvironmentSummary(
      titan(), {stress::StressKind::Sys, true}, Tuned, 25, 13);
  EXPECT_LE(S.AppsEffective, S.AppsWithErrors);
  EXPECT_LE(S.AppsWithErrors, 10u);
  EXPECT_GE(S.AppsWithErrors, 6u)
      << "sys-str+ must expose most applications on Titan";
}

TEST(EnvironmentRunnerTest, NoStressSummaryIsNearZero) {
  const auto Tuned = stress::TunedStressParams::paperDefaults(titan());
  const auto S = runEnvironmentSummary(
      titan(), {stress::StressKind::None, false}, Tuned, 25, 14);
  EXPECT_LE(S.AppsWithErrors, 2u);
}

//===----------------------------------------------------------------------===//
// Cost benchmark (Sec. 6)
//===----------------------------------------------------------------------===//

TEST(CostBenchmarkTest, FencingStrategyOrdering) {
  // cons >= emp-like subset >= none in runtime; fences never make an
  // application faster (Fig. 5 shows no point below the diagonal).
  const unsigned NumSites = apps::appNumSites(apps::AppKind::CbeDot);
  const auto None = measureCost(apps::AppKind::CbeDot, titan(),
                                sim::FencePolicy::none(NumSites), 15, 21);
  const auto OneFence =
      measureCost(apps::AppKind::CbeDot, titan(),
                  sim::FencePolicy::ofSites(NumSites, {3}), 15, 21);
  const auto Cons = measureCost(apps::AppKind::CbeDot, titan(),
                                sim::FencePolicy::all(NumSites), 15, 21);
  ASSERT_EQ(None.RunsUsed, 15u);
  EXPECT_GE(OneFence.RuntimeMs, None.RuntimeMs);
  EXPECT_GT(Cons.RuntimeMs, OneFence.RuntimeMs);
  EXPECT_GT(Cons.RuntimeMs, 1.5 * None.RuntimeMs)
      << "conservative fencing must be expensive";
  // A single rarely-executed fence stays far cheaper than fencing every
  // access. (The paper reports <3% median for emp fences; our kernels are
  // orders of magnitude shorter, so fixed fence latencies amortise less —
  // see EXPERIMENTS.md.)
  EXPECT_LT(OneFence.RuntimeMs, 1.6 * None.RuntimeMs);
  EXPECT_LT(OneFence.RuntimeMs, 0.8 * Cons.RuntimeMs);
}

TEST(CostBenchmarkTest, EnergyTracksRuntime) {
  const unsigned NumSites = apps::appNumSites(apps::AppKind::CbeHt);
  const auto None = measureCost(apps::AppKind::CbeHt, titan(),
                                sim::FencePolicy::none(NumSites), 10, 22);
  const auto Cons = measureCost(apps::AppKind::CbeHt, titan(),
                                sim::FencePolicy::all(NumSites), 10, 22);
  ASSERT_TRUE(None.EnergyValid);
  EXPECT_GT(Cons.EnergyJ, None.EnergyJ);
}

TEST(CostBenchmarkTest, EnergyInvalidWithoutPowerInstrumentation) {
  const auto &C770 = *sim::ChipProfile::lookup("770");
  const unsigned NumSites = apps::appNumSites(apps::AppKind::CbeDot);
  const auto M = measureCost(apps::AppKind::CbeDot, C770,
                             sim::FencePolicy::none(NumSites), 5, 23);
  EXPECT_FALSE(M.EnergyValid);
  EXPECT_EQ(M.RunsUsed, 5u);
}

TEST(CostBenchmarkTest, DiscardsErroneousRuns) {
  // Running an unfenced, fragile app under no stress rarely errs, so all
  // requested runs are used; the measurement reports discarded counts.
  const unsigned NumSites = apps::appNumSites(apps::AppKind::CtOctree);
  const auto M = measureCost(apps::AppKind::CtOctree, titan(),
                             sim::FencePolicy::none(NumSites), 10, 24);
  EXPECT_EQ(M.RunsUsed, 10u);
  EXPECT_GT(M.RuntimeMs, 0.0);
}
