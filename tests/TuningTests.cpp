//===- tests/TuningTests.cpp - tuning pipeline tests ----------------------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// Unit tests for Pareto selection and eps-patch analysis on synthetic
// data, plus integration tests running the real tuning stages on the
// simulated chips.
//
//===----------------------------------------------------------------------===//

#include "tuning/PatchFinder.h"
#include "tuning/Pareto.h"
#include "tuning/SequenceTuner.h"
#include "tuning/SpreadTuner.h"

#include "gtest/gtest.h"

using namespace gpuwmm;
using namespace gpuwmm::tuning;

//===----------------------------------------------------------------------===//
// Pareto selection
//===----------------------------------------------------------------------===//

TEST(ParetoTest, Dominates) {
  EXPECT_TRUE(dominates({2, 2, 2}, {1, 1, 1}));
  EXPECT_TRUE(dominates({2, 1, 1}, {1, 1, 1}));
  EXPECT_FALSE(dominates({1, 1, 1}, {1, 1, 1})); // Equal: not strict.
  EXPECT_FALSE(dominates({3, 0, 3}, {1, 1, 1})); // Trade-off.
}

TEST(ParetoTest, FrontKeepsNonDominated) {
  const std::vector<Objectives> S{{5, 5, 5}, {1, 1, 1}, {6, 1, 1},
                                  {5, 5, 4}};
  const auto Front = paretoFront(S);
  EXPECT_EQ(Front, (std::vector<size_t>{0, 2}));
}

TEST(ParetoTest, SingletonFrontWins) {
  const std::vector<Objectives> S{{1, 2, 3}, {4, 5, 6}, {2, 2, 2}};
  EXPECT_EQ(selectParetoWinner(S), 1u);
}

TEST(ParetoTest, TwoOfThreeTieBreak) {
  // Index 0 beats index 1 on tests 0 and 1 (2 of 3): the paper's
  // tie-break selects it.
  const std::vector<Objectives> S{{10, 10, 1}, {9, 9, 5}};
  EXPECT_EQ(selectParetoWinner(S), 0u);
}

TEST(ParetoTest, FallbackToTotal) {
  // A three-way rock-paper-scissors front: no candidate wins 2-of-3
  // against every rival; highest total wins.
  const std::vector<Objectives> S{{10, 1, 5}, {5, 10, 1}, {1, 5, 11}};
  EXPECT_EQ(selectParetoWinner(S), 2u);
}

//===----------------------------------------------------------------------===//
// eps-patch analysis (synthetic data)
//===----------------------------------------------------------------------===//

TEST(EpsPatchTest, ExtractsMaximalRuns) {
  //                       0  1  2  3  4  5  6  7  8  9
  const std::vector<unsigned> H{0, 9, 9, 0, 9, 9, 9, 0, 0, 9};
  const auto Patches = PatchFinder::epsPatches(H, /*Eps=*/3);
  ASSERT_EQ(Patches.size(), 3u);
  EXPECT_EQ(Patches[0].Start, 1u);
  EXPECT_EQ(Patches[0].Size, 2u);
  EXPECT_EQ(Patches[1].Start, 4u);
  EXPECT_EQ(Patches[1].Size, 3u);
  EXPECT_EQ(Patches[2].Start, 9u);
  EXPECT_EQ(Patches[2].Size, 1u);
}

TEST(EpsPatchTest, ThresholdIsStrict) {
  const std::vector<unsigned> H{3, 3, 4};
  const auto Patches = PatchFinder::epsPatches(H, 3);
  ASSERT_EQ(Patches.size(), 1u);
  EXPECT_EQ(Patches[0].Start, 2u); // "> eps", not ">=".
}

TEST(EpsPatchTest, EmptyAndAllHot) {
  EXPECT_TRUE(PatchFinder::epsPatches({}, 3).empty());
  EXPECT_TRUE(PatchFinder::epsPatches({0, 1, 2}, 3).empty());
  const auto All = PatchFinder::epsPatches({5, 5, 5}, 3);
  ASSERT_EQ(All.size(), 1u);
  EXPECT_EQ(All[0].Size, 3u);
}

namespace {

/// Builds a synthetic scan whose every histogram shows patches of width
/// \p Width (count 50) separated by \p Width zeros.
PatchScan syntheticScan(unsigned Width, unsigned NumKinds = 3) {
  PatchScan Scan;
  Scan.Distances = {Width, 2 * Width};
  Scan.NumLocations = 8 * Width;
  Scan.Executions = 100;
  Scan.Hist.resize(NumKinds);
  for (auto &PerKind : Scan.Hist) {
    PerKind.resize(Scan.Distances.size());
    for (auto &Row : PerKind) {
      Row.assign(Scan.NumLocations, 0);
      for (unsigned I = 0; I != Scan.NumLocations; ++I)
        if ((I / Width) % 2 == 0)
          Row[I] = 50;
    }
  }
  return Scan;
}

} // namespace

TEST(PatchDecisionTest, AgreementYieldsCriticalPatchSize) {
  const auto D = PatchFinder::decide(syntheticScan(32), /*Eps=*/3);
  ASSERT_TRUE(D.CriticalPatchSize.has_value());
  EXPECT_EQ(*D.CriticalPatchSize, 32u);
  EXPECT_EQ(D.PerKindMode[0], 32u);
  EXPECT_EQ(D.PerKindMode[1], 32u);
  EXPECT_EQ(D.PerKindMode[2], 32u);
}

TEST(PatchDecisionTest, DisagreementFallsBackToMajority) {
  // Two tests show width 32, one shows width 64 (the paper's 980
  // situation, where MP patches only appear at very large d).
  PatchScan Scan = syntheticScan(32);
  const PatchScan Other = syntheticScan(64);
  Scan.Hist[0] = Other.Hist[0];
  const auto D = PatchFinder::decide(Scan, 3);
  EXPECT_FALSE(D.CriticalPatchSize.has_value());
  ASSERT_TRUE(D.MajorityPatchSize.has_value());
  EXPECT_EQ(*D.MajorityPatchSize, 32u);
}

TEST(PatchDecisionTest, NoPatchesNoDecision) {
  PatchScan Scan = syntheticScan(32);
  for (auto &PerKind : Scan.Hist)
    for (auto &Row : PerKind)
      Row.assign(Row.size(), 0);
  const auto D = PatchFinder::decide(Scan, 3);
  EXPECT_FALSE(D.CriticalPatchSize.has_value());
  EXPECT_FALSE(D.MajorityPatchSize.has_value());
}

TEST(PatchSizeCountsTest, CountsAcrossDistances) {
  const auto Scan = syntheticScan(16);
  const auto Counts = PatchFinder::patchSizeCounts(Scan, 0, 3);
  // 4 patches per histogram, 2 distances.
  ASSERT_TRUE(Counts.count(16));
  EXPECT_EQ(Counts.at(16), 8u);
}

//===----------------------------------------------------------------------===//
// Integration with the simulated chips
//===----------------------------------------------------------------------===//

class PatchIntegration : public ::testing::TestWithParam<const char *> {};

TEST_P(PatchIntegration, FindsTheChipsNaturalPatchSize) {
  const sim::ChipProfile &Chip = *sim::ChipProfile::lookup(GetParam());
  PatchFinder PF(Chip, 77);
  PatchFinder::Config Cfg;
  Cfg.NumLocations = 256;
  Cfg.Executions = 60;
  const auto Decision = PatchFinder::decide(PF.scan(Cfg), Cfg.Eps);
  ASSERT_TRUE(Decision.CriticalPatchSize ||
              Decision.MajorityPatchSize);
  const unsigned P = Decision.CriticalPatchSize
                         ? *Decision.CriticalPatchSize
                         : *Decision.MajorityPatchSize;
  EXPECT_EQ(P, Chip.PatchSizeWords);
}

INSTANTIATE_TEST_SUITE_P(KeyChips, PatchIntegration,
                         ::testing::Values("titan", "c2075", "980"));

TEST(SequenceTunerTest, SelectedSequenceMixesLoadsAndStores) {
  SequenceTuner Tuner(*sim::ChipProfile::lookup("titan"), 88);
  SequenceTuner::Config Cfg;
  Cfg.NumLocations = 128;
  Cfg.Executions = 15;
  const auto Ranked = Tuner.rankAll(32, Cfg);
  ASSERT_EQ(Ranked.size(), 63u);
  const auto Best = SequenceTuner::selectBest(Ranked);
  bool HasLd = false, HasSt = false;
  for (unsigned I = 0; I != Best.length(); ++I)
    (Best.isStore(I) ? HasSt : HasLd) = true;
  EXPECT_TRUE(HasLd && HasSt)
      << "all of the paper's winning sequences mix loads and stores";
}

TEST(SequenceTunerTest, PureStoreSequencesRankNearBottom) {
  SequenceTuner Tuner(*sim::ChipProfile::lookup("titan"), 89);
  SequenceTuner::Config Cfg;
  Cfg.NumLocations = 128;
  Cfg.Executions = 15;
  const auto Ranked = Tuner.rankAll(32, Cfg);
  uint64_t BestTotal = 0, St5Total = 0;
  const auto St5 = stress::AccessSequence::parse("st5");
  for (const auto &S : Ranked) {
    BestTotal = std::max(BestTotal, S.total());
    if (S.Seq == St5)
      St5Total = S.total();
  }
  EXPECT_LT(St5Total * 4, BestTotal)
      << "Tab. 3: all-store sequences sit orders below the top";
}

TEST(SequenceTunerTest, SortedByKindIsDescending) {
  std::vector<SequenceScore> Scores(3);
  Scores[0].Scores = {1, 0, 0};
  Scores[1].Scores = {3, 0, 0};
  Scores[2].Scores = {2, 0, 0};
  const auto Sorted = SequenceTuner::sortedByKind(Scores, 0);
  EXPECT_EQ(Sorted[0].Scores[0], 3u);
  EXPECT_EQ(Sorted[1].Scores[0], 2u);
  EXPECT_EQ(Sorted[2].Scores[0], 1u);
}

TEST(SpreadTunerTest, SmallSpreadWins) {
  // Fig. 4: the effective spread is small (the paper found 2 on every
  // chip); large spreads dilute per-bank pressure below the threshold.
  SpreadTuner Tuner(*sim::ChipProfile::lookup("k20"), 90);
  SpreadTuner::Config Cfg;
  Cfg.MaxSpread = 12;
  Cfg.Executions = 150;
  const auto Ranked = Tuner.rankAll(
      32, stress::AccessSequence::parse("ld st2 ld"), Cfg);
  ASSERT_EQ(Ranked.size(), 12u);
  const unsigned Best = SpreadTuner::selectBest(Ranked);
  EXPECT_GE(Best, 1u);
  EXPECT_LE(Best, 3u);

  // The tail must decay: spread 12 scores well below the winner.
  uint64_t BestTotal = 0, TailTotal = 0;
  for (const auto &S : Ranked) {
    const uint64_t Total = S.Scores[0] + S.Scores[1] + S.Scores[2];
    if (S.Spread == Best)
      BestTotal = Total;
    if (S.Spread == 12)
      TailTotal = Total;
  }
  EXPECT_LT(2 * TailTotal, BestTotal);
}
