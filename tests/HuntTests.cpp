//===- tests/HuntTests.cpp - Hunt pipeline property-test battery ---------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// The closed-loop bug-mining pipeline (DESIGN.md Sec. 18) and its parts:
//
//  * the canonical form behind corpus dedupe (idempotent, isomorphism-
//    collapsing, name/doc-blind),
//  * the shrinker battery — over hundreds of pool-fuzzed weak programs,
//    every accepted shrink step still provokes checker-confirmed weakness,
//    thread counts never grow, and op counts strictly fall; a padded IRIW
//    is pinned to reduce to the catalog IRIW core at seed 42,
//  * Alg. 1 hardening over litmus programs (fence sets that restore SC
//    under the streaming oracle, `fence?` annotation round-trips),
//  * the crash-safe corpus store (manifest discipline, torn tails, key
//    CRCs, artifact healing, SIGKILL injection via fork+waitpid), and
//  * the pipeline itself: a bounded hunt mines an oracle-verified-SC
//    corpus whose bytes are identical for every --jobs and --batch, and
//    crash+resume converges on the uninterrupted corpus.
//
//===----------------------------------------------------------------------===//

#include "fuzz/LitmusBridge.h"
#include "fuzz/ProgramFuzzer.h"
#include "fuzz/Shrink.h"
#include "harden/LitmusHarden.h"
#include "hunt/Corpus.h"
#include "hunt/Hunt.h"
#include "litmus/Format.h"
#include "litmus/Litmus.h"
#include "model/StreamingChecker.h"
#include "sim/BatchExec.h"
#include "stress/Environment.h"
#include "support/Json.h"
#include "support/Rng.h"
#include "support/ShardIo.h"
#include "support/ThreadPool.h"

#include "gtest/gtest.h"

#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstring>
#include <filesystem>
#include <map>
#include <sstream>
#include <unistd.h>

using namespace gpuwmm;

namespace {

const sim::ChipProfile &titan() {
  const sim::ChipProfile *Chip = sim::ChipProfile::lookup("titan");
  EXPECT_NE(Chip, nullptr);
  return *Chip;
}

/// A fresh corpus directory per test, removed on teardown. The path does
/// not exist on entry — Corpus::open creates it, which is itself part of
/// the contract under test.
struct TempCorpusDir {
  std::filesystem::path Path;

  TempCorpusDir(const char *Tag = "") {
    const auto *Info = ::testing::UnitTest::GetInstance()->current_test_info();
    Path = std::filesystem::path(::testing::TempDir()) /
           (std::string("gpuwmm-") + Info->test_suite_name() + "-" +
            Info->name() + Tag);
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  ~TempCorpusDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  std::string str() const { return Path.string(); }
};

unsigned countOps(const litmus::Program &P) {
  unsigned N = 0;
  for (const litmus::ProgThread &T : P.Threads)
    N += static_cast<unsigned>(T.Ops.size());
  return N;
}

litmus::Program parse(const char *Text) {
  litmus::ParseError Err;
  std::optional<litmus::Program> P = litmus::parseLitmus(Text, Err);
  EXPECT_TRUE(P.has_value()) << Err.render("test-program");
  return P ? *P : litmus::Program();
}

const char *MpText = R"(
litmus mp
locations x y
thread 0 @ block 0 { st x 1
  st y 1 }
thread 1 @ block 1 { ld r0 y
  ld r1 x }
forbidden r0 = 1 /\ r1 = 0
)";

const char *SbText = R"(
litmus sb
locations x y
thread 0 @ block 0 { st x 1
  ld r0 y }
thread 1 @ block 1 { st y 1
  ld r1 x }
forbidden r0 = 0 /\ r1 = 0
)";

const char *LbText = R"(
litmus lb
locations x y
thread 0 @ block 0 { ldasync r0 x
  st y 1
  await r0 }
thread 1 @ block 1 { ldasync r1 y
  st x 1
  await r1 }
forbidden r0 = 1 /\ r1 = 1
)";

/// A corpus entry around \p Text, with the derived fields (canonical key,
/// canonicalised program) filled the way the pipeline fills them.
hunt::CorpusEntry entryFor(const char *Text, unsigned Round = 0) {
  hunt::CorpusEntry E;
  E.Annotated = fuzz::canonicalizeProgram(parse(Text));
  E.Key = fuzz::canonicalKey(harden::stripOptFences(E.Annotated));
  E.Round = Round;
  E.OriginalOps = countOps(E.Annotated) + 2;
  E.ReducedOps = countOps(E.Annotated);
  E.ShrinkCandidates = 5;
  E.ShrinkAccepted = 2;
  E.CrossChecks = 7;
  E.FenceSites = 4;
  E.Fences = 1;
  E.HardenRounds = 3;
  E.HardenAttempts = 1;
  E.HardenStable = true;
  E.VerifyRuns = 10;
  return E;
}

hunt::CorpusManifest testManifest() {
  hunt::CorpusManifest M;
  M.Chip = "titan";
  M.Seed = 5;
  M.Programs = 12;
  M.RunsPerProgram = 30;
  M.NumVars = 3;
  M.OpsPerThread = 5;
  M.Distance = 64;
  M.ShrinkRuns = 120;
  M.HardenRuns = 16;
  M.StableRuns = 150;
  M.VerifyRuns = 80;
  return M;
}

hunt::Corpus openCorpus(const std::string &Dir, bool Resume = false,
                        unsigned CrashAfter = 0) {
  hunt::Corpus::OpenOptions Opts;
  Opts.Dir = Dir;
  Opts.Resume = Resume;
  Opts.CrashAfterAppends = CrashAfter;
  hunt::Corpus C;
  std::string Err;
  EXPECT_TRUE(hunt::Corpus::open(Opts, testManifest(), C, &Err)) << Err;
  return C;
}

/// The bounded hunt configuration the pipeline tests pin their goldens
/// on: small enough for the fast loop, large enough that every stage
/// (shrink, dedupe, harden, verify) sees real work at seed 9.
hunt::HuntConfig tinyHunt(unsigned Rounds = 2) {
  hunt::HuntConfig Cfg;
  Cfg.Chip = &titan();
  Cfg.Rounds = Rounds;
  Cfg.Fuzz.Programs = 12;
  Cfg.Fuzz.RunsPerProgram = 30;
  Cfg.Distance = 64;
  Cfg.ShrinkRuns = 120;
  Cfg.HardenRuns = 16;
  Cfg.StableRuns = 150;
  Cfg.VerifyRuns = 80;
  Cfg.Seed = 9;
  return Cfg;
}

std::string huntJson(const hunt::HuntReport &Report) {
  std::ostringstream OS;
  hunt::writeHuntJson(Report, OS);
  return OS.str();
}

hunt::HuntReport runHuntOk(const hunt::HuntConfig &Cfg,
                           ThreadPool *Pool = nullptr) {
  hunt::HuntReport Report;
  std::string Err;
  EXPECT_TRUE(hunt::runHunt(Cfg, Pool, Report, &Err)) << Err;
  return Report;
}

/// Every .litmus artifact of a corpus directory, name -> bytes.
std::map<std::string, std::string> artifactBytes(const std::string &Dir) {
  std::map<std::string, std::string> Out;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir)) {
    const std::string Name = Entry.path().filename().string();
    if (Name.size() > 7 && Name.compare(Name.size() - 7, 7, ".litmus") == 0) {
      std::string Text, Err;
      EXPECT_TRUE(readFile(Entry.path().string(), Text, &Err)) << Err;
      Out[Name] = Text;
    }
  }
  return Out;
}

/// The concatenated bytes of a corpus directory's record logs, in claim
/// order (a single-invocation corpus has exactly corpus-0000.jsonl).
std::string corpusLogBytes(const std::string &Dir) {
  std::vector<std::string> Logs;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir)) {
    const std::string Name = Entry.path().filename().string();
    if (Name.rfind("corpus-", 0) == 0 &&
        Name.compare(Name.size() - 6, 6, ".jsonl") == 0)
      Logs.push_back(Entry.path().string());
  }
  std::sort(Logs.begin(), Logs.end());
  std::string Out;
  for (const std::string &Log : Logs) {
    std::string Text, Err;
    EXPECT_TRUE(readFile(Log, Text, &Err)) << Err;
    Out += Text;
  }
  return Out;
}

void expectEntriesEqual(const std::vector<hunt::CorpusEntry> &A,
                        const std::vector<hunt::CorpusEntry> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Name, B[I].Name);
    EXPECT_EQ(A[I].Round, B[I].Round);
    EXPECT_EQ(A[I].Key, B[I].Key);
    EXPECT_EQ(A[I].KeyCrc, B[I].KeyCrc);
    EXPECT_EQ(litmus::printLitmus(A[I].Annotated),
              litmus::printLitmus(B[I].Annotated));
    EXPECT_EQ(A[I].OriginalOps, B[I].OriginalOps);
    EXPECT_EQ(A[I].ReducedOps, B[I].ReducedOps);
    EXPECT_EQ(A[I].ShrinkCandidates, B[I].ShrinkCandidates);
    EXPECT_EQ(A[I].ShrinkAccepted, B[I].ShrinkAccepted);
    EXPECT_EQ(A[I].CrossChecks, B[I].CrossChecks);
    EXPECT_EQ(A[I].ProvokingRegion, B[I].ProvokingRegion);
    EXPECT_EQ(A[I].FenceSites, B[I].FenceSites);
    EXPECT_EQ(A[I].Fences, B[I].Fences);
    EXPECT_EQ(A[I].HardenRounds, B[I].HardenRounds);
    EXPECT_EQ(A[I].HardenAttempts, B[I].HardenAttempts);
    EXPECT_EQ(A[I].HardenStable, B[I].HardenStable);
    EXPECT_EQ(A[I].VerifyRuns, B[I].VerifyRuns);
    EXPECT_EQ(A[I].VerifyWeak, B[I].VerifyWeak);
    EXPECT_EQ(A[I].VerifyForbidden, B[I].VerifyForbidden);
    EXPECT_EQ(A[I].AxiomViolations, B[I].AxiomViolations);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Canonical form (the corpus dedupe key)
//===----------------------------------------------------------------------===//

TEST(CanonTest, IdempotentOnPoolPrograms) {
  // canon(canon(P)) == canon(P) over a pool batch — weak and non-weak
  // programs alike (the form must be total, not just weak-case-shaped).
  const auto Batch = fuzz::fuzzBatch(titan(), fuzz::BatchConfig(), 3);
  ASSERT_FALSE(Batch.empty());
  for (size_t I = 0; I != Batch.size(); ++I) {
    const fuzz::BatchEntry &B = Batch[I];
    const litmus::Program P = fuzz::toLitmusProgram(
        B.P, "pool", B.R.WeakOutcomes ? &B.R.FirstWeak : nullptr);
    const litmus::Program C1 = fuzz::canonicalizeProgram(P);
    EXPECT_TRUE(C1.validate().empty()) << C1.validate();
    EXPECT_TRUE(fuzz::canonicalizeProgram(C1) == C1)
        << "canon not idempotent for pool program " << I;
    EXPECT_EQ(fuzz::canonicalKey(P), fuzz::canonicalKey(C1));
  }
}

TEST(CanonTest, KeyIgnoresNameAndDoc) {
  litmus::Program A = parse(MpText);
  litmus::Program B = A;
  B.Name = "something-else";
  B.Doc = "a doc comment the key must not see";
  EXPECT_EQ(fuzz::canonicalKey(A), fuzz::canonicalKey(B));
}

TEST(CanonTest, IsomorphicProgramsShareOneKey) {
  // The same bug spelled differently: renamed locations and registers,
  // different data values, different block numbers. One canonical key.
  const litmus::Program A = parse(MpText);
  const litmus::Program B = parse(R"(
litmus mp-respelled
locations q p
thread 0 @ block 2 { st q 7
  st p 7 }
thread 1 @ block 5 { ld s0 p
  ld s1 q }
forbidden s0 = 7 /\ s1 = 0
)");
  EXPECT_EQ(fuzz::canonicalKey(A), fuzz::canonicalKey(B));
  EXPECT_NE(fuzz::canonicalKey(A), fuzz::canonicalKey(parse(SbText)));
}

TEST(CanonTest, DropsLocationsNothingReferences) {
  const litmus::Program P = parse(R"(
litmus unused-loc
locations x ghost y
init { ghost = 9 }
thread 0 @ block 0 { st x 1
  st y 1 }
thread 1 @ block 1 { ld r0 y
  ld r1 x }
forbidden r0 = 1 /\ r1 = 0
)");
  const litmus::Program C = fuzz::canonicalizeProgram(P);
  EXPECT_EQ(C.Locations.size(), 2u);
  EXPECT_TRUE(C.validate().empty()) << C.validate();
  // And the ghost's presence never split the key space.
  EXPECT_EQ(fuzz::canonicalKey(P), fuzz::canonicalKey(parse(MpText)));
}

//===----------------------------------------------------------------------===//
// Shrinker battery
//===----------------------------------------------------------------------===//

namespace {

/// The battery body: fuzz a pool batch, shrink its first \p NeedWeak weak
/// programs with step recording, and check every property the pipeline
/// depends on — each accepted step validates, never grows the thread
/// count, strictly shrinks the op count, canonicalises idempotently, and
/// still provokes checker-confirmed weakness when independently
/// re-verified; the checkers never disagree.
void shrinkBattery(unsigned NeedWeak) {
  const sim::ChipProfile &Chip = titan();
  fuzz::BatchConfig BC;
  BC.Programs = 800;
  BC.RunsPerProgram = 40;
  const auto Batch = fuzz::fuzzBatch(Chip, BC, 7);

  unsigned Weak = 0, Reproduced = 0, Steps = 0;
  for (size_t I = 0; I != Batch.size() && Weak < NeedWeak; ++I) {
    const fuzz::BatchEntry &B = Batch[I];
    if (!B.R.WeakOutcomes)
      continue;
    ++Weak;
    const litmus::Program P =
        fuzz::toLitmusProgram(B.P, "battery", &B.R.FirstWeak);
    fuzz::ShrinkOptions Opts;
    Opts.Distance = 64;
    Opts.RunsPerAttempt = 120;
    Opts.Seed = Rng::deriveStream(99, I);
    Opts.RecordSteps = true;
    const fuzz::ShrinkResult R = fuzz::shrinkWeakProgram(P, Chip, Opts);
    ASSERT_TRUE(R.OracleError.empty()) << R.OracleError;
    EXPECT_LE(R.ReducedOps, R.OriginalOps);
    if (!R.Reproduced) {
      // Nothing reproduced, nothing may be shrunk.
      EXPECT_EQ(R.ReducedOps, R.OriginalOps);
      EXPECT_TRUE(R.Steps.empty());
      continue;
    }
    ++Reproduced;
    EXPECT_GT(R.CrossChecks, 0u);
    unsigned PrevOps = R.OriginalOps;
    size_t PrevThreads = P.Threads.size();
    for (const litmus::Program &Step : R.Steps) {
      ++Steps;
      EXPECT_TRUE(Step.validate().empty()) << Step.validate();
      EXPECT_LE(Step.Threads.size(), PrevThreads);
      EXPECT_LT(countOps(Step), PrevOps);
      const litmus::Program C1 = fuzz::canonicalizeProgram(Step);
      EXPECT_TRUE(fuzz::canonicalizeProgram(C1) == C1);
      std::string OracleError;
      EXPECT_TRUE(fuzz::reproducesWeakProgram(Step, Chip, Opts,
                                              &OracleError))
          << "accepted step lost its weakness (pool program " << I << ")";
      EXPECT_TRUE(OracleError.empty()) << OracleError;
      PrevOps = countOps(Step);
      PrevThreads = Step.Threads.size();
    }
    if (R.Accepted)
      EXPECT_TRUE(R.Steps.back() == R.Reduced);
    else
      EXPECT_TRUE(R.Steps.empty());
  }
  ASSERT_EQ(Weak, NeedWeak) << "pool batch too small for the battery";
  EXPECT_GT(Reproduced, NeedWeak / 2);
  EXPECT_GT(Steps, 0u);
}

} // namespace

TEST(ShrinkPropertyTest, EveryStepStaysWeak) { shrinkBattery(25); }

// The full 200-program battery (slow label).
TEST(ShrinkPropertyTest, EveryStepStaysWeakBattery200) { shrinkBattery(200); }

TEST(ShrinkPropertyTest, PaddedIriwReducesToCatalogCoreAtSeed42) {
  // IRIW buried in noise: a bystander thread, a bystander store in the
  // first writer, a bystander load in the second reader. Whole-thread
  // reduction plus single-op reduction must dig the catalog IRIW core
  // back out at seed 42 — the multi-thread reduction pin of ISSUE 9.
  const litmus::Program Padded = parse(R"(
litmus iriw-padded
locations x y w z
thread 0 @ block 0 { st x 1
  st w 3 }
thread 1 @ block 1 { st y 1 }
thread 2 @ block 2 { ldasync r0 x
  ld r1 y
  await r0 }
thread 3 @ block 3 { ldasync r2 y
  ld r3 x
  await r2
  ld r4 w }
thread 4 @ block 4 { st z 7
  ld r5 z }
forbidden r0 = 1 /\ r1 = 0 /\ r2 = 1 /\ r3 = 0
)");
  fuzz::ShrinkOptions Opts;
  Opts.Distance = 128;
  Opts.RunsPerAttempt = 200;
  Opts.Seed = 42;
  const fuzz::ShrinkResult R =
      fuzz::shrinkWeakProgram(Padded, titan(), Opts);
  ASSERT_TRUE(R.OracleError.empty()) << R.OracleError;
  ASSERT_TRUE(R.Reproduced);
  EXPECT_EQ(R.OriginalOps, 12u);
  EXPECT_EQ(R.ReducedOps, 8u);
  ASSERT_EQ(R.Reduced.Threads.size(), 4u);
  EXPECT_GT(R.CrossChecks, 0u);
  // The reduced core is isomorphic to the catalog IRIW (minus its
  // `fence?` markers): one canonical key.
  const litmus::Program *Iriw = litmus::findCatalogProgram("IRIW");
  ASSERT_NE(Iriw, nullptr);
  EXPECT_EQ(fuzz::canonicalKey(R.Reduced),
            fuzz::canonicalKey(harden::stripOptFences(*Iriw)));
}

TEST(ShrinkPropertyTest, IriwCoreIsLocallyMinimal) {
  // "Shrunk" must mean shrunk: no single further reduction of the IRIW
  // core stays weak. The only valid single-step reductions drop one of
  // the writer threads (every reader op defines a pinned register), and
  // without a writer the pinned outcome r=1 is unreachable.
  const litmus::Program *Iriw = litmus::findCatalogProgram("IRIW");
  ASSERT_NE(Iriw, nullptr);
  const litmus::Program Core = harden::stripOptFences(*Iriw);
  fuzz::ShrinkOptions Opts;
  Opts.Distance = 128;
  Opts.RunsPerAttempt = 60;
  Opts.Seed = 42;
  for (unsigned Drop = 0; Drop != 2; ++Drop) {
    litmus::Program Smaller = Core;
    Smaller.Threads.erase(Smaller.Threads.begin() + Drop);
    ASSERT_TRUE(Smaller.validate().empty()) << Smaller.validate();
    EXPECT_FALSE(fuzz::reproducesWeakProgram(Smaller, titan(), Opts))
        << "IRIW without writer thread " << Drop
        << " still reported weak";
  }
}

//===----------------------------------------------------------------------===//
// Alg. 1 hardening over litmus programs
//===----------------------------------------------------------------------===//

TEST(LitmusHardenTest, FenceSitesSkipIssuesAndExistingFences) {
  // Sites go after Store/Load/AwaitLoad/AtomicAdd; AsyncLoad issues and
  // existing fences get none. Catalog IRIW minus its opt-fences: two
  // single-store writers, two readers of (issue, load, await) each.
  const litmus::Program *Iriw = litmus::findCatalogProgram("IRIW");
  ASSERT_NE(Iriw, nullptr);
  EXPECT_EQ(harden::litmusFenceSites(harden::stripOptFences(*Iriw)).size(),
            6u);
  EXPECT_EQ(harden::litmusFenceSites(parse(MpText)).size(), 4u);
  // A fully-fenced MP gains no extra sites from its fences.
  const auto Sites = harden::litmusFenceSites(parse(MpText));
  const litmus::Program Fenced = harden::applyLitmusFences(
      parse(MpText),
      sim::FencePolicy::all(static_cast<unsigned>(Sites.size())));
  EXPECT_EQ(harden::litmusFenceSites(Fenced).size(), Sites.size());
}

TEST(LitmusHardenTest, HardensMpToOracleVerifiedSc) {
  const sim::ChipProfile &Chip = titan();
  const litmus::Program Mp = parse(MpText);
  // The unfenced program is genuinely weak under the scan; the scan also
  // yields the stress region that provoked it — the region the pipeline
  // hardens and verifies under (away from it MP can look SC and Alg. 1
  // would rightly keep nothing).
  fuzz::ShrinkOptions Weak;
  Weak.Distance = 128;
  Weak.RunsPerAttempt = 150;
  Weak.Seed = 1;
  const fuzz::ShrinkResult Scan = fuzz::shrinkWeakProgram(Mp, Chip, Weak);
  ASSERT_TRUE(Scan.Reproduced);
  EXPECT_EQ(Scan.ReducedOps, Scan.OriginalOps); // MP is already minimal.

  harden::LitmusHardenOptions Opts;
  Opts.Distance = 128;
  Opts.CheckRuns = 32;
  Opts.StableRuns = 300;
  Opts.Seed = 3;
  Opts.StressRegion = Scan.ProvokingRegion;
  const harden::LitmusHardenResult R =
      harden::hardenLitmusProgram(Mp, Chip, Opts);
  EXPECT_EQ(R.NumSites, 4u);
  EXPECT_GE(R.Fences.count(), 1u);
  EXPECT_TRUE(R.Insertion.Stable);
  EXPECT_GT(R.Executions, 0u);

  // ...and the hardened program is SC under an independent oracle stream
  // at that same region: zero checker-weak runs, zero axiom violations.
  const auto Tuned = stress::TunedStressParams::paperDefaults(Chip);
  litmus::LitmusRunner Runner(Chip, 77);
  model::StreamingChecker Checker;
  litmus::LitmusRunOpts RunOpts;
  RunOpts.Sink = &Checker;
  const auto Stress = litmus::LitmusRunner::MicroStress::at(
      Tuned.Seq, (Scan.ProvokingRegion % Chip.NumBanks) * Tuned.PatchWords);
  unsigned WeakRuns = 0, AxiomViolations = 0;
  for (unsigned Run = 0; Run != 200; ++Run) {
    Checker.begin();
    (void)Runner.runOnce(R.Hardened, Opts.Distance, Stress, RunOpts);
    const model::StreamVerdict &V = Checker.finish();
    if (!V.AxiomsOk)
      ++AxiomViolations;
    else if (V.weak())
      ++WeakRuns;
  }
  EXPECT_EQ(WeakRuns, 0u);
  EXPECT_EQ(AxiomViolations, 0u);

  // The `fence?` annotation mirrors the kept set exactly and strips back
  // to the input program.
  unsigned OptFences = 0;
  for (const litmus::ProgThread &T : R.Annotated.Threads)
    for (const litmus::ProgOp &O : T.Ops)
      if (O.K == litmus::ProgOp::Kind::OptFence)
        ++OptFences;
  EXPECT_EQ(OptFences, R.Fences.count());
  EXPECT_TRUE(harden::stripOptFences(R.Annotated) == Mp);
}

//===----------------------------------------------------------------------===//
// Corpus store
//===----------------------------------------------------------------------===//

TEST(CorpusTest, InMemoryCorpusDedupes) {
  hunt::Corpus C = openCorpus("");
  hunt::CorpusEntry E = entryFor(MpText);
  const std::string Key = E.Key;
  std::string Err;
  ASSERT_TRUE(C.append(std::move(E), &Err)) << Err;
  EXPECT_TRUE(C.contains(Key));
  ASSERT_EQ(C.entries().size(), 1u);
  EXPECT_EQ(C.entries()[0].Name, "hunt-000000");
  // The stored program carries the corpus name, not the fuzz export's.
  EXPECT_EQ(C.entries()[0].Annotated.Name, "hunt-000000");
  // Duplicate keys and keyless entries are refused.
  EXPECT_FALSE(C.append(entryFor(MpText), &Err));
  EXPECT_NE(Err.find("duplicate"), std::string::npos) << Err;
  hunt::CorpusEntry NoKey = entryFor(SbText);
  NoKey.Key.clear();
  EXPECT_FALSE(C.append(std::move(NoKey), &Err));
  EXPECT_EQ(C.entries().size(), 1u);
}

TEST(CorpusTest, PersistsReloadsAndHealsArtifacts) {
  TempCorpusDir Dir;
  std::vector<hunt::CorpusEntry> Written;
  {
    hunt::Corpus C = openCorpus(Dir.str());
    std::string Err;
    ASSERT_TRUE(C.append(entryFor(MpText, 0), &Err)) << Err;
    ASSERT_TRUE(C.append(entryFor(SbText, 0), &Err)) << Err;
    ASSERT_TRUE(C.markRoundDone(0, &Err)) << Err;
    Written = C.entries();
    EXPECT_EQ(C.lastCompletedRound(), 0);
  }
  const auto Artifacts = artifactBytes(Dir.str());
  ASSERT_EQ(Artifacts.size(), 2u);
  ASSERT_TRUE(Artifacts.count("hunt-000000.litmus"));

  // Delete one artifact: a reload must heal it from the record log (the
  // crash window between record append and artifact publication).
  std::filesystem::remove(Dir.Path / "hunt-000001.litmus");
  hunt::Corpus Re = openCorpus(Dir.str(), /*Resume=*/true);
  EXPECT_TRUE(Re.warnings().empty());
  EXPECT_EQ(Re.lastCompletedRound(), 0);
  expectEntriesEqual(Re.entries(), Written);
  EXPECT_TRUE(Re.contains(Written[0].Key));
  EXPECT_EQ(artifactBytes(Dir.str()), Artifacts);
}

TEST(CorpusTest, SecondOpenRequiresResume) {
  TempCorpusDir Dir;
  {
    hunt::Corpus C = openCorpus(Dir.str());
    std::string Err;
    ASSERT_TRUE(C.append(entryFor(MpText), &Err)) << Err;
  }
  hunt::Corpus::OpenOptions Opts;
  Opts.Dir = Dir.str();
  hunt::Corpus C;
  std::string Err;
  EXPECT_FALSE(hunt::Corpus::open(Opts, testManifest(), C, &Err));
  EXPECT_NE(Err.find("already holds a corpus"), std::string::npos) << Err;
}

TEST(CorpusTest, MismatchedManifestIsRefused) {
  TempCorpusDir Dir;
  { openCorpus(Dir.str()); }
  hunt::Corpus::OpenOptions Opts;
  Opts.Dir = Dir.str();
  Opts.Resume = true;
  hunt::CorpusManifest Other = testManifest();
  Other.Seed = 6;
  hunt::Corpus C;
  std::string Err;
  EXPECT_FALSE(hunt::Corpus::open(Opts, Other, C, &Err));
  EXPECT_NE(Err.find("describes a different hunt"), std::string::npos)
      << Err;
}

TEST(CorpusTest, TornTailIsTruncatedWithWarning) {
  TempCorpusDir Dir;
  {
    hunt::Corpus C = openCorpus(Dir.str());
    std::string Err;
    ASSERT_TRUE(C.append(entryFor(MpText), &Err)) << Err;
    ASSERT_TRUE(C.append(entryFor(SbText), &Err)) << Err;
  }
  const std::filesystem::path Log = Dir.Path / "corpus-0000.jsonl";
  ASSERT_TRUE(std::filesystem::exists(Log));
  std::filesystem::resize_file(Log, std::filesystem::file_size(Log) - 8);

  hunt::Corpus Re = openCorpus(Dir.str(), /*Resume=*/true);
  ASSERT_EQ(Re.warnings().size(), 1u);
  EXPECT_NE(Re.warnings()[0].find("torn tail"), std::string::npos);
  ASSERT_EQ(Re.entries().size(), 1u);
  EXPECT_EQ(Re.entries()[0].Key, entryFor(MpText).Key);
}

TEST(CorpusTest, KeyCrcMismatchFailsTheLoad) {
  // A validly-framed record whose stored key CRC disagrees with the key
  // recomputed from its program must fail the load loudly — that is the
  // canonicaliser-drift / corruption tripwire.
  TempCorpusDir Dir;
  {
    hunt::Corpus C = openCorpus(Dir.str());
    std::string Err;
    ASSERT_TRUE(C.append(entryFor(MpText), &Err)) << Err;
  }
  const std::string LogPath = (Dir.Path / "corpus-0000.jsonl").string();
  std::string Text, Err;
  ASSERT_TRUE(readFile(LogPath, Text, &Err)) << Err;
  const FramedRecords Records = parseFramedRecords(Text);
  ASSERT_EQ(Records.Payloads.size(), 1u);
  std::string Payload = Records.Payloads[0];
  const size_t At = Payload.find("\"key_crc\": \"");
  ASSERT_NE(At, std::string::npos);
  const size_t HexAt = At + std::strlen("\"key_crc\": \"");
  Payload.replace(HexAt, 8, Payload.compare(HexAt, 8, "00000000") == 0
                                ? "00000001"
                                : "00000000");
  ASSERT_TRUE(atomicWriteFile(LogPath, frameRecord(Payload), &Err)) << Err;

  hunt::Corpus::OpenOptions Opts;
  Opts.Dir = Dir.str();
  Opts.Resume = true;
  hunt::Corpus C;
  EXPECT_FALSE(hunt::Corpus::open(Opts, testManifest(), C, &Err));
  EXPECT_NE(Err.find("canonical-key CRC"), std::string::npos) << Err;
}

TEST(CorpusTest, SigkillAfterNthAppendKeepsDurablePrefix) {
  // The crash hook in-process: a forked child SIGKILLs itself right
  // after its 2nd durable append. The durable prefix must survive
  // exactly — nothing dropped, nothing duplicated — and completing the
  // corpus after resume must equal an uninterrupted reference.
  TempCorpusDir Dir;
  TempCorpusDir RefDir("-ref");
  const pid_t Child = fork();
  ASSERT_GE(Child, 0);
  if (Child == 0) {
    hunt::Corpus C = openCorpus(Dir.str(), false, /*CrashAfter=*/2);
    std::string Err;
    C.append(entryFor(MpText), &Err);
    C.append(entryFor(SbText), &Err); // SIGKILL fires in here.
    C.append(entryFor(LbText), &Err);
    _exit(0); // Unreachable when the hook fires.
  }
  int Status = 0;
  ASSERT_EQ(waitpid(Child, &Status, 0), Child);
  ASSERT_TRUE(WIFSIGNALED(Status));
  EXPECT_EQ(WTERMSIG(Status), SIGKILL);

  hunt::Corpus Resumed = openCorpus(Dir.str(), /*Resume=*/true);
  ASSERT_EQ(Resumed.entries().size(), 2u);
  EXPECT_EQ(Resumed.lastCompletedRound(), -1);
  std::string Err;
  ASSERT_TRUE(Resumed.append(entryFor(LbText), &Err)) << Err;
  ASSERT_TRUE(Resumed.markRoundDone(0, &Err)) << Err;

  hunt::Corpus Ref = openCorpus(RefDir.str());
  ASSERT_TRUE(Ref.append(entryFor(MpText), &Err)) << Err;
  ASSERT_TRUE(Ref.append(entryFor(SbText), &Err)) << Err;
  ASSERT_TRUE(Ref.append(entryFor(LbText), &Err)) << Err;
  ASSERT_TRUE(Ref.markRoundDone(0, &Err)) << Err;
  expectEntriesEqual(Resumed.entries(), Ref.entries());
  EXPECT_EQ(artifactBytes(Dir.str()), artifactBytes(RefDir.str()));
}

//===----------------------------------------------------------------------===//
// The pipeline
//===----------------------------------------------------------------------===//

TEST(HuntPipelineTest, TinyHuntMinesOracleVerifiedCorpus) {
  const hunt::HuntReport R = runHuntOk(tinyHunt(2));
  // The bounded-hunt golden at seed 9 (deterministic per the contract).
  EXPECT_EQ(R.ProgramsFuzzed, 24u);
  EXPECT_EQ(R.WeakPrograms, 6u);
  EXPECT_EQ(R.NotReproduced, 1u);
  EXPECT_EQ(R.Duplicates, 0u);
  ASSERT_EQ(R.Entries.size(), 5u);
  EXPECT_EQ(R.NewEntries, 5u);
  EXPECT_EQ(R.RoundsRun, 2u);
  EXPECT_TRUE(R.clean());
  EXPECT_EQ(R.OracleChecked, 5u * 80u);
  EXPECT_EQ(R.OracleWeak, 0u);
  for (uint64_t N : R.AxiomCounts)
    EXPECT_EQ(N, 0u);

  char ExpectName[32];
  for (size_t I = 0; I != R.Entries.size(); ++I) {
    const hunt::CorpusEntry &E = R.Entries[I];
    std::snprintf(ExpectName, sizeof(ExpectName), "hunt-%06zu", I);
    EXPECT_EQ(E.Name, ExpectName);
    EXPECT_TRUE(E.Annotated.validate().empty()) << E.Annotated.validate();
    EXPECT_LE(E.ReducedOps, E.OriginalOps);
    EXPECT_GT(E.CrossChecks, 0u);
    EXPECT_LE(E.Fences, E.FenceSites);
    EXPECT_GE(E.HardenAttempts, 1u);
    EXPECT_EQ(E.VerifyRuns, 80u);
    EXPECT_EQ(E.VerifyWeak, 0u);
    // The key really is the canonical form of the entry's weak core.
    EXPECT_EQ(E.Key,
              fuzz::canonicalKey(harden::stripOptFences(E.Annotated)));
    EXPECT_EQ(E.KeyCrc, crc32(E.Key));
  }
}

TEST(HuntPipelineTest, ReportJsonParsesAndMirrorsTheReport) {
  const hunt::HuntReport R = runHuntOk(tinyHunt(2));
  const std::string Json = huntJson(R);
  std::string Err;
  const std::optional<JsonValue> Doc = parseJson(Json, &Err);
  ASSERT_TRUE(Doc.has_value()) << Err;
  EXPECT_EQ(Doc->find("schema")->asString(), "gpuwmm-hunt-v1");
  EXPECT_EQ(Doc->find("chip")->asString(), "titan");
  EXPECT_EQ(Doc->find("seed")->asUInt64(), 9u);
  const JsonValue *Totals = Doc->find("totals");
  ASSERT_NE(Totals, nullptr);
  EXPECT_EQ(Totals->find("programs_fuzzed")->asUInt64(), R.ProgramsFuzzed);
  EXPECT_EQ(Totals->find("corpus_size")->asUInt64(), R.Entries.size());
  const JsonValue *Oracle = Doc->find("oracle");
  ASSERT_NE(Oracle, nullptr);
  EXPECT_TRUE(Oracle->find("clean")->asBool());
  const JsonValue *Axioms = Oracle->find("axiom_violations");
  ASSERT_NE(Axioms, nullptr);
  for (const char *Key : hunt::axiomKeys())
    ASSERT_NE(Axioms->find(Key), nullptr) << Key;
  // Every corpus entry's litmus text round-trips through the report.
  const JsonValue *Entries = Doc->find("entries");
  ASSERT_NE(Entries, nullptr);
  ASSERT_EQ(Entries->items().size(), R.Entries.size());
  for (size_t I = 0; I != R.Entries.size(); ++I)
    EXPECT_EQ(Entries->items()[I].find("litmus")->asString(),
              litmus::printLitmus(R.Entries[I].Annotated));
}

TEST(HuntPipelineTest, SameBugFromDifferentFuzzSeedsCollapses) {
  // The dedupe differential: pool batches at two different fuzz seeds
  // surface the same underlying bug (pinned pair found by search); both
  // shrink to one canonical key, and the corpus admits only one entry.
  const sim::ChipProfile &Chip = titan();
  fuzz::BatchConfig BC;
  BC.Programs = 80;
  BC.RunsPerProgram = 40;
  BC.NumVars = 2;
  BC.OpsPerThread = 3;
  const auto BatchA = fuzz::fuzzBatch(Chip, BC, 33);
  const auto BatchB = fuzz::fuzzBatch(Chip, BC, 52);
  const fuzz::BatchEntry &A = BatchA[48];
  const fuzz::BatchEntry &B = BatchB[42];
  ASSERT_GT(A.R.WeakOutcomes, 0u);
  ASSERT_GT(B.R.WeakOutcomes, 0u);
  // The raw programs differ (different generation streams)...
  EXPECT_NE(A.P.str(), B.P.str());

  fuzz::ShrinkOptions Opts;
  Opts.Distance = 64;
  Opts.RunsPerAttempt = 120;
  Opts.Seed = 5;
  const fuzz::ShrinkResult RA = fuzz::shrinkWeakProgram(
      fuzz::toLitmusProgram(A.P, "seed-33", &A.R.FirstWeak), Chip, Opts);
  const fuzz::ShrinkResult RB = fuzz::shrinkWeakProgram(
      fuzz::toLitmusProgram(B.P, "seed-52", &B.R.FirstWeak), Chip, Opts);
  ASSERT_TRUE(RA.Reproduced);
  ASSERT_TRUE(RB.Reproduced);
  // ...but the shrunk cores are one bug under the canonical key.
  EXPECT_EQ(fuzz::canonicalKey(RA.Reduced), fuzz::canonicalKey(RB.Reduced));

  hunt::Corpus C = openCorpus("");
  hunt::CorpusEntry E;
  E.Annotated = fuzz::canonicalizeProgram(RA.Reduced);
  E.Key = fuzz::canonicalKey(RA.Reduced);
  std::string Err;
  ASSERT_TRUE(C.append(std::move(E), &Err)) << Err;
  EXPECT_TRUE(C.contains(fuzz::canonicalKey(RB.Reduced)));
}

namespace {

/// Restores the CLI batch-width override on scope exit.
struct BatchWidthGuard {
  ~BatchWidthGuard() { sim::setDefaultBatchWidth(0); }
};

} // namespace

TEST(HuntPipelineTest, JobsAndBatchWidthsYieldIdenticalCorpus) {
  // The determinism acceptance criterion: a bounded hunt's corpus bytes,
  // artifacts and report JSON are bit-identical for every --jobs and
  // --batch combination.
  BatchWidthGuard Guard;
  ThreadPool Pool(8);
  struct Variant {
    ThreadPool *Pool;
    unsigned BatchWidth;
  };
  std::string RefJson, RefLog;
  std::map<std::string, std::string> RefArtifacts;
  for (const Variant &V :
       {Variant{nullptr, 1}, Variant{nullptr, 64}, Variant{&Pool, 1},
        Variant{&Pool, 64}}) {
    sim::setDefaultBatchWidth(V.BatchWidth);
    TempCorpusDir Dir(V.Pool ? (V.BatchWidth == 1 ? "-p1" : "-p64")
                             : (V.BatchWidth == 1 ? "-s1" : "-s64"));
    hunt::HuntConfig Cfg = tinyHunt(2);
    Cfg.CorpusDir = Dir.str();
    const hunt::HuntReport R = runHuntOk(Cfg, V.Pool);
    EXPECT_TRUE(R.clean());
    const std::string Json = huntJson(R);
    const std::string Log = corpusLogBytes(Dir.str());
    const auto Artifacts = artifactBytes(Dir.str());
    if (RefJson.empty()) {
      RefJson = Json;
      RefLog = Log;
      RefArtifacts = Artifacts;
      EXPECT_FALSE(RefLog.empty());
      EXPECT_FALSE(RefArtifacts.empty());
      continue;
    }
    EXPECT_EQ(Json, RefJson) << "report diverged (pool=" << !!V.Pool
                             << " batch=" << V.BatchWidth << ")";
    EXPECT_EQ(Log, RefLog) << "corpus log diverged (pool=" << !!V.Pool
                           << " batch=" << V.BatchWidth << ")";
    EXPECT_EQ(Artifacts, RefArtifacts);
  }
}

TEST(HuntPipelineTest, ResumeExtendsToTheIdenticalCorpus) {
  // rounds=2 then --resume to rounds=3 must converge on the same corpus
  // as a fresh rounds=3 hunt: same entries, same artifact bytes.
  TempCorpusDir FreshDir("-fresh");
  hunt::HuntConfig Fresh = tinyHunt(3);
  Fresh.CorpusDir = FreshDir.str();
  const hunt::HuntReport RFresh = runHuntOk(Fresh);

  TempCorpusDir StagedDir("-staged");
  hunt::HuntConfig Staged = tinyHunt(2);
  Staged.CorpusDir = StagedDir.str();
  runHuntOk(Staged);
  hunt::HuntConfig Extend = tinyHunt(3);
  Extend.CorpusDir = StagedDir.str();
  Extend.Resume = true;
  const hunt::HuntReport RExtend = runHuntOk(Extend);

  EXPECT_EQ(RExtend.StartRound, 2u);
  EXPECT_EQ(RExtend.RoundsRun, 1u);
  expectEntriesEqual(RExtend.Entries, RFresh.Entries);
  EXPECT_EQ(RExtend.OracleChecked, RFresh.OracleChecked);
  EXPECT_EQ(RExtend.OracleWeak, RFresh.OracleWeak);
  EXPECT_EQ(artifactBytes(StagedDir.str()), artifactBytes(FreshDir.str()));
  // Resuming a finished hunt runs nothing and changes nothing.
  const hunt::HuntReport RAgain = runHuntOk(Extend);
  EXPECT_EQ(RAgain.RoundsRun, 0u);
  EXPECT_EQ(RAgain.ProgramsFuzzed, 0u);
  expectEntriesEqual(RAgain.Entries, RFresh.Entries);
}

TEST(HuntPipelineTest, SigkillMidHuntResumesToTheIdenticalCorpus) {
  // End-to-end crash injection: a forked child runs the hunt and is
  // SIGKILLed by the corpus hook after its 3rd durable append (mid
  // round); the parent resumes and must converge on the uninterrupted
  // reference corpus — no entry dropped, none duplicated.
  TempCorpusDir RefDir("-ref");
  hunt::HuntConfig Ref = tinyHunt(2);
  Ref.CorpusDir = RefDir.str();
  const hunt::HuntReport RRef = runHuntOk(Ref);

  TempCorpusDir Dir;
  const pid_t Child = fork();
  ASSERT_GE(Child, 0);
  if (Child == 0) {
    hunt::HuntConfig Crashing = tinyHunt(2);
    Crashing.CorpusDir = Dir.str();
    Crashing.CrashAfterAppends = 3;
    hunt::HuntReport Report;
    hunt::runHunt(Crashing, nullptr, Report, nullptr);
    _exit(0); // Unreachable when the hook fires.
  }
  int Status = 0;
  ASSERT_EQ(waitpid(Child, &Status, 0), Child);
  ASSERT_TRUE(WIFSIGNALED(Status));
  EXPECT_EQ(WTERMSIG(Status), SIGKILL);

  hunt::HuntConfig Resume = tinyHunt(2);
  Resume.CorpusDir = Dir.str();
  Resume.Resume = true;
  const hunt::HuntReport RResumed = runHuntOk(Resume);
  EXPECT_TRUE(RResumed.clean());
  expectEntriesEqual(RResumed.Entries, RRef.Entries);
  EXPECT_EQ(artifactBytes(Dir.str()), artifactBytes(RefDir.str()));
  EXPECT_EQ(RResumed.OracleChecked, RRef.OracleChecked);
}
