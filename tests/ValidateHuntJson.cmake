# Smoke-tests the `gpuwmm hunt` CLI: runs a bounded hunt with an on-disk
# corpus and validates the JSON report with CMake's native string(JSON)
# parser (no Python/network dependency). With -DCHECK_GRID=ON it
# additionally re-runs the identical bounded hunt across a --jobs x
# --batch grid and requires the report, the corpus record log, the
# manifest and every .litmus artifact to be byte-identical — the hunt
# determinism acceptance criterion.
#
# Usage:
#   cmake -DGPUWMM_BIN=<path-to-gpuwmm> -DWORK_DIR=<scratch-dir>
#         [-DCHECK_GRID=ON] -P ValidateHuntJson.cmake

if(NOT GPUWMM_BIN OR NOT WORK_DIR)
  message(FATAL_ERROR "pass -DGPUWMM_BIN=... and -DWORK_DIR=...")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# The bounded hunt pinned by the HuntPipelineTest goldens: every stage
# budget explicit so GPUWMM_SCALE cannot perturb the corpus.
set(HUNT_FLAGS --chip=titan --rounds=2 --programs=12 --runs=30
    --distance=64 --shrink-runs=120 --harden-runs=16 --stable-runs=150
    --verify-runs=80 --seed=9)

function(run_hunt OUT CORPUS)
  execute_process(
    COMMAND "${GPUWMM_BIN}" hunt ${HUNT_FLAGS} ${ARGN}
            "--corpus-dir=${CORPUS}" "--out=${OUT}"
    RESULT_VARIABLE RV ERROR_VARIABLE LOG)
  if(NOT RV EQUAL 0)
    message(FATAL_ERROR "gpuwmm hunt exited with ${RV}:\n${LOG}")
  endif()
endfunction()

set(REF_OUT "${WORK_DIR}/hunt.json")
set(REF_CORPUS "${WORK_DIR}/corpus")
run_hunt("${REF_OUT}" "${REF_CORPUS}" --jobs=2)

file(READ "${REF_OUT}" REPORT)

string(JSON SCHEMA ERROR_VARIABLE ERR GET "${REPORT}" schema)
if(NOT SCHEMA STREQUAL "gpuwmm-hunt-v1")
  message(FATAL_ERROR "bad or missing schema: ${SCHEMA} ${ERR}")
endif()
string(JSON SCHEMA_VERSION ERROR_VARIABLE ERR GET "${REPORT}" schema_version)
if(NOT SCHEMA_VERSION EQUAL 1)
  message(FATAL_ERROR "bad or missing schema_version: ${SCHEMA_VERSION} ${ERR}")
endif()
string(JSON TOOL_NAME ERROR_VARIABLE ERR GET "${REPORT}" tool name)
if(NOT TOOL_NAME STREQUAL "gpuwmm")
  message(FATAL_ERROR "bad or missing tool.name: ${TOOL_NAME} ${ERR}")
endif()
string(JSON CHIP GET "${REPORT}" chip)
string(JSON SEED GET "${REPORT}" seed)
if(NOT CHIP STREQUAL "titan" OR NOT SEED EQUAL 9)
  message(FATAL_ERROR "config not echoed: chip=${CHIP} seed=${SEED}")
endif()

# The pipeline mined something, the corpus is oracle-clean, and the entry
# list is exactly corpus_size long.
string(JSON FUZZED GET "${REPORT}" totals programs_fuzzed)
string(JSON WEAK GET "${REPORT}" totals weak_programs)
string(JSON CORPUS_SIZE GET "${REPORT}" totals corpus_size)
if(FUZZED EQUAL 0 OR WEAK EQUAL 0 OR CORPUS_SIZE EQUAL 0)
  message(FATAL_ERROR "empty hunt: fuzzed=${FUZZED} weak=${WEAK}"
                      " corpus=${CORPUS_SIZE}")
endif()
string(JSON CLEAN GET "${REPORT}" oracle clean)
if(NOT CLEAN STREQUAL "ON") # string(JSON) renders true as ON
  message(FATAL_ERROR "hardened corpus not oracle-clean: ${CLEAN}")
endif()
string(JSON ORACLE_WEAK GET "${REPORT}" oracle weak)
if(NOT ORACLE_WEAK EQUAL 0)
  message(FATAL_ERROR "${ORACLE_WEAK} hardened run(s) still weak")
endif()
string(JSON NAXIOMS LENGTH "${REPORT}" oracle axiom_violations)
if(NOT NAXIOMS EQUAL 8)
  message(FATAL_ERROR "expected 8 axiom keys, got ${NAXIOMS}")
endif()

string(JSON NENTRIES LENGTH "${REPORT}" entries)
if(NOT NENTRIES EQUAL ${CORPUS_SIZE})
  message(FATAL_ERROR "entries ${NENTRIES} != corpus_size ${CORPUS_SIZE}")
endif()
math(EXPR LAST "${NENTRIES} - 1")
foreach(I RANGE ${LAST})
  string(JSON EORIG GET "${REPORT}" entries ${I} original_ops)
  string(JSON ERED GET "${REPORT}" entries ${I} reduced_ops)
  string(JSON EVWEAK GET "${REPORT}" entries ${I} verify_weak)
  string(JSON EVRUNS GET "${REPORT}" entries ${I} verify_runs)
  string(JSON ESITES GET "${REPORT}" entries ${I} fence_sites)
  string(JSON EFENCES GET "${REPORT}" entries ${I} fences)
  string(JSON ENAME GET "${REPORT}" entries ${I} name)
  if(ERED GREATER EORIG)
    message(FATAL_ERROR "entry ${I}: reduced_ops ${ERED} > original ${EORIG}")
  endif()
  if(NOT EVWEAK EQUAL 0 OR EVRUNS EQUAL 0)
    message(FATAL_ERROR "entry ${I}: verify ${EVWEAK}/${EVRUNS} weak")
  endif()
  if(EFENCES GREATER ESITES)
    message(FATAL_ERROR "entry ${I}: fences ${EFENCES} > sites ${ESITES}")
  endif()
  # Every entry's replayable artifact exists in the corpus directory.
  if(NOT EXISTS "${REF_CORPUS}/${ENAME}.litmus")
    message(FATAL_ERROR "entry ${I}: missing artifact ${ENAME}.litmus")
  endif()
endforeach()

message(STATUS "hunt JSON valid: corpus of ${CORPUS_SIZE} from ${WEAK}"
               " weak programs, oracle clean")

if(NOT CHECK_GRID)
  return()
endif()

# --- The determinism grid ---------------------------------------------------
# The identical bounded hunt at every --jobs x --batch combination must
# reproduce the reference corpus and report bit for bit.
file(READ "${REF_CORPUS}/manifest.json" REF_MANIFEST)
file(READ "${REF_CORPUS}/corpus-0000.jsonl" REF_LOG)
file(GLOB REF_ARTIFACTS RELATIVE "${REF_CORPUS}" "${REF_CORPUS}/*.litmus")

foreach(JOBS 1 8)
  foreach(BATCH 1 64)
    set(TAG "j${JOBS}-b${BATCH}")
    set(OUT "${WORK_DIR}/hunt-${TAG}.json")
    set(CORPUS "${WORK_DIR}/corpus-${TAG}")
    run_hunt("${OUT}" "${CORPUS}" --jobs=${JOBS} --batch=${BATCH})
    file(READ "${OUT}" GOT)
    if(NOT GOT STREQUAL REPORT)
      message(FATAL_ERROR "${TAG}: report diverged from the reference")
    endif()
    file(READ "${CORPUS}/manifest.json" GOT_MANIFEST)
    if(NOT GOT_MANIFEST STREQUAL REF_MANIFEST)
      message(FATAL_ERROR "${TAG}: manifest diverged")
    endif()
    file(READ "${CORPUS}/corpus-0000.jsonl" GOT_LOG)
    if(NOT GOT_LOG STREQUAL REF_LOG)
      message(FATAL_ERROR "${TAG}: corpus record log diverged")
    endif()
    foreach(ARTIFACT IN LISTS REF_ARTIFACTS)
      file(READ "${REF_CORPUS}/${ARTIFACT}" WANT_BYTES)
      file(READ "${CORPUS}/${ARTIFACT}" GOT_BYTES)
      if(NOT GOT_BYTES STREQUAL WANT_BYTES)
        message(FATAL_ERROR "${TAG}: artifact ${ARTIFACT} diverged")
      endif()
    endforeach()
  endforeach()
endforeach()

message(STATUS "hunt determinism grid: report + corpus byte-identical"
               " across jobs x batch")
