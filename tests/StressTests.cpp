//===- tests/StressTests.cpp - stressing strategy tests -------------------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// Tests access sequences (enumeration, notation, the traffic model) and
// the stressing strategies' pressure profiles.
//
//===----------------------------------------------------------------------===//

#include "stress/AccessSequence.h"
#include "stress/Environment.h"
#include "stress/StressSources.h"

#include "gtest/gtest.h"

#include <set>

using namespace gpuwmm;
using namespace gpuwmm::stress;

namespace {

const sim::ChipProfile &titan() {
  return *sim::ChipProfile::lookup("titan");
}

} // namespace

//===----------------------------------------------------------------------===//
// AccessSequence
//===----------------------------------------------------------------------===//

TEST(AccessSequenceTest, EnumerationYields63Sequences) {
  // The paper's 2^(N+1) - 1 = 63 sequences (including the empty one).
  const auto All = AccessSequence::enumerateAll();
  EXPECT_EQ(All.size(), 63u);
  std::set<AccessSequence> Unique(All.begin(), All.end());
  EXPECT_EQ(Unique.size(), 63u);
}

TEST(AccessSequenceTest, NotationRoundTripsForAllSequences) {
  for (const AccessSequence &Seq : AccessSequence::enumerateAll()) {
    const AccessSequence Parsed = AccessSequence::parse(Seq.str());
    EXPECT_EQ(Parsed, Seq) << "round trip failed for \"" << Seq.str()
                           << "\"";
  }
}

TEST(AccessSequenceTest, ParseCompressedNotation) {
  const AccessSequence S = AccessSequence::parse("ld st2 ld");
  ASSERT_EQ(S.length(), 4u);
  EXPECT_FALSE(S.isStore(0));
  EXPECT_TRUE(S.isStore(1));
  EXPECT_TRUE(S.isStore(2));
  EXPECT_FALSE(S.isStore(3));
  EXPECT_EQ(S.str(), "ld st2 ld");
}

TEST(AccessSequenceTest, EmptySequence) {
  const AccessSequence Empty;
  EXPECT_EQ(Empty.length(), 0u);
  EXPECT_EQ(Empty.str(), "empty");
  const auto P = Empty.trafficPerTick();
  EXPECT_DOUBLE_EQ(P.Write + P.Read, 0.0);
}

TEST(AccessSequenceTest, PureStoresGenerateLittleTraffic) {
  // Tab. 3: the bottom-ranked sequences are exclusively stores
  // (write-combining makes them cheap).
  const auto St5 = AccessSequence::parse("st5").trafficPerTick();
  const auto Mixed = AccessSequence::parse("ld st ld st").trafficPerTick();
  EXPECT_LT(St5.Write + St5.Read, 0.35 * (Mixed.Write + Mixed.Read));
}

TEST(AccessSequenceTest, RotationsDiffer) {
  // The paper observed that rotation-equivalent sequences score
  // differently (loop-boundary effects), so all 63 are tested.
  const auto A = AccessSequence::parse("ld st").trafficPerTick();
  const auto B = AccessSequence::parse("st ld").trafficPerTick();
  EXPECT_NE(A.Write, B.Write);
}

TEST(AccessSequenceTest, MixesBeatPureLoads) {
  const auto Ld5 = AccessSequence::parse("ld5").trafficPerTick();
  const auto Mixed = AccessSequence::parse("ld st ld st ld").trafficPerTick();
  EXPECT_LT(Ld5.Write + Ld5.Read, Mixed.Write + Mixed.Read);
}

TEST(AccessSequenceTest, StoresContributeWritePressure) {
  const auto OnlySt = AccessSequence::parse("st3").trafficPerTick();
  EXPECT_GT(OnlySt.Write, 0.0);
  EXPECT_DOUBLE_EQ(OnlySt.Read, 0.0);
  const auto OnlyLd = AccessSequence::parse("ld3").trafficPerTick();
  EXPECT_GT(OnlyLd.Read, 0.0);
  EXPECT_DOUBLE_EQ(OnlyLd.Write, 0.0);
}

//===----------------------------------------------------------------------===//
// SysStress
//===----------------------------------------------------------------------===//

TEST(SysStressTest, PressureLandsOnTargetBanks) {
  const auto Seq = AccessSequence::parse("ld st");
  const unsigned P = titan().PatchSizeWords;
  // Two locations in distinct patches.
  SysStress S(titan(), Seq, {0, 3 * P}, /*Units=*/20.0);
  const auto At0 = S.pressureAt(1, titan().bankOf(0));
  const auto At3 = S.pressureAt(1, titan().bankOf(3 * P));
  EXPECT_GT(At0.Write + At0.Read, 1.0);
  EXPECT_GT(At3.Write + At3.Read, 1.0);

  // A bank two patches away gets at most neighbour spill.
  const auto Far = S.pressureAt(1, titan().bankOf(5 * P));
  EXPECT_LT(Far.Write + Far.Read, 0.3 * (At0.Write + At0.Read));
}

TEST(SysStressTest, SpreadDividesIntensity) {
  const auto Seq = AccessSequence::parse("ld st");
  const unsigned P = titan().PatchSizeWords;
  SysStress One(titan(), Seq, {0}, 8.0);
  SysStress Two(titan(), Seq, {0, 3 * P}, 8.0);
  const double I1 = One.pressureAt(1, titan().bankOf(0)).Write;
  const double I2 = Two.pressureAt(1, titan().bankOf(0)).Write;
  EXPECT_NEAR(I2, I1 / 2.0, 1e-9);
}

TEST(SysStressTest, PerLocationPressureSaturates) {
  // Fig. 4's mechanism: a single location cannot absorb unbounded
  // traffic, so spreading over two locations is not a 2x intensity loss
  // at high thread counts.
  const auto Seq = AccessSequence::parse("ld st ld st");
  SysStress Small(titan(), Seq, {0}, 10.0);
  SysStress Large(titan(), Seq, {0}, 1000.0);
  const auto PS = Small.pressureAt(1, titan().bankOf(0));
  const auto PL = Large.pressureAt(1, titan().bankOf(0));
  EXPECT_LT(PL.Write + PL.Read, 2.0 * (PS.Write + PS.Read))
      << "pressure must saturate, not scale linearly";
}

TEST(SysStressTest, StressedBanksAccessor) {
  const unsigned P = titan().PatchSizeWords;
  SysStress S(titan(), AccessSequence::parse("st ld"), {0, P}, 10.0);
  ASSERT_EQ(S.stressedBanks().size(), 2u);
  EXPECT_EQ(S.stressedBanks()[0], titan().bankOf(0));
  EXPECT_EQ(S.stressedBanks()[1], titan().bankOf(P));
}

//===----------------------------------------------------------------------===//
// RandStress / CacheStress
//===----------------------------------------------------------------------===//

TEST(RandStressTest, SmearedPressureIsWellBelowSysFocus) {
  RandStress R(titan(), 30.0, /*RunSeed=*/1);
  SysStress S(titan(), AccessSequence::parse("ld st"), {0}, 30.0);
  const double SysPeak = S.pressureAt(1, titan().bankOf(0)).Write +
                         S.pressureAt(1, titan().bankOf(0)).Read;
  double RandMean = 0;
  for (unsigned B = 0; B != titan().NumBanks; ++B) {
    const auto P = R.pressureAt(1, B);
    RandMean += P.Write + P.Read;
  }
  RandMean /= titan().NumBanks;
  EXPECT_LT(RandMean, 0.25 * SysPeak);
}

TEST(RandStressTest, HotSpotsComeAndGo) {
  RandStress R(titan(), 30.0, /*RunSeed=*/7);
  double MaxSeen = 0, MinOfMax = 1e9;
  for (uint64_t Epoch = 0; Epoch != 16; ++Epoch) {
    double EpochMax = 0;
    for (unsigned B = 0; B != titan().NumBanks; ++B) {
      const auto P = R.pressureAt(Epoch * 48 + 1, B);
      EpochMax = std::max(EpochMax, P.Write + P.Read);
    }
    MaxSeen = std::max(MaxSeen, EpochMax);
    MinOfMax = std::min(MinOfMax, EpochMax);
  }
  EXPECT_GT(MaxSeen, 2.0 * MinOfMax)
      << "some epochs must cluster, most must not";
}

TEST(CacheStressTest, SweepVisitsEveryBank) {
  CacheStress C(titan(), 40.0, /*RunSeed=*/3);
  std::set<unsigned> HotBanks;
  for (uint64_t T = 0; T != 16 * 16; T += 16) {
    for (unsigned B = 0; B != titan().NumBanks; ++B)
      if (C.pressureAt(T, B).Write > 0)
        HotBanks.insert(B);
  }
  EXPECT_EQ(HotBanks.size(), titan().NumBanks)
      << "the L2-sized sweep must rotate over all banks";
}

TEST(CacheStressTest, OneHotBankAtATime) {
  CacheStress C(titan(), 40.0, /*RunSeed=*/3);
  for (uint64_t T = 0; T != 64; ++T) {
    unsigned Hot = 0;
    for (unsigned B = 0; B != titan().NumBanks; ++B)
      Hot += C.pressureAt(T, B).Write > 0;
    EXPECT_LE(Hot, 1u);
  }
}

TEST(ThreadUnitsTest, ScalesWithPopulationAndOccupancy) {
  const double Half =
      threadUnits(titan(), titan().maxConcurrentThreads() / 2);
  const double Full = threadUnits(titan(), titan().maxConcurrentThreads());
  EXPECT_NEAR(Full, 2.0 * Half, 1e-9);
  EXPECT_GT(Full, 0.0);
}

//===----------------------------------------------------------------------===//
// Environments
//===----------------------------------------------------------------------===//

TEST(EnvironmentTest, AllEightNamesAreDistinct) {
  std::set<std::string> Names;
  for (const Environment &E : Environment::all())
    Names.insert(E.name());
  EXPECT_EQ(Names.size(), 8u);
  EXPECT_TRUE(Names.count("no-str-"));
  EXPECT_TRUE(Names.count("sys-str+"));
  EXPECT_TRUE(Names.count("rand-str-"));
  EXPECT_TRUE(Names.count("cache-str+"));
}

TEST(EnvironmentTest, ParseRoundTrips) {
  for (const Environment &E : Environment::all()) {
    const auto Parsed = Environment::parse(E.name());
    ASSERT_TRUE(Parsed.has_value());
    EXPECT_EQ(Parsed->Kind, E.Kind);
    EXPECT_EQ(Parsed->Randomise, E.Randomise);
  }
  EXPECT_FALSE(Environment::parse("bogus").has_value());
}

TEST(EnvironmentTest, PaperDefaultsMatchTable2) {
  size_t Count = 0;
  const sim::ChipProfile *Chips = sim::ChipProfile::all(Count);
  for (size_t I = 0; I != Count; ++I) {
    const auto P = TunedStressParams::paperDefaults(Chips[I]);
    EXPECT_EQ(P.PatchWords, Chips[I].PatchSizeWords);
    EXPECT_EQ(P.Spread, 2u);
    EXPECT_GT(P.Seq.length(), 0u);
  }
  EXPECT_EQ(TunedStressParams::paperDefaults(*sim::ChipProfile::lookup(
                                                 "titan"))
                .Seq.str(),
            "ld st2 ld");
  EXPECT_EQ(TunedStressParams::paperDefaults(*sim::ChipProfile::lookup(
                                                 "c2075"))
                .Seq.str(),
            "ld st");
}

TEST(EnvironmentTest, ApplyAllocatesScratchpadForSysStr) {
  Rng R(1);
  sim::Device Dev(titan(), 1);
  const unsigned Before = Dev.memory().allocatedWords();
  const auto Tuned = TunedStressParams::paperDefaults(titan());
  const auto Src =
      applyEnvironment({StressKind::Sys, false}, Dev, Tuned, R);
  ASSERT_NE(Src, nullptr);
  EXPECT_GE(Dev.memory().allocatedWords() - Before,
            Tuned.ScratchRegions * Tuned.PatchWords);
}

TEST(EnvironmentTest, ApplyNoStrInstallsNothing) {
  Rng R(1);
  sim::Device Dev(titan(), 1);
  const auto Tuned = TunedStressParams::paperDefaults(titan());
  const auto Src =
      applyEnvironment({StressKind::None, true}, Dev, Tuned, R);
  EXPECT_EQ(Src, nullptr);
}

TEST(EnvironmentTest, StressKindNames) {
  EXPECT_STREQ(stressKindName(StressKind::None), "no-str");
  EXPECT_STREQ(stressKindName(StressKind::Sys), "sys-str");
  EXPECT_STREQ(stressKindName(StressKind::Rand), "rand-str");
  EXPECT_STREQ(stressKindName(StressKind::Cache), "cache-str");
}
