//===- tests/StreamingCheckerTests.cpp - Online oracle differential suite -----===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// The streaming consistency oracle (model/StreamingChecker.h) against the
// post-hoc reference checker (model/ConsistencyChecker.h): both consume
// identical event streams, so on every input the verdict — and, for an
// axiom violation, the first-violation (message, event pair) — must match
// exactly. The suite pins that contract on the whole litmus catalog under
// tuned stress, on fuzz-generated programs, on every application workload,
// and on deliberately corrupted traces; it also pins the streaming
// checker's bounded-memory property (retirement keeps the live graph at
// the active frontier, not the run length) and the campaign's
// --oracle=all mode (every run checked, counts unperturbed).
//
//===----------------------------------------------------------------------===//

#include "apps/Application.h"
#include "fuzz/LitmusBridge.h"
#include "fuzz/ProgramFuzzer.h"
#include "harness/Campaign.h"
#include "litmus/Litmus.h"
#include "model/ConsistencyChecker.h"
#include "model/StreamingChecker.h"
#include "stress/Environment.h"

#include <gtest/gtest.h>

using namespace gpuwmm;
using model::CheckResult;
using model::ConsistencyChecker;
using model::StreamingChecker;
using model::StreamVerdict;
using sim::LoadSource;
using sim::TraceEvent;
using sim::TraceEventKind;

namespace {

const sim::ChipProfile &titan() {
  const sim::ChipProfile *Chip = sim::ChipProfile::lookup("titan");
  EXPECT_NE(Chip, nullptr);
  return *Chip;
}

/// The differential contract on one event stream: same verdict; for an
/// axiom violation, the same message and the same violating event pair.
/// (For a weak run only the verdict is pinned: the specific cycle may
/// legitimately differ, its existence may not.)
void expectSameVerdict(const std::vector<TraceEvent> &Events,
                       ConsistencyChecker &PostHoc, StreamingChecker &Stream,
                       const std::string &What) {
  const CheckResult A = PostHoc.check(Events);
  const StreamVerdict &B = Stream.checkAll(Events);
  ASSERT_EQ(A.AxiomsOk, B.AxiomsOk)
      << What << ": post-hoc [" << A.AxiomViolation << "] vs streaming ["
      << B.AxiomViolation << "]";
  if (!A.AxiomsOk) {
    EXPECT_EQ(A.AxiomViolation, B.AxiomViolation) << What;
    EXPECT_EQ(A.ViolatingA, B.ViolatingA) << What;
    EXPECT_EQ(A.ViolatingB, B.ViolatingB) << What;
  } else {
    EXPECT_EQ(A.Sc, B.Sc) << What;
    EXPECT_EQ(A.weak(), B.weak()) << What;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Differential: the litmus catalog
//===----------------------------------------------------------------------===//

// Every catalog program, the full per-bank tuned-stress scan at a pinned
// seed: streaming and post-hoc verdicts (and first violations, were any to
// occur) must coincide on every recorded run. This is the suite's
// full-catalog grid (multi-second; carries the "slow" CTest label).
TEST(StreamingDifferentialTest, FullCatalogGridMatchesPostHoc) {
  const sim::ChipProfile &Chip = titan();
  const auto Tuned = stress::TunedStressParams::paperDefaults(Chip);
  ConsistencyChecker PostHoc;
  StreamingChecker Stream;
  unsigned Weak = 0;
  for (const litmus::Program &P : litmus::catalog()) {
    litmus::LitmusRunner Runner(Chip, /*Seed=*/42);
    litmus::LitmusRunner::RunOpts Opts;
    Opts.Trace = true;
    for (unsigned Region = 0; Region != Chip.NumBanks; ++Region) {
      const auto S = litmus::LitmusRunner::MicroStress::at(
          Tuned.Seq, Region * Tuned.PatchWords);
      for (unsigned I = 0; I != 25; ++I) {
        (void)Runner.runOnce(P, 2 * Chip.PatchSizeWords, S, Opts);
        expectSameVerdict(Runner.trace().events(), PostHoc, Stream,
                          P.Name + " region " + std::to_string(Region) +
                              " run " + std::to_string(I));
        Weak += Stream.verdict().weak();
      }
    }
  }
  // The grid must actually have judged weak runs, not only SC ones.
  EXPECT_GT(Weak, 0u);
}

// The live-sink path must judge exactly as replaying the recorded trace
// does: two runners at one seed, one recording for the post-hoc checker,
// one streaming through the sink seam while it executes.
TEST(StreamingDifferentialTest, LiveSinkMatchesRecordedReplay) {
  const sim::ChipProfile &Chip = titan();
  const auto Tuned = stress::TunedStressParams::paperDefaults(Chip);
  ConsistencyChecker PostHoc;
  StreamingChecker Stream;
  unsigned Weak = 0;
  for (litmus::LitmusKind K : litmus::AllLitmusKinds) {
    const litmus::Program &P = litmus::catalogProgram(K);
    litmus::LitmusRunner Recorded(Chip, 7), Streamed(Chip, 7);
    litmus::LitmusRunner::RunOpts TraceOpts, SinkOpts;
    TraceOpts.Trace = true;
    SinkOpts.Sink = &Stream;
    for (unsigned Region = 0; Region != Chip.NumBanks; ++Region) {
      const auto S = litmus::LitmusRunner::MicroStress::at(
          Tuned.Seq, Region * Tuned.PatchWords);
      for (unsigned I = 0; I != 30; ++I) {
        const bool A = Recorded.runOnce(P, 128, S, TraceOpts);
        Stream.begin();
        const bool B = Streamed.runOnce(P, 128, S, SinkOpts);
        const StreamVerdict &Live = Stream.finish();
        ASSERT_EQ(A, B) << litmus::litmusName(K) << " run " << I
                        << ": streaming perturbed the execution";
        const CheckResult Ref = PostHoc.check(Recorded.trace());
        ASSERT_TRUE(Live.AxiomsOk) << Live.AxiomViolation;
        EXPECT_EQ(Ref.weak(), Live.weak())
            << litmus::litmusName(K) << " region " << Region << " run "
            << I;
        Weak += Live.weak();
      }
    }
  }
  // The tuning trio under the full per-bank scan at this seed is reliably
  // weak somewhere — the live path must actually have judged weak runs.
  EXPECT_GT(Weak, 0u);
}

//===----------------------------------------------------------------------===//
// Differential: fuzz-generated programs
//===----------------------------------------------------------------------===//

// 200 random two-thread programs (every 4th generated with fences), each
// executed under tuned stress with its trace compared checker-vs-checker.
TEST(StreamingDifferentialTest, TwoHundredFuzzProgramsMatchPostHoc) {
  const sim::ChipProfile &Chip = titan();
  const auto Tuned = stress::TunedStressParams::paperDefaults(Chip);
  ConsistencyChecker PostHoc;
  StreamingChecker Stream;
  unsigned Compared = 0;
  for (unsigned PI = 0; PI != 200; ++PI) {
    Rng Gen(Rng::deriveStream(99, PI));
    const fuzz::Program FP = fuzz::Program::generate(
        Gen, /*NumVars=*/3, /*OpsPerThread=*/5, /*WithFences=*/PI % 4 == 0);
    const litmus::Program LP = fuzz::toLitmusProgram(FP, "fuzz-case");
    ASSERT_TRUE(LP.validate().empty()) << LP.validate();
    litmus::LitmusRunner Runner(Chip, Rng::deriveStream(100, PI));
    litmus::LitmusRunner::RunOpts Opts;
    Opts.Trace = true;
    const auto S = litmus::LitmusRunner::MicroStress::at(
        Tuned.Seq, (PI % Chip.NumBanks) * Tuned.PatchWords);
    for (unsigned Run = 0; Run != 3; ++Run) {
      (void)Runner.runOnce(LP, 64, S, Opts);
      expectSameVerdict(Runner.trace().events(), PostHoc, Stream,
                        "fuzz program " + std::to_string(PI) + " run " +
                            std::to_string(Run));
      ++Compared;
    }
  }
  EXPECT_EQ(Compared, 600u);
}

//===----------------------------------------------------------------------===//
// Differential: application workloads
//===----------------------------------------------------------------------===//

// Every Tab. 4 application under sys stress: app traces exercise what
// litmus runs cannot (barriers, block fences, overlay reads, atomics,
// multi-kernel launches with host writes between them).
TEST(StreamingDifferentialTest, AppTracesMatchPostHoc) {
  const sim::ChipProfile &Chip = titan();
  const stress::Environment Env{stress::StressKind::Sys, true};
  const auto Tuned = stress::TunedStressParams::paperDefaults(Chip);
  ConsistencyChecker PostHoc;
  StreamingChecker Stream;
  sim::ExecutionContext Ctx;
  Ctx.requestTracing(true);
  for (apps::AppKind App : apps::AllAppKinds) {
    for (unsigned Run = 0; Run != 2; ++Run) {
      (void)apps::runApplicationOnce(Ctx, App, Chip, Env, Tuned,
                                     /*Policy=*/nullptr,
                                     Rng::deriveStream(11, Run));
      ASSERT_FALSE(Ctx.trace().empty());
      expectSameVerdict(Ctx.trace().events(), PostHoc, Stream,
                        std::string(apps::appName(App)) + " run " +
                            std::to_string(Run));
    }
  }
}

//===----------------------------------------------------------------------===//
// Bounded memory (the retirement rule)
//===----------------------------------------------------------------------===//

// The tentpole's memory guarantee on a long trace: tpo-tm's task-queue
// spin loops make its runs tens of thousands of events long, while its
// active frontier (pending stores, po heads, per-address coherence
// windows) stays in the hundreds. Retirement must keep the live graph at
// the frontier — peak retained nodes a small fraction of events consumed.
TEST(StreamingMemoryBoundTest, PeakLiveEventsStayAtTheFrontier) {
  const sim::ChipProfile &Chip = titan();
  const stress::Environment Env{stress::StressKind::None, false};
  const auto Tuned = stress::TunedStressParams::paperDefaults(Chip);
  StreamingChecker Checker;
  sim::ExecutionContext Ctx;
  for (unsigned Run = 0; Run != 3; ++Run) {
    Checker.begin();
    Ctx.requestStreaming(&Checker);
    (void)apps::runApplicationOnce(Ctx, apps::AppKind::TpoTm, Chip, Env,
                                   Tuned, /*Policy=*/nullptr,
                                   Rng::deriveStream(21, Run));
    Ctx.requestStreaming(nullptr);
    const StreamVerdict &R = Checker.finish();
    ASSERT_TRUE(R.AxiomsOk) << R.AxiomViolation;
    // A genuinely long run (spin loops), with the graph live throughout.
    ASSERT_GT(Checker.consumedEvents(), 20000u) << "run " << Run;
    // Retirement must actually fire — and reclaim most of the run.
    EXPECT_GT(Checker.retiredEvents(), Checker.consumedEvents() / 2)
        << "run " << Run;
    // The bounded-memory pin: the high-water mark of retained nodes is a
    // small fraction of the events consumed (empirically ~600 of 27000+;
    // 20x headroom keeps the bound meaningful without seed-brittleness).
    EXPECT_LT(Checker.peakLiveEvents() * 20, Checker.consumedEvents())
        << "run " << Run << ": peak " << Checker.peakLiveEvents() << " of "
        << Checker.consumedEvents() << " consumed";
  }
}

// begin() must fully reset the diagnostics: a short run after a long one
// reports the short run's counters, not a residue of the long one's.
TEST(StreamingMemoryBoundTest, CountersResetPerRun) {
  const sim::ChipProfile &Chip = titan();
  StreamingChecker Checker;
  litmus::LitmusRunner Runner(Chip, 5);
  litmus::LitmusRunner::RunOpts Opts;
  Opts.Sink = &Checker;
  Checker.begin();
  (void)Runner.runOnce(litmus::catalogProgram(litmus::LitmusKind::MP), 64,
                       litmus::LitmusRunner::MicroStress::none(), Opts);
  (void)Checker.finish();
  const uint64_t FirstConsumed = Checker.consumedEvents();
  ASSERT_GT(FirstConsumed, 0u);
  Checker.begin();
  EXPECT_EQ(Checker.consumedEvents(), 0u);
  EXPECT_EQ(Checker.peakLiveEvents(), 0u);
  EXPECT_EQ(Checker.retiredEvents(), 0u);
  (void)Runner.runOnce(litmus::catalogProgram(litmus::LitmusKind::MP), 64,
                       litmus::LitmusRunner::MicroStress::none(), Opts);
  const StreamVerdict &R = Checker.finish();
  EXPECT_TRUE(R.AxiomsOk) << R.AxiomViolation;
  EXPECT_EQ(Checker.consumedEvents(), FirstConsumed);
}

//===----------------------------------------------------------------------===//
// Mutation tests: corrupted traces must be rejected identically
//===----------------------------------------------------------------------===//

namespace {

/// One recorded (unstressed, deterministically SC at this seed) MP run.
std::vector<TraceEvent> recordedMpTrace() {
  litmus::LitmusRunner Runner(titan(), /*Seed=*/5);
  litmus::LitmusRunner::RunOpts Opts;
  Opts.Trace = true;
  (void)Runner.runOnce(litmus::catalogProgram(litmus::LitmusKind::MP), 64,
                       litmus::LitmusRunner::MicroStress::none(), Opts);
  return Runner.trace().events();
}

/// Both checkers on \p Events: must reject, with identical messages whose
/// axiom tag (the text before ':') is \p Tag.
void expectBothRejectWith(const std::vector<TraceEvent> &Events,
                          const std::string &Tag, const char *What) {
  ConsistencyChecker PostHoc;
  StreamingChecker Stream;
  const CheckResult A = PostHoc.check(Events);
  const StreamVerdict &B = Stream.checkAll(Events);
  ASSERT_FALSE(A.AxiomsOk) << What;
  ASSERT_FALSE(B.AxiomsOk) << What;
  EXPECT_EQ(A.AxiomViolation, B.AxiomViolation) << What;
  EXPECT_EQ(A.ViolatingA, B.ViolatingA) << What;
  EXPECT_EQ(A.ViolatingB, B.ViolatingB) << What;
  EXPECT_EQ(A.AxiomViolation.substr(0, Tag.size()), Tag)
      << What << ": " << A.AxiomViolation;
}

} // namespace

TEST(StreamingMutationTest, DroppedDrainRejected) {
  // Erase the last store-drain: that store is still buffered when the run
  // ends, so the kernel-boundary drain obligation fires in both checkers.
  std::vector<TraceEvent> Events = recordedMpTrace();
  bool Mutated = false;
  for (size_t I = Events.size(); I-- && !Mutated;)
    if (Events[I].Kind == TraceEventKind::StoreDrain) {
      Events.erase(Events.begin() + static_cast<ptrdiff_t>(I));
      Mutated = true;
    }
  ASSERT_TRUE(Mutated);
  expectBothRejectWith(Events, "fence-drain", "dropped drain");
}

TEST(StreamingMutationTest, ReorderedSameBankIssueRejected) {
  // Swap two same-(thread, bank) store issues: the drains still arrive in
  // the original order, violating the bank FIFO in both checkers.
  std::vector<TraceEvent> Events = recordedMpTrace();
  bool Mutated = false;
  for (size_t I = 0; I != Events.size() && !Mutated; ++I)
    for (size_t J = I + 1; J != Events.size() && !Mutated; ++J)
      if (Events[I].Kind == TraceEventKind::StoreIssue &&
          Events[J].Kind == TraceEventKind::StoreIssue &&
          Events[I].Tid == Events[J].Tid &&
          Events[I].Bank == Events[J].Bank) {
        std::swap(Events[I], Events[J]);
        Mutated = true;
      }
  ASSERT_TRUE(Mutated) << "no same-bank issue pair to reorder";
  expectBothRejectWith(Events, "same-bank FIFO", "reordered issue");
}

TEST(StreamingMutationTest, ReboundLoadSourceRejected) {
  // Rebind a memory load to a value no write ever produced: the
  // read-value axiom rejects it in both checkers.
  std::vector<TraceEvent> Events = recordedMpTrace();
  bool Mutated = false;
  for (TraceEvent &E : Events)
    if (!Mutated && E.Kind == TraceEventKind::LoadBind &&
        E.Source == LoadSource::Memory) {
      E.V = 999;
      Mutated = true;
    }
  ASSERT_TRUE(Mutated);
  expectBothRejectWith(Events, "read-value", "rebound load");
}

//===----------------------------------------------------------------------===//
// Weak-run verdicts and explanations from the retained frontier
//===----------------------------------------------------------------------===//

TEST(StreamingExplainTest, HandBuiltWeakMpYieldsRenderableCycle) {
  // The canonical MP weak shape (as CheckerTest.ClassifiesWeakMpTrace):
  // the streaming checker must find a cycle and retain enough of the
  // frontier to render the explanation without the trace.
  const auto StoreIssue = [](unsigned Tid, unsigned Bank, sim::Addr A,
                             sim::Word V, uint64_t Id) -> TraceEvent {
    return {TraceEventKind::StoreIssue, LoadSource::Memory, false, Tid, Tid,
            Bank, A, V, Id, 0};
  };
  const auto StoreDrain = [](unsigned Tid, unsigned Bank, sim::Addr A,
                             sim::Word V, uint64_t Id) -> TraceEvent {
    return {TraceEventKind::StoreDrain, LoadSource::Memory, true, Tid, Tid,
            Bank, A, V, Id, 0};
  };
  const auto LoadBind = [](unsigned Tid, unsigned Bank, sim::Addr A,
                           sim::Word V) -> TraceEvent {
    return {TraceEventKind::LoadBind, LoadSource::Memory, false, Tid, Tid,
            Bank, A, V, 0, 0};
  };
  const std::vector<TraceEvent> Events = {
      StoreIssue(0, 0, 0, 1, 1), StoreIssue(0, 1, 8, 1, 2),
      StoreDrain(0, 1, 8, 1, 2), LoadBind(1, 1, 8, 1),
      LoadBind(1, 0, 0, 0),      StoreDrain(0, 0, 0, 1, 1),
  };
  StreamingChecker Stream;
  const StreamVerdict &R = Stream.checkAll(Events);
  ASSERT_TRUE(R.AxiomsOk) << R.AxiomViolation;
  ASSERT_TRUE(R.weak());
  ASSERT_FALSE(R.Cycle.empty());
  ASSERT_EQ(R.CycleEvents.size(), R.Cycle.size());
  const model::AddrNamer Namer = [](sim::Addr A) {
    return std::string(A == 0 ? "x" : "y");
  };
  const std::string Text = model::renderStreamExplanation(R, Namer);
  EXPECT_NE(Text.find("--rf-->"), std::string::npos) << Text;
  EXPECT_NE(Text.find("--fr-->"), std::string::npos) << Text;
  EXPECT_NE(Text.find("store-issue y = 1"), std::string::npos) << Text;
  EXPECT_NE(Text.find("load-bind x = 0"), std::string::npos) << Text;
}

//===----------------------------------------------------------------------===//
// Campaign --oracle=all
//===----------------------------------------------------------------------===//

TEST(StreamingCampaignTest, OracleAllChecksEveryRunWithoutPerturbing) {
  harness::CampaignConfig Config;
  Config.Chips = {&titan()};
  Config.Envs = {{stress::StressKind::None, false},
                 {stress::StressKind::Sys, true}};
  Config.Apps = {apps::AppKind::CbeDot, apps::AppKind::CbeHt,
                 apps::AppKind::SdkRed};
  Config.LitmusTests = {litmus::findCatalogProgram("MP")};
  Config.Runs = 10;
  Config.Seed = 3;
  Config.OracleEvery = 1; // --oracle=all
  const harness::CampaignReport Report = harness::runCampaign(Config);
  ASSERT_EQ(Report.Cells.size(), 6u);
  for (const harness::CampaignCell &Cell : Report.Cells) {
    EXPECT_EQ(Cell.OracleChecked, Config.Runs);
    EXPECT_EQ(Cell.OracleViolations, 0u);
  }
  ASSERT_EQ(Report.LitmusCells.size(), 1u);
  // A litmus cell scans every per-bank stress location for Runs
  // executions each; --oracle=all checks every one of them.
  EXPECT_EQ(Report.LitmusCells[0].OracleChecked,
            Report.LitmusCells[0].Runs * titan().NumBanks);
  EXPECT_EQ(Report.LitmusCells[0].OracleViolations, 0u);

  // The oracle observes only: every count must be bit-identical with it
  // off.
  harness::CampaignConfig Off = Config;
  Off.OracleEvery = 0;
  const harness::CampaignReport Plain = harness::runCampaign(Off);
  ASSERT_EQ(Plain.Cells.size(), Report.Cells.size());
  for (size_t I = 0; I != Report.Cells.size(); ++I) {
    EXPECT_EQ(Plain.Cells[I].Result.Runs, Report.Cells[I].Result.Runs);
    EXPECT_EQ(Plain.Cells[I].Result.Errors, Report.Cells[I].Result.Errors);
  }
  EXPECT_EQ(Plain.LitmusCells[0].Weak, Report.LitmusCells[0].Weak);
}
