//===- tests/MemorySystemTests.cpp - weak memory model unit tests -------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// Tests the operational weak memory model directly (no kernels): store
// buffering, forwarding, banked drains, fences, atomics, block visibility,
// async loads, and per-location coherence.
//
//===----------------------------------------------------------------------===//

#include "sim/MemorySystem.h"

#include "gtest/gtest.h"

using namespace gpuwmm;
using namespace gpuwmm::sim;

namespace {

const ChipProfile &titan() { return *ChipProfile::lookup("titan"); }

class MemoryFixture : public ::testing::Test {
protected:
  MemoryFixture() : R(42), Mem(titan(), R) { Mem.registerThreads(8); }

  Rng R;
  MemorySystem Mem;
};

/// A congestion source that freezes one bank completely.
class FreezeBank final : public CongestionSource {
public:
  explicit FreezeBank(unsigned Bank) : Bank(Bank) {}
  BankPressure pressureAt(uint64_t, unsigned B) const override {
    if (B != Bank)
      return {};
    return {1000.0, 1000.0};
  }

private:
  unsigned Bank;
};

} // namespace

//===----------------------------------------------------------------------===//
// Basic visibility
//===----------------------------------------------------------------------===//

TEST_F(MemoryFixture, AllocIsZeroedAndPatchAligned) {
  const Addr A = Mem.alloc(10);
  const Addr B = Mem.alloc(3);
  EXPECT_EQ(A % titan().PatchSizeWords, 0u);
  EXPECT_EQ(B % titan().PatchSizeWords, 0u);
  EXPECT_NE(A, B);
  for (unsigned I = 0; I != 10; ++I)
    EXPECT_EQ(Mem.hostRead(A + I), 0u);
}

TEST_F(MemoryFixture, StoreIsNotImmediatelyGloballyVisible) {
  const Addr A = Mem.alloc(4);
  Mem.store(/*Tid=*/0, /*Block=*/0, A, 7);
  // Another thread reads the old value until the store drains.
  EXPECT_EQ(Mem.load(/*Tid=*/1, /*Block=*/1, A), 0u);
  EXPECT_TRUE(Mem.hasPendingWork());
}

TEST_F(MemoryFixture, OwnStoreForwardsExactAddress) {
  const Addr A = Mem.alloc(4);
  Mem.store(0, 0, A, 7);
  EXPECT_EQ(Mem.load(0, 0, A), 7u);
  // Newest own store wins.
  Mem.store(0, 0, A, 9);
  EXPECT_EQ(Mem.load(0, 0, A), 9u);
}

TEST_F(MemoryFixture, SameBankLoadForcesSelfDrain) {
  const Addr A = Mem.alloc(8);
  // A and A+1 share a bank (same patch).
  Mem.store(0, 0, A, 7);
  EXPECT_EQ(Mem.load(0, 0, A + 1), 0u);
  // The self-drain made the buffered store globally visible.
  EXPECT_EQ(Mem.hostRead(A), 7u);
  EXPECT_EQ(Mem.load(1, 1, A), 7u);
}

TEST_F(MemoryFixture, CrossBankLoadDoesNotDrain) {
  const Addr A = Mem.alloc(4);
  const Addr B = Mem.alloc(4); // Different patch => different bank.
  ASSERT_NE(titan().bankOf(A), titan().bankOf(B));
  Mem.store(0, 0, A, 7);
  EXPECT_EQ(Mem.load(0, 0, B), 0u);
  EXPECT_EQ(Mem.hostRead(A), 0u) << "cross-bank load must not flush";
}

TEST_F(MemoryFixture, DrainEventuallyPublishes) {
  const Addr A = Mem.alloc(4);
  Mem.store(0, 0, A, 7);
  for (uint64_t T = 1; T != 200 && Mem.hasPendingWork(); ++T)
    Mem.tick(T);
  EXPECT_FALSE(Mem.hasPendingWork());
  EXPECT_EQ(Mem.hostRead(A), 7u);
}

TEST_F(MemoryFixture, SameBankStoresDrainInOrder) {
  // Property: two stores to the same bank can never be observed out of
  // order. A+0 and A+1 share a patch/bank.
  for (int Trial = 0; Trial != 200; ++Trial) {
    Rng TrialRng(Trial);
    MemorySystem M(titan(), TrialRng);
    M.registerThreads(2);
    const Addr A = M.alloc(8);
    M.store(0, 0, A, 1);
    M.store(0, 0, A + 1, 1);
    for (uint64_t T = 1; T != 100; ++T) {
      M.tick(T);
      // If A+1 is visible, A must be visible too (FIFO order).
      if (M.hostRead(A + 1) == 1) {
        EXPECT_EQ(M.hostRead(A), 1u);
      }
      if (!M.hasPendingWork())
        break;
    }
  }
}

TEST_F(MemoryFixture, CrossBankStoresCanReorder) {
  // Statistical: with enough trials, a later store to another bank
  // becomes visible before an earlier one at least once.
  unsigned Reordered = 0;
  for (int Trial = 0; Trial != 300; ++Trial) {
    Rng TrialRng(Trial);
    MemorySystem M(titan(), TrialRng);
    M.registerThreads(2);
    const Addr A = M.alloc(4);
    const Addr B = M.alloc(4);
    M.store(0, 0, A, 1);
    M.store(0, 0, B, 1);
    for (uint64_t T = 1; T != 100; ++T) {
      M.tick(T);
      if (M.hostRead(B) == 1 && M.hostRead(A) == 0) {
        ++Reordered;
        break;
      }
      if (!M.hasPendingWork())
        break;
    }
  }
  EXPECT_GT(Reordered, 0u) << "weak model must allow cross-bank reordering";
}

//===----------------------------------------------------------------------===//
// Sequential mode
//===----------------------------------------------------------------------===//

TEST_F(MemoryFixture, SequentialModeIsImmediatelyVisible) {
  Mem.setSequentialMode(true);
  const Addr A = Mem.alloc(4);
  Mem.store(0, 0, A, 7);
  EXPECT_EQ(Mem.load(1, 1, A), 7u);
  EXPECT_FALSE(Mem.hasPendingWork());
}

//===----------------------------------------------------------------------===//
// Atomics
//===----------------------------------------------------------------------===//

TEST_F(MemoryFixture, AtomicsAreImmediatelyVisible) {
  const Addr A = Mem.alloc(4);
  EXPECT_EQ(Mem.atomicCAS(0, A, 0, 5), 0u);
  EXPECT_EQ(Mem.load(1, 1, A), 5u);
  EXPECT_EQ(Mem.atomicExch(1, A, 9), 5u);
  EXPECT_EQ(Mem.atomicAdd(2, A, 1), 9u);
  EXPECT_EQ(Mem.hostRead(A), 10u);
}

TEST_F(MemoryFixture, FailedCASDoesNotWrite) {
  const Addr A = Mem.alloc(4);
  Mem.hostWrite(A, 3);
  EXPECT_EQ(Mem.atomicCAS(0, A, 0, 5), 3u);
  EXPECT_EQ(Mem.hostRead(A), 3u);
}

TEST_F(MemoryFixture, AtomicDoesNotDrainOtherBanks) {
  // The root cause of the spinlock bugs: an atomic to one bank leaves a
  // buffered store to another bank in the buffer.
  const Addr Data = Mem.alloc(4);
  const Addr Mutex = Mem.alloc(4);
  ASSERT_NE(titan().bankOf(Data), titan().bankOf(Mutex));
  Mem.store(0, 0, Data, 42);
  Mem.atomicExch(0, Mutex, 0); // "unlock"
  EXPECT_EQ(Mem.load(1, 1, Mutex), 0u);
  EXPECT_EQ(Mem.load(1, 1, Data), 0u)
      << "unlock must be able to overtake the buffered data store";
}

TEST_F(MemoryFixture, AtomicDrainsOwnBank) {
  const Addr A = Mem.alloc(8);
  Mem.store(0, 0, A, 7);
  Mem.atomicAdd(0, A + 1, 1); // Same bank: self-coherence drain first.
  EXPECT_EQ(Mem.hostRead(A), 7u);
}

//===----------------------------------------------------------------------===//
// Fences
//===----------------------------------------------------------------------===//

TEST_F(MemoryFixture, DeviceFenceDrainsEverything) {
  const Addr A = Mem.alloc(4);
  const Addr B = Mem.alloc(4);
  Mem.store(0, 0, A, 1);
  Mem.store(0, 0, B, 2);
  const unsigned Latency = Mem.fenceDevice(0);
  EXPECT_GE(Latency, titan().FenceBaseLatency);
  EXPECT_EQ(Mem.hostRead(A), 1u);
  EXPECT_EQ(Mem.hostRead(B), 2u);
}

TEST_F(MemoryFixture, DeviceFenceOnlyDrainsOwnThread) {
  const Addr A = Mem.alloc(4);
  Mem.store(0, 0, A, 1);
  Mem.fenceDevice(1); // Another thread's fence.
  EXPECT_EQ(Mem.hostRead(A), 0u);
}

TEST_F(MemoryFixture, FenceLatencyGrowsWithCongestion) {
  const Addr A = Mem.alloc(4);
  Rng R2(1);
  MemorySystem Congested(titan(), R2);
  Congested.registerThreads(2);
  const Addr CA = Congested.alloc(4);
  FreezeBank Freeze(titan().bankOf(CA));
  Congested.setCongestionSource(&Freeze);
  Congested.tick(1);

  Mem.store(0, 0, A, 1);
  Congested.store(0, 0, CA, 1);
  EXPECT_GT(Congested.fenceDevice(0), Mem.fenceDevice(0));
}

TEST_F(MemoryFixture, BlockFenceGivesBlockVisibilityOnly) {
  const Addr A = Mem.alloc(4);
  Mem.store(/*Tid=*/0, /*Block=*/0, A, 7);
  Mem.fenceBlock(0, 0);
  // Same-block thread sees it; other block does not; global memory not
  // yet written.
  EXPECT_EQ(Mem.load(/*Tid=*/1, /*Block=*/0, A), 7u);
  EXPECT_EQ(Mem.load(/*Tid=*/2, /*Block=*/1, A), 0u);
  EXPECT_EQ(Mem.hostRead(A), 0u);
}

TEST_F(MemoryFixture, BlockVisibleValueEventuallyDrains) {
  const Addr A = Mem.alloc(4);
  Mem.store(0, 0, A, 7);
  Mem.fenceBlock(0, 0);
  for (uint64_t T = 1; T != 200 && Mem.hasPendingWork(); ++T)
    Mem.tick(T);
  EXPECT_EQ(Mem.hostRead(A), 7u);
  EXPECT_EQ(Mem.load(2, 1, A), 7u);
}

TEST_F(MemoryFixture, BlockVisibleSupersedesOwnOlderBufferedStore) {
  // Thread 0 stores, thread 1 (same block) later stores and publishes at
  // block scope; thread 0's subsequent read must see thread 1's newer
  // value even though its own store is still buffered (the cub-scan
  // broadcast pattern).
  const Addr A = Mem.alloc(4);
  Mem.store(/*Tid=*/0, /*Block=*/0, A, 1);
  Mem.fenceBlock(0, 0);
  Mem.store(/*Tid=*/1, /*Block=*/0, A, 2);
  Mem.fenceBlock(1, 0);
  EXPECT_EQ(Mem.load(0, 0, A), 2u);
}

//===----------------------------------------------------------------------===//
// Per-location coherence
//===----------------------------------------------------------------------===//

TEST_F(MemoryFixture, OlderPlainDrainCannotClobberNewerPlainWrite) {
  // Plain-vs-plain same-address coherence follows issue order (this is
  // what lets a barrier-ordered later store win even if an older buffered
  // store drains afterwards; see the cub-scan broadcast pattern).
  const Addr A = Mem.alloc(4);
  Mem.store(0, 0, A, 1); // Older store, buffered.
  Mem.store(1, 1, A, 2); // Newer store, buffered.
  Mem.fenceDevice(1);    // Newer store arrives first...
  Mem.fenceDevice(0);    // ...older drain must not clobber it.
  EXPECT_EQ(Mem.hostRead(A), 2u)
      << "per-location coherence: memory must not step backwards";
}

TEST_F(MemoryFixture, InFlightStoreOvertakesAtomicAtArrival) {
  // Atomics serialise at the L2 by arrival: a plain store already in
  // flight when the atomic executes arrives afterwards and wins. This is
  // serialisable (the atomic observably read the pre-store value) — and
  // the sound alternative to dropping the store, which would lose a
  // fenced write (see FuzzTests' soundness property).
  const Addr A = Mem.alloc(4);
  Mem.store(0, 0, A, 1);                    // In flight.
  EXPECT_EQ(Mem.atomicAdd(1, A, 10), 0u);   // Reads the pre-store value.
  Mem.fenceDevice(0);                       // Store arrives, overwrites.
  EXPECT_EQ(Mem.hostRead(A), 1u);
}

TEST_F(MemoryFixture, ForwardingAfterOtherThreadsAtomic) {
  const Addr A = Mem.alloc(4);
  Mem.store(0, 0, A, 1);   // Own buffered store (in flight).
  Mem.atomicExch(1, A, 2); // Another thread's atomic.
  // The own store is still in flight and will overwrite the atomic at
  // arrival, so forwarding it is coherent.
  EXPECT_EQ(Mem.load(0, 0, A), 1u);
}

//===----------------------------------------------------------------------===//
// Async (split-phase) loads
//===----------------------------------------------------------------------===//

TEST_F(MemoryFixture, AsyncLoadBindsAtCompletion) {
  const Addr A = Mem.alloc(4);
  const unsigned Ticket = Mem.issueAsyncLoad(0, A);
  // Value changes between issue and completion.
  Mem.atomicExch(1, A, 9);
  for (uint64_t T = 1; T != 200 && !Mem.asyncDone(Ticket); ++T)
    Mem.tick(T);
  ASSERT_TRUE(Mem.asyncDone(Ticket));
  EXPECT_EQ(Mem.asyncValue(Ticket), 9u)
      << "async loads read at completion time (the LB mechanism)";
}

TEST_F(MemoryFixture, FenceCompletesOwnAsyncLoads) {
  const Addr A = Mem.alloc(4);
  Mem.hostWrite(A, 5);
  const unsigned Ticket = Mem.issueAsyncLoad(0, A);
  Mem.fenceDevice(0);
  ASSERT_TRUE(Mem.asyncDone(Ticket));
  EXPECT_EQ(Mem.asyncValue(Ticket), 5u);
}

TEST_F(MemoryFixture, SameBankStoreForcesAsyncCompletionFirst) {
  // Same-bank issue order: a later store cannot drain past a pending
  // async load on its bank (no same-bank LB).
  const Addr A = Mem.alloc(8);
  const unsigned Ticket = Mem.issueAsyncLoad(0, A);
  Mem.store(0, 0, A + 1, 1); // Same bank.
  EXPECT_TRUE(Mem.asyncDone(Ticket));
  EXPECT_EQ(Mem.asyncValue(Ticket), 0u);
}

TEST_F(MemoryFixture, CrossBankStoreLeavesAsyncPending) {
  const Addr A = Mem.alloc(4);
  const Addr B = Mem.alloc(4);
  Rng R0(123);
  MemorySystem M(titan(), R0);
  M.registerThreads(2);
  const Addr MA = M.alloc(4);
  const Addr MB = M.alloc(4);
  ASSERT_NE(titan().bankOf(MA), titan().bankOf(MB));
  const unsigned Ticket = M.issueAsyncLoad(0, MA);
  M.store(0, 0, MB, 1);
  EXPECT_FALSE(M.asyncDone(Ticket));
  (void)A;
  (void)B;
}

TEST_F(MemoryFixture, SequentialModeAsyncCompletesAtIssue) {
  Mem.setSequentialMode(true);
  const Addr A = Mem.alloc(4);
  Mem.hostWrite(A, 3);
  const unsigned Ticket = Mem.issueAsyncLoad(0, A);
  EXPECT_TRUE(Mem.asyncDone(Ticket));
  EXPECT_EQ(Mem.asyncValue(Ticket), 3u);
}

//===----------------------------------------------------------------------===//
// drainAll / stats
//===----------------------------------------------------------------------===//

TEST_F(MemoryFixture, DrainAllPublishesEverything) {
  const Addr A = Mem.alloc(64);
  for (unsigned T = 0; T != 4; ++T)
    for (unsigned I = 0; I != 8; ++I)
      Mem.store(T, 0, A + T * 8 + I, T * 100 + I);
  Mem.drainAll();
  EXPECT_FALSE(Mem.hasPendingWork());
  for (unsigned T = 0; T != 4; ++T)
    for (unsigned I = 0; I != 8; ++I)
      EXPECT_EQ(Mem.hostRead(A + T * 8 + I), T * 100 + I);
}

TEST_F(MemoryFixture, StatsCountOperations) {
  const Addr A = Mem.alloc(4);
  Mem.store(0, 0, A, 1);
  Mem.load(0, 0, A);
  Mem.atomicAdd(0, A, 1);
  Mem.fenceDevice(0);
  Mem.fenceBlock(0, 0);
  Mem.issueAsyncLoad(0, A + 1);
  const MemStats &S = Mem.stats();
  EXPECT_EQ(S.Stores, 1u);
  EXPECT_EQ(S.Loads, 1u);
  EXPECT_EQ(S.Atomics, 1u);
  EXPECT_EQ(S.DeviceFences, 1u);
  EXPECT_EQ(S.BlockFences, 1u);
  EXPECT_EQ(S.AsyncLoads, 1u);
  EXPECT_EQ(S.totalAccesses(), 3u);
}

//===----------------------------------------------------------------------===//
// Congestion response
//===----------------------------------------------------------------------===//

TEST_F(MemoryFixture, CongestionDelaysDrains) {
  // Measure mean drain time with and without heavy pressure on the bank.
  auto MeanDrainTicks = [](bool Congest) {
    double Total = 0;
    for (int Trial = 0; Trial != 100; ++Trial) {
      Rng TrialRng(Trial * 7 + 1);
      MemorySystem M(titan(), TrialRng);
      M.registerThreads(1);
      const Addr A = M.alloc(4);
      FreezeBank Freeze(titan().bankOf(A));
      if (Congest)
        M.setCongestionSource(&Freeze);
      M.store(0, 0, A, 1);
      uint64_t T = 1;
      for (; T != 4000 && M.hasPendingWork(); ++T)
        M.tick(T);
      Total += static_cast<double>(T);
    }
    return Total / 100.0;
  };
  const double Native = MeanDrainTicks(false);
  const double Congested = MeanDrainTicks(true);
  EXPECT_LT(Native, 4.0);
  EXPECT_GT(Congested, 4.0 * Native)
      << "bank pressure must substantially delay drains";
}

TEST_F(MemoryFixture, PressureBelowThresholdHasNoEffect) {
  class MildSource final : public CongestionSource {
  public:
    BankPressure pressureAt(uint64_t, unsigned) const override {
      // Well below the chip threshold after sensitivity scaling.
      return {0.5, 0.5};
    }
  };
  MildSource Mild;
  Mem.setCongestionSource(&Mild);
  Mem.tick(1);
  EXPECT_DOUBLE_EQ(Mem.effectiveWritePressure(1, 0), 0.0);
}

//===----------------------------------------------------------------------===//
// Reset lifecycle (DESIGN.md Sec. 12)
//===----------------------------------------------------------------------===//

TEST_F(MemoryFixture, ResetZeroesExactlyTheTouchedWords) {
  const Addr A = Mem.alloc(128);
  Mem.hostWrite(A, 11);
  Mem.hostWrite(A + 100, 22);
  Mem.store(0, 0, A + 5, 33);
  Mem.atomicAdd(1, A + 7, 44);
  Mem.drainAll();

  Mem.reset(titan());
  EXPECT_EQ(Mem.allocatedWords(), 0u);
  const Addr B = Mem.alloc(128);
  EXPECT_EQ(B, A) << "allocation restarts from the bottom";
  for (Addr W = B; W != B + 128; ++W)
    EXPECT_EQ(Mem.hostRead(W), 0u) << "word " << W;
}

TEST_F(MemoryFixture, ResetClearsStatsBuffersAndAsyncState) {
  Mem.alloc(64);
  Mem.store(0, 0, 3, 9);
  const unsigned Ticket = Mem.issueAsyncLoad(1, 5);
  (void)Ticket;
  EXPECT_TRUE(Mem.hasPendingWork());
  EXPECT_GT(Mem.stats().Stores, 0u);

  Mem.reset(titan());
  EXPECT_FALSE(Mem.hasPendingWork());
  EXPECT_EQ(Mem.stats().Stores, 0u);
  EXPECT_EQ(Mem.stats().AsyncLoads, 0u);
  EXPECT_FALSE(Mem.sequentialMode());
  // Ticket numbering restarts, as on a fresh system.
  Mem.alloc(64);
  EXPECT_EQ(Mem.issueAsyncLoad(0, 1), 0u);
}

TEST_F(MemoryFixture, ResetRebindsToADifferentChip) {
  const ChipProfile &Maxwell = *ChipProfile::lookup("980");
  Mem.alloc(16);
  Mem.store(0, 0, 0, 1);
  Mem.drainAll();

  Mem.reset(Maxwell);
  EXPECT_EQ(&Mem.chip(), &Maxwell);
  // Alignment now follows the new chip's patch size.
  Mem.alloc(1);
  const Addr Second = Mem.alloc(1);
  EXPECT_EQ(Second % Maxwell.PatchSizeWords, 0u);
}

TEST_F(MemoryFixture, ResetStateIsIndistinguishableFromFresh) {
  // Drive the same deterministic op sequence on a fresh system and on a
  // dirtied-then-reset one; every observable must match, including drain
  // timing (which depends on RNG consumption and stall state).
  auto Drive = [](MemorySystem &M) {
    std::vector<Word> Obs;
    M.registerThreads(4);
    const Addr A = M.alloc(256);
    M.store(0, 0, A, 1);
    M.store(0, 0, A + 64, 2);      // Different bank on titan.
    M.store(1, 1, A + 1, 3);
    Obs.push_back(M.load(1, 1, A + 1)); // Forwarded.
    M.issueAsyncLoad(2, A);
    M.atomicAdd(3, A + 2, 5);
    for (uint64_t T = 1; T != 64; ++T) {
      M.tick(T);
      Obs.push_back(M.hostRead(A));
      Obs.push_back(M.hostRead(A + 64));
    }
    M.drainAll();
    for (Addr W = A; W != A + 70; ++W)
      Obs.push_back(M.hostRead(W));
    Obs.push_back(static_cast<Word>(M.stats().DrainedStores));
    return Obs;
  };

  Rng FreshRng(77);
  MemorySystem Fresh(titan(), FreshRng);

  Rng ReusedRng(1234);
  MemorySystem Reused(titan(), ReusedRng);
  Drive(Reused); // Dirty it with a different-seeded history.
  ReusedRng.reseed(77);
  Reused.reset(titan());

  EXPECT_EQ(Drive(Reused), Drive(Fresh));
}
