//===- examples/quickstart.cpp - First steps with gpuwmm ---------------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// Quickstart: run the three classic litmus tests (MP, LB, SB) on a
// simulated GTX Titan, natively and under the paper's tuned memory stress,
// and see how dramatically targeted stress amplifies weak behaviours.
//
//===----------------------------------------------------------------------===//

#include "litmus/Litmus.h"
#include "stress/Environment.h"
#include "support/Options.h"

#include <cstdio>

using namespace gpuwmm;

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  const std::string ChipName = Opts.getString("chip", "titan");
  const unsigned Runs =
      static_cast<unsigned>(Opts.getInt("runs", scaledCount(400)));
  const uint64_t Seed = static_cast<uint64_t>(Opts.getInt("seed", 42));

  const sim::ChipProfile *Chip = sim::ChipProfile::lookup(ChipName);
  if (!Chip) {
    std::fprintf(stderr, "error: unknown chip '%s'\n", ChipName.c_str());
    return 1;
  }
  std::printf("chip: %s (%s, %s)\n", Chip->Name, archName(Chip->Arch),
              Chip->ShortName);
  std::printf("runs per configuration: %u\n\n", Runs);

  const auto Tuned = stress::TunedStressParams::paperDefaults(*Chip);
  const unsigned P = Tuned.PatchWords;
  std::printf("tuned stress: patch=%u words, sequence=\"%s\", spread=%u\n\n",
              P, Tuned.Seq.str().c_str(), Tuned.Spread);

  std::printf("%-4s  %-4s  %-18s  %-18s  %s\n", "test", "d", "native weak",
              "stressed weak", "stress location");
  for (litmus::LitmusKind K : litmus::AllLitmusKinds) {
    for (unsigned D : {0u, P, 2 * P}) {
      litmus::LitmusRunner Runner(*Chip, Seed);
      const litmus::LitmusInstance T{K, D};

      const unsigned Native =
          Runner.countWeak(T, litmus::LitmusRunner::MicroStress::none(),
                           Runs);
      // Stress the patch-sized region holding location x: on real chips
      // one cannot know which scratchpad patch conflicts with the
      // application; the tuning pipeline discovers effective ones. Here we
      // sweep the first few regions and report the best.
      unsigned BestWeak = 0;
      unsigned BestLoc = 0;
      for (unsigned Region = 0; Region != 8; ++Region) {
        const unsigned Loc = Region * P;
        const unsigned W = Runner.countWeak(
            T, litmus::LitmusRunner::MicroStress::at(Tuned.Seq, Loc), Runs);
        if (W > BestWeak) {
          BestWeak = W;
          BestLoc = Loc;
        }
      }
      std::printf("%-4s  %-4u  %5u/%u (%5.1f%%)   %5u/%u (%5.1f%%)   @%u\n",
                  litmusName(K), D, Native, Runs, 100.0 * Native / Runs,
                  BestWeak, Runs, 100.0 * BestWeak / Runs, BestLoc);
    }
  }

  std::printf("\nWith a fence between each thread's two operations the weak "
              "behaviours vanish:\n");
  for (litmus::LitmusKind K : litmus::AllLitmusKinds) {
    litmus::LitmusRunner Runner(*Chip, Seed);
    litmus::LitmusRunner::RunOpts Fenced;
    Fenced.WithFences = true;
    unsigned Weak = 0;
    for (unsigned Region = 0; Region != 8; ++Region)
      Weak += Runner.countWeak(
          {K, 2 * P},
          litmus::LitmusRunner::MicroStress::at(Tuned.Seq, Region * P),
          Runs / 4, Fenced);
    std::printf("  %-4s fenced, stressed: %u weak\n", litmusName(K), Weak);
  }
  return 0;
}
