//===- examples/spinlock_debugging.cpp - Debugging cbe-dot end to end ---------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// The paper's Sec. 1 walkthrough as a runnable program. The cbe-dot
// application (Fig. 1) computes a dot product with a spinlock-protected
// global accumulation. We:
//
//   1. execute it natively      -> no errors; it looks correct;
//   2. execute it under the tuned testing environment (sys-str+)
//                               -> weak-memory errors appear readily
//                                  (the paper saw 102/1000 on a K20);
//   3. run empirical fence insertion (Sec. 5)
//                               -> a single fence after the store to *c,
//                                  the same defect prior hand analysis
//                                  blamed in the unlock path;
//   4. re-test the hardened application -> empirically stable;
//   5. compare the cost of the inserted fence against conservative
//      fencing (Sec. 6).
//
//===----------------------------------------------------------------------===//

#include "harden/FenceInsertion.h"
#include "harness/CostBenchmark.h"
#include "harness/EnvironmentRunner.h"
#include "support/Options.h"
#include "support/Table.h"

#include <cstdio>

using namespace gpuwmm;

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  const std::string ChipName = Opts.getString("chip", "k20");
  const unsigned Runs =
      static_cast<unsigned>(Opts.getInt("runs", scaledCount(300)));
  const uint64_t Seed = static_cast<uint64_t>(Opts.getInt("seed", 2016));

  const sim::ChipProfile *Chip = sim::ChipProfile::lookup(ChipName);
  if (!Chip) {
    std::fprintf(stderr, "error: unknown chip '%s'\n", ChipName.c_str());
    return 1;
  }
  const auto Tuned = stress::TunedStressParams::paperDefaults(*Chip);
  const auto App = apps::AppKind::CbeDot;

  std::printf("== Debugging cbe-dot (Fig. 1) on the simulated %s ==\n\n",
              Chip->Name);

  // 1. Native execution: the bug hides.
  const auto Native = harness::runCell(
      App, *Chip, {stress::StressKind::None, false}, Tuned, Runs, Seed);
  std::printf("1. native executions:        %u/%u erroneous\n",
              Native.Errors, Native.Runs);
  std::printf("   A developer who is not suspicious about weak memory "
              "might conclude the application is correct.\n\n");

  // 2. The tuned testing environment provokes the bug.
  const auto Stressed = harness::runCell(
      App, *Chip, {stress::StressKind::Sys, true}, Tuned, Runs, Seed);
  std::printf("2. under sys-str+:           %u/%u erroneous (paper: "
              "102/1000 on the K20)\n\n",
              Stressed.Errors, Stressed.Runs);

  // 3. Empirical fence insertion.
  const unsigned NumSites = apps::appNumSites(App);
  harden::AppCheckOracle Oracle(App, *Chip, Seed + 1, /*StableRuns=*/300);
  const auto Insertion = harden::empiricalFenceInsertion(
      sim::FencePolicy::all(NumSites), Oracle);
  const auto Instance = apps::makeApp(App);
  std::printf("3. empirical fence insertion: %u of %u fences remain "
              "(stable=%s, %u round(s))\n",
              Insertion.Fences.count(), NumSites,
              Insertion.Stable ? "yes" : "NO", Insertion.Rounds);
  for (unsigned S : Insertion.Fences.sites())
    std::printf("   fence after: %s\n", Instance->siteName(S));
  std::printf("   (the paper's hand analysis prescribes exactly this "
              "fence at the start of unlock())\n\n");

  // 4. The hardened application is empirically stable.
  unsigned HardenedErrors = 0;
  Rng Master(Seed + 2);
  for (unsigned I = 0; I != Runs; ++I)
    HardenedErrors += apps::isErroneous(apps::runApplicationOnce(
        App, *Chip, {stress::StressKind::Sys, true}, Tuned,
        &Insertion.Fences, Master.fork(I).next()));
  std::printf("4. hardened, under sys-str+: %u/%u erroneous\n\n",
              HardenedErrors, Runs);

  // 5. What did hardening cost?
  const auto CostNone = harness::measureCost(
      App, *Chip, sim::FencePolicy::none(NumSites), 25, Seed + 3);
  const auto CostEmp =
      harness::measureCost(App, *Chip, Insertion.Fences, 25, Seed + 3);
  const auto CostCons = harness::measureCost(
      App, *Chip, sim::FencePolicy::all(NumSites), 25, Seed + 3);
  std::printf("5. runtime: no fences %.3f ms | emp fences %.3f ms (%s) | "
              "cons fences %.3f ms (%s)\n",
              CostNone.RuntimeMs, CostEmp.RuntimeMs,
              formatOverheadPercent(CostEmp.RuntimeMs /
                                    CostNone.RuntimeMs)
                  .c_str(),
              CostCons.RuntimeMs,
              formatOverheadPercent(CostCons.RuntimeMs /
                                    CostNone.RuntimeMs)
                  .c_str());
  if (CostNone.EnergyValid)
    std::printf("   energy:  no fences %.2f J  | emp fences %.2f J (%s) | "
                "cons fences %.2f J (%s)\n",
                CostNone.EnergyJ, CostEmp.EnergyJ,
                formatOverheadPercent(CostEmp.EnergyJ / CostNone.EnergyJ)
                    .c_str(),
                CostCons.EnergyJ,
                formatOverheadPercent(CostCons.EnergyJ / CostNone.EnergyJ)
                    .c_str());
  return 0;
}
