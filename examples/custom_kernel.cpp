//===- examples/custom_kernel.cpp - Testing your own kernel -------------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// Shows how a user brings their OWN fine-grained-concurrency kernel to the
// testing environment: write the kernel against the simulator API, give it
// a functional post-condition, and run it under the eight environments.
// The testing environment needs no knowledge of the kernel's communication
// idiom — that is the paper's black-box property.
//
// The kernel here is a producer/consumer pipeline: block 0 produces a
// sequence of items, publishing each with a data store followed by a
// ticket store (an MP handshake); block 1 consumes them. Without a fence
// between data and ticket the consumer can read stale items.
//
//===----------------------------------------------------------------------===//

#include "sim/Device.h"
#include "sim/ThreadContext.h"
#include "stress/Environment.h"
#include "support/Options.h"
#include "support/Table.h"

#include <cstdio>
#include <iostream>

using namespace gpuwmm;
using sim::Addr;
using sim::Kernel;
using sim::ThreadContext;
using sim::Word;

namespace {

constexpr unsigned NumItems = 24;

// Fence sites of the kernel, so the hardening machinery could be applied
// to it exactly as to the paper's case studies.
enum Site : int { SiteItemSt = 0, SiteTicketSt, SiteTicketLd, SiteItemLd };

Kernel producer(ThreadContext &Ctx, Addr Items, Addr Ticket, bool Fenced) {
  for (unsigned I = 0; I != NumItems; ++I) {
    co_await Ctx.st(Items + I, 1000 + I, SiteItemSt);
    if (Fenced)
      co_await Ctx.fence(); // __threadfence() between data and ticket.
    co_await Ctx.st(Ticket, I + 1, SiteTicketSt);
    co_await Ctx.yield(1 + static_cast<unsigned>(Ctx.rand(3)));
  }
}

Kernel consumer(ThreadContext &Ctx, Addr Items, Addr Ticket, Addr Sum) {
  unsigned Consumed = 0;
  Word Total = 0;
  while (Consumed != NumItems) {
    // Wait for the next ticket. (Awaits stay out of control-flow
    // conditions: GCC 12 coroutine bug; see README.)
    for (;;) {
      const Word T = co_await Ctx.ld(Ticket, SiteTicketLd);
      if (T > Consumed)
        break;
      co_await Ctx.yield(2);
    }
    Total += co_await Ctx.ld(Items + Consumed, SiteItemLd);
    ++Consumed;
  }
  co_await Ctx.st(Sum, Total);
}

/// One execution; returns true iff the post-condition held.
bool runOnce(const sim::ChipProfile &Chip, const stress::Environment &Env,
             bool Fenced, uint64_t Seed) {
  Rng R(Seed);
  sim::Device Dev(Chip, R.next());

  const Addr Items = Dev.alloc(NumItems);
  const Addr Ticket = Dev.alloc(1);
  const Addr Sum = Dev.alloc(1);

  const auto Tuned = stress::TunedStressParams::paperDefaults(Chip);
  Rng EnvRng = R.fork(1);
  const auto Stress = applyEnvironment(Env, Dev, Tuned, EnvRng);

  const auto Result =
      Dev.run({2, 1}, [=](ThreadContext &Ctx) -> Kernel {
        if (Ctx.blockIdx() == 0)
          return producer(Ctx, Items, Ticket, Fenced);
        return consumer(Ctx, Items, Ticket, Sum);
      });
  if (!Result.completed())
    return false;

  // Post-condition: the consumer summed exactly the produced items.
  Word Expected = 0;
  for (unsigned I = 0; I != NumItems; ++I)
    Expected += 1000 + I;
  return Dev.read(Sum) == Expected;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  const std::string ChipName = Opts.getString("chip", "titan");
  const unsigned Runs =
      static_cast<unsigned>(Opts.getInt("runs", scaledCount(200)));
  const uint64_t Seed = static_cast<uint64_t>(Opts.getInt("seed", 7));

  const sim::ChipProfile *Chip = sim::ChipProfile::lookup(ChipName);
  if (!Chip) {
    std::fprintf(stderr, "error: unknown chip '%s'\n", ChipName.c_str());
    return 1;
  }

  std::printf("== Black-box testing a custom producer/consumer kernel on "
              "%s ==\n\n",
              Chip->Name);
  Table T({"environment", "unfenced errors", "fenced errors"});
  for (const auto &Env : stress::Environment::all()) {
    unsigned Unfenced = 0, Fenced = 0;
    for (unsigned I = 0; I != Runs; ++I) {
      Unfenced += !runOnce(*Chip, Env, false, Seed * 1000 + I);
      Fenced += !runOnce(*Chip, Env, true, Seed * 2000 + I);
    }
    T.addRow({Env.name(),
              std::to_string(Unfenced) + "/" + std::to_string(Runs),
              std::to_string(Fenced) + "/" + std::to_string(Runs)});
  }
  T.print(std::cout);
  std::printf("\nThe tuned environment exposes the missing fence without "
              "knowing anything about the kernel; the fence eliminates "
              "the errors.\n");
  return 0;
}
