//===- tools/gpuwmm.cpp - Command-line driver ---------------------------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// The command-line front end a user of the paper's tooling would reach
// for: run litmus tests, tune a chip, test an application under an
// environment, harden it via empirical fence insertion, fuzz random
// programs, or run the full Tab. 5 campaign — all from one binary.
//
// Every command accepts --jobs=N. Results are bit-identical for every N
// (the parallel engine's determinism contract, DESIGN.md Sec. 11); the
// flag only changes wall-clock time.
//
//===----------------------------------------------------------------------===//

#include "apps/AppCompile.h"
#include "fuzz/LitmusBridge.h"
#include "fuzz/ProgramFuzzer.h"
#include "fuzz/Shrink.h"
#include "harden/FenceInsertion.h"
#include "harness/Campaign.h"
#include "harness/EnvironmentRunner.h"
#include "harness/Merge.h"
#include "harness/WorkList.h"
#include "hunt/Hunt.h"
#include "litmus/Format.h"
#include "model/StreamingChecker.h"
#include "sim/BatchExec.h"
#include "support/Options.h"
#include "support/Suggest.h"
#include "support/Table.h"
#include "support/ThreadPool.h"
#include "tuning/Tuner.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace gpuwmm;

namespace {

int usage() {
  std::printf(
      "usage: gpuwmm <command> [--options]\n"
      "\n"
      "commands:\n"
      "  chips                         list the simulated GPUs\n"
      "  litmus list                   list the built-in litmus catalog\n"
      "  litmus  --chip [--test=NAME | --file=T.litmus] --distance\n"
      "          [--stress] [--fences] [--runs] [--print] [--explain]\n"
      "                                run a litmus test from the built-in\n"
      "                                catalog (see: gpuwmm litmus list) or\n"
      "                                a .litmus file (docs/litmus-format.md);\n"
      "                                --print shows the .litmus text instead;\n"
      "                                --explain cross-checks every run against\n"
      "                                the axiomatic oracle and prints the\n"
      "                                event chain behind a weak outcome\n"
      "  tune    --chip [--scale] [--tests=a,b,c]\n"
      "                                run the Sec. 3 tuning pipeline against\n"
      "                                a catalog idiom trio (default MP,LB,SB)\n"
      "  test    --chip --app --env [--runs]\n"
      "                                run an application under an environment\n"
      "  harden  --chip --app [--stable-runs]\n"
      "                                empirical fence insertion (Alg. 1)\n"
      "  fuzz    --chip [--programs] [--runs] [--file=T.litmus]\n"
      "          [--export-weak=DIR] [--shrink [--out=T.litmus]]\n"
      "                                random-program differential fuzzing;\n"
      "                                --file re-fuzzes an exported case,\n"
      "                                --export-weak writes failing programs\n"
      "                                as replayable .litmus files,\n"
      "                                --shrink delta-debugs --file to a\n"
      "                                minimal program that still provokes\n"
      "                                the same forbidden outcome (re-checked\n"
      "                                by the axiomatic oracle)\n"
      "  hunt    --chip [--rounds] [--programs] [--runs] [--distance]\n"
      "          [--shrink-runs] [--harden-runs] [--stable-runs]\n"
      "          [--verify-runs] [--corpus-dir=DIR [--resume]] [--out]\n"
      "                                closed-loop bug mining: fuzz random\n"
      "                                programs in batches, shrink each weak\n"
      "                                case (every acceptance cross-checked\n"
      "                                by both consistency checkers), dedupe\n"
      "                                by canonical form into a crash-safe\n"
      "                                corpus, harden survivors (Alg. 1) and\n"
      "                                verify the hardened tests SC under\n"
      "                                the streaming oracle; emits a JSON\n"
      "                                report and one replayable .litmus\n"
      "                                per corpus entry; --resume extends\n"
      "                                an existing corpus to --rounds\n"
      "  campaign [--chips=a,b] [--envs=x,y] [--apps=p,q] [--litmus=t,u]\n"
      "          [--runs] [--out] [--oracle=N|all]\n"
      "          [--out-dir=DIR [--resume] [--cells=A..B,K]]\n"
      "                                the Tab. 5 grid; emits a JSON report;\n"
      "                                --oracle=N streams every Nth run\n"
      "                                through the axiomatic oracle\n"
      "                                (--oracle=all checks every run;\n"
      "                                memory stays frontier-bounded);\n"
      "                                --out-dir shards one fsync'd record\n"
      "                                per cell into DIR instead (survives\n"
      "                                SIGKILL; several workers may stripe\n"
      "                                the grid with disjoint --cells=),\n"
      "                                --resume skips cells already durable\n"
      "  report  --dir=DIR [--out]     merge a sharded campaign directory\n"
      "                                into the schema-v2 JSON report,\n"
      "                                byte-identical to a single-process\n"
      "                                run (order-independent, duplicates\n"
      "                                deduped, torn tails tolerated)\n"
      "\n"
      "common options: --seed=N; --jobs=N worker threads (results are\n"
      "identical for every N; default GPUWMM_JOBS or all cores);\n"
      "--batch=K seeds per batch in the batched litmus and application\n"
      "engines (results are identical for every K; default GPUWMM_BATCH\n"
      "or 64); --engine=auto|scalar|batched engine selection (auto\n"
      "batches wherever the kernel lowers; batched fails on kernels\n"
      "that cannot lower; results are engine-independent; default\n"
      "GPUWMM_ENGINE or auto); GPUWMM_SCALE scales run counts globally\n");
  return 2;
}

const sim::ChipProfile *chipOrDie(const Options &Opts) {
  const std::string Name = Opts.getString("chip", "titan");
  const sim::ChipProfile *Chip = sim::ChipProfile::lookup(Name);
  if (!Chip) {
    size_t Count = 0;
    const sim::ChipProfile *Chips = sim::ChipProfile::all(Count);
    std::vector<std::string> Names;
    for (size_t I = 0; I != Count; ++I)
      Names.push_back(Chips[I].ShortName);
    std::fprintf(stderr, "error: unknown chip '%s'%s (try: gpuwmm chips)\n",
                 Name.c_str(), suggestClause(Name, Names).c_str());
    std::exit(2);
  }
  return Chip;
}

/// Looks up a litmus catalog test; on failure prints an error with close
/// catalog matches ("did you mean ...") and returns null.
const litmus::Program *catalogTestOrNull(const std::string &Name) {
  if (const litmus::Program *P = litmus::findCatalogProgram(Name))
    return P;
  std::fprintf(stderr,
               "error: unknown litmus test '%s'%s (see: gpuwmm litmus "
               "list)\n",
               Name.c_str(),
               suggestClause(Name, litmus::catalogNames()).c_str());
  return nullptr;
}

/// Upper bound on --jobs: far beyond any useful worker count, but small
/// enough that narrowing to unsigned can never truncate.
constexpr int64_t MaxJobs = 1 << 16;

/// The worker pool every subcommand draws from: --jobs, else GPUWMM_JOBS,
/// else all cores. --jobs is validated up front in main() for every
/// command; 0 here means "auto".
ThreadPool makePool(const Options &Opts) {
  const int64_t Jobs = Opts.getPositiveInt("jobs", 0, MaxJobs);
  return ThreadPool(static_cast<unsigned>(Jobs));
}

/// Splits "a,b,c" into its elements; empty string -> empty vector.
std::vector<std::string> splitCsv(const std::string &Csv) {
  std::vector<std::string> Parts;
  std::istringstream IS(Csv);
  std::string Part;
  while (std::getline(IS, Part, ','))
    if (!Part.empty())
      Parts.push_back(Part);
  return Parts;
}

int cmdChips() {
  Table T({"short name", "chip", "architecture", "patch (words)",
           "power query"});
  size_t Count = 0;
  const sim::ChipProfile *Chips = sim::ChipProfile::all(Count);
  for (size_t I = 0; I != Count; ++I)
    T.addRow({Chips[I].ShortName, Chips[I].Name, archName(Chips[I].Arch),
              std::to_string(Chips[I].PatchSizeWords),
              Chips[I].SupportsPowerQuery ? "yes" : "no"});
  T.print(std::cout);
  return 0;
}

/// `gpuwmm litmus list`: the built-in catalog at a glance.
int cmdLitmusList() {
  Table T({"name", "threads", "locations", "registers", "description"});
  for (const litmus::Program &P : litmus::catalog()) {
    std::string Locs;
    for (size_t I = 0; I != P.Locations.size(); ++I)
      Locs += (I ? " " : "") + P.Locations[I];
    T.addRow({P.Name, std::to_string(P.Threads.size()), Locs,
              std::to_string(P.Registers.size()), P.Doc});
  }
  T.print(std::cout);
  std::printf("\nrun one with: gpuwmm litmus --test=NAME; export its "
              ".litmus text with --print\n");
  return 0;
}

/// Reads and parses \p Path; on any failure prints a file:line:col error
/// and returns std::nullopt.
std::optional<litmus::Program> loadLitmusFile(const std::string &Path) {
  std::ifstream IS(Path);
  if (!IS) {
    std::fprintf(stderr, "error: cannot read '%s'\n", Path.c_str());
    return std::nullopt;
  }
  std::ostringstream Text;
  Text << IS.rdbuf();
  litmus::ParseError Err;
  std::optional<litmus::Program> P = litmus::parseLitmus(Text.str(), Err);
  if (!P)
    std::fprintf(stderr, "%s\n", Err.render(Path).c_str());
  return P;
}

int cmdLitmus(const Options &Opts) {
  const sim::ChipProfile *Chip = chipOrDie(Opts);

  // The test: a .litmus file, or a catalog entry by name.
  litmus::Program Parsed;
  const litmus::Program *P = nullptr;
  if (Opts.has("file")) {
    std::optional<litmus::Program> FromFile =
        loadLitmusFile(Opts.getString("file", ""));
    if (!FromFile)
      return 2;
    Parsed = std::move(*FromFile);
    P = &Parsed;
  } else {
    P = catalogTestOrNull(Opts.getString("test", "MP"));
    if (!P)
      return 2;
  }

  if (Opts.has("print")) {
    std::fputs(litmus::printLitmus(*P).c_str(), stdout);
    return 0;
  }

  const unsigned Distance = static_cast<unsigned>(
      Opts.getInt("distance", 2 * Chip->PatchSizeWords));
  const unsigned Runs =
      static_cast<unsigned>(Opts.getInt("runs", scaledCount(1000)));
  const uint64_t Seed = static_cast<uint64_t>(Opts.getInt("seed", 1));

  litmus::LitmusRunner Runner(*Chip, Seed);
  litmus::LitmusRunner::RunOpts RunOpts;
  RunOpts.WithFences = Opts.has("fences");

  const auto Tuned = stress::TunedStressParams::paperDefaults(*Chip);

  // --explain: stream every run's events through the incremental checker
  // (no trace is retained — memory stays bounded by the checker's
  // frontier), cross-check its verdict against the operational outcome,
  // and print the human-readable event chain (the po ∪ rf ∪ co ∪ fr
  // cycle, extracted from the retained frontier) behind the first weak
  // outcome.
  if (Opts.has("explain")) {
    litmus::LitmusRunner::RunOpts StreamOpts = RunOpts;
    model::StreamingChecker Checker;
    StreamOpts.Sink = &Checker;
    std::vector<litmus::LitmusRunner::MicroStress> Configs;
    if (Opts.has("stress"))
      for (unsigned Region = 0; Region != Chip->NumBanks; ++Region)
        Configs.push_back(litmus::LitmusRunner::MicroStress::at(
            Tuned.Seq, Region * Tuned.PatchWords));
    else
      Configs.push_back(litmus::LitmusRunner::MicroStress::none());

    const model::AddrNamer Namer = [&Runner](sim::Addr A) {
      return Runner.addrName(A);
    };
    unsigned Checked = 0, Weak = 0, Disagreements = 0;
    bool Explained = false;
    for (const auto &S : Configs)
      for (unsigned I = 0; I != Runs; ++I) {
        Checker.begin();
        const bool Forbidden = Runner.runOnce(*P, Distance, S, StreamOpts);
        const model::StreamVerdict &R = Checker.finish();
        ++Checked;
        Weak += Forbidden;
        if (!R.AxiomsOk || R.weak() != Forbidden)
          ++Disagreements;
        if (!Explained && (Forbidden || !R.AxiomsOk)) {
          std::printf("%s d=%u on %s%s%s: execution %u hit the forbidden "
                      "outcome\n",
                      P->Name.c_str(), Distance, Chip->ShortName,
                      Opts.has("stress") ? " +tuned-stress" : "",
                      RunOpts.WithFences ? " +fences" : "", Checked - 1);
          std::fputs(model::renderStreamExplanation(R, Namer).c_str(),
                     stdout);
          Explained = true;
        }
      }
    if (!Explained)
      std::printf("%s d=%u on %s: no weak outcome in %u executions; "
                  "nothing to explain\n",
                  P->Name.c_str(), Distance, Chip->ShortName, Checked);
    if (Disagreements)
      std::printf("oracle: %u/%u cross-checked executions DISAGREE with "
                  "the operational simulator\n",
                  Disagreements, Checked);
    else
      std::printf("oracle: checker agreed with the simulator on all %u "
                  "executions (%u weak)\n",
                  Checked, Weak);
    return Disagreements ? 1 : 0;
  }

  unsigned Weak = 0;
  if (Opts.has("stress")) {
    // Scan one location per bank and report the most effective, as the
    // tuning micro-benchmarks do.
    for (unsigned Region = 0; Region != Chip->NumBanks; ++Region)
      Weak = std::max(
          Weak, Runner.countWeak(*P, Distance,
                                 litmus::LitmusRunner::MicroStress::at(
                                     Tuned.Seq, Region * Tuned.PatchWords),
                                 Runs, RunOpts));
  } else {
    Weak = Runner.countWeak(*P, Distance,
                            litmus::LitmusRunner::MicroStress::none(), Runs,
                            RunOpts);
  }
  std::printf("%s d=%u on %s%s%s: %u/%u weak (%.2f%%)\n",
              P->Name.c_str(), Distance, Chip->ShortName,
              Opts.has("stress") ? " +tuned-stress" : "",
              RunOpts.WithFences ? " +fences" : "", Weak, Runs,
              100.0 * Weak / Runs);
  return 0;
}

int cmdTune(const Options &Opts) {
  const sim::ChipProfile *Chip = chipOrDie(Opts);
  ThreadPool Pool = makePool(Opts);
  // The idiom trio the pipeline scores against (Fig. 2 by default). The
  // Pareto machinery is three-objective, so re-tuning against new idioms
  // means swapping the trio, not growing it.
  std::array<const litmus::Program *, 3> Tests = litmus::tuningPrograms();
  if (Opts.has("tests")) {
    const auto Names = splitCsv(Opts.getString("tests", ""));
    if (Names.size() != 3) {
      std::fprintf(stderr,
                   "error: --tests needs exactly three catalog names, got "
                   "%zu\n",
                   Names.size());
      return 2;
    }
    for (size_t I = 0; I != 3; ++I) {
      Tests[I] = catalogTestOrNull(Names[I]);
      if (!Tests[I])
        return 2;
    }
  }
  tuning::Tuner Tuner(*Chip, static_cast<uint64_t>(Opts.getInt("seed", 7)),
                      Tests);
  const auto R = Tuner.tune(Opts.getDouble("scale", 1.0) *
                            experimentScale(), &Pool);
  std::printf("%s: critical patch size %u, sequence \"%s\", spread %u "
              "(%llu executions, %.1f s, %u jobs)\n",
              Chip->ShortName, R.Params.PatchWords,
              R.Params.Seq.str().c_str(), R.Params.Spread,
              static_cast<unsigned long long>(R.Executions),
              R.WallSeconds, Pool.jobs());
  return 0;
}

/// Under --engine=batched, refuses (exit 2) an application the compiler
/// cannot lower; --engine=auto falls back to the scalar engine silently.
void dieIfBatchedUnlowerable(apps::AppKind App) {
  if (sim::engineMode() != sim::EngineMode::Batched ||
      apps::appLowerable(App))
    return;
  std::fprintf(stderr,
               "error: --engine=batched, but app '%s' does not lower to "
               "the batched engine (irregular control flow); drop the "
               "flag or use --engine=auto for automatic fallback\n",
               apps::appName(App));
  std::exit(2);
}

int cmdTest(const Options &Opts) {
  const sim::ChipProfile *Chip = chipOrDie(Opts);
  const auto App = apps::parseAppName(Opts.getString("app", "cbe-dot"));
  if (!App) {
    std::fprintf(stderr, "error: unknown app\n");
    return 2;
  }
  dieIfBatchedUnlowerable(*App);
  const auto Env =
      stress::Environment::parse(Opts.getString("env", "sys-str+"));
  if (!Env) {
    std::fprintf(stderr, "error: unknown environment\n");
    return 2;
  }
  const unsigned Runs =
      static_cast<unsigned>(Opts.getInt("runs", scaledCount(200)));
  ThreadPool Pool = makePool(Opts);
  const auto Cell = harness::runCell(
      *App, *Chip, *Env, stress::TunedStressParams::paperDefaults(*Chip),
      Runs, static_cast<uint64_t>(Opts.getInt("seed", 1)), &Pool);
  std::printf("%s on %s under %s: %u/%u erroneous (%u timeouts) -> %s\n",
              apps::appName(*App), Chip->ShortName, Env->name().c_str(),
              Cell.Errors, Cell.Runs, Cell.Timeouts,
              Cell.effective()    ? "EFFECTIVE (>5%)"
              : Cell.observed()   ? "observed"
                                  : "no errors");
  return 0;
}

int cmdHarden(const Options &Opts) {
  const sim::ChipProfile *Chip = chipOrDie(Opts);
  const auto App = apps::parseAppName(Opts.getString("app", "cbe-dot"));
  if (!App) {
    std::fprintf(stderr, "error: unknown app\n");
    return 2;
  }
  dieIfBatchedUnlowerable(*App);
  const unsigned StableRuns = static_cast<unsigned>(
      Opts.getInt("stable-runs", scaledCount(300)));
  ThreadPool Pool = makePool(Opts);
  harden::AppCheckOracle Oracle(
      *App, *Chip, static_cast<uint64_t>(Opts.getInt("seed", 1)),
      StableRuns, &Pool);
  const unsigned NumSites = apps::appNumSites(*App);
  const auto R = harden::empiricalFenceInsertion(
      sim::FencePolicy::all(NumSites), Oracle);
  const auto Instance = apps::makeApp(*App);
  std::printf("%s on %s: %u -> %u fences (%s, %u round(s), %.2f s)\n",
              apps::appName(*App), Chip->ShortName, NumSites,
              R.Fences.count(), R.Stable ? "stable" : "NOT STABLE",
              R.Rounds, R.WallSeconds);
  for (unsigned S : R.Fences.sites())
    std::printf("  fence after: %s\n", Instance->siteName(S));
  return R.Stable ? 0 : 1;
}

int cmdFuzz(const Options &Opts) {
  const sim::ChipProfile *Chip = chipOrDie(Opts);
  fuzz::BatchConfig Cfg;
  Cfg.Programs =
      static_cast<unsigned>(Opts.getInt("programs", scaledCount(20)));
  Cfg.RunsPerProgram =
      static_cast<unsigned>(Opts.getInt("runs", scaledCount(40)));

  // --shrink operates on one imported case, never on generated batches.
  if (Opts.has("shrink") && !Opts.has("file")) {
    std::fprintf(stderr, "error: --shrink needs --file=T.litmus (the weak "
                         "case to reduce)\n");
    return 2;
  }

  // --file: re-fuzz one imported .litmus case (e.g. a prior export)
  // against its exhaustive SC set instead of generating programs.
  if (Opts.has("file")) {
    const std::string Path = Opts.getString("file", "");
    std::optional<litmus::Program> L = loadLitmusFile(Path);
    if (!L)
      return 2;

    // --shrink: delta-debug the case down to a minimal program that still
    // provokes the same forbidden outcome as a weak behaviour (every
    // candidate is re-validated by the axiomatic checker).
    if (Opts.has("shrink")) {
      fuzz::ShrinkOptions SOpts;
      SOpts.Distance = static_cast<unsigned>(
          Opts.getInt("distance", 2 * Chip->PatchSizeWords));
      SOpts.RunsPerAttempt = static_cast<unsigned>(
          Opts.getInt("runs", scaledCount(250)));
      SOpts.Seed = static_cast<uint64_t>(Opts.getInt("seed", 1));
      const fuzz::ShrinkResult R =
          fuzz::shrinkWeakProgram(*L, *Chip, SOpts);
      // A streaming/post-hoc verdict disagreement on any consulted run is
      // a hard failure: the reduction was driven by a diverging oracle
      // and its output must not be trusted (or committed to a corpus).
      if (!R.OracleError.empty()) {
        std::fprintf(stderr,
                     "error: consistency checkers disagreed during "
                     "shrink (reduction aborted): %s\n",
                     R.OracleError.c_str());
        return 1;
      }
      if (!R.Reproduced) {
        std::fprintf(stderr,
                     "error: '%s' did not provoke its forbidden outcome "
                     "as a weak behaviour on %s; nothing to shrink\n",
                     Path.c_str(), Chip->ShortName);
        return 1;
      }
      std::printf("shrunk: %u -> %u instructions (%u candidates tried, "
                  "%u reductions kept the weak outcome)\n",
                  R.OriginalOps, R.ReducedOps, R.Candidates, R.Accepted);
      std::printf("oracle: %llu streaming/post-hoc cross-checks, all "
                  "agreed\n",
                  static_cast<unsigned long long>(R.CrossChecks));
      const std::string Text = litmus::printLitmus(R.Reduced);
      if (Opts.has("out")) {
        const std::string OutPath = Opts.getString("out", "");
        std::ofstream OS(OutPath);
        if (!OS) {
          std::fprintf(stderr, "error: cannot write '%s'\n",
                       OutPath.c_str());
          return 1;
        }
        OS << Text;
        std::printf("wrote %s\n", OutPath.c_str());
      } else {
        std::fputs(Text.c_str(), stdout);
      }
      return 0;
    }
    std::string Why;
    std::optional<fuzz::Program> P = fuzz::fromLitmusProgram(*L, &Why);
    if (!P) {
      std::fprintf(stderr, "error: '%s' is not fuzzable: %s\n",
                   Path.c_str(), Why.c_str());
      return 2;
    }
    const fuzz::FuzzResult R = fuzz::fuzzProgram(
        *P, *Chip, Cfg.RunsPerProgram,
        static_cast<uint64_t>(Opts.getInt("seed", 1)), /*Stressed=*/true);
    std::printf("%s%s: %u/%u non-SC outcomes (%u distinct, SC set %zu)\n",
                P->str().c_str(), L->Name.c_str(), R.WeakOutcomes, R.Runs,
                R.DistinctWeak, R.ScSetSize);
    return 0;
  }

  ThreadPool Pool = makePool(Opts);
  const auto Batch = fuzz::fuzzBatch(
      *Chip, Cfg, static_cast<uint64_t>(Opts.getInt("seed", 1)), &Pool);
  unsigned WeakProgs = 0;
  for (size_t I = 0; I != Batch.size(); ++I) {
    const fuzz::FuzzResult &R = Batch[I].R;
    if (R.WeakOutcomes == 0)
      continue;
    ++WeakProgs;
    std::printf("program %zu: %u/%u non-SC outcomes (%u distinct, SC set "
                "%zu)\n%s",
                I, R.WeakOutcomes, R.Runs, R.DistinctWeak, R.ScSetSize,
                Batch[I].P.str().c_str());
    // --export-weak: shrink the failing case to a replayable .litmus
    // artifact whose forbidden clause pins the first observed non-SC
    // outcome (re-run with `gpuwmm litmus --file` or `gpuwmm fuzz
    // --file`).
    if (Opts.has("export-weak")) {
      const std::string Path = Opts.getString("export-weak", ".") +
                               "/fuzz-" + std::to_string(I) + ".litmus";
      std::string Name = "fuzz-";
      Name += std::to_string(I);
      std::ofstream OS(Path);
      if (!OS) {
        std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
        return 1;
      }
      OS << litmus::printLitmus(
          fuzz::toLitmusProgram(Batch[I].P, Name, &R.FirstWeak));
      std::printf("  exported to %s\n", Path.c_str());
    }
  }
  std::printf("%u/%u programs exhibited weak outcomes under sys-str+\n",
              WeakProgs, Cfg.Programs);
  return 0;
}

/// `gpuwmm hunt`: the closed-loop bug-mining pipeline (hunt/Hunt.h) —
/// fuzz, shrink, dedupe, harden, verify, with an optional crash-safe
/// on-disk corpus. Exit 1 when the hardened corpus is not oracle-clean or
/// the pipeline hard-failed (checker disagreement, corpus I/O); exit 2 on
/// usage errors.
int cmdHunt(const Options &Opts) {
  const sim::ChipProfile *Chip = chipOrDie(Opts);
  hunt::HuntConfig Cfg;
  Cfg.Chip = Chip;
  Cfg.Rounds = static_cast<unsigned>(Opts.getInt("rounds", 4));
  Cfg.Fuzz.Programs =
      static_cast<unsigned>(Opts.getInt("programs", scaledCount(20)));
  Cfg.Fuzz.RunsPerProgram =
      static_cast<unsigned>(Opts.getInt("runs", scaledCount(40)));
  Cfg.Distance = static_cast<unsigned>(
      Opts.getInt("distance", 2 * Chip->PatchSizeWords));
  Cfg.ShrinkRuns =
      static_cast<unsigned>(Opts.getInt("shrink-runs", scaledCount(200)));
  Cfg.HardenRuns = static_cast<unsigned>(Opts.getInt("harden-runs", 32));
  Cfg.StableRuns =
      static_cast<unsigned>(Opts.getInt("stable-runs", scaledCount(300)));
  Cfg.VerifyRuns =
      static_cast<unsigned>(Opts.getInt("verify-runs", scaledCount(200)));
  Cfg.Seed = static_cast<uint64_t>(Opts.getInt("seed", 1));
  Cfg.CorpusDir = Opts.getString("corpus-dir", "");
  Cfg.Resume = Opts.has("resume");
  if (Cfg.Resume && Cfg.CorpusDir.empty()) {
    std::fprintf(stderr, "error: --resume requires --corpus-dir=DIR (the "
                         "corpus to extend)\n");
    return 2;
  }
  // Crash-injection test hook, as the campaign fabric's: SIGKILL this
  // process right after the Nth durable corpus append.
  if (const char *Env = std::getenv("GPUWMM_HUNT_CRASH_AFTER")) {
    char *End = nullptr;
    const long long N = std::strtoll(Env, &End, 10);
    if (*Env && !*End && N > 0)
      Cfg.CrashAfterAppends = static_cast<unsigned>(N);
    else
      std::fprintf(stderr,
                   "warning: ignoring invalid GPUWMM_HUNT_CRASH_AFTER="
                   "'%s'\n",
                   Env);
  }

  ThreadPool Pool = makePool(Opts);
  const auto Start = std::chrono::steady_clock::now();
  hunt::HuntReport Report;
  std::string Err;
  if (!hunt::runHunt(Cfg, &Pool, Report, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  const double WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    Start)
          .count();
  for (const std::string &W : Report.Warnings)
    std::fprintf(stderr, "warning: %s\n", W.c_str());

  // Wall time goes to stderr only: the JSON report is byte-identical
  // across machines, --jobs and --batch values for one config.
  std::fprintf(stderr,
               "hunt: %u round(s) [%u..%u): %llu programs fuzzed, %llu "
               "weak, %llu shrunk into %llu new entr%s (%llu duplicate(s), "
               "%llu not reproduced) in %.2f s (%u jobs)\n",
               Report.RoundsRun, Report.StartRound,
               Report.StartRound + Report.RoundsRun,
               static_cast<unsigned long long>(Report.ProgramsFuzzed),
               static_cast<unsigned long long>(Report.WeakPrograms),
               static_cast<unsigned long long>(Report.ShrinkAccepted),
               static_cast<unsigned long long>(Report.NewEntries),
               Report.NewEntries == 1 ? "y" : "ies",
               static_cast<unsigned long long>(Report.Duplicates),
               static_cast<unsigned long long>(Report.NotReproduced),
               WallSeconds, Pool.jobs());
  std::fprintf(stderr,
               "hunt oracle: corpus of %zu, %llu hardened runs checked, "
               "%llu weak, %llu axiom cross-checks during shrink — %s\n",
               Report.Entries.size(),
               static_cast<unsigned long long>(Report.OracleChecked),
               static_cast<unsigned long long>(Report.OracleWeak),
               static_cast<unsigned long long>(Report.CrossChecks),
               Report.clean() ? "clean" : "NOT CLEAN");

  const std::string Out = Opts.getString("out", "-");
  if (Out == "-") {
    hunt::writeHuntJson(Report, std::cout);
  } else {
    std::ofstream OS(Out);
    if (!OS) {
      std::fprintf(stderr, "error: cannot write '%s'\n", Out.c_str());
      return 1;
    }
    hunt::writeHuntJson(Report, OS);
  }
  return Report.clean() ? 0 : 1;
}

/// `campaign --out-dir=DIR [--resume] [--cells=A..B,K]`: one fabric
/// worker. Validates the striping spec against the grid's work list
/// (exit 2 on malformed input, matching the getPositiveInt convention),
/// runs the selected cells, and appends one fsync'd record each.
int runShardedCampaign(const harness::CampaignConfig &Config,
                       const Options &Opts) {
  const std::string Dir = Opts.getString("out-dir", "");
  if (Dir.empty()) {
    std::fprintf(stderr, "error: --out-dir needs a directory path\n");
    return 2;
  }
  const size_t NumCells = harness::buildWorkList(Config).size();
  std::optional<std::vector<size_t>> Selection;
  if (Opts.has("cells")) {
    std::string Err;
    Selection = harness::parseCellSelection(Opts.getString("cells", ""),
                                            NumCells, Err);
    if (!Selection) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 2;
    }
  }

  harness::FabricOptions FOpts;
  FOpts.Dir = Dir;
  FOpts.Resume = Opts.has("resume");
  FOpts.Selection = Selection ? &*Selection : nullptr;
  // Crash-injection test hook: SIGKILL this worker right after the Nth
  // durable append. Invalid values warn and are ignored, like
  // GPUWMM_JOBS.
  if (const char *Env = std::getenv("GPUWMM_CAMPAIGN_CRASH_AFTER")) {
    char *End = nullptr;
    const long long N = std::strtoll(Env, &End, 10);
    if (*Env && !*End && N > 0)
      FOpts.CrashAfterAppends = static_cast<unsigned>(N);
    else
      std::fprintf(stderr,
                   "warning: ignoring invalid "
                   "GPUWMM_CAMPAIGN_CRASH_AFTER='%s'\n",
                   Env);
  }

  ThreadPool Pool = makePool(Opts);
  const auto Start = std::chrono::steady_clock::now();
  harness::FabricOutcome Out;
  std::string Err;
  if (!harness::runCampaignFabric(Config, FOpts, &Pool, Out, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 2;
  }
  const double WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    Start)
          .count();
  for (const std::string &W : Out.Warnings)
    std::fprintf(stderr, "warning: %s\n", W.c_str());
  std::fprintf(stderr,
               "campaign: %u/%zu cells completed (%u already durable) in "
               "%.2f s (%u jobs)%s%s\n",
               Out.Completed, NumCells, Out.Skipped, WallSeconds,
               Pool.jobs(), Out.ShardPath.empty() ? "" : ", shard ",
               Out.ShardPath.c_str());
  std::fprintf(stderr, "merge with: gpuwmm report --dir=%s\n",
               Dir.c_str());
  return Out.OracleViolations ? 1 : 0;
}

/// `gpuwmm report --dir=DIR [--out=FILE]`: merge a sharded campaign into
/// the schema-v2 JSON, byte-identical to the monolithic run. Exit 1 when
/// cells are missing (finish with `campaign --resume`), 2 on malformed
/// stores or usage.
int cmdReport(const Options &Opts) {
  if (!Opts.has("dir")) {
    std::fprintf(stderr, "error: report needs --dir=DIR (a campaign "
                         "directory written by campaign --out-dir)\n");
    return 2;
  }
  const std::string Dir = Opts.getString("dir", "");
  harness::CampaignReport Report;
  harness::MergeStats Stats;
  std::string Err;
  const bool Ok = harness::mergeCampaignShards(Dir, Report, Stats, &Err);
  for (const std::string &W : Stats.Warnings)
    std::fprintf(stderr, "warning: %s\n", W.c_str());
  if (!Ok) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    // Incomplete-but-well-formed stores are resumable, not malformed.
    return Stats.MissingCells.empty() ? 2 : 1;
  }
  std::fprintf(stderr,
               "report: merged %zu cells from %u shard(s) in %s (%u "
               "duplicate record(s) deduped, %u torn tail(s) truncated)\n",
               Stats.CellsMerged, Stats.ShardFiles, Dir.c_str(),
               Stats.Duplicates, Stats.TornShards);

  const std::string Out = Opts.getString("out", "-");
  if (Out == "-") {
    harness::writeCampaignJson(Report, std::cout);
  } else {
    std::ofstream OS(Out);
    if (!OS) {
      std::fprintf(stderr, "error: cannot write '%s'\n", Out.c_str());
      return 1;
    }
    harness::writeCampaignJson(Report, OS);
  }
  return 0;
}

int cmdCampaign(const Options &Opts) {
  harness::CampaignConfig Config = harness::CampaignConfig::full();
  if (Opts.has("chips")) {
    Config.Chips.clear();
    for (const std::string &Name : splitCsv(Opts.getString("chips", ""))) {
      const sim::ChipProfile *Chip = sim::ChipProfile::lookup(Name);
      if (!Chip) {
        std::fprintf(stderr, "error: unknown chip '%s'\n", Name.c_str());
        return 2;
      }
      Config.Chips.push_back(Chip);
    }
  }
  if (Opts.has("envs")) {
    Config.Envs.clear();
    for (const std::string &Name : splitCsv(Opts.getString("envs", ""))) {
      const auto Env = stress::Environment::parse(Name);
      if (!Env) {
        std::fprintf(stderr, "error: unknown environment '%s'\n",
                     Name.c_str());
        return 2;
      }
      Config.Envs.push_back(*Env);
    }
  }
  if (Opts.has("apps")) {
    Config.Apps.clear();
    for (const std::string &Name : splitCsv(Opts.getString("apps", ""))) {
      const auto App = apps::parseAppName(Name);
      if (!App) {
        std::fprintf(stderr, "error: unknown app '%s'\n", Name.c_str());
        return 2;
      }
      Config.Apps.push_back(*App);
    }
  }
  if (Opts.has("litmus")) {
    for (const std::string &Name : splitCsv(Opts.getString("litmus", ""))) {
      const litmus::Program *P = catalogTestOrNull(Name);
      if (!P)
        return 2;
      Config.LitmusTests.push_back(P);
    }
  }
  if (Config.Chips.empty() || Config.Envs.empty() || Config.Apps.empty()) {
    std::fprintf(stderr, "error: empty campaign grid\n");
    return 2;
  }
  for (apps::AppKind App : Config.Apps)
    dieIfBatchedUnlowerable(App);
  Config.Runs =
      static_cast<unsigned>(Opts.getInt("runs", scaledCount(100)));
  Config.Seed = static_cast<uint64_t>(Opts.getInt("seed", 1));
  // --oracle=N: stream every Nth run of every cell through the
  // incremental checker (validated as a positive integer; 0 = off).
  // --oracle=all verifies every run (N=1): the streaming checker's
  // memory is bounded by its frontier, not the run length, so checking
  // everything is affordable.
  if (Opts.has("oracle") && Opts.getString("oracle", "") == "all")
    Config.OracleEvery = 1;
  else
    Config.OracleEvery = static_cast<unsigned>(
        Opts.has("oracle") ? Opts.getPositiveInt("oracle", 0, 1 << 20) : 0);

  // --out-dir: run as a sharded fabric worker (one durable record per
  // cell) instead of emitting a monolithic JSON; `gpuwmm report` merges.
  const bool Sharded = Opts.has("out-dir");
  if ((Opts.has("resume") || Opts.has("cells")) && !Sharded) {
    std::fprintf(stderr, "error: --resume and --cells require "
                         "--out-dir=DIR (the sharded campaign store)\n");
    return 2;
  }
  if (Sharded && Opts.has("out")) {
    std::fprintf(stderr,
                 "error: choose --out=FILE (monolithic JSON) or "
                 "--out-dir=DIR (sharded store), not both; merge shards "
                 "with: gpuwmm report --dir=DIR\n");
    return 2;
  }
  if (Sharded)
    return runShardedCampaign(Config, Opts);

  ThreadPool Pool = makePool(Opts);
  const auto Start = std::chrono::steady_clock::now();
  const harness::CampaignReport Report =
      harness::runCampaign(Config, &Pool);
  const double WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();

  // Wall time goes to stderr only: the JSON report is byte-identical
  // across machines and --jobs values for one seed.
  std::fprintf(stderr, "campaign: %zu cells x %u runs in %.2f s (%u jobs)\n",
               Report.Cells.size(), Config.Runs, WallSeconds, Pool.jobs());

  unsigned OracleChecked = 0, OracleViolations = 0;
  if (Config.OracleEvery) {
    for (const harness::CampaignCell &Cell : Report.Cells) {
      OracleChecked += Cell.OracleChecked;
      OracleViolations += Cell.OracleViolations;
    }
    for (const harness::LitmusCampaignCell &Cell : Report.LitmusCells) {
      OracleChecked += Cell.OracleChecked;
      OracleViolations += Cell.OracleViolations;
    }
    std::fprintf(stderr, "campaign oracle: %u runs cross-checked, "
                         "%u violation(s)\n",
                 OracleChecked, OracleViolations);
  }

  const std::string Out = Opts.getString("out", "-");
  if (Out == "-") {
    harness::writeCampaignJson(Report, std::cout);
  } else {
    std::ofstream OS(Out);
    if (!OS) {
      std::fprintf(stderr, "error: cannot write '%s'\n", Out.c_str());
      return 1;
    }
    harness::writeCampaignJson(Report, OS);
  }
  return OracleViolations ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  const char *Cmd = Argv[1];
  Options Opts(Argc, Argv);
  // --jobs is a common option: validate it for every command (exits with
  // a clear error on 0, negative, non-numeric or absurdly large values).
  (void)Opts.getPositiveInt("jobs", 0, MaxJobs);
  // --batch is equally common: the batched engine's seeds-per-batch width
  // (amortisation only — results are identical for every width). 0 keeps
  // the auto resolution (GPUWMM_BATCH, else 64).
  if (const int64_t Batch =
          Opts.getPositiveInt("batch", 0, sim::MaxBatchWidth))
    sim::setDefaultBatchWidth(static_cast<unsigned>(Batch));
  // --engine selects the execution engine globally (results are
  // engine-independent; batched additionally refuses kernels that cannot
  // lower). An explicit flag must parse, unlike GPUWMM_ENGINE which
  // warns and falls back.
  if (Opts.has("engine")) {
    const std::string Name = Opts.getString("engine", "");
    const auto Mode = sim::parseEngineMode(Name);
    if (!Mode) {
      std::fprintf(stderr, "error: invalid --engine='%s' (must be auto, "
                           "scalar or batched)\n",
                   Name.c_str());
      return 2;
    }
    sim::setEngineMode(*Mode);
  }
  if (!std::strcmp(Cmd, "chips"))
    return cmdChips();
  if (!std::strcmp(Cmd, "litmus")) {
    if (Argc >= 3 && !std::strcmp(Argv[2], "list"))
      return cmdLitmusList();
    return cmdLitmus(Opts);
  }
  if (!std::strcmp(Cmd, "tune"))
    return cmdTune(Opts);
  if (!std::strcmp(Cmd, "test"))
    return cmdTest(Opts);
  if (!std::strcmp(Cmd, "harden"))
    return cmdHarden(Opts);
  if (!std::strcmp(Cmd, "fuzz"))
    return cmdFuzz(Opts);
  if (!std::strcmp(Cmd, "hunt"))
    return cmdHunt(Opts);
  if (!std::strcmp(Cmd, "campaign"))
    return cmdCampaign(Opts);
  if (!std::strcmp(Cmd, "report"))
    return cmdReport(Opts);
  return usage();
}
