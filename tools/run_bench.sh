#!/usr/bin/env bash
# Runs every built gpuwmm benchmark binary and emits a JSON summary
# (per-bench wall seconds + exit status) for BENCH_*.json tracking.
#
# usage: tools/run_bench.sh [build-dir] [out.json]
#
# Build the benchmarks first:
#   cmake -B build -S . -DGPUWMM_BUILD_BENCH=ON && cmake --build build -j
#
# GPUWMM_SCALE applies as usual; e.g. GPUWMM_SCALE=0.1 for a quick pass.

set -u

BUILD_DIR="${1:-build}"
OUT="${2:-bench-results.json}"
BENCH_DIR="$BUILD_DIR/bench"
LOG_DIR="$BUILD_DIR/bench-logs"

if [ ! -d "$BENCH_DIR" ]; then
  echo "error: $BENCH_DIR not found; configure with -DGPUWMM_BUILD_BENCH=ON" >&2
  exit 2
fi

mkdir -p "$LOG_DIR"
failed=0

BENCHES=()
for b in "$BENCH_DIR"/bench_*; do
  [ -x "$b" ] && [ -f "$b" ] && BENCHES+=("$b")
done
if [ "${#BENCHES[@]}" -eq 0 ]; then
  echo "error: no bench binaries in $BENCH_DIR" >&2
  exit 2
fi

# Host parallelism context: bench_parallel_scaling (and any bench run
# with GPUWMM_JOBS set) depends on it, so record it alongside the scale.
NPROC="$(nproc 2>/dev/null || echo 1)"

{
  printf '{\n'
  printf '  "schema": "gpuwmm-bench-v1",\n'
  printf '  "scale": "%s",\n' "${GPUWMM_SCALE:-1}"
  printf '  "jobs": "%s",\n' "${GPUWMM_JOBS:-auto}"
  printf '  "host_cores": %s,\n' "$NPROC"
  printf '  "results": [\n'
  first=1
  for b in "${BENCHES[@]}"; do
    name="$(basename "$b")"
    log="$LOG_DIR/$name.log"
    echo "== $name" >&2
    start=$(date +%s.%N)
    "$b" >"$log" 2>&1
    status=$?
    if [ "$status" -ne 0 ]; then
      failed=1
      echo "   FAILED (exit $status), see $log" >&2
    fi
    end=$(date +%s.%N)
    secs=$(awk -v a="$start" -v b="$end" 'BEGIN { printf "%.3f", b - a }')
    [ "$first" -eq 1 ] || printf ',\n'
    first=0
    printf '    {"name": "%s", "seconds": %s, "exit": %d, "log": "%s"}' \
      "$name" "$secs" "$status" "$log"
  done
  printf '\n  ]\n}\n'
} > "$OUT"

echo "wrote $OUT (logs in $LOG_DIR)" >&2
exit "$failed"
