//===- stress/Environment.h - The eight testing environments ----*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The eight testing environments of the paper's Sec. 4.2: the cross
/// product of four stressing strategies (no-str, sys-str, rand-str,
/// cache-str) with thread randomisation enabled (+) or disabled (-), plus
/// the per-chip tuned stressing parameters of Tab. 2.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_STRESS_ENVIRONMENT_H
#define GPUWMM_STRESS_ENVIRONMENT_H

#include "sim/Device.h"
#include "stress/AccessSequence.h"
#include "stress/StressSources.h"
#include "support/Rng.h"

#include <array>
#include <memory>
#include <optional>
#include <string>

namespace gpuwmm {
namespace stress {

/// The four stressing strategies.
enum class StressKind { None, Sys, Rand, Cache };

const char *stressKindName(StressKind K);

/// Per-chip tuned sys-str parameters (the output of the Sec. 3 tuning
/// pipeline; Tab. 2 of the paper).
struct TunedStressParams {
  unsigned PatchWords = 32;       ///< Critical patch size.
  AccessSequence Seq;             ///< Most effective access sequence.
  unsigned Spread = 2;            ///< Locations stressed simultaneously.
  unsigned ScratchRegions = 64;   ///< Patch-sized regions in the scratchpad.

  /// The paper's published Tab. 2 values for \p Chip (used by the
  /// application experiments; bench_tuning_summary re-derives them with
  /// our own tuner and compares).
  static TunedStressParams paperDefaults(const sim::ChipProfile &Chip);
};

/// One testing environment: a stressing strategy with or without thread
/// randomisation, e.g. "sys-str+".
struct Environment {
  StressKind Kind = StressKind::None;
  bool Randomise = false;

  std::string name() const;

  /// All eight environments in the paper's Tab. 5 column order.
  static const std::array<Environment, 8> &all();

  /// Parses e.g. "sys-str+"; returns nullopt for unknown names.
  static std::optional<Environment> parse(const std::string &Name);
};

/// Instantiates \p Env on \p Dev for one application or litmus execution:
/// allocates the scratchpad (for sys-str, so that its bank mapping is
/// real), draws the per-run random stressing population and locations, and
/// installs the congestion source and thread-randomisation flag.
///
/// The returned source owns the per-run stress state and must outlive the
/// run. \p OccLo / \p OccHi bound the random stressing population as a
/// fraction of the chip's maximum concurrent threads (the paper uses
/// 50-100% for micro-benchmarks and scales stressing blocks against the
/// application's launch for case studies).
std::unique_ptr<sim::CongestionSource>
applyEnvironment(const Environment &Env, sim::Device &Dev,
                 const TunedStressParams &Tuned, Rng &R,
                 double OccLo = 0.5, double OccHi = 1.0);

} // namespace stress
} // namespace gpuwmm

#endif // GPUWMM_STRESS_ENVIRONMENT_H
