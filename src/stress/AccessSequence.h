//===- stress/AccessSequence.h - Stressing access sequences -----*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Access sequences σ ∈ (ld|st)* executed by stressing threads in a loop
/// (paper Sec. 3.3), together with the traffic model that converts a
/// sequence into per-tick bank pressure.
///
/// The traffic model captures why the paper's most effective sequences mix
/// loads and stores while pure-store sequences rank at the bottom of
/// Tab. 3: consecutive stores write-combine and consecutive loads hit in
/// cache, so only alternations generate full memory-system pressure. The
/// loop boundary partially breaks these streaks, which is why two sequences
/// equivalent under rotation can behave differently (the paper observed
/// exactly this and therefore tests all 63 sequences).
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_STRESS_ACCESSSEQUENCE_H
#define GPUWMM_STRESS_ACCESSSEQUENCE_H

#include "sim/Congestion.h"

#include <cassert>
#include <string>
#include <vector>

namespace gpuwmm {
namespace stress {

/// One stressing access sequence of up to MaxLength loads/stores.
///
/// The empty sequence is valid (a pure delay loop); with MaxLength = 5 this
/// gives the paper's 2^(N+1) - 1 = 63 sequences.
class AccessSequence {
public:
  static constexpr unsigned MaxLength = 5;

  /// The empty sequence.
  AccessSequence() = default;

  /// Builds from explicit ops; true = store, false = load.
  explicit AccessSequence(const std::vector<bool> &Ops);

  /// All 63 sequences of length 0..MaxLength.
  static std::vector<AccessSequence> enumerateAll();

  /// Parses compressed notation, e.g. "ld3 st ld" or "st2 ld2" or "empty".
  /// Returns the empty sequence for unparsable input.
  static AccessSequence parse(const std::string &Text);

  unsigned length() const { return Length; }
  bool isStore(unsigned I) const {
    assert(I < Length && "op index out of range");
    return (Bits >> I) & 1u;
  }

  /// Compressed notation as used in the paper ("ld3 st ld").
  std::string str() const;

  /// Per-tick pressure one warp-normalised thread unit of this sequence
  /// generates on its target bank.
  ///
  /// The model: the loop body is scanned left to right; each op's weight
  /// depends on its predecessor (the first op's predecessor is the loop
  /// boundary). Streaks are cheap (write-combining / cache hits),
  /// alternations are expensive, and the total is divided by the loop's
  /// tick cost (ops + loop overhead).
  sim::BankPressure trafficPerTick() const;

  bool operator==(const AccessSequence &O) const {
    return Length == O.Length && Bits == O.Bits;
  }
  bool operator<(const AccessSequence &O) const {
    if (Length != O.Length)
      return Length < O.Length;
    return Bits < O.Bits;
  }

private:
  unsigned Length = 0;
  unsigned Bits = 0; ///< Bit I set = op I is a store.
};

} // namespace stress
} // namespace gpuwmm

#endif // GPUWMM_STRESS_ACCESSSEQUENCE_H
