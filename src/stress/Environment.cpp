//===- stress/Environment.cpp - The eight testing environments --------------===//

#include "stress/Environment.h"

#include <cassert>

using namespace gpuwmm;
using namespace gpuwmm::stress;

const char *stress::stressKindName(StressKind K) {
  switch (K) {
  case StressKind::None:
    return "no-str";
  case StressKind::Sys:
    return "sys-str";
  case StressKind::Rand:
    return "rand-str";
  case StressKind::Cache:
    return "cache-str";
  }
  return "unknown";
}

TunedStressParams
TunedStressParams::paperDefaults(const sim::ChipProfile &Chip) {
  TunedStressParams P;
  P.PatchWords = Chip.PatchSizeWords;
  P.Spread = 2;
  // Tab. 2 of the paper.
  const std::string_view Short = Chip.ShortName;
  if (Short == "980")
    P.Seq = AccessSequence::parse("ld4 st");
  else if (Short == "k5200")
    P.Seq = AccessSequence::parse("ld3 st ld");
  else if (Short == "titan" || Short == "k20")
    P.Seq = AccessSequence::parse("ld st2 ld");
  else if (Short == "770")
    P.Seq = AccessSequence::parse("st2 ld2");
  else // c2075, c2050
    P.Seq = AccessSequence::parse("ld st");
  return P;
}

std::string Environment::name() const {
  return std::string(stressKindName(Kind)) + (Randomise ? "+" : "-");
}

const std::array<Environment, 8> &Environment::all() {
  static const std::array<Environment, 8> Envs = {{
      {StressKind::None, false},
      {StressKind::None, true},
      {StressKind::Sys, false},
      {StressKind::Sys, true},
      {StressKind::Rand, false},
      {StressKind::Rand, true},
      {StressKind::Cache, false},
      {StressKind::Cache, true},
  }};
  return Envs;
}

std::optional<Environment> Environment::parse(const std::string &Name) {
  for (const Environment &E : all())
    if (E.name() == Name)
      return E;
  return std::nullopt;
}

std::unique_ptr<sim::CongestionSource>
stress::applyEnvironment(const Environment &Env, sim::Device &Dev,
                         const TunedStressParams &Tuned, Rng &R,
                         double OccLo, double OccHi) {
  Dev.setRandomiseThreads(Env.Randomise);
  if (Env.Kind == StressKind::None)
    return nullptr;

  const sim::ChipProfile &Chip = Dev.chip();
  const unsigned MaxThreads = Chip.maxConcurrentThreads();
  const unsigned StressThreads = static_cast<unsigned>(
      R.realIn(OccLo, OccHi) * static_cast<double>(MaxThreads));
  const double Units = threadUnits(Chip, StressThreads);

  std::unique_ptr<sim::CongestionSource> Src;
  switch (Env.Kind) {
  case StressKind::Sys: {
    // Allocate a real scratchpad so stressed locations have genuine
    // addresses (and thus genuine banks) in the device's address space.
    const unsigned Regions = Tuned.ScratchRegions;
    const sim::Addr Scratch = Dev.alloc(Regions * Tuned.PatchWords);
    const unsigned Spread = std::min(Tuned.Spread, Regions);
    std::vector<sim::Addr> Locs;
    for (unsigned Region : R.sampleDistinct(Spread, Regions))
      Locs.push_back(Scratch + Region * Tuned.PatchWords);
    Src = std::make_unique<SysStress>(Chip, Tuned.Seq, std::move(Locs),
                                      Units);
    break;
  }
  case StressKind::Rand:
    Src = std::make_unique<RandStress>(Chip, Units, R.next());
    break;
  case StressKind::Cache:
    Src = std::make_unique<CacheStress>(Chip, Units, R.next());
    break;
  case StressKind::None:
    break;
  }
  assert(Src && "stress source not constructed");
  Dev.setCongestionSource(Src.get());
  return Src;
}
