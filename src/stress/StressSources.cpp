//===- stress/StressSources.cpp - Stressing strategies -----------------------===//

#include "stress/StressSources.h"

#include <algorithm>
#include <cassert>

using namespace gpuwmm;
using namespace gpuwmm::stress;
using sim::BankPressure;

double stress::threadUnits(const sim::ChipProfile &Chip,
                           unsigned StressThreads) {
  return 56.0 * static_cast<double>(StressThreads) /
         static_cast<double>(Chip.maxConcurrentThreads());
}

//===----------------------------------------------------------------------===//
// SysStress
//===----------------------------------------------------------------------===//

SysStress::SysStress(const sim::ChipProfile &Chip, AccessSequence Seq,
                     std::vector<sim::Addr> Locations, double Units)
    : Chip(Chip) {
  assert(!Locations.empty() && "sys-str needs at least one location");
  Banks.reserve(Locations.size());
  for (sim::Addr A : Locations)
    Banks.push_back(Chip.bankOf(A));
  Rate = Seq.trafficPerTick();
  setUnits(Units);
}

void SysStress::setUnits(double Units) {
  const double PerLoc = Units / static_cast<double>(Banks.size());
  PerLocation.Write = Rate.Write * PerLoc;
  PerLocation.Read = Rate.Read * PerLoc;
  // Saturate: one location absorbs only PerLocationCap units of pressure;
  // beyond that the stressing threads queue behind each other.
  const double Total = PerLocation.Write + PerLocation.Read;
  if (Total > PerLocationCap) {
    const double Scale = PerLocationCap / Total;
    PerLocation.Write *= Scale;
    PerLocation.Read *= Scale;
  }
}

BankPressure SysStress::pressureAt(uint64_t, unsigned Bank) const {
  BankPressure P;
  const unsigned NB = Chip.NumBanks;
  for (unsigned B : Banks) {
    if (B == Bank) {
      P += PerLocation;
      continue;
    }
    // Partial conflicts with adjacent banks.
    const bool Neighbour =
        Bank == (B + 1) % NB || (Bank + 1) % NB == B;
    if (Neighbour) {
      P.Write += PerLocation.Write * NeighbourSpill;
      P.Read += PerLocation.Read * NeighbourSpill;
    }
  }
  return P;
}

//===----------------------------------------------------------------------===//
// RandStress
//===----------------------------------------------------------------------===//

namespace {

/// Cheap stateless mixing for per-epoch pseudo-random choices.
uint64_t mix64(uint64_t X) {
  X ^= X >> 33;
  X *= 0xff51afd7ed558ccdULL;
  X ^= X >> 33;
  X *= 0xc4ceb9fe1a85ec53ULL;
  X ^= X >> 33;
  return X;
}

} // namespace

RandStress::RandStress(const sim::ChipProfile &Chip, double Units,
                       uint64_t RunSeed)
    : Chip(Chip), Units(Units), RunSeed(RunSeed) {}

BankPressure RandStress::pressureAt(uint64_t Tick, unsigned Bank) const {
  const double Total = Units * TrafficRate;
  BankPressure P;
  // Uniform smear over all banks (usually below the congestion threshold).
  const double Smeared =
      Total * (1.0 - HotFraction) / static_cast<double>(Chip.NumBanks);
  P.Write = 0.5 * Smeared;
  P.Read = 0.5 * Smeared;
  // Transient hot spots: in some epochs the random accesses momentarily
  // cluster on one bank; most epochs have no significant clustering.
  const uint64_t Epoch = Tick / HotEpochTicks;
  const uint64_t Mix = mix64(RunSeed ^ (Epoch * 0x9e3779b97f4a7c15ULL));
  const bool EpochHot = (Mix >> 32) % 8 == 0;
  if (EpochHot && Bank == Mix % Chip.NumBanks) {
    const double Hot = Total * HotFraction * 5.0;
    P.Write += 0.5 * Hot;
    P.Read += 0.5 * Hot;
  }
  return P;
}

//===----------------------------------------------------------------------===//
// CacheStress
//===----------------------------------------------------------------------===//

CacheStress::CacheStress(const sim::ChipProfile &Chip, double Units,
                         uint64_t RunSeed)
    : Chip(Chip), Units(Units), RunSeed(RunSeed) {}

BankPressure CacheStress::pressureAt(uint64_t Tick, unsigned Bank) const {
  // The sweep walks the L2-sized scratchpad linearly, so its instantaneous
  // focus is one bank, advancing every SweepDwellTicks. The sweep phase is
  // randomised per run.
  const uint64_t Phase = mix64(RunSeed) % Chip.NumBanks;
  const unsigned HotBank = static_cast<unsigned>(
      (Tick / SweepDwellTicks + Phase) % Chip.NumBanks);
  BankPressure P;
  if (Bank == HotBank) {
    const double Hot = Units * TrafficRate;
    P.Write = 0.5 * Hot;
    P.Read = 0.5 * Hot;
  }
  return P;
}
