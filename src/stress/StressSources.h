//===- stress/StressSources.h - Stressing strategies ------------*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory-stressing strategies of the paper as CongestionSource
/// implementations:
///
///  * SysStress  — the paper's contribution ("sys-str"): per-chip tuned
///    stress on a small spread of patch-aligned scratchpad locations with a
///    tuned access sequence. Pressure is focused on the banks of the
///    stressed locations (with a small spill onto neighbouring banks).
///  * RandStress — "rand-str": loads/stores to random scratchpad locations.
///    Total traffic is smeared over all banks (mostly below the congestion
///    threshold) with occasional transient hot spots.
///  * CacheStress — "cache-str": sequential sweeps over an L2-sized
///    scratchpad; a strong but constantly moving hot bank.
///
/// Intensities are expressed in warp-normalised thread units: a stressing
/// population of S threads on a chip with occupancy O contributes
/// 32 * S / O units, split evenly over its target locations.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_STRESS_STRESSSOURCES_H
#define GPUWMM_STRESS_STRESSSOURCES_H

#include "sim/ChipProfile.h"
#include "sim/Congestion.h"
#include "sim/Types.h"
#include "stress/AccessSequence.h"

#include <vector>

namespace gpuwmm {
namespace stress {

/// Converts a stressing thread count into warp-normalised units.
double threadUnits(const sim::ChipProfile &Chip, unsigned StressThreads);

/// The paper's systematically tuned stress ("sys-str").
class SysStress final : public sim::CongestionSource {
public:
  /// Stress is applied at the given absolute word addresses (normally the
  /// first word of distinct critical-patch-sized scratchpad regions) with
  /// \p Units thread units in total, split evenly across the locations.
  SysStress(const sim::ChipProfile &Chip, AccessSequence Seq,
            std::vector<sim::Addr> Locations, double Units);

  /// Re-targets the source at a new total intensity, keeping its access
  /// sequence and locations. Equivalent to constructing a fresh source
  /// with the same sequence/locations and \p Units — the hook that lets
  /// batched runners reuse one source across a batch while still drawing
  /// the per-run random stressing population (LitmusRunner::countWeak).
  void setUnits(double Units);

  sim::BankPressure pressureAt(uint64_t Tick, unsigned Bank) const override;

  const std::vector<unsigned> &stressedBanks() const { return Banks; }

private:
  const sim::ChipProfile &Chip;
  std::vector<unsigned> Banks;
  sim::BankPressure Rate;        ///< Sequence traffic per tick per unit.
  sim::BankPressure PerLocation; ///< Pressure each stressed bank receives.
  /// Fraction of a stressed bank's pressure that spills onto its
  /// neighbouring banks (partial set conflicts).
  static constexpr double NeighbourSpill = 0.12;
  /// A single location can only absorb so much traffic: beyond this the
  /// stressing threads queue behind each other and add no pressure. This
  /// is why stressing a single location wastes threads and a small spread
  /// of locations is optimal (paper Fig. 4).
  static constexpr double PerLocationCap = 8.5;
};

/// Straightforward random stressing ("rand-str").
class RandStress final : public sim::CongestionSource {
public:
  RandStress(const sim::ChipProfile &Chip, double Units, uint64_t RunSeed);

  sim::BankPressure pressureAt(uint64_t Tick, unsigned Bank) const override;

private:
  const sim::ChipProfile &Chip;
  double Units;
  uint64_t RunSeed;
  /// Random accesses average ~0.65 adjacency weight per op over a loop of
  /// one op + overhead; see AccessSequence::trafficPerTick.
  static constexpr double TrafficRate = 0.22;
  /// Transient hot spots: fraction of total traffic that momentarily
  /// clusters on one bank, re-rolled every HotEpochTicks.
  static constexpr double HotFraction = 0.10;
  static constexpr uint64_t HotEpochTicks = 48;
};

/// L2-sized sweep stressing ("cache-str").
class CacheStress final : public sim::CongestionSource {
public:
  CacheStress(const sim::ChipProfile &Chip, double Units, uint64_t RunSeed);

  sim::BankPressure pressureAt(uint64_t Tick, unsigned Bank) const override;

private:
  const sim::ChipProfile &Chip;
  double Units;
  uint64_t RunSeed;
  /// The sweep parks on each bank for this many ticks before moving on.
  static constexpr uint64_t SweepDwellTicks = 16;
  /// Sweep traffic thrashes DRAM, so only a modest fraction of it turns
  /// into bank-queue pressure.
  static constexpr double TrafficRate = 0.075;
};

} // namespace stress
} // namespace gpuwmm

#endif // GPUWMM_STRESS_STRESSSOURCES_H
