//===- stress/AccessSequence.cpp - Stressing access sequences ---------------===//

#include "stress/AccessSequence.h"

#include <sstream>

using namespace gpuwmm;
using namespace gpuwmm::stress;

AccessSequence::AccessSequence(const std::vector<bool> &Ops) {
  assert(Ops.size() <= MaxLength && "sequence too long");
  Length = static_cast<unsigned>(Ops.size());
  for (unsigned I = 0; I != Length; ++I)
    if (Ops[I])
      Bits |= 1u << I;
}

std::vector<AccessSequence> AccessSequence::enumerateAll() {
  std::vector<AccessSequence> All;
  for (unsigned Len = 0; Len <= MaxLength; ++Len) {
    for (unsigned Bits = 0; Bits != (1u << Len); ++Bits) {
      std::vector<bool> Ops(Len);
      for (unsigned I = 0; I != Len; ++I)
        Ops[I] = (Bits >> I) & 1u;
      All.push_back(AccessSequence(Ops));
      if (Len == 0)
        break; // Only one empty sequence.
    }
  }
  return All;
}

AccessSequence AccessSequence::parse(const std::string &Text) {
  std::vector<bool> Ops;
  std::istringstream SS(Text);
  std::string Tok;
  while (SS >> Tok) {
    bool IsStore;
    size_t Prefix;
    if (Tok.rfind("st", 0) == 0) {
      IsStore = true;
      Prefix = 2;
    } else if (Tok.rfind("ld", 0) == 0) {
      IsStore = false;
      Prefix = 2;
    } else {
      continue; // e.g. "empty"
    }
    unsigned Repeat = 1;
    if (Prefix < Tok.size())
      Repeat = static_cast<unsigned>(
          std::strtoul(Tok.c_str() + Prefix, nullptr, 10));
    for (unsigned I = 0; I != Repeat && Ops.size() < MaxLength; ++I)
      Ops.push_back(IsStore);
  }
  return AccessSequence(Ops);
}

std::string AccessSequence::str() const {
  if (Length == 0)
    return "empty";
  std::string Out;
  unsigned I = 0;
  while (I != Length) {
    const bool Store = isStore(I);
    unsigned RunLen = 1;
    while (I + RunLen != Length && isStore(I + RunLen) == Store)
      ++RunLen;
    if (!Out.empty())
      Out += ' ';
    Out += Store ? "st" : "ld";
    if (RunLen > 1)
      Out += std::to_string(RunLen);
    I += RunLen;
  }
  return Out;
}

sim::BankPressure AccessSequence::trafficPerTick() const {
  if (Length == 0)
    return {};

  // Adjacency weights: streaks are cheap, alternations expensive. Store
  // streaks write-combine almost perfectly, which is why the paper's
  // bottom-ranked sequences are exclusively stores (Tab. 3).
  constexpr double StoreAfterStore = 0.05; // write-combined
  constexpr double LoadAfterLoad = 0.20;   // cache hit
  constexpr double Alternation = 1.0;
  constexpr double AfterBoundary = 0.45;   // loop overhead breaks streaks
  constexpr double LoopOverheadTicks = 2.0;

  sim::BankPressure P;
  for (unsigned I = 0; I != Length; ++I) {
    double W;
    if (I == 0)
      W = AfterBoundary;
    else if (isStore(I) == isStore(I - 1))
      W = isStore(I) ? StoreAfterStore : LoadAfterLoad;
    else
      W = Alternation;
    if (isStore(I))
      P.Write += W;
    else
      P.Read += W;
  }
  const double Ticks = static_cast<double>(Length) + LoopOverheadTicks;
  P.Write /= Ticks;
  P.Read /= Ticks;
  return P;
}
