//===- harden/FenceInsertion.h - Empirical fence insertion ------*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Sec. 5 empirical fence insertion (Alg. 1): starting from a
/// fence after every memory access, binary and linear reduction remove
/// fences whose absence the testing environment cannot distinguish from
/// the fully fenced program, doubling the per-check iteration count until
/// the reduced set is empirically stable. The result is a minimal set of
/// fences: removing any single one exposes erroneous behaviour under the
/// aggressive testing environment.
///
/// The algorithm is expressed against an abstract CheckOracle so it can be
/// unit-tested with deterministic oracles; AppCheckOracle binds it to real
/// application executions under sys-str+.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_HARDEN_FENCEINSERTION_H
#define GPUWMM_HARDEN_FENCEINSERTION_H

#include "apps/Application.h"
#include "sim/FencePolicy.h"
#include "support/ThreadPool.h"

#include <cstdint>

namespace gpuwmm {
namespace harden {

/// Oracle abstraction over "CheckApplication" / "EmpiricallyStable" of
/// Alg. 1.
class CheckOracle {
public:
  virtual ~CheckOracle() = default;

  /// Executes the application with fence set \p F for \p Iterations runs;
  /// returns true iff no errors were observed.
  virtual bool checkApplication(const sim::FencePolicy &F,
                                unsigned Iterations) = 0;

  /// The paper's one-hour stability check (a large fixed run budget here).
  virtual bool empiricallyStable(const sim::FencePolicy &F) = 0;
};

/// BINARYREDUCTION of Alg. 1: repeatedly tries to discard half of the
/// remaining fences (sites sorted by id, first half vs second half).
sim::FencePolicy binaryReduction(sim::FencePolicy F, CheckOracle &Oracle,
                                 unsigned Iterations);

/// LINEARREDUCTION of Alg. 1: tries to remove fences one at a time.
sim::FencePolicy linearReduction(sim::FencePolicy F, CheckOracle &Oracle,
                                 unsigned Iterations);

/// Result of EMPIRICALFENCEINSERTION.
struct InsertionResult {
  sim::FencePolicy Fences;
  bool Stable = false;      ///< False only if MaxRounds was exhausted.
  unsigned Rounds = 0;      ///< Reduction rounds (I doublings + 1).
  uint64_t CheckRuns = 0;   ///< Total application executions consumed.
  double WallSeconds = 0.0;
};

struct InsertionConfig {
  unsigned InitialIterations = 32; ///< The paper's I = 32.
  unsigned MaxRounds = 6;          ///< Safety bound on the doubling loop.
};

/// EMPIRICALFENCEINSERTION of Alg. 1.
InsertionResult empiricalFenceInsertion(const sim::FencePolicy &Initial,
                                        CheckOracle &Oracle,
                                        const InsertionConfig &Config = {});

/// Concrete oracle: executes an application case study on a chip under a
/// testing environment (sys-str+ by default, as in the paper, chosen for
/// its Sec. 4 effectiveness).
///
/// The K-th check the reduction performs draws its run seeds from stream
/// deriveStream(seed, K), one sub-stream per run — not from a shared
/// running counter — so a check's verdict depends only on its position in
/// the reduction, and the runs of each candidate-fence trial distribute
/// over \p Pool with verdicts bit-identical to serial execution. Runs
/// execute in fixed-size chunks with early exit after the first erroneous
/// chunk, so executions() is jobs-invariant too.
class AppCheckOracle final : public CheckOracle {
public:
  AppCheckOracle(apps::AppKind App, const sim::ChipProfile &Chip,
                 uint64_t Seed, unsigned StableRuns = 300,
                 ThreadPool *Pool = nullptr);

  bool checkApplication(const sim::FencePolicy &F,
                        unsigned Iterations) override;
  bool empiricallyStable(const sim::FencePolicy &F) override;

  uint64_t executions() const { return Execs; }

private:
  apps::AppKind App;
  const sim::ChipProfile &Chip;
  stress::Environment Env;
  stress::TunedStressParams Tuned;
  uint64_t Seed;
  unsigned StableRuns;
  ThreadPool *Pool;
  uint64_t Checks = 0; ///< Checks performed; stream id of the next check.
  uint64_t Execs = 0;
};

} // namespace harden
} // namespace gpuwmm

#endif // GPUWMM_HARDEN_FENCEINSERTION_H
