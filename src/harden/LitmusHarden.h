//===- harden/LitmusHarden.h - Alg. 1 over litmus programs ------*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Empirical fence insertion (the paper's Alg. 1, harden/FenceInsertion.h)
/// applied to litmus::Program tests instead of application case studies —
/// the hardening stage of the `gpuwmm hunt` pipeline. Fence sites are the
/// positions after every memory access of every thread; the oracle runs
/// the fenced candidate under the tuned stress at the region that provoked
/// the weak outcome, with the streaming consistency checker attached, and
/// asks for every run to be SC — not merely for the program's pinned
/// forbidden outcome to vanish, so the kept fence set restores sequential
/// consistency rather than hiding one symptom.
///
/// Two materialisations of the resulting fence set:
///  * applyLitmusFences bakes real `fence` ops in (the program the oracle
///    verifies), and
///  * annotateOptFences inserts `fence?` (OptFence) ops — the replayable
///    corpus artifact: run plain it reproduces the weak outcome, run with
///    --fences it is the hardened variant.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_HARDEN_LITMUSHARDEN_H
#define GPUWMM_HARDEN_LITMUSHARDEN_H

#include "harden/FenceInsertion.h"
#include "litmus/Program.h"
#include "sim/ChipProfile.h"
#include "sim/FencePolicy.h"

#include <cstdint>
#include <vector>

namespace gpuwmm {
namespace harden {

/// One fence site of a litmus program: the position directly after the
/// access at \p Op of thread \p Thread. Sites are numbered thread-major
/// in op order — the id order binaryReduction halves over.
struct LitmusFenceSite {
  unsigned Thread = 0;
  size_t Op = 0;
};

/// The fence sites of \p P: one after every Store, Load, AwaitLoad (where
/// a split-phase load completes) and AtomicAdd. Existing Fence/OptFence
/// ops and AsyncLoad issues get no site.
std::vector<LitmusFenceSite> litmusFenceSites(const litmus::Program &P);

/// \p P with a real `fence` op inserted after every site \p F enables.
litmus::Program applyLitmusFences(const litmus::Program &P,
                                  const sim::FencePolicy &F);

/// \p P with a `fence?` (OptFence) op inserted after every site \p F
/// enables — the corpus artifact form.
litmus::Program annotateOptFences(const litmus::Program &P,
                                  const sim::FencePolicy &F);

/// \p P with every OptFence op removed (the inverse of annotateOptFences
/// for programs whose plain ops carry the weak behaviour).
litmus::Program stripOptFences(const litmus::Program &P);

/// Steers hardenLitmusProgram.
struct LitmusHardenOptions {
  /// Instance distance (use the distance the case was provoked at).
  unsigned Distance = 0;
  /// Alg. 1's initial per-check iteration count I.
  unsigned CheckRuns = 32;
  /// Run budget of the empirical stability check.
  unsigned StableRuns = 300;
  uint64_t Seed = 1;
  /// Run candidates under tuned stress at \p StressRegion (the region
  /// that provoked the weak outcome); when false candidates run
  /// unstressed.
  bool Stressed = true;
  unsigned StressRegion = 0;
};

/// Outcome of hardening one litmus program.
struct LitmusHardenResult {
  litmus::Program Hardened;  ///< \p P with the kept fences baked in.
  litmus::Program Annotated; ///< \p P with `fence?` at the kept sites.
  sim::FencePolicy Fences;   ///< The kept (empirically minimal) set.
  InsertionResult Insertion; ///< Alg. 1 accounting (rounds, stability).
  unsigned NumSites = 0;     ///< Total instrumentable sites.
  uint64_t Executions = 0;   ///< Litmus executions consumed.
};

/// Runs EMPIRICALFENCEINSERTION over \p P's fence sites: starting fully
/// fenced, reduce to a set whose absence the testing environment cannot
/// distinguish from fully fenced (zero checker-weak runs per check),
/// doubling iterations until empirically stable. The K-th check draws its
/// seeds from stream deriveStream(Seed, K), so the result is
/// deterministic and independent of --jobs and --batch. \p P must
/// validate.
LitmusHardenResult hardenLitmusProgram(const litmus::Program &P,
                                       const sim::ChipProfile &Chip,
                                       const LitmusHardenOptions &Opts);

} // namespace harden
} // namespace gpuwmm

#endif // GPUWMM_HARDEN_LITMUSHARDEN_H
