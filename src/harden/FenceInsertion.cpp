//===- harden/FenceInsertion.cpp - Empirical fence insertion ------------------===//

#include "harden/FenceInsertion.h"

#include "apps/AppCompile.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <vector>

using namespace gpuwmm;
using namespace gpuwmm::harden;
using sim::FencePolicy;

namespace {

/// Removes the sites in \p ToRemove from \p F.
FencePolicy without(const FencePolicy &F,
                    const std::vector<unsigned> &ToRemove) {
  FencePolicy Result = F;
  for (unsigned S : ToRemove)
    Result.set(S, false);
  return Result;
}

} // namespace

FencePolicy harden::binaryReduction(FencePolicy F, CheckOracle &Oracle,
                                    unsigned Iterations) {
  while (F.count() > 1) {
    // SplitFences: sites sorted by code location; first half vs second.
    const std::vector<unsigned> Sites = F.sites();
    const std::vector<unsigned> F1(Sites.begin(),
                                   Sites.begin() + Sites.size() / 2);
    const std::vector<unsigned> F2(Sites.begin() + Sites.size() / 2,
                                   Sites.end());
    if (Oracle.checkApplication(without(F, F1), Iterations)) {
      F = without(F, F1);
      continue;
    }
    if (Oracle.checkApplication(without(F, F2), Iterations)) {
      F = without(F, F2);
      continue;
    }
    // Both halves appear necessary at this granularity.
    return F;
  }
  return F;
}

FencePolicy harden::linearReduction(FencePolicy F, CheckOracle &Oracle,
                                    unsigned Iterations) {
  for (unsigned S : F.sites()) {
    FencePolicy Candidate = F;
    Candidate.set(S, false);
    if (Oracle.checkApplication(Candidate, Iterations))
      F = Candidate;
  }
  return F;
}

InsertionResult
harden::empiricalFenceInsertion(const FencePolicy &Initial,
                                CheckOracle &Oracle,
                                const InsertionConfig &Config) {
  const auto Start = std::chrono::steady_clock::now();
  InsertionResult Result;
  unsigned Iterations = Config.InitialIterations;
  FencePolicy Reduced = Initial;
  for (unsigned Round = 0; Round != Config.MaxRounds; ++Round) {
    ++Result.Rounds;
    const FencePolicy Fb = binaryReduction(Initial, Oracle, Iterations);
    Reduced = linearReduction(Fb, Oracle, Iterations);
    if (Oracle.empiricallyStable(Reduced)) {
      Result.Stable = true;
      break;
    }
    // Not stable: restart from the original set with doubled iterations.
    Iterations *= 2;
  }
  Result.Fences = Reduced;
  Result.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Result;
}

//===----------------------------------------------------------------------===//
// AppCheckOracle
//===----------------------------------------------------------------------===//

AppCheckOracle::AppCheckOracle(apps::AppKind App,
                               const sim::ChipProfile &Chip, uint64_t Seed,
                               unsigned StableRuns, ThreadPool *Pool)
    : App(App), Chip(Chip), Env{stress::StressKind::Sys, true},
      Tuned(stress::TunedStressParams::paperDefaults(Chip)), Seed(Seed),
      StableRuns(StableRuns), Pool(Pool) {}

bool AppCheckOracle::checkApplication(const FencePolicy &F,
                                      unsigned Iterations) {
  const uint64_t CheckSeed = Rng::deriveStream(Seed, Checks++);
  // Scan in fixed-size chunks, stopping after the first chunk containing
  // an error: most failing candidates error within the first few runs, so
  // this keeps the serial early-exit savings, while full-chunk execution
  // keeps the verdict AND executions() identical for every job count
  // (the chunk size must therefore never depend on the pool).
  constexpr unsigned ChunkSize = 32;
  // Inside a chunk, workers take sub-chunks through the batched engine
  // (one compiled-plan bind per SubChunk runs instead of per run); the
  // check stream — seeds, Execs accounting, chunk-granular early exit —
  // is unchanged, and verdicts are engine-independent (DESIGN.md
  // Sec. 19), so reductions take identical decisions.
  constexpr unsigned SubChunk = 8;
  std::vector<uint8_t> Erroneous(Iterations, 0);
  for (unsigned Base = 0; Base < Iterations; Base += ChunkSize) {
    const unsigned Chunk = std::min(ChunkSize, Iterations - Base);
    Execs += Chunk;
    parallelFor(Pool, (Chunk + SubChunk - 1) / SubChunk, [&](size_t C) {
      sim::ContextLease Ctx; // Worker-recycled execution engine.
      const unsigned Lo = static_cast<unsigned>(C) * SubChunk;
      const unsigned Hi = std::min(Lo + SubChunk, Chunk);
      uint64_t Seeds[SubChunk];
      apps::AppVerdict Verdicts[SubChunk];
      for (unsigned I = Lo; I != Hi; ++I)
        Seeds[I - Lo] =
            Rng::deriveStream(CheckSeed, Base + static_cast<uint64_t>(I));
      apps::runApplicationBatch(Ctx.get(), App, Chip, Env, Tuned, &F,
                                Seeds, Verdicts, Hi - Lo, SubChunk);
      for (unsigned I = Lo; I != Hi; ++I)
        Erroneous[Base + I] = apps::isErroneous(Verdicts[I - Lo]);
    });
    for (unsigned I = 0; I != Chunk; ++I)
      if (Erroneous[Base + I])
        return false;
  }
  return true;
}

bool AppCheckOracle::empiricallyStable(const FencePolicy &F) {
  return checkApplication(F, StableRuns);
}
