//===- harden/FenceInsertion.cpp - Empirical fence insertion ------------------===//

#include "harden/FenceInsertion.h"

#include <cassert>
#include <chrono>

using namespace gpuwmm;
using namespace gpuwmm::harden;
using sim::FencePolicy;

namespace {

/// Removes the sites in \p ToRemove from \p F.
FencePolicy without(const FencePolicy &F,
                    const std::vector<unsigned> &ToRemove) {
  FencePolicy Result = F;
  for (unsigned S : ToRemove)
    Result.set(S, false);
  return Result;
}

} // namespace

FencePolicy harden::binaryReduction(FencePolicy F, CheckOracle &Oracle,
                                    unsigned Iterations) {
  while (F.count() > 1) {
    // SplitFences: sites sorted by code location; first half vs second.
    const std::vector<unsigned> Sites = F.sites();
    const std::vector<unsigned> F1(Sites.begin(),
                                   Sites.begin() + Sites.size() / 2);
    const std::vector<unsigned> F2(Sites.begin() + Sites.size() / 2,
                                   Sites.end());
    if (Oracle.checkApplication(without(F, F1), Iterations)) {
      F = without(F, F1);
      continue;
    }
    if (Oracle.checkApplication(without(F, F2), Iterations)) {
      F = without(F, F2);
      continue;
    }
    // Both halves appear necessary at this granularity.
    return F;
  }
  return F;
}

FencePolicy harden::linearReduction(FencePolicy F, CheckOracle &Oracle,
                                    unsigned Iterations) {
  for (unsigned S : F.sites()) {
    FencePolicy Candidate = F;
    Candidate.set(S, false);
    if (Oracle.checkApplication(Candidate, Iterations))
      F = Candidate;
  }
  return F;
}

InsertionResult
harden::empiricalFenceInsertion(const FencePolicy &Initial,
                                CheckOracle &Oracle,
                                const InsertionConfig &Config) {
  const auto Start = std::chrono::steady_clock::now();
  InsertionResult Result;
  unsigned Iterations = Config.InitialIterations;
  FencePolicy Reduced = Initial;
  for (unsigned Round = 0; Round != Config.MaxRounds; ++Round) {
    ++Result.Rounds;
    const FencePolicy Fb = binaryReduction(Initial, Oracle, Iterations);
    Reduced = linearReduction(Fb, Oracle, Iterations);
    if (Oracle.empiricallyStable(Reduced)) {
      Result.Stable = true;
      break;
    }
    // Not stable: restart from the original set with doubled iterations.
    Iterations *= 2;
  }
  Result.Fences = Reduced;
  Result.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Result;
}

//===----------------------------------------------------------------------===//
// AppCheckOracle
//===----------------------------------------------------------------------===//

AppCheckOracle::AppCheckOracle(apps::AppKind App,
                               const sim::ChipProfile &Chip, uint64_t Seed,
                               unsigned StableRuns)
    : App(App), Chip(Chip), Env{stress::StressKind::Sys, true},
      Tuned(stress::TunedStressParams::paperDefaults(Chip)), Seed(Seed),
      StableRuns(StableRuns) {}

bool AppCheckOracle::checkApplication(const FencePolicy &F,
                                      unsigned Iterations) {
  for (unsigned I = 0; I != Iterations; ++I) {
    const uint64_t RunSeed = Seed * 6364136223846793005ULL + Execs;
    ++Execs;
    const apps::AppVerdict V =
        apps::runApplicationOnce(App, Chip, Env, Tuned, &F, RunSeed);
    if (apps::isErroneous(V))
      return false;
  }
  return true;
}

bool AppCheckOracle::empiricallyStable(const FencePolicy &F) {
  return checkApplication(F, StableRuns);
}
