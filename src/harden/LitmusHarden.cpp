//===- harden/LitmusHarden.cpp - Alg. 1 over litmus programs -----------------===//

#include "harden/LitmusHarden.h"

#include "litmus/Litmus.h"
#include "model/StreamingChecker.h"
#include "stress/Environment.h"
#include "support/Rng.h"

#include <cassert>

using namespace gpuwmm;
using namespace gpuwmm::harden;
using litmus::ProgOp;
using litmus::Program;

namespace {

bool isFenceSiteOp(const ProgOp &O) {
  switch (O.K) {
  case ProgOp::Kind::Store:
  case ProgOp::Kind::Load:
  case ProgOp::Kind::AwaitLoad:
  case ProgOp::Kind::AtomicAdd:
    return true;
  case ProgOp::Kind::AsyncLoad: // Completes at its await.
  case ProgOp::Kind::Fence:
  case ProgOp::Kind::OptFence:
    return false;
  }
  return false;
}

/// Inserts \p Fence after every enabled site of \p P (shared body of
/// apply/annotate; site numbering must match litmusFenceSites).
Program insertAtSites(const Program &P, const sim::FencePolicy &F,
                      const ProgOp &Fence) {
  Program Q = P;
  unsigned Site = 0;
  for (litmus::ProgThread &T : Q.Threads) {
    std::vector<ProgOp> Ops;
    Ops.reserve(T.Ops.size());
    for (const ProgOp &O : T.Ops) {
      Ops.push_back(O);
      if (isFenceSiteOp(O) && F.fenceAfter(static_cast<int>(Site++)))
        Ops.push_back(Fence);
    }
    T.Ops = std::move(Ops);
  }
  assert(Site == F.numSites() && "fence policy does not match program");
  return Q;
}

/// The oracle Alg. 1 reduces against: "check" = run the fenced candidate
/// CheckRuns times under the provoking stress with the streaming
/// consistency checker attached, and demand every run SC. Judging by the
/// checker's verdict — not by the program's forbidden outcome — is what
/// lets the hunt pipeline promise oracle-verified-SC corpus entries: a
/// fence set that merely suppresses the pinned outcome while other
/// non-SC behaviours survive does not pass. The K-th check runs with
/// seed stream deriveStream(Seed, K), so verdicts depend only on the
/// check's position in the reduction — deterministic for every --jobs
/// and --batch (the attached sink forces the scalar engine, which is
/// bit-identical to the batched one by contract).
class LitmusCheckOracle final : public CheckOracle {
public:
  LitmusCheckOracle(const Program &P, const sim::ChipProfile &Chip,
                    const LitmusHardenOptions &Opts)
      : P(P), Chip(Chip), Opts(Opts) {
    const auto Tuned = stress::TunedStressParams::paperDefaults(Chip);
    Stress = Opts.Stressed
                 ? litmus::LitmusRunner::MicroStress::at(
                       Tuned.Seq, (Opts.StressRegion % Chip.NumBanks) *
                                      Tuned.PatchWords)
                 : litmus::LitmusRunner::MicroStress::none();
  }

  bool checkApplication(const sim::FencePolicy &F,
                        unsigned Iterations) override {
    const Program Fenced = applyLitmusFences(P, F);
    litmus::LitmusRunner Runner(Chip, Rng::deriveStream(Opts.Seed, Checks++));
    litmus::LitmusRunOpts RO;
    RO.Sink = &Checker;
    for (unsigned I = 0; I != Iterations; ++I) {
      Checker.begin();
      (void)Runner.runOnce(Fenced, Opts.Distance, Stress, RO);
      ++Execs;
      const model::StreamVerdict &V = Checker.finish();
      if (!V.AxiomsOk || V.weak())
        return false;
    }
    return true;
  }

  bool empiricallyStable(const sim::FencePolicy &F) override {
    return checkApplication(F, Opts.StableRuns);
  }

  uint64_t executions() const { return Execs; }

private:
  const Program &P;
  const sim::ChipProfile &Chip;
  const LitmusHardenOptions &Opts;
  litmus::LitmusRunner::MicroStress Stress;
  model::StreamingChecker Checker;
  uint64_t Checks = 0;
  uint64_t Execs = 0;
};

} // namespace

std::vector<LitmusFenceSite>
harden::litmusFenceSites(const Program &P) {
  std::vector<LitmusFenceSite> Sites;
  for (unsigned TI = 0; TI != P.Threads.size(); ++TI)
    for (size_t I = 0; I != P.Threads[TI].Ops.size(); ++I)
      if (isFenceSiteOp(P.Threads[TI].Ops[I]))
        Sites.push_back({TI, I});
  return Sites;
}

Program harden::applyLitmusFences(const Program &P,
                                  const sim::FencePolicy &F) {
  return insertAtSites(P, F, ProgOp::fence());
}

Program harden::annotateOptFences(const Program &P,
                                  const sim::FencePolicy &F) {
  return insertAtSites(P, F, ProgOp::optFence());
}

Program harden::stripOptFences(const Program &P) {
  Program Q = P;
  for (litmus::ProgThread &T : Q.Threads) {
    std::vector<ProgOp> Ops;
    Ops.reserve(T.Ops.size());
    for (const ProgOp &O : T.Ops)
      if (O.K != ProgOp::Kind::OptFence)
        Ops.push_back(O);
    T.Ops = std::move(Ops);
  }
  return Q;
}

LitmusHardenResult harden::hardenLitmusProgram(
    const Program &P, const sim::ChipProfile &Chip,
    const LitmusHardenOptions &Opts) {
  LitmusHardenResult R;
  R.NumSites = static_cast<unsigned>(litmusFenceSites(P).size());

  LitmusCheckOracle Oracle(P, Chip, Opts);
  InsertionConfig Cfg;
  Cfg.InitialIterations = Opts.CheckRuns;
  R.Insertion = empiricalFenceInsertion(sim::FencePolicy::all(R.NumSites),
                                        Oracle, Cfg);
  R.Fences = R.Insertion.Fences;
  R.Hardened = applyLitmusFences(P, R.Fences);
  R.Annotated = annotateOptFences(P, R.Fences);
  R.Executions = Oracle.executions();
  return R;
}
