//===- model/ConsistencyChecker.cpp - Axiomatic consistency oracle -----------===//
//
// Replays a recorded event trace against the memory model's axioms and
// classifies the execution by acyclicity of po ∪ rf ∪ co ∪ fr. The replay
// never consults the operational simulator: provenance (which write a load
// read) is reconstructed purely from trace order and the load's declared
// source, which is what makes the checker an *independent* oracle.
//
//===----------------------------------------------------------------------===//

#include "model/ConsistencyChecker.h"

#include <deque>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

using namespace gpuwmm;
using namespace gpuwmm::model;
using sim::Addr;
using sim::LoadSource;
using sim::TraceEvent;
using sim::TraceEventKind;
using sim::Word;

const char *model::edgeKindName(EdgeKind K) {
  switch (K) {
  case EdgeKind::Po: return "po";
  case EdgeKind::Rf: return "rf";
  case EdgeKind::Co: return "co";
  case EdgeKind::Fr: return "fr";
  }
  return "?";
}

namespace {

constexpr uint32_t NoWrite = static_cast<uint32_t>(-1); ///< Initial state.

const char *sourceName(LoadSource S) {
  switch (S) {
  case LoadSource::Memory:            return "memory";
  case LoadSource::Forward:           return "store-buffer forward";
  case LoadSource::Overlay:           return "block overlay";
  case LoadSource::MemorySuperseded:  return "memory (forward superseded)";
  case LoadSource::OverlaySuperseded: return "overlay (forward superseded)";
  }
  return "?";
}

/// One thread's un-drained buffered store on one bank.
struct PendingStore {
  uint32_t Issue; ///< StoreIssue event index.
  uint64_t Id;
  Addr A;
  Word V;
};

/// One live block-visible value.
struct OverlayEnt {
  unsigned Block;
  uint64_t Id;
  uint32_t Issue;
  Word V;
};

/// One read access awaiting the causality pass.
struct ReadAccess {
  uint32_t Node;   ///< Its program-order event (LoadBind/AsyncIssue/Atomic).
  uint32_t RfWrite; ///< Writer node, or NoWrite for the initial state.
  Addr A;
  bool WroteToo;   ///< Atomic that also wrote (fr to itself is skipped).
};

uint64_t tidBankKey(unsigned Tid, unsigned Bank) {
  return (static_cast<uint64_t>(Tid) << 32) | Bank;
}

} // namespace

/// The replay pass's working containers, recycled across check() calls
/// (clear() keeps hash buckets and vector capacity).
struct ConsistencyChecker::ReplayScratch {
  std::unordered_map<uint64_t, std::deque<PendingStore>> Pending;
  std::unordered_map<unsigned, unsigned> PendingByTid;
  std::unordered_map<uint64_t, unsigned> AsyncByTidBank;
  std::unordered_map<unsigned, unsigned> AsyncByTid;
  std::unordered_map<uint64_t, uint32_t> AsyncIssueAt; ///< ticket -> event.
  std::unordered_map<Addr, uint32_t> Visible;          ///< Writer node.
  std::unordered_map<Addr, Word> GlobalVal;
  std::unordered_map<Addr, uint64_t> PlainMaxId;       ///< MemWriteId mirror.
  std::unordered_map<Addr, std::vector<OverlayEnt>> Overlay;
  std::unordered_set<uint64_t> PromotedIds;
  std::unordered_map<Addr, std::vector<uint32_t>> Co;
  std::unordered_map<unsigned, uint32_t> LastPo;
  std::vector<ReadAccess> Reads;
  std::unordered_map<uint32_t, std::pair<Addr, uint32_t>> WritePos;

  void clear() {
    Pending.clear();
    PendingByTid.clear();
    AsyncByTidBank.clear();
    AsyncByTid.clear();
    AsyncIssueAt.clear();
    Visible.clear();
    GlobalVal.clear();
    PlainMaxId.clear();
    Overlay.clear();
    PromotedIds.clear();
    Co.clear();
    LastPo.clear();
    Reads.clear();
    WritePos.clear();
  }
};

ConsistencyChecker::ConsistencyChecker()
    : ScratchPtr(std::make_unique<ReplayScratch>()) {}
ConsistencyChecker::~ConsistencyChecker() = default;

CheckResult ConsistencyChecker::check(const std::vector<TraceEvent> &Events) {
  CheckResult R;
  const auto Violate = [&](const std::string &Msg, size_t A, size_t B) {
    if (!R.AxiomsOk)
      return;
    R.AxiomsOk = false;
    R.AxiomViolation = Msg;
    R.ViolatingA = A;
    R.ViolatingB = B;
  };

  // --- Replay pass: axioms + provenance reconstruction ---------------------
  // Recycled across check() calls (clear() keeps hash buckets and vector
  // capacity): shrink candidates and sampled campaign runs check traces by
  // the thousands on one instance.
  ReplayScratch &S = *ScratchPtr;
  S.clear();
  auto &Pending = S.Pending;
  auto &PendingByTid = S.PendingByTid;
  auto &AsyncByTidBank = S.AsyncByTidBank;
  auto &AsyncByTid = S.AsyncByTid;
  auto &AsyncIssueAt = S.AsyncIssueAt;
  auto &Visible = S.Visible;
  auto &GlobalVal = S.GlobalVal;
  auto &PlainMaxId = S.PlainMaxId;
  auto &Overlay = S.Overlay;
  auto &PromotedIds = S.PromotedIds;
  auto &Co = S.Co;
  auto &LastPo = S.LastPo;
  auto &Reads = S.Reads;

  const uint32_t N = static_cast<uint32_t>(Events.size());
  if (Edges.size() < N)
    Edges.resize(N);
  for (uint32_t I = 0; I != N; ++I)
    Edges[I].clear();

  const auto visibleWriter = [&](Addr A) {
    const auto It = Visible.find(A);
    return It == Visible.end() ? NoWrite : It->second;
  };
  const auto globalValue = [&](Addr A) {
    const auto It = GlobalVal.find(A);
    return It == GlobalVal.end() ? Word{0} : It->second;
  };
  const auto plainMaxId = [&](Addr A) {
    const auto It = PlainMaxId.find(A);
    return It == PlainMaxId.end() ? uint64_t{0} : It->second;
  };
  const auto overlayFor = [&](unsigned Block, Addr A) -> OverlayEnt * {
    const auto It = Overlay.find(A);
    if (It == Overlay.end())
      return nullptr;
    for (OverlayEnt &E : It->second)
      if (E.Block == Block)
        return &E;
    return nullptr;
  };
  const auto newestPendingTo = [&](uint64_t Key, Addr A) -> PendingStore * {
    const auto It = Pending.find(Key);
    if (It == Pending.end())
      return nullptr;
    for (auto RIt = It->second.rbegin(); RIt != It->second.rend(); ++RIt)
      if (RIt->A == A)
        return &*RIt;
    return nullptr;
  };
  const auto addPo = [&](unsigned Tid, uint32_t I) {
    const auto It = LastPo.find(Tid);
    if (It != LastPo.end())
      Edges[It->second].emplace_back(I, EdgeKind::Po);
    LastPo[Tid] = I;
  };

  for (uint32_t I = 0; I != N && R.AxiomsOk; ++I) {
    const TraceEvent &E = Events[I];
    const uint64_t Key = tidBankKey(E.Tid, E.Bank);
    switch (E.Kind) {
    case TraceEventKind::StoreIssue: {
      if (AsyncByTidBank[Key] != 0)
        Violate("same-bank issue order: store issued while a split-phase "
                "load is pending on its bank",
                I, I);
      Pending[Key].push_back({I, E.Id, E.A, E.V});
      ++PendingByTid[E.Tid];
      addPo(E.Tid, I);
      break;
    }
    case TraceEventKind::StoreDrain: {
      auto &Q = Pending[Key];
      if (Q.empty() || Q.front().Id != E.Id) {
        Violate("same-bank FIFO: a store drained out of its bank's issue "
                "order",
                Q.empty() ? I : Q.front().Issue, I);
        break;
      }
      const uint32_t Issue = Q.front().Issue;
      Q.pop_front();
      --PendingByTid[E.Tid];
      const bool ShouldApply = E.Id >= plainMaxId(E.A);
      if (E.Flag != ShouldApply) {
        Violate("coherence-per-location: a drain was applied/dropped "
                "against the per-address store order",
                Issue, I);
        break;
      }
      const bool WasPromoted = PromotedIds.count(E.Id) != 0;
      if (WasPromoted) {
        // The drain retires exactly its own block-visible value.
        auto It = Overlay.find(E.A);
        if (It != Overlay.end())
          for (size_t K = 0; K != It->second.size(); ++K)
            if (It->second[K].Id == E.Id) {
              It->second.erase(It->second.begin() +
                               static_cast<ptrdiff_t>(K));
              break;
            }
      }
      if (E.Flag) {
        GlobalVal[E.A] = E.V;
        Visible[E.A] = Issue;
        PlainMaxId[E.A] = E.Id;
        Co[E.A].push_back(Issue);
        // A write that reaches globally visible memory through the plain
        // path invalidates every block-visible value for the address.
        if (!WasPromoted)
          Overlay.erase(E.A);
      } else {
        // A coherence-dropped write never became visible, but it still has
        // a coherence position: before every plain write with a newer
        // store id. Applied plain writes appear in increasing id order, so
        // scanning back from the end places it exactly (atomics, which
        // carry no id, bound the scan).
        auto &Order = Co[E.A];
        size_t Pos = Order.size();
        while (Pos != 0) {
          const TraceEvent &W = Events[Order[Pos - 1]];
          const bool Plain = W.Kind == TraceEventKind::StoreIssue ||
                             W.Kind == TraceEventKind::HostWrite;
          if (!Plain || W.Id < E.Id)
            break;
          --Pos;
        }
        Order.insert(Order.begin() + static_cast<ptrdiff_t>(Pos), Issue);
      }
      break;
    }
    case TraceEventKind::LoadBind: {
      const PendingStore *Newest = newestPendingTo(Key, E.A);
      const OverlayEnt *OV = overlayFor(E.Block, E.A);
      uint32_t Rf = NoWrite;
      switch (E.Source) {
      case LoadSource::Memory: {
        const auto It = Pending.find(Key);
        if (It != Pending.end() && !It->second.empty())
          Violate("self-coherence: a load bound from memory while the "
                  "thread still buffered stores on the load's bank",
                  It->second.front().Issue, I);
        else if (OV)
          Violate("forwarding: a load bound from memory past a live "
                  "block-visible value",
                  OV->Issue, I);
        else if (E.V != globalValue(E.A))
          Violate("read-value: a load bound a value no write produced",
                  visibleWriter(E.A) == NoWrite ? I : visibleWriter(E.A), I);
        Rf = visibleWriter(E.A);
        break;
      }
      case LoadSource::Forward: {
        if (!Newest)
          Violate("forwarding: a load forwarded with no buffered store to "
                  "its address",
                  I, I);
        else if (E.V != Newest->V)
          Violate("forwarding: a load forwarded a value its newest "
                  "buffered store did not write",
                  Newest->Issue, I);
        else if (plainMaxId(E.A) > Newest->Id)
          Violate("coherence-per-location: a load forwarded a store that "
                  "newer globally visible writes supersede",
                  Newest->Issue, I);
        else if (OV && OV->Id > Newest->Id)
          Violate("coherence-per-location: a load forwarded a store that "
                  "a newer block-visible value supersedes",
                  Newest->Issue, I);
        if (Newest)
          Rf = Newest->Issue;
        break;
      }
      case LoadSource::MemorySuperseded: {
        if (!Newest || plainMaxId(E.A) <= Newest->Id)
          Violate("coherence-per-location: a superseded-forward load "
                  "without a superseding write",
                  I, I);
        else if (E.V != globalValue(E.A))
          Violate("read-value: a superseded-forward load bound a value "
                  "memory does not hold",
                  visibleWriter(E.A) == NoWrite ? I : visibleWriter(E.A), I);
        Rf = visibleWriter(E.A);
        break;
      }
      case LoadSource::OverlaySuperseded: {
        if (!Newest || !OV || OV->Id <= Newest->Id)
          Violate("coherence-per-location: a superseded-forward load "
                  "without a newer block-visible value",
                  I, I);
        else if (E.V != OV->V)
          Violate("read-value: a superseded-forward load bound a value "
                  "the block overlay does not hold",
                  OV->Issue, I);
        if (OV)
          Rf = OV->Issue;
        break;
      }
      case LoadSource::Overlay: {
        const auto It = Pending.find(Key);
        if (It != Pending.end() && !It->second.empty())
          Violate("self-coherence: a load bound from the block overlay "
                  "while the thread still buffered stores on the bank",
                  It->second.front().Issue, I);
        else if (!OV)
          Violate("forwarding: a load bound from the block overlay with no "
                  "live value for its block",
                  I, I);
        else if (E.V != OV->V)
          Violate("read-value: a load bound a value the block overlay does "
                  "not hold",
                  OV->Issue, I);
        if (OV)
          Rf = OV->Issue;
        break;
      }
      }
      Reads.push_back({I, Rf, E.A, /*WroteToo=*/false});
      addPo(E.Tid, I);
      break;
    }
    case TraceEventKind::AsyncIssue: {
      AsyncIssueAt[E.Id] = I;
      ++AsyncByTidBank[Key];
      ++AsyncByTid[E.Tid];
      addPo(E.Tid, I);
      break;
    }
    case TraceEventKind::AsyncBind: {
      const auto It = AsyncIssueAt.find(E.Id);
      if (It == AsyncIssueAt.end()) {
        Violate("causality: a split-phase load completed without an issue",
                I, I);
        break;
      }
      --AsyncByTidBank[Key];
      --AsyncByTid[E.Tid];
      if (E.V != globalValue(E.A))
        Violate("read-value: a split-phase load bound a value memory does "
                "not hold",
                visibleWriter(E.A) == NoWrite ? I : visibleWriter(E.A), I);
      // The read's program-order point is the issue; the binding write is
      // whatever is visible now.
      Reads.push_back({It->second, visibleWriter(E.A), E.A,
                       /*WroteToo=*/false});
      AsyncIssueAt.erase(It);
      break;
    }
    case TraceEventKind::Atomic: {
      const auto It = Pending.find(Key);
      if (It != Pending.end() && !It->second.empty())
        Violate("self-coherence: an atomic executed while the thread still "
                "buffered stores on its bank",
                It->second.front().Issue, I);
      else if (AsyncByTidBank[Key] != 0)
        Violate("same-bank issue order: an atomic executed while a "
                "split-phase load is pending on its bank",
                I, I);
      else if (static_cast<Word>(E.Id) != globalValue(E.A))
        Violate("read-value: an atomic read a value memory does not hold",
                visibleWriter(E.A) == NoWrite ? I : visibleWriter(E.A), I);
      Reads.push_back({I, visibleWriter(E.A), E.A, /*WroteToo=*/E.Flag});
      if (E.Flag) {
        GlobalVal[E.A] = E.V;
        Visible[E.A] = I;
        Co[E.A].push_back(I);
        Overlay.erase(E.A); // Atomics invalidate block-visible values.
      }
      addPo(E.Tid, I);
      break;
    }
    case TraceEventKind::FenceDevice: {
      if (PendingByTid[E.Tid] != 0)
        Violate("fence-drain: a device fence completed with the thread's "
                "stores still buffered",
                I, I);
      else if (AsyncByTid[E.Tid] != 0)
        Violate("fence-drain: a device fence completed with the thread's "
                "split-phase loads still pending",
                I, I);
      break;
    }
    case TraceEventKind::StorePromote: {
      PromotedIds.insert(E.Id);
      const PendingStore *P = nullptr;
      const auto It = Pending.find(Key);
      if (It != Pending.end())
        for (const PendingStore &PS : It->second)
          if (PS.Id == E.Id)
            P = &PS;
      if (!P) {
        Violate("forwarding: a block fence promoted a store that is not "
                "buffered",
                I, I);
        break;
      }
      OverlayEnt *OV = overlayFor(E.Block, E.A);
      if (!OV)
        Overlay[E.A].push_back({E.Block, E.Id, P->Issue, E.V});
      else if (OV->Id < E.Id)
        *OV = {E.Block, E.Id, P->Issue, E.V};
      break;
    }
    case TraceEventKind::FenceBlock:
    case TraceEventKind::BarrierRelease:
      break;
    case TraceEventKind::HostWrite: {
      GlobalVal[E.A] = E.V;
      Visible[E.A] = I;
      PlainMaxId[E.A] = E.Id;
      Co[E.A].push_back(I);
      break;
    }
    }
  }

  if (R.AxiomsOk) {
    // End-of-run axioms: the kernel boundary drained everything.
    for (const auto &KV : PendingByTid)
      if (KV.second != 0)
        Violate("fence-drain: stores were still buffered at the end of the "
                "run (the kernel boundary must drain them)",
                N ? N - 1 : 0, N ? N - 1 : 0);
    for (const auto &KV : AsyncByTid)
      if (KV.second != 0)
        Violate("fence-drain: split-phase loads were still pending at the "
                "end of the run",
                N ? N - 1 : 0, N ? N - 1 : 0);
  }
  if (!R.AxiomsOk)
    return R;

  // --- Causality pass: acyclicity of po ∪ rf ∪ co ∪ fr ---------------------
  auto &WritePos = S.WritePos;
  for (const auto &[A, Order] : Co) {
    for (uint32_t K = 0; K != Order.size(); ++K) {
      WritePos[Order[K]] = {A, K};
      if (K + 1 != Order.size())
        Edges[Order[K]].emplace_back(Order[K + 1], EdgeKind::Co);
    }
  }
  for (const ReadAccess &Rd : Reads) {
    uint32_t FrTarget = NoWrite;
    if (Rd.RfWrite == NoWrite) {
      const auto It = Co.find(Rd.A);
      if (It != Co.end() && !It->second.empty())
        FrTarget = It->second.front();
    } else {
      Edges[Rd.RfWrite].emplace_back(Rd.Node, EdgeKind::Rf);
      const auto &[A, K] = WritePos.at(Rd.RfWrite);
      const auto &Order = Co.at(A);
      if (K + 1 != Order.size())
        FrTarget = Order[K + 1];
    }
    // An atomic's fr successor of its own read is itself; skip self-loops.
    if (FrTarget != NoWrite && FrTarget != Rd.Node)
      Edges[Rd.Node].emplace_back(FrTarget, EdgeKind::Fr);
  }

  // Iterative DFS; a back edge into the stack is a cycle.
  if (Color.size() < N)
    Color.resize(N);
  for (uint32_t I = 0; I != N; ++I)
    Color[I] = 0;
  struct Frame {
    uint32_t Node;
    uint32_t Edge;
  };
  std::vector<Frame> Stack;
  for (uint32_t Start = 0; Start != N && R.Sc; ++Start) {
    if (Color[Start] != 0 || Edges[Start].empty())
      continue;
    Stack.clear();
    Stack.push_back({Start, 0});
    Color[Start] = 1;
    while (!Stack.empty() && R.Sc) {
      Frame &F = Stack.back();
      if (F.Edge == Edges[F.Node].size()) {
        Color[F.Node] = 2;
        Stack.pop_back();
        continue;
      }
      const auto [To, Kind] = Edges[F.Node][F.Edge++];
      if (Color[To] == 1) {
        // Found: the cycle is the stack suffix starting at To.
        R.Sc = false;
        size_t Base = Stack.size();
        while (Base != 0 && Stack[Base - 1].Node != To)
          --Base;
        --Base;
        for (size_t K = Base; K != Stack.size(); ++K) {
          const Frame &CF = Stack[K];
          R.Cycle.emplace_back(CF.Node, Edges[CF.Node][CF.Edge - 1].second);
        }
        break;
      }
      if (Color[To] == 0) {
        Color[To] = 1;
        Stack.push_back({To, 0});
      }
    }
  }
  if (!R.Sc && !R.Cycle.empty()) {
    // The decisive pair: the first fr edge of the cycle (the read that
    // observed the past), else the first edge.
    size_t Pick = 0;
    for (size_t K = 0; K != R.Cycle.size(); ++K)
      if (R.Cycle[K].second == EdgeKind::Fr) {
        Pick = K;
        break;
      }
    R.ViolatingA = R.Cycle[Pick].first;
    R.ViolatingB = R.Cycle[(Pick + 1) % R.Cycle.size()].first;
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

std::string model::describeEvent(const TraceEvent &E, size_t I,
                                 const AddrNamer &Namer) {
  std::ostringstream OS;
  const auto Name = [&](Addr A) {
    if (Namer)
      return Namer(A);
    // Built without operator+ to dodge GCC 12's -Wrestrict false positive.
    std::string S = "a";
    S += std::to_string(A);
    return S;
  };
  OS << "[e" << I << " t" << E.Tid << " tick " << E.Tick << "] "
     << traceEventKindName(E.Kind);
  switch (E.Kind) {
  case TraceEventKind::StoreIssue:
  case TraceEventKind::StoreDrain:
  case TraceEventKind::StorePromote:
  case TraceEventKind::HostWrite:
    OS << " " << Name(E.A) << " = " << E.V << " (id " << E.Id << ")";
    if (E.Kind == TraceEventKind::StoreDrain && !E.Flag)
      OS << " [coherence-dropped]";
    break;
  case TraceEventKind::LoadBind:
    OS << " " << Name(E.A) << " = " << E.V << " (from " << sourceName(E.Source)
       << ")";
    break;
  case TraceEventKind::AsyncIssue:
    OS << " " << Name(E.A) << " (ticket " << E.Id << ")";
    break;
  case TraceEventKind::AsyncBind:
    OS << " " << Name(E.A) << " = " << E.V << " (ticket " << E.Id << ")";
    break;
  case TraceEventKind::Atomic:
    OS << " " << Name(E.A) << ": " << E.Id << " -> " << E.V
       << (E.Flag ? "" : " [read-only]");
    break;
  case TraceEventKind::FenceDevice:
  case TraceEventKind::FenceBlock:
    break;
  case TraceEventKind::BarrierRelease:
    OS << " block " << E.Block;
    break;
  }
  return OS.str();
}

std::string model::describeEvent(const std::vector<TraceEvent> &Events,
                                 size_t I, const AddrNamer &Namer) {
  if (I >= Events.size())
    return "<no event>";
  return describeEvent(Events[I], I, Namer);
}

std::string model::renderExplanation(const std::vector<TraceEvent> &Events,
                                     const CheckResult &R,
                                     const AddrNamer &Namer) {
  std::ostringstream OS;
  if (!R.AxiomsOk) {
    OS << "axiom violation: " << R.AxiomViolation << "\n";
    if (R.ViolatingA != static_cast<size_t>(-1))
      OS << "  " << describeEvent(Events, R.ViolatingA, Namer) << "\n";
    if (R.ViolatingB != static_cast<size_t>(-1) &&
        R.ViolatingB != R.ViolatingA)
      OS << "  " << describeEvent(Events, R.ViolatingB, Namer) << "\n";
    return OS.str();
  }
  if (R.Sc) {
    OS << "sequentially consistent: po ∪ rf ∪ co ∪ fr is acyclic\n";
    return OS.str();
  }
  OS << "weak: po ∪ rf ∪ co ∪ fr has a cycle of length " << R.Cycle.size()
     << "\n";
  for (size_t K = 0; K != R.Cycle.size(); ++K) {
    OS << "  " << describeEvent(Events, R.Cycle[K].first, Namer) << "\n"
       << "    --" << edgeKindName(R.Cycle[K].second) << "--> ";
    if (K + 1 == R.Cycle.size())
      OS << "(back to e" << R.Cycle[0].first << ")";
    OS << "\n";
  }
  return OS.str();
}
