//===- model/ConsistencyChecker.h - Axiomatic consistency oracle -*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A herd-style axiomatic checker over recorded executions: validates the
/// event trace a run emitted (sim/TraceSink.h) against the memory model's
/// axioms, and classifies the execution as sequentially consistent or weak
/// (DESIGN.md Sec. 14).
///
/// The checker is a differential oracle for the operational simulator. The
/// operational model *produces* behaviours by mechanism (store buffers,
/// drain lotteries, split-phase loads); the checker *judges* the recorded
/// behaviour against declarative axioms, with no access to the mechanism:
///
///  * Replay axioms — coherence-per-location (applied same-address plain
///    writes never step backwards in store order), same-bank FIFO (a
///    thread's drains on one bank follow its issue order), fence-drain
///    (nothing of a thread is pending when its device fence completes),
///    self-coherence/forwarding (a load's bound value and declared source
///    are exactly what the visibility rules allow), same-bank issue order
///    (no pending split-phase load on a bank when a store or atomic issues
///    there), and read-value validity (every bound value equals its
///    reconstructed writer's value).
///
///  * Causality — the execution's communication relations (program order,
///    reads-from, per-location coherence order, and from-reads) must be
///    acyclic for the run to be explainable by any sequential interleaving
///    (Shasha-Snir); a cycle is reported as the violating event chain, the
///    explanation `gpuwmm litmus --explain` prints for a weak outcome.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_MODEL_CONSISTENCYCHECKER_H
#define GPUWMM_MODEL_CONSISTENCYCHECKER_H

#include "sim/TraceSink.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace gpuwmm {
namespace model {

/// The edge sorts of the causality relation.
enum class EdgeKind : uint8_t {
  Po, ///< Program order (same thread, issue order).
  Rf, ///< Reads-from (write to the read that bound its value).
  Co, ///< Coherence (per-location order in which writes took effect).
  Fr  ///< From-read (read to a write coherence-after the one it read).
};

const char *edgeKindName(EdgeKind K);

/// Verdict over one recorded execution.
struct CheckResult {
  /// Every replay axiom held. A violation here is a simulator bug (or a
  /// hand-built trace that no execution could have produced), never a weak
  /// behaviour.
  bool AxiomsOk = true;
  std::string AxiomViolation; ///< First violated axiom (empty when ok).

  /// The violating event pair: for an axiom violation, the two events that
  /// contradict each other; for a weak execution, the endpoints of the
  /// decisive edge of the cycle. SIZE_MAX when unset.
  size_t ViolatingA = static_cast<size_t>(-1);
  size_t ViolatingB = static_cast<size_t>(-1);

  /// True iff the communication relations are acyclic, i.e. the run is
  /// explainable by a sequential interleaving. Only meaningful when
  /// \ref AxiomsOk.
  bool Sc = true;

  /// The cycle witnessing a weak execution: (event index, edge to the next
  /// entry), closing from the last entry back to the first. Empty when SC.
  std::vector<std::pair<size_t, EdgeKind>> Cycle;

  bool weak() const { return AxiomsOk && !Sc; }
};

/// Validates and classifies recorded executions. The checker recycles its
/// working containers (replay maps, causality graph) across \ref check
/// calls — clear() keeps hash buckets and vector capacity — so checking a
/// run per sampled campaign cell or per shrink candidate stops allocating
/// once the containers have grown to the workload's size.
class ConsistencyChecker {
public:
  ConsistencyChecker();
  ~ConsistencyChecker();
  ConsistencyChecker(const ConsistencyChecker &) = delete;
  ConsistencyChecker &operator=(const ConsistencyChecker &) = delete;

  /// Checks one recorded execution. The events must form one run's
  /// complete trace (reset to reset): the final-state axioms (everything
  /// drained) anchor on the trace end.
  CheckResult check(const std::vector<sim::TraceEvent> &Events);
  CheckResult check(const sim::EventTrace &Trace) {
    return check(Trace.events());
  }

private:
  struct ReplayScratch; ///< Recycled replay-pass containers (in the .cpp).
  std::unique_ptr<ReplayScratch> ScratchPtr;
  // Recycled causality-graph storage (adjacency lists per event index).
  std::vector<std::vector<std::pair<uint32_t, EdgeKind>>> Edges;
  std::vector<uint8_t> Color;
};

/// Names an address for human-readable explanations (a litmus location,
/// a register writeback slot, ...). Null-constructed = raw addresses.
using AddrNamer = std::function<std::string(sim::Addr)>;

/// One event, rendered: "[e4 t1 tick 12] store-issue y = 1 (id 3)". The
/// index is display-only (the "e4"); the event itself may come from a
/// trace or from a streaming verdict's retained copy.
std::string describeEvent(const sim::TraceEvent &E, size_t I,
                          const AddrNamer &Namer = nullptr);
std::string describeEvent(const std::vector<sim::TraceEvent> &Events,
                          size_t I, const AddrNamer &Namer = nullptr);

/// The whole verdict, rendered: the axiom violation pair, the cycle chain
/// behind a weak classification, or the SC statement.
std::string renderExplanation(const std::vector<sim::TraceEvent> &Events,
                              const CheckResult &R,
                              const AddrNamer &Namer = nullptr);

} // namespace model
} // namespace gpuwmm

#endif // GPUWMM_MODEL_CONSISTENCYCHECKER_H
