//===- model/StreamingChecker.h - Online consistency oracle -----*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The streaming (online) consistency oracle: the axiomatic checker
/// reworked as an incremental TraceSink consumer (DESIGN.md Sec. 15).
///
/// Where model/ConsistencyChecker.h replays a *completed* EventTrace, a
/// StreamingChecker plugs directly into the simulator's trace seam
/// (sim/TraceSink.h) and judges the run while it executes:
///
///  * The replay axioms (coherence-per-location, same-bank FIFO,
///    fence-drain, self-coherence/forwarding, same-bank issue order,
///    read-value) are already a forward scan; the streaming checker runs
///    the identical logic event by event and reports the first violation
///    at the event where it occurred, with the same message and the same
///    violating event indices as the post-hoc checker.
///
///  * The causality relation po ∪ rf ∪ co ∪ fr is maintained as a live
///    graph with incremental cycle detection: each edge insertion searches
///    for a return path, so a weak execution is flagged at the exact event
///    that closed the first cycle rather than after the run.
///
///  * Events are *retired* once no future edge can reach them (DESIGN.md
///    Sec. 15's retirement rule): program order pins only each thread's
///    latest event, coherence pins only the active per-address window
///    (the suffix a future drain could still splice into), and reads stay
///    only while their from-read target can still change. Retirement
///    splices transitive shortcut edges through the removed node, so
///    reachability among live events — and therefore cycle detection — is
///    exact. Memory is bounded by the active frontier (pending stores,
///    pending split-phase loads, per-thread po heads, per-address
///    coherence windows), not by run length.
///
/// The post-hoc checker remains the reference: both consume identical
/// event streams, so every streaming verdict is differentially testable
/// (tests/StreamingCheckerTests.cpp pins verdict and first-violation
/// equality). The retirement rule relies on one engine invariant: store
/// ids (including host writes) are drawn from a single counter, so they
/// are monotonic in issue order across the whole run.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_MODEL_STREAMINGCHECKER_H
#define GPUWMM_MODEL_STREAMINGCHECKER_H

#include "model/ConsistencyChecker.h"
#include "sim/TraceSink.h"

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace gpuwmm {
namespace model {

namespace detail {
struct StreamingCheckerState; ///< All incremental state (in the .cpp).
} // namespace detail

/// Verdict of one streamed run. Field meanings match \ref CheckResult;
/// because the checker keeps no trace, the events behind the verdict are
/// retained as copies so explanations render without the run's trace.
struct StreamVerdict {
  bool AxiomsOk = true;
  std::string AxiomViolation; ///< First violated axiom (empty when ok).

  /// The violating event pair, as global trace indices (SIZE_MAX unset):
  /// identical to the post-hoc checker's for an axiom violation; for a
  /// weak run, the endpoints of the decisive edge of the detected cycle.
  size_t ViolatingA = static_cast<size_t>(-1);
  size_t ViolatingB = static_cast<size_t>(-1);
  sim::TraceEvent EventA, EventB; ///< Copies (valid when the index is set).

  /// True iff no po ∪ rf ∪ co ∪ fr cycle was detected. Only meaningful
  /// when \ref AxiomsOk.
  bool Sc = true;

  /// The first detected cycle: (event index, edge kind to the next
  /// entry), closing back to the first. The specific cycle may differ
  /// from the post-hoc checker's (search order differs); its existence
  /// never does.
  std::vector<std::pair<size_t, EdgeKind>> Cycle;
  std::vector<sim::TraceEvent> CycleEvents; ///< Copies, parallel to Cycle.

  bool weak() const { return AxiomsOk && !Sc; }
};

/// The incremental consistency oracle. Attach it as a run's trace sink
/// (ExecutionContext::requestStreaming or LitmusRunOpts::Sink), bracketed
/// by \ref begin and \ref finish; or feed a recorded trace via
/// \ref checkAll. One instance is reusable: begin() keeps container
/// capacity, so steady-state checked runs stop allocating.
class StreamingChecker final : public sim::TraceSink {
public:
  StreamingChecker();
  ~StreamingChecker() override;
  StreamingChecker(const StreamingChecker &) = delete;
  StreamingChecker &operator=(const StreamingChecker &) = delete;

  /// Starts a fresh run: clears all per-run state (keeping capacity) and
  /// the diagnostics counters' per-run portion.
  void begin();

  /// Consumes one event (the TraceSink hook). Pure observation: never
  /// touches the simulator, never throws. After the verdict is decided
  /// (axiom violation) the remaining events are skipped; after a cycle is
  /// found the graph is dropped and only the axioms keep running.
  void event(const sim::TraceEvent &E) override;

  /// Ends the run: applies the end-of-run axioms (everything drained at
  /// the kernel-boundary) and returns the verdict. Valid until the next
  /// begin().
  const StreamVerdict &finish();

  /// Convenience: begin() + event() per element + finish() over a
  /// recorded trace (differential and mutation tests).
  const StreamVerdict &checkAll(const std::vector<sim::TraceEvent> &Events);
  const StreamVerdict &checkAll(const sim::EventTrace &Trace) {
    return checkAll(Trace.events());
  }

  /// The verdict of the last finished run.
  const StreamVerdict &verdict() const { return R; }

  // --- Frontier diagnostics (bounded-memory property tests) ---------------

  /// Events consumed since begin().
  uint64_t consumedEvents() const { return Consumed; }
  /// Graph nodes currently retained.
  size_t liveEvents() const;
  /// High-water mark of retained graph nodes since begin().
  size_t peakLiveEvents() const { return PeakLive; }
  /// Nodes retired (spliced out of the live graph) since begin().
  uint64_t retiredEvents() const { return Retired; }

private:
  std::unique_ptr<detail::StreamingCheckerState> St;
  StreamVerdict R;
  uint64_t Consumed = 0;
  size_t PeakLive = 0;
  uint64_t Retired = 0;
};

/// Renders a streaming verdict in the same format as
/// \ref renderExplanation, from the verdict's retained event copies (the
/// trace itself was never stored).
std::string renderStreamExplanation(const StreamVerdict &R,
                                    const AddrNamer &Namer = nullptr);

} // namespace model
} // namespace gpuwmm

#endif // GPUWMM_MODEL_STREAMINGCHECKER_H
