//===- model/StreamingChecker.cpp - Online consistency oracle ----------------===//
//
// The axiomatic checker as an incremental trace consumer. The replay
// axioms are the same forward scan ConsistencyChecker.cpp performs — the
// logic is ported statement for statement so the first violation (message
// and violating event indices) is identical by construction. The
// causality relation is maintained as a live graph with incremental cycle
// detection and frontier-bounded retirement (DESIGN.md Sec. 15).
//
// Retirement soundness leans on one engine invariant: store ids
// (NextStoreId, shared with host writes) are monotonic in issue order, so
// once no store to an address is buffered, every later coherence
// insertion lands at the end of the retained window — the pruned prefix
// can never be spliced into again.
//
//===----------------------------------------------------------------------===//

#include "model/StreamingChecker.h"

#include <algorithm>
#include <sstream>

using namespace gpuwmm;
using namespace gpuwmm::model;
using sim::Addr;
using sim::LoadSource;
using sim::TraceEvent;
using sim::TraceEventKind;
using sim::Word;

namespace {

constexpr uint64_t NoNode = static_cast<uint64_t>(-1); ///< Initial state.

/// Why a live graph node cannot retire yet (a bitmask; zero = retirable).
enum : uint8_t {
  PinPoLast = 1,         ///< Its thread's latest program-order event.
  PinPendingStore = 2,   ///< A buffered (undrained) store issue.
  PinPendingAsync = 4,   ///< A split-phase load awaiting its bind.
  PinCoWindow = 8,       ///< In an address's live coherence window.
  PinWatchedReader = 16, ///< A read whose fr target can still change.
  PinVisible = 32,       ///< An address's current visible writer (rf source).
};

uint64_t tidBankKey(unsigned Tid, unsigned Bank) {
  return (static_cast<uint64_t>(Tid) << 32) | Bank;
}

/// Latches the first axiom violation (same message and indices the
/// post-hoc checker would report), keeping event copies for rendering.
void violate(StreamVerdict &R, const char *Msg, size_t A, size_t B,
             const TraceEvent *EvA, const TraceEvent *EvB) {
  if (!R.AxiomsOk)
    return;
  R.AxiomsOk = false;
  R.AxiomViolation = Msg;
  R.ViolatingA = A;
  R.ViolatingB = B;
  if (EvA)
    R.EventA = *EvA;
  if (EvB)
    R.EventB = *EvB;
}

void eraseTarget(std::vector<std::pair<uint64_t, EdgeKind>> &Out,
                 uint64_t To) {
  for (size_t K = 0; K != Out.size(); ++K)
    if (Out[K].first == To) {
      Out.erase(Out.begin() + static_cast<ptrdiff_t>(K));
      return;
    }
}

void eraseSource(std::vector<uint64_t> &In, uint64_t From) {
  for (size_t K = 0; K != In.size(); ++K)
    if (In[K] == From) {
      In.erase(In.begin() + static_cast<ptrdiff_t>(K));
      return;
    }
}

bool hasTarget(const std::vector<std::pair<uint64_t, EdgeKind>> &Out,
               uint64_t To) {
  for (const auto &[T, K] : Out)
    if (T == To)
      return true;
  return false;
}

} // namespace

/// All incremental state, recycled across begin() calls (clear() keeps
/// hash buckets and vector capacity). Namespace scope — not nested in the
/// checker — so the file-local graph helper can name it.
struct gpuwmm::model::detail::StreamingCheckerState {
  // --- Replay-axiom state (mirrors ConsistencyChecker's ReplayScratch) ----
  /// One thread's un-drained buffered store on one bank, with a copy of
  /// its issue event (explanations render without the trace).
  struct PendingStore {
    uint64_t Node; ///< Global index of the StoreIssue event.
    uint64_t Id;
    Addr A;
    Word V;
    TraceEvent Ev;
  };
  /// One live block-visible value.
  struct OverlayEnt {
    unsigned Block;
    uint64_t Id;
    uint64_t Node;
    Word V;
    TraceEvent Ev;
  };
  /// A pending split-phase load: its issue node and event copy.
  struct AsyncIssueEnt {
    uint64_t Node;
    TraceEvent Ev;
  };
  std::unordered_map<uint64_t, std::deque<PendingStore>> Pending;
  std::unordered_map<unsigned, unsigned> PendingByTid;
  std::unordered_map<uint64_t, unsigned> AsyncByTidBank;
  std::unordered_map<unsigned, unsigned> AsyncByTid;
  std::unordered_map<uint64_t, AsyncIssueEnt> AsyncIssueAt; ///< By ticket.
  std::unordered_map<Addr, std::vector<OverlayEnt>> Overlay;
  std::unordered_set<uint64_t> PromotedIds;

  // --- Per-address coherence state ----------------------------------------
  /// One write in the live coherence window.
  struct CoEnt {
    uint64_t Node;
    uint64_t Id;
    bool Plain; ///< Carries a store id (StoreIssue/HostWrite, not Atomic).
    std::vector<uint64_t> Readers; ///< Watched readers of this write.
  };
  struct AddrState {
    // Axiom-side (always maintained).
    Word Val = 0;                  ///< Globally visible value.
    uint64_t PlainMax = 0;         ///< MemWriteId mirror.
    uint64_t VisibleNode = NoNode; ///< Writer of Val (its issue node).
    TraceEvent VisibleEv;          ///< Copy of that writer's event.
    // Graph-side (idle once a cycle is found).
    unsigned PendingStores = 0;        ///< Buffered stores to this address.
    std::vector<CoEnt> Co;             ///< Live coherence window.
    std::vector<uint64_t> InitReaders; ///< Watched initial-state readers.
  };
  std::unordered_map<Addr, AddrState> Addrs;

  // --- Live causality graph -----------------------------------------------
  struct GNode {
    TraceEvent Ev;
    std::vector<std::pair<uint64_t, EdgeKind>> Out;
    std::vector<uint64_t> In;
    uint8_t Pins = 0;
    uint64_t Stamp = 0; ///< DFS visitation stamp.
  };
  std::unordered_map<uint64_t, GNode> Live;
  /// Readers registered on a still-pending store (not yet in co), keyed by
  /// its issue node; transferred to the CoEnt when the store drains.
  std::unordered_map<uint64_t, std::vector<uint64_t>> PendingReaders;
  std::unordered_map<unsigned, uint64_t> LastPo;
  uint64_t DfsStamp = 0;
  bool GraphDead = false; ///< Cycle found: graph dropped, axioms continue.
  bool Done = false;      ///< Axiom violated: remaining events are skipped.

  TraceEvent LastEv; ///< Copy of the most recent event (end-of-run anchor).

  struct Frame {
    uint64_t Node;
    uint32_t Edge;
  };
  std::vector<Frame> Stack; ///< DFS scratch.

  void clear() {
    Pending.clear();
    PendingByTid.clear();
    AsyncByTidBank.clear();
    AsyncByTid.clear();
    AsyncIssueAt.clear();
    Overlay.clear();
    PromotedIds.clear();
    Addrs.clear();
    Live.clear();
    PendingReaders.clear();
    LastPo.clear();
    DfsStamp = 0;
    GraphDead = false;
    Done = false;
    LastEv = TraceEvent();
    Stack.clear();
  }

  GNode *node(uint64_t I) {
    const auto It = Live.find(I);
    return It == Live.end() ? nullptr : &It->second;
  }
};

namespace {

using State = gpuwmm::model::detail::StreamingCheckerState;

/// The graph half of the checker: po ∪ rf ∪ co ∪ fr maintenance, pins,
/// retirement, incremental cycle detection. Holds references for one
/// event's worth of work.
struct Graph {
  State &S;
  StreamVerdict &R;
  size_t &PeakLive;
  uint64_t &Retired;

  using GNode = State::GNode;
  using AddrState = State::AddrState;
  using CoEnt = State::CoEnt;

  void makeNode(uint64_t I, const TraceEvent &E) {
    if (S.GraphDead)
      return;
    S.Live[I].Ev = E;
    PeakLive = std::max(PeakLive, S.Live.size());
  }

  void pin(uint64_t I, uint8_t Bit) {
    if (S.GraphDead)
      return;
    if (GNode *N = S.node(I))
      N->Pins |= Bit;
  }

  void unpin(uint64_t I, uint8_t Bit) {
    if (S.GraphDead)
      return;
    GNode *N = S.node(I);
    if (!N)
      return;
    N->Pins &= static_cast<uint8_t>(~Bit);
    if (N->Pins == 0)
      retire(I, *N);
  }

  /// Splices the node out: every in-neighbor gains shortcut edges to every
  /// out-neighbor, so reachability among live nodes — and therefore cycle
  /// detection — is preserved exactly. A shortcut cannot create a cycle
  /// (the two-edge path already existed), so no search is needed.
  void retire(uint64_t I, GNode &N) {
    // Detach from neighbors first so the splice sees clean lists.
    for (uint64_t F : N.In)
      if (GNode *FN = S.node(F))
        eraseTarget(FN->Out, I);
    for (const auto &[T, K] : N.Out)
      if (GNode *TN = S.node(T))
        eraseSource(TN->In, I);
    for (uint64_t F : N.In) {
      GNode *FN = S.node(F);
      if (!FN)
        continue;
      for (const auto &[T, K] : N.Out) {
        if (T == F)
          continue;
        GNode *TN = S.node(T);
        if (!TN || hasTarget(FN->Out, T))
          continue;
        FN->Out.emplace_back(T, K);
        TN->In.push_back(F);
      }
    }
    S.Live.erase(I);
    ++Retired;
  }

  /// Inserts From --K--> To and searches for a return path To ->* From; a
  /// hit is the first po ∪ rf ∪ co ∪ fr cycle, reported at the event that
  /// closed it.
  void addEdge(uint64_t From, uint64_t To, EdgeKind K) {
    if (S.GraphDead || From == To)
      return;
    GNode *FN = S.node(From);
    GNode *TN = S.node(To);
    if (!FN || !TN)
      return;
    if (hasTarget(FN->Out, To))
      return;
    FN->Out.emplace_back(To, K);
    TN->In.push_back(From);

    ++S.DfsStamp;
    S.Stack.clear();
    S.Stack.push_back({To, 0});
    TN->Stamp = S.DfsStamp;
    while (!S.Stack.empty()) {
      State::Frame &F = S.Stack.back();
      GNode &FNode = *S.node(F.Node);
      if (F.Edge == FNode.Out.size()) {
        S.Stack.pop_back();
        continue;
      }
      const uint64_t T = FNode.Out[F.Edge].first;
      ++F.Edge;
      if (T == From) {
        foundCycle(From, K);
        return;
      }
      GNode &TNode = *S.node(T);
      if (TNode.Stamp != S.DfsStamp) {
        TNode.Stamp = S.DfsStamp;
        S.Stack.push_back({T, 0});
      }
    }
  }

  /// The DFS stack is the path To ->* From; with the closing edge it is
  /// the witness cycle. Record it (with event copies), pick the decisive
  /// pair the way the post-hoc checker does, and drop the graph — the
  /// verdict is fixed, only the axioms keep running.
  void foundCycle(uint64_t From, EdgeKind K) {
    R.Sc = false;
    R.Cycle.emplace_back(From, K);
    R.CycleEvents.push_back(S.node(From)->Ev);
    for (const State::Frame &F : S.Stack) {
      GNode &N = *S.node(F.Node);
      R.Cycle.emplace_back(F.Node, N.Out[F.Edge - 1].second);
      R.CycleEvents.push_back(N.Ev);
    }
    // The decisive pair: the first fr edge of the cycle (the read that
    // observed the past), else the first edge.
    size_t Pick = 0;
    for (size_t I = 0; I != R.Cycle.size(); ++I)
      if (R.Cycle[I].second == EdgeKind::Fr) {
        Pick = I;
        break;
      }
    const size_t Next = (Pick + 1) % R.Cycle.size();
    R.ViolatingA = R.Cycle[Pick].first;
    R.ViolatingB = R.Cycle[Next].first;
    R.EventA = R.CycleEvents[Pick];
    R.EventB = R.CycleEvents[Next];
    S.GraphDead = true;
    S.Live.clear();
    S.PendingReaders.clear();
    S.LastPo.clear();
    S.Stack.clear();
  }

  void addPo(unsigned Tid, uint64_t I) {
    if (S.GraphDead)
      return;
    const auto It = S.LastPo.find(Tid);
    if (It == S.LastPo.end()) {
      S.LastPo[Tid] = I;
      pin(I, PinPoLast);
      return;
    }
    const uint64_t Prev = It->second;
    addEdge(Prev, I, EdgeKind::Po);
    if (S.GraphDead)
      return;
    It->second = I;
    pin(I, PinPoLast);
    unpin(Prev, PinPoLast);
  }

  void emitFrOne(uint64_t Reader, uint64_t Target) {
    if (Reader != Target)
      addEdge(Reader, Target, EdgeKind::Fr);
  }

  void emitFr(const std::vector<uint64_t> &Readers, uint64_t Target) {
    for (uint64_t Rd : Readers) {
      emitFrOne(Rd, Target);
      if (S.GraphDead)
        return;
    }
  }

  void releaseReaders(std::vector<uint64_t> &Readers) {
    if (S.GraphDead)
      return;
    for (uint64_t Rd : Readers)
      unpin(Rd, PinWatchedReader);
    Readers.clear();
  }

  /// Once no store to the address is buffered, every future coherence
  /// insertion lands at the end of the window (store ids are monotonic in
  /// issue order, and a dropped drain inserts only before plain writes
  /// with a *newer* id), so everything before the visible writer retires
  /// and every non-last write's from-read successor is final.
  void pruneCo(AddrState &AS) {
    if (S.GraphDead || AS.Co.empty())
      return;
    for (size_t K = 0; K + 1 < AS.Co.size(); ++K)
      releaseReaders(AS.Co[K].Readers);
    releaseReaders(AS.InitReaders);
    size_t VPos = 0;
    for (size_t K = AS.Co.size(); K-- != 0;)
      if (AS.Co[K].Node == AS.VisibleNode) {
        VPos = K;
        break;
      }
    for (size_t K = 0; K != VPos; ++K)
      unpin(AS.Co[K].Node, PinCoWindow);
    AS.Co.erase(AS.Co.begin(), AS.Co.begin() + static_cast<ptrdiff_t>(VPos));
  }

  /// Moves readers registered while a write was buffered onto its window
  /// entry (their pins carry over; their from-read is emitted once the
  /// write has a coherence successor).
  void adoptPendingReaders(CoEnt &E) {
    const auto It = S.PendingReaders.find(E.Node);
    if (It == S.PendingReaders.end())
      return;
    E.Readers = std::move(It->second);
    S.PendingReaders.erase(It);
  }

  /// Appends an applied write (drain/atomic/host write) to the window:
  /// coherence edge from the old last, from-read edges from its watched
  /// readers (their successor just materialised).
  void coAppend(AddrState &AS, uint64_t N, bool Plain, uint64_t Id) {
    if (S.GraphDead)
      return;
    if (!AS.Co.empty()) {
      addEdge(AS.Co.back().Node, N, EdgeKind::Co);
      if (S.GraphDead)
        return;
      emitFr(AS.Co.back().Readers, N);
    } else {
      emitFr(AS.InitReaders, N);
    }
    if (S.GraphDead)
      return;
    AS.Co.push_back({N, Id, Plain, {}});
    pin(N, PinCoWindow);
    adoptPendingReaders(AS.Co.back());
  }

  /// Inserts a coherence-dropped write at its position: before every
  /// plain write with a newer store id, never past an atomic — the same
  /// backwards scan the post-hoc checker runs, over the live window
  /// (which still contains the true insertion point: the store was
  /// buffered since its issue, so no prune released it in between).
  void coInsertDropped(AddrState &AS, uint64_t N, uint64_t Id) {
    if (S.GraphDead)
      return;
    size_t Pos = AS.Co.size();
    while (Pos != 0) {
      const CoEnt &W = AS.Co[Pos - 1];
      if (!W.Plain || W.Id < Id)
        break;
      --Pos;
    }
    if (Pos != 0) {
      addEdge(AS.Co[Pos - 1].Node, N, EdgeKind::Co);
      if (S.GraphDead)
        return;
      // The predecessor's immediate successor changed: its watched
      // readers' from-read now also targets the inserted write.
      emitFr(AS.Co[Pos - 1].Readers, N);
    } else {
      // A new window front: initial-state reads read before it.
      emitFr(AS.InitReaders, N);
    }
    if (S.GraphDead)
      return;
    if (Pos != AS.Co.size()) {
      addEdge(N, AS.Co[Pos].Node, EdgeKind::Co);
      if (S.GraphDead)
        return;
    }
    AS.Co.insert(AS.Co.begin() + static_cast<ptrdiff_t>(Pos),
                 {N, Id, true, {}});
    pin(N, PinCoWindow);
    adoptPendingReaders(AS.Co[Pos]);
    if (S.GraphDead)
      return;
    // Readers that forwarded from this write get their from-read now that
    // the write has a coherence successor.
    if (Pos + 1 < AS.Co.size())
      emitFr(AS.Co[Pos].Readers, AS.Co[Pos + 1].Node);
  }

  /// The address's visible writer changed: transfer the rf-source pin.
  void transferVisible(uint64_t OldNode, uint64_t NewNode) {
    if (S.GraphDead)
      return;
    pin(NewNode, PinVisible);
    if (OldNode != NoNode)
      unpin(OldNode, PinVisible);
  }

  /// Registers a read: its rf edge, its current from-read edge, and — when
  /// the rf write's coherence successor can still change — a watch
  /// registration so every successor change re-emits the from-read.
  void noteRead(uint64_t Reader, Addr A, uint64_t W, bool RfPending) {
    if (S.GraphDead)
      return;
    AddrState &AS = S.Addrs[A];
    if (W == NoNode) {
      // Initial-state read: from-read to the window front; watched while
      // the front can still change (no write yet, or inserts possible).
      if (!AS.Co.empty()) {
        emitFrOne(Reader, AS.Co.front().Node);
        if (S.GraphDead)
          return;
      }
      if (AS.Co.empty() || AS.PendingStores != 0) {
        AS.InitReaders.push_back(Reader);
        pin(Reader, PinWatchedReader);
      }
      return;
    }
    addEdge(W, Reader, EdgeKind::Rf);
    if (S.GraphDead)
      return;
    if (RfPending) {
      // The write is still buffered (forward/overlay read): its coherence
      // position is unknown until it drains; watch through the drain.
      S.PendingReaders[W].push_back(Reader);
      pin(Reader, PinWatchedReader);
      return;
    }
    // The write is in the window (it is the visible writer).
    size_t Pos = AS.Co.size();
    for (size_t K = AS.Co.size(); K-- != 0;)
      if (AS.Co[K].Node == W) {
        Pos = K;
        break;
      }
    if (Pos == AS.Co.size())
      return; // Unreachable on engine traces; harmless on corrupted ones.
    if (Pos + 1 != AS.Co.size()) {
      emitFrOne(Reader, AS.Co[Pos + 1].Node);
      if (S.GraphDead)
        return;
    }
    if (Pos + 1 == AS.Co.size() || AS.PendingStores != 0) {
      AS.Co[Pos].Readers.push_back(Reader);
      pin(Reader, PinWatchedReader);
    }
  }
};

} // namespace

StreamingChecker::StreamingChecker() : St(std::make_unique<State>()) {}
StreamingChecker::~StreamingChecker() = default;

void StreamingChecker::begin() {
  St->clear();
  R = StreamVerdict();
  Consumed = 0;
  PeakLive = 0;
  Retired = 0;
}

size_t StreamingChecker::liveEvents() const { return St->Live.size(); }

//===----------------------------------------------------------------------===//
// Event consumption: the replay axioms, ported statement for statement
//===----------------------------------------------------------------------===//

void StreamingChecker::event(const TraceEvent &E) {
  State &S = *St;
  const size_t I = static_cast<size_t>(Consumed);
  ++Consumed;
  if (S.Done)
    return;
  S.LastEv = E;
  Graph G{S, R, PeakLive, Retired};

  const uint64_t Key = tidBankKey(E.Tid, E.Bank);
  const auto globalValue = [&](Addr A) {
    const auto It = S.Addrs.find(A);
    return It == S.Addrs.end() ? Word{0} : It->second.Val;
  };
  const auto plainMaxId = [&](Addr A) {
    const auto It = S.Addrs.find(A);
    return It == S.Addrs.end() ? uint64_t{0} : It->second.PlainMax;
  };
  const auto overlayFor = [&](unsigned Block, Addr A) -> State::OverlayEnt * {
    const auto It = S.Overlay.find(A);
    if (It == S.Overlay.end())
      return nullptr;
    for (State::OverlayEnt &O : It->second)
      if (O.Block == Block)
        return &O;
    return nullptr;
  };
  const auto newestPendingTo = [&](uint64_t K,
                                   Addr A) -> State::PendingStore * {
    const auto It = S.Pending.find(K);
    if (It == S.Pending.end())
      return nullptr;
    for (auto RIt = It->second.rbegin(); RIt != It->second.rend(); ++RIt)
      if (RIt->A == A)
        return &*RIt;
    return nullptr;
  };
  // Violations that reference the visible writer use its node index when
  // one exists, else the current event — as the post-hoc checker does.
  const auto visibleOr = [&](Addr A, size_t Self) {
    const auto It = S.Addrs.find(A);
    return It == S.Addrs.end() || It->second.VisibleNode == NoNode
               ? Self
               : static_cast<size_t>(It->second.VisibleNode);
  };
  const auto visibleEvOr = [&](Addr A,
                               const TraceEvent *Self) -> const TraceEvent * {
    const auto It = S.Addrs.find(A);
    return It == S.Addrs.end() || It->second.VisibleNode == NoNode
               ? Self
               : &It->second.VisibleEv;
  };

  switch (E.Kind) {
  case TraceEventKind::StoreIssue: {
    if (S.AsyncByTidBank[Key] != 0)
      violate(R,
              "same-bank issue order: store issued while a split-phase "
              "load is pending on its bank",
              I, I, &E, &E);
    S.Pending[Key].push_back({I, E.Id, E.A, E.V, E});
    ++S.PendingByTid[E.Tid];
    if (!S.GraphDead) {
      G.makeNode(I, E);
      G.pin(I, PinPendingStore);
      ++S.Addrs[E.A].PendingStores;
      G.addPo(E.Tid, I);
    }
    break;
  }
  case TraceEventKind::StoreDrain: {
    auto &Q = S.Pending[Key];
    if (Q.empty() || Q.front().Id != E.Id) {
      violate(R,
              "same-bank FIFO: a store drained out of its bank's issue "
              "order",
              Q.empty() ? I : Q.front().Node, I,
              Q.empty() ? &E : &Q.front().Ev, &E);
      break;
    }
    const State::PendingStore Front = Q.front();
    Q.pop_front();
    --S.PendingByTid[E.Tid];
    const bool ShouldApply = E.Id >= plainMaxId(E.A);
    if (E.Flag != ShouldApply) {
      violate(R,
              "coherence-per-location: a drain was applied/dropped "
              "against the per-address store order",
              Front.Node, I, &Front.Ev, &E);
      break;
    }
    const bool WasPromoted = S.PromotedIds.count(E.Id) != 0;
    if (WasPromoted) {
      // The drain retires exactly its own block-visible value.
      auto It = S.Overlay.find(E.A);
      if (It != S.Overlay.end())
        for (size_t K = 0; K != It->second.size(); ++K)
          if (It->second[K].Id == E.Id) {
            It->second.erase(It->second.begin() + static_cast<ptrdiff_t>(K));
            break;
          }
    }
    State::AddrState &AS = S.Addrs[E.A];
    if (!S.GraphDead && AS.PendingStores != 0)
      --AS.PendingStores;
    if (E.Flag) {
      AS.Val = E.V;
      const uint64_t OldVisible = AS.VisibleNode;
      AS.VisibleNode = Front.Node;
      AS.VisibleEv = Front.Ev;
      AS.PlainMax = E.Id;
      G.coAppend(AS, Front.Node, /*Plain=*/true, E.Id);
      G.transferVisible(OldVisible, Front.Node);
      // A write that reaches globally visible memory through the plain
      // path invalidates every block-visible value for the address.
      if (!WasPromoted)
        S.Overlay.erase(E.A);
    } else {
      G.coInsertDropped(AS, Front.Node, E.Id);
    }
    G.unpin(Front.Node, PinPendingStore);
    if (!S.GraphDead && AS.PendingStores == 0)
      G.pruneCo(AS);
    break;
  }
  case TraceEventKind::LoadBind: {
    const State::PendingStore *Newest = newestPendingTo(Key, E.A);
    const State::OverlayEnt *OV = overlayFor(E.Block, E.A);
    uint64_t Rf = NoNode;
    bool RfPending = false;
    switch (E.Source) {
    case LoadSource::Memory: {
      const auto It = S.Pending.find(Key);
      if (It != S.Pending.end() && !It->second.empty())
        violate(R,
                "self-coherence: a load bound from memory while the "
                "thread still buffered stores on the load's bank",
                It->second.front().Node, I, &It->second.front().Ev, &E);
      else if (OV)
        violate(R,
                "forwarding: a load bound from memory past a live "
                "block-visible value",
                OV->Node, I, &OV->Ev, &E);
      else if (E.V != globalValue(E.A))
        violate(R, "read-value: a load bound a value no write produced",
                visibleOr(E.A, I), I, visibleEvOr(E.A, &E), &E);
      const auto AIt = S.Addrs.find(E.A);
      if (AIt != S.Addrs.end())
        Rf = AIt->second.VisibleNode;
      break;
    }
    case LoadSource::Forward: {
      if (!Newest)
        violate(R,
                "forwarding: a load forwarded with no buffered store to "
                "its address",
                I, I, &E, &E);
      else if (E.V != Newest->V)
        violate(R,
                "forwarding: a load forwarded a value its newest "
                "buffered store did not write",
                Newest->Node, I, &Newest->Ev, &E);
      else if (plainMaxId(E.A) > Newest->Id)
        violate(R,
                "coherence-per-location: a load forwarded a store that "
                "newer globally visible writes supersede",
                Newest->Node, I, &Newest->Ev, &E);
      else if (OV && OV->Id > Newest->Id)
        violate(R,
                "coherence-per-location: a load forwarded a store that "
                "a newer block-visible value supersedes",
                Newest->Node, I, &Newest->Ev, &E);
      if (Newest) {
        Rf = Newest->Node;
        RfPending = true;
      }
      break;
    }
    case LoadSource::MemorySuperseded: {
      if (!Newest || plainMaxId(E.A) <= Newest->Id)
        violate(R,
                "coherence-per-location: a superseded-forward load "
                "without a superseding write",
                I, I, &E, &E);
      else if (E.V != globalValue(E.A))
        violate(R,
                "read-value: a superseded-forward load bound a value "
                "memory does not hold",
                visibleOr(E.A, I), I, visibleEvOr(E.A, &E), &E);
      const auto AIt = S.Addrs.find(E.A);
      if (AIt != S.Addrs.end())
        Rf = AIt->second.VisibleNode;
      break;
    }
    case LoadSource::OverlaySuperseded: {
      if (!Newest || !OV || OV->Id <= Newest->Id)
        violate(R,
                "coherence-per-location: a superseded-forward load "
                "without a newer block-visible value",
                I, I, &E, &E);
      else if (E.V != OV->V)
        violate(R,
                "read-value: a superseded-forward load bound a value "
                "the block overlay does not hold",
                OV->Node, I, &OV->Ev, &E);
      if (OV) {
        Rf = OV->Node;
        RfPending = true;
      }
      break;
    }
    case LoadSource::Overlay: {
      const auto It = S.Pending.find(Key);
      if (It != S.Pending.end() && !It->second.empty())
        violate(R,
                "self-coherence: a load bound from the block overlay "
                "while the thread still buffered stores on the bank",
                It->second.front().Node, I, &It->second.front().Ev, &E);
      else if (!OV)
        violate(R,
                "forwarding: a load bound from the block overlay with no "
                "live value for its block",
                I, I, &E, &E);
      else if (E.V != OV->V)
        violate(R,
                "read-value: a load bound a value the block overlay does "
                "not hold",
                OV->Node, I, &OV->Ev, &E);
      if (OV) {
        Rf = OV->Node;
        RfPending = true;
      }
      break;
    }
    }
    if (!S.GraphDead) {
      G.makeNode(I, E);
      G.noteRead(I, E.A, Rf, RfPending);
      G.addPo(E.Tid, I);
    }
    break;
  }
  case TraceEventKind::AsyncIssue: {
    S.AsyncIssueAt[E.Id] = {I, E};
    ++S.AsyncByTidBank[Key];
    ++S.AsyncByTid[E.Tid];
    if (!S.GraphDead) {
      G.makeNode(I, E);
      G.pin(I, PinPendingAsync);
      G.addPo(E.Tid, I);
    }
    break;
  }
  case TraceEventKind::AsyncBind: {
    const auto It = S.AsyncIssueAt.find(E.Id);
    if (It == S.AsyncIssueAt.end()) {
      violate(R, "causality: a split-phase load completed without an issue",
              I, I, &E, &E);
      break;
    }
    --S.AsyncByTidBank[Key];
    --S.AsyncByTid[E.Tid];
    if (E.V != globalValue(E.A))
      violate(R,
              "read-value: a split-phase load bound a value memory does "
              "not hold",
              visibleOr(E.A, I), I, visibleEvOr(E.A, &E), &E);
    // The read's program-order point is the issue; the binding write is
    // whatever is visible now.
    const uint64_t Issue = It->second.Node;
    S.AsyncIssueAt.erase(It);
    if (!S.GraphDead) {
      const auto AIt = S.Addrs.find(E.A);
      const uint64_t W =
          AIt == S.Addrs.end() ? NoNode : AIt->second.VisibleNode;
      G.noteRead(Issue, E.A, W, /*RfPending=*/false);
      G.unpin(Issue, PinPendingAsync);
    }
    break;
  }
  case TraceEventKind::Atomic: {
    const auto It = S.Pending.find(Key);
    if (It != S.Pending.end() && !It->second.empty())
      violate(R,
              "self-coherence: an atomic executed while the thread still "
              "buffered stores on its bank",
              It->second.front().Node, I, &It->second.front().Ev, &E);
    else if (S.AsyncByTidBank[Key] != 0)
      violate(R,
              "same-bank issue order: an atomic executed while a "
              "split-phase load is pending on its bank",
              I, I, &E, &E);
    else if (static_cast<Word>(E.Id) != globalValue(E.A))
      violate(R, "read-value: an atomic read a value memory does not hold",
              visibleOr(E.A, I), I, visibleEvOr(E.A, &E), &E);
    State::AddrState &AS = S.Addrs[E.A];
    const uint64_t W = AS.VisibleNode; // The read side binds pre-write.
    if (!S.GraphDead)
      G.makeNode(I, E);
    if (E.Flag) {
      AS.Val = E.V;
      const uint64_t OldVisible = AS.VisibleNode;
      AS.VisibleNode = I;
      AS.VisibleEv = E;
      G.coAppend(AS, I, /*Plain=*/false, /*Id=*/0);
      G.transferVisible(OldVisible, I);
      S.Overlay.erase(E.A); // Atomics invalidate block-visible values.
      if (!S.GraphDead && AS.PendingStores == 0)
        G.pruneCo(AS);
    }
    if (!S.GraphDead) {
      G.noteRead(I, E.A, W, /*RfPending=*/false);
      G.addPo(E.Tid, I);
    }
    break;
  }
  case TraceEventKind::FenceDevice: {
    if (S.PendingByTid[E.Tid] != 0)
      violate(R,
              "fence-drain: a device fence completed with the thread's "
              "stores still buffered",
              I, I, &E, &E);
    else if (S.AsyncByTid[E.Tid] != 0)
      violate(R,
              "fence-drain: a device fence completed with the thread's "
              "split-phase loads still pending",
              I, I, &E, &E);
    break;
  }
  case TraceEventKind::StorePromote: {
    S.PromotedIds.insert(E.Id);
    const State::PendingStore *P = nullptr;
    const auto PIt = S.Pending.find(Key);
    if (PIt != S.Pending.end())
      for (const State::PendingStore &PS : PIt->second)
        if (PS.Id == E.Id)
          P = &PS;
    if (!P) {
      violate(R,
              "forwarding: a block fence promoted a store that is not "
              "buffered",
              I, I, &E, &E);
      break;
    }
    State::OverlayEnt *OV = overlayFor(E.Block, E.A);
    if (!OV)
      S.Overlay[E.A].push_back({E.Block, E.Id, P->Node, E.V, P->Ev});
    else if (OV->Id < E.Id)
      *OV = {E.Block, E.Id, P->Node, E.V, P->Ev};
    break;
  }
  case TraceEventKind::FenceBlock:
  case TraceEventKind::BarrierRelease:
    break;
  case TraceEventKind::HostWrite: {
    State::AddrState &AS = S.Addrs[E.A];
    AS.Val = E.V;
    const uint64_t OldVisible = AS.VisibleNode;
    AS.VisibleNode = I;
    AS.VisibleEv = E;
    AS.PlainMax = E.Id;
    if (!S.GraphDead) {
      G.makeNode(I, E);
      G.coAppend(AS, I, /*Plain=*/true, E.Id);
      G.transferVisible(OldVisible, I);
      if (!S.GraphDead && AS.PendingStores == 0)
        G.pruneCo(AS);
    }
    break;
  }
  }

  if (!R.AxiomsOk)
    S.Done = true;
}

const StreamVerdict &StreamingChecker::finish() {
  State &S = *St;
  if (R.AxiomsOk) {
    // End-of-run axioms: the kernel boundary drained everything.
    const size_t Last = Consumed ? static_cast<size_t>(Consumed) - 1 : 0;
    for (const auto &KV : S.PendingByTid)
      if (KV.second != 0)
        violate(R,
                "fence-drain: stores were still buffered at the end of the "
                "run (the kernel boundary must drain them)",
                Last, Last, &S.LastEv, &S.LastEv);
    for (const auto &KV : S.AsyncByTid)
      if (KV.second != 0)
        violate(R,
                "fence-drain: split-phase loads were still pending at the "
                "end of the run",
                Last, Last, &S.LastEv, &S.LastEv);
  }
  return R;
}

const StreamVerdict &
StreamingChecker::checkAll(const std::vector<TraceEvent> &Events) {
  begin();
  for (const TraceEvent &E : Events)
    event(E);
  return finish();
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

std::string model::renderStreamExplanation(const StreamVerdict &R,
                                           const AddrNamer &Namer) {
  std::ostringstream OS;
  if (!R.AxiomsOk) {
    OS << "axiom violation: " << R.AxiomViolation << "\n";
    if (R.ViolatingA != static_cast<size_t>(-1))
      OS << "  " << describeEvent(R.EventA, R.ViolatingA, Namer) << "\n";
    if (R.ViolatingB != static_cast<size_t>(-1) &&
        R.ViolatingB != R.ViolatingA)
      OS << "  " << describeEvent(R.EventB, R.ViolatingB, Namer) << "\n";
    return OS.str();
  }
  if (R.Sc) {
    OS << "sequentially consistent: po ∪ rf ∪ co ∪ fr is acyclic\n";
    return OS.str();
  }
  OS << "weak: po ∪ rf ∪ co ∪ fr has a cycle of length " << R.Cycle.size()
     << "\n";
  for (size_t K = 0; K != R.Cycle.size(); ++K) {
    OS << "  " << describeEvent(R.CycleEvents[K], R.Cycle[K].first, Namer)
       << "\n"
       << "    --" << edgeKindName(R.Cycle[K].second) << "--> ";
    if (K + 1 == R.Cycle.size())
      OS << "(back to e" << R.Cycle[0].first << ")";
    OS << "\n";
  }
  return OS.str();
}
