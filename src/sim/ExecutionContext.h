//===- sim/ExecutionContext.h - Reusable execution engine state -*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reusable execution engine behind the simulator hot path.
///
/// Every experiment in the paper's pipeline (litmus tuning, Tab. 5 campaign
/// cells, fence-insertion oracle checks, fuzz batches) performs millions of
/// short simulated executions. Constructing a fresh simulator per run would
/// reallocate the global-memory image, the per-thread-per-bank store
/// buffers, async-load slots, pressure caches and scheduler containers from
/// scratch every time — the dominant per-run overhead once the runs are
/// spread over a thread pool.
///
/// An ExecutionContext owns all of that state and supports an O(touched)
/// \ref reset: one context serves an unbounded sequence of runs, reusing
/// every container's capacity (DESIGN.md Sec. 12). Resetting restores
/// exactly the state a freshly constructed context would have, so results
/// are bit-identical between fresh and reused contexts — an extension of
/// the parallel engine's determinism contract (DESIGN.md Sec. 11).
///
/// Contexts are distributed through thread-local \ref ContextLease pools:
/// each ThreadPool worker (and the submitting thread) recycles its own
/// contexts, so parallel campaigns run without cross-thread sharing and
/// without per-run allocation in steady state.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_SIM_EXECUTIONCONTEXT_H
#define GPUWMM_SIM_EXECUTIONCONTEXT_H

#include "sim/BatchExec.h"
#include "sim/MemorySystem.h"
#include "sim/Scheduler.h"
#include "sim/TraceSink.h"
#include "support/Rng.h"

namespace gpuwmm {
namespace sim {

/// Owns all recyclable simulator state: the deterministic RNG, the weak
/// memory system (global-memory image, store buffers, async-load slots,
/// pressure caches) and the scheduler's launch-lifetime containers.
///
/// A context is single-threaded: it must only be used by one run at a
/// time, on the thread that uses it. \ref reset rebinds it to a chip and
/// reseeds it in O(state touched by the previous run).
class ExecutionContext {
public:
  ExecutionContext() : Memory(R) {}

  ExecutionContext(const ExecutionContext &) = delete;
  ExecutionContext &operator=(const ExecutionContext &) = delete;

  /// Prepares the context for one fresh run on \p Chip seeded with
  /// \p Seed. Afterwards the context's observable state is exactly that of
  /// a newly constructed simulator: the RNG is reseeded, every word the
  /// previous run wrote is zeroed (dirty-address tracking), store buffers,
  /// async slots and overlays are empty, and all statistics are cleared —
  /// while every container keeps its capacity.
  void reset(const ChipProfile &Chip, uint64_t Seed) {
    R.reseed(Seed);
    Memory.reset(Chip);
    Trace.clear();
    if (StreamSink)
      Memory.setTraceSink(StreamSink);
    else if (TraceRequested)
      Memory.setTraceSink(&Trace);
    ++NumResets;
  }

  /// Arms (or disarms) event tracing for subsequent runs on this context:
  /// each reset() re-attaches the recycled \ref EventTrace recorder as the
  /// memory system's sink. Tracing is pure observation — results are
  /// bit-identical with it on or off — and the recorder's capacity is
  /// reused across runs, so steady-state traced runs allocate nothing.
  /// Cleared when a leased context is returned to its pool.
  void requestTracing(bool On) { TraceRequested = On; }
  bool tracingRequested() const { return TraceRequested; }

  /// Streaming-sink mode: each reset() attaches \p S (an external
  /// incremental consumer, e.g. model::StreamingChecker) as the memory
  /// system's sink instead of the recycled EventTrace recorder. The run
  /// is judged as it executes and no trace is retained, so memory stays
  /// bounded by the consumer's frontier rather than run length. Pass
  /// nullptr to disarm. Takes precedence over \ref requestTracing; like
  /// it, cleared when a leased context is returned to its pool.
  void requestStreaming(TraceSink *S) { StreamSink = S; }
  TraceSink *streamingSink() const { return StreamSink; }

  /// The events recorded by the most recent run (empty when tracing was
  /// off). Valid until the next reset().
  EventTrace &trace() { return Trace; }
  const EventTrace &trace() const { return Trace; }

  Rng &rng() { return R; }
  MemorySystem &memory() { return Memory; }
  Scheduler::Scratch &schedulerScratch() { return Scratch; }
  /// The batched executor's recyclable lane/residency state and K-seed
  /// SoA slabs (sim/BatchExec.h, DESIGN.md Sec. 17). Like the scheduler
  /// scratch, contents are internal to the engine that fills them.
  BatchScratch &batchScratch() { return BScratch; }

  /// Number of reset() calls served (reuse diagnostics; benches and tests
  /// use this to confirm recycling actually happens).
  uint64_t resets() const { return NumResets; }

private:
  Rng R{0};
  MemorySystem Memory;
  Scheduler::Scratch Scratch;
  BatchScratch BScratch;
  EventTrace Trace; ///< Recycled event recorder (attached when requested).
  TraceSink *StreamSink = nullptr; ///< External sink (streaming mode).
  bool TraceRequested = false;
  uint64_t NumResets = 0;
};

/// RAII lease of an ExecutionContext from the current thread's recycled
/// pool.
///
/// The first leases on a thread allocate contexts; once released they are
/// recycled, so steady-state leasing allocates nothing. Nested leases (an
/// application run that internally executes a reference run, e.g.
/// ls-bh's shadow device) receive distinct contexts. A lease — whether
/// stack-scoped or held as a member (LitmusRunner) — must be released on
/// the thread that acquired it; debug builds assert this in the
/// destructor, since releasing into a foreign pool would dangle once the
/// owning thread exits.
class ContextLease {
public:
  /// Acquires a context from the thread-local pool.
  ContextLease();
  /// An empty lease (used when an external context is bound instead).
  explicit ContextLease(std::nullptr_t) {}
  ~ContextLease();

  ContextLease(const ContextLease &) = delete;
  ContextLease &operator=(const ContextLease &) = delete;

  bool held() const { return Ctx != nullptr; }
  ExecutionContext &get() const {
    assert(Ctx && "empty context lease");
    return *Ctx;
  }

private:
  ExecutionContext *Ctx = nullptr;
  void *Owner = nullptr; ///< The acquiring thread's pool (release check).
};

} // namespace sim
} // namespace gpuwmm

#endif // GPUWMM_SIM_EXECUTIONCONTEXT_H
