//===- sim/ThreadContext.h - Kernel-facing device API -----------*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The API a simulated kernel uses to interact with the device: thread and
/// block identifiers, global-memory loads/stores, atomics, fences, barriers
/// and split-phase loads. Every operation is awaited, which suspends the
/// kernel coroutine into the scheduler — the simulated analogue of issuing
/// an instruction.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_SIM_THREADCONTEXT_H
#define GPUWMM_SIM_THREADCONTEXT_H

#include "sim/Kernel.h"
#include "sim/Scheduler.h"
#include "sim/Types.h"

namespace gpuwmm {
namespace sim {

/// Awaitable returned by every ThreadContext operation.
///
/// The operation's side effects are applied when the operation method is
/// called (i.e. when execution reaches the co_await expression); awaiting
/// then suspends the thread until the scheduler resumes it. Operations must
/// be awaited immediately.
struct OpAwait {
  ThreadContext *Ctx;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  Word await_resume() const noexcept;
};

/// Per-thread device handle passed to every kernel coroutine.
class ThreadContext {
public:
  ThreadContext(Scheduler &S, unsigned Tid, unsigned Block, unsigned Lane,
                const LaunchConfig &LC)
      : Sched(S), Tid(Tid), Block(Block), Lane(Lane), Launch(LC) {}

  // --- CUDA-style identifiers ----------------------------------------------

  unsigned threadIdx() const { return Lane; }
  unsigned blockIdx() const { return Block; }
  unsigned blockDim() const { return Launch.BlockDim; }
  unsigned gridDim() const { return Launch.GridDim; }
  unsigned globalId() const { return Tid; }
  unsigned warpIdx() const { return Lane / WarpSize; }

  // --- Memory operations (all must be co_awaited) --------------------------

  /// Plain global store. \p Site identifies the access for fence policies.
  OpAwait st(Addr A, Word V, int Site = NoSite) {
    Sched.opStore(Tid, A, V, Site);
    return {this};
  }

  /// Plain global load; the awaited value is the loaded word.
  OpAwait ld(Addr A, int Site = NoSite) {
    Sched.opLoad(Tid, A, Site);
    return {this};
  }

  /// atomicCAS(A, Compare, Value); the awaited value is the old word.
  OpAwait atomicCAS(Addr A, Word Compare, Word Value, int Site = NoSite) {
    Sched.opAtomicCAS(Tid, A, Compare, Value, Site);
    return {this};
  }

  /// atomicExch(A, Value); the awaited value is the old word.
  OpAwait atomicExch(Addr A, Word Value, int Site = NoSite) {
    Sched.opAtomicExch(Tid, A, Value, Site);
    return {this};
  }

  /// atomicAdd(A, Value); the awaited value is the old word.
  OpAwait atomicAdd(Addr A, Word Value, int Site = NoSite) {
    Sched.opAtomicAdd(Tid, A, Value, Site);
    return {this};
  }

  /// __threadfence(): device-scope fence.
  OpAwait fence() {
    Sched.opFenceDevice(Tid);
    return {this};
  }

  /// __threadfence_block(): block-scope fence.
  OpAwait fenceBlock() {
    Sched.opFenceBlock(Tid);
    return {this};
  }

  /// A fence present in the original application source; disabled when the
  /// "-nf" (no-fence) variant is selected.
  OpAwait builtinFence() {
    Sched.opBuiltinFence(Tid);
    return {this};
  }

  /// __syncthreads(): block barrier (undefined behaviour under divergence,
  /// which the simulator detects and reports).
  OpAwait syncthreads() {
    Sched.opBarrier(Tid);
    return {this};
  }

  /// Issues a split-phase load; the awaited value is a ticket for
  /// \ref awaitLoad. Models load buffering (LB). The thread must not store
  /// to \p A while the load is pending.
  OpAwait ldAsync(Addr A) {
    Sched.opAsyncIssue(Tid, A);
    return {this};
  }

  /// Waits for a split-phase load; the awaited value is the loaded word.
  OpAwait awaitLoad(Word Ticket) {
    Sched.opAsyncWait(Tid, static_cast<unsigned>(Ticket));
    return {this};
  }

  /// Consumes \p Ticks ticks of simulated compute.
  OpAwait yield(unsigned Ticks = 1) {
    Sched.opYield(Tid, Ticks);
    return {this};
  }

  /// Signals a kernel-detected invariant violation; the kernel should
  /// co_return immediately afterwards.
  void fault() { Sched.opFault(Tid); }

  /// Device-side randomness (e.g. start-phase jitter in litmus tests).
  uint64_t rand(uint64_t Bound) { return Sched.rng().below(Bound); }

  Word lastValue() const { return Sched.retVal(Tid); }

private:
  Scheduler &Sched;
  unsigned Tid;
  unsigned Block;
  unsigned Lane;
  LaunchConfig Launch;
};

inline Word OpAwait::await_resume() const noexcept {
  return Ctx->lastValue();
}

} // namespace sim
} // namespace gpuwmm

#endif // GPUWMM_SIM_THREADCONTEXT_H
