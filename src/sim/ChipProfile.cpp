//===- sim/ChipProfile.cpp - Per-GPU model parameters ----------------------===//

#include "sim/ChipProfile.h"

using namespace gpuwmm;
using namespace gpuwmm::sim;

const char *sim::archName(GpuArch Arch) {
  switch (Arch) {
  case GpuArch::Fermi:
    return "Fermi";
  case GpuArch::Kepler:
    return "Kepler";
  case GpuArch::Maxwell:
    return "Maxwell";
  }
  return "unknown";
}

namespace {

// The seven chips of paper Tab. 1, newest first.
//
// Parameter rationale:
//  * PatchSizeWords encodes the natural patch granularity the paper's
//    micro-benchmarks discovered: 32 words on Kepler, 64 on Fermi, and 64 on
//    Maxwell (Tab. 2).
//  * DrainBase is high (stores become visible within a couple of ticks when
//    uncongested) so that weak behaviours are rare natively, as the paper
//    observes. The GTX 770 drains noticeably slower, modelling the paper's
//    observation that 770 exhibits native errors for cbe-ht (Tab. 5).
//  * Sensitivity modulates how strongly scratchpad stress amplifies weak
//    behaviours; Titan/K20 were the paper's most provocable chips.
//  * The GTX 980 (Maxwell) has a small BaselineReorder quirk: Fig. 3c shows
//    it exhibits a trickle of MP weak behaviour at every stress location,
//    even for d = 0, unlike all other chips.
//  * Power-query support mirrors the paper's Sec. 6 (NVML available on
//    K5200, Titan, K20 and C2075 only).
const ChipProfile Profiles[] = {
    // Name, short, arch, year, patch, banks, SMs, thr/SM,
    //   drainB, drainF, asyncB, asyncF,
    //   sens, thresh, cap, drainK, asyncK, baseReorder,
    //   fenceLat, atomLat, clock, powerW, idleW, nvml
    {"GTX 980", "980", GpuArch::Maxwell, 2014, 64, 4, 16, 2048,
     0.97, 0.035, 0.74, 0.045,
     1.00, 4.5, 8.0, 10.0, 10.0, 0.0,
     4, 2, 1.22, 165.0, 37.0, false},
    {"Quadro K5200", "k5200", GpuArch::Kepler, 2014, 32, 8, 12, 2048,
     0.96, 0.030, 0.68, 0.040,
     1.05, 4.5, 8.0, 10.0, 10.0, 0.0,
     4, 2, 0.77, 150.0, 30.0, true},
    {"GTX Titan", "titan", GpuArch::Kepler, 2013, 32, 8, 14, 2048,
     0.96, 0.025, 0.68, 0.035,
     1.30, 4.5, 8.0, 10.8, 10.8, 0.0,
     4, 2, 0.88, 250.0, 45.0, true},
    {"Tesla K20", "k20", GpuArch::Kepler, 2013, 32, 8, 13, 2048,
     0.96, 0.025, 0.68, 0.035,
     1.20, 4.5, 8.0, 10.4, 10.4, 0.0,
     4, 2, 0.71, 225.0, 42.0, true},
    // The 770's fast atomics (latency 1) make its lock hand-off windows
    // tight enough that cbe-ht errs natively, as the paper observed
    // (Tab. 5: 770 is the only chip with native cbe-ht errors).
    {"GTX 770", "770", GpuArch::Kepler, 2013, 32, 8, 8, 2048,
     0.92, 0.030, 0.70, 0.040,
     1.10, 4.5, 8.0, 10.0, 10.0, 0.0,
     8, 1, 1.05, 230.0, 40.0, false},
    {"Tesla C2075", "c2075", GpuArch::Fermi, 2011, 64, 4, 14, 1536,
     0.94, 0.030, 0.70, 0.040,
     1.00, 4.5, 8.0, 10.0, 10.0, 0.0,
     9, 3, 1.15, 225.0, 44.0, true},
    {"Tesla C2050", "c2050", GpuArch::Fermi, 2010, 64, 4, 14, 1536,
     0.94, 0.030, 0.70, 0.040,
     0.95, 4.5, 8.0, 10.0, 10.0, 0.0,
     9, 3, 1.15, 238.0, 46.0, false},
};

} // namespace

const ChipProfile *ChipProfile::lookup(std::string_view ShortName) {
  for (const ChipProfile &P : Profiles)
    if (ShortName == P.ShortName)
      return &P;
  return nullptr;
}

const ChipProfile *ChipProfile::all(size_t &Count) {
  Count = sizeof(Profiles) / sizeof(Profiles[0]);
  return Profiles;
}
