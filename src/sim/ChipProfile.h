//===- sim/ChipProfile.h - Per-GPU model parameters -------------*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameter sets modelling the seven Nvidia GPUs of the paper's Tab. 1.
///
/// The paper ran on physical GTX 980, Quadro K5200, GTX Titan, Tesla K20,
/// GTX 770, Tesla C2075 and Tesla C2050 devices. This reproduction replaces
/// each with a parameterised weak-memory simulator profile. The parameters
/// encode per-architecture microarchitectural characteristics (natural
/// "patch" granularity, store-drain behaviour, congestion sensitivity,
/// clock and power) so that the paper's tuning pipeline *discovers* the
/// per-chip results of Tab. 2 rather than having them hard-coded.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_SIM_CHIPPROFILE_H
#define GPUWMM_SIM_CHIPPROFILE_H

#include <cstddef>
#include <string_view>

namespace gpuwmm {
namespace sim {

/// GPU architecture generations studied in the paper.
enum class GpuArch { Fermi, Kepler, Maxwell };

/// Returns a printable name for \p Arch.
const char *archName(GpuArch Arch);

/// Model parameters for one simulated GPU.
///
/// Memory-model parameters (see DESIGN.md Sec. 3):
///  * Addresses map to banks at PatchSizeWords granularity; stores to the
///    same bank drain in FIFO order, banks drain independently.
///  * A per-thread, per-bank store FIFO gets one probabilistic drain
///    opportunity per scheduler tick: the uncongested per-tick drain
///    probability is DrainBase, degraded by bank congestion down to
///    DrainFloor.
///  * Split-phase (async) loads complete per tick with probability
///    AsyncBase, degraded by read-side congestion down to AsyncFloor.
struct ChipProfile {
  const char *Name;      ///< Full marketing name, e.g. "GTX Titan".
  const char *ShortName; ///< Paper's short name, e.g. "titan".
  GpuArch Arch;
  int ReleaseYear;

  // --- Geometry -----------------------------------------------------------
  unsigned PatchSizeWords; ///< Natural patch size (words): 32 Kepler, 64 else.
  unsigned NumBanks;       ///< Independent drain channels.
  unsigned NumSMs;
  unsigned MaxThreadsPerSM;

  // --- Weak-memory timing ---------------------------------------------------
  double DrainBase;  ///< Per-tick store-drain probability, uncongested.
  double DrainFloor; ///< Lower bound under congestion.
  double AsyncBase;  ///< Per-tick async-load completion probability.
  double AsyncFloor; ///< Lower bound under congestion.

  // --- Congestion response --------------------------------------------------
  double Sensitivity;     ///< Scales incoming stress pressure.
  double PressureThresh;  ///< Pressure below this has no effect.
  double PressureCap;     ///< Saturation of effective pressure.
  double DrainCongestK;   ///< Drain slowdown per unit effective pressure.
  double AsyncCongestK;   ///< Async-load slowdown per unit effective pressure.
  double BaselineReorder; ///< Chip quirk: stress-independent extra drain
                          ///< stall probability (nonzero on Maxwell, which
                          ///< shows weak behaviour even unstressed; Fig. 3c).

  // --- Fence/atomic latency (ticks) ----------------------------------------
  unsigned FenceBaseLatency;  ///< Fixed device-fence round-trip.
  unsigned AtomicLatency;     ///< L2 round-trip for atomics.

  // --- Clock & power model --------------------------------------------------
  double ClockGHz;
  double BoardPowerW;        ///< Average board power while busy.
  double IdlePowerW;
  bool SupportsPowerQuery;   ///< Paper: only K5200/Titan/K20/C2075 do (NVML).

  unsigned maxConcurrentThreads() const { return NumSMs * MaxThreadsPerSM; }

  /// Returns the bank for word address \p A.
  unsigned bankOf(unsigned A) const {
    return (A / PatchSizeWords) % NumBanks;
  }

  /// Returns the profile registered under \p ShortName ("980", "k5200",
  /// "titan", "k20", "770", "c2075", "c2050"), or nullptr.
  static const ChipProfile *lookup(std::string_view ShortName);

  /// Returns all seven profiles, newest first (paper Tab. 1 order).
  static const ChipProfile *all(size_t &Count);
};

} // namespace sim
} // namespace gpuwmm

#endif // GPUWMM_SIM_CHIPPROFILE_H
