//===- sim/Scheduler.cpp - SIMT warp scheduler -------------------------------===//

#include "sim/Scheduler.h"

#include "sim/ThreadContext.h"

#include <algorithm>
#include <cassert>

using namespace gpuwmm;
using namespace gpuwmm::sim;

Scheduler::Scratch::Scratch() = default;
Scheduler::Scratch::~Scratch() = default;

void Scheduler::Scratch::clear() {
  Threads.clear(); // Destroys the kernel coroutines.
  Contexts.clear();
  Blocks.clear();
  for (std::vector<Warp> &Ws : SMWarps)
    Ws.clear();
  SMRotor.clear();
  TicketWaiters.clear();
}

Scheduler::Scheduler(const ChipProfile &Chip, MemorySystem &Mem, Rng &R,
                     const SchedulerConfig &Config, Scratch *ExtScratch)
    : Chip(Chip), Mem(Mem), R(R), Config(Config),
      OwnedScratch(ExtScratch ? nullptr : new Scratch),
      S(ExtScratch ? *ExtScratch : *OwnedScratch) {}

Scheduler::~Scheduler() { S.clear(); }

void Scheduler::launch(const LaunchConfig &LC, const KernelFn &Fn) {
  assert(S.Threads.empty() && "scheduler already launched");
  Launch = LC;
  const unsigned NumThreads = LC.totalThreads();
  Mem.registerThreads(NumThreads);
  S.Threads.resize(NumThreads);
  S.Contexts.reserve(NumThreads); // Reserve first: addresses must be stable.
  S.Blocks.assign(LC.GridDim, BlockState{});
  if (S.SMWarps.size() < Chip.NumSMs)
    S.SMWarps.resize(Chip.NumSMs);
  for (std::vector<Warp> &Ws : S.SMWarps)
    Ws.clear();
  S.SMRotor.assign(Chip.NumSMs, 0);

  // Block placement: deterministic round-robin natively; random placement
  // under thread randomisation (blocks move as units, so block membership
  // is honoured).
  std::vector<unsigned> BlockToSM(LC.GridDim);
  for (unsigned B = 0; B != LC.GridDim; ++B)
    BlockToSM[B] = B % Chip.NumSMs;
  if (Config.RandomiseThreads)
    for (unsigned B = 0; B != LC.GridDim; ++B)
      BlockToSM[B] = static_cast<unsigned>(R.below(Chip.NumSMs));

  for (unsigned B = 0; B != LC.GridDim; ++B) {
    BlockState &BS = S.Blocks[B];
    BS.FirstTid = B * LC.BlockDim;
    BS.NumThreads = LC.BlockDim;
    BS.Live = LC.BlockDim;

    // Warps never straddle blocks (CUDA guarantees this).
    for (unsigned W = 0; W * WarpSize < LC.BlockDim; ++W) {
      Warp Wp;
      Wp.FirstTid = BS.FirstTid + W * WarpSize;
      Wp.NumThreads = std::min(WarpSize, LC.BlockDim - W * WarpSize);
      S.SMWarps[BlockToSM[B]].push_back(Wp);
    }

    for (unsigned L = 0; L != LC.BlockDim; ++L) {
      const unsigned Tid = BS.FirstTid + L;
      S.Contexts.emplace_back(*this, Tid, B, L, LC);
      SimThread &T = S.Threads[Tid];
      T.Block = B;
      T.Coro = Fn(S.Contexts.back());
      assert(T.Coro.valid() && "kernel factory returned an invalid kernel");
    }
  }
  Live = NumThreads;

  // Under randomisation, also shuffle each SM's resident warp order (warps
  // stay intact: thread ids within a warp are never permuted apart).
  if (Config.RandomiseThreads)
    for (auto &Ws : S.SMWarps)
      R.shuffle(Ws);
}

bool Scheduler::threadEligible(const SimThread &T) const {
  return T.State == ThreadState::Sleeping && T.WakeTick <= Now;
}

void Scheduler::sleep(SimThread &T, unsigned Latency) {
  T.State = ThreadState::Sleeping;
  T.WakeTick = Now + std::max(1u, Latency);
}

void Scheduler::resumeThread(unsigned Tid) {
  SimThread &T = S.Threads[Tid];
  assert(threadEligible(T) && "resuming an ineligible thread");
  // A pending inserted fence executes as its own instruction before the
  // kernel proceeds: first the fence's round-trip latency elapses, then
  // its drain takes effect.
  if (T.PendingFenceStage == 1) {
    T.PendingFenceStage = 2;
    sleep(T, Chip.FenceBaseLatency);
    return;
  }
  if (T.PendingFenceStage == 2) {
    T.PendingFenceStage = 0;
    sleep(T, Mem.fenceDevice(Tid));
    return;
  }
  T.State = ThreadState::Running;
  T.Coro.resume();
  if (T.Coro.done()) {
    T.State = ThreadState::Done;
    --Live;
    BlockState &BS = S.Blocks[T.Block];
    assert(BS.Live > 0);
    --BS.Live;
    // A thread exiting while block siblings wait at a barrier is barrier
    // divergence: undefined behaviour in CUDA, a fatal fault here.
    if (BS.AtBarrier > 0)
      DivergenceFlag = true;
    // Note: the thread's buffered stores are NOT drained on exit; they
    // continue to drain asynchronously, as on real hardware. The kernel
    // boundary (end of run) performs the full drain.
    return;
  }
  assert(T.State != ThreadState::Running &&
         "kernel step must end in an awaited operation");
}

RunResult Scheduler::run() {
  RunResult Result;
  while (Live > 0) {
    ++Now;
    if (DivergenceFlag || FaultFlag) {
      Result.Status = DivergenceFlag ? RunStatus::BarrierDivergence
                                     : RunStatus::KernelFault;
      break;
    }
    if (Now > Config.MaxTicks) {
      Result.Status = RunStatus::Timeout;
      break;
    }

    Mem.tick(Now);

    // Wake async-load waiters whose tickets completed.
    for (size_t I = 0; I != S.TicketWaiters.size();) {
      const unsigned Tid = S.TicketWaiters[I];
      SimThread &T = S.Threads[Tid];
      if (T.State == ThreadState::OnTicket && Mem.asyncDone(T.Ticket)) {
        T.RetVal = Mem.asyncValue(T.Ticket);
        T.State = ThreadState::Sleeping;
        T.WakeTick = Now;
        S.TicketWaiters[I] = S.TicketWaiters.back();
        S.TicketWaiters.pop_back();
        continue;
      }
      ++I;
    }

    bool Issued = false;
    for (unsigned SM = 0; SM != S.SMRotor.size(); ++SM) {
      auto &Ws = S.SMWarps[SM];
      if (Ws.empty())
        continue;
      unsigned Budget = Config.IssueWidthPerSM;
      unsigned Start = S.SMRotor[SM];
      if (Config.RandomiseThreads)
        Start = static_cast<unsigned>(R.below(Ws.size()));
      for (unsigned K = 0; K != Ws.size() && Budget != 0; ++K) {
        const Warp &W = Ws[(Start + K) % Ws.size()];
        // Warp-priority jitter under randomisation.
        if (Config.RandomiseThreads && R.chance(0.15))
          continue;
        bool WarpIssued = false;
        for (unsigned L = 0; L != W.NumThreads; ++L) {
          const unsigned Tid = W.FirstTid + L;
          if (!threadEligible(S.Threads[Tid]))
            continue;
          resumeThread(Tid);
          WarpIssued = true;
        }
        if (WarpIssued) {
          --Budget;
          Issued = true;
        }
      }
      S.SMRotor[SM] = (S.SMRotor[SM] + 1) % Ws.size();
    }

    if (!Issued && Live > 0 && !Mem.hasPendingWork() &&
        S.TicketWaiters.empty()) {
      // Nothing ran: deadlocked unless some thread is merely sleeping (it
      // will become eligible at its wake tick).
      bool AnySleeping = false;
      for (const SimThread &T : S.Threads)
        AnySleeping |= T.State == ThreadState::Sleeping;
      if (!AnySleeping) {
        bool AnyAtBarrier = false;
        for (const BlockState &BS : S.Blocks)
          AnyAtBarrier |= BS.AtBarrier > 0;
        Result.Status = AnyAtBarrier ? RunStatus::BarrierDivergence
                                     : RunStatus::Deadlock;
        break;
      }
    }
  }

  // Kernel boundaries synchronise: everything becomes visible.
  Mem.drainAll();
  Result.Ticks = Now;
  Result.Mem = Mem.stats();
  return Result;
}

//===----------------------------------------------------------------------===//
// Thread operations
//===----------------------------------------------------------------------===//

void Scheduler::armPolicyFence(SimThread &T, int Site) {
  if (!Policy || !Policy->fenceAfter(Site))
    return;
  T.PendingFenceStage = 1;
}

void Scheduler::opStore(unsigned Tid, Addr A, Word V, int Site) {
  SimThread &T = S.Threads[Tid];
  Mem.store(Tid, T.Block, A, V);
  sleep(T, 1);
  armPolicyFence(T, Site);
}

void Scheduler::opLoad(unsigned Tid, Addr A, int Site) {
  SimThread &T = S.Threads[Tid];
  T.RetVal = Mem.load(Tid, T.Block, A);
  sleep(T, 1);
  armPolicyFence(T, Site);
}

void Scheduler::opAtomicCAS(unsigned Tid, Addr A, Word Cmp, Word Val,
                            int Site) {
  SimThread &T = S.Threads[Tid];
  T.RetVal = Mem.atomicCAS(Tid, A, Cmp, Val);
  sleep(T, Chip.AtomicLatency);
  armPolicyFence(T, Site);
}

void Scheduler::opAtomicExch(unsigned Tid, Addr A, Word Val, int Site) {
  SimThread &T = S.Threads[Tid];
  T.RetVal = Mem.atomicExch(Tid, A, Val);
  sleep(T, Chip.AtomicLatency);
  armPolicyFence(T, Site);
}

void Scheduler::opAtomicAdd(unsigned Tid, Addr A, Word Val, int Site) {
  SimThread &T = S.Threads[Tid];
  T.RetVal = Mem.atomicAdd(Tid, A, Val);
  sleep(T, Chip.AtomicLatency);
  armPolicyFence(T, Site);
}

void Scheduler::opFenceDevice(unsigned Tid) {
  sleep(S.Threads[Tid], Mem.fenceDevice(Tid));
}

void Scheduler::opFenceBlock(unsigned Tid) {
  SimThread &T = S.Threads[Tid];
  sleep(T, Mem.fenceBlock(Tid, T.Block));
}

void Scheduler::opBuiltinFence(unsigned Tid) {
  if (!BuiltinFences) {
    sleep(S.Threads[Tid], 1);
    return;
  }
  opFenceDevice(Tid);
}

void Scheduler::opAsyncIssue(unsigned Tid, Addr A) {
  SimThread &T = S.Threads[Tid];
  T.RetVal = Mem.issueAsyncLoad(Tid, A);
  sleep(T, 1);
}

void Scheduler::opAsyncWait(unsigned Tid, unsigned Ticket) {
  SimThread &T = S.Threads[Tid];
  if (Mem.asyncDone(Ticket)) {
    T.RetVal = Mem.asyncValue(Ticket);
    sleep(T, 1);
    return;
  }
  T.State = ThreadState::OnTicket;
  T.Ticket = Ticket;
  S.TicketWaiters.push_back(Tid);
}

void Scheduler::opBarrier(unsigned Tid) {
  SimThread &T = S.Threads[Tid];
  BlockState &BS = S.Blocks[T.Block];
  T.State = ThreadState::AtBarrier;
  ++BS.AtBarrier;
  if (BS.AtBarrier == BS.Live)
    releaseBarrier(T.Block);
}

void Scheduler::releaseBarrier(unsigned Block) {
  BlockState &BS = S.Blocks[Block];
  // The barrier-release event precedes the per-participant block-fence
  // promotions it implies (the sink lives on the memory system so the
  // whole execution shares one event stream).
  if (TraceSink *TS = Mem.traceSink())
    TS->event({TraceEventKind::BarrierRelease, LoadSource::Memory, false, 0,
               Block, 0, 0, 0, 0, Now});
  // CUDA guarantees block-level memory consistency at barriers: every
  // participant's buffered stores become visible to the block.
  for (unsigned L = 0; L != BS.NumThreads; ++L) {
    const unsigned Tid = BS.FirstTid + L;
    SimThread &T = S.Threads[Tid];
    if (T.State != ThreadState::AtBarrier)
      continue;
    Mem.fenceBlock(Tid, Block);
    T.State = ThreadState::Sleeping;
    T.WakeTick = Now + 1;
  }
  BS.AtBarrier = 0;
}

void Scheduler::opYield(unsigned Tid, unsigned Ticks) {
  sleep(S.Threads[Tid], std::max(1u, Ticks));
}

void Scheduler::opFault(unsigned Tid) {
  (void)Tid;
  FaultFlag = true;
}

Word Scheduler::retVal(unsigned Tid) const { return S.Threads[Tid].RetVal; }
