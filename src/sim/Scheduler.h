//===- sim/Scheduler.h - SIMT warp scheduler --------------------*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SIMT scheduler: owns the simulated threads of one kernel launch,
/// groups them into warps and blocks, places blocks onto SMs, and advances
/// execution tick by tick. Implements CUDA barriers (with divergence
/// detection), per-site fence policies, and the thread-randomisation
/// heuristic of the paper's Sec. 3.5 (permuted block placement plus warp
/// scheduling jitter, always honouring warp and block membership).
///
/// The scheduler's launch-lifetime containers live in a Scheduler::Scratch
/// that can be supplied by an ExecutionContext: the scheduler clears it
/// (capacity preserved) when it finishes, so back-to-back launches on a
/// reused context allocate nothing beyond the coroutine frames themselves
/// (DESIGN.md Sec. 12).
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_SIM_SCHEDULER_H
#define GPUWMM_SIM_SCHEDULER_H

#include "sim/FencePolicy.h"
#include "sim/Kernel.h"
#include "sim/MemorySystem.h"
#include "sim/Types.h"
#include "support/Rng.h"

#include <memory>
#include <vector>

namespace gpuwmm {
namespace sim {

class ThreadContext;

/// Execution state of one simulated thread.
enum class ThreadState {
  Sleeping,  ///< Eligible to run once WakeTick is reached.
  Running,   ///< Currently inside a resume (transient).
  AtBarrier, ///< Parked at __syncthreads.
  OnTicket,  ///< Parked awaiting an async-load completion.
  Done       ///< Coroutine finished.
};

/// Scheduler/launch options.
struct SchedulerConfig {
  /// Thread randomisation (paper Sec. 3.5): shuffles block placement and
  /// adds warp-priority jitter while respecting warp/block membership.
  bool RandomiseThreads = false;
  /// Warps each SM may issue per tick.
  unsigned IssueWidthPerSM = 2;
  /// Tick budget; exceeding it reports RunStatus::Timeout (the analogue of
  /// the paper's 30-second wall-clock timeout).
  uint64_t MaxTicks = 400000;
};

/// Executes one kernel launch to completion.
class Scheduler {
public:
  /// The scheduler's launch-lifetime containers, recyclable across
  /// launches. The owning scheduler fills these at launch() and clears
  /// them (capacity preserved) in its destructor; contents are internal
  /// to the scheduler.
  struct Scratch {
    // Out-of-line special members: Contexts holds the (here incomplete)
    // ThreadContext type, so instantiation must happen in Scheduler.cpp.
    Scratch();
    ~Scratch();
    Scratch(const Scratch &) = delete;
    Scratch &operator=(const Scratch &) = delete;

    struct SimThread {
      Kernel Coro;
      ThreadState State = ThreadState::Sleeping;
      uint64_t WakeTick = 0;
      unsigned Ticket = 0;
      Word RetVal = 0;
      unsigned Block = 0;
      /// Inserted-fence micro-sequencer: a policy fence is a separate
      /// instruction after the access, so its drain lands FenceBaseLatency
      /// ticks later — leaving the genuine reordering window a trailing
      /// fence cannot close (e.g. after an unlock).
      unsigned PendingFenceStage = 0;
    };

    struct Warp {
      unsigned FirstTid = 0;
      unsigned NumThreads = 0;
    };

    struct BlockState {
      unsigned Live = 0;       ///< Threads not yet Done.
      unsigned AtBarrier = 0;  ///< Threads parked at the barrier.
      unsigned FirstTid = 0;
      unsigned NumThreads = 0;
    };

    std::vector<SimThread> Threads;
    /// Stable for a launch: reserved to the thread count before any
    /// element is created, so coroutines may hold references into it.
    std::vector<ThreadContext> Contexts;
    std::vector<BlockState> Blocks;
    std::vector<std::vector<Warp>> SMWarps; ///< Warps resident on each SM.
    std::vector<unsigned> SMRotor;          ///< Round-robin start per SM.
    std::vector<unsigned> TicketWaiters;

    /// Destroys launch state (coroutines included), keeping capacity.
    void clear();
  };

  /// \p S supplies recyclable containers (an ExecutionContext's, usually);
  /// when null the scheduler privately owns a scratch.
  Scheduler(const ChipProfile &Chip, MemorySystem &Mem, Rng &R,
            const SchedulerConfig &Config, Scratch *S = nullptr);
  ~Scheduler();

  Scheduler(const Scheduler &) = delete;
  Scheduler &operator=(const Scheduler &) = delete;

  /// Creates the grid's threads and their coroutines.
  void launch(const LaunchConfig &LC, const KernelFn &Fn);

  /// Installs the per-site fence policy (not owned; may be null).
  void setFencePolicy(const FencePolicy *P) { Policy = P; }

  /// Enables/disables the application's built-in fences (the paper's
  /// "-nf" variants disable them).
  void setBuiltinFences(bool Enabled) { BuiltinFences = Enabled; }

  /// Runs the launched grid to completion (or fault/timeout).
  RunResult run();

  // --- Operations invoked by ThreadContext ---------------------------------

  void opStore(unsigned Tid, Addr A, Word V, int Site);
  void opLoad(unsigned Tid, Addr A, int Site);
  void opAtomicCAS(unsigned Tid, Addr A, Word Cmp, Word Val, int Site);
  void opAtomicExch(unsigned Tid, Addr A, Word Val, int Site);
  void opAtomicAdd(unsigned Tid, Addr A, Word Val, int Site);
  void opFenceDevice(unsigned Tid);
  void opFenceBlock(unsigned Tid);
  void opBuiltinFence(unsigned Tid);
  void opAsyncIssue(unsigned Tid, Addr A);
  void opAsyncWait(unsigned Tid, unsigned Ticket);
  void opBarrier(unsigned Tid);
  void opYield(unsigned Tid, unsigned Ticks);
  void opFault(unsigned Tid);

  Word retVal(unsigned Tid) const;
  Rng &rng() { return R; }
  uint64_t now() const { return Now; }

private:
  using SimThread = Scratch::SimThread;
  using Warp = Scratch::Warp;
  using BlockState = Scratch::BlockState;

  /// Puts \p T to sleep for \p Latency ticks.
  void sleep(SimThread &T, unsigned Latency);

  /// Arms the delayed policy fence after an access at \p Site.
  void armPolicyFence(SimThread &T, int Site);

  void resumeThread(unsigned Tid);
  void releaseBarrier(unsigned Block);
  bool threadEligible(const SimThread &T) const;

  const ChipProfile &Chip;
  MemorySystem &Mem;
  Rng &R;
  SchedulerConfig Config;

  const FencePolicy *Policy = nullptr;
  bool BuiltinFences = true;

  std::unique_ptr<Scratch> OwnedScratch; ///< Engaged when none was passed.
  Scratch &S;

  LaunchConfig Launch;
  uint64_t Now = 0;
  unsigned Live = 0;
  bool FaultFlag = false;
  bool DivergenceFlag = false;
};

} // namespace sim
} // namespace gpuwmm

#endif // GPUWMM_SIM_SCHEDULER_H
