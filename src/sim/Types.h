//===- sim/Types.h - Basic simulator types ----------------------*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic types shared by the GPU simulator: words, addresses, launch
/// configurations and run statistics.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_SIM_TYPES_H
#define GPUWMM_SIM_TYPES_H

#include <cstdint>

namespace gpuwmm {
namespace sim {

/// All simulated memory is 32-bit words; addresses are word indices into the
/// device's single global address space.
using Word = uint32_t;
using Addr = uint32_t;

/// Number of threads in a warp (as in CUDA).
inline constexpr unsigned WarpSize = 32;

/// A one-dimensional kernel launch: GridDim blocks of BlockDim threads.
/// (All case studies in the paper use 1-D launches.)
struct LaunchConfig {
  unsigned GridDim = 1;
  unsigned BlockDim = WarpSize;

  unsigned totalThreads() const { return GridDim * BlockDim; }
};

/// Memory-operation counters accumulated over a kernel execution.
struct MemStats {
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t Atomics = 0;
  uint64_t DeviceFences = 0;
  uint64_t BlockFences = 0;
  uint64_t DrainedStores = 0;
  uint64_t AsyncLoads = 0;
  uint64_t ForcedSelfDrains = 0;

  uint64_t totalAccesses() const { return Loads + Stores + Atomics; }
};

/// How a simulated kernel execution ended.
enum class RunStatus {
  Completed,        ///< All threads ran to completion.
  Timeout,          ///< Tick budget exceeded (cf. the paper's 30s timeout).
  BarrierDivergence,///< Barrier executed under divergence (UB in CUDA).
  Deadlock,         ///< No thread could ever make progress again.
  KernelFault       ///< A kernel signalled an internal invariant violation.
};

/// Result of one kernel execution.
struct RunResult {
  RunStatus Status = RunStatus::Completed;
  uint64_t Ticks = 0;
  MemStats Mem;

  bool completed() const { return Status == RunStatus::Completed; }
};

} // namespace sim
} // namespace gpuwmm

#endif // GPUWMM_SIM_TYPES_H
