//===- sim/MemorySystem.h - Weak GPU memory model ---------------*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The operational weak memory model at the heart of the simulated GPU.
///
/// Model summary (DESIGN.md Sec. 3):
///  * Global memory is a flat array of words. Words map to banks at
///    patch-size granularity: bank(a) = (a / P) % NumBanks.
///  * Plain stores enter a per-thread, per-bank FIFO and drain
///    asynchronously (one probabilistic opportunity per bank per tick).
///    Same-bank stores stay ordered; different banks drain independently,
///    so cross-bank stores can become visible out of order (MP, SB).
///  * Split-phase ("async") loads bind their value at a later completion
///    tick, so a program-order-later store can become visible first (LB).
///    A later same-thread store to the same bank forces completion first,
///    so same-bank LB is impossible — matching the paper's observation
///    that no weak behaviour occurs when communication locations are
///    within one patch of each other.
///  * A plain load (or atomic) to a bank first drains the issuing thread's
///    own buffered stores to that bank (same-bank self-coherence), except
///    when the newest buffered store is to the same address (forwarding).
///  * Atomics act directly on globally visible memory without draining the
///    thread's other banks — the root cause of the spinlock bugs the paper
///    provokes (an unlock can become visible while the critical-section
///    store is still buffered).
///  * Device fences drain everything synchronously (with a latency cost);
///    block fences promote buffered stores to block visibility only.
///  * Bank congestion, injected by a CongestionSource, divides drain and
///    async-completion probabilities — the causal hook by which disjoint
///    scratchpad stress amplifies weak behaviours.
///
/// In sequential mode (used for reference runs) every operation takes
/// effect immediately and the model is sequentially consistent.
///
/// Every semantically meaningful event above (store issue, buffer drain,
/// load bind, async issue/completion, atomic, fence drain, block-fence
/// promotion, host write) is reported through the \ref TraceSink seam
/// (sim/TraceSink.h) when a sink is installed; the axiomatic consistency
/// checker (model/ConsistencyChecker.h) validates recorded executions
/// against the corresponding axioms (DESIGN.md Sec. 14).
///
/// Lifecycle (DESIGN.md Sec. 12): a MemorySystem is a reusable engine.
/// \ref reset rebinds it to a chip and restores the exact observable state
/// of a freshly constructed instance in O(state touched since the last
/// reset) — written words are zeroed via a dirty-address list, store-buffer
/// slots, async-load slots and overlays are emptied with their capacity
/// retained. Store buffers are slot-based (a vector with a head cursor)
/// rather than deque-based, so a reused context performs no per-run
/// allocation in steady state.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_SIM_MEMORYSYSTEM_H
#define GPUWMM_SIM_MEMORYSYSTEM_H

#include "sim/ChipProfile.h"
#include "sim/Congestion.h"
#include "sim/TraceSink.h"
#include "sim/Types.h"
#include "support/Rng.h"

#include <cassert>
#include <unordered_map>
#include <vector>

namespace gpuwmm {
namespace sim {

/// The simulated global memory with its weak-memory machinery.
class MemorySystem {
public:
  /// An unbound engine; call \ref reset before use. \p R is the RNG the
  /// engine draws from (not owned; typically the owning
  /// ExecutionContext's).
  explicit MemorySystem(Rng &R) : R(R) {}

  /// Convenience: an engine bound to \p Chip immediately (unit tests and
  /// one-shot uses).
  MemorySystem(const ChipProfile &Chip, Rng &R) : R(R) { reset(Chip); }

  /// Rebinds to \p NewChip and restores freshly-constructed observable
  /// state in O(touched): zeroes every word written since the last reset,
  /// empties store-buffer/async/overlay state (keeping capacity), clears
  /// statistics and re-arms the per-bank pressure cache.
  void reset(const ChipProfile &NewChip);

  /// Switches to sequentially consistent mode (reference runs).
  void setSequentialMode(bool SC) { SeqMode = SC; }
  bool sequentialMode() const { return SeqMode; }

  /// Installs the contention source (not owned). Null means no stress.
  void setCongestionSource(const CongestionSource *S) { Stress = S; }

  /// Installs the trace sink (not owned; null disables tracing). Every
  /// notification site is guarded by one pointer test, so the seam is
  /// zero-overhead when off and never perturbs results (the sink observes,
  /// it cannot steer; DESIGN.md Sec. 14). Cleared by \ref reset.
  void setTraceSink(TraceSink *S) { Sink = S; }
  TraceSink *traceSink() const { return Sink; }

  /// Declares the number of simulated threads (thread ids are dense).
  void registerThreads(unsigned NumThreads);

  /// Allocates \p Words words of zeroed global memory, aligned to the
  /// chip's patch size (as cudaMalloc aligns allocations in practice).
  Addr alloc(unsigned Words);

  /// Total words allocated so far.
  unsigned allocatedWords() const { return NextFree; }

  // --- Thread-facing operations -------------------------------------------

  void store(unsigned Tid, unsigned Block, Addr A, Word V);
  Word load(unsigned Tid, unsigned Block, Addr A);

  /// Atomic compare-and-swap; returns the old value.
  Word atomicCAS(unsigned Tid, Addr A, Word Compare, Word Value);
  /// Atomic exchange; returns the old value.
  Word atomicExch(unsigned Tid, Addr A, Word Value);
  /// Atomic add; returns the old value.
  Word atomicAdd(unsigned Tid, Addr A, Word Value);

  /// Device-scope fence: synchronously drains all of \p Tid's buffered
  /// stores and completes its pending async loads. Returns the latency in
  /// ticks the issuing thread must stall.
  unsigned fenceDevice(unsigned Tid);

  /// Block-scope fence: promotes \p Tid's buffered stores to block
  /// visibility (same-block loads will observe them). Returns latency.
  unsigned fenceBlock(unsigned Tid, unsigned Block);

  // --- Split-phase loads ----------------------------------------------------

  /// Issues an async load; returns a ticket. The value binds at a later
  /// completion tick. Must not target an address this thread stores to
  /// while the load is pending (checked in debug builds).
  unsigned issueAsyncLoad(unsigned Tid, Addr A);
  bool asyncDone(unsigned Ticket) const;
  Word asyncValue(unsigned Ticket) const;

  // --- Scheduler integration ------------------------------------------------

  /// Advances asynchronous machinery by one tick: drain opportunities for
  /// every non-empty store FIFO and completion opportunities for pending
  /// async loads. Quiescent ticks (nothing buffered, nothing in flight)
  /// only advance the clock, so they stay inline and draw nothing.
  void tick(uint64_t Now) {
    CurrentTick = Now;
    if (!SeqMode && (PendingAsyncCount != 0 || !ActiveQueues.empty()))
      tickWork(Now);
  }

  /// True while buffered stores or pending async loads exist.
  bool hasPendingWork() const {
    return !ActiveQueues.empty() || PendingAsyncCount != 0;
  }

  /// Synchronously drains everything owned by \p Tid (thread exit,
  /// barrier-free end of kernel for that thread).
  void drainThread(unsigned Tid);

  /// Drains every thread's buffers and completes all async loads (kernel
  /// boundaries synchronise in CUDA).
  void drainAll();

  // --- Host access (outside kernel execution) -------------------------------

  Word hostRead(Addr A) const;
  void hostWrite(Addr A, Word V);

  const MemStats &stats() const { return Stats; }
  const ChipProfile &chip() const {
    assert(Chip && "memory system not bound to a chip");
    return *Chip;
  }

  /// Effective write-side congestion pressure on \p Bank this tick
  /// (exposed for fence-latency modelling and tests).
  double effectiveWritePressure(uint64_t Now, unsigned Bank);

private:
  struct BufferedStore {
    Addr A;
    Word V;
    uint64_t StoreId;
    unsigned Block;
    bool BlockVisible;
  };

  /// One thread's FIFO of buffered stores for one bank: slot storage with
  /// a head cursor instead of a deque, so the backing allocation is
  /// reused across entries, runs and resets. When the queue empties the
  /// slots rewind to the front (StallUntil deliberately survives within a
  /// run: a later same-bank store still honours an armed stall, exactly as
  /// the deque-based engine behaved).
  struct BankQueue {
    std::vector<BufferedStore> Slots;
    size_t Head = 0;
    bool Active = false;     ///< Registered in ActiveQueues.
    bool Touched = false;    ///< Registered in TouchedQueues (reset list).
    uint64_t StallUntil = 0; ///< Baseline-reorder quirk stall.

    bool empty() const { return Head == Slots.size(); }
    size_t size() const { return Slots.size() - Head; }
    BufferedStore &front() { return Slots[Head]; }
    void push(const BufferedStore &E) { Slots.push_back(E); }
    void popFront() {
      ++Head;
      if (Head == Slots.size()) {
        Slots.clear();
        Head = 0;
      }
    }
    auto begin() { return Slots.begin() + static_cast<ptrdiff_t>(Head); }
    auto end() { return Slots.end(); }
  };

  struct ThreadBuffers {
    std::vector<BankQueue> Banks; ///< Grown to NumBanks on first use.
  };

  struct AsyncLoadSlot {
    unsigned Tid;
    Addr A;
    Word V = 0;
    bool Done = false;
  };

  struct OverlayValue {
    unsigned Block;
    Word V;
    uint64_t StoreId;
  };

  unsigned bankOf(Addr A) const { return Chip->bankOf(A); }

  /// Records that \p A has been written since the last reset, so reset()
  /// can zero exactly the touched words.
  void markDirty(Addr A) {
    if (!MemDirty[A]) {
      MemDirty[A] = 1;
      DirtyWords.push_back(A);
    }
  }

  /// Writes \p V to globally visible memory and invalidates block-visible
  /// overlay values for \p A. Per-location coherence: the write is dropped
  /// if a store with a newer id already reached this address (drains of
  /// two same-address stores can complete in either order, but the
  /// location's value history must respect the coherence order).
  void globalWrite(Addr A, Word V, uint64_t StoreId);

  /// Applies an atomic's result: unconditional (atomics serialise at the
  /// L2 by arrival), and the per-address coherence id is left untouched so
  /// that a plain store already in flight can still arrive afterwards and
  /// win — exactly the weak store-vs-atomic race real GPUs exhibit, and
  /// (unlike an id-ordered drop) always serialisable: the atomic
  /// observably read the pre-store value.
  void atomicWrite(Addr A, Word V);

  /// Makes one buffered store globally visible (with overlay bookkeeping).
  /// \p Tid is the owning thread (trace attribution).
  void applyStore(unsigned Tid, const BufferedStore &E);

  /// Applies every entry of \p Q to global memory, in order.
  void drainQueue(unsigned Tid, unsigned Bank, bool Forced);

  /// Drains \p Tid's queue for \p Bank if non-empty (same-bank coherence).
  void selfDrainBank(unsigned Tid, unsigned Bank);

  /// Completes any pending async loads of \p Tid on \p Bank (same-bank
  /// issue-order preservation).
  void completeThreadAsyncOnBank(unsigned Tid, unsigned Bank);

  void completeAsync(AsyncLoadSlot &Slot);

  /// Read as seen by (Tid, Block) ignoring the thread's own buffers.
  Word visibleRead(unsigned Block, Addr A) const;

  /// \ref visibleRead that also reports where the value came from
  /// (globally visible memory or a block-visible overlay value).
  Word visibleReadSrc(unsigned Block, Addr A, LoadSource &Src) const;

  /// Reports \p E to the installed sink, stamped with the current tick.
  /// Call sites guard with `if (Sink)` so the off path pays exactly one
  /// pointer test.
  void emit(TraceEvent E) {
    E.Tick = CurrentTick;
    Sink->event(E);
  }

  /// The non-quiescent body of \ref tick.
  void tickWork(uint64_t Now);

  double drainProb(uint64_t Now, unsigned Bank);
  double asyncProb(uint64_t Now, unsigned Bank);
  const BankPressure &pressure(uint64_t Now, unsigned Bank);

  const ChipProfile *Chip = nullptr; ///< Rebound by reset().
  Rng &R;
  const CongestionSource *Stress = nullptr;
  TraceSink *Sink = nullptr; ///< Null = tracing off (the common case).
  bool SeqMode = false;

  std::vector<Word> Mem;
  std::vector<uint64_t> MemWriteId; ///< Coherence order per address.
  std::vector<uint8_t> MemDirty;    ///< Written since the last reset.
  std::vector<Addr> DirtyWords;     ///< Addresses to zero on reset.
  unsigned NextFree = 0;

  std::vector<ThreadBuffers> Buffers;
  std::vector<std::pair<unsigned, unsigned>> ActiveQueues; ///< (tid, bank)
  /// Every queue touched since the last reset — a superset of
  /// ActiveQueues (which tick() prunes lazily) used for O(touched) reset.
  std::vector<std::pair<unsigned, unsigned>> TouchedQueues;
  std::vector<unsigned> DrainTids; ///< drainAll scratch (O(touched)).

  std::vector<AsyncLoadSlot> AsyncSlots;
  unsigned PendingAsyncCount = 0;

  /// Block-visible values not yet globally drained, keyed by address.
  std::unordered_multimap<Addr, OverlayValue> Overlay;

  uint64_t NextStoreId = 1;
  uint64_t CurrentTick = 0;

  // Per-tick pressure cache.
  std::vector<BankPressure> PressureCache;
  std::vector<uint64_t> PressureCacheTick;

  /// Drain/async probabilities with no congestion source attached: zero
  /// pressure makes both pure chip constants, precomputed at reset so the
  /// unstressed hot path skips the floating-point pipeline entirely.
  double CalmDrainProb = 0.0;
  double CalmAsyncProb = 0.0;

  MemStats Stats;
};

} // namespace sim
} // namespace gpuwmm

#endif // GPUWMM_SIM_MEMORYSYSTEM_H
