//===- sim/MemorySystem.h - Weak GPU memory model ---------------*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The operational weak memory model at the heart of the simulated GPU.
///
/// Model summary (DESIGN.md Sec. 3):
///  * Global memory is a flat array of words. Words map to banks at
///    patch-size granularity: bank(a) = (a / P) % NumBanks.
///  * Plain stores enter a per-thread, per-bank FIFO and drain
///    asynchronously (one probabilistic opportunity per bank per tick).
///    Same-bank stores stay ordered; different banks drain independently,
///    so cross-bank stores can become visible out of order (MP, SB).
///  * Split-phase ("async") loads bind their value at a later completion
///    tick, so a program-order-later store can become visible first (LB).
///    A later same-thread store to the same bank forces completion first,
///    so same-bank LB is impossible — matching the paper's observation
///    that no weak behaviour occurs when communication locations are
///    within one patch of each other.
///  * A plain load (or atomic) to a bank first drains the issuing thread's
///    own buffered stores to that bank (same-bank self-coherence), except
///    when the newest buffered store is to the same address (forwarding).
///  * Atomics act directly on globally visible memory without draining the
///    thread's other banks — the root cause of the spinlock bugs the paper
///    provokes (an unlock can become visible while the critical-section
///    store is still buffered).
///  * Device fences drain everything synchronously (with a latency cost);
///    block fences promote buffered stores to block visibility only.
///  * Bank congestion, injected by a CongestionSource, divides drain and
///    async-completion probabilities — the causal hook by which disjoint
///    scratchpad stress amplifies weak behaviours.
///
/// In sequential mode (used for reference runs) every operation takes
/// effect immediately and the model is sequentially consistent.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_SIM_MEMORYSYSTEM_H
#define GPUWMM_SIM_MEMORYSYSTEM_H

#include "sim/ChipProfile.h"
#include "sim/Congestion.h"
#include "sim/Types.h"
#include "support/Rng.h"

#include <deque>
#include <unordered_map>
#include <vector>

namespace gpuwmm {
namespace sim {

/// The simulated global memory with its weak-memory machinery.
class MemorySystem {
public:
  MemorySystem(const ChipProfile &Chip, Rng &R);

  /// Switches to sequentially consistent mode (reference runs).
  void setSequentialMode(bool SC) { SeqMode = SC; }
  bool sequentialMode() const { return SeqMode; }

  /// Installs the contention source (not owned). Null means no stress.
  void setCongestionSource(const CongestionSource *S) { Stress = S; }

  /// Declares the number of simulated threads (thread ids are dense).
  void registerThreads(unsigned NumThreads);

  /// Allocates \p Words words of zeroed global memory, aligned to the
  /// chip's patch size (as cudaMalloc aligns allocations in practice).
  Addr alloc(unsigned Words);

  /// Total words allocated so far.
  unsigned allocatedWords() const { return NextFree; }

  // --- Thread-facing operations -------------------------------------------

  void store(unsigned Tid, unsigned Block, Addr A, Word V);
  Word load(unsigned Tid, unsigned Block, Addr A);

  /// Atomic compare-and-swap; returns the old value.
  Word atomicCAS(unsigned Tid, Addr A, Word Compare, Word Value);
  /// Atomic exchange; returns the old value.
  Word atomicExch(unsigned Tid, Addr A, Word Value);
  /// Atomic add; returns the old value.
  Word atomicAdd(unsigned Tid, Addr A, Word Value);

  /// Device-scope fence: synchronously drains all of \p Tid's buffered
  /// stores and completes its pending async loads. Returns the latency in
  /// ticks the issuing thread must stall.
  unsigned fenceDevice(unsigned Tid);

  /// Block-scope fence: promotes \p Tid's buffered stores to block
  /// visibility (same-block loads will observe them). Returns latency.
  unsigned fenceBlock(unsigned Tid, unsigned Block);

  // --- Split-phase loads ----------------------------------------------------

  /// Issues an async load; returns a ticket. The value binds at a later
  /// completion tick. Must not target an address this thread stores to
  /// while the load is pending (checked in debug builds).
  unsigned issueAsyncLoad(unsigned Tid, Addr A);
  bool asyncDone(unsigned Ticket) const;
  Word asyncValue(unsigned Ticket) const;

  // --- Scheduler integration ------------------------------------------------

  /// Advances asynchronous machinery by one tick: drain opportunities for
  /// every non-empty store FIFO and completion opportunities for pending
  /// async loads.
  void tick(uint64_t Now);

  /// True while buffered stores or pending async loads exist.
  bool hasPendingWork() const {
    return !ActiveQueues.empty() || PendingAsyncCount != 0;
  }

  /// Synchronously drains everything owned by \p Tid (thread exit,
  /// barrier-free end of kernel for that thread).
  void drainThread(unsigned Tid);

  /// Drains every thread's buffers and completes all async loads (kernel
  /// boundaries synchronise in CUDA).
  void drainAll();

  // --- Host access (outside kernel execution) -------------------------------

  Word hostRead(Addr A) const;
  void hostWrite(Addr A, Word V);

  const MemStats &stats() const { return Stats; }
  const ChipProfile &chip() const { return Chip; }

  /// Effective write-side congestion pressure on \p Bank this tick
  /// (exposed for fence-latency modelling and tests).
  double effectiveWritePressure(uint64_t Now, unsigned Bank);

private:
  struct BufferedStore {
    Addr A;
    Word V;
    uint64_t StoreId;
    unsigned Block;
    bool BlockVisible;
  };

  struct BankQueue {
    std::deque<BufferedStore> Entries;
    bool Active = false;       ///< Registered in ActiveQueues.
    uint64_t StallUntil = 0;   ///< Baseline-reorder quirk stall.
  };

  struct ThreadBuffers {
    std::vector<BankQueue> Banks; ///< Sized NumBanks on first use.
  };

  struct AsyncLoadSlot {
    unsigned Tid;
    Addr A;
    Word V = 0;
    bool Done = false;
  };

  struct OverlayValue {
    unsigned Block;
    Word V;
    uint64_t StoreId;
  };

  unsigned bankOf(Addr A) const { return Chip.bankOf(A); }

  /// Writes \p V to globally visible memory and invalidates block-visible
  /// overlay values for \p A. Per-location coherence: the write is dropped
  /// if a store with a newer id already reached this address (drains of
  /// two same-address stores can complete in either order, but the
  /// location's value history must respect the coherence order).
  void globalWrite(Addr A, Word V, uint64_t StoreId);

  /// Applies an atomic's result: unconditional (atomics serialise at the
  /// L2 by arrival), and the per-address coherence id is left untouched so
  /// that a plain store already in flight can still arrive afterwards and
  /// win — exactly the weak store-vs-atomic race real GPUs exhibit, and
  /// (unlike an id-ordered drop) always serialisable: the atomic
  /// observably read the pre-store value.
  void atomicWrite(Addr A, Word V);

  /// Makes one buffered store globally visible (with overlay bookkeeping).
  void applyStore(const BufferedStore &E);

  /// Applies every entry of \p Q to global memory, in order.
  void drainQueue(unsigned Tid, unsigned Bank, bool Forced);

  /// Drains \p Tid's queue for \p Bank if non-empty (same-bank coherence).
  void selfDrainBank(unsigned Tid, unsigned Bank);

  /// Completes any pending async loads of \p Tid on \p Bank (same-bank
  /// issue-order preservation).
  void completeThreadAsyncOnBank(unsigned Tid, unsigned Bank);

  void completeAsync(AsyncLoadSlot &Slot);

  /// Read as seen by (Tid, Block) ignoring the thread's own buffers.
  Word visibleRead(unsigned Block, Addr A) const;

  double drainProb(uint64_t Now, unsigned Bank);
  double asyncProb(uint64_t Now, unsigned Bank);
  const BankPressure &pressure(uint64_t Now, unsigned Bank);

  const ChipProfile &Chip;
  Rng &R;
  const CongestionSource *Stress = nullptr;
  bool SeqMode = false;

  std::vector<Word> Mem;
  std::vector<uint64_t> MemWriteId; ///< Coherence order per address.
  unsigned NextFree = 0;

  std::vector<ThreadBuffers> Buffers;
  std::vector<std::pair<unsigned, unsigned>> ActiveQueues; ///< (tid, bank)

  std::vector<AsyncLoadSlot> AsyncSlots;
  unsigned PendingAsyncCount = 0;

  /// Block-visible values not yet globally drained, keyed by address.
  std::unordered_multimap<Addr, OverlayValue> Overlay;

  uint64_t NextStoreId = 1;
  uint64_t CurrentTick = 0;

  // Per-tick pressure cache.
  std::vector<BankPressure> PressureCache;
  std::vector<uint64_t> PressureCacheTick;

  MemStats Stats;
};

} // namespace sim
} // namespace gpuwmm

#endif // GPUWMM_SIM_MEMORYSYSTEM_H
