//===- sim/ExecutionContext.cpp - Reusable execution engine state -------------===//

#include "sim/ExecutionContext.h"

#include <cassert>
#include <memory>
#include <vector>

using namespace gpuwmm;
using namespace gpuwmm::sim;

namespace {

/// The per-thread context pool. Ownership lives in All (freed at thread
/// exit); Free holds the currently leasable subset. A plain free list —
/// leases may be released in any order, though stack-scoped use makes the
/// order LIFO in practice, which keeps the hottest context hot.
struct ThreadContextPool {
  std::vector<std::unique_ptr<ExecutionContext>> All;
  std::vector<ExecutionContext *> Free;
};

ThreadContextPool &pool() {
  static thread_local ThreadContextPool P;
  return P;
}

} // namespace

ContextLease::ContextLease() {
  ThreadContextPool &P = pool();
  Owner = &P;
  if (!P.Free.empty()) {
    Ctx = P.Free.back();
    P.Free.pop_back();
    return;
  }
  P.All.push_back(std::make_unique<ExecutionContext>());
  Ctx = P.All.back().get();
}

ContextLease::~ContextLease() {
  if (!Ctx)
    return;
  assert(Owner == &pool() &&
         "context lease released on a thread other than its acquirer");
  // A recycled context must come back with tracing and streaming
  // disarmed: the next acquirer opted into nothing (the trace buffer
  // itself is recycled and cleared by reset()), and a streaming sink is
  // external state the pool must never retain a pointer to.
  Ctx->requestTracing(false);
  Ctx->requestStreaming(nullptr);
  // Release builds: a foreign-thread release must not push into this
  // thread's free list (the context belongs to the acquirer's All vector
  // and would dangle once that thread exits). Dropping the lease merely
  // retires one context for the acquirer thread's lifetime — safe.
  if (Owner == &pool())
    pool().Free.push_back(Ctx);
}
