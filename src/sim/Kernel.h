//===- sim/Kernel.h - Coroutine kernel type ---------------------*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coroutine type used to express simulated GPU kernels.
///
/// Every simulated thread runs one Kernel coroutine. Each memory operation
/// (via ThreadContext) suspends the coroutine back into the scheduler, so
/// instruction interleaving is fully under simulator control.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_SIM_KERNEL_H
#define GPUWMM_SIM_KERNEL_H

#include <coroutine>
#include <exception>
#include <functional>
#include <utility>

namespace gpuwmm {
namespace sim {

class ThreadContext;

/// An owning handle for one simulated GPU thread's coroutine.
///
/// Kernels are written as:
/// \code
///   sim::Kernel myKernel(sim::ThreadContext &Ctx, ...captures...) {
///     Word V = co_await Ctx.ld(Address);
///     co_await Ctx.st(Address, V + 1);
///   }
/// \endcode
class Kernel {
public:
  struct promise_type {
    Kernel get_return_object() {
      return Kernel(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { std::terminate(); }
  };

  Kernel() = default;
  explicit Kernel(std::coroutine_handle<promise_type> H) : Handle(H) {}
  Kernel(Kernel &&O) noexcept : Handle(std::exchange(O.Handle, nullptr)) {}
  Kernel &operator=(Kernel &&O) noexcept {
    if (this != &O) {
      destroy();
      Handle = std::exchange(O.Handle, nullptr);
    }
    return *this;
  }
  Kernel(const Kernel &) = delete;
  Kernel &operator=(const Kernel &) = delete;
  ~Kernel() { destroy(); }

  bool valid() const { return Handle != nullptr; }
  bool done() const { return Handle.done(); }
  void resume() { Handle.resume(); }

private:
  void destroy() {
    if (Handle) {
      Handle.destroy();
      Handle = nullptr;
    }
  }

  std::coroutine_handle<promise_type> Handle;
};

/// Factory invoked once per simulated thread to create its kernel
/// coroutine. Captures application state by reference or pointer.
using KernelFn = std::function<Kernel(ThreadContext &)>;

} // namespace sim
} // namespace gpuwmm

#endif // GPUWMM_SIM_KERNEL_H
