//===- sim/MemorySystem.cpp - Weak GPU memory model -------------------------===//

#include "sim/MemorySystem.h"

#include <algorithm>
#include <cassert>

using namespace gpuwmm;
using namespace gpuwmm::sim;

void MemorySystem::reset(const ChipProfile &NewChip) {
  Chip = &NewChip;

  // Zero exactly the words the previous run wrote (O(touched), not
  // O(image)): the memory image itself keeps its size and capacity.
  for (Addr A : DirtyWords) {
    Mem[A] = 0;
    MemWriteId[A] = 0;
    MemDirty[A] = 0;
  }
  DirtyWords.clear();
  NextFree = 0;

  // Rewind every store-buffer queue the previous run touched.
  // TouchedQueues is a superset of ActiveQueues (tick() prunes the latter
  // lazily), so this also clears armed StallUntil values on queues that
  // already drained.
  for (const auto &[Tid, Bank] : TouchedQueues) {
    BankQueue &Q = Buffers[Tid].Banks[Bank];
    Q.Slots.clear();
    Q.Head = 0;
    Q.Active = false;
    Q.Touched = false;
    Q.StallUntil = 0;
  }
  TouchedQueues.clear();
  ActiveQueues.clear();

  AsyncSlots.clear();
  PendingAsyncCount = 0;
  Overlay.clear();

  NextStoreId = 1;
  CurrentTick = 0;
  Stats = MemStats();
  SeqMode = false;
  Stress = nullptr;
  Sink = nullptr;

  PressureCache.resize(Chip->NumBanks);
  PressureCacheTick.assign(Chip->NumBanks, ~0ULL);

  // With no congestion source, pressure is identically zero and the
  // drain/async probabilities collapse to these chip constants (the same
  // values the full formulas produce at zero pressure).
  CalmDrainProb = std::max(Chip->DrainFloor, Chip->DrainBase);
  CalmAsyncProb = std::max(Chip->AsyncFloor, Chip->AsyncBase);
}

void MemorySystem::registerThreads(unsigned NumThreads) {
  // Grow-only: threads beyond a smaller relaunch keep their (empty)
  // buffers, so their bank-queue capacity survives for later runs.
  if (Buffers.size() < NumThreads)
    Buffers.resize(NumThreads);
}

Addr MemorySystem::alloc(unsigned Words) {
  assert(Words > 0 && "cannot allocate zero words");
  // Align to the patch size, as real allocators align to large boundaries;
  // this makes bank mappings stable across runs (cf. Fig. 3's per-location
  // structure).
  const unsigned P = Chip->PatchSizeWords;
  NextFree = (NextFree + P - 1) / P * P;
  const Addr Base = NextFree;
  NextFree += Words;
  if (Mem.size() < NextFree) {
    Mem.resize(NextFree, 0);
    MemWriteId.resize(NextFree, 0);
    MemDirty.resize(NextFree, 0);
  }
  return Base;
}

//===----------------------------------------------------------------------===//
// Visibility helpers
//===----------------------------------------------------------------------===//

Word MemorySystem::visibleRead(unsigned Block, Addr A) const {
  assert(A < Mem.size() && "address out of bounds");
  if (!Overlay.empty()) {
    auto Range = Overlay.equal_range(A);
    for (auto It = Range.first; It != Range.second; ++It)
      if (It->second.Block == Block)
        return It->second.V;
  }
  return Mem[A];
}

Word MemorySystem::visibleReadSrc(unsigned Block, Addr A,
                                  LoadSource &Src) const {
  assert(A < Mem.size() && "address out of bounds");
  if (!Overlay.empty()) {
    auto Range = Overlay.equal_range(A);
    for (auto It = Range.first; It != Range.second; ++It)
      if (It->second.Block == Block) {
        Src = LoadSource::Overlay;
        return It->second.V;
      }
  }
  Src = LoadSource::Memory;
  return Mem[A];
}

void MemorySystem::atomicWrite(Addr A, Word V) {
  assert(A < Mem.size() && "address out of bounds");
  markDirty(A);
  Mem[A] = V;
  if (!Overlay.empty())
    Overlay.erase(A);
}

void MemorySystem::globalWrite(Addr A, Word V, uint64_t StoreId) {
  assert(A < Mem.size() && "address out of bounds");
  // Per-location coherence: never step backwards in the store order.
  if (StoreId < MemWriteId[A])
    return;
  markDirty(A);
  Mem[A] = V;
  MemWriteId[A] = StoreId;
  if (!Overlay.empty())
    Overlay.erase(A);
}

//===----------------------------------------------------------------------===//
// Stores and loads
//===----------------------------------------------------------------------===//

void MemorySystem::store(unsigned Tid, unsigned Block, Addr A, Word V) {
  ++Stats.Stores;
  if (SeqMode) {
    const uint64_t Id = NextStoreId++;
    globalWrite(A, V, Id);
    if (Sink) {
      // Sequential mode: the store is issued and globally visible in one
      // step, so both events carry the same tick.
      emit({TraceEventKind::StoreIssue, LoadSource::Memory, false, Tid,
            Block, bankOf(A), A, V, Id, 0});
      emit({TraceEventKind::StoreDrain, LoadSource::Memory, true, Tid,
            Block, bankOf(A), A, V, Id, 0});
    }
    return;
  }
  const unsigned Bank = bankOf(A);
  // Same-bank issue order: a pending async load on this bank must complete
  // (bind its value) before a later store can drain past it.
  completeThreadAsyncOnBank(Tid, Bank);

  assert(Tid < Buffers.size() && "thread not registered");
  ThreadBuffers &TB = Buffers[Tid];
  if (TB.Banks.size() < Chip->NumBanks)
    TB.Banks.resize(Chip->NumBanks);
  BankQueue &Q = TB.Banks[Bank];
  Q.push({A, V, NextStoreId++, Block, false});
  if (Sink)
    emit({TraceEventKind::StoreIssue, LoadSource::Memory, false, Tid, Block,
          Bank, A, V, Q.Slots.back().StoreId, 0});
  if (!Q.Touched) {
    Q.Touched = true;
    TouchedQueues.emplace_back(Tid, Bank);
  }
  if (!Q.Active) {
    Q.Active = true;
    ActiveQueues.emplace_back(Tid, Bank);
  }
}

Word MemorySystem::load(unsigned Tid, unsigned Block, Addr A) {
  ++Stats.Loads;
  LoadSource Src = LoadSource::Memory;
  Word V = 0;
  if (SeqMode) {
    V = visibleReadSrc(Block, A, Src);
  } else {
    const unsigned Bank = bankOf(A);
    assert(Tid < Buffers.size() && "thread not registered");
    ThreadBuffers &TB = Buffers[Tid];
    bool Bound = false;
    if (Bank < TB.Banks.size()) {
      BankQueue &Q = TB.Banks[Bank];
      if (!Q.empty()) {
        // Forward from the newest buffered store to this exact address —
        // unless a store ordered after ours (a block-visible store
        // published at a barrier, or a write that already reached global
        // memory) supersedes it. Per-location coherence forbids reading
        // backwards.
        for (size_t I = Q.Slots.size(); I != Q.Head && !Bound; --I) {
          const BufferedStore &E = Q.Slots[I - 1];
          if (E.A != A)
            continue;
          Bound = true;
          Src = LoadSource::Forward;
          V = E.V;
          if (!Overlay.empty()) {
            auto Range = Overlay.equal_range(A);
            for (auto OIt = Range.first; OIt != Range.second; ++OIt)
              if (OIt->second.Block == Block &&
                  OIt->second.StoreId > E.StoreId) {
                Src = LoadSource::OverlaySuperseded;
                V = OIt->second.V;
              }
          }
          if (Src == LoadSource::Forward && MemWriteId[A] > E.StoreId) {
            Src = LoadSource::MemorySuperseded;
            V = Mem[A];
          }
        }
        // Same-bank, different address: self-coherence forces a drain.
        if (!Bound)
          selfDrainBank(Tid, Bank);
      }
    }
    if (!Bound)
      V = visibleReadSrc(Block, A, Src);
  }
  if (Sink)
    emit({TraceEventKind::LoadBind, Src, false, Tid, Block, bankOf(A), A, V,
          0, 0});
  return V;
}

void MemorySystem::selfDrainBank(unsigned Tid, unsigned Bank) {
  ThreadBuffers &TB = Buffers[Tid];
  if (Bank >= TB.Banks.size())
    return;
  BankQueue &Q = TB.Banks[Bank];
  if (Q.empty())
    return;
  ++Stats.ForcedSelfDrains;
  drainQueue(Tid, Bank, /*Forced=*/true);
}

void MemorySystem::applyStore(unsigned Tid, const BufferedStore &E) {
  // Whether the write survives per-location coherence (both branches below
  // apply it under exactly this condition).
  const bool Applied = E.StoreId >= MemWriteId[E.A];
  if (Sink)
    emit({TraceEventKind::StoreDrain, LoadSource::Memory, Applied, Tid,
          E.Block, bankOf(E.A), E.A, E.V, E.StoreId, 0});
  if (E.BlockVisible && !Overlay.empty()) {
    // Remove only the overlay value this entry created; a newer
    // block-visible value for the same address must survive, and other
    // blocks' overlay values are unrelated.
    auto Range = Overlay.equal_range(E.A);
    for (auto It = Range.first; It != Range.second; ++It) {
      if (It->second.StoreId == E.StoreId) {
        Overlay.erase(It);
        break;
      }
    }
    if (E.StoreId >= MemWriteId[E.A]) {
      markDirty(E.A);
      Mem[E.A] = E.V;
      MemWriteId[E.A] = E.StoreId;
    }
  } else {
    globalWrite(E.A, E.V, E.StoreId);
  }
  ++Stats.DrainedStores;
}

void MemorySystem::drainQueue(unsigned Tid, unsigned Bank, bool Forced) {
  (void)Forced;
  BankQueue &Q = Buffers[Tid].Banks[Bank];
  while (!Q.empty()) {
    applyStore(Tid, Q.front());
    Q.popFront();
  }
  // Deactivation from ActiveQueues happens lazily in tick().
}

//===----------------------------------------------------------------------===//
// Atomics
//===----------------------------------------------------------------------===//

Word MemorySystem::atomicCAS(unsigned Tid, Addr A, Word Compare, Word Value) {
  ++Stats.Atomics;
  if (!SeqMode) {
    const unsigned Bank = bankOf(A);
    completeThreadAsyncOnBank(Tid, Bank);
    selfDrainBank(Tid, Bank);
  }
  const Word Old = Mem[A];
  if (Old == Compare)
    atomicWrite(A, Value);
  if (Sink)
    emit({TraceEventKind::Atomic, LoadSource::Memory, Old == Compare, Tid,
          0, bankOf(A), A, Old == Compare ? Value : Old, Old, 0});
  return Old;
}

Word MemorySystem::atomicExch(unsigned Tid, Addr A, Word Value) {
  ++Stats.Atomics;
  if (!SeqMode) {
    const unsigned Bank = bankOf(A);
    completeThreadAsyncOnBank(Tid, Bank);
    selfDrainBank(Tid, Bank);
  }
  const Word Old = Mem[A];
  atomicWrite(A, Value);
  if (Sink)
    emit({TraceEventKind::Atomic, LoadSource::Memory, true, Tid, 0,
          bankOf(A), A, Value, Old, 0});
  return Old;
}

Word MemorySystem::atomicAdd(unsigned Tid, Addr A, Word Value) {
  ++Stats.Atomics;
  if (!SeqMode) {
    const unsigned Bank = bankOf(A);
    completeThreadAsyncOnBank(Tid, Bank);
    selfDrainBank(Tid, Bank);
  }
  const Word Old = Mem[A];
  atomicWrite(A, Old + Value);
  if (Sink)
    emit({TraceEventKind::Atomic, LoadSource::Memory, true, Tid, 0,
          bankOf(A), A, Old + Value, Old, 0});
  return Old;
}

//===----------------------------------------------------------------------===//
// Fences
//===----------------------------------------------------------------------===//

unsigned MemorySystem::fenceDevice(unsigned Tid) {
  ++Stats.DeviceFences;
  if (SeqMode) {
    if (Sink)
      emit({TraceEventKind::FenceDevice, LoadSource::Memory, false, Tid, 0,
            0, 0, 0, 0, 0});
    return 1;
  }

  unsigned Latency = Chip->FenceBaseLatency;
  // Complete this thread's pending async loads: a fence orders loads too.
  for (AsyncLoadSlot &Slot : AsyncSlots)
    if (!Slot.Done && Slot.Tid == Tid)
      completeAsync(Slot);

  if (Tid < Buffers.size()) {
    // Entries only ever live in banks < Banks.size(), so iterating the
    // thread's grown-to-chip bank array covers every buffered store.
    std::vector<BankQueue> &Banks = Buffers[Tid].Banks;
    for (unsigned Bank = 0; Bank != Banks.size(); ++Bank) {
      BankQueue &Q = Banks[Bank];
      if (Q.empty())
        continue;
      Latency += static_cast<unsigned>(Q.size());
      // Writing back through a congested bank stalls the fence further.
      Latency += static_cast<unsigned>(
          effectiveWritePressure(CurrentTick, Bank));
      drainQueue(Tid, Bank, /*Forced=*/true);
    }
  }
  // Emitted after the drains and completions above, so "no event of this
  // thread issued before the fence is still pending at the fence" is
  // checkable from trace order alone.
  if (Sink)
    emit({TraceEventKind::FenceDevice, LoadSource::Memory, false, Tid, 0, 0,
          0, 0, 0, 0});
  return Latency;
}

unsigned MemorySystem::fenceBlock(unsigned Tid, unsigned Block) {
  ++Stats.BlockFences;
  if (SeqMode) {
    if (Sink)
      emit({TraceEventKind::FenceBlock, LoadSource::Memory, false, Tid,
            Block, 0, 0, 0, 0, 0});
    return 1;
  }

  // Complete pending async loads (fence orders loads at block scope too;
  // completion binds against global memory either way).
  for (AsyncLoadSlot &Slot : AsyncSlots)
    if (!Slot.Done && Slot.Tid == Tid)
      completeAsync(Slot);

  if (Tid >= Buffers.size() || Buffers[Tid].Banks.empty()) {
    if (Sink)
      emit({TraceEventKind::FenceBlock, LoadSource::Memory, false, Tid,
            Block, 0, 0, 0, 0, 0});
    return 2;
  }
  for (BankQueue &Q : Buffers[Tid].Banks) {
    for (BufferedStore &E : Q) {
      if (E.BlockVisible)
        continue;
      E.BlockVisible = true;
      if (Sink)
        emit({TraceEventKind::StorePromote, LoadSource::Memory, false, Tid,
              Block, bankOf(E.A), E.A, E.V, E.StoreId, 0});
      assert(E.Block == Block && "store buffered under a different block");
      // Publish (or refresh) the block-visible value for this address.
      auto Range = Overlay.equal_range(E.A);
      bool Updated = false;
      for (auto It = Range.first; It != Range.second; ++It) {
        if (It->second.Block == Block) {
          if (It->second.StoreId < E.StoreId) {
            It->second.V = E.V;
            It->second.StoreId = E.StoreId;
          }
          Updated = true;
          break;
        }
      }
      if (!Updated)
        Overlay.emplace(E.A, OverlayValue{Block, E.V, E.StoreId});
    }
  }
  if (Sink)
    emit({TraceEventKind::FenceBlock, LoadSource::Memory, false, Tid, Block,
          0, 0, 0, 0, 0});
  return 2;
}

//===----------------------------------------------------------------------===//
// Async loads
//===----------------------------------------------------------------------===//

unsigned MemorySystem::issueAsyncLoad(unsigned Tid, Addr A) {
  ++Stats.AsyncLoads;
  AsyncLoadSlot Slot;
  Slot.Tid = Tid;
  Slot.A = A;
  if (SeqMode) {
    Slot.V = visibleRead(/*Block=*/0, A);
    Slot.Done = true;
  } else {
    ++PendingAsyncCount;
  }
  AsyncSlots.push_back(Slot);
  const unsigned Ticket = static_cast<unsigned>(AsyncSlots.size() - 1);
  if (Sink) {
    emit({TraceEventKind::AsyncIssue, LoadSource::Memory, false, Tid, 0,
          bankOf(A), A, 0, Ticket, 0});
    if (SeqMode)
      emit({TraceEventKind::AsyncBind, LoadSource::Memory, false, Tid, 0,
            bankOf(A), A, Slot.V, Ticket, 0});
  }
  return Ticket;
}

bool MemorySystem::asyncDone(unsigned Ticket) const {
  assert(Ticket < AsyncSlots.size() && "bad async ticket");
  return AsyncSlots[Ticket].Done;
}

Word MemorySystem::asyncValue(unsigned Ticket) const {
  assert(Ticket < AsyncSlots.size() && "bad async ticket");
  assert(AsyncSlots[Ticket].Done && "async load not complete");
  return AsyncSlots[Ticket].V;
}

void MemorySystem::completeAsync(AsyncLoadSlot &Slot) {
  assert(!Slot.Done && "async load already complete");
  // Async loads read globally visible state; they are used by the litmus
  // harness where threads are in distinct blocks, so block overlays do not
  // apply (asserted by the no-self-store rule in issueAsyncLoad's contract).
  Slot.V = Mem[Slot.A];
  Slot.Done = true;
  assert(PendingAsyncCount > 0);
  --PendingAsyncCount;
  if (Sink)
    emit({TraceEventKind::AsyncBind, LoadSource::Memory, false, Slot.Tid, 0,
          bankOf(Slot.A), Slot.A, Slot.V,
          static_cast<uint64_t>(&Slot - AsyncSlots.data()), 0});
}

void MemorySystem::completeThreadAsyncOnBank(unsigned Tid, unsigned Bank) {
  if (PendingAsyncCount == 0)
    return;
  for (AsyncLoadSlot &Slot : AsyncSlots)
    if (!Slot.Done && Slot.Tid == Tid && bankOf(Slot.A) == Bank)
      completeAsync(Slot);
}

//===----------------------------------------------------------------------===//
// Tick processing
//===----------------------------------------------------------------------===//

const BankPressure &MemorySystem::pressure(uint64_t Now, unsigned Bank) {
  if (PressureCacheTick[Bank] != Now) {
    PressureCacheTick[Bank] = Now;
    PressureCache[Bank] =
        Stress ? Stress->pressureAt(Now, Bank) : BankPressure{};
  }
  return PressureCache[Bank];
}

double MemorySystem::effectiveWritePressure(uint64_t Now, unsigned Bank) {
  const BankPressure &P = pressure(Now, Bank);
  const double Raw = Chip->Sensitivity * (P.Write + 0.75 * P.Read);
  return std::clamp(Raw - Chip->PressureThresh, 0.0, Chip->PressureCap);
}

double MemorySystem::drainProb(uint64_t Now, unsigned Bank) {
  if (!Stress)
    return CalmDrainProb; // Zero pressure: a chip constant (same value).
  const double Eff = effectiveWritePressure(Now, Bank);
  return std::max(Chip->DrainFloor,
                  Chip->DrainBase / (1.0 + Chip->DrainCongestK * Eff));
}

double MemorySystem::asyncProb(uint64_t Now, unsigned Bank) {
  if (!Stress)
    return CalmAsyncProb; // Zero pressure: a chip constant (same value).
  const BankPressure &P = pressure(Now, Bank);
  const double Raw = Chip->Sensitivity * (P.Read + 0.50 * P.Write);
  const double Eff = std::clamp(Raw - Chip->PressureThresh, 0.0,
                                Chip->PressureCap);
  return std::max(Chip->AsyncFloor,
                  Chip->AsyncBase / (1.0 + Chip->AsyncCongestK * Eff));
}

void MemorySystem::tickWork(uint64_t Now) {
  // Async-load completion opportunities.
  if (PendingAsyncCount != 0) {
    for (AsyncLoadSlot &Slot : AsyncSlots) {
      if (Slot.Done)
        continue;
      if (R.chance(asyncProb(Now, bankOf(Slot.A))))
        completeAsync(Slot);
    }
  }

  // Store-drain opportunities: one entry per active queue per tick.
  for (size_t I = 0; I != ActiveQueues.size();) {
    const auto [Tid, Bank] = ActiveQueues[I];
    BankQueue &Q = Buffers[Tid].Banks[Bank];
    if (Q.empty()) {
      Q.Active = false;
      ActiveQueues[I] = ActiveQueues.back();
      ActiveQueues.pop_back();
      continue;
    }
    if (Q.StallUntil <= Now) {
      // Maxwell quirk: occasional long stalls independent of stress.
      if (Chip->BaselineReorder > 0.0 && R.chance(Chip->BaselineReorder)) {
        // Short stalls: enough to widen litmus windows (Fig. 3c's 980
        // noise) without breaking application hand-offs natively.
        Q.StallUntil = Now + 2 + R.below(3);
      } else if (R.chance(drainProb(Now, Bank))) {
        applyStore(Tid, Q.front());
        Q.popFront();
        if (Q.empty()) {
          Q.Active = false;
          ActiveQueues[I] = ActiveQueues.back();
          ActiveQueues.pop_back();
          continue;
        }
      }
    }
    ++I;
  }
}

void MemorySystem::drainThread(unsigned Tid) {
  if (Tid >= Buffers.size() || Buffers[Tid].Banks.empty())
    return;
  for (unsigned Bank = 0; Bank != Buffers[Tid].Banks.size(); ++Bank)
    if (!Buffers[Tid].Banks[Bank].empty())
      drainQueue(Tid, Bank, /*Forced=*/true);
  for (AsyncLoadSlot &Slot : AsyncSlots)
    if (!Slot.Done && Slot.Tid == Tid)
      completeAsync(Slot);
}

void MemorySystem::drainAll() {
  // Only a thread that buffered a store or has an in-flight async load
  // can need draining; visiting exactly those threads in ascending thread
  // order performs the same drains, in the same order, as a scan over
  // every registered thread (drainThread interleaves a thread's queue
  // drains with its async completions, so the per-thread visit order is
  // the whole order).
  DrainTids.clear();
  for (const auto &[Tid, Bank] : TouchedQueues)
    if (!Buffers[Tid].Banks[Bank].empty())
      DrainTids.push_back(Tid);
  if (PendingAsyncCount != 0)
    for (const AsyncLoadSlot &Slot : AsyncSlots)
      if (!Slot.Done)
        DrainTids.push_back(Slot.Tid);
  std::sort(DrainTids.begin(), DrainTids.end());
  DrainTids.erase(std::unique(DrainTids.begin(), DrainTids.end()),
                  DrainTids.end());
  for (const unsigned Tid : DrainTids)
    drainThread(Tid);
  ActiveQueues.clear();
  // Only touched queues can be Active (store sets both flags together).
  for (const auto &[Tid, Bank] : TouchedQueues)
    Buffers[Tid].Banks[Bank].Active = false;
  assert(Overlay.empty() && "overlay must be empty after a full drain");
}

Word MemorySystem::hostRead(Addr A) const {
  assert(A < Mem.size() && "address out of bounds");
  return Mem[A];
}

void MemorySystem::hostWrite(Addr A, Word V) {
  assert(A < Mem.size() && "address out of bounds");
  markDirty(A);
  Mem[A] = V;
  MemWriteId[A] = NextStoreId++;
  if (Sink)
    emit({TraceEventKind::HostWrite, LoadSource::Memory, false, 0, 0,
          bankOf(A), A, V, MemWriteId[A], 0});
}
