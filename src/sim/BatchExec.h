//===- sim/BatchExec.h - Batched flat op-stream executor --------*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batched execution engine behind the litmus/fuzz hot path
/// (DESIGN.md Sec. 17).
///
/// Every tuning sweep, campaign cell and fuzz round executes the same small
/// program thousands of times at different seeds. The coroutine-based
/// scheduler pays per run for work that is identical across those runs:
/// coroutine frames, kernel std::function dispatch, launch-time residency
/// construction, and a per-tick walk over every SM of the chip (most of
/// them empty for a 2-4 block litmus grid).
///
/// This engine splits that cost: a \ref BatchProgram is a flat, branch-light
/// op stream compiled once per (program, distance) — addresses, register
/// slots and writeback targets pre-resolved — and \ref runBatchProgram is a
/// tight table-walking replica of Scheduler::run that touches only resident
/// SMs and fast-forwards idle tick spans. Per-run state lives in
/// structure-of-arrays slabs owned by the ExecutionContext's
/// \ref BatchScratch, so resets stay O(touched).
///
/// Determinism contract (absolute): for the op shapes a BatchProgram can
/// express (start-phase jitter, loads, stores, atomics, device fences,
/// split-phase load pairs, register writebacks, block barriers, structured
/// loops/branches over registers, indexed addressing and pre-compiled
/// fence-policy sequences), runBatchProgram consumes exactly the same RNG
/// draws in exactly the same order as the coroutine scheduler and produces
/// bit-identical memory states, for every batch width and both scheduling
/// modes. The idle fast-forward is draw-free by construction: a tick in
/// which no lane is eligible, no store is buffered and no async load is
/// pending draws nothing in the scalar engine either — it only advances
/// the clock and the SM rotors, which the fast-forward replays in closed
/// form. BatchedExecutionTests pins the equivalence per run against
/// LitmusRunner::runOnce and fuzz::runOnWeakMachine; the application
/// lowering layer (apps::compileApplication, DESIGN.md Sec. 19) pins it
/// per run against apps::runApplicationOnce.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_SIM_BATCHEXEC_H
#define GPUWMM_SIM_BATCHEXEC_H

#include "sim/Types.h"

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace gpuwmm {

class Rng;

namespace sim {

class MemorySystem;
struct ChipProfile;

/// One pre-resolved instruction of a batched program, walked linearly per
/// lane. Op codes split into two groups:
///
///  * Suspending ops (everything before MovImm) are the batched analogue
///    of one co_await: a resume executes exactly one of them and sleeps.
///  * Free ops (MovImm and later) are the batched analogue of the free
///    computation between two co_awaits: register moves, arithmetic and
///    control flow. They execute — any number of them — at the start of
///    the resume that then issues the next suspending op (or completes
///    the lane), exactly where the coroutine body evaluates them.
struct BatchOp {
  enum class Code : uint8_t {
    // --- Suspending ops (one resume each). ---
    Jitter,      ///< sleep(1 + rng.below(Imm)); start-phase jitter.
    Store,       ///< Mem.store(A, Imm); sleep 1.
    Load,        ///< Regs[Slot] = Mem.load(A); sleep 1.
    AsyncLoad,   ///< Regs[Slot] = ticket of Mem.issueAsyncLoad(A); sleep 1.
    AwaitLoad,   ///< Complete the async load ticketed in Regs[Slot].
    AtomicAdd,   ///< Mem.atomicAdd(A, Imm); sleep AtomicLatency.
    FenceDevice, ///< sleep(Mem.fenceDevice()).
    WbStore,     ///< Mem.store(A, Regs[Slot] + Imm); sleep 1 (writeback /
                 ///< load log; Imm is the log bias).
    Sleep,       ///< sleep(max(1, Imm)): yield(Imm), a disabled built-in
                 ///< fence (Imm = 1), or a policy fence's base-latency
                 ///< stage (Imm = FenceBaseLatency).
    SleepRand,   ///< sleep(max(1, A + rng.below(Imm))): backoff
                 ///< yield(A + rand(Imm)); draw and sleep share one
                 ///< resume, as the coroutine's rand-then-yield does.
    Barrier,     ///< Block barrier: replicates opBarrier/releaseBarrier.
    LoadAcc,     ///< Regs[Slot] += Mem.load(A); sleep 1.
    LoadIdx,     ///< Regs[Slot] = Mem.load(A + Regs[Slot2]); sleep 1.
    LoadAccIdx,  ///< Regs[Slot] += Mem.load(A + Regs[Slot2]); sleep 1.
    LoadMulAcc,  ///< Regs[Slot] += Regs[Slot2] * Mem.load(A); sleep 1.
    StoreIdx,    ///< Mem.store(A + Regs[Slot2], Imm); sleep 1.
    AtomicAddReg, ///< Regs[Slot] = Mem.atomicAdd(A, Imm); sleep
                  ///< AtomicLatency (old value, e.g. a ticket draw).
    AtomicCas,    ///< Regs[Slot] = Mem.atomicCAS(A, Imm & 0xffff,
                  ///< Imm >> 16); sleep AtomicLatency.
    AtomicCasIdx, ///< As AtomicCas at address A + Regs[Slot2].
    AtomicExch,   ///< Mem.atomicExch(A, Imm); sleep AtomicLatency.
    AtomicExchIdx, ///< Mem.atomicExch(A + Regs[Slot2], Imm); sleep
                   ///< AtomicLatency.
    // --- Free ops (no suspension; run before the resume's suspending
    // --- op). Everything from MovImm on must stay free: the executor
    // --- tests `C >= Code::MovImm`.
    MovImm, ///< Regs[Slot] = Imm.
    AddImm, ///< Regs[Slot] = Regs[Slot2] + Imm (unsigned wraparound;
            ///< Imm = 0xffffffff decrements).
    MulImm, ///< Regs[Slot] = Regs[Slot2] * Imm (unsigned wraparound).
    ModImm, ///< Regs[Slot] = Regs[Slot2] % Imm (Imm != 0).
    AddRR,  ///< Regs[Slot] = Regs[Slot2] + Regs[A] (A names a third slot).
    Jump,   ///< PC = A.
    BrEq,   ///< if (Regs[Slot] == Imm) PC = A; else fall through.
    BrNe,   ///< if (Regs[Slot] != Imm) PC = A; else fall through.
    BrLt    ///< if (Regs[Slot] < Imm) PC = A; else fall through.
  };
  Code C = Code::Jitter;
  uint16_t Slot = 0;  ///< Destination/source register slot.
  uint16_t Slot2 = 0; ///< Second register slot (indexed ops, arithmetic).
  Addr A = 0;         ///< Pre-resolved absolute address / branch target.
  Word Imm = 0;       ///< Immediate: store value / bound / operand.
};

/// The op range [Begin, End) of one launched lane; Begin == End is an idle
/// lane (a block's filler thread), which completes at its first resume.
struct BatchLane {
  uint32_t Begin = 0;
  uint32_t End = 0;
};

/// A program compiled to the batched executor: one contiguous op stream
/// plus a per-lane (Tid = block * BlockDim + lane) range table. Immutable
/// once built; reused across every run of a batch.
struct BatchProgram {
  std::vector<BatchOp> Ops;
  std::vector<BatchLane> Lanes; ///< Indexed by Tid; size GridDim*BlockDim.
  unsigned GridDim = 0;
  unsigned BlockDim = 0;
  unsigned NumSlots = 0; ///< Register slots one run's Regs stripe needs.
};

/// Mirrors the SchedulerConfig fields the batched shapes use.
struct BatchRunConfig {
  bool RandomiseThreads = false; ///< Paper Sec. 3.5 scheduling noise.
  unsigned IssueWidthPerSM = 2;
  uint64_t MaxTicks = 400000;
};

/// Recyclable batched-executor state, owned by an ExecutionContext
/// alongside the scheduler scratch. Lane state is structure-of-arrays and
/// sized O(lanes); the slabs hold a whole batch's register/final-state
/// stripes (K runs x stride) so per-run reset is a stripe write, not an
/// allocation. Residency (warp placement per SM) is cached across runs of
/// the same geometry under deterministic scheduling, where launch draws
/// nothing and the layout is a pure function of (grid, block, SMs).
struct BatchScratch {
  struct Warp {
    unsigned FirstTid = 0;
    unsigned NumThreads = 0;
    unsigned Block = 0;   ///< Owning block (warps never straddle blocks).
    unsigned LiveIdx = 0; ///< This warp's WarpLive list.
  };

  // Per-lane execution state (SoA; capacity reused across runs).
  std::vector<uint8_t> State;
  std::vector<uint64_t> WakeTick;
  std::vector<uint32_t> PC;
  std::vector<unsigned> TicketWaiters;
  /// Per-block barrier bookkeeping, mirroring the scalar BarrierState:
  /// lanes still live in the block and lanes currently parked at its
  /// barrier. A lane completing while its block has parked lanes raises
  /// barrier divergence, as the coroutine scheduler does.
  std::vector<unsigned> BlockLive;
  std::vector<unsigned> BlockAtBarrier;
  /// Per-warp live-lane lists (Tids in lane order): completed lanes drop
  /// out, so steady-state ticks scan only the program's real threads, not
  /// a block's idle filler lanes. Removal preserves order, keeping the
  /// resume sequence identical to the scalar engine's full-warp walk
  /// (done lanes fail its eligibility test and resume nothing).
  std::vector<std::vector<uint32_t>> WarpLive;

  // Residency: warps resident per SM, the round-robin rotors, and the
  // non-empty-SM index list the hot loop walks.
  std::vector<std::vector<Warp>> SMWarps;
  std::vector<unsigned> SMRotor;
  std::vector<unsigned> ActiveSMs;
  std::vector<unsigned> BlockToSM;
  /// Cache key for the deterministic residency build (invalid under
  /// randomised scheduling, which redraws placement per run).
  unsigned CachedGrid = ~0u, CachedBlock = ~0u, CachedSMs = ~0u;

  /// K-seed batch slabs: callers stripe them (run J's registers live at
  /// RegSlab[J * stride]). FinalRegSlab/FinalMemSlab hold the batch's
  /// final register writebacks and memory states for outcome evaluation.
  std::vector<Word> RegSlab;
  std::vector<Word> FinalRegSlab;
  std::vector<Word> FinalMemSlab;

  /// Drops the deterministic residency cache (tests / chip changes).
  void invalidateResidency() { CachedGrid = CachedBlock = CachedSMs = ~0u; }
};

/// The process-wide batch width K used when a runner/config leaves its
/// width at 0 ("auto"): the CLI's --batch=K, else the GPUWMM_BATCH
/// environment variable (invalid values warn and fall back, mirroring
/// GPUWMM_JOBS), else 64. Width never affects results — only how many
/// runs share one slab/plan amortisation window.
unsigned defaultBatchWidth();

/// Installs the CLI-selected width (0 restores auto resolution).
void setDefaultBatchWidth(unsigned K);

/// Upper bound accepted for --batch / GPUWMM_BATCH.
inline constexpr int64_t MaxBatchWidth = 1 << 16;

/// The process-wide engine selection (--engine / GPUWMM_ENGINE).
///
///  * Auto (the default): batch-capable work (litmus/fuzz programs,
///    lowerable app kernels) runs on the batched engine; everything else
///    — and every traced or sink-attached run — takes the scalar path.
///  * Scalar: force the coroutine engine everywhere (A/B debugging,
///    bisection of batched-vs-scalar divergence).
///  * Batched: as Auto, but consumers that cannot batch a request the
///    user explicitly made (an app kernel with no lowering) must fail
///    loudly instead of silently falling back — enforced at the CLI.
///
/// Engine choice never affects results, only throughput: both engines are
/// draw-for-draw identical per run.
enum class EngineMode : uint8_t { Auto, Scalar, Batched };

/// The process-wide engine mode: the CLI's --engine, else GPUWMM_ENGINE
/// (invalid values warn and fall back to auto, mirroring GPUWMM_BATCH),
/// else Auto.
EngineMode engineMode();

/// Installs the CLI-selected engine mode.
void setEngineMode(EngineMode M);

/// "auto" / "scalar" / "batched".
const char *engineModeName(EngineMode M);

/// Parses an engineModeName; returns nullopt for anything else.
std::optional<EngineMode> parseEngineMode(std::string_view Name);

/// Executes one run of \p BP to completion on \p Mem, drawing from \p R —
/// a draw-for-draw replica of Scheduler::launch + Scheduler::run for the
/// batched op shapes. \p Regs is the run's register stripe (NumSlots
/// words). The caller owns per-run setup exactly as with the scalar
/// engine: context reset, allocations, initial-value writes and the
/// congestion source all happen before the call.
RunResult runBatchProgram(const BatchProgram &BP, const ChipProfile &Chip,
                          MemorySystem &Mem, Rng &R, BatchScratch &S,
                          Word *Regs, const BatchRunConfig &Cfg);

} // namespace sim
} // namespace gpuwmm

#endif // GPUWMM_SIM_BATCHEXEC_H
