//===- sim/BatchExec.h - Batched flat op-stream executor --------*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batched execution engine behind the litmus/fuzz hot path
/// (DESIGN.md Sec. 17).
///
/// Every tuning sweep, campaign cell and fuzz round executes the same small
/// program thousands of times at different seeds. The coroutine-based
/// scheduler pays per run for work that is identical across those runs:
/// coroutine frames, kernel std::function dispatch, launch-time residency
/// construction, and a per-tick walk over every SM of the chip (most of
/// them empty for a 2-4 block litmus grid).
///
/// This engine splits that cost: a \ref BatchProgram is a flat, branch-light
/// op stream compiled once per (program, distance) — addresses, register
/// slots and writeback targets pre-resolved — and \ref runBatchProgram is a
/// tight table-walking replica of Scheduler::run that touches only resident
/// SMs and fast-forwards idle tick spans. Per-run state lives in
/// structure-of-arrays slabs owned by the ExecutionContext's
/// \ref BatchScratch, so resets stay O(touched).
///
/// Determinism contract (absolute): for the op shapes a BatchProgram can
/// express (start-phase jitter, loads, stores, atomics, device fences,
/// split-phase load pairs, register writebacks — no barriers, no fence
/// policies), runBatchProgram consumes exactly the same RNG draws in
/// exactly the same order as the coroutine scheduler and produces
/// bit-identical memory states, for every batch width and both scheduling
/// modes. The idle fast-forward is draw-free by construction: a tick in
/// which no lane is eligible, no store is buffered and no async load is
/// pending draws nothing in the scalar engine either — it only advances
/// the clock and the SM rotors, which the fast-forward replays in closed
/// form. BatchedExecutionTests pins the equivalence per run against
/// LitmusRunner::runOnce and fuzz::runOnWeakMachine.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_SIM_BATCHEXEC_H
#define GPUWMM_SIM_BATCHEXEC_H

#include "sim/Types.h"

#include <cstdint>
#include <vector>

namespace gpuwmm {

class Rng;

namespace sim {

class MemorySystem;
struct ChipProfile;

/// One pre-resolved instruction of a batched program. 12 bytes, walked
/// linearly per lane — the batched analogue of one co_await.
struct BatchOp {
  enum class Code : uint8_t {
    Jitter,      ///< sleep(1 + rng.below(Imm)); start-phase jitter.
    Store,       ///< Mem.store(A, Imm); sleep 1.
    Load,        ///< Regs[Slot] = Mem.load(A); sleep 1.
    AsyncLoad,   ///< Regs[Slot] = ticket of Mem.issueAsyncLoad(A); sleep 1.
    AwaitLoad,   ///< Complete the async load ticketed in Regs[Slot].
    AtomicAdd,   ///< Mem.atomicAdd(A, Imm); sleep AtomicLatency.
    FenceDevice, ///< sleep(Mem.fenceDevice()).
    WbStore      ///< Mem.store(A, Regs[Slot] + Imm); sleep 1 (writeback /
                 ///< load log; Imm is the log bias).
  };
  Code C = Code::Jitter;
  uint16_t Slot = 0; ///< Register slot (Load/AsyncLoad/AwaitLoad/WbStore).
  Addr A = 0;        ///< Pre-resolved absolute address.
  Word Imm = 0;      ///< Immediate: store value / jitter bound / log bias.
};

/// The op range [Begin, End) of one launched lane; Begin == End is an idle
/// lane (a block's filler thread), which completes at its first resume.
struct BatchLane {
  uint32_t Begin = 0;
  uint32_t End = 0;
};

/// A program compiled to the batched executor: one contiguous op stream
/// plus a per-lane (Tid = block * BlockDim + lane) range table. Immutable
/// once built; reused across every run of a batch.
struct BatchProgram {
  std::vector<BatchOp> Ops;
  std::vector<BatchLane> Lanes; ///< Indexed by Tid; size GridDim*BlockDim.
  unsigned GridDim = 0;
  unsigned BlockDim = 0;
  unsigned NumSlots = 0; ///< Register slots one run's Regs stripe needs.
};

/// Mirrors the SchedulerConfig fields the batched shapes use.
struct BatchRunConfig {
  bool RandomiseThreads = false; ///< Paper Sec. 3.5 scheduling noise.
  unsigned IssueWidthPerSM = 2;
  uint64_t MaxTicks = 400000;
};

/// Recyclable batched-executor state, owned by an ExecutionContext
/// alongside the scheduler scratch. Lane state is structure-of-arrays and
/// sized O(lanes); the slabs hold a whole batch's register/final-state
/// stripes (K runs x stride) so per-run reset is a stripe write, not an
/// allocation. Residency (warp placement per SM) is cached across runs of
/// the same geometry under deterministic scheduling, where launch draws
/// nothing and the layout is a pure function of (grid, block, SMs).
struct BatchScratch {
  struct Warp {
    unsigned FirstTid = 0;
    unsigned NumThreads = 0;
    unsigned Block = 0;   ///< Owning block (warps never straddle blocks).
    unsigned LiveIdx = 0; ///< This warp's WarpLive list.
  };

  // Per-lane execution state (SoA; capacity reused across runs).
  std::vector<uint8_t> State;
  std::vector<uint64_t> WakeTick;
  std::vector<uint32_t> PC;
  std::vector<unsigned> TicketWaiters;
  /// Per-warp live-lane lists (Tids in lane order): completed lanes drop
  /// out, so steady-state ticks scan only the program's real threads, not
  /// a block's idle filler lanes. Removal preserves order, keeping the
  /// resume sequence identical to the scalar engine's full-warp walk
  /// (done lanes fail its eligibility test and resume nothing).
  std::vector<std::vector<uint32_t>> WarpLive;

  // Residency: warps resident per SM, the round-robin rotors, and the
  // non-empty-SM index list the hot loop walks.
  std::vector<std::vector<Warp>> SMWarps;
  std::vector<unsigned> SMRotor;
  std::vector<unsigned> ActiveSMs;
  std::vector<unsigned> BlockToSM;
  /// Cache key for the deterministic residency build (invalid under
  /// randomised scheduling, which redraws placement per run).
  unsigned CachedGrid = ~0u, CachedBlock = ~0u, CachedSMs = ~0u;

  /// K-seed batch slabs: callers stripe them (run J's registers live at
  /// RegSlab[J * stride]). FinalRegSlab/FinalMemSlab hold the batch's
  /// final register writebacks and memory states for outcome evaluation.
  std::vector<Word> RegSlab;
  std::vector<Word> FinalRegSlab;
  std::vector<Word> FinalMemSlab;

  /// Drops the deterministic residency cache (tests / chip changes).
  void invalidateResidency() { CachedGrid = CachedBlock = CachedSMs = ~0u; }
};

/// The process-wide batch width K used when a runner/config leaves its
/// width at 0 ("auto"): the CLI's --batch=K, else the GPUWMM_BATCH
/// environment variable (invalid values warn and fall back, mirroring
/// GPUWMM_JOBS), else 64. Width never affects results — only how many
/// runs share one slab/plan amortisation window.
unsigned defaultBatchWidth();

/// Installs the CLI-selected width (0 restores auto resolution).
void setDefaultBatchWidth(unsigned K);

/// Upper bound accepted for --batch / GPUWMM_BATCH.
inline constexpr int64_t MaxBatchWidth = 1 << 16;

/// Executes one run of \p BP to completion on \p Mem, drawing from \p R —
/// a draw-for-draw replica of Scheduler::launch + Scheduler::run for the
/// batched op shapes. \p Regs is the run's register stripe (NumSlots
/// words). The caller owns per-run setup exactly as with the scalar
/// engine: context reset, allocations, initial-value writes and the
/// congestion source all happen before the call.
RunResult runBatchProgram(const BatchProgram &BP, const ChipProfile &Chip,
                          MemorySystem &Mem, Rng &R, BatchScratch &S,
                          Word *Regs, const BatchRunConfig &Cfg);

} // namespace sim
} // namespace gpuwmm

#endif // GPUWMM_SIM_BATCHEXEC_H
