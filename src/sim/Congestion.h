//===- sim/Congestion.h - Bank congestion interface -------------*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface through which a memory-stressing strategy injects
/// contention into the simulated memory system.
///
/// In the paper, stressing threads hammer a scratchpad that is completely
/// disjoint from application data; the only coupling with the application is
/// microarchitectural contention. We model that contention directly: a
/// CongestionSource reports per-bank write/read pressure each tick, and the
/// memory system degrades store-drain and async-load-completion
/// probabilities accordingly. Because stressing threads never touch shared
/// data, this analytic treatment does not change the set of possible
/// application behaviours — exactly the property the paper's design relies
/// on (Sec. 3).
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_SIM_CONGESTION_H
#define GPUWMM_SIM_CONGESTION_H

#include <cstdint>

namespace gpuwmm {
namespace sim {

/// Pressure applied to one bank during one tick.
struct BankPressure {
  double Write = 0.0; ///< Store traffic (congests the drain path).
  double Read = 0.0;  ///< Load traffic (congests load completion).

  BankPressure &operator+=(const BankPressure &O) {
    Write += O.Write;
    Read += O.Read;
    return *this;
  }
};

/// Supplies per-bank contention; implemented by the stressing strategies.
class CongestionSource {
public:
  virtual ~CongestionSource() = default;

  /// Returns the pressure on \p Bank at \p Tick.
  virtual BankPressure pressureAt(uint64_t Tick, unsigned Bank) const = 0;
};

/// The trivial source: no stress at all (the paper's "no-str").
class NoCongestion final : public CongestionSource {
public:
  BankPressure pressureAt(uint64_t, unsigned) const override { return {}; }
};

} // namespace sim
} // namespace gpuwmm

#endif // GPUWMM_SIM_CONGESTION_H
