//===- sim/BatchExec.cpp - Batched flat op-stream executor -------------------===//
//
// The run loop below is a line-for-line replica of Scheduler::launch and
// Scheduler::run restricted to the op shapes batched programs use (no
// faults). Fidelity notes, keyed to the scalar source:
//
//  * Residency: block B -> SM B % NumSMs (or a random SM per block, in
//    block order, under randomisation); warps never straddle blocks; under
//    randomisation every SM's warp list is shuffled in SM index order
//    (empty lists draw nothing, so iterating only [0, NumSMs) is
//    draw-identical to the scalar loop over a possibly larger scratch).
//  * A resume executes exactly one op and sleeps — or, past the lane's
//    last op, completes the lane (the coroutine's final resume). Both
//    count toward the warp's issue.
//  * An AwaitLoad whose ticket is pending parks the lane with its PC
//    unadvanced; the wake loop binds the value and advances the PC, so the
//    next resume executes the *following* op — mirroring the coroutine,
//    where await_resume assigns the register and the body runs on to the
//    next co_await within that same resume.
//  * Idle fast-forward (deterministic mode only): when every live lane is
//    sleeping and the memory system is quiescent, the scalar engine's
//    intervening ticks draw nothing and have no effect beyond advancing
//    the clock and each non-empty SM's rotor by one per tick. Jumping
//    Now to (first wake tick - 1) and advancing the rotors by the span
//    is therefore bit-identical, including the timeout tick. Lanes parked
//    at a barrier are excluded from the wake scan (they wake only through
//    a release, which requires a sleeping lane's resume first).
//  * Free ops (register arithmetic, branches) run at the head of the
//    resume that issues the lane's next suspending op — exactly where the
//    coroutine body evaluates its between-co_await computation. Register
//    state is invisible to the memory model, so only the suspending ops'
//    side effects, sleeps and draws carry fidelity; the free prefix just
//    has to pick the same next suspending op, which the lowering
//    guarantees per kernel (apps/AppCompile.cpp).
//  * Barriers replicate opBarrier/releaseBarrier: the arriving lane parks
//    (still resident in its warp, ineligible), the last live arriver
//    releases every parked lane of its block in ascending Tid order with
//    a draw-free block fence and wake at Now + 1, and a lane completing
//    while block-mates are parked raises the divergence flag, which the
//    main loop surfaces at the top of the next tick — all in the scalar
//    engine's exact order.
//
//===----------------------------------------------------------------------===//

#include "sim/BatchExec.h"

#include "sim/ChipProfile.h"
#include "sim/MemorySystem.h"
#include "support/Rng.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace gpuwmm;
using namespace gpuwmm::sim;

//===----------------------------------------------------------------------===//
// Batch width resolution
//===----------------------------------------------------------------------===//

namespace {

/// CLI-installed width; 0 = auto (GPUWMM_BATCH, else 64). Written once
/// before any workers start, read-only afterwards.
unsigned CliBatchWidth = 0;

unsigned resolveEnvBatchWidth() {
  unsigned W = 64;
  if (const char *Env = std::getenv("GPUWMM_BATCH")) {
    char *End = nullptr;
    const long Parsed = std::strtol(Env, &End, 10);
    if (*Env != '\0' && *End == '\0' && Parsed > 0 && Parsed <= MaxBatchWidth)
      return static_cast<unsigned>(Parsed);
    // Mirror the --batch validation, but warn-and-fall-back rather than
    // exit: an environment variable should not be fatal to library users.
    std::fprintf(stderr,
                 "warning: ignoring invalid GPUWMM_BATCH='%s' (must be a "
                 "positive integer); using batch width %u\n",
                 Env, W);
  }
  return W;
}

} // namespace

unsigned sim::defaultBatchWidth() {
  if (CliBatchWidth != 0)
    return CliBatchWidth;
  static const unsigned Resolved = resolveEnvBatchWidth();
  return Resolved;
}

void sim::setDefaultBatchWidth(unsigned K) { CliBatchWidth = K; }

//===----------------------------------------------------------------------===//
// Engine mode resolution
//===----------------------------------------------------------------------===//

namespace {

/// CLI-installed engine mode; unset until setEngineMode runs. Written once
/// before any workers start, read-only afterwards.
EngineMode CliEngineMode = EngineMode::Auto;
bool CliEngineModeSet = false;

EngineMode resolveEnvEngineMode() {
  if (const char *Env = std::getenv("GPUWMM_ENGINE")) {
    if (const std::optional<EngineMode> M = parseEngineMode(Env))
      return *M;
    // Mirror the --engine validation, but warn-and-fall-back rather than
    // exit: an environment variable should not be fatal to library users.
    std::fprintf(stderr,
                 "warning: ignoring invalid GPUWMM_ENGINE='%s' (must be "
                 "auto, scalar or batched); using engine mode auto\n",
                 Env);
  }
  return EngineMode::Auto;
}

} // namespace

EngineMode sim::engineMode() {
  if (CliEngineModeSet)
    return CliEngineMode;
  static const EngineMode Resolved = resolveEnvEngineMode();
  return Resolved;
}

void sim::setEngineMode(EngineMode M) {
  CliEngineMode = M;
  CliEngineModeSet = true;
}

const char *sim::engineModeName(EngineMode M) {
  switch (M) {
  case EngineMode::Auto:
    return "auto";
  case EngineMode::Scalar:
    return "scalar";
  case EngineMode::Batched:
    return "batched";
  }
  return "unknown";
}

std::optional<EngineMode> sim::parseEngineMode(std::string_view Name) {
  if (Name == "auto")
    return EngineMode::Auto;
  if (Name == "scalar")
    return EngineMode::Scalar;
  if (Name == "batched")
    return EngineMode::Batched;
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// The executor
//===----------------------------------------------------------------------===//

namespace {

// Lane states; the scalar engine's Running is transient. A lane at a
// barrier stays in its warp's live list but fails the eligibility test,
// exactly as the scalar AtBarrier state does.
constexpr uint8_t LaneSleeping = 0;
constexpr uint8_t LaneOnTicket = 1;
constexpr uint8_t LaneDone = 2;
constexpr uint8_t LaneAtBarrier = 3;

} // namespace

RunResult sim::runBatchProgram(const BatchProgram &BP,
                               const ChipProfile &Chip, MemorySystem &Mem,
                               Rng &R, BatchScratch &S, Word *Regs,
                               const BatchRunConfig &Cfg) {
  const unsigned NumThreads = BP.GridDim * BP.BlockDim;
  assert(NumThreads != 0 && BP.Lanes.size() == NumThreads &&
         "batch program has no lanes");
  Mem.registerThreads(NumThreads);

  // Lane state: everything starts Sleeping at wake tick 0 (eligible on
  // tick 1), as freshly launched coroutines do.
  S.State.assign(NumThreads, LaneSleeping);
  S.WakeTick.assign(NumThreads, 0);
  S.PC.resize(NumThreads);
  for (unsigned T = 0; T != NumThreads; ++T)
    S.PC[T] = BP.Lanes[T].Begin;
  S.TicketWaiters.clear();
  S.BlockLive.assign(BP.GridDim, BP.BlockDim);
  S.BlockAtBarrier.assign(BP.GridDim, 0);

  // Residency. Under deterministic scheduling the layout is a pure
  // function of (grid, block, SMs) and launch draws nothing, so it is
  // cached across runs; under randomisation it is redrawn per run in the
  // scalar engine's exact draw order.
  const unsigned NumSMs = Chip.NumSMs;
  const bool HaveCached = !Cfg.RandomiseThreads && S.CachedGrid == BP.GridDim &&
                          S.CachedBlock == BP.BlockDim && S.CachedSMs == NumSMs;
  if (!HaveCached) {
    if (S.SMWarps.size() < NumSMs)
      S.SMWarps.resize(NumSMs);
    for (std::vector<BatchScratch::Warp> &Ws : S.SMWarps)
      Ws.clear();
    S.BlockToSM.resize(BP.GridDim);
    for (unsigned B = 0; B != BP.GridDim; ++B)
      S.BlockToSM[B] = B % NumSMs;
    if (Cfg.RandomiseThreads)
      for (unsigned B = 0; B != BP.GridDim; ++B)
        S.BlockToSM[B] = static_cast<unsigned>(R.below(NumSMs));
    unsigned NumWarps = 0;
    for (unsigned B = 0; B != BP.GridDim; ++B)
      for (unsigned W = 0; W * WarpSize < BP.BlockDim; ++W)
        S.SMWarps[S.BlockToSM[B]].push_back(
            {B * BP.BlockDim + W * WarpSize,
             std::min(WarpSize, BP.BlockDim - W * WarpSize), B, NumWarps++});
    if (S.WarpLive.size() < NumWarps)
      S.WarpLive.resize(NumWarps);
    if (Cfg.RandomiseThreads)
      for (unsigned SM = 0; SM != NumSMs; ++SM)
        R.shuffle(S.SMWarps[SM]);
    S.ActiveSMs.clear();
    for (unsigned SM = 0; SM != NumSMs; ++SM)
      if (!S.SMWarps[SM].empty())
        S.ActiveSMs.push_back(SM);
    if (Cfg.RandomiseThreads) {
      S.invalidateResidency();
    } else {
      S.CachedGrid = BP.GridDim;
      S.CachedBlock = BP.BlockDim;
      S.CachedSMs = NumSMs;
    }
  }
  // Rotors start at zero each launch. Only resident SMs' rotors are ever
  // read, so zeroing just those is the full assign.
  if (S.SMRotor.size() < NumSMs)
    S.SMRotor.resize(NumSMs);
  for (const unsigned SM : S.ActiveSMs)
    S.SMRotor[SM] = 0;

  // Fill each resident warp's live-lane list with all of its lanes.
  for (const unsigned SM : S.ActiveSMs)
    for (const BatchScratch::Warp &W : S.SMWarps[SM]) {
      std::vector<uint32_t> &LL = S.WarpLive[W.LiveIdx];
      LL.clear();
      for (unsigned L = 0; L != W.NumThreads; ++L)
        LL.push_back(W.FirstTid + L);
    }

  const BatchOp *const Ops = BP.Ops.data();
  unsigned Live = NumThreads;
  uint64_t Now = 0;
  bool DivergenceFlag = false;
  RunResult Result;

  while (Live > 0) {
    ++Now;
    // The scalar loop checks the divergence flag at the top of the next
    // tick, before the timeout: a lane completing past a barrier its
    // block-mates still wait at surfaces one tick later.
    if (DivergenceFlag) {
      Result.Status = RunStatus::BarrierDivergence;
      break;
    }
    if (Now > Cfg.MaxTicks) {
      Result.Status = RunStatus::Timeout;
      break;
    }

    Mem.tick(Now);

    // Wake async-load waiters whose tickets completed. The parked lane's
    // PC still addresses its AwaitLoad op; binding the value and stepping
    // the PC here makes the next resume run the following op, exactly as
    // the coroutine resumes through its await.
    for (size_t I = 0; I != S.TicketWaiters.size();) {
      const unsigned Tid = S.TicketWaiters[I];
      const BatchOp &O = Ops[S.PC[Tid]];
      const unsigned Ticket = static_cast<unsigned>(Regs[O.Slot]);
      if (S.State[Tid] == LaneOnTicket && Mem.asyncDone(Ticket)) {
        Regs[O.Slot] = Mem.asyncValue(Ticket);
        ++S.PC[Tid];
        S.State[Tid] = LaneSleeping;
        S.WakeTick[Tid] = Now;
        S.TicketWaiters[I] = S.TicketWaiters.back();
        S.TicketWaiters.pop_back();
        continue;
      }
      ++I;
    }

    bool Issued = false;
    // True once any op schedules a wake at Now + 1: the earliest possible
    // wake is then next tick, so the idle fast-forward cannot jump and
    // its scan is skipped without changing behaviour.
    bool WakeNextTick = false;
    for (const unsigned SM : S.ActiveSMs) {
      std::vector<BatchScratch::Warp> &Ws = S.SMWarps[SM];
      const unsigned NumWs = static_cast<unsigned>(Ws.size());
      unsigned Budget = Cfg.IssueWidthPerSM;
      unsigned Start = S.SMRotor[SM];
      if (Cfg.RandomiseThreads)
        Start = static_cast<unsigned>(R.below(NumWs));
      for (unsigned K = 0; K != NumWs && Budget != 0; ++K) {
        // (Start + K) mod NumWs without the divide: both are < NumWs.
        const unsigned Idx =
            Start + K < NumWs ? Start + K : Start + K - NumWs;
        const BatchScratch::Warp &W = Ws[Idx];
        // Warp-priority jitter under randomisation.
        if (Cfg.RandomiseThreads && R.chance(0.15))
          continue;
        bool WarpIssued = false;
        std::vector<uint32_t> &LL = S.WarpLive[W.LiveIdx];
        const size_t NumLive = LL.size();
        size_t Out = 0;
        for (size_t I = 0; I != NumLive; ++I) {
          const unsigned Tid = LL[I];
          LL[Out++] = static_cast<uint32_t>(Tid);
          if (S.State[Tid] != LaneSleeping || S.WakeTick[Tid] > Now)
            continue;
          WarpIssued = true;

          // --- Resume: free ops, then one suspending op (or finish the
          // --- lane). The free prefix is the coroutine body's
          // --- computation between two co_awaits: register arithmetic
          // --- and control flow, evaluated in the resume that issues the
          // --- next suspending op.
          uint32_t PC = S.PC[Tid];
          const uint32_t End = BP.Lanes[Tid].End;
          while (PC != End) {
            const BatchOp &F = Ops[PC];
            if (F.C < BatchOp::Code::MovImm)
              break;
            switch (F.C) {
            case BatchOp::Code::MovImm:
              Regs[F.Slot] = F.Imm;
              ++PC;
              break;
            case BatchOp::Code::AddImm:
              Regs[F.Slot] = Regs[F.Slot2] + F.Imm;
              ++PC;
              break;
            case BatchOp::Code::MulImm:
              Regs[F.Slot] = Regs[F.Slot2] * F.Imm;
              ++PC;
              break;
            case BatchOp::Code::ModImm:
              Regs[F.Slot] = Regs[F.Slot2] % F.Imm;
              ++PC;
              break;
            case BatchOp::Code::AddRR:
              Regs[F.Slot] = Regs[F.Slot2] + Regs[F.A];
              ++PC;
              break;
            case BatchOp::Code::Jump:
              PC = F.A;
              break;
            case BatchOp::Code::BrEq:
              PC = Regs[F.Slot] == F.Imm ? F.A : PC + 1;
              break;
            case BatchOp::Code::BrNe:
              PC = Regs[F.Slot] != F.Imm ? F.A : PC + 1;
              break;
            case BatchOp::Code::BrLt:
              PC = Regs[F.Slot] < F.Imm ? F.A : PC + 1;
              break;
            default:
              assert(false && "suspending op in free-op dispatch");
            }
          }
          if (PC == End) {
            // The coroutine's final resume: the lane completes. A block
            // with lanes parked at a barrier can now never release it.
            S.State[Tid] = LaneDone;
            --Live;
            --S.BlockLive[W.Block];
            if (S.BlockAtBarrier[W.Block] > 0)
              DivergenceFlag = true;
            --Out; // Drop the lane from the live list.
            continue;
          }
          const BatchOp &O = Ops[PC];
          switch (O.C) {
          case BatchOp::Code::Jitter:
            S.WakeTick[Tid] = Now + 1 + R.below(O.Imm);
            break;
          case BatchOp::Code::Store:
            Mem.store(Tid, W.Block, O.A, O.Imm);
            S.WakeTick[Tid] = Now + 1;
            break;
          case BatchOp::Code::Load:
            Regs[O.Slot] = Mem.load(Tid, W.Block, O.A);
            S.WakeTick[Tid] = Now + 1;
            break;
          case BatchOp::Code::AsyncLoad:
            Regs[O.Slot] = Mem.issueAsyncLoad(Tid, O.A);
            S.WakeTick[Tid] = Now + 1;
            break;
          case BatchOp::Code::AwaitLoad: {
            const unsigned Ticket = static_cast<unsigned>(Regs[O.Slot]);
            if (!Mem.asyncDone(Ticket)) {
              // Park with the PC unadvanced; the wake loop completes it.
              S.State[Tid] = LaneOnTicket;
              S.TicketWaiters.push_back(Tid);
              continue;
            }
            Regs[O.Slot] = Mem.asyncValue(Ticket);
            S.WakeTick[Tid] = Now + 1;
            break;
          }
          case BatchOp::Code::AtomicAdd:
            (void)Mem.atomicAdd(Tid, O.A, O.Imm);
            S.WakeTick[Tid] = Now + std::max(1u, Chip.AtomicLatency);
            break;
          case BatchOp::Code::FenceDevice:
            S.WakeTick[Tid] = Now + std::max(1u, Mem.fenceDevice(Tid));
            break;
          case BatchOp::Code::WbStore:
            Mem.store(Tid, W.Block, O.A, Regs[O.Slot] + O.Imm);
            S.WakeTick[Tid] = Now + 1;
            break;
          case BatchOp::Code::Sleep:
            S.WakeTick[Tid] = Now + std::max(1u, O.Imm);
            break;
          case BatchOp::Code::SleepRand:
            // The draw and the sleep share this resume, as the
            // coroutine's rand-then-yield backoff does.
            S.WakeTick[Tid] =
                Now + std::max<uint64_t>(1, O.A + R.below(O.Imm));
            break;
          case BatchOp::Code::Barrier: {
            // opBarrier: park the lane; the last live arriver releases
            // the whole block within its own resume (releaseBarrier),
            // fencing each parked lane in ascending Tid order.
            S.State[Tid] = LaneAtBarrier;
            S.PC[Tid] = PC + 1;
            const unsigned B = W.Block;
            if (++S.BlockAtBarrier[B] == S.BlockLive[B]) {
              const unsigned FirstTid = B * BP.BlockDim;
              for (unsigned L = 0; L != BP.BlockDim; ++L) {
                const unsigned T2 = FirstTid + L;
                if (S.State[T2] != LaneAtBarrier)
                  continue;
                (void)Mem.fenceBlock(T2, B);
                S.State[T2] = LaneSleeping;
                S.WakeTick[T2] = Now + 1;
              }
              S.BlockAtBarrier[B] = 0;
              WakeNextTick = true;
            }
            continue; // PC already stored; no generic postlude.
          }
          case BatchOp::Code::LoadAcc:
            Regs[O.Slot] += Mem.load(Tid, W.Block, O.A);
            S.WakeTick[Tid] = Now + 1;
            break;
          case BatchOp::Code::LoadIdx:
            Regs[O.Slot] = Mem.load(Tid, W.Block, O.A + Regs[O.Slot2]);
            S.WakeTick[Tid] = Now + 1;
            break;
          case BatchOp::Code::LoadAccIdx:
            Regs[O.Slot] += Mem.load(Tid, W.Block, O.A + Regs[O.Slot2]);
            S.WakeTick[Tid] = Now + 1;
            break;
          case BatchOp::Code::LoadMulAcc:
            Regs[O.Slot] += Regs[O.Slot2] * Mem.load(Tid, W.Block, O.A);
            S.WakeTick[Tid] = Now + 1;
            break;
          case BatchOp::Code::StoreIdx:
            Mem.store(Tid, W.Block, O.A + Regs[O.Slot2], O.Imm);
            S.WakeTick[Tid] = Now + 1;
            break;
          case BatchOp::Code::AtomicAddReg:
            Regs[O.Slot] = Mem.atomicAdd(Tid, O.A, O.Imm);
            S.WakeTick[Tid] = Now + std::max(1u, Chip.AtomicLatency);
            break;
          case BatchOp::Code::AtomicCas:
            Regs[O.Slot] =
                Mem.atomicCAS(Tid, O.A, O.Imm & 0xffffu, O.Imm >> 16);
            S.WakeTick[Tid] = Now + std::max(1u, Chip.AtomicLatency);
            break;
          case BatchOp::Code::AtomicCasIdx:
            Regs[O.Slot] = Mem.atomicCAS(Tid, O.A + Regs[O.Slot2],
                                         O.Imm & 0xffffu, O.Imm >> 16);
            S.WakeTick[Tid] = Now + std::max(1u, Chip.AtomicLatency);
            break;
          case BatchOp::Code::AtomicExch:
            (void)Mem.atomicExch(Tid, O.A, O.Imm);
            S.WakeTick[Tid] = Now + std::max(1u, Chip.AtomicLatency);
            break;
          case BatchOp::Code::AtomicExchIdx:
            (void)Mem.atomicExch(Tid, O.A + Regs[O.Slot2], O.Imm);
            S.WakeTick[Tid] = Now + std::max(1u, Chip.AtomicLatency);
            break;
          default:
            assert(false && "free op in suspending-op dispatch");
            break;
          }
          WakeNextTick |= S.WakeTick[Tid] == Now + 1;
          S.PC[Tid] = PC + 1;
        }
        if (Out != NumLive)
          LL.resize(Out);
        if (WarpIssued) {
          --Budget;
          Issued = true;
        }
      }
      const unsigned Next = S.SMRotor[SM] + 1;
      S.SMRotor[SM] = Next < NumWs ? Next : 0;
    }

    if (!Issued && Live > 0 && !Mem.hasPendingWork() &&
        S.TicketWaiters.empty()) {
      bool AnySleeping = false;
      for (const unsigned SM : S.ActiveSMs)
        for (const BatchScratch::Warp &W : S.SMWarps[SM])
          for (const uint32_t Tid : S.WarpLive[W.LiveIdx])
            AnySleeping |= S.State[Tid] == LaneSleeping;
      if (!AnySleeping) {
        // Scalar tie-break: live lanes stuck at a barrier classify as
        // barrier divergence, anything else is a plain deadlock.
        bool AnyAtBarrier = false;
        for (const unsigned AB : S.BlockAtBarrier)
          AnyAtBarrier |= AB != 0;
        Result.Status = AnyAtBarrier ? RunStatus::BarrierDivergence
                                     : RunStatus::Deadlock;
        break;
      }
    }

    // Idle fast-forward: with the memory system quiescent and every live
    // lane sleeping, the ticks up to the first wake draw nothing and
    // change nothing but the clock and the rotors. A wake already set for
    // Now + 1 caps the jump target at the next tick, so the scan is
    // skipped (the common case: most ops sleep exactly one tick).
    if (!WakeNextTick && !Cfg.RandomiseThreads && Live > 0 &&
        !Mem.hasPendingWork() && S.TicketWaiters.empty()) {
      uint64_t MinWake = ~0ull;
      for (const unsigned SM : S.ActiveSMs)
        for (const BatchScratch::Warp &W : S.SMWarps[SM])
          for (const uint32_t Tid : S.WarpLive[W.LiveIdx])
            if (S.State[Tid] == LaneSleeping)
              MinWake = std::min(MinWake, S.WakeTick[Tid]);
      const uint64_t Target = std::min(MinWake, Cfg.MaxTicks + 1);
      if (Target > Now + 1) {
        const uint64_t D = Target - 1 - Now;
        Now = Target - 1;
        for (const unsigned SM : S.ActiveSMs)
          S.SMRotor[SM] = static_cast<unsigned>(
              (S.SMRotor[SM] + D) % S.SMWarps[SM].size());
      }
    }
  }

  // Kernel boundaries synchronise: everything becomes visible.
  Mem.drainAll();
  Result.Ticks = Now;
  Result.Mem = Mem.stats();
  return Result;
}
