//===- sim/FencePolicy.h - Per-site fence insertion policy ------*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A FencePolicy decides, per instrumented memory-access site, whether a
/// device fence follows the access. This is the mechanism behind the
/// paper's Sec. 5 (empirical fence insertion: start from a fence after
/// every access and reduce) and Sec. 6 (cost of the no/emp/cons fencing
/// configurations).
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_SIM_FENCEPOLICY_H
#define GPUWMM_SIM_FENCEPOLICY_H

#include <cassert>
#include <cstddef>
#include <vector>

namespace gpuwmm {
namespace sim {

/// Marker for uninstrumented accesses (never fenced by a policy).
inline constexpr int NoSite = -1;

/// A set of access sites after which a device fence is inserted.
class FencePolicy {
public:
  FencePolicy() = default;

  /// Policy over \p NumSites sites with none selected.
  static FencePolicy none(unsigned NumSites) {
    FencePolicy P;
    P.AfterSite.assign(NumSites, false);
    return P;
  }

  /// Policy with a fence after every site (the paper's "cons fences").
  static FencePolicy all(unsigned NumSites) {
    FencePolicy P;
    P.AfterSite.assign(NumSites, true);
    return P;
  }

  /// Policy fencing exactly the sites in \p Sites.
  static FencePolicy ofSites(unsigned NumSites,
                             const std::vector<unsigned> &Sites) {
    FencePolicy P = none(NumSites);
    for (unsigned S : Sites) {
      assert(S < NumSites && "site out of range");
      P.AfterSite[S] = true;
    }
    return P;
  }

  /// True if a device fence follows the access at \p Site.
  bool fenceAfter(int Site) const {
    if (Site < 0)
      return false;
    assert(static_cast<size_t>(Site) < AfterSite.size() &&
           "unknown site id");
    return AfterSite[Site];
  }

  void set(unsigned Site, bool Fenced) {
    assert(Site < AfterSite.size() && "site out of range");
    AfterSite[Site] = Fenced;
  }

  unsigned numSites() const { return AfterSite.size(); }

  /// Number of fenced sites.
  unsigned count() const {
    unsigned N = 0;
    for (bool B : AfterSite)
      N += B;
    return N;
  }

  /// Returns the fenced sites in increasing order.
  std::vector<unsigned> sites() const {
    std::vector<unsigned> S;
    for (unsigned I = 0; I != AfterSite.size(); ++I)
      if (AfterSite[I])
        S.push_back(I);
    return S;
  }

  bool operator==(const FencePolicy &O) const {
    return AfterSite == O.AfterSite;
  }

private:
  std::vector<bool> AfterSite;
};

} // namespace sim
} // namespace gpuwmm

#endif // GPUWMM_SIM_FENCEPOLICY_H
