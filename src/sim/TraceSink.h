//===- sim/TraceSink.h - Memory-event trace instrumentation ----*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observer seam through which the simulator reports every semantically
/// meaningful memory event: store issue, buffer drain, load bind, async
/// issue/completion, atomics, fence drains, block-fence promotions, barrier
/// releases and host writes (DESIGN.md Sec. 14).
///
/// The seam is zero-overhead when off: MemorySystem and Scheduler hold a
/// single nullable TraceSink pointer and every notification site is guarded
/// by one pointer test. No event is constructed, no allocation happens, and
/// the simulation's RNG is never consulted, so results are bit-identical
/// whether tracing is enabled or not (an extension of the determinism
/// contract, DESIGN.md Sec. 11/12).
///
/// EventTrace is the standard sink: a recycled in-memory recorder owned by
/// an ExecutionContext. Its backing vector keeps its capacity across
/// \ref EventTrace::clear calls, so steady-state traced runs on a reused
/// context allocate nothing (DESIGN.md Sec. 12). The recorded event list is
/// what the axiomatic consistency checker (model/ConsistencyChecker.h)
/// validates and classifies.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_SIM_TRACESINK_H
#define GPUWMM_SIM_TRACESINK_H

#include "sim/Types.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gpuwmm {
namespace sim {

/// The taxonomy of traced memory events (DESIGN.md Sec. 14).
enum class TraceEventKind : uint8_t {
  StoreIssue,     ///< A plain store entered its per-thread-per-bank FIFO.
  StoreDrain,     ///< A buffered store reached globally visible memory.
  LoadBind,       ///< A plain load bound its value.
  AsyncIssue,     ///< A split-phase load was issued (its program-order point).
  AsyncBind,      ///< A split-phase load completed and bound its value.
  Atomic,         ///< An atomic read-modify-write acted on visible memory.
  FenceDevice,    ///< A device-scope fence completed (drains emitted before).
  FenceBlock,     ///< A block-scope fence completed (promotions before).
  StorePromote,   ///< A buffered store became block-visible (overlay).
  BarrierRelease, ///< A block barrier released (block-level consistency).
  HostWrite       ///< The host wrote memory between kernels (init state).
};

inline const char *traceEventKindName(TraceEventKind K) {
  switch (K) {
  case TraceEventKind::StoreIssue:     return "store-issue";
  case TraceEventKind::StoreDrain:     return "store-drain";
  case TraceEventKind::LoadBind:       return "load-bind";
  case TraceEventKind::AsyncIssue:     return "async-issue";
  case TraceEventKind::AsyncBind:      return "async-bind";
  case TraceEventKind::Atomic:         return "atomic";
  case TraceEventKind::FenceDevice:    return "fence-device";
  case TraceEventKind::FenceBlock:     return "fence-block";
  case TraceEventKind::StorePromote:   return "store-promote";
  case TraceEventKind::BarrierRelease: return "barrier-release";
  case TraceEventKind::HostWrite:      return "host-write";
  }
  return "unknown";
}

/// Where a bound load value came from. The "superseded" variants cover the
/// per-location-coherence corner in which the thread's newest buffered
/// store to the address exists but a write ordered after it already
/// reached global memory (or the block overlay), so forwarding would read
/// backwards in the coherence order.
enum class LoadSource : uint8_t {
  Memory,            ///< Globally visible memory.
  Forward,           ///< The thread's own newest buffered store (same addr).
  Overlay,           ///< A block-visible promoted value.
  MemorySuperseded,  ///< Buffered store exists, memory already newer.
  OverlaySuperseded  ///< Buffered store exists, overlay already newer.
};

/// One recorded memory event. A flat POD: unused fields are zero.
struct TraceEvent {
  TraceEventKind Kind = TraceEventKind::StoreIssue;
  LoadSource Source = LoadSource::Memory; ///< LoadBind only.
  /// StoreDrain: the write survived per-location coherence (a drain whose
  /// store id is older than the address's newest write is dropped).
  /// Atomic: the operation wrote (a failed CAS reads only).
  bool Flag = false;
  unsigned Tid = 0;   ///< Issuing thread (except HostWrite/BarrierRelease).
  unsigned Block = 0; ///< Issuing block / promoted-to / released block.
  unsigned Bank = 0;  ///< Bank of A (stores, loads, atomics).
  Addr A = 0;
  Word V = 0;         ///< Stored / bound / new value.
  /// StoreIssue/StoreDrain/StorePromote/HostWrite: the store id (the
  /// per-location coherence order). AsyncIssue/AsyncBind: the ticket.
  /// Atomic: the old (read) value.
  uint64_t Id = 0;
  uint64_t Tick = 0;  ///< Simulator tick at emission.
};

/// Receiver of trace events. Implementations must not touch the simulator
/// they observe (the seam is strictly one-way) and must not throw.
class TraceSink {
public:
  virtual ~TraceSink() = default;
  virtual void event(const TraceEvent &E) = 0;
};

/// The recycled in-memory recorder (owned by an ExecutionContext).
/// \ref clear keeps the backing capacity, so steady-state traced runs on a
/// reused context perform no allocation.
class EventTrace final : public TraceSink {
public:
  void event(const TraceEvent &E) override { Events.push_back(E); }

  const std::vector<TraceEvent> &events() const { return Events; }
  size_t size() const { return Events.size(); }
  bool empty() const { return Events.empty(); }
  /// Backing capacity (steady-state allocation-freedom diagnostics).
  size_t capacity() const { return Events.capacity(); }

  /// Forgets all events, keeping the backing allocation.
  void clear() { Events.clear(); }

private:
  std::vector<TraceEvent> Events;
};

} // namespace sim
} // namespace gpuwmm

#endif // GPUWMM_SIM_TRACESINK_H
