//===- sim/Device.h - Simulated GPU facade ----------------------*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point to the simulated GPU. A Device bundles one chip
/// profile, its weak memory system, a deterministic RNG, and kernel-launch
/// facilities, and exposes the runtime/energy model used by the paper's
/// Sec. 6 cost study.
///
/// A Device is a thin facade over an ExecutionContext, which owns all
/// heavyweight simulator state. The one-argument-pair constructor leases a
/// recycled context from the current thread's pool, so even the classic
///
/// \code
///   sim::Device Dev(*sim::ChipProfile::lookup("titan"), Seed);
///   sim::Addr Buf = Dev.alloc(256);
///   Dev.run({/*GridDim=*/2, /*BlockDim=*/32}, [&](sim::ThreadContext &Ctx)
///       -> sim::Kernel {
///     co_await Ctx.st(Buf + Ctx.globalId(), 1);
///   });
/// \endcode
///
/// performs no per-run container allocation in steady state. Hot loops that
/// want explicit control bind their own context:
///
/// \code
///   sim::ExecutionContext Ctx;
///   for (uint64_t Seed : Seeds) {
///     sim::Device Dev(Ctx, Chip, Seed); // resets Ctx in O(touched)
///     ...
///   }
/// \endcode
///
/// Results are bit-identical between the two forms (DESIGN.md Sec. 12).
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_SIM_DEVICE_H
#define GPUWMM_SIM_DEVICE_H

#include "sim/ChipProfile.h"
#include "sim/Congestion.h"
#include "sim/ExecutionContext.h"
#include "sim/FencePolicy.h"
#include "sim/Kernel.h"
#include "sim/MemorySystem.h"
#include "sim/Scheduler.h"
#include "sim/Types.h"
#include "support/Rng.h"

namespace gpuwmm {
namespace sim {

/// Energy estimate for a device's kernel executions.
struct EnergyEstimate {
  double Joules = 0.0;
  /// False on chips without power instrumentation (the paper can only
  /// query power via NVML on K5200, Titan, K20 and C2075).
  bool Valid = false;
};

/// One simulated GPU: memory, scheduler and models. Create one Device per
/// application execution; kernel launches on the same Device share memory
/// (with full synchronisation at kernel boundaries, as in CUDA).
class Device {
public:
  /// One-shot form: leases a recycled ExecutionContext from the current
  /// thread's pool (allocation-free in steady state).
  Device(const ChipProfile &Chip, uint64_t Seed)
      : Chip(Chip), Lease(), Ctx(Lease.get()) {
    Ctx.reset(Chip, Seed);
  }

  /// Reuse form: binds to \p Ctx, resetting it for this execution. The
  /// context must outlive the Device and must not be shared with another
  /// live Device.
  Device(ExecutionContext &Ctx, const ChipProfile &Chip, uint64_t Seed)
      : Chip(Chip), Lease(nullptr), Ctx(Ctx) {
    Ctx.reset(Chip, Seed);
  }

  Device(const Device &) = delete;
  Device &operator=(const Device &) = delete;

  // --- Configuration (set before launching) --------------------------------

  /// Sequentially consistent reference mode (no weak behaviours).
  void setSequentialMode(bool SC) { memory().setSequentialMode(SC); }

  /// Installs the stressing strategy's contention source (not owned).
  void setCongestionSource(const CongestionSource *S) {
    memory().setCongestionSource(S);
  }

  /// Installs the per-site fence policy (not owned; null = no fences).
  void setFencePolicy(const FencePolicy *P) { Policy = P; }

  /// Enables the application's original fences (disable for -nf variants).
  void setBuiltinFences(bool Enabled) { BuiltinFences = Enabled; }

  /// Thread randomisation (paper Sec. 3.5).
  void setRandomiseThreads(bool Enabled) { Sched.RandomiseThreads = Enabled; }

  /// Tick budget per kernel launch (timeout detection).
  void setMaxTicks(uint64_t Ticks) { Sched.MaxTicks = Ticks; }

  // --- Memory ----------------------------------------------------------------

  /// Allocates zeroed global memory (patch-aligned, as real allocators
  /// align to large boundaries).
  Addr alloc(unsigned Words) { return memory().alloc(Words); }

  Word read(Addr A) const { return Ctx.memory().hostRead(A); }
  void write(Addr A, Word V) { memory().hostWrite(A, V); }

  // --- Execution ---------------------------------------------------------------

  /// Launches and runs one kernel to completion; successive launches
  /// accumulate time and energy (multi-kernel applications).
  RunResult run(const LaunchConfig &LC, const KernelFn &Fn) {
    Scheduler S(Chip, memory(), rng(), Sched, &Ctx.schedulerScratch());
    S.setFencePolicy(Policy);
    S.setBuiltinFences(BuiltinFences);
    S.launch(LC, Fn);
    RunResult Result = S.run();
    TotalTicks += Result.Ticks;
    LastStatus = Result.Status;
    return Result;
  }

  /// Status of the most recent launch.
  RunStatus lastStatus() const { return LastStatus; }

  // --- Timing & energy model -----------------------------------------------

  /// Total simulated kernel time across launches. One scheduler tick
  /// stands for ~1000 device clock cycles of a real kernel iteration, so
  /// runtimes land in the paper's millisecond range.
  double runtimeMs() const {
    const double TickMicros = 1.0 / Chip.ClockGHz;
    return static_cast<double>(TotalTicks) * TickMicros * 1e-3;
  }

  /// Energy model: static board power over the kernel runtime plus
  /// per-operation dynamic energy. Stands in for the paper's NVML polling;
  /// invalid on chips without power query support, as in the paper.
  EnergyEstimate energy() const {
    EnergyEstimate E;
    E.Valid = Chip.SupportsPowerQuery;
    const MemStats &M = memStats();
    const double DynamicJ = (static_cast<double>(M.Loads) * 2.0 +
                             static_cast<double>(M.Stores) * 2.5 +
                             static_cast<double>(M.Atomics) * 8.0 +
                             static_cast<double>(M.DeviceFences) * 15.0 +
                             static_cast<double>(M.DrainedStores) * 1.0) *
                            1e-6;
    E.Joules = Chip.BoardPowerW * runtimeMs() * 1e-3 + DynamicJ;
    return E;
  }

  uint64_t totalTicks() const { return TotalTicks; }
  const MemStats &memStats() const { return Ctx.memory().stats(); }

  const ChipProfile &chip() const { return Chip; }
  Rng &rng() { return Ctx.rng(); }
  MemorySystem &memory() { return Ctx.memory(); }
  ExecutionContext &context() { return Ctx; }

private:
  const ChipProfile &Chip;
  ContextLease Lease; ///< Empty when an external context is bound.
  ExecutionContext &Ctx;
  SchedulerConfig Sched;
  const FencePolicy *Policy = nullptr;
  bool BuiltinFences = true;
  uint64_t TotalTicks = 0;
  RunStatus LastStatus = RunStatus::Completed;
};

} // namespace sim
} // namespace gpuwmm

#endif // GPUWMM_SIM_DEVICE_H
