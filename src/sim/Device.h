//===- sim/Device.h - Simulated GPU facade ----------------------*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point to the simulated GPU. A Device bundles one chip
/// profile, its weak memory system, a deterministic RNG, and kernel-launch
/// facilities, and exposes the runtime/energy model used by the paper's
/// Sec. 6 cost study.
///
/// Typical use:
/// \code
///   sim::Device Dev(*sim::ChipProfile::lookup("titan"), Seed);
///   sim::Addr Buf = Dev.alloc(256);
///   Dev.run({/*GridDim=*/2, /*BlockDim=*/32}, [&](sim::ThreadContext &Ctx)
///       -> sim::Kernel {
///     co_await Ctx.st(Buf + Ctx.globalId(), 1);
///   });
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_SIM_DEVICE_H
#define GPUWMM_SIM_DEVICE_H

#include "sim/ChipProfile.h"
#include "sim/Congestion.h"
#include "sim/FencePolicy.h"
#include "sim/Kernel.h"
#include "sim/MemorySystem.h"
#include "sim/Scheduler.h"
#include "sim/Types.h"
#include "support/Rng.h"

namespace gpuwmm {
namespace sim {

/// Energy estimate for a device's kernel executions.
struct EnergyEstimate {
  double Joules = 0.0;
  /// False on chips without power instrumentation (the paper can only
  /// query power via NVML on K5200, Titan, K20 and C2075).
  bool Valid = false;
};

/// One simulated GPU: memory, scheduler and models. Create one Device per
/// application execution; kernel launches on the same Device share memory
/// (with full synchronisation at kernel boundaries, as in CUDA).
class Device {
public:
  Device(const ChipProfile &Chip, uint64_t Seed)
      : Chip(Chip), R(Seed), Memory(Chip, R) {}

  Device(const Device &) = delete;
  Device &operator=(const Device &) = delete;

  // --- Configuration (set before launching) --------------------------------

  /// Sequentially consistent reference mode (no weak behaviours).
  void setSequentialMode(bool SC) { Memory.setSequentialMode(SC); }

  /// Installs the stressing strategy's contention source (not owned).
  void setCongestionSource(const CongestionSource *S) {
    Memory.setCongestionSource(S);
  }

  /// Installs the per-site fence policy (not owned; null = no fences).
  void setFencePolicy(const FencePolicy *P) { Policy = P; }

  /// Enables the application's original fences (disable for -nf variants).
  void setBuiltinFences(bool Enabled) { BuiltinFences = Enabled; }

  /// Thread randomisation (paper Sec. 3.5).
  void setRandomiseThreads(bool Enabled) { Sched.RandomiseThreads = Enabled; }

  /// Tick budget per kernel launch (timeout detection).
  void setMaxTicks(uint64_t Ticks) { Sched.MaxTicks = Ticks; }

  // --- Memory ----------------------------------------------------------------

  /// Allocates zeroed global memory (patch-aligned, as real allocators
  /// align to large boundaries).
  Addr alloc(unsigned Words) { return Memory.alloc(Words); }

  Word read(Addr A) const { return Memory.hostRead(A); }
  void write(Addr A, Word V) { Memory.hostWrite(A, V); }

  // --- Execution ---------------------------------------------------------------

  /// Launches and runs one kernel to completion; successive launches
  /// accumulate time and energy (multi-kernel applications).
  RunResult run(const LaunchConfig &LC, const KernelFn &Fn) {
    Scheduler S(Chip, Memory, R, Sched);
    S.setFencePolicy(Policy);
    S.setBuiltinFences(BuiltinFences);
    S.launch(LC, Fn);
    RunResult Result = S.run();
    TotalTicks += Result.Ticks;
    LastStatus = Result.Status;
    return Result;
  }

  /// Status of the most recent launch.
  RunStatus lastStatus() const { return LastStatus; }

  // --- Timing & energy model -----------------------------------------------

  /// Total simulated kernel time across launches. One scheduler tick
  /// stands for ~1000 device clock cycles of a real kernel iteration, so
  /// runtimes land in the paper's millisecond range.
  double runtimeMs() const {
    const double TickMicros = 1.0 / Chip.ClockGHz;
    return static_cast<double>(TotalTicks) * TickMicros * 1e-3;
  }

  /// Energy model: static board power over the kernel runtime plus
  /// per-operation dynamic energy. Stands in for the paper's NVML polling;
  /// invalid on chips without power query support, as in the paper.
  EnergyEstimate energy() const {
    EnergyEstimate E;
    E.Valid = Chip.SupportsPowerQuery;
    const MemStats &M = Memory.stats();
    const double DynamicJ = (static_cast<double>(M.Loads) * 2.0 +
                             static_cast<double>(M.Stores) * 2.5 +
                             static_cast<double>(M.Atomics) * 8.0 +
                             static_cast<double>(M.DeviceFences) * 15.0 +
                             static_cast<double>(M.DrainedStores) * 1.0) *
                            1e-6;
    E.Joules = Chip.BoardPowerW * runtimeMs() * 1e-3 + DynamicJ;
    return E;
  }

  uint64_t totalTicks() const { return TotalTicks; }
  const MemStats &memStats() const { return Memory.stats(); }

  const ChipProfile &chip() const { return Chip; }
  Rng &rng() { return R; }
  MemorySystem &memory() { return Memory; }

private:
  const ChipProfile &Chip;
  Rng R;
  MemorySystem Memory;
  SchedulerConfig Sched;
  const FencePolicy *Policy = nullptr;
  bool BuiltinFences = true;
  uint64_t TotalTicks = 0;
  RunStatus LastStatus = RunStatus::Completed;
};

} // namespace sim
} // namespace gpuwmm

#endif // GPUWMM_SIM_DEVICE_H
