//===- hunt/Corpus.h - Crash-safe canonical corpus of weak cases -*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hunt pipeline's on-disk corpus (DESIGN.md Sec. 18): a growing,
/// deduplicated collection of minimal, fence-annotated weak litmus tests,
/// built on the same durable primitives as the campaign fabric
/// (support/ShardIo.h). A corpus directory holds:
///
///   manifest.json        the chip, seed and stage budgets the corpus was
///                        mined with, written atomically once; every hunt
///                        joining the directory must match it byte for
///                        byte (rounds are NOT pinned — a resumed hunt
///                        may extend them)
///   corpus-NNNN.jsonl    append-only logs of CRC-framed single-line JSON
///                        records — one per corpus entry (stats plus the
///                        full `.litmus` text) and one `round_done`
///                        marker per completed round — fsync'd per
///                        append; each hunt invocation claims its own log
///                        via O_EXCL
///   <name>.litmus        one replayable artifact per entry (atomic
///                        write; re-published for every entry on resume,
///                        healing a crash between record and artifact)
///
/// Entries are keyed by the canonical printed form of their weak core
/// (fuzz/Shrink.h's canonicalKey): the same underlying bug found from
/// different fuzz seeds, rounds or job counts collapses to one entry.
/// Crash model: as the fabric's — a SIGKILL can tear at most the tail
/// record of one log; loaders truncate it, and a resumed hunt re-runs the
/// torn round deterministically, with dedupe making re-discovered entries
/// no-ops.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_HUNT_CORPUS_H
#define GPUWMM_HUNT_CORPUS_H

#include "litmus/Program.h"
#include "support/ShardIo.h"

#include <array>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

namespace gpuwmm {
namespace hunt {

/// The fixed per-axiom report keys: every axiom-violation message the
/// checkers emit starts with one of these prefixes, plus "causality" for
/// weak (cycle) verdicts. Reports always emit all of them, in this order.
inline constexpr size_t NumAxioms = 8;
const std::array<const char *, NumAxioms> &axiomKeys();

/// Maps a verdict onto an axiomKeys() index: the message prefix (up to
/// the first ':') for an axiom violation, "causality" for a weak verdict.
/// -1 for an unknown prefix (a checker/report drift bug).
int axiomKeyIndex(const std::string &ViolationMessage);

/// One mined corpus entry: the annotated minimal program plus the stats
/// of the pipeline stages that produced and verified it.
struct CorpusEntry {
  std::string Name;  ///< "hunt-000000", assigned at append.
  unsigned Round = 0;
  uint32_t KeyCrc = 0; ///< crc32 of \ref Key (the record's compact form).
  std::string Key;     ///< Canonical key text (recomputed on load).
  /// The minimal weak program with `fence?` at the kept hardening sites:
  /// plain runs reproduce the weak outcome, --fences runs are hardened.
  litmus::Program Annotated;
  // Shrink stage.
  unsigned OriginalOps = 0, ReducedOps = 0;
  unsigned ShrinkCandidates = 0, ShrinkAccepted = 0;
  uint64_t CrossChecks = 0;
  unsigned ProvokingRegion = 0;
  // Harden stage (Alg. 1; attempts > 1 when a verify-clean fence set
  // needed budget escalation).
  unsigned FenceSites = 0, Fences = 0, HardenRounds = 0;
  unsigned HardenAttempts = 0;
  bool HardenStable = false;
  // Oracle verification of the hardened program.
  unsigned VerifyRuns = 0, VerifyWeak = 0, VerifyForbidden = 0;
  std::array<uint64_t, NumAxioms> AxiomViolations{};
};

/// The corpus identity pinned by manifest.json. Rounds are deliberately
/// absent: resuming with a larger --rounds extends the same corpus.
struct CorpusManifest {
  std::string Chip;
  uint64_t Seed = 0;
  unsigned Programs = 0, RunsPerProgram = 0;
  unsigned NumVars = 0, OpsPerThread = 0;
  unsigned Distance = 0;
  unsigned ShrinkRuns = 0, HardenRuns = 0, StableRuns = 0, VerifyRuns = 0;

  std::string render() const; ///< The manifest.json bytes.
};

/// The corpus store. Open one per hunt invocation; with an empty
/// directory path it is purely in-memory (dedupe still works, nothing
/// survives the process).
class Corpus {
public:
  struct OpenOptions {
    std::string Dir; ///< Empty = in-memory.
    bool Resume = false;
    /// Crash-injection test hook: SIGKILL the process right after the
    /// Nth durable record append (0 = off).
    unsigned CrashAfterAppends = 0;
  };

  /// Opens or creates \p Opts.Dir. A fresh directory is initialised with
  /// \p M; an existing one must match \p M byte for byte and requires
  /// \p Opts.Resume (refusing to silently mix corpora). Loads every
  /// durable entry (torn tails truncated with a warning, key CRCs
  /// re-verified against the stored programs) and re-publishes each
  /// entry's .litmus artifact.
  static bool open(const OpenOptions &Opts, const CorpusManifest &M,
                   Corpus &Out, std::string *Err);

  bool contains(const std::string &Key) const {
    return Keys.count(Key) != 0;
  }

  /// Entries in append order (loaded + this invocation's).
  const std::vector<CorpusEntry> &entries() const { return Entries; }

  /// Last round a `round_done` marker is durable for; -1 when none (a
  /// resumed hunt restarts at lastCompletedRound() + 1).
  int lastCompletedRound() const { return LastRound; }

  const std::vector<std::string> &warnings() const { return Warnings; }

  /// Assigns \p E.Name from the corpus size, appends the record durably
  /// and publishes the .litmus artifact. The entry's Key must not
  /// already be present (dedupe is the caller's serial stage).
  bool append(CorpusEntry E, std::string *Err);

  /// Appends the round-completion marker for \p Round.
  bool markRoundDone(unsigned Round, std::string *Err);

private:
  bool durableAppend(const std::string &Payload, std::string *Err);

  std::string Dir; ///< Empty in in-memory mode.
  unsigned CrashAfterAppends = 0;
  unsigned Appends = 0;
  RecordLog Log; ///< Claimed lazily on first durable append.
  std::vector<CorpusEntry> Entries;
  std::unordered_set<std::string> Keys;
  int LastRound = -1;
  std::vector<std::string> Warnings;
};

} // namespace hunt
} // namespace gpuwmm

#endif // GPUWMM_HUNT_CORPUS_H
