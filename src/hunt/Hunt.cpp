//===- hunt/Hunt.cpp - Closed-loop bug-mining pipeline ----------------------===//

#include "hunt/Hunt.h"

#include "fuzz/LitmusBridge.h"
#include "fuzz/Shrink.h"
#include "harden/LitmusHarden.h"
#include "litmus/Format.h"
#include "litmus/Litmus.h"
#include "model/StreamingChecker.h"
#include "stress/Environment.h"
#include "support/Json.h"
#include "support/Rng.h"

#include <cstdio>
#include <ostream>
#include <set>
#include <utility>

using namespace gpuwmm;
using namespace gpuwmm::hunt;

CorpusManifest HuntConfig::manifest() const {
  CorpusManifest M;
  M.Chip = Chip->ShortName;
  M.Seed = Seed;
  M.Programs = Fuzz.Programs;
  M.RunsPerProgram = Fuzz.RunsPerProgram;
  M.NumVars = Fuzz.NumVars;
  M.OpsPerThread = Fuzz.OpsPerThread;
  M.Distance = Distance;
  M.ShrinkRuns = ShrinkRuns;
  M.HardenRuns = HardenRuns;
  M.StableRuns = StableRuns;
  M.VerifyRuns = VerifyRuns;
  return M;
}

bool HuntReport::clean() const {
  if (OracleWeak)
    return false;
  for (uint64_t N : AxiomCounts)
    if (N)
      return false;
  return true;
}

namespace {

/// A shrunk case that survived dedupe, awaiting harden + verify.
struct Survivor {
  litmus::Program Canon;
  std::string Key;
  /// Index among this round's weak cases — the harden/verify seed key.
  /// Keyed here rather than by position in the survivor list so a
  /// resumed round (where already-durable entries dedupe away and the
  /// list shrinks) still derives the same seeds per case and reproduces
  /// identical entry statistics.
  size_t SourceIndex = 0;
  CorpusEntry E; ///< Shrink-stage fields filled; rest after harden.
};

/// Hardening attempts per survivor before giving up and recording the
/// residual violations honestly (each attempt doubles Alg. 1's budgets).
constexpr unsigned MaxHardenAttempts = 5;

/// Hardens one survivor at its provoking stress region, then runs the
/// hardened program VerifyRuns times under the streaming oracle, tallying
/// weak/forbidden outcomes and per-axiom violations. The verify stream is
/// the spec, not a dice roll: it is fixed per survivor, and when the
/// hardened program still shows a non-SC run on it (Alg. 1's empirical
/// checks are statistical — a rare reordering can slip past them),
/// hardening is retried with doubled check/stability budgets and a fresh
/// oracle seed until the verify stream is clean. Pure function of
/// (survivor, seeds) — safe as a parallel per-index stage.
void hardenAndVerify(Survivor &S, const HuntConfig &Cfg,
                     uint64_t HardenSeed, uint64_t VerifySeed) {
  const auto Tuned = stress::TunedStressParams::paperDefaults(*Cfg.Chip);
  const auto Stress =
      Cfg.Fuzz.Stressed
          ? litmus::LitmusRunner::MicroStress::at(
                Tuned.Seq, (S.E.ProvokingRegion % Cfg.Chip->NumBanks) *
                               Tuned.PatchWords)
          : litmus::LitmusRunner::MicroStress::none();

  for (unsigned Attempt = 0; Attempt != MaxHardenAttempts; ++Attempt) {
    harden::LitmusHardenOptions HO;
    HO.Distance = Cfg.Distance;
    HO.CheckRuns = Cfg.HardenRuns << Attempt;
    HO.StableRuns = Cfg.StableRuns << Attempt;
    HO.Seed = Rng::deriveStream(HardenSeed, Attempt);
    HO.Stressed = Cfg.Fuzz.Stressed;
    HO.StressRegion = S.E.ProvokingRegion;
    const harden::LitmusHardenResult HR =
        harden::hardenLitmusProgram(S.Canon, *Cfg.Chip, HO);
    S.E.Annotated = HR.Annotated;
    S.E.FenceSites = HR.NumSites;
    S.E.Fences = static_cast<unsigned>(HR.Fences.count());
    S.E.HardenRounds = HR.Insertion.Rounds;
    S.E.HardenStable = HR.Insertion.Stable;
    S.E.HardenAttempts = Attempt + 1;

    S.E.VerifyRuns = Cfg.VerifyRuns;
    S.E.VerifyWeak = S.E.VerifyForbidden = 0;
    S.E.AxiomViolations = {};
    litmus::LitmusRunner Runner(*Cfg.Chip, VerifySeed);
    model::StreamingChecker Checker;
    litmus::LitmusRunOpts Opts;
    Opts.Sink = &Checker;
    for (unsigned Run = 0; Run != Cfg.VerifyRuns; ++Run) {
      Checker.begin();
      const bool Forbidden =
          Runner.runOnce(HR.Hardened, Cfg.Distance, Stress, Opts);
      const model::StreamVerdict &V = Checker.finish();
      if (Forbidden)
        ++S.E.VerifyForbidden;
      if (!V.AxiomsOk) {
        const int Idx = axiomKeyIndex(V.AxiomViolation);
        if (Idx >= 0)
          ++S.E.AxiomViolations[Idx];
      } else if (V.weak()) {
        ++S.E.VerifyWeak;
        ++S.E.AxiomViolations[axiomKeyIndex("causality")];
      }
    }
    bool Clean = S.E.VerifyWeak == 0;
    for (uint64_t N : S.E.AxiomViolations)
      Clean = Clean && N == 0;
    if (Clean)
      return;
  }
}

} // namespace

bool hunt::runHunt(const HuntConfig &Cfg, ThreadPool *Pool,
                   HuntReport &Report, std::string *Err) {
  Report = HuntReport();
  Report.Config = Cfg;

  Corpus::OpenOptions CO;
  CO.Dir = Cfg.CorpusDir;
  CO.Resume = Cfg.Resume;
  CO.CrashAfterAppends = Cfg.CrashAfterAppends;
  Corpus C;
  if (!Corpus::open(CO, Cfg.manifest(), C, Err))
    return false;
  Report.Warnings = C.warnings();
  Report.StartRound = static_cast<unsigned>(C.lastCompletedRound() + 1);

  for (unsigned Round = Report.StartRound; Round < Cfg.Rounds; ++Round) {
    // Stage seeds: four decoupled streams per round, so adding runs to
    // one stage never perturbs another.
    const uint64_t FuzzSeed = Rng::deriveStream(Cfg.Seed, 4 * Round);
    const uint64_t ShrinkSeed = Rng::deriveStream(Cfg.Seed, 4 * Round + 1);
    const uint64_t HardenSeed = Rng::deriveStream(Cfg.Seed, 4 * Round + 2);
    const uint64_t VerifySeed = Rng::deriveStream(Cfg.Seed, 4 * Round + 3);

    // Fuzz: batch-classify random programs against their SC sets.
    const std::vector<fuzz::BatchEntry> Batch =
        fuzz::fuzzBatch(*Cfg.Chip, Cfg.Fuzz, FuzzSeed, Pool);
    Report.ProgramsFuzzed += Batch.size();
    std::vector<size_t> WeakIdx;
    for (size_t I = 0; I != Batch.size(); ++I)
      if (Batch[I].R.WeakOutcomes)
        WeakIdx.push_back(I);
    Report.WeakPrograms += WeakIdx.size();

    // Shrink every weak case in parallel (per-index seed, per-index slot).
    std::vector<fuzz::ShrinkResult> Shrunk(WeakIdx.size());
    std::vector<litmus::Program> Originals(WeakIdx.size());
    parallelFor(Pool, WeakIdx.size(), [&](size_t J) {
      const fuzz::BatchEntry &B = Batch[WeakIdx[J]];
      Originals[J] = fuzz::toLitmusProgram(
          B.P, "hunt-candidate", &B.R.FirstWeak);
      fuzz::ShrinkOptions SO;
      SO.Distance = Cfg.Distance;
      SO.RunsPerAttempt = Cfg.ShrinkRuns;
      SO.Seed = Rng::deriveStream(ShrinkSeed, static_cast<uint64_t>(J));
      SO.Stressed = Cfg.Fuzz.Stressed;
      Shrunk[J] = fuzz::shrinkWeakProgram(Originals[J], *Cfg.Chip, SO);
    });

    // Serial triage in index order: oracle hard-fail, then dedupe.
    std::vector<Survivor> Survivors;
    std::set<std::string> RoundKeys;
    for (size_t J = 0; J != Shrunk.size(); ++J) {
      fuzz::ShrinkResult &SR = Shrunk[J];
      Report.ShrinkCandidates += SR.Candidates;
      Report.ShrinkAccepted += SR.Accepted;
      Report.CrossChecks += SR.CrossChecks;
      if (!SR.OracleError.empty()) {
        // A diverging oracle invalidates the whole mining run: nothing
        // this round decided can be trusted, and continuing would bake
        // the divergence into the corpus.
        if (Err)
          *Err = "round " + std::to_string(Round) +
                 ": consistency checkers disagreed during shrink: " +
                 SR.OracleError;
        return false;
      }
      if (!SR.Reproduced) {
        ++Report.NotReproduced;
        continue;
      }
      Survivor S;
      S.Canon = fuzz::canonicalizeProgram(SR.Reduced);
      S.Key = fuzz::canonicalKey(SR.Reduced);
      S.SourceIndex = J;
      if (C.contains(S.Key) || !RoundKeys.insert(S.Key).second) {
        ++Report.Duplicates;
        continue;
      }
      S.E.Round = Round;
      S.E.Key = S.Key;
      S.E.OriginalOps = SR.OriginalOps;
      S.E.ReducedOps = SR.ReducedOps;
      S.E.ShrinkCandidates = SR.Candidates;
      S.E.ShrinkAccepted = SR.Accepted;
      S.E.CrossChecks = SR.CrossChecks;
      S.E.ProvokingRegion = SR.ProvokingRegion;
      Survivors.push_back(std::move(S));
    }

    // Harden + oracle-verify the survivors in parallel.
    parallelFor(Pool, Survivors.size(), [&](size_t K) {
      const uint64_t Src = static_cast<uint64_t>(Survivors[K].SourceIndex);
      hardenAndVerify(Survivors[K], Cfg,
                      Rng::deriveStream(HardenSeed, Src),
                      Rng::deriveStream(VerifySeed, Src));
    });

    // Durable appends, in index order, then the round marker.
    for (Survivor &S : Survivors) {
      if (!C.append(std::move(S.E), Err))
        return false;
      ++Report.NewEntries;
    }
    if (!C.markRoundDone(Round, Err))
      return false;
    ++Report.RoundsRun;
  }

  Report.Entries = C.entries();
  for (const CorpusEntry &E : Report.Entries) {
    Report.OracleChecked += E.VerifyRuns;
    Report.OracleWeak += E.VerifyWeak;
    Report.OracleForbidden += E.VerifyForbidden;
    for (size_t I = 0; I != NumAxioms; ++I)
      Report.AxiomCounts[I] += E.AxiomViolations[I];
  }
  return true;
}

void hunt::writeHuntJson(const HuntReport &Report, std::ostream &OS) {
  const HuntConfig &Cfg = Report.Config;
  // Build-stable metadata only (no wall-clock, no host facts): the report
  // is byte-identical across machines, --jobs and --batch for one config.
  OS << "{\n"
     << "  \"schema\": \"gpuwmm-hunt-v1\",\n"
     << "  \"schema_version\": 1,\n"
     << "  \"tool\": {\"name\": \"gpuwmm\", \"version\": \"" GPUWMM_VERSION
        "\"},\n"
     << "  \"chip\": \"" << Cfg.Chip->ShortName << "\",\n"
     << "  \"seed\": " << Cfg.Seed << ",\n"
     << "  \"rounds\": " << Cfg.Rounds << ",\n"
     << "  \"start_round\": " << Report.StartRound << ",\n"
     << "  \"rounds_run\": " << Report.RoundsRun << ",\n"
     << "  \"config\": {\"programs\": " << Cfg.Fuzz.Programs
     << ", \"runs_per_program\": " << Cfg.Fuzz.RunsPerProgram
     << ", \"num_vars\": " << Cfg.Fuzz.NumVars
     << ", \"ops_per_thread\": " << Cfg.Fuzz.OpsPerThread
     << ", \"distance\": " << Cfg.Distance
     << ", \"shrink_runs\": " << Cfg.ShrinkRuns
     << ", \"harden_runs\": " << Cfg.HardenRuns
     << ", \"stable_runs\": " << Cfg.StableRuns
     << ", \"verify_runs\": " << Cfg.VerifyRuns << "},\n";

  OS << "  \"totals\": {\"programs_fuzzed\": " << Report.ProgramsFuzzed
     << ", \"weak_programs\": " << Report.WeakPrograms
     << ", \"not_reproduced\": " << Report.NotReproduced
     << ", \"shrink_candidates\": " << Report.ShrinkCandidates
     << ", \"shrink_accepted\": " << Report.ShrinkAccepted
     << ", \"cross_checks\": " << Report.CrossChecks
     << ", \"duplicates\": " << Report.Duplicates
     << ", \"new_entries\": " << Report.NewEntries
     << ", \"corpus_size\": " << Report.Entries.size() << "},\n";

  OS << "  \"oracle\": {\"checked\": " << Report.OracleChecked
     << ", \"weak\": " << Report.OracleWeak
     << ", \"forbidden\": " << Report.OracleForbidden
     << ", \"clean\": " << (Report.clean() ? "true" : "false")
     << ", \"axiom_violations\": {";
  const auto &Keys = axiomKeys();
  for (size_t I = 0; I != Keys.size(); ++I)
    OS << (I ? ", " : "") << "\"" << Keys[I]
       << "\": " << Report.AxiomCounts[I];
  OS << "}},\n";

  OS << "  \"entries\": [";
  for (size_t I = 0; I != Report.Entries.size(); ++I) {
    const CorpusEntry &E = Report.Entries[I];
    OS << (I ? "," : "") << "\n    {\"name\": \"" << jsonEscape(E.Name)
       << "\", \"round\": " << E.Round << ", \"key_crc\": \"";
    {
      char Buf[16];
      std::snprintf(Buf, sizeof(Buf), "%08x", E.KeyCrc);
      OS << Buf;
    }
    OS << "\", \"original_ops\": " << E.OriginalOps
       << ", \"reduced_ops\": " << E.ReducedOps
       << ", \"shrink_candidates\": " << E.ShrinkCandidates
       << ", \"shrink_accepted\": " << E.ShrinkAccepted
       << ", \"cross_checks\": " << E.CrossChecks
       << ", \"provoking_region\": " << E.ProvokingRegion
       << ", \"fence_sites\": " << E.FenceSites
       << ", \"fences\": " << E.Fences
       << ", \"harden_rounds\": " << E.HardenRounds
       << ", \"harden_attempts\": " << E.HardenAttempts
       << ", \"harden_stable\": " << (E.HardenStable ? "true" : "false")
       << ", \"verify_runs\": " << E.VerifyRuns
       << ", \"verify_weak\": " << E.VerifyWeak
       << ", \"verify_forbidden\": " << E.VerifyForbidden
       << ", \"litmus\": \"" << jsonEscape(litmus::printLitmus(E.Annotated))
       << "\"}";
  }
  OS << (Report.Entries.empty() ? "" : "\n  ") << "]\n}\n";
}
