//===- hunt/Corpus.cpp - Crash-safe canonical corpus of weak cases ----------===//

#include "hunt/Corpus.h"

#include "fuzz/Shrink.h"
#include "harden/LitmusHarden.h"
#include "litmus/Format.h"
#include "support/Json.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sys/stat.h>

using namespace gpuwmm;
using namespace gpuwmm::hunt;

const std::array<const char *, NumAxioms> &hunt::axiomKeys() {
  // The first seven are the message prefixes of the checkers' axiom
  // violations (model/ConsistencyChecker.cpp); "causality" counts weak
  // (axioms-clean but non-SC) verdicts.
  static const std::array<const char *, NumAxioms> Keys = {
      "coherence-per-location", "same-bank FIFO", "fence-drain",
      "self-coherence",         "forwarding",     "same-bank issue order",
      "read-value",             "causality"};
  return Keys;
}

int hunt::axiomKeyIndex(const std::string &ViolationMessage) {
  const size_t Colon = ViolationMessage.find(':');
  const std::string Prefix = Colon == std::string::npos
                                 ? ViolationMessage
                                 : ViolationMessage.substr(0, Colon);
  const auto &Keys = axiomKeys();
  for (size_t I = 0; I != Keys.size(); ++I)
    if (Prefix == Keys[I])
      return static_cast<int>(I);
  return -1;
}

std::string CorpusManifest::render() const {
  std::string S;
  S += "{\n";
  S += "  \"schema\": \"gpuwmm-hunt-manifest-v1\",\n";
  S += "  \"report_schema\": \"gpuwmm-hunt-v1\",\n";
  S += "  \"tool\": {\"name\": \"gpuwmm\", \"version\": \"" GPUWMM_VERSION
       "\"},\n";
  S += "  \"chip\": \"" + jsonEscape(Chip) + "\",\n";
  S += "  \"seed\": " + std::to_string(Seed) + ",\n";
  S += "  \"programs\": " + std::to_string(Programs) + ",\n";
  S += "  \"runs_per_program\": " + std::to_string(RunsPerProgram) + ",\n";
  S += "  \"num_vars\": " + std::to_string(NumVars) + ",\n";
  S += "  \"ops_per_thread\": " + std::to_string(OpsPerThread) + ",\n";
  S += "  \"distance\": " + std::to_string(Distance) + ",\n";
  S += "  \"shrink_runs\": " + std::to_string(ShrinkRuns) + ",\n";
  S += "  \"harden_runs\": " + std::to_string(HardenRuns) + ",\n";
  S += "  \"stable_runs\": " + std::to_string(StableRuns) + ",\n";
  S += "  \"verify_runs\": " + std::to_string(VerifyRuns) + "\n";
  S += "}\n";
  return S;
}

namespace {

std::string hex8(uint32_t V) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "%08x", V);
  return Buf;
}

/// One corpus entry as a single-line record payload.
std::string entryJson(const CorpusEntry &E) {
  std::string S = "{";
  S += "\"name\": \"" + jsonEscape(E.Name) + "\"";
  S += ", \"round\": " + std::to_string(E.Round);
  S += ", \"key_crc\": \"" + hex8(E.KeyCrc) + "\"";
  S += ", \"original_ops\": " + std::to_string(E.OriginalOps);
  S += ", \"reduced_ops\": " + std::to_string(E.ReducedOps);
  S += ", \"shrink_candidates\": " + std::to_string(E.ShrinkCandidates);
  S += ", \"shrink_accepted\": " + std::to_string(E.ShrinkAccepted);
  S += ", \"cross_checks\": " + std::to_string(E.CrossChecks);
  S += ", \"provoking_region\": " + std::to_string(E.ProvokingRegion);
  S += ", \"fence_sites\": " + std::to_string(E.FenceSites);
  S += ", \"fences\": " + std::to_string(E.Fences);
  S += ", \"harden_rounds\": " + std::to_string(E.HardenRounds);
  S += ", \"harden_attempts\": " + std::to_string(E.HardenAttempts);
  S += std::string(", \"harden_stable\": ") +
       (E.HardenStable ? "true" : "false");
  S += ", \"verify_runs\": " + std::to_string(E.VerifyRuns);
  S += ", \"verify_weak\": " + std::to_string(E.VerifyWeak);
  S += ", \"verify_forbidden\": " + std::to_string(E.VerifyForbidden);
  S += ", \"axiom_violations\": {";
  const auto &Keys = axiomKeys();
  for (size_t I = 0; I != Keys.size(); ++I) {
    S += I ? ", " : "";
    // Built without operator+ to dodge GCC 12's -Wrestrict false positive.
    S += "\"";
    S += Keys[I];
    S += "\": ";
    S += std::to_string(E.AxiomViolations[I]);
  }
  S += "}";
  S += ", \"litmus\": \"";
  S += jsonEscape(litmus::printLitmus(E.Annotated));
  S += "\"}";
  return S;
}

bool getUnsigned(const JsonValue &Doc, const char *Key, unsigned &Out,
                 std::string *Err) {
  const JsonValue *V = Doc.find(Key);
  if (!V || V->kind() != JsonValue::Kind::Number) {
    if (Err)
      *Err = std::string("record is missing the '") + Key + "' number";
    return false;
  }
  Out = static_cast<unsigned>(V->asUInt64());
  return true;
}

bool entryFromJson(const JsonValue &Doc, CorpusEntry &E, std::string *Err) {
  const JsonValue *Name = Doc.find("name");
  const JsonValue *KeyCrc = Doc.find("key_crc");
  const JsonValue *Stable = Doc.find("harden_stable");
  const JsonValue *Cross = Doc.find("cross_checks");
  const JsonValue *Axioms = Doc.find("axiom_violations");
  const JsonValue *Litmus = Doc.find("litmus");
  if (!Name || Name->kind() != JsonValue::Kind::String || !KeyCrc ||
      KeyCrc->kind() != JsonValue::Kind::String || !Stable ||
      Stable->kind() != JsonValue::Kind::Bool || !Cross ||
      Cross->kind() != JsonValue::Kind::Number || !Axioms ||
      !Axioms->isObject() || !Litmus ||
      Litmus->kind() != JsonValue::Kind::String) {
    if (Err)
      *Err = "record is not a corpus entry";
    return false;
  }
  E.Name = Name->asString();
  E.KeyCrc = static_cast<uint32_t>(
      std::strtoul(KeyCrc->asString().c_str(), nullptr, 16));
  E.HardenStable = Stable->asBool();
  E.CrossChecks = Cross->asUInt64();
  if (!getUnsigned(Doc, "round", E.Round, Err) ||
      !getUnsigned(Doc, "original_ops", E.OriginalOps, Err) ||
      !getUnsigned(Doc, "reduced_ops", E.ReducedOps, Err) ||
      !getUnsigned(Doc, "shrink_candidates", E.ShrinkCandidates, Err) ||
      !getUnsigned(Doc, "shrink_accepted", E.ShrinkAccepted, Err) ||
      !getUnsigned(Doc, "provoking_region", E.ProvokingRegion, Err) ||
      !getUnsigned(Doc, "fence_sites", E.FenceSites, Err) ||
      !getUnsigned(Doc, "fences", E.Fences, Err) ||
      !getUnsigned(Doc, "harden_rounds", E.HardenRounds, Err) ||
      !getUnsigned(Doc, "harden_attempts", E.HardenAttempts, Err) ||
      !getUnsigned(Doc, "verify_runs", E.VerifyRuns, Err) ||
      !getUnsigned(Doc, "verify_weak", E.VerifyWeak, Err) ||
      !getUnsigned(Doc, "verify_forbidden", E.VerifyForbidden, Err))
    return false;
  const auto &Keys = axiomKeys();
  for (size_t I = 0; I != Keys.size(); ++I) {
    const JsonValue *V = Axioms->find(Keys[I]);
    if (!V || V->kind() != JsonValue::Kind::Number) {
      if (Err)
        *Err = std::string("record is missing the '") + Keys[I] +
               "' axiom counter";
      return false;
    }
    E.AxiomViolations[I] = V->asUInt64();
  }
  litmus::ParseError ParseErr;
  const std::optional<litmus::Program> P =
      litmus::parseLitmus(Litmus->asString(), ParseErr);
  if (!P) {
    if (Err)
      *Err = "entry '" + E.Name +
             "' holds an unparseable litmus text: " + ParseErr.Message;
    return false;
  }
  E.Annotated = *P;
  // The key is derived state: recompute it from the stored program and
  // demand it matches the recorded CRC, so any corruption that survives
  // the record framing (or a canonicaliser drift across versions) is
  // caught at load instead of silently splitting the corpus.
  E.Key = fuzz::canonicalKey(harden::stripOptFences(E.Annotated));
  if (crc32(E.Key) != E.KeyCrc) {
    if (Err)
      *Err = "entry '" + E.Name + "' fails its canonical-key CRC check " +
             "(stored " + hex8(E.KeyCrc) + ", recomputed " +
             hex8(crc32(E.Key)) + ")";
    return false;
  }
  return true;
}

} // namespace

bool Corpus::open(const OpenOptions &Opts, const CorpusManifest &M,
                  Corpus &Out, std::string *Err) {
  Out = Corpus();
  Out.Dir = Opts.Dir;
  Out.CrashAfterAppends = Opts.CrashAfterAppends;
  if (Opts.Dir.empty())
    return true;

  if (::mkdir(Opts.Dir.c_str(), 0755) != 0 && errno != EEXIST) {
    if (Err)
      *Err = "cannot create corpus directory '" + Opts.Dir +
             "': " + std::strerror(errno);
    return false;
  }

  const std::string Manifest = M.render();
  const std::string ManifestPath = Opts.Dir + "/manifest.json";
  std::string Existing;
  std::string ReadErr;
  if (readFile(ManifestPath, Existing, &ReadErr)) {
    // Joining an existing corpus: its identity must match this hunt's
    // config exactly, or entries mined under different budgets (or tool
    // versions) would silently mix.
    if (Existing != Manifest) {
      if (Err)
        *Err = "'" + ManifestPath + "' describes a different hunt (chip, "
               "seed or stage budgets differ); use a fresh --corpus-dir "
               "or matching flags";
      return false;
    }
    if (!Opts.Resume) {
      if (Err)
        *Err = "'" + Opts.Dir + "' already holds a corpus; pass --resume "
               "to extend it";
      return false;
    }
  } else if (!atomicWriteFile(ManifestPath, Manifest, Err)) {
    return false;
  }

  // Load every durable record from every log, oldest-claimed first.
  std::vector<std::string> Logs;
  std::error_code Ec;
  for (const auto &Entry :
       std::filesystem::directory_iterator(Opts.Dir, Ec)) {
    const std::string Name = Entry.path().filename().string();
    if (Name.rfind("corpus-", 0) == 0 && Name.size() > 7 + 6 &&
        Name.compare(Name.size() - 6, 6, ".jsonl") == 0)
      Logs.push_back(Entry.path().string());
  }
  if (Ec) {
    if (Err)
      *Err = "cannot list '" + Opts.Dir + "': " + Ec.message();
    return false;
  }
  std::sort(Logs.begin(), Logs.end());

  for (const std::string &LogPath : Logs) {
    std::string Text;
    if (!readFile(LogPath, Text, Err))
      return false;
    const FramedRecords Framed = parseFramedRecords(Text);
    if (Framed.TornTail)
      Out.Warnings.push_back(
          "'" + LogPath + "': torn tail record truncated at byte " +
          std::to_string(Framed.ValidBytes) +
          " (crash mid-append; the round will be re-run on --resume)");
    for (const std::string &Payload : Framed.Payloads) {
      std::string ParseErr;
      const std::optional<JsonValue> Doc = parseJson(Payload, &ParseErr);
      if (!Doc || !Doc->isObject()) {
        if (Err)
          *Err = "'" + LogPath + "': " +
                 (ParseErr.empty() ? "record is not a JSON object"
                                   : ParseErr);
        return false;
      }
      if (const JsonValue *Round = Doc->find("round_done")) {
        if (Round->kind() != JsonValue::Kind::Number) {
          if (Err)
            *Err = "'" + LogPath + "': malformed round_done record";
          return false;
        }
        Out.LastRound =
            std::max(Out.LastRound, static_cast<int>(Round->asInt64()));
        continue;
      }
      CorpusEntry E;
      if (!entryFromJson(*Doc, E, Err)) {
        if (Err)
          *Err = "'" + LogPath + "': " + *Err;
        return false;
      }
      // First record wins per key: a crashed round re-run on resume may
      // durably rediscover an entry an earlier log already holds.
      if (!Out.Keys.insert(E.Key).second)
        continue;
      Out.Entries.push_back(std::move(E));
    }
  }

  // Re-publish every entry's replayable artifact: a crash between the
  // record append and the artifact write leaves the record (the source
  // of truth) without its .litmus file, and this heals it.
  for (const CorpusEntry &E : Out.Entries)
    if (!atomicWriteFile(Opts.Dir + "/" + E.Name + ".litmus",
                         litmus::printLitmus(E.Annotated), Err))
      return false;
  return true;
}

bool Corpus::durableAppend(const std::string &Payload, std::string *Err) {
  if (Dir.empty())
    return true;
  if (!Log.isOpen()) {
    // Claim the lowest free log index; O_EXCL arbitrates races between
    // invocations sharing the directory.
    for (unsigned I = 0; I != 10000; ++I) {
      char Name[32];
      std::snprintf(Name, sizeof(Name), "corpus-%04u.jsonl", I);
      bool Exists = false;
      std::string ClaimErr;
      auto Claimed = RecordLog::createExclusive(Dir + "/" + Name,
                                                &ClaimErr, &Exists);
      if (Claimed) {
        Log = std::move(*Claimed);
        break;
      }
      if (!Exists) {
        if (Err)
          *Err = ClaimErr;
        return false;
      }
    }
    if (!Log.isOpen()) {
      if (Err)
        *Err = "no free corpus log slot in '" + Dir + "'";
      return false;
    }
  }
  if (!Log.append(Payload, Err))
    return false;
  // Crash-injection hook: the record above is durable, everything after
  // this point (artifacts, later records) is not — exactly the window
  // the resume tests must prove harmless.
  if (CrashAfterAppends && ++Appends == CrashAfterAppends)
    ::raise(SIGKILL);
  return true;
}

bool Corpus::append(CorpusEntry E, std::string *Err) {
  if (E.Key.empty() || Keys.count(E.Key)) {
    if (Err)
      *Err = E.Key.empty() ? "corpus entry has no canonical key"
                           : "duplicate corpus entry for key";
    return false;
  }
  char Name[32];
  std::snprintf(Name, sizeof(Name), "hunt-%06zu", Entries.size());
  E.Name = Name;
  // The stored program carries its corpus identity, nothing else: the
  // fuzz export's name and doc comment do not survive the record
  // round-trip (the parser discards comments), and keeping them would
  // make a resumed corpus re-publish different artifact bytes than the
  // invocation that mined them.
  E.Annotated.Name = E.Name;
  E.Annotated.Doc.clear();
  E.KeyCrc = crc32(E.Key);
  if (!durableAppend(entryJson(E), Err))
    return false;
  if (!Dir.empty() &&
      !atomicWriteFile(Dir + "/" + E.Name + ".litmus",
                       litmus::printLitmus(E.Annotated), Err))
    return false;
  Keys.insert(E.Key);
  Entries.push_back(std::move(E));
  return true;
}

bool Corpus::markRoundDone(unsigned Round, std::string *Err) {
  if (!durableAppend("{\"round_done\": " + std::to_string(Round) + "}",
                     Err))
    return false;
  LastRound = std::max(LastRound, static_cast<int>(Round));
  return true;
}
