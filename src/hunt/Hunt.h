//===- hunt/Hunt.h - Closed-loop bug-mining pipeline ------------*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `gpuwmm hunt` pipeline (DESIGN.md Sec. 18): a closed loop that
/// mines a deduplicated corpus of minimal, hardened, oracle-verified weak
/// cases by composing the whole toolchain —
///
///   fuzz    generate + classify a batch of random programs on the
///           compiled batch engine (fuzz/ProgramFuzzer.h),
///   shrink  delta-debug each weak case to its minimal core with every
///           acceptance cross-checked by both consistency checkers
///           (fuzz/Shrink.h),
///   dedupe  key the canonical printed form against the corpus
///           (hunt/Corpus.h) so isomorphic rediscoveries collapse,
///   harden  run the paper's Alg. 1 over each new entry at its provoking
///           stress region (harden/LitmusHarden.h), and
///   verify  execute the hardened program under the streaming oracle and
///           demand SC, with per-axiom violation accounting.
///
/// Determinism: round R draws four decoupled seed streams
/// (deriveStream(Seed, 4R + stage)), each parallel stage derives
/// per-index streams and writes per-index slots, and serial stages walk
/// in index order — so a bounded hunt's corpus and report are
/// bit-identical for every --jobs and --batch. Resume re-enters at the
/// first round without a durable round_done marker and re-runs it
/// identically; corpus dedupe turns the replayed discoveries into no-ops.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_HUNT_HUNT_H
#define GPUWMM_HUNT_HUNT_H

#include "fuzz/ProgramFuzzer.h"
#include "hunt/Corpus.h"
#include "sim/ChipProfile.h"
#include "support/ThreadPool.h"

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace gpuwmm {
namespace hunt {

/// Configuration of one hunt invocation.
struct HuntConfig {
  const sim::ChipProfile *Chip = nullptr;
  /// Total rounds the corpus should reach (a resumed hunt runs only the
  /// rounds past the durable round_done high-water mark).
  unsigned Rounds = 4;
  /// Per-round fuzzing batch (WithFences stays false: the hunt wants
  /// weak behaviours, not the soundness property).
  fuzz::BatchConfig Fuzz;
  /// Instance distance for shrink/harden/verify executions.
  unsigned Distance = 0;
  unsigned ShrinkRuns = 200; ///< Shrinker runs per stress location.
  unsigned HardenRuns = 32;  ///< Alg. 1 initial per-check iterations.
  unsigned StableRuns = 300; ///< Alg. 1 empirical-stability budget.
  unsigned VerifyRuns = 200; ///< Oracle-checked runs per new entry.
  uint64_t Seed = 1;
  std::string CorpusDir; ///< Empty = in-memory corpus.
  bool Resume = false;
  unsigned CrashAfterAppends = 0; ///< Crash-injection hook (tests).

  /// The manifest this config pins on a corpus directory.
  CorpusManifest manifest() const;
};

/// Accounting of one hunt invocation. The `totals` block counts this
/// invocation's pipeline work; the oracle block and \ref Entries describe
/// the whole corpus (including entries loaded on resume).
struct HuntReport {
  HuntConfig Config;
  unsigned StartRound = 0; ///< First round this invocation executed.
  unsigned RoundsRun = 0;  ///< Rounds this invocation executed.
  // Pipeline totals (this invocation).
  uint64_t ProgramsFuzzed = 0;
  uint64_t WeakPrograms = 0;
  uint64_t NotReproduced = 0; ///< Weak cases the shrinker could not re-provoke.
  uint64_t ShrinkCandidates = 0;
  uint64_t ShrinkAccepted = 0;
  uint64_t CrossChecks = 0; ///< Streaming-vs-post-hoc verdict comparisons.
  uint64_t Duplicates = 0;  ///< Shrunk cases whose key was already mined.
  uint64_t NewEntries = 0;
  // Corpus-wide oracle accounting (sums over \ref Entries).
  uint64_t OracleChecked = 0;
  uint64_t OracleWeak = 0;      ///< Hardened runs still weak (should be 0).
  uint64_t OracleForbidden = 0; ///< Hardened runs hitting the forbidden outcome.
  std::array<uint64_t, NumAxioms> AxiomCounts{};
  std::vector<CorpusEntry> Entries; ///< The full corpus, append order.
  std::vector<std::string> Warnings; ///< Corpus load warnings (torn tails).

  /// True when every corpus entry's hardened program stayed SC under the
  /// oracle (zero weak runs, zero axiom violations).
  bool clean() const;
};

/// Runs the pipeline: opens (or resumes) the corpus, executes the
/// outstanding rounds, and fills \p Report. False + \p Err on hard
/// failure — a corpus I/O error or, crucially, any streaming-vs-post-hoc
/// checker disagreement on a shrink acceptance run (a result built on a
/// diverging oracle must not be trusted). \p Pool may be null (serial);
/// results are bit-identical for every pool size and batch width.
bool runHunt(const HuntConfig &Cfg, ThreadPool *Pool, HuntReport &Report,
             std::string *Err);

/// Writes the hunt report ("gpuwmm-hunt-v1"). No wall-clock or host
/// facts: byte-identical across machines, job counts and batch widths
/// for one config.
void writeHuntJson(const HuntReport &Report, std::ostream &OS);

} // namespace hunt
} // namespace gpuwmm

#endif // GPUWMM_HUNT_HUNT_H
