//===- fuzz/Shrink.cpp - Delta-debugging reduction of weak cases -------------===//

#include "fuzz/Shrink.h"

#include "litmus/Litmus.h"
#include "model/StreamingChecker.h"
#include "stress/Environment.h"
#include "support/Rng.h"

#include <algorithm>
#include <vector>

using namespace gpuwmm;
using namespace gpuwmm::fuzz;
using litmus::ProgOp;
using litmus::Program;

namespace {

unsigned countOps(const Program &P) {
  unsigned N = 0;
  for (const litmus::ProgThread &T : P.Threads)
    N += static_cast<unsigned>(T.Ops.size());
  return N;
}

/// One removable unit: op positions (within one thread) that must go
/// together — a single op, or a split-phase issue plus its await.
struct Unit {
  unsigned Thread;
  std::vector<size_t> Ops; ///< Ascending positions in the thread.
};

/// Registers pinned by the forbidden clause: their loads define the
/// outcome being reproduced and must survive.
std::vector<bool> pinnedRegisters(const Program &P) {
  std::vector<bool> Pinned(P.Registers.size(), false);
  for (const litmus::CondAtom &A : P.Forbidden)
    if (A.IsReg)
      Pinned[A.Index] = true;
  return Pinned;
}

std::vector<Unit> removableUnits(const Program &P) {
  const std::vector<bool> Pinned = pinnedRegisters(P);
  std::vector<Unit> Units;
  for (unsigned TI = 0; TI != P.Threads.size(); ++TI) {
    const auto &Ops = P.Threads[TI].Ops;
    for (size_t I = 0; I != Ops.size(); ++I) {
      const ProgOp &O = Ops[I];
      switch (O.K) {
      case ProgOp::Kind::Store:
      case ProgOp::Kind::AtomicAdd:
      case ProgOp::Kind::Fence:
      case ProgOp::Kind::OptFence:
        Units.push_back({TI, {I}});
        break;
      case ProgOp::Kind::Load:
        if (!Pinned[O.Reg])
          Units.push_back({TI, {I}});
        break;
      case ProgOp::Kind::AsyncLoad: {
        if (Pinned[O.Reg])
          break;
        // The matching await (validate() guarantees exactly one, later).
        for (size_t J = I + 1; J != Ops.size(); ++J)
          if (Ops[J].K == ProgOp::Kind::AwaitLoad && Ops[J].Reg == O.Reg) {
            Units.push_back({TI, {I, J}});
            break;
          }
        break;
      }
      case ProgOp::Kind::AwaitLoad:
        break; // Removed with its issue.
      }
    }
  }
  return Units;
}

/// \p P minus \p U, with the register of a removed load deleted and every
/// higher register index (ops and forbidden atoms) shifted down.
Program removeUnit(const Program &P, const Unit &U) {
  Program Q = P;
  int RemovedReg = -1;
  for (auto It = U.Ops.rbegin(); It != U.Ops.rend(); ++It) {
    const ProgOp &O = Q.Threads[U.Thread].Ops[*It];
    if (O.K == ProgOp::Kind::Load || O.K == ProgOp::Kind::AsyncLoad)
      RemovedReg = static_cast<int>(O.Reg);
    Q.Threads[U.Thread].Ops.erase(Q.Threads[U.Thread].Ops.begin() +
                                  static_cast<ptrdiff_t>(*It));
  }
  if (RemovedReg >= 0) {
    Q.Registers.erase(Q.Registers.begin() + RemovedReg);
    const unsigned R = static_cast<unsigned>(RemovedReg);
    for (litmus::ProgThread &T : Q.Threads)
      for (ProgOp &O : T.Ops) {
        const bool HasReg = O.K == ProgOp::Kind::Load ||
                            O.K == ProgOp::Kind::AsyncLoad ||
                            O.K == ProgOp::Kind::AwaitLoad;
        if (HasReg && O.Reg > R)
          --O.Reg;
      }
    for (litmus::CondAtom &A : Q.Forbidden)
      if (A.IsReg && A.Index > R)
        --A.Index;
  }
  return Q;
}

/// Whether \p P provokes its forbidden outcome as a checker-confirmed weak
/// behaviour within the attempt budget. \p AttemptIdx seeds the attempt
/// (one stream per candidate, so the search is deterministic);
/// \p PreferRegion is tried first (the stress location that last worked).
bool reproducesWeak(const Program &P, const sim::ChipProfile &Chip,
                    const ShrinkOptions &Opts, uint64_t AttemptIdx,
                    unsigned &PreferRegion,
                    model::StreamingChecker &Checker) {
  litmus::LitmusRunner Runner(Chip, Rng::deriveStream(Opts.Seed, AttemptIdx));
  litmus::LitmusRunner::RunOpts RunOpts;
  RunOpts.Sink = &Checker;

  // Stress locations to try, most-recently-successful region first (the
  // effective region rarely changes between close candidates).
  const auto Tuned = stress::TunedStressParams::paperDefaults(Chip);
  std::vector<std::pair<unsigned, litmus::LitmusRunner::MicroStress>> Configs;
  if (Opts.Stressed) {
    const unsigned First = PreferRegion % Chip.NumBanks;
    Configs.emplace_back(First, litmus::LitmusRunner::MicroStress::at(
                                    Tuned.Seq, First * Tuned.PatchWords));
    for (unsigned Region = 0; Region != Chip.NumBanks; ++Region)
      if (Region != First)
        Configs.emplace_back(Region,
                             litmus::LitmusRunner::MicroStress::at(
                                 Tuned.Seq, Region * Tuned.PatchWords));
  } else {
    Configs.emplace_back(0, litmus::LitmusRunner::MicroStress::none());
  }

  for (const auto &[Region, Stress] : Configs) {
    for (unsigned Run = 0; Run != Opts.RunsPerAttempt; ++Run) {
      // Every run streams through the checker (no trace is retained);
      // the verdict is only consulted when the forbidden outcome hits.
      Checker.begin();
      const bool Forbidden = Runner.runOnce(P, Opts.Distance, Stress,
                                            RunOpts);
      const model::StreamVerdict &R = Checker.finish();
      if (!Forbidden)
        continue;
      // The forbidden outcome was observed; only a checker-confirmed
      // non-SC execution counts (a reduction that makes the outcome
      // sequentially reachable shrank the weakness away).
      if (R.weak()) {
        PreferRegion = Region;
        return true;
      }
    }
  }
  return false;
}

} // namespace

ShrinkResult fuzz::shrinkWeakProgram(const Program &P,
                                     const sim::ChipProfile &Chip,
                                     const ShrinkOptions &Opts) {
  ShrinkResult Result;
  Result.Reduced = P;
  Result.OriginalOps = countOps(P);
  Result.ReducedOps = Result.OriginalOps;

  model::StreamingChecker Checker;
  unsigned PreferRegion = 0;
  uint64_t AttemptIdx = 0;
  if (!reproducesWeak(P, Chip, Opts, AttemptIdx++, PreferRegion, Checker))
    return Result; // Nothing to shrink against.
  Result.Reproduced = true;

  bool Improved = true;
  while (Improved) {
    Improved = false;
    for (const Unit &U : removableUnits(Result.Reduced)) {
      Program Candidate = removeUnit(Result.Reduced, U);
      if (!Candidate.validate().empty())
        continue;
      ++Result.Candidates;
      if (reproducesWeak(Candidate, Chip, Opts, AttemptIdx++, PreferRegion,
                         Checker)) {
        Result.Reduced = std::move(Candidate);
        ++Result.Accepted;
        Improved = true;
        break; // Unit positions shifted; rebuild the unit list.
      }
    }
  }
  Result.ReducedOps = countOps(Result.Reduced);
  return Result;
}
