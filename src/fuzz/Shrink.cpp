//===- fuzz/Shrink.cpp - Delta-debugging reduction of weak cases -------------===//

#include "fuzz/Shrink.h"

#include "litmus/Format.h"
#include "litmus/Litmus.h"
#include "model/ConsistencyChecker.h"
#include "model/StreamingChecker.h"
#include "stress/Environment.h"
#include "support/Rng.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

using namespace gpuwmm;
using namespace gpuwmm::fuzz;
using litmus::CondAtom;
using litmus::ProgOp;
using litmus::Program;

namespace {

unsigned countOps(const Program &P) {
  unsigned N = 0;
  for (const litmus::ProgThread &T : P.Threads)
    N += static_cast<unsigned>(T.Ops.size());
  return N;
}

/// One removable unit: a whole thread (every op, plus the registers its
/// loads define), or op positions within one thread that must go together
/// — a single op, or a split-phase issue plus its await.
struct Unit {
  enum class Kind { Ops, Thread };
  Kind K = Kind::Ops;
  unsigned Thread = 0;
  std::vector<size_t> Ops; ///< Ascending positions (Kind::Ops only).
};

/// Registers pinned by the forbidden clause: their loads define the
/// outcome being reproduced and must survive.
std::vector<bool> pinnedRegisters(const Program &P) {
  std::vector<bool> Pinned(P.Registers.size(), false);
  for (const CondAtom &A : P.Forbidden)
    if (A.IsReg)
      Pinned[A.Index] = true;
  return Pinned;
}

/// Renumbers block placements by first appearance in thread order (block
/// of thread 0 becomes 0, the next distinct placement 1, ...). Keeps a
/// thread removal from leaving holes in the launch grid and is the block
/// normalisation step of the canonical form.
void renumberBlocks(Program &P) {
  std::vector<int> Map;
  unsigned Next = 0;
  for (litmus::ProgThread &T : P.Threads) {
    if (T.Block >= Map.size())
      Map.resize(T.Block + 1, -1);
    if (Map[T.Block] < 0)
      Map[T.Block] = static_cast<int>(Next++);
    T.Block = static_cast<unsigned>(Map[T.Block]);
  }
}

/// Deletes register \p R: erases its name and shifts every higher
/// register index (ops and forbidden atoms) down by one.
void eraseRegister(Program &P, unsigned R) {
  P.Registers.erase(P.Registers.begin() + R);
  for (litmus::ProgThread &T : P.Threads)
    for (ProgOp &O : T.Ops) {
      const bool HasReg = O.K == ProgOp::Kind::Load ||
                          O.K == ProgOp::Kind::AsyncLoad ||
                          O.K == ProgOp::Kind::AwaitLoad;
      if (HasReg && O.Reg > R)
        --O.Reg;
    }
  for (CondAtom &A : P.Forbidden)
    if (A.IsReg && A.Index > R)
      --A.Index;
}

std::vector<Unit> removableUnits(const Program &P) {
  const std::vector<bool> Pinned = pinnedRegisters(P);
  std::vector<Unit> Units;
  // Whole threads first (the most aggressive reduction): removable when
  // no register the thread defines is pinned by the forbidden clause and
  // at least one other thread remains.
  if (P.Threads.size() > 1)
    for (unsigned TI = 0; TI != P.Threads.size(); ++TI) {
      bool Removable = true;
      for (const ProgOp &O : P.Threads[TI].Ops)
        if ((O.K == ProgOp::Kind::Load || O.K == ProgOp::Kind::AsyncLoad) &&
            Pinned[O.Reg])
          Removable = false;
      if (Removable) {
        Unit U;
        U.K = Unit::Kind::Thread;
        U.Thread = TI;
        Units.push_back(std::move(U));
      }
    }
  for (unsigned TI = 0; TI != P.Threads.size(); ++TI) {
    const auto &Ops = P.Threads[TI].Ops;
    for (size_t I = 0; I != Ops.size(); ++I) {
      const ProgOp &O = Ops[I];
      switch (O.K) {
      case ProgOp::Kind::Store:
      case ProgOp::Kind::AtomicAdd:
      case ProgOp::Kind::Fence:
      case ProgOp::Kind::OptFence:
        Units.push_back({Unit::Kind::Ops, TI, {I}});
        break;
      case ProgOp::Kind::Load:
        if (!Pinned[O.Reg])
          Units.push_back({Unit::Kind::Ops, TI, {I}});
        break;
      case ProgOp::Kind::AsyncLoad: {
        if (Pinned[O.Reg])
          break;
        // The matching await (validate() guarantees exactly one, later).
        for (size_t J = I + 1; J != Ops.size(); ++J)
          if (Ops[J].K == ProgOp::Kind::AwaitLoad && Ops[J].Reg == O.Reg) {
            Units.push_back({Unit::Kind::Ops, TI, {I, J}});
            break;
          }
        break;
      }
      case ProgOp::Kind::AwaitLoad:
        break; // Removed with its issue.
      }
    }
  }
  return Units;
}

/// \p P minus \p U, with the registers of removed loads deleted and every
/// higher register index (ops and forbidden atoms) shifted down.
Program removeUnit(const Program &P, const Unit &U) {
  Program Q = P;
  if (U.K == Unit::Kind::Thread) {
    // Collect the registers the thread defines (each loaded exactly once,
    // so they are unique), erase the thread, then the registers
    // descending so lower indices stay valid.
    std::vector<unsigned> Regs;
    for (const ProgOp &O : Q.Threads[U.Thread].Ops)
      if (O.K == ProgOp::Kind::Load || O.K == ProgOp::Kind::AsyncLoad)
        Regs.push_back(O.Reg);
    std::sort(Regs.rbegin(), Regs.rend());
    Q.Threads.erase(Q.Threads.begin() + U.Thread);
    for (unsigned R : Regs)
      eraseRegister(Q, R);
    renumberBlocks(Q);
    return Q;
  }
  int RemovedReg = -1;
  for (auto It = U.Ops.rbegin(); It != U.Ops.rend(); ++It) {
    const ProgOp &O = Q.Threads[U.Thread].Ops[*It];
    if (O.K == ProgOp::Kind::Load || O.K == ProgOp::Kind::AsyncLoad)
      RemovedReg = static_cast<int>(O.Reg);
    Q.Threads[U.Thread].Ops.erase(Q.Threads[U.Thread].Ops.begin() +
                                  static_cast<ptrdiff_t>(*It));
  }
  if (RemovedReg >= 0)
    eraseRegister(Q, static_cast<unsigned>(RemovedReg));
  return Q;
}

/// Shared oracle state of one reduction: both checkers, recycled across
/// candidates, plus the cross-check accounting.
struct ShrinkOracle {
  model::StreamingChecker Streaming;
  model::ConsistencyChecker PostHoc;
  uint64_t CrossChecks = 0;
  std::string Error; ///< First disagreement (sticky).
};

enum class Repro { No, Yes, Disagree };

/// Whether \p P provokes its forbidden outcome as a checker-confirmed weak
/// behaviour within the attempt budget. Every consulted run is traced and
/// judged by BOTH the streaming and the post-hoc checker; a verdict
/// disagreement is a hard failure (Repro::Disagree), not a data point.
/// \p AttemptIdx seeds the attempt (one stream per candidate, so the
/// search is deterministic); \p PreferRegion is tried first (the stress
/// location that last worked).
Repro reproducesWeak(const Program &P, const sim::ChipProfile &Chip,
                     const ShrinkOptions &Opts, uint64_t AttemptIdx,
                     unsigned &PreferRegion, ShrinkOracle &Oracle) {
  litmus::LitmusRunner Runner(Chip, Rng::deriveStream(Opts.Seed, AttemptIdx));
  litmus::LitmusRunner::RunOpts RunOpts;
  // Trace (rather than sink-stream) so the same recorded events feed both
  // checkers. Tracing and sinking are equally pure observation on the
  // scalar path, so verdicts and run outcomes match the historical
  // sink-attached behaviour bit for bit.
  RunOpts.Trace = true;

  // Stress locations to try, most-recently-successful region first (the
  // effective region rarely changes between close candidates).
  const auto Tuned = stress::TunedStressParams::paperDefaults(Chip);
  std::vector<std::pair<unsigned, litmus::LitmusRunner::MicroStress>> Configs;
  if (Opts.Stressed) {
    const unsigned First = PreferRegion % Chip.NumBanks;
    Configs.emplace_back(First, litmus::LitmusRunner::MicroStress::at(
                                    Tuned.Seq, First * Tuned.PatchWords));
    for (unsigned Region = 0; Region != Chip.NumBanks; ++Region)
      if (Region != First)
        Configs.emplace_back(Region,
                             litmus::LitmusRunner::MicroStress::at(
                                 Tuned.Seq, Region * Tuned.PatchWords));
  } else {
    Configs.emplace_back(0, litmus::LitmusRunner::MicroStress::none());
  }

  for (const auto &[Region, Stress] : Configs) {
    for (unsigned Run = 0; Run != Opts.RunsPerAttempt; ++Run) {
      const bool Forbidden = Runner.runOnce(P, Opts.Distance, Stress,
                                            RunOpts);
      if (!Forbidden)
        continue;
      // The forbidden outcome was observed; only a checker-confirmed
      // non-SC execution counts (a reduction that makes the outcome
      // sequentially reachable shrank the weakness away) — and both
      // oracles must say so about the same trace.
      const sim::EventTrace &Trace = Runner.trace();
      const model::StreamVerdict &SV = Oracle.Streaming.checkAll(Trace);
      const model::CheckResult CR = Oracle.PostHoc.check(Trace);
      ++Oracle.CrossChecks;
      if (SV.AxiomsOk != CR.AxiomsOk || SV.weak() != CR.weak()) {
        Oracle.Error =
            "streaming and post-hoc checkers disagree on a "
            "forbidden-outcome run of '" +
            P.Name + "' (streaming: axioms " +
            (SV.AxiomsOk ? "ok" : ("violated [" + SV.AxiomViolation + "]")) +
            (SV.weak() ? ", weak" : ", not weak") + "; post-hoc: axioms " +
            (CR.AxiomsOk ? "ok" : ("violated [" + CR.AxiomViolation + "]")) +
            (CR.weak() ? ", weak" : ", not weak") + ")";
        return Repro::Disagree;
      }
      if (SV.weak()) {
        PreferRegion = Region;
        return Repro::Yes;
      }
    }
  }
  return Repro::No;
}

} // namespace

ShrinkResult fuzz::shrinkWeakProgram(const Program &P,
                                     const sim::ChipProfile &Chip,
                                     const ShrinkOptions &Opts) {
  ShrinkResult Result;
  Result.Reduced = P;
  Result.OriginalOps = countOps(P);
  Result.ReducedOps = Result.OriginalOps;

  ShrinkOracle Oracle;
  unsigned PreferRegion = 0;
  uint64_t AttemptIdx = 0;
  const Repro First =
      reproducesWeak(P, Chip, Opts, AttemptIdx++, PreferRegion, Oracle);
  Result.CrossChecks = Oracle.CrossChecks;
  Result.OracleError = Oracle.Error;
  if (First != Repro::Yes)
    return Result; // Nothing to shrink against (or oracle divergence).
  Result.Reproduced = true;
  Result.ProvokingRegion = PreferRegion;

  bool Improved = true;
  while (Improved) {
    Improved = false;
    for (const Unit &U : removableUnits(Result.Reduced)) {
      Program Candidate = removeUnit(Result.Reduced, U);
      if (!Candidate.validate().empty())
        continue;
      ++Result.Candidates;
      const Repro R = reproducesWeak(Candidate, Chip, Opts, AttemptIdx++,
                                     PreferRegion, Oracle);
      if (R == Repro::Disagree) {
        Result.CrossChecks = Oracle.CrossChecks;
        Result.OracleError = Oracle.Error;
        return Result; // Hard failure: stop reducing immediately.
      }
      if (R == Repro::Yes) {
        Result.Reduced = std::move(Candidate);
        Result.ProvokingRegion = PreferRegion;
        if (Opts.RecordSteps)
          Result.Steps.push_back(Result.Reduced);
        ++Result.Accepted;
        Improved = true;
        break; // Unit positions shifted; rebuild the unit list.
      }
    }
  }
  Result.ReducedOps = countOps(Result.Reduced);
  Result.CrossChecks = Oracle.CrossChecks;
  return Result;
}

bool fuzz::reproducesWeakProgram(const Program &P,
                                 const sim::ChipProfile &Chip,
                                 const ShrinkOptions &Opts,
                                 std::string *OracleError) {
  ShrinkOracle Oracle;
  unsigned PreferRegion = 0;
  const Repro R = reproducesWeak(P, Chip, Opts, /*AttemptIdx=*/0,
                                 PreferRegion, Oracle);
  if (OracleError)
    *OracleError = Oracle.Error;
  return R == Repro::Yes;
}

//===----------------------------------------------------------------------===//
// Canonical form
//===----------------------------------------------------------------------===//

namespace {

bool opUsesLoc(const ProgOp &O) {
  return O.K == ProgOp::Kind::Store || O.K == ProgOp::Kind::Load ||
         O.K == ProgOp::Kind::AsyncLoad || O.K == ProgOp::Kind::AtomicAdd;
}

/// The location index whose value map governs forbidden atom \p A: the
/// location itself for a memory atom, the defining load's location for a
/// register atom (-1 when the register has no defining load — impossible
/// for validated programs).
int atomLocation(const Program &P, const CondAtom &A) {
  if (!A.IsReg)
    return static_cast<int>(A.Index);
  for (const litmus::ProgThread &T : P.Threads)
    for (const ProgOp &O : T.Ops)
      if ((O.K == ProgOp::Kind::Load || O.K == ProgOp::Kind::AsyncLoad) &&
          O.Reg == A.Index)
        return static_cast<int>(O.Loc);
  return -1;
}

} // namespace

Program fuzz::canonicalizeProgram(const Program &P) {
  Program Q = P;
  renumberBlocks(Q);

  // --- Locations: rename/reorder to v0.. by first use in op scan order,
  // then forbidden-only locations in clause order; locations nothing
  // references are dropped (their init values are unobservable).
  {
    std::vector<int> Map(Q.Locations.size(), -1);
    std::vector<unsigned> Order;
    const auto Touch = [&](unsigned L) {
      if (Map[L] < 0) {
        Map[L] = static_cast<int>(Order.size());
        Order.push_back(L);
      }
    };
    for (const litmus::ProgThread &T : Q.Threads)
      for (const ProgOp &O : T.Ops)
        if (opUsesLoc(O))
          Touch(O.Loc);
    for (const CondAtom &A : Q.Forbidden)
      if (!A.IsReg)
        Touch(A.Index);

    std::vector<std::string> Locs(Order.size());
    std::vector<sim::Word> Init(Order.size(), 0);
    for (size_t I = 0; I != Order.size(); ++I) {
      // Built without operator+ to dodge GCC 12's -Wrestrict false positive.
      std::string Loc = "v";
      Loc += std::to_string(I);
      Locs[I] = std::move(Loc);
      Init[I] = Q.Init[Order[I]];
    }
    Q.Locations = std::move(Locs);
    Q.Init = std::move(Init);
    for (litmus::ProgThread &T : Q.Threads)
      for (ProgOp &O : T.Ops)
        if (opUsesLoc(O))
          O.Loc = static_cast<unsigned>(Map[O.Loc]);
    for (CondAtom &A : Q.Forbidden)
      if (!A.IsReg)
        A.Index = static_cast<unsigned>(Map[A.Index]);
  }

  // --- Registers: rename/reorder to r0.. by definition scan order (each
  // register is loaded exactly once in a validated program).
  {
    std::vector<int> Map(Q.Registers.size(), -1);
    unsigned Next = 0;
    for (const litmus::ProgThread &T : Q.Threads)
      for (const ProgOp &O : T.Ops)
        if ((O.K == ProgOp::Kind::Load || O.K == ProgOp::Kind::AsyncLoad) &&
            Map[O.Reg] < 0)
          Map[O.Reg] = static_cast<int>(Next++);
    std::vector<std::string> Regs(Next);
    for (unsigned I = 0; I != Next; ++I) {
      // Built without operator+ to dodge GCC 12's -Wrestrict false positive.
      std::string Reg = "r";
      Reg += std::to_string(I);
      Regs[I] = std::move(Reg);
    }
    Q.Registers = std::move(Regs);
    for (litmus::ProgThread &T : Q.Threads)
      for (ProgOp &O : T.Ops)
        if (O.K == ProgOp::Kind::Load || O.K == ProgOp::Kind::AsyncLoad ||
            O.K == ProgOp::Kind::AwaitLoad)
          O.Reg = static_cast<unsigned>(Map[O.Reg]);
    for (CondAtom &A : Q.Forbidden)
      if (A.IsReg)
        A.Index = static_cast<unsigned>(Map[A.Index]);
  }

  // --- Data values, per location: values are pure payload in a litmus
  // program (no data-dependent control flow), so any per-location
  // injective renaming is a behaviour isomorphism. Normalise to
  // 0 (the implicit default), 1 (a non-zero init), then store values in
  // scan order from 2 — EXCEPT for locations an AtomicAdd touches
  // (values accumulate) or whose forbidden atoms reference a value the
  // map does not cover (renaming could break the pinned outcome).
  for (unsigned L = 0; L != Q.Locations.size(); ++L) {
    bool Skip = false;
    std::map<sim::Word, sim::Word> M;
    M[0] = 0;
    if (Q.Init[L] != 0)
      M.emplace(Q.Init[L], 1);
    sim::Word NextValue = 2;
    for (const litmus::ProgThread &T : Q.Threads)
      for (const ProgOp &O : T.Ops) {
        if (O.K == ProgOp::Kind::AtomicAdd && O.Loc == L)
          Skip = true;
        if (O.K == ProgOp::Kind::Store && O.Loc == L &&
            M.emplace(O.Value, NextValue).second)
          ++NextValue;
      }
    for (const CondAtom &A : Q.Forbidden)
      if (atomLocation(Q, A) == static_cast<int>(L) && !M.count(A.Value))
        Skip = true;
    if (Skip)
      continue;
    Q.Init[L] = M[Q.Init[L]];
    for (litmus::ProgThread &T : Q.Threads)
      for (ProgOp &O : T.Ops)
        if (O.K == ProgOp::Kind::Store && O.Loc == L)
          O.Value = M[O.Value];
    for (CondAtom &A : Q.Forbidden)
      if (atomLocation(Q, A) == static_cast<int>(L))
        A.Value = M[A.Value];
  }

  // --- Forbidden clause: a conjunction, so order and duplicates carry no
  // meaning — sort (registers first) and deduplicate.
  std::sort(Q.Forbidden.begin(), Q.Forbidden.end(),
            [](const CondAtom &A, const CondAtom &B) {
              return std::make_tuple(!A.IsReg, A.Index, A.Negated, A.Value) <
                     std::make_tuple(!B.IsReg, B.Index, B.Negated, B.Value);
            });
  Q.Forbidden.erase(std::unique(Q.Forbidden.begin(), Q.Forbidden.end()),
                    Q.Forbidden.end());
  return Q;
}

std::string fuzz::canonicalKey(const Program &P) {
  Program Q = canonicalizeProgram(P);
  Q.Name = "canonical";
  Q.Doc.clear();
  return litmus::printLitmus(Q);
}
