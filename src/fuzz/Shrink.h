//===- fuzz/Shrink.h - Delta-debugging reduction of weak cases --*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Delta-debugging shrinker for weak litmus cases (`gpuwmm fuzz --shrink`):
/// given a program whose forbidden clause pins a weak outcome (typically a
/// `.litmus` file exported by `fuzz --export-weak`), repeatedly remove
/// instructions while the reduced program still provokes that same
/// forbidden outcome *as a genuinely weak behaviour* — every candidate
/// run streams its events through the incremental axiomatic checker
/// (model/StreamingChecker.h), whose verdict replaces full-trace replay,
/// so a reduction that makes the pinned outcome sequentially reachable is
/// rejected rather than reported as a smaller "bug".
///
/// Instructions whose result register appears in the forbidden clause are
/// never removed (they define the outcome being pinned); split-phase
/// issue/await pairs are removed as one unit.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_FUZZ_SHRINK_H
#define GPUWMM_FUZZ_SHRINK_H

#include "litmus/Program.h"
#include "sim/ChipProfile.h"

#include <cstdint>

namespace gpuwmm {
namespace fuzz {

/// Steers the reduction's reproduction attempts.
struct ShrinkOptions {
  /// Instance distance between communication locations (0 = contiguous);
  /// use the distance the case was provoked at.
  unsigned Distance = 0;
  /// Executions per stress location before a candidate counts as "does
  /// not reproduce". Higher = slower but less over-eager shrinking.
  unsigned RunsPerAttempt = 200;
  uint64_t Seed = 1;
  /// Scan tuned per-bank stress locations (as `litmus --stress` does);
  /// when false candidates run unstressed.
  bool Stressed = true;
};

/// Outcome of a reduction.
struct ShrinkResult {
  litmus::Program Reduced; ///< The original when !Reproduced.
  /// The *original* program provoked its forbidden outcome as a weak
  /// (checker-confirmed non-SC) behaviour; when false nothing was shrunk.
  bool Reproduced = false;
  unsigned OriginalOps = 0; ///< Instructions before reduction.
  unsigned ReducedOps = 0;  ///< Instructions after reduction.
  unsigned Candidates = 0;  ///< Candidate programs evaluated.
  unsigned Accepted = 0;    ///< Reductions that kept the weak outcome.
};

/// Greedily minimises \p P under "still provokes the forbidden outcome,
/// and the axiomatic checker classifies that run as weak". Deterministic
/// for a given (program, chip, options) tuple.
ShrinkResult shrinkWeakProgram(const litmus::Program &P,
                               const sim::ChipProfile &Chip,
                               const ShrinkOptions &Opts);

} // namespace fuzz
} // namespace gpuwmm

#endif // GPUWMM_FUZZ_SHRINK_H
