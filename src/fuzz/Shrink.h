//===- fuzz/Shrink.h - Delta-debugging reduction of weak cases --*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Delta-debugging shrinker for weak litmus cases (`gpuwmm fuzz --shrink`
/// and the `gpuwmm hunt` pipeline): given a program whose forbidden clause
/// pins a weak outcome (typically a `.litmus` file exported by
/// `fuzz --export-weak`), repeatedly remove instructions — or whole
/// threads — while the reduced program still provokes that same forbidden
/// outcome *as a genuinely weak behaviour*.
///
/// Every accepted reduction is double-checked: the provoking run's event
/// trace is judged by BOTH the streaming checker (model/StreamingChecker.h)
/// and the post-hoc checker (model/ConsistencyChecker.h), and any verdict
/// disagreement aborts the reduction with ShrinkResult::OracleError — a
/// silent oracle divergence must never decide which programs enter a hunt
/// corpus.
///
/// Instructions whose result register appears in the forbidden clause are
/// never removed (they define the outcome being pinned); split-phase
/// issue/await pairs are removed as one unit; a whole thread is removable
/// when none of its registers are pinned (this is what lets multi-thread
/// catalog-style cases like IRIW/ISA2/WRC reduce).
///
/// canonicalizeProgram / canonicalKey give shrunk cases a canonical form:
/// blocks, locations, registers and (where sound) data values are renamed
/// into a scan-order normal form, so two isomorphic weak cases found from
/// different fuzz seeds print identically — the corpus dedupe key of
/// `gpuwmm hunt`.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_FUZZ_SHRINK_H
#define GPUWMM_FUZZ_SHRINK_H

#include "litmus/Program.h"
#include "sim/ChipProfile.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gpuwmm {
namespace fuzz {

/// Steers the reduction's reproduction attempts.
struct ShrinkOptions {
  /// Instance distance between communication locations (0 = contiguous);
  /// use the distance the case was provoked at.
  unsigned Distance = 0;
  /// Executions per stress location before a candidate counts as "does
  /// not reproduce". Higher = slower but less over-eager shrinking.
  unsigned RunsPerAttempt = 200;
  uint64_t Seed = 1;
  /// Scan tuned per-bank stress locations (as `litmus --stress` does);
  /// when false candidates run unstressed.
  bool Stressed = true;
  /// Record every accepted intermediate program in ShrinkResult::Steps
  /// (the shrinker property tests re-verify each one independently).
  bool RecordSteps = false;
};

/// Outcome of a reduction.
struct ShrinkResult {
  litmus::Program Reduced; ///< The original when !Reproduced.
  /// The *original* program provoked its forbidden outcome as a weak
  /// (checker-confirmed non-SC) behaviour; when false nothing was shrunk.
  bool Reproduced = false;
  unsigned OriginalOps = 0; ///< Instructions before reduction.
  unsigned ReducedOps = 0;  ///< Instructions after reduction.
  unsigned Candidates = 0;  ///< Candidate programs evaluated.
  unsigned Accepted = 0;    ///< Reductions that kept the weak outcome.
  /// The tuned stress bank region that last provoked the weak outcome —
  /// the region `gpuwmm hunt` hardens and verifies under.
  unsigned ProvokingRegion = 0;
  /// Streaming-vs-post-hoc verdict comparisons performed (one per
  /// forbidden-outcome run consulted during the reduction).
  uint64_t CrossChecks = 0;
  /// Non-empty iff the streaming and post-hoc checkers ever disagreed on
  /// a consulted run — a hard failure: the reduction stops immediately
  /// and the result must not be trusted.
  std::string OracleError;
  /// Accepted intermediate programs, oldest first, ending with Reduced
  /// (only populated when ShrinkOptions::RecordSteps).
  std::vector<litmus::Program> Steps;
};

/// Greedily minimises \p P under "still provokes the forbidden outcome,
/// and the axiomatic checkers agree that run is weak". Deterministic for
/// a given (program, chip, options) tuple.
ShrinkResult shrinkWeakProgram(const litmus::Program &P,
                               const sim::ChipProfile &Chip,
                               const ShrinkOptions &Opts);

/// Whether \p P provokes its forbidden outcome as a checker-confirmed
/// weak behaviour within \p Opts' attempt budget (the shrinker's own
/// acceptance test, exposed for property tests and the hunt pipeline).
/// A streaming/post-hoc disagreement reports false and sets
/// \p OracleError when non-null.
bool reproducesWeakProgram(const litmus::Program &P,
                           const sim::ChipProfile &Chip,
                           const ShrinkOptions &Opts,
                           std::string *OracleError = nullptr);

/// The canonical form behind hunt-corpus dedupe: blocks renumbered by
/// first appearance, locations renamed v0.. in scan order (dropping any
/// that neither ops nor the forbidden clause reference), registers
/// renamed r0.. in definition order, per-location data values renumbered
/// into a small normal range where that is a sound isomorphism (skipped
/// for locations touched by atomics or referenced with unmappable
/// values), and the forbidden conjunction sorted and deduplicated.
/// Idempotent: canonicalizeProgram(canonicalizeProgram(P)) ==
/// canonicalizeProgram(P). Name, Doc and PhaseJitter are preserved.
litmus::Program canonicalizeProgram(const litmus::Program &P);

/// The canonical printed form of \p P with a neutral name and no doc
/// comment — equal for any two isomorphic programs (canonical corpus
/// key; hash it with crc32 for compact record fields).
std::string canonicalKey(const litmus::Program &P);

} // namespace fuzz
} // namespace gpuwmm

#endif // GPUWMM_FUZZ_SHRINK_H
