//===- fuzz/ProgramFuzzer.cpp - Random-program differential fuzzing ----------===//

#include "fuzz/ProgramFuzzer.h"

#include "sim/Device.h"
#include "sim/ThreadContext.h"
#include "stress/Environment.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <sstream>

using namespace gpuwmm;
using namespace gpuwmm::fuzz;
using sim::Addr;
using sim::Kernel;
using sim::ThreadContext;
using sim::Word;

//===----------------------------------------------------------------------===//
// Program generation
//===----------------------------------------------------------------------===//

Program Program::generate(Rng &R, unsigned NumVars, unsigned OpsPerThread,
                          bool WithFences) {
  assert(NumVars > 0 && "need at least one variable");
  Program P;
  P.NumVars = NumVars;
  Word NextValue = 1;
  for (unsigned T = 0; T != 2; ++T) {
    for (unsigned I = 0; I != OpsPerThread; ++I) {
      Op O;
      const unsigned Kinds = WithFences ? 4 : 3;
      switch (R.below(Kinds)) {
      case 0:
        O.K = Op::Kind::Store;
        O.Var = static_cast<unsigned>(R.below(NumVars));
        O.Value = NextValue++;
        break;
      case 1:
        O.K = Op::Kind::Load;
        O.Var = static_cast<unsigned>(R.below(NumVars));
        break;
      case 2:
        O.K = Op::Kind::AtomicAdd;
        O.Var = static_cast<unsigned>(R.below(NumVars));
        O.Value = NextValue++;
        break;
      default:
        O.K = Op::Kind::Fence;
        break;
      }
      P.Thread[T].push_back(O);
    }
  }
  return P;
}

Program Program::fullyFenced() const {
  Program F;
  F.NumVars = NumVars;
  for (unsigned T = 0; T != 2; ++T) {
    for (const Op &O : Thread[T]) {
      F.Thread[T].push_back(O);
      if (O.K != Op::Kind::Fence)
        F.Thread[T].push_back({Op::Kind::Fence, 0, 0});
    }
  }
  return F;
}

std::string Program::str() const {
  std::ostringstream OS;
  for (unsigned T = 0; T != 2; ++T) {
    OS << "T" << T << ":";
    for (const Op &O : Thread[T]) {
      switch (O.K) {
      case Op::Kind::Store:
        OS << " st(v" << O.Var << "," << O.Value << ")";
        break;
      case Op::Kind::Load:
        OS << " ld(v" << O.Var << ")";
        break;
      case Op::Kind::AtomicAdd:
        OS << " add(v" << O.Var << "," << O.Value << ")";
        break;
      case Op::Kind::Fence:
        OS << " fence";
        break;
      }
    }
    OS << "\n";
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Exhaustive SC reference
//===----------------------------------------------------------------------===//

std::set<Outcome> fuzz::enumerateScOutcomes(const Program &P) {
  std::set<Outcome> Outcomes;
  std::vector<Word> Mem(P.NumVars, 0);
  std::vector<Word> Loads[2];

  // DFS over interleavings: at each step run the next op of thread 0 or 1.
  std::function<void(size_t, size_t)> Step = [&](size_t I0, size_t I1) {
    if (I0 == P.Thread[0].size() && I1 == P.Thread[1].size()) {
      Outcome O = Loads[0];
      O.insert(O.end(), Loads[1].begin(), Loads[1].end());
      O.insert(O.end(), Mem.begin(), Mem.end());
      Outcomes.insert(std::move(O));
      return;
    }
    for (unsigned T = 0; T != 2; ++T) {
      const size_t I = T == 0 ? I0 : I1;
      if (I == P.Thread[T].size())
        continue;
      const Op &O = P.Thread[T][I];
      // Apply, recurse, undo.
      Word SavedMem = 0;
      bool Loaded = false;
      switch (O.K) {
      case Op::Kind::Store:
        SavedMem = Mem[O.Var];
        Mem[O.Var] = O.Value;
        break;
      case Op::Kind::AtomicAdd:
        SavedMem = Mem[O.Var];
        Mem[O.Var] = SavedMem + O.Value;
        break;
      case Op::Kind::Load:
        Loads[T].push_back(Mem[O.Var]);
        Loaded = true;
        break;
      case Op::Kind::Fence:
        break; // SC: fences are no-ops.
      }
      Step(T == 0 ? I0 + 1 : I0, T == 1 ? I1 + 1 : I1);
      switch (O.K) {
      case Op::Kind::Store:
      case Op::Kind::AtomicAdd:
        Mem[O.Var] = SavedMem;
        break;
      case Op::Kind::Load:
        if (Loaded)
          Loads[T].pop_back();
        break;
      case Op::Kind::Fence:
        break;
      }
    }
  };
  Step(0, 0);
  return Outcomes;
}

//===----------------------------------------------------------------------===//
// Weak-machine execution
//===----------------------------------------------------------------------===//

namespace {

Kernel interpretThread(ThreadContext &Ctx, const std::vector<Op> *Ops,
                       Addr Vars, Addr LoadLog) {
  co_await Ctx.yield(1 + static_cast<unsigned>(Ctx.rand(8)));
  unsigned LoadIdx = 0;
  for (const Op &O : *Ops) {
    switch (O.K) {
    case Op::Kind::Store:
      co_await Ctx.st(Vars + O.Var, O.Value);
      break;
    case Op::Kind::Load: {
      const Word V = co_await Ctx.ld(Vars + O.Var);
      co_await Ctx.st(LoadLog + LoadIdx++, V + 1); // +1: log 0 = "unset".
      break;
    }
    case Op::Kind::AtomicAdd:
      co_await Ctx.atomicAdd(Vars + O.Var, O.Value);
      break;
    case Op::Kind::Fence:
      co_await Ctx.fence();
      break;
    }
  }
}

} // namespace

Outcome fuzz::runOnWeakMachine(sim::ExecutionContext &Ctx, const Program &P,
                               const sim::ChipProfile &Chip, uint64_t Seed,
                               bool Stressed) {
  Rng R(Seed);
  sim::Device Dev(Ctx, Chip, R.next());

  // Spread variables over distinct patches so cross-bank reordering can
  // occur between any pair, as between distinct allocations in real
  // applications.
  std::vector<Addr> VarAddr(P.NumVars);
  const Addr Vars = Dev.alloc(P.NumVars * Chip.PatchSizeWords);
  for (unsigned V = 0; V != P.NumVars; ++V)
    VarAddr[V] = Vars + V * Chip.PatchSizeWords;
  const unsigned MaxLoads = static_cast<unsigned>(
      std::max(P.Thread[0].size(), P.Thread[1].size()));
  const Addr Log0 = Dev.alloc(MaxLoads + 1);
  const Addr Log1 = Dev.alloc(MaxLoads + 1);

  std::unique_ptr<sim::CongestionSource> Stress;
  if (Stressed) {
    Rng EnvRng = R.fork(1);
    Stress = stress::applyEnvironment(
        {stress::StressKind::Sys, true}, Dev,
        stress::TunedStressParams::paperDefaults(Chip), EnvRng);
  }

  // Translate variable indices into patch-spread word offsets for the
  // interpreter (the translated vectors outlive the synchronous run).
  std::vector<Op> Translated[2];
  for (unsigned T = 0; T != 2; ++T) {
    Translated[T] = P.Thread[T];
    for (Op &O : Translated[T])
      O.Var *= Chip.PatchSizeWords;
  }

  const std::vector<Op> *T0 = &Translated[0];
  const std::vector<Op> *T1 = &Translated[1];
  const Addr VarsBase = Vars;
  Dev.run({2, 1}, [=](ThreadContext &Ctx) -> Kernel {
    return interpretThread(Ctx, Ctx.blockIdx() == 0 ? T0 : T1, VarsBase,
                           Ctx.blockIdx() == 0 ? Log0 : Log1);
  });

  Outcome O;
  for (unsigned T = 0; T != 2; ++T) {
    const Addr Log = T == 0 ? Log0 : Log1;
    unsigned LoadIdx = 0;
    for (const Op &Op_ : P.Thread[T])
      if (Op_.K == Op::Kind::Load)
        O.push_back(Dev.read(Log + LoadIdx++) - 1);
  }
  for (unsigned V = 0; V != P.NumVars; ++V)
    O.push_back(Dev.read(VarAddr[V]));
  return O;
}

Outcome fuzz::runOnWeakMachine(const Program &P,
                               const sim::ChipProfile &Chip, uint64_t Seed,
                               bool Stressed) {
  sim::ContextLease Ctx;
  return runOnWeakMachine(Ctx.get(), P, Chip, Seed, Stressed);
}

//===----------------------------------------------------------------------===//
// Batched weak-machine execution
//===----------------------------------------------------------------------===//

CompiledProgram fuzz::compileProgram(const Program &P,
                                     const sim::ChipProfile &Chip) {
  CompiledProgram CP;
  CP.NumVars = P.NumVars;
  // Scalar parity: the logs are sized by ops per thread (a safe upper
  // bound on loads), so the allocation layout matches runOnWeakMachine.
  CP.MaxLoads = static_cast<unsigned>(
      std::max(P.Thread[0].size(), P.Thread[1].size()));

  const unsigned Patch = Chip.PatchSizeWords;
  const auto AlignUp = [Patch](unsigned X) {
    return (X + Patch - 1) / Patch * Patch;
  };
  CP.Vars = 0;
  CP.Log0 = AlignUp(CP.NumVars * Patch);
  CP.Log1 = AlignUp(CP.Log0 + CP.MaxLoads + 1);

  sim::BatchProgram &BP = CP.BP;
  BP.GridDim = 2;
  BP.BlockDim = 1;
  uint16_t NextSlot = 0;
  for (unsigned T = 0; T != 2; ++T) {
    using Code = sim::BatchOp::Code;
    const auto Begin = static_cast<uint32_t>(BP.Ops.size());
    BP.Ops.push_back({Code::Jitter, 0, 0, 0, 8}); // yield(1 + rand(8)).
    const sim::Addr Log = T == 0 ? CP.Log0 : CP.Log1;
    unsigned LoadIdx = 0;
    for (const Op &O : P.Thread[T]) {
      const sim::Addr A = CP.Vars + O.Var * Patch;
      switch (O.K) {
      case Op::Kind::Store:
        BP.Ops.push_back({Code::Store, 0, 0, A, O.Value});
        break;
      case Op::Kind::Load:
        // The interpreter logs each load right after it completes; the
        // +1 bias distinguishes a logged 0 from "unset".
        BP.Ops.push_back({Code::Load, NextSlot, 0, A, 0});
        BP.Ops.push_back({Code::WbStore, NextSlot, 0, Log + LoadIdx++, 1});
        ++NextSlot;
        break;
      case Op::Kind::AtomicAdd:
        BP.Ops.push_back({Code::AtomicAdd, 0, 0, A, O.Value});
        break;
      case Op::Kind::Fence:
        BP.Ops.push_back({Code::FenceDevice, 0, 0, 0, 0});
        break;
      }
    }
    CP.NumLoads[T] = LoadIdx;
    BP.Lanes.push_back({Begin, static_cast<uint32_t>(BP.Ops.size())});
  }
  BP.NumSlots = std::max<unsigned>(NextSlot, 1);
  return CP;
}

Outcome fuzz::runCompiledOnWeakMachine(sim::ExecutionContext &Ctx,
                                       const CompiledProgram &CP,
                                       const sim::ChipProfile &Chip,
                                       uint64_t Seed, bool Stressed) {
  // Draw-for-draw replica of runOnWeakMachine: same device seeding, same
  // allocation order, same environment draws — only the kernel launch is
  // replaced by the batched executor.
  Rng R(Seed);
  sim::Device Dev(Ctx, Chip, R.next());

  const sim::Addr Vars = Dev.alloc(CP.NumVars * Chip.PatchSizeWords);
  const sim::Addr Log0 = Dev.alloc(CP.MaxLoads + 1);
  const sim::Addr Log1 = Dev.alloc(CP.MaxLoads + 1);
  assert(Vars == CP.Vars && Log0 == CP.Log0 && Log1 == CP.Log1 &&
         "allocation layout diverged from the compiled plan");
  (void)Vars;
  (void)Log0;
  (void)Log1;

  std::unique_ptr<sim::CongestionSource> Stress;
  if (Stressed) {
    Rng EnvRng = R.fork(1);
    Stress = stress::applyEnvironment(
        {stress::StressKind::Sys, true}, Dev,
        stress::TunedStressParams::paperDefaults(Chip), EnvRng);
  }

  sim::BatchRunConfig Cfg;
  Cfg.RandomiseThreads = Stressed; // applyEnvironment's sys-str+ setting.
  sim::BatchScratch &BS = Ctx.batchScratch();
  BS.RegSlab.assign(CP.BP.NumSlots, 0);
  const sim::RunResult Result = sim::runBatchProgram(
      CP.BP, Chip, Dev.memory(), Dev.rng(), BS, BS.RegSlab.data(), Cfg);
  assert(Result.completed() && "fuzz execution must terminate");
  (void)Result;

  Outcome O;
  for (unsigned T = 0; T != 2; ++T) {
    const sim::Addr Log = T == 0 ? CP.Log0 : CP.Log1;
    for (unsigned I = 0; I != CP.NumLoads[T]; ++I)
      O.push_back(Dev.read(Log + I) - 1);
  }
  for (unsigned V = 0; V != CP.NumVars; ++V)
    O.push_back(Dev.read(CP.Vars + V * Chip.PatchSizeWords));
  return O;
}

FuzzResult fuzz::fuzzProgram(const Program &P,
                             const sim::ChipProfile &Chip, unsigned Runs,
                             uint64_t Seed, bool Stressed) {
  FuzzResult Result;
  Result.Runs = Runs;
  const std::set<Outcome> Sc = enumerateScOutcomes(P);
  Result.ScSetSize = Sc.size();
  std::set<Outcome> WeakSeen, ScSeen;
  Rng Master(Seed);
  sim::ContextLease Ctx; // One recycled engine across all runs.
  // Compile once, execute every run on the batched engine — bit-identical
  // to the scalar interpreter at the same derived seeds (the property
  // FuzzTests pins), at a fraction of the per-run cost. --engine=scalar
  // forces the interpreter for A/B debugging.
  if (sim::engineMode() == sim::EngineMode::Scalar) {
    for (unsigned I = 0; I != Runs; ++I) {
      const Outcome O =
          runOnWeakMachine(Ctx.get(), P, Chip, Master.fork(I).next(),
                           Stressed);
      if (Sc.count(O)) {
        ScSeen.insert(O);
        continue;
      }
      if (Result.WeakOutcomes == 0)
        Result.FirstWeak = O;
      ++Result.WeakOutcomes;
      WeakSeen.insert(O);
    }
    Result.DistinctWeak = static_cast<unsigned>(WeakSeen.size());
    Result.DistinctScSeen = static_cast<unsigned>(ScSeen.size());
    return Result;
  }
  const CompiledProgram CP = compileProgram(P, Chip);
  for (unsigned I = 0; I != Runs; ++I) {
    const Outcome O =
        runCompiledOnWeakMachine(Ctx.get(), CP, Chip, Master.fork(I).next(),
                                 Stressed);
    if (Sc.count(O)) {
      ScSeen.insert(O);
      continue;
    }
    if (Result.WeakOutcomes == 0)
      Result.FirstWeak = O;
    ++Result.WeakOutcomes;
    WeakSeen.insert(O);
  }
  Result.DistinctWeak = static_cast<unsigned>(WeakSeen.size());
  Result.DistinctScSeen = static_cast<unsigned>(ScSeen.size());
  return Result;
}

std::vector<BatchEntry> fuzz::fuzzBatch(const sim::ChipProfile &Chip,
                                        const BatchConfig &Cfg,
                                        uint64_t Seed, ThreadPool *Pool) {
  std::vector<BatchEntry> Batch(Cfg.Programs);
  parallelFor(Pool, Cfg.Programs, [&](size_t I) {
    BatchEntry &Entry = Batch[I];
    Rng Gen(Rng::deriveStream(Seed, 2 * static_cast<uint64_t>(I)));
    Entry.P = Program::generate(Gen, Cfg.NumVars, Cfg.OpsPerThread,
                                Cfg.WithFences);
    Entry.R = fuzzProgram(Entry.P, Chip, Cfg.RunsPerProgram,
                          Rng::deriveStream(Seed, 2 * static_cast<uint64_t>(I) + 1),
                          Cfg.Stressed);
  });
  return Batch;
}
