//===- fuzz/LitmusBridge.h - Fuzz programs as .litmus tests -----*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Conversions between the fuzzer's two-thread programs and the litmus IR,
/// so a failing fuzz case shrinks to a replayable `.litmus` artifact: the
/// generated program becomes a litmus test whose forbidden clause pins the
/// observed non-SC outcome, and an exported file can be imported back for
/// re-fuzzing against the exhaustive SC set.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_FUZZ_LITMUSBRIDGE_H
#define GPUWMM_FUZZ_LITMUSBRIDGE_H

#include "fuzz/ProgramFuzzer.h"
#include "litmus/Program.h"

#include <optional>
#include <string>

namespace gpuwmm {
namespace fuzz {

/// Expresses \p P in the litmus IR: locations v0..vN-1 in variable order,
/// registers r0.. in load order (thread 0's loads first), two threads in
/// blocks 0 and 1, and the fuzz interpreter's start-phase jitter. When
/// \p Weak is given (an outcome in the layout of fuzz::Outcome), the
/// forbidden clause pins it exactly: every load's value and every final
/// memory value; otherwise the clause is empty and the test never reports
/// weak (useful as a program listing).
litmus::Program toLitmusProgram(const Program &P, const std::string &Name,
                                const Outcome *Weak = nullptr);

/// Converts a litmus program back into a fuzz program, for re-fuzzing an
/// exported case against its exhaustive SC set. Requires exactly two
/// threads in distinct blocks, only st/ld/add/fence ops, and an all-zero
/// initial state (the fuzz model's assumptions). On failure returns
/// std::nullopt and, when \p Why is non-null, a description of the first
/// unrepresentable construct.
std::optional<Program> fromLitmusProgram(const litmus::Program &P,
                                         std::string *Why = nullptr);

} // namespace fuzz
} // namespace gpuwmm

#endif // GPUWMM_FUZZ_LITMUSBRIDGE_H
