//===- fuzz/ProgramFuzzer.h - Random-program differential fuzzing -*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "fuzzing" half of the paper's title, generalised: generate random
/// two-thread straight-line programs over a handful of shared variables,
/// enumerate their sequentially consistent outcomes exhaustively, and
/// compare against outcomes observed on the weak machine.
///
/// Two uses:
///  * Soundness validation of the memory model: with a fence after every
///    access, every outcome the weak machine produces must be
///    SC-reachable (property-tested over hundreds of random programs).
///  * Weak-behaviour fuzzing: without fences, outcomes outside the SC set
///    are genuine weak behaviours; the tuned stress should surface more of
///    them than native execution, on arbitrary programs rather than only
///    the three hand-picked litmus idioms of Sec. 3.1.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_FUZZ_PROGRAMFUZZER_H
#define GPUWMM_FUZZ_PROGRAMFUZZER_H

#include "sim/ChipProfile.h"
#include "sim/ExecutionContext.h"
#include "sim/Types.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"

#include <set>
#include <string>
#include <vector>

namespace gpuwmm {
namespace fuzz {

/// One straight-line instruction.
struct Op {
  enum class Kind { Store, Load, AtomicAdd, Fence };
  Kind K = Kind::Load;
  unsigned Var = 0; ///< Variable index (ignored for Fence).
  sim::Word Value = 0; ///< Stored/added value (ignored for Load/Fence).
};

/// A two-thread straight-line program over NumVars shared variables. The
/// two threads run in distinct blocks, as in the paper's inter-block
/// focus.
struct Program {
  unsigned NumVars = 0;
  std::vector<Op> Thread[2];

  /// Generates a random program: \p OpsPerThread ops per thread over
  /// \p NumVars variables. Stores write distinct non-zero values so
  /// outcomes identify their writers. Fences are included only when
  /// \p WithFences (used for the soundness property).
  static Program generate(Rng &R, unsigned NumVars, unsigned OpsPerThread,
                          bool WithFences);

  /// Inserts a fence after every access (the cons-fence transform).
  Program fullyFenced() const;

  /// Human-readable listing (for failure reports).
  std::string str() const;
};

/// An observable outcome: every load's value in program order for both
/// threads, followed by the final memory value of every variable.
using Outcome = std::vector<sim::Word>;

/// Exhaustively enumerates the outcomes of \p P under sequential
/// consistency (all interleavings of the two threads; fences are no-ops
/// under SC). The number of interleavings is C(n+m, n) — keep programs
/// small (<= ~8 ops per thread).
std::set<Outcome> enumerateScOutcomes(const Program &P);

/// Executes \p P once on the weak machine and returns the outcome.
/// \p Stressed applies tuned sys-str stress to the run. \p Ctx is the
/// reusable execution engine to run on (reset for this run); the overload
/// without it leases one from the current thread's pool.
Outcome runOnWeakMachine(sim::ExecutionContext &Ctx, const Program &P,
                         const sim::ChipProfile &Chip, uint64_t Seed,
                         bool Stressed);
Outcome runOnWeakMachine(const Program &P, const sim::ChipProfile &Chip,
                         uint64_t Seed, bool Stressed);

/// A fuzz program compiled for the batched executor (sim/BatchExec.h): the
/// flat op stream with variable addresses, load-log writebacks and
/// register slots pre-resolved, plus the baked allocation layout a freshly
/// reset context reproduces (asserted per run). Compiled once per program;
/// every run of a fuzz campaign reuses it.
struct CompiledProgram {
  sim::BatchProgram BP;
  unsigned NumVars = 0;
  unsigned MaxLoads = 0; ///< Per-thread log capacity (scalar parity).
  unsigned NumLoads[2] = {0, 0};
  sim::Addr Vars = 0, Log0 = 0, Log1 = 0; ///< Baked allocation layout.
};

/// Compiles \p P for \p Chip (addresses depend on the chip's patch size).
CompiledProgram compileProgram(const Program &P, const sim::ChipProfile &Chip);

/// Executes one run of a compiled program on the batched engine —
/// bit-identical to runOnWeakMachine on the same (program, seed,
/// stressed) triple, per the batched determinism contract.
Outcome runCompiledOnWeakMachine(sim::ExecutionContext &Ctx,
                                 const CompiledProgram &CP,
                                 const sim::ChipProfile &Chip, uint64_t Seed,
                                 bool Stressed);

/// Result of fuzzing one program for \p Runs executions.
struct FuzzResult {
  unsigned Runs = 0;
  unsigned WeakOutcomes = 0;     ///< Executions outside the SC set.
  unsigned DistinctWeak = 0;     ///< Distinct non-SC outcomes seen.
  unsigned DistinctScSeen = 0;   ///< Distinct SC outcomes seen.
  size_t ScSetSize = 0;
  /// The first non-SC outcome observed — the outcome a `.litmus` export
  /// pins as forbidden (fuzz/LitmusBridge.h). Meaningful only when
  /// WeakOutcomes > 0.
  Outcome FirstWeak;
};

/// Runs \p P repeatedly on the weak machine and classifies outcomes
/// against the exhaustive SC set. Executes on the batched engine
/// (compiled once, bit-identical to runOnWeakMachine per run).
FuzzResult fuzzProgram(const Program &P, const sim::ChipProfile &Chip,
                       unsigned Runs, uint64_t Seed, bool Stressed);

/// A fuzzing batch: how many programs to generate and how to fuzz each.
struct BatchConfig {
  unsigned Programs = 20;
  unsigned RunsPerProgram = 40;
  unsigned NumVars = 3;
  unsigned OpsPerThread = 5;
  bool WithFences = false; ///< Generate fences too (soundness property).
  bool Stressed = true;
};

/// One program of a batch, with its classification.
struct BatchEntry {
  Program P;
  FuzzResult R;
};

/// Generates and fuzzes \p Cfg.Programs random programs. Program I is
/// generated from stream deriveStream(Seed, 2I) and fuzzed with stream
/// deriveStream(Seed, 2I+1), so programs are mutually independent (no
/// generation-order coupling) and the batch distributes over \p Pool with
/// results bit-identical to serial execution, in program order.
std::vector<BatchEntry> fuzzBatch(const sim::ChipProfile &Chip,
                                  const BatchConfig &Cfg, uint64_t Seed,
                                  ThreadPool *Pool = nullptr);

} // namespace fuzz
} // namespace gpuwmm

#endif // GPUWMM_FUZZ_PROGRAMFUZZER_H
