//===- fuzz/LitmusBridge.cpp - Fuzz programs as .litmus tests ----------------===//

#include "fuzz/LitmusBridge.h"

#include <cassert>

using namespace gpuwmm;
using namespace gpuwmm::fuzz;

/// The fuzz interpreter's start-phase jitter bound (see interpretThread in
/// ProgramFuzzer.cpp).
static constexpr unsigned FuzzJitter = 8;

litmus::Program fuzz::toLitmusProgram(const Program &P,
                                      const std::string &Name,
                                      const Outcome *Weak) {
  litmus::Program L;
  L.Name = Name;
  L.Doc = "exported fuzz case";
  L.PhaseJitter = FuzzJitter;
  for (unsigned V = 0; V != P.NumVars; ++V) {
    // Built without operator+ to dodge GCC 12's -Wrestrict false positive.
    std::string Loc = "v";
    Loc += std::to_string(V);
    L.Locations.push_back(std::move(Loc));
  }
  L.Init.assign(P.NumVars, 0);

  unsigned NextReg = 0;
  for (unsigned T = 0; T != 2; ++T) {
    litmus::ProgThread LT;
    LT.Block = T;
    for (const Op &O : P.Thread[T]) {
      switch (O.K) {
      case Op::Kind::Store:
        LT.Ops.push_back(litmus::ProgOp::store(O.Var, O.Value));
        break;
      case Op::Kind::Load: {
        std::string Reg = "r";
        Reg += std::to_string(NextReg);
        L.Registers.push_back(std::move(Reg));
        LT.Ops.push_back(litmus::ProgOp::load(NextReg++, O.Var));
        break;
      }
      case Op::Kind::AtomicAdd:
        LT.Ops.push_back(litmus::ProgOp::atomicAdd(O.Var, O.Value));
        break;
      case Op::Kind::Fence:
        LT.Ops.push_back(litmus::ProgOp::fence());
        break;
      }
    }
    L.Threads.push_back(std::move(LT));
  }

  if (Weak) {
    // Outcome layout: thread 0's loads, thread 1's loads, then the final
    // memory value of every variable (see fuzz::Outcome).
    assert(Weak->size() == L.Registers.size() + P.NumVars &&
           "outcome does not match the program");
    for (unsigned R = 0; R != L.Registers.size(); ++R)
      L.Forbidden.push_back({/*IsReg=*/true, R, /*Negated=*/false,
                             (*Weak)[R]});
    for (unsigned V = 0; V != P.NumVars; ++V)
      L.Forbidden.push_back({/*IsReg=*/false, V, /*Negated=*/false,
                             (*Weak)[L.Registers.size() + V]});
  }
  assert(L.validate().empty() && "conversion must produce a valid program");
  return L;
}

std::optional<Program> fuzz::fromLitmusProgram(const litmus::Program &P,
                                               std::string *Why) {
  const auto Fail = [&](const std::string &Reason) {
    if (Why)
      *Why = Reason;
    return std::nullopt;
  };
  if (!P.validate().empty())
    return Fail("program is not well-formed: " + P.validate());
  if (P.Threads.size() != 2)
    return Fail("fuzzing needs exactly two threads, got " +
                std::to_string(P.Threads.size()));
  if (P.Threads[0].Block == P.Threads[1].Block)
    return Fail("fuzzing runs its threads in distinct blocks");
  for (sim::Word V : P.Init)
    if (V != 0)
      return Fail("fuzzing assumes an all-zero initial state");

  Program F;
  F.NumVars = static_cast<unsigned>(P.Locations.size());
  for (unsigned T = 0; T != 2; ++T) {
    for (const litmus::ProgOp &O : P.Threads[T].Ops) {
      switch (O.K) {
      case litmus::ProgOp::Kind::Store:
        F.Thread[T].push_back({Op::Kind::Store, O.Loc, O.Value});
        break;
      case litmus::ProgOp::Kind::Load:
        F.Thread[T].push_back({Op::Kind::Load, O.Loc, 0});
        break;
      case litmus::ProgOp::Kind::AtomicAdd:
        F.Thread[T].push_back({Op::Kind::AtomicAdd, O.Loc, O.Value});
        break;
      case litmus::ProgOp::Kind::Fence:
        F.Thread[T].push_back({Op::Kind::Fence, 0, 0});
        break;
      case litmus::ProgOp::Kind::AsyncLoad:
      case litmus::ProgOp::Kind::AwaitLoad:
        return Fail("split-phase loads have no fuzz equivalent");
      case litmus::ProgOp::Kind::OptFence:
        return Fail("conditional fences have no fuzz equivalent");
      }
    }
  }
  return F;
}
