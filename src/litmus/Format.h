//===- litmus/Format.h - The .litmus text format ----------------*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser and printer for the herd-style `.litmus` text format — the
/// on-disk form of litmus::Program. The grammar and its semantics are
/// specified in docs/litmus-format.md; shipped examples live under
/// examples/litmus/. Parsing and printing round-trip: for any valid
/// program P, parse(print(P)) == P.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_LITMUS_FORMAT_H
#define GPUWMM_LITMUS_FORMAT_H

#include "litmus/Program.h"

#include <optional>
#include <string>
#include <string_view>

namespace gpuwmm {
namespace litmus {

/// A parse failure with its source position (1-based line and column).
struct ParseError {
  unsigned Line = 0;
  unsigned Col = 0;
  std::string Message;

  /// "file.litmus:3:7: error: ..." (a clickable compiler-style location).
  std::string render(std::string_view Filename) const;
};

/// Parses one `.litmus` document. On failure returns std::nullopt and
/// fills \p Err with the first error's position and message. A returned
/// program always satisfies Program::validate().
std::optional<Program> parseLitmus(std::string_view Text, ParseError &Err);

/// Prints \p P in canonical `.litmus` form (parse(printLitmus(P)) == P).
std::string printLitmus(const Program &P);

} // namespace litmus
} // namespace gpuwmm

#endif // GPUWMM_LITMUS_FORMAT_H
