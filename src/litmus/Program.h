//===- litmus/Program.h - Litmus test intermediate representation -*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A data representation of litmus tests: an N-thread, N-location program
/// of loads, stores, atomics and fences, with block placement, an initial
/// memory state, and a forbidden-outcome predicate over final register and
/// memory values. The paper's Sec. 3.1 anticipates re-tuning the stress
/// machinery against new buggy idioms as they emerge; expressing tests as
/// data (rather than hand-written simulator kernels) makes a new idiom a
/// new Program — or a new `.litmus` file (see litmus/Format.h) — instead
/// of a C++ change.
///
/// The built-in catalog (see \ref catalog) re-expresses the paper's Fig. 2
/// tests and the classic two-location shapes through this IR, and adds the
/// classic three- and four-thread idioms IRIW, WRC, ISA2, RWC and W+RWC.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_LITMUS_PROGRAM_H
#define GPUWMM_LITMUS_PROGRAM_H

#include "sim/Types.h"

#include <array>
#include <string>
#include <string_view>
#include <vector>

namespace gpuwmm {
namespace litmus {

/// One instruction of a litmus program thread.
///
/// AsyncLoad/AwaitLoad form the split-phase load pair the simulator uses
/// to model load buffering: AsyncLoad issues the load into \ref Reg (as a
/// ticket), AwaitLoad on the same register completes it. OptFence is a
/// fence that exists only when the run is fenced (LitmusRunOpts::WithFences)
/// — it marks where the fences of a test's "+fences" variant go.
struct ProgOp {
  enum class Kind { Store, Load, AsyncLoad, AwaitLoad, AtomicAdd, Fence,
                    OptFence };
  Kind K = Kind::Fence;
  unsigned Loc = 0;    ///< Location index (Store/Load/AsyncLoad/AtomicAdd).
  unsigned Reg = 0;    ///< Register index (Load/AsyncLoad/AwaitLoad).
  sim::Word Value = 0; ///< Immediate (Store/AtomicAdd).

  static ProgOp store(unsigned Loc, sim::Word V) {
    return {Kind::Store, Loc, 0, V};
  }
  static ProgOp load(unsigned Reg, unsigned Loc) {
    return {Kind::Load, Loc, Reg, 0};
  }
  static ProgOp asyncLoad(unsigned Reg, unsigned Loc) {
    return {Kind::AsyncLoad, Loc, Reg, 0};
  }
  static ProgOp awaitLoad(unsigned Reg) {
    return {Kind::AwaitLoad, 0, Reg, 0};
  }
  static ProgOp atomicAdd(unsigned Loc, sim::Word V) {
    return {Kind::AtomicAdd, Loc, 0, V};
  }
  static ProgOp fence() { return {Kind::Fence, 0, 0, 0}; }
  static ProgOp optFence() { return {Kind::OptFence, 0, 0, 0}; }

  friend bool operator==(const ProgOp &A, const ProgOp &B) {
    return A.K == B.K && A.Loc == B.Loc && A.Reg == B.Reg &&
           A.Value == B.Value;
  }
};

/// One thread of a litmus program and its block placement. Threads in
/// distinct blocks communicate through the inter-block memory system (the
/// paper's focus); threads sharing a block occupy lanes of that block.
struct ProgThread {
  unsigned Block = 0;
  std::vector<ProgOp> Ops;

  friend bool operator==(const ProgThread &A, const ProgThread &B) {
    return A.Block == B.Block && A.Ops == B.Ops;
  }
};

/// One conjunct of the forbidden-outcome predicate: a register's final
/// value or a location's final memory value compared against an immediate.
struct CondAtom {
  bool IsReg = true;    ///< Register (true) or memory location (false).
  unsigned Index = 0;   ///< Register or location index.
  bool Negated = false; ///< True for "!=", false for "=".
  sim::Word Value = 0;

  friend bool operator==(const CondAtom &A, const CondAtom &B) {
    return A.IsReg == B.IsReg && A.Index == B.Index &&
           A.Negated == B.Negated && A.Value == B.Value;
  }
};

/// A litmus test as data: threads over named locations and registers, an
/// initial state, and the forbidden (weak) outcome.
///
/// Execution layout (LitmusRunner): location i lives at word offset
/// i * delta of one allocation, where delta is the instance distance (so
/// the location list's *order* is the memory layout); registers write back
/// to a second allocation at their index. Every thread starts with a
/// random phase jitter in [1, PhaseJitter], then issues its ops in order,
/// and finally stores each register it loaded into, in first-load order —
/// exactly the shape of the paper's hand-written Fig. 2 kernels.
struct Program {
  std::string Name;
  /// One-line description for catalog listings. Not part of the test's
  /// identity: printed as a comment, ignored by equality.
  std::string Doc;
  std::vector<std::string> Locations; ///< Names, in memory-layout order.
  std::vector<std::string> Registers; ///< Names, in writeback-slot order.
  std::vector<sim::Word> Init;        ///< Per-location initial values.
  std::vector<ProgThread> Threads;
  std::vector<CondAtom> Forbidden;    ///< Conjunction; empty = never weak.
  unsigned PhaseJitter = 24;          ///< Start-phase jitter bound.

  /// Number of blocks the program spans (max placement + 1).
  unsigned numBlocks() const;
  /// Largest number of threads placed in any one block.
  unsigned maxBlockThreads() const;

  /// Index of a named location/register, or -1.
  int findLocation(std::string_view Name) const;
  int findRegister(std::string_view Name) const;

  /// Evaluates the forbidden predicate over final register and memory
  /// values (indexed by register/location index). Empty predicate: false.
  bool evalForbidden(const std::vector<sim::Word> &Regs,
                     const std::vector<sim::Word> &Mem) const;

  /// Structural well-formedness: non-empty threads over declared
  /// locations; unique, disjoint names; every register loaded exactly
  /// once; async loads awaited exactly once, later in the same thread;
  /// condition indices in range. Returns an empty string when valid, else
  /// a description of the first problem.
  std::string validate() const;

  /// Semantic equality (everything except \ref Doc).
  friend bool operator==(const Program &A, const Program &B) {
    return A.Name == B.Name && A.Locations == B.Locations &&
           A.Registers == B.Registers && A.Init == B.Init &&
           A.Threads == B.Threads && A.Forbidden == B.Forbidden &&
           A.PhaseJitter == B.PhaseJitter;
  }
};

//===----------------------------------------------------------------------===//
// Built-in catalog
//===----------------------------------------------------------------------===//

/// Every built-in litmus test, in canonical order: the paper's Fig. 2
/// tuning set (MP, LB, SB), the further two-location shapes (R, S, 2+2W),
/// and the classic multi-thread idioms (IRIW, WRC, ISA2, RWC, W+RWC).
const std::vector<Program> &catalog();

/// Looks a catalog test up by its exact name; null when unknown.
const Program *findCatalogProgram(std::string_view Name);

/// The catalog names, in canonical order (for listings and suggestions).
std::vector<std::string> catalogNames();

/// The paper's Fig. 2 tuning trio (MP, LB, SB) as catalog programs — the
/// default test set of the Sec. 3 tuning pipeline.
std::array<const Program *, 3> tuningPrograms();

} // namespace litmus
} // namespace gpuwmm

#endif // GPUWMM_LITMUS_PROGRAM_H
