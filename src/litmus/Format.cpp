//===- litmus/Format.cpp - The .litmus text format ----------------------------===//

#include "litmus/Format.h"

#include <cctype>
#include <sstream>

using namespace gpuwmm;
using namespace gpuwmm::litmus;
using sim::Word;

std::string ParseError::render(std::string_view Filename) const {
  std::ostringstream OS;
  OS << Filename << ":" << Line << ":" << Col << ": error: " << Message;
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Tokenizer
//===----------------------------------------------------------------------===//

namespace {

/// True for the characters that make up bare words: identifiers, numbers
/// and names like "2+2W" or "fence?".
bool isWordChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
         C == '+' || C == '.' || C == '-' || C == '?';
}

/// Keywords and mnemonics. Reserved: they terminate the 'locations' name
/// list and cannot name a location or register.
bool isReserved(const std::string &Word) {
  static const char *const Reserved[] = {
      "litmus", "locations", "init",  "jitter", "thread", "block",
      "forbidden", "st", "ld", "ldasync", "await", "add", "fence",
      "fence?"};
  for (const char *R : Reserved)
    if (Word == R)
      return true;
  return false;
}

struct Token {
  enum class Kind { Word, Number, String, LBrace, RBrace, Eq, Ne, At, And,
                    End };
  Kind K = Kind::End;
  std::string Text;    ///< Word/String contents; punctuation spelling.
  uint64_t Value = 0;  ///< For Number.
  unsigned Line = 1, Col = 1;
};

/// Splits the document into tokens, tracking 1-based line/column and
/// skipping '#' comments. Produces one trailing End token.
class Lexer {
public:
  explicit Lexer(std::string_view Text) : Text(Text) {}

  /// Lexes the next token; returns false on a bad character, filling Err.
  bool lex(Token &T, ParseError &Err) {
    skip();
    T = Token();
    T.Line = Line;
    T.Col = Col;
    if (Pos == Text.size()) {
      T.K = Token::Kind::End;
      return true;
    }
    const char C = Text[Pos];
    switch (C) {
    case '{':
      return punct(T, Token::Kind::LBrace, "{");
    case '}':
      return punct(T, Token::Kind::RBrace, "}");
    case '=':
      return punct(T, Token::Kind::Eq, "=");
    case '@':
      return punct(T, Token::Kind::At, "@");
    case '!':
      if (Pos + 1 < Text.size() && Text[Pos + 1] == '=') {
        advance();
        return punct(T, Token::Kind::Ne, "!=");
      }
      return fail(Err, "stray '!' (did you mean '!='?)");
    case '/':
      if (Pos + 1 < Text.size() && Text[Pos + 1] == '\\') {
        advance();
        return punct(T, Token::Kind::And, "/\\");
      }
      return fail(Err, "stray '/' (did you mean '/\\'?)");
    case '"': {
      advance();
      T.K = Token::Kind::String;
      while (Pos != Text.size() && Text[Pos] != '"' && Text[Pos] != '\n')
        T.Text.push_back(take());
      if (Pos == Text.size() || Text[Pos] != '"') {
        // Report at the opening quote, not where the line ran out.
        Err = {T.Line, T.Col, "unterminated string"};
        return false;
      }
      advance();
      return true;
    }
    default:
      break;
    }
    if (!isWordChar(C)) {
      std::string M = "unexpected character '";
      M += C;
      M += "'";
      return fail(Err, M);
    }
    while (Pos != Text.size() && isWordChar(Text[Pos]))
      T.Text.push_back(take());
    // A word made purely of digits is a number.
    bool AllDigits = true;
    for (char W : T.Text)
      AllDigits &= std::isdigit(static_cast<unsigned char>(W)) != 0;
    if (AllDigits) {
      T.K = Token::Kind::Number;
      T.Value = 0;
      for (char W : T.Text) {
        T.Value = T.Value * 10 + static_cast<uint64_t>(W - '0');
        if (T.Value > UINT32_MAX)
          return fail(Err, "integer '" + T.Text + "' does not fit a word");
      }
    } else {
      T.K = Token::Kind::Word;
    }
    return true;
  }

private:
  void skip() {
    while (Pos != Text.size()) {
      const char C = Text[Pos];
      if (C == '#') {
        while (Pos != Text.size() && Text[Pos] != '\n')
          advance();
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        advance();
      } else {
        break;
      }
    }
  }

  bool punct(Token &T, Token::Kind K, const char *Spelling) {
    T.K = K;
    T.Text = Spelling;
    advance();
    return true;
  }

  bool fail(ParseError &Err, std::string Message) {
    Err = {Line, Col, std::move(Message)};
    return false;
  }

  char take() {
    const char C = Text[Pos];
    advance();
    return C;
  }

  void advance() {
    if (Text[Pos] == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    ++Pos;
  }

  std::string_view Text;
  size_t Pos = 0;
  unsigned Line = 1, Col = 1;
};

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

class Parser {
public:
  Parser(std::string_view Text, ParseError &Err) : Lex(Text), Err(Err) {}

  std::optional<Program> run() {
    if (!next())
      return std::nullopt;
    if (!expectKeyword("litmus", "every test starts with 'litmus <name>'"))
      return std::nullopt;
    if (!parseName(P.Name))
      return std::nullopt;
    while (Tok.K != Token::Kind::End) {
      if (Tok.K != Token::Kind::Word)
        return errHere("expected a section ('locations', 'init', "
                       "'jitter', 'thread' or 'forbidden'), got " +
                       describe());
      const std::string Kw = Tok.Text;
      if (Kw == "locations") {
        if (!parseLocations())
          return std::nullopt;
      } else if (Kw == "init") {
        if (!parseInit())
          return std::nullopt;
      } else if (Kw == "jitter") {
        if (!parseJitter())
          return std::nullopt;
      } else if (Kw == "thread") {
        if (!parseThread())
          return std::nullopt;
      } else if (Kw == "forbidden") {
        if (!parseForbidden())
          return std::nullopt;
      } else {
        return errHere("unknown section '" + Kw + "'");
      }
    }
    if (P.Locations.empty())
      return errAt(1, 1, "missing 'locations' section");
    if (P.Threads.empty())
      return errAt(1, 1, "test has no threads");
    if (std::string Problem = P.validate(); !Problem.empty())
      return errAt(1, 1, Problem);
    return std::move(P);
  }

private:
  // --- Sections ------------------------------------------------------------

  bool parseLocations() {
    const Token Kw = Tok;
    if (!P.Locations.empty()) {
      err(Kw, "duplicate 'locations' section");
      return false;
    }
    if (!next())
      return false;
    while (Tok.K == Token::Kind::Word && !isReserved(Tok.Text)) {
      if (P.findLocation(Tok.Text) >= 0) {
        err(Tok, "duplicate location '" + Tok.Text + "'");
        return false;
      }
      P.Locations.push_back(Tok.Text);
      if (!next())
        return false;
    }
    if (P.Locations.empty()) {
      err(Kw, "'locations' declares no locations");
      return false;
    }
    P.Init.assign(P.Locations.size(), 0);
    return true;
  }

  bool parseInit() {
    if (SawInit) {
      err(Tok, "duplicate 'init' section");
      return false;
    }
    SawInit = true;
    if (!requireLocations("'init'"))
      return false;
    if (!next() || !expect(Token::Kind::LBrace, "'{' after 'init'"))
      return false;
    while (Tok.K != Token::Kind::RBrace) {
      int Loc = -1;
      if (!parseLocationRef(Loc, "in 'init'"))
        return false;
      if (!expect(Token::Kind::Eq, "'=' after the location"))
        return false;
      Word V = 0;
      if (!parseWord(V))
        return false;
      P.Init[static_cast<size_t>(Loc)] = V;
    }
    return next(); // Consume '}'.
  }

  bool parseJitter() {
    if (!next())
      return false;
    Word V = 0;
    const Token At = Tok;
    if (!parseWord(V))
      return false;
    if (V == 0) {
      err(At, "jitter must be positive");
      return false;
    }
    P.PhaseJitter = static_cast<unsigned>(V);
    return true;
  }

  bool parseThread() {
    if (!requireLocations("'thread'"))
      return false;
    if (!next())
      return false;
    Word Index = 0;
    const Token IndexTok = Tok;
    if (!parseWord(Index))
      return false;
    if (Index != P.Threads.size()) {
      err(IndexTok, "expected thread " + std::to_string(P.Threads.size()) +
                        " (threads are numbered in order), got " +
                        std::to_string(Index));
      return false;
    }
    ProgThread T;
    T.Block = static_cast<unsigned>(Index);
    if (Tok.K == Token::Kind::At) {
      if (!next() ||
          !expectKeyword("block", "'block' after '@'"))
        return false;
      Word B = 0;
      if (!parseWord(B))
        return false;
      T.Block = static_cast<unsigned>(B);
    }
    if (!expect(Token::Kind::LBrace, "'{' to open the thread body"))
      return false;
    while (Tok.K != Token::Kind::RBrace) {
      ProgOp O;
      if (!parseOp(O))
        return false;
      T.Ops.push_back(O);
    }
    if (T.Ops.empty()) {
      err(Tok, "thread " + std::to_string(Index) + " has no ops");
      return false;
    }
    P.Threads.push_back(std::move(T));
    return next(); // Consume '}'.
  }

  bool parseOp(ProgOp &O) {
    if (Tok.K != Token::Kind::Word) {
      errHere("expected an op ('st', 'ld', 'ldasync', 'await', 'add', "
              "'fence' or 'fence?'), got " +
              describe());
      return false;
    }
    const Token Mnemonic = Tok;
    const std::string M = Tok.Text;
    if (!next())
      return false;
    int Loc = -1;
    if (M == "st" || M == "add") {
      Word V = 0;
      if (!parseLocationRef(Loc, "after '" + M + "'") || !parseWord(V))
        return false;
      O = M == "st" ? ProgOp::store(static_cast<unsigned>(Loc), V)
                    : ProgOp::atomicAdd(static_cast<unsigned>(Loc), V);
      return true;
    }
    if (M == "ld" || M == "ldasync") {
      unsigned Reg = 0;
      if (!parseRegisterDef(Reg) ||
          !parseLocationRef(Loc, "after the register"))
        return false;
      O = M == "ld" ? ProgOp::load(Reg, static_cast<unsigned>(Loc))
                    : ProgOp::asyncLoad(Reg, static_cast<unsigned>(Loc));
      return true;
    }
    if (M == "await") {
      if (Tok.K != Token::Kind::Word) {
        errHere("expected a register after 'await', got " + describe());
        return false;
      }
      const int Reg = P.findRegister(Tok.Text);
      if (Reg < 0) {
        err(Tok, "'await' of unknown register '" + Tok.Text + "'");
        return false;
      }
      O = ProgOp::awaitLoad(static_cast<unsigned>(Reg));
      return next();
    }
    if (M == "fence") {
      O = ProgOp::fence();
      return true;
    }
    if (M == "fence?") {
      O = ProgOp::optFence();
      return true;
    }
    err(Mnemonic, "unknown op '" + M + "'");
    return false;
  }

  bool parseForbidden() {
    if (!P.Forbidden.empty()) {
      err(Tok, "duplicate 'forbidden' section");
      return false;
    }
    if (!requireLocations("'forbidden'"))
      return false;
    if (!next())
      return false;
    while (true) {
      CondAtom A;
      if (Tok.K != Token::Kind::Word) {
        errHere("expected a register or location in 'forbidden', got " +
                describe());
        return false;
      }
      const int Reg = P.findRegister(Tok.Text);
      const int Loc = P.findLocation(Tok.Text);
      if (Reg < 0 && Loc < 0) {
        err(Tok, "unknown register or location '" + Tok.Text +
                     "' in 'forbidden'");
        return false;
      }
      A.IsReg = Reg >= 0;
      A.Index = static_cast<unsigned>(A.IsReg ? Reg : Loc);
      if (!next())
        return false;
      if (Tok.K == Token::Kind::Ne)
        A.Negated = true;
      else if (Tok.K != Token::Kind::Eq) {
        errHere("expected '=' or '!=' in 'forbidden', got " + describe());
        return false;
      }
      if (!next() || !parseWord(A.Value))
        return false;
      P.Forbidden.push_back(A);
      if (Tok.K != Token::Kind::And)
        return true;
      if (!next())
        return false;
    }
  }

  // --- Primitives ----------------------------------------------------------

  bool parseName(std::string &Out) {
    if (Tok.K != Token::Kind::Word && Tok.K != Token::Kind::String &&
        Tok.K != Token::Kind::Number) {
      errHere("expected a test name, got " + describe());
      return false;
    }
    Out = Tok.Text;
    if (Out.empty()) {
      errHere("test name must not be empty");
      return false;
    }
    return next();
  }

  /// An existing location name; fails with position otherwise.
  bool parseLocationRef(int &Loc, const std::string &Where) {
    if (Tok.K != Token::Kind::Word) {
      errHere("expected a location " + Where + ", got " + describe());
      return false;
    }
    Loc = P.findLocation(Tok.Text);
    if (Loc < 0) {
      err(Tok, "unknown location '" + Tok.Text + "' " + Where);
      return false;
    }
    return next();
  }

  /// A register name at a load destination: declared on first use.
  bool parseRegisterDef(unsigned &Reg) {
    if (Tok.K != Token::Kind::Word) {
      errHere("expected a register, got " + describe());
      return false;
    }
    if (isReserved(Tok.Text)) {
      err(Tok, "'" + Tok.Text + "' is a reserved word, not a register");
      return false;
    }
    if (P.findLocation(Tok.Text) >= 0) {
      err(Tok, "'" + Tok.Text + "' is a location, not a register");
      return false;
    }
    const int Existing = P.findRegister(Tok.Text);
    if (Existing >= 0) {
      Reg = static_cast<unsigned>(Existing);
    } else {
      P.Registers.push_back(Tok.Text);
      Reg = static_cast<unsigned>(P.Registers.size() - 1);
    }
    return next();
  }

  bool parseWord(Word &V) {
    if (Tok.K != Token::Kind::Number) {
      errHere("expected an integer, got " + describe());
      return false;
    }
    V = static_cast<Word>(Tok.Value);
    return next();
  }

  bool requireLocations(const std::string &Section) {
    if (!P.Locations.empty())
      return true;
    err(Tok, Section + " must come after 'locations'");
    return false;
  }

  bool expect(Token::Kind K, const std::string &What) {
    if (Tok.K != K) {
      errHere("expected " + What + ", got " + describe());
      return false;
    }
    return next();
  }

  bool expectKeyword(const std::string &Kw, const std::string &What) {
    if (Tok.K != Token::Kind::Word || Tok.Text != Kw) {
      errHere("expected " + What + ", got " + describe());
      return false;
    }
    return next();
  }

  std::string describe() const {
    switch (Tok.K) {
    case Token::Kind::End:
      return "end of file";
    case Token::Kind::String:
      return "\"" + Tok.Text + "\"";
    default:
      return "'" + Tok.Text + "'";
    }
  }

  bool next() { return Lex.lex(Tok, Err); }

  void err(const Token &At, std::string Message) {
    Err = {At.Line, At.Col, std::move(Message)};
  }
  std::optional<Program> errHere(std::string Message) {
    err(Tok, std::move(Message));
    return std::nullopt;
  }
  std::optional<Program> errAt(unsigned Line, unsigned Col,
                               std::string Message) {
    Err = {Line, Col, std::move(Message)};
    return std::nullopt;
  }

  Lexer Lex;
  ParseError &Err;
  Token Tok;
  Program P;
  bool SawInit = false;
};

} // namespace

std::optional<Program> litmus::parseLitmus(std::string_view Text,
                                           ParseError &Err) {
  return Parser(Text, Err).run();
}

//===----------------------------------------------------------------------===//
// Printer
//===----------------------------------------------------------------------===//

namespace {

/// True when \p Name round-trips as a bare word token.
bool printableBare(const std::string &Name) {
  // Bare digits lex as a number token, which the name rule also accepts.
  if (Name.empty())
    return false;
  for (char C : Name)
    if (!isWordChar(C))
      return false;
  return true;
}

} // namespace

std::string litmus::printLitmus(const Program &P) {
  std::ostringstream OS;
  if (!P.Doc.empty())
    OS << "# " << P.Doc << "\n";
  OS << "litmus ";
  if (printableBare(P.Name))
    OS << P.Name;
  else
    OS << '"' << P.Name << '"';
  OS << "\nlocations";
  for (const std::string &L : P.Locations)
    OS << " " << L;
  OS << "\n";

  bool AnyInit = false;
  for (Word V : P.Init)
    AnyInit |= V != 0;
  if (AnyInit) {
    OS << "init {";
    for (size_t I = 0; I != P.Init.size(); ++I)
      if (P.Init[I] != 0)
        OS << " " << P.Locations[I] << " = " << P.Init[I];
    OS << " }\n";
  }
  if (P.PhaseJitter != 24)
    OS << "jitter " << P.PhaseJitter << "\n";

  for (size_t TI = 0; TI != P.Threads.size(); ++TI) {
    const ProgThread &T = P.Threads[TI];
    OS << "\nthread " << TI;
    if (T.Block != TI)
      OS << " @ block " << T.Block;
    OS << " {\n";
    for (const ProgOp &O : T.Ops) {
      OS << "  ";
      switch (O.K) {
      case ProgOp::Kind::Store:
        OS << "st " << P.Locations[O.Loc] << " " << O.Value;
        break;
      case ProgOp::Kind::Load:
        OS << "ld " << P.Registers[O.Reg] << " " << P.Locations[O.Loc];
        break;
      case ProgOp::Kind::AsyncLoad:
        OS << "ldasync " << P.Registers[O.Reg] << " "
           << P.Locations[O.Loc];
        break;
      case ProgOp::Kind::AwaitLoad:
        OS << "await " << P.Registers[O.Reg];
        break;
      case ProgOp::Kind::AtomicAdd:
        OS << "add " << P.Locations[O.Loc] << " " << O.Value;
        break;
      case ProgOp::Kind::Fence:
        OS << "fence";
        break;
      case ProgOp::Kind::OptFence:
        OS << "fence?";
        break;
      }
      OS << "\n";
    }
    OS << "}\n";
  }

  if (!P.Forbidden.empty()) {
    OS << "\nforbidden";
    for (size_t I = 0; I != P.Forbidden.size(); ++I) {
      const CondAtom &A = P.Forbidden[I];
      if (I)
        OS << " /\\";
      OS << " "
         << (A.IsReg ? P.Registers[A.Index] : P.Locations[A.Index])
         << (A.Negated ? " != " : " = ") << A.Value;
    }
    OS << "\n";
  }
  return OS.str();
}
