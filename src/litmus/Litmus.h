//===- litmus/Litmus.h - GPU litmus tests -----------------------*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The litmus runner: executes litmus::Program tests on the simulated GPU,
/// parameterised by the distance between their communication locations
/// (test instances T_d, Sec. 3.1), under configurable memory stress — the
/// micro-benchmark machinery behind the paper's entire Sec. 3 tuning
/// pipeline.
///
/// Tests are data (litmus/Program.h): the runner interprets any program —
/// a built-in catalog entry, a parsed `.litmus` file, or an exported fuzz
/// case. The historical LitmusKind enum API remains as a thin catalog
/// lookup and executes bit-identically to the original hand-written
/// kernels. Communication locations are placed in global memory with the
/// communicating threads in distinct blocks by default, matching the
/// paper's focus on inter-block idioms.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_LITMUS_LITMUS_H
#define GPUWMM_LITMUS_LITMUS_H

#include "litmus/Program.h"
#include "sim/BatchExec.h"
#include "sim/ChipProfile.h"
#include "sim/ExecutionContext.h"
#include "stress/AccessSequence.h"
#include "support/Rng.h"

#include <array>
#include <cstdint>
#include <vector>

namespace gpuwmm {
namespace litmus {

/// The three idioms of Fig. 2, plus three further classic two-location
/// shapes (R, S, 2+2W) the paper's Sec. 3.1 says the stress can be
/// re-tuned to if new buggy idioms emerge.
enum class LitmusKind { MP, LB, SB, R, S, TwoPlusTwoW };

/// The paper's tuning set (Fig. 2).
inline constexpr std::array<LitmusKind, 3> AllLitmusKinds = {
    LitmusKind::MP, LitmusKind::LB, LitmusKind::SB};

/// Every supported shape. Note: the weak outcomes of S and 2+2W hinge on
/// write-write reordering *observed through final memory states*; our
/// model's per-location coherence follows issue order, which forbids
/// them — a documented strengthening relative to real GPUs (tested in
/// LitmusTests). R is observable.
inline constexpr std::array<LitmusKind, 6> AllLitmusKindsExtended = {
    LitmusKind::MP, LitmusKind::LB,          LitmusKind::SB,
    LitmusKind::R,  LitmusKind::S,           LitmusKind::TwoPlusTwoW};

const char *litmusName(LitmusKind K);

/// The catalog program a LitmusKind names (the enum API is a thin lookup
/// into the data-driven catalog; see litmus/Program.h).
const Program &catalogProgram(LitmusKind K);

/// A test instance T_d: test T with communication locations d words apart.
struct LitmusInstance {
  LitmusKind Kind = LitmusKind::MP;
  unsigned Distance = 0;

  /// The address delta between x and y. A distance of 0 means contiguous
  /// locations (delta 1); x and y can never share an address.
  unsigned addressDelta() const { return Distance == 0 ? 1 : Distance; }
};

/// Per-execution litmus options.
struct LitmusRunOpts {
  bool WithFences = false; ///< Fence between each thread's two ops.
  bool Sequential = false; ///< SC reference mode (no weak behaviour).
  bool Randomise = false;  ///< Thread randomisation.
  /// Record the run's memory events (sim/TraceSink.h) for the axiomatic
  /// checker / --explain; read them back via LitmusRunner::trace().
  /// Tracing is pure observation: results are bit-identical either way.
  bool Trace = false;
  /// Streaming sink: feed the run's events to an external incremental
  /// consumer (e.g. model::StreamingChecker) instead of recording them.
  /// The caller brackets the run with the consumer's begin()/finish().
  /// Takes precedence over \ref Trace; equally pure observation.
  sim::TraceSink *Sink = nullptr;
};

/// Executes litmus instances under micro-benchmark stress configurations
/// (⟨T_d, σ@L⟩ in the paper's notation).
class LitmusRunner {
public:
  /// Micro-benchmark stress: the access sequence σ applied at explicit
  /// scratchpad word offsets, by a random population of stressing threads
  /// occupying 50-100% of the chip (paper Sec. 3.2).
  struct MicroStress {
    bool Enabled = false;
    stress::AccessSequence Seq;
    std::vector<unsigned> ScratchOffsets;
    double OccupancyLo = 0.5;
    double OccupancyHi = 1.0;

    /// No stress at all.
    static MicroStress none() { return {}; }

    /// σ applied at a single scratchpad offset (⟨T_d, σ@l⟩).
    static MicroStress at(stress::AccessSequence Seq, unsigned Offset) {
      MicroStress S;
      S.Enabled = true;
      S.Seq = Seq;
      S.ScratchOffsets = {Offset};
      return S;
    }

    /// σ applied at several offsets simultaneously (⟨T_d, σ@Lm⟩).
    static MicroStress atAll(stress::AccessSequence Seq,
                             std::vector<unsigned> Offsets) {
      MicroStress S;
      S.Enabled = true;
      S.Seq = Seq;
      S.ScratchOffsets = std::move(Offsets);
      return S;
    }
  };

  /// Per-execution options (see LitmusRunOpts).
  using RunOpts = LitmusRunOpts;

  /// A runner leases one recycled ExecutionContext from its thread's pool
  /// and reuses it for every execution, so tuning sweeps that perform
  /// thousands of runOnce calls allocate nothing per run in steady state.
  /// Use the runner on the thread that constructed it.
  LitmusRunner(const sim::ChipProfile &Chip, uint64_t Seed)
      : Chip(Chip), Master(Seed) {}

  /// Executes \p P once with its communication locations \p Distance
  /// words apart; returns true iff the program's forbidden outcome was
  /// observed. \p P must satisfy Program::validate() and must not be
  /// mutated between executions on one runner (the runner caches a
  /// per-(program, distance) execution plan keyed by identity, so
  /// sweeps allocate nothing per run in steady state).
  bool runOnce(const Program &P, unsigned Distance, const MicroStress &S,
               const RunOpts &Opts = RunOpts());

  /// Executes \p P \p C times; returns the number of weak behaviours.
  ///
  /// Runs batched (see \ref countWeakBatch) unless the options request
  /// tracing or attach a streaming sink — those force the scalar
  /// \ref runOnce path per run, since the batched executor does not emit
  /// trace events. Either way, results, executions() accounting and the
  /// runner's derived seed streams are bit-identical, so `litmus
  /// --explain`, `--oracle=all` and `fuzz --shrink` outputs never change.
  unsigned countWeak(const Program &P, unsigned Distance,
                     const MicroStress &S, unsigned C,
                     const RunOpts &Opts = RunOpts());

  /// Executes \p P \p C times on the batched engine (sim/BatchExec.h):
  /// the program is compiled once into a flat op-stream plan, runs are
  /// grouped into batches of K seeds over the context's SoA slabs, and
  /// the per-run stress source is reused with only its intensity redrawn.
  /// Bit-identical, run for run, to a \ref runOnce loop at the same seed
  /// stream for every batch width (DESIGN.md Sec. 17). \p Opts must not
  /// request tracing or a sink (asserted). When \p PerRun is non-null it
  /// receives each run's weak verdict in execution order (0/1) — the A/B
  /// hook for the identity bench and property tests.
  unsigned countWeakBatch(const Program &P, unsigned Distance,
                          const MicroStress &S, unsigned C,
                          const RunOpts &Opts = RunOpts(),
                          std::vector<uint8_t> *PerRun = nullptr);

  /// Batch width K for the batched path; 0 (default) resolves to the
  /// process-wide sim::defaultBatchWidth(). Width only sets the slab
  /// amortisation window — it never affects results.
  void setBatchWidth(unsigned K) { BatchWidth = K; }
  unsigned batchWidth() const {
    return BatchWidth != 0 ? BatchWidth : sim::defaultBatchWidth();
  }

  /// Executes the catalog program of \p T.Kind once (bit-identical to the
  /// original hand-written kernels); true iff the weak behaviour was
  /// observed.
  bool runOnce(const LitmusInstance &T, const MicroStress &S,
               const RunOpts &Opts = RunOpts()) {
    return runOnce(catalogProgram(T.Kind), T.Distance, S, Opts);
  }

  /// Executes \p C times; returns the number of weak behaviours.
  unsigned countWeak(const LitmusInstance &T, const MicroStress &S,
                     unsigned C, const RunOpts &Opts = RunOpts()) {
    return countWeak(catalogProgram(T.Kind), T.Distance, S, C, Opts);
  }

  /// Total executions performed by this runner (tuning-cost reporting).
  uint64_t executions() const { return Execs; }

  /// The events the most recent execution recorded (empty unless it ran
  /// with RunOpts::Trace). Valid until the next execution.
  const sim::EventTrace &trace() const { return Ctx.get().trace(); }

  /// Names an address of the most recent execution for explanations: a
  /// program location name, "wb(reg)" for a register writeback slot, or a
  /// raw "a<N>" for anything else (stress scratchpad words).
  std::string addrName(sim::Addr A) const;

private:
  /// The (program, distance)-invariant part of an execution: register
  /// writeback lists, the (block, lane) -> thread dispatch table and the
  /// launch geometry. Rebuilt only when the instance changes, so the
  /// million-run tuning sweeps reuse one plan (PR 3's zero-allocation
  /// steady state).
  struct Plan {
    const Program *P = nullptr;
    unsigned Distance = 0;
    unsigned Delta = 1;
    unsigned GridDim = 0;
    unsigned BlockDim = 0;
    std::vector<std::vector<unsigned>> Writeback; ///< Per thread.
    std::vector<int> ThreadAt; ///< block * BlockDim + lane -> thread.
  };

  /// The batched form of \ref Plan: the flat pre-resolved op stream plus
  /// the address layout the per-run allocations are guaranteed to produce
  /// (allocation on a freshly reset context is a deterministic
  /// patch-aligned bump from zero, so addresses are bakeable at
  /// plan-build time and asserted against the real allocs per run).
  struct BatchPlan {
    const Program *P = nullptr;
    unsigned Distance = 0;
    bool Fenced = false;
    unsigned Delta = 1;
    unsigned NumLocs = 0;
    unsigned NumRegs = 0;
    sim::Addr Base = 0;        ///< Location block (loc L at Base+L*Delta).
    sim::Addr Results = 0;     ///< Register writeback block.
    sim::Addr ScratchBase = 0; ///< Stress scratchpad (when stressed).
    std::vector<std::pair<sim::Addr, sim::Word>> InitWrites;
    sim::BatchProgram BP;
  };

  void rebuildPlan(const Program &P, unsigned Distance);
  void rebuildBatchPlan(const Program &P, unsigned Distance, bool Fenced);

  const sim::ChipProfile &Chip;
  Rng Master;
  sim::ContextLease Ctx; ///< Recycled engine state, reused every run.
  uint64_t Execs = 0;
  Plan Cached;
  BatchPlan Batched;
  unsigned BatchWidth = 0; ///< 0 = process default.
  // Per-run scratch, recycled across runs.
  std::vector<sim::Addr> LocAddr;
  std::vector<sim::Word> Regs, FinalRegs, FinalMem;
  sim::Addr ResultsBase = 0; ///< Writeback allocation (addrName).
};

} // namespace litmus
} // namespace gpuwmm

#endif // GPUWMM_LITMUS_LITMUS_H
