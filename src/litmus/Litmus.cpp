//===- litmus/Litmus.cpp - Litmus program interpreter -------------------------===//
//
// Executes litmus::Program tests on the simulated GPU. The interpreter
// reproduces the op shape of the original hand-written Fig. 2 kernels
// exactly — start-phase jitter, ops in order, then register writeback in
// first-load order — so catalog programs for MP/LB/SB/R/S/2+2W execute
// bit-identically to the historical enum-dispatched kernels (pinned by
// LitmusTests' enum-vs-IR equality suite).
//
//===----------------------------------------------------------------------===//

#include "litmus/Litmus.h"

#include "sim/Device.h"
#include "sim/ThreadContext.h"
#include "stress/StressSources.h"

#include <cassert>

using namespace gpuwmm;
using namespace gpuwmm::litmus;
using sim::Addr;
using sim::Kernel;
using sim::ThreadContext;
using sim::Word;

const char *litmus::litmusName(LitmusKind K) {
  switch (K) {
  case LitmusKind::MP:
    return "MP";
  case LitmusKind::LB:
    return "LB";
  case LitmusKind::SB:
    return "SB";
  case LitmusKind::R:
    return "R";
  case LitmusKind::S:
    return "S";
  case LitmusKind::TwoPlusTwoW:
    return "2+2W";
  }
  return "unknown";
}

const Program &litmus::catalogProgram(LitmusKind K) {
  const Program *P = findCatalogProgram(litmusName(K));
  assert(P && "every LitmusKind has a catalog program");
  return *P;
}

namespace {

/// A launched lane with no program thread (uneven block placement).
Kernel idleThread(ThreadContext &) { co_return; }

/// Interprets one program thread. The issue sequence matches the original
/// hand-written kernels: one start-phase yield with random jitter, the ops
/// in program order (an OptFence's fence exists only in fenced runs), and
/// finally each register the thread loaded into is stored to its result
/// slot, in first-load order.
///
/// \p Regs is shared across the program's threads; every register has
/// exactly one loading thread (Program::validate), so slots are
/// single-writer. For a split-phase load the slot holds the ticket until
/// the matching await replaces it with the loaded value.
Kernel interpretThread(ThreadContext &Ctx, const ProgThread *T,
                       const std::vector<Addr> *LocAddr, Addr Results,
                       unsigned Jitter, bool Fenced, std::vector<Word> *Regs,
                       const std::vector<unsigned> *Writeback) {
  co_await Ctx.yield(1 + static_cast<unsigned>(Ctx.rand(Jitter)));
  for (const ProgOp &O : T->Ops) {
    switch (O.K) {
    case ProgOp::Kind::Store:
      co_await Ctx.st((*LocAddr)[O.Loc], O.Value);
      break;
    case ProgOp::Kind::Load:
      (*Regs)[O.Reg] = co_await Ctx.ld((*LocAddr)[O.Loc]);
      break;
    case ProgOp::Kind::AsyncLoad:
      (*Regs)[O.Reg] = co_await Ctx.ldAsync((*LocAddr)[O.Loc]);
      break;
    case ProgOp::Kind::AwaitLoad:
      (*Regs)[O.Reg] = co_await Ctx.awaitLoad((*Regs)[O.Reg]);
      break;
    case ProgOp::Kind::AtomicAdd:
      co_await Ctx.atomicAdd((*LocAddr)[O.Loc], O.Value);
      break;
    case ProgOp::Kind::Fence:
      co_await Ctx.fence();
      break;
    case ProgOp::Kind::OptFence:
      if (Fenced)
        co_await Ctx.fence();
      break;
    }
  }
  for (unsigned R : *Writeback)
    co_await Ctx.st(Results + R, (*Regs)[R]);
}

/// Everything the dispatch lambda needs, bundled so the KernelFn
/// captures one reference and stays within std::function's inline
/// storage (no per-run allocation).
struct RunState {
  const Program *P;
  const std::vector<std::vector<unsigned>> *Writeback;
  const std::vector<int> *ThreadAt;
  const std::vector<Addr> *LocAddr;
  Addr Results;
  unsigned BlockDim;
  bool Fenced;
  std::vector<Word> *Regs;
};

} // namespace

void LitmusRunner::rebuildPlan(const Program &P, unsigned Distance) {
  Cached.P = &P;
  Cached.Distance = Distance;
  // A distance of 0 means contiguous locations (delta 1); locations
  // never share an address.
  Cached.Delta = Distance == 0 ? 1 : Distance;

  // Per-thread register writeback lists (first-load order).
  const unsigned NumThreads = static_cast<unsigned>(P.Threads.size());
  Cached.Writeback.assign(NumThreads, {});
  for (unsigned TI = 0; TI != NumThreads; ++TI)
    for (const ProgOp &O : P.Threads[TI].Ops)
      if (O.K == ProgOp::Kind::Load || O.K == ProgOp::Kind::AsyncLoad)
        Cached.Writeback[TI].push_back(O.Reg);

  // The lane dispatch table mapping (block, lane) to a program thread.
  Cached.GridDim = P.numBlocks();
  Cached.BlockDim = P.maxBlockThreads();
  Cached.ThreadAt.assign(
      static_cast<size_t>(Cached.GridDim) * Cached.BlockDim, -1);
  std::vector<unsigned> NextLane(Cached.GridDim, 0);
  for (unsigned TI = 0; TI != NumThreads; ++TI) {
    const unsigned B = P.Threads[TI].Block;
    Cached.ThreadAt[static_cast<size_t>(B) * Cached.BlockDim +
                    NextLane[B]++] = static_cast<int>(TI);
  }
}

bool LitmusRunner::runOnce(const Program &P, unsigned Distance,
                           const MicroStress &S, const RunOpts &Opts) {
  if (Cached.P != &P || Cached.Distance != Distance) {
    assert(P.validate().empty() && "program must be well-formed");
    rebuildPlan(P, Distance);
  }
  Rng RunRng = Master.fork(Execs);
  ++Execs;

  // Arm (or disarm) the context's recycled event recorder — or an
  // external streaming sink — before the Device resets it; either form
  // observes only, so results stay bit-identical.
  Ctx.get().requestTracing(Opts.Trace);
  Ctx.get().requestStreaming(Opts.Sink);
  sim::Device Dev(Ctx.get(), Chip, RunRng.next());
  Dev.setSequentialMode(Opts.Sequential);
  Dev.setRandomiseThreads(Opts.Randomise);

  // All locations live in one allocation, delta words apart (T_d): the
  // location list's order is the memory layout.
  const unsigned Delta = Cached.Delta;
  const unsigned NumLocs = static_cast<unsigned>(P.Locations.size());
  const Addr Base = Dev.alloc((NumLocs - 1) * Delta + 1);
  LocAddr.resize(NumLocs);
  for (unsigned L = 0; L != NumLocs; ++L)
    LocAddr[L] = Base + L * Delta;
  const unsigned NumRegs = static_cast<unsigned>(P.Registers.size());
  const Addr Results = Dev.alloc(std::max(NumRegs, 1u));
  ResultsBase = Results;
  for (unsigned L = 0; L != NumLocs; ++L)
    if (P.Init[L] != 0)
      Dev.write(LocAddr[L], P.Init[L]);

  // Scratchpad and stress; the scratchpad is a real allocation so stressed
  // locations occupy genuine banks downstream of the test locations in the
  // address space (the paper cannot control this distance either and
  // designs the stress not to depend on it).
  std::unique_ptr<stress::SysStress> Stress;
  if (S.Enabled) {
    assert(!S.ScratchOffsets.empty() && "stress without locations");
    unsigned MaxOff = 0;
    for (unsigned Off : S.ScratchOffsets)
      MaxOff = std::max(MaxOff, Off);
    const Addr Scratch = Dev.alloc(MaxOff + Chip.PatchSizeWords);
    std::vector<Addr> Locs;
    Locs.reserve(S.ScratchOffsets.size());
    for (unsigned Off : S.ScratchOffsets)
      Locs.push_back(Scratch + Off);
    const unsigned MaxThreads = Chip.maxConcurrentThreads();
    const unsigned StressThreads = static_cast<unsigned>(
        RunRng.realIn(S.OccupancyLo, S.OccupancyHi) *
        static_cast<double>(MaxThreads));
    Stress = std::make_unique<stress::SysStress>(
        Chip, S.Seq, std::move(Locs),
        stress::threadUnits(Chip, StressThreads));
    Dev.setCongestionSource(Stress.get());
  }

  Regs.assign(NumRegs, 0);
  RunState RS{&P,      &Cached.Writeback, &Cached.ThreadAt, &LocAddr,
              Results, Cached.BlockDim,   Opts.WithFences,  &Regs};
  const sim::KernelFn Fn = [&RS](ThreadContext &TC) -> Kernel {
    const int TI =
        (*RS.ThreadAt)[static_cast<size_t>(TC.blockIdx()) * RS.BlockDim +
                       TC.threadIdx()];
    if (TI < 0)
      return idleThread(TC);
    return interpretThread(TC, &RS.P->Threads[TI], RS.LocAddr, RS.Results,
                           RS.P->PhaseJitter, RS.Fenced, RS.Regs,
                           &(*RS.Writeback)[TI]);
  };

  const sim::RunResult Result =
      Dev.run({Cached.GridDim, Cached.BlockDim}, Fn);
  assert(Result.completed() && "litmus execution must terminate");
  (void)Result;

  FinalRegs.resize(NumRegs);
  for (unsigned R = 0; R != NumRegs; ++R)
    FinalRegs[R] = Dev.read(Results + R);
  FinalMem.resize(NumLocs);
  for (unsigned L = 0; L != NumLocs; ++L)
    FinalMem[L] = Dev.read(LocAddr[L]);
  return P.evalForbidden(FinalRegs, FinalMem);
}

std::string LitmusRunner::addrName(sim::Addr A) const {
  // Built without operator+ to dodge GCC 12's -Wrestrict false positive.
  std::string S;
  if (const Program *P = Cached.P) {
    for (size_t L = 0; L != LocAddr.size(); ++L)
      if (LocAddr[L] == A)
        return P->Locations[L];
    if (A >= ResultsBase && A < ResultsBase + P->Registers.size()) {
      S = "wb(";
      S += P->Registers[A - ResultsBase];
      S += ")";
      return S;
    }
  }
  S = "a";
  S += std::to_string(A);
  return S;
}

unsigned LitmusRunner::countWeak(const Program &P, unsigned Distance,
                                 const MicroStress &S, unsigned C,
                                 const RunOpts &Opts) {
  // Tracing and streaming sinks observe through the scalar engine's
  // event seam, which the batched executor does not drive: such runs take
  // the scalar path, as does everything under --engine=scalar. Results
  // and seed streams are identical either way, so callers may freely
  // interleave traced and batched runs on one runner.
  if (Opts.Trace || Opts.Sink ||
      sim::engineMode() == sim::EngineMode::Scalar) {
    unsigned Weak = 0;
    for (unsigned I = 0; I != C; ++I)
      Weak += runOnce(P, Distance, S, Opts);
    return Weak;
  }
  return countWeakBatch(P, Distance, S, C, Opts);
}

void LitmusRunner::rebuildBatchPlan(const Program &P, unsigned Distance,
                                    bool Fenced) {
  BatchPlan &B = Batched;
  B.P = &P;
  B.Distance = Distance;
  B.Fenced = Fenced;
  B.Delta = Distance == 0 ? 1 : Distance;
  B.NumLocs = static_cast<unsigned>(P.Locations.size());
  B.NumRegs = static_cast<unsigned>(P.Registers.size());

  // Bake the address layout: a freshly reset context allocates with a
  // deterministic patch-aligned bump from zero, in runOnce's order
  // (locations, writebacks, then the stress scratchpad).
  const unsigned Patch = Chip.PatchSizeWords;
  const auto AlignUp = [Patch](unsigned X) {
    return (X + Patch - 1) / Patch * Patch;
  };
  B.Base = 0;
  B.Results = AlignUp((B.NumLocs - 1) * B.Delta + 1);
  B.ScratchBase = AlignUp(B.Results + std::max(B.NumRegs, 1u));
  B.InitWrites.clear();
  for (unsigned L = 0; L != B.NumLocs; ++L)
    if (P.Init[L] != 0)
      B.InitWrites.emplace_back(B.Base + L * B.Delta, P.Init[L]);

  // Compile the flat op stream: per program thread, the start-phase
  // jitter, the ops with addresses and register slots pre-resolved (an
  // OptFence is baked in or dropped by the plan's fencing), and the
  // register writebacks in first-load order.
  sim::BatchProgram &BP = B.BP;
  BP.Ops.clear();
  BP.GridDim = P.numBlocks();
  BP.BlockDim = P.maxBlockThreads();
  BP.NumSlots = std::max(B.NumRegs, 1u);
  const unsigned NumThreads = static_cast<unsigned>(P.Threads.size());
  std::vector<sim::BatchLane> ThreadRange(NumThreads);
  for (unsigned TI = 0; TI != NumThreads; ++TI) {
    const auto Begin = static_cast<uint32_t>(BP.Ops.size());
    using Code = sim::BatchOp::Code;
    assert(P.PhaseJitter > 0 && "phase jitter bound must be positive");
    BP.Ops.push_back({Code::Jitter, 0, 0, 0, P.PhaseJitter});
    for (const ProgOp &O : P.Threads[TI].Ops) {
      const sim::Addr A = B.Base + O.Loc * B.Delta;
      const auto Slot = static_cast<uint16_t>(O.Reg);
      switch (O.K) {
      case ProgOp::Kind::Store:
        BP.Ops.push_back({Code::Store, 0, 0, A, O.Value});
        break;
      case ProgOp::Kind::Load:
        BP.Ops.push_back({Code::Load, Slot, 0, A, 0});
        break;
      case ProgOp::Kind::AsyncLoad:
        BP.Ops.push_back({Code::AsyncLoad, Slot, 0, A, 0});
        break;
      case ProgOp::Kind::AwaitLoad:
        BP.Ops.push_back({Code::AwaitLoad, Slot, 0, 0, 0});
        break;
      case ProgOp::Kind::AtomicAdd:
        BP.Ops.push_back({Code::AtomicAdd, 0, 0, A, O.Value});
        break;
      case ProgOp::Kind::Fence:
        BP.Ops.push_back({Code::FenceDevice, 0, 0, 0, 0});
        break;
      case ProgOp::Kind::OptFence:
        if (Fenced)
          BP.Ops.push_back({Code::FenceDevice, 0, 0, 0, 0});
        break;
      }
    }
    for (const ProgOp &O : P.Threads[TI].Ops)
      if (O.K == ProgOp::Kind::Load || O.K == ProgOp::Kind::AsyncLoad)
        BP.Ops.push_back({Code::WbStore, static_cast<uint16_t>(O.Reg), 0,
                          B.Results + O.Reg, 0});
    ThreadRange[TI] = {Begin, static_cast<uint32_t>(BP.Ops.size())};
  }

  // The lane table; unassigned lanes stay empty (idle filler threads).
  BP.Lanes.assign(static_cast<size_t>(BP.GridDim) * BP.BlockDim, {});
  std::vector<unsigned> NextLane(BP.GridDim, 0);
  for (unsigned TI = 0; TI != NumThreads; ++TI) {
    const unsigned Blk = P.Threads[TI].Block;
    BP.Lanes[static_cast<size_t>(Blk) * BP.BlockDim + NextLane[Blk]++] =
        ThreadRange[TI];
  }
}

unsigned LitmusRunner::countWeakBatch(const Program &P, unsigned Distance,
                                      const MicroStress &S, unsigned C,
                                      const RunOpts &Opts,
                                      std::vector<uint8_t> *PerRun) {
  assert(!Opts.Trace && !Opts.Sink &&
         "traced/streamed runs take the scalar path (countWeak)");
  if (PerRun)
    PerRun->clear();
  if (C == 0)
    return 0;
  if (Batched.P != &P || Batched.Distance != Distance ||
      Batched.Fenced != Opts.WithFences) {
    assert(P.validate().empty() && "program must be well-formed");
    rebuildBatchPlan(P, Distance, Opts.WithFences);
  }
  const BatchPlan &B = Batched;

  sim::ExecutionContext &EC = Ctx.get();
  // The batched path never records events; disarm any previously armed
  // recorder/sink so reset() leaves the memory system untraced.
  EC.requestTracing(false);
  EC.requestStreaming(nullptr);
  sim::MemorySystem &Mem = EC.memory();
  sim::BatchScratch &BS = EC.batchScratch();

  sim::BatchRunConfig Cfg;
  Cfg.RandomiseThreads = Opts.Randomise;

  // One stress source serves the whole call: its locations are fixed by
  // the deterministic address layout, so only the per-run random
  // population (the RunRng occupancy draw, kept in scalar order) varies.
  std::unique_ptr<stress::SysStress> Stress;
  unsigned ScratchWords = 0, MaxThreads = 0;
  if (S.Enabled) {
    assert(!S.ScratchOffsets.empty() && "stress without locations");
    unsigned MaxOff = 0;
    std::vector<sim::Addr> Locs;
    Locs.reserve(S.ScratchOffsets.size());
    for (unsigned Off : S.ScratchOffsets) {
      MaxOff = std::max(MaxOff, Off);
      Locs.push_back(B.ScratchBase + Off);
    }
    ScratchWords = MaxOff + Chip.PatchSizeWords;
    MaxThreads = Chip.maxConcurrentThreads();
    Stress = std::make_unique<stress::SysStress>(Chip, S.Seq,
                                                 std::move(Locs), 0.0);
  }

  const unsigned NumSlots = B.BP.NumSlots;
  const unsigned RegStride = std::max(B.NumRegs, 1u);
  const unsigned MemStride = std::max(B.NumLocs, 1u);
  const unsigned K = batchWidth();
  unsigned Weak = 0;
  if (PerRun)
    PerRun->reserve(C);

  for (unsigned Done = 0; Done != C;) {
    const unsigned N = std::min(K, C - Done);
    // One SoA slab per batch; register slots need no per-run clearing
    // beyond this (Program::validate guarantees every slot is written —
    // by its load or async ticket — before any op reads it).
    BS.RegSlab.assign(static_cast<size_t>(N) * NumSlots, 0);
    BS.FinalRegSlab.resize(static_cast<size_t>(N) * RegStride);
    BS.FinalMemSlab.resize(static_cast<size_t>(N) * MemStride);

    for (unsigned J = 0; J != N; ++J, ++Done) {
      // Per-run draw order is exactly runOnce's: fork the run stream,
      // seed the context, then (when stressed) draw the occupancy.
      Rng RunRng = Master.fork(Execs);
      ++Execs;
      EC.reset(Chip, RunRng.next());
      Mem.setSequentialMode(Opts.Sequential);

      const sim::Addr Base = Mem.alloc((B.NumLocs - 1) * B.Delta + 1);
      const sim::Addr Results = Mem.alloc(std::max(B.NumRegs, 1u));
      assert(Base == B.Base && Results == B.Results &&
             "allocation layout diverged from the compiled plan");
      (void)Base;
      (void)Results;
      for (const auto &[A, V] : B.InitWrites)
        Mem.hostWrite(A, V);
      if (S.Enabled) {
        const sim::Addr Scratch = Mem.alloc(ScratchWords);
        assert(Scratch == B.ScratchBase && "scratch layout diverged");
        (void)Scratch;
        const unsigned StressThreads = static_cast<unsigned>(
            RunRng.realIn(S.OccupancyLo, S.OccupancyHi) *
            static_cast<double>(MaxThreads));
        Stress->setUnits(stress::threadUnits(Chip, StressThreads));
        Mem.setCongestionSource(Stress.get());
      }

      Word *Regs = BS.RegSlab.data() + static_cast<size_t>(J) * NumSlots;
      const sim::RunResult Result =
          sim::runBatchProgram(B.BP, Chip, Mem, EC.rng(), BS, Regs, Cfg);
      assert(Result.completed() && "litmus execution must terminate");
      (void)Result;

      Word *FR = BS.FinalRegSlab.data() + static_cast<size_t>(J) * RegStride;
      Word *FM = BS.FinalMemSlab.data() + static_cast<size_t>(J) * MemStride;
      for (unsigned R = 0; R != B.NumRegs; ++R)
        FR[R] = Mem.hostRead(B.Results + R);
      for (unsigned L = 0; L != B.NumLocs; ++L)
        FM[L] = Mem.hostRead(B.Base + L * B.Delta);

      // evalForbidden over the slab stripes (conjunction; empty = never).
      bool IsWeak = !P.Forbidden.empty();
      for (const CondAtom &A : P.Forbidden) {
        const Word V = A.IsReg ? FR[A.Index] : FM[A.Index];
        if ((V == A.Value) == A.Negated) {
          IsWeak = false;
          break;
        }
      }
      Weak += IsWeak;
      if (PerRun)
        PerRun->push_back(IsWeak);
    }
  }
  return Weak;
}
