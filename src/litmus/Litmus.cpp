//===- litmus/Litmus.cpp - GPU litmus tests ----------------------------------===//

#include "litmus/Litmus.h"

#include "sim/Device.h"
#include "sim/ThreadContext.h"
#include "stress/StressSources.h"

#include <cassert>

using namespace gpuwmm;
using namespace gpuwmm::litmus;
using sim::Addr;
using sim::Kernel;
using sim::ThreadContext;
using sim::Word;

const char *litmus::litmusName(LitmusKind K) {
  switch (K) {
  case LitmusKind::MP:
    return "MP";
  case LitmusKind::LB:
    return "LB";
  case LitmusKind::SB:
    return "SB";
  case LitmusKind::R:
    return "R";
  case LitmusKind::S:
    return "S";
  case LitmusKind::TwoPlusTwoW:
    return "2+2W";
  }
  return "unknown";
}

namespace {

/// Start-phase jitter so the two threads overlap at varying offsets, as
/// occupancy and scheduling noise cause on real hardware.
constexpr unsigned PhaseJitter = 24;

// --- Message Passing (MP) ---------------------------------------------------
// T1: x <- 1; y <- 1     T2: r1 <- y; r2 <- x     weak: r1 = 1 && r2 = 0

Kernel mpWriter(ThreadContext &Ctx, Addr X, Addr Y, bool Fenced) {
  co_await Ctx.yield(1 + static_cast<unsigned>(Ctx.rand(PhaseJitter)));
  co_await Ctx.st(X, 1);
  if (Fenced)
    co_await Ctx.fence();
  co_await Ctx.st(Y, 1);
}

Kernel mpReader(ThreadContext &Ctx, Addr X, Addr Y, Addr R0, Addr R1,
                bool Fenced) {
  co_await Ctx.yield(1 + static_cast<unsigned>(Ctx.rand(PhaseJitter)));
  const Word A = co_await Ctx.ld(Y);
  if (Fenced)
    co_await Ctx.fence();
  const Word B = co_await Ctx.ld(X);
  co_await Ctx.st(R0, A);
  co_await Ctx.st(R1, B);
}

// --- Load Buffering (LB) ----------------------------------------------------
// T1: r1 <- x; y <- 1    T2: r2 <- y; x <- 1      weak: r1 = 1 && r2 = 1
//
// The load is issued split-phase: hardware may satisfy it after the
// program-order-later store has become visible, which is exactly the LB
// reordering. A fence forces completion before the store.

Kernel lbThread(ThreadContext &Ctx, Addr LoadFrom, Addr StoreTo, Addr ROut,
                bool Fenced) {
  co_await Ctx.yield(1 + static_cast<unsigned>(Ctx.rand(PhaseJitter)));
  const Word Ticket = co_await Ctx.ldAsync(LoadFrom);
  if (Fenced)
    co_await Ctx.fence();
  co_await Ctx.st(StoreTo, 1);
  const Word V = co_await Ctx.awaitLoad(Ticket);
  co_await Ctx.st(ROut, V);
}

// --- Store Buffering (SB) ---------------------------------------------------
// T1: x <- 1; r1 <- y    T2: y <- 1; r2 <- x      weak: r1 = 0 && r2 = 0

Kernel sbThread(ThreadContext &Ctx, Addr StoreTo, Addr LoadFrom, Addr ROut,
                bool Fenced) {
  co_await Ctx.yield(1 + static_cast<unsigned>(Ctx.rand(PhaseJitter)));
  co_await Ctx.st(StoreTo, 1);
  if (Fenced)
    co_await Ctx.fence();
  const Word V = co_await Ctx.ld(LoadFrom);
  co_await Ctx.st(ROut, V);
}

// --- R ----------------------------------------------------------------------
// T1: x <- 1; y <- 1    T2: y <- 2; r1 <- x
// weak: y = 2 (final) && r1 = 0
// (T2's write to y coherence-wins, yet T2 did not see T1's earlier x.)

Kernel rWriter(ThreadContext &Ctx, Addr X, Addr Y, bool Fenced) {
  co_await Ctx.yield(1 + static_cast<unsigned>(Ctx.rand(PhaseJitter)));
  co_await Ctx.st(X, 1);
  if (Fenced)
    co_await Ctx.fence();
  co_await Ctx.st(Y, 1);
}

Kernel rReader(ThreadContext &Ctx, Addr X, Addr Y, Addr ROut, bool Fenced) {
  co_await Ctx.yield(1 + static_cast<unsigned>(Ctx.rand(PhaseJitter)));
  co_await Ctx.st(Y, 2);
  if (Fenced)
    co_await Ctx.fence();
  const Word V = co_await Ctx.ld(X);
  co_await Ctx.st(ROut, V);
}

// --- S ----------------------------------------------------------------------
// T1: x <- 2; y <- 1    T2: r1 <- y; x <- 1
// weak: r1 = 1 && x = 2 (final)
// Forbidden by this model's issue-ordered per-location coherence.

Kernel sWriter(ThreadContext &Ctx, Addr X, Addr Y, bool Fenced) {
  co_await Ctx.yield(1 + static_cast<unsigned>(Ctx.rand(PhaseJitter)));
  co_await Ctx.st(X, 2);
  if (Fenced)
    co_await Ctx.fence();
  co_await Ctx.st(Y, 1);
}

Kernel sReader(ThreadContext &Ctx, Addr X, Addr Y, Addr ROut, bool Fenced) {
  co_await Ctx.yield(1 + static_cast<unsigned>(Ctx.rand(PhaseJitter)));
  const Word V = co_await Ctx.ld(Y);
  if (Fenced)
    co_await Ctx.fence();
  co_await Ctx.st(X, 1);
  co_await Ctx.st(ROut, V);
}

// --- 2+2W -------------------------------------------------------------------
// T1: x <- 1; y <- 2    T2: y <- 1; x <- 2
// weak: x = 1 && y = 1 (finals; both first writes coherence-last)
// Forbidden by this model's issue-ordered per-location coherence.

Kernel twoPlusTwoW(ThreadContext &Ctx, Addr First, Addr Second,
                   bool Fenced) {
  co_await Ctx.yield(1 + static_cast<unsigned>(Ctx.rand(PhaseJitter)));
  co_await Ctx.st(First, 1);
  if (Fenced)
    co_await Ctx.fence();
  co_await Ctx.st(Second, 2);
}

} // namespace

bool LitmusRunner::runOnce(const LitmusInstance &T, const MicroStress &S,
                           const RunOpts &Opts) {
  Rng RunRng = Master.fork(Execs);
  ++Execs;

  sim::Device Dev(Ctx.get(), Chip, RunRng.next());
  Dev.setSequentialMode(Opts.Sequential);
  Dev.setRandomiseThreads(Opts.Randomise);

  // x and y live in one allocation, delta words apart (T_d).
  const unsigned Delta = T.addressDelta();
  const Addr X = Dev.alloc(Delta + 1);
  const Addr Y = X + Delta;
  const Addr Results = Dev.alloc(2);

  // Scratchpad and stress; the scratchpad is a real allocation so stressed
  // locations occupy genuine banks downstream of x and y in the address
  // space (the paper cannot control this distance either and designs the
  // stress not to depend on it).
  std::unique_ptr<stress::SysStress> Stress;
  if (S.Enabled) {
    assert(!S.ScratchOffsets.empty() && "stress without locations");
    unsigned MaxOff = 0;
    for (unsigned Off : S.ScratchOffsets)
      MaxOff = std::max(MaxOff, Off);
    const Addr Scratch = Dev.alloc(MaxOff + Chip.PatchSizeWords);
    std::vector<Addr> Locs;
    Locs.reserve(S.ScratchOffsets.size());
    for (unsigned Off : S.ScratchOffsets)
      Locs.push_back(Scratch + Off);
    const unsigned MaxThreads = Chip.maxConcurrentThreads();
    const unsigned StressThreads = static_cast<unsigned>(
        RunRng.realIn(S.OccupancyLo, S.OccupancyHi) *
        static_cast<double>(MaxThreads));
    Stress = std::make_unique<stress::SysStress>(
        Chip, S.Seq, std::move(Locs),
        stress::threadUnits(Chip, StressThreads));
    Dev.setCongestionSource(Stress.get());
  }

  const bool Fenced = Opts.WithFences;
  sim::KernelFn Fn;
  switch (T.Kind) {
  case LitmusKind::MP:
    Fn = [=](ThreadContext &Ctx) -> Kernel {
      if (Ctx.blockIdx() == 0)
        return mpWriter(Ctx, X, Y, Fenced);
      return mpReader(Ctx, X, Y, Results, Results + 1, Fenced);
    };
    break;
  case LitmusKind::LB:
    Fn = [=](ThreadContext &Ctx) -> Kernel {
      if (Ctx.blockIdx() == 0)
        return lbThread(Ctx, X, Y, Results, Fenced);
      return lbThread(Ctx, Y, X, Results + 1, Fenced);
    };
    break;
  case LitmusKind::SB:
    Fn = [=](ThreadContext &Ctx) -> Kernel {
      if (Ctx.blockIdx() == 0)
        return sbThread(Ctx, X, Y, Results, Fenced);
      return sbThread(Ctx, Y, X, Results + 1, Fenced);
    };
    break;
  case LitmusKind::R:
    Fn = [=](ThreadContext &Ctx) -> Kernel {
      if (Ctx.blockIdx() == 0)
        return rWriter(Ctx, X, Y, Fenced);
      return rReader(Ctx, X, Y, Results, Fenced);
    };
    break;
  case LitmusKind::S:
    Fn = [=](ThreadContext &Ctx) -> Kernel {
      if (Ctx.blockIdx() == 0)
        return sWriter(Ctx, X, Y, Fenced);
      return sReader(Ctx, X, Y, Results, Fenced);
    };
    break;
  case LitmusKind::TwoPlusTwoW:
    Fn = [=](ThreadContext &Ctx) -> Kernel {
      if (Ctx.blockIdx() == 0)
        return twoPlusTwoW(Ctx, X, Y, Fenced);
      return twoPlusTwoW(Ctx, Y, X, Fenced);
    };
    break;
  }

  const sim::RunResult Result =
      Dev.run({/*GridDim=*/2, /*BlockDim=*/1}, Fn);
  assert(Result.completed() && "litmus execution must terminate");
  (void)Result;

  const Word R0 = Dev.read(Results);
  const Word R1 = Dev.read(Results + 1);
  const Word FinalX = Dev.read(X);
  const Word FinalY = Dev.read(Y);
  switch (T.Kind) {
  case LitmusKind::MP:
    return R0 == 1 && R1 == 0;
  case LitmusKind::LB:
    return R0 == 1 && R1 == 1;
  case LitmusKind::SB:
    return R0 == 0 && R1 == 0;
  case LitmusKind::R:
    return FinalY == 2 && R0 == 0;
  case LitmusKind::S:
    return R0 == 1 && FinalX == 2;
  case LitmusKind::TwoPlusTwoW:
    return FinalX == 1 && FinalY == 1;
  }
  return false;
}

unsigned LitmusRunner::countWeak(const LitmusInstance &T,
                                 const MicroStress &S, unsigned C,
                                 const RunOpts &Opts) {
  unsigned Weak = 0;
  for (unsigned I = 0; I != C; ++I)
    Weak += runOnce(T, S, Opts);
  return Weak;
}
