//===- litmus/Program.cpp - Litmus test IR and built-in catalog --------------===//

#include "litmus/Program.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace gpuwmm;
using namespace gpuwmm::litmus;
using sim::Word;

//===----------------------------------------------------------------------===//
// Program queries
//===----------------------------------------------------------------------===//

unsigned Program::numBlocks() const {
  unsigned Max = 0;
  for (const ProgThread &T : Threads)
    Max = std::max(Max, T.Block + 1);
  return Max;
}

unsigned Program::maxBlockThreads() const {
  std::vector<unsigned> Count(numBlocks(), 0);
  unsigned Max = 0;
  for (const ProgThread &T : Threads)
    Max = std::max(Max, ++Count[T.Block]);
  return Max;
}

int Program::findLocation(std::string_view N) const {
  for (size_t I = 0; I != Locations.size(); ++I)
    if (Locations[I] == N)
      return static_cast<int>(I);
  return -1;
}

int Program::findRegister(std::string_view N) const {
  for (size_t I = 0; I != Registers.size(); ++I)
    if (Registers[I] == N)
      return static_cast<int>(I);
  return -1;
}

bool Program::evalForbidden(const std::vector<Word> &Regs,
                            const std::vector<Word> &Mem) const {
  if (Forbidden.empty())
    return false;
  for (const CondAtom &A : Forbidden) {
    const Word V = A.IsReg ? Regs[A.Index] : Mem[A.Index];
    if ((V == A.Value) == A.Negated)
      return false;
  }
  return true;
}

std::string Program::validate() const {
  std::ostringstream Err;
  if (Name.empty())
    return "program has no name";
  if (Locations.empty())
    return "program declares no locations";
  if (Threads.empty())
    return "program has no threads";
  if (Init.size() != Locations.size())
    return "init vector size does not match the location count";

  // Unique, disjoint names: the forbidden clause resolves a bare name
  // against registers first, so a collision would shadow a location.
  for (size_t I = 0; I != Locations.size(); ++I)
    for (size_t J = I + 1; J != Locations.size(); ++J)
      if (Locations[I] == Locations[J]) {
        Err << "duplicate location '" << Locations[I] << "'";
        return Err.str();
      }
  for (size_t I = 0; I != Registers.size(); ++I) {
    for (size_t J = I + 1; J != Registers.size(); ++J)
      if (Registers[I] == Registers[J]) {
        Err << "duplicate register '" << Registers[I] << "'";
        return Err.str();
      }
    if (findLocation(Registers[I]) >= 0) {
      Err << "name '" << Registers[I]
          << "' is both a register and a location";
      return Err.str();
    }
  }

  // Each register is the destination of exactly one load, so its final
  // value is well-defined for the writeback and the forbidden clause.
  std::vector<unsigned> LoadsInto(Registers.size(), 0);
  for (size_t TI = 0; TI != Threads.size(); ++TI) {
    const ProgThread &T = Threads[TI];
    if (T.Ops.empty()) {
      Err << "thread " << TI << " has no ops";
      return Err.str();
    }
    // Registers with a pending split-phase load in this thread.
    std::vector<unsigned> Pending;
    for (const ProgOp &O : T.Ops) {
      const bool HasLoc = O.K == ProgOp::Kind::Store ||
                          O.K == ProgOp::Kind::Load ||
                          O.K == ProgOp::Kind::AsyncLoad ||
                          O.K == ProgOp::Kind::AtomicAdd;
      if (HasLoc && O.Loc >= Locations.size()) {
        Err << "thread " << TI << " references location index " << O.Loc
            << " out of range";
        return Err.str();
      }
      const bool HasReg = O.K == ProgOp::Kind::Load ||
                          O.K == ProgOp::Kind::AsyncLoad ||
                          O.K == ProgOp::Kind::AwaitLoad;
      if (HasReg && O.Reg >= Registers.size()) {
        Err << "thread " << TI << " references register index " << O.Reg
            << " out of range";
        return Err.str();
      }
      switch (O.K) {
      case ProgOp::Kind::Load:
        ++LoadsInto[O.Reg];
        break;
      case ProgOp::Kind::AsyncLoad:
        ++LoadsInto[O.Reg];
        Pending.push_back(O.Reg);
        break;
      case ProgOp::Kind::AwaitLoad: {
        const auto It = std::find(Pending.begin(), Pending.end(), O.Reg);
        if (It == Pending.end()) {
          Err << "thread " << TI << " awaits register '"
              << Registers[O.Reg] << "' with no pending split-phase load";
          return Err.str();
        }
        Pending.erase(It);
        break;
      }
      default:
        break;
      }
    }
    if (!Pending.empty()) {
      Err << "thread " << TI << " leaves split-phase load into '"
          << Registers[Pending.front()] << "' unawaited";
      return Err.str();
    }
  }
  for (size_t R = 0; R != Registers.size(); ++R)
    if (LoadsInto[R] != 1) {
      Err << "register '" << Registers[R] << "' is the destination of "
          << LoadsInto[R] << " loads (need exactly 1)";
      return Err.str();
    }

  for (const CondAtom &A : Forbidden) {
    const size_t Bound = A.IsReg ? Registers.size() : Locations.size();
    if (A.Index >= Bound) {
      Err << "forbidden clause references "
          << (A.IsReg ? "register" : "location") << " index " << A.Index
          << " out of range";
      return Err.str();
    }
  }
  if (PhaseJitter == 0)
    return "phase jitter must be positive";
  return "";
}

//===----------------------------------------------------------------------===//
// Built-in catalog
//===----------------------------------------------------------------------===//

namespace {

/// Incremental Program builder used only for the catalog definitions
/// below; declared names are resolved eagerly so the definitions read
/// like litmus listings.
class Builder {
public:
  Builder(std::string Name, std::string Doc,
          std::initializer_list<const char *> Locs) {
    P.Name = std::move(Name);
    P.Doc = std::move(Doc);
    for (const char *L : Locs)
      P.Locations.push_back(L);
    P.Init.assign(P.Locations.size(), 0);
  }

  Builder &thread(unsigned Block) {
    P.Threads.push_back({Block, {}});
    return *this;
  }

  Builder &st(const char *Loc, Word V) {
    ops().push_back(ProgOp::store(loc(Loc), V));
    return *this;
  }
  Builder &ld(const char *Reg, const char *Loc) {
    ops().push_back(ProgOp::load(reg(Reg), loc(Loc)));
    return *this;
  }
  Builder &ldAsync(const char *Reg, const char *Loc) {
    ops().push_back(ProgOp::asyncLoad(reg(Reg), loc(Loc)));
    return *this;
  }
  Builder &await(const char *Reg) {
    ops().push_back(ProgOp::awaitLoad(reg(Reg)));
    return *this;
  }
  Builder &optFence() {
    ops().push_back(ProgOp::optFence());
    return *this;
  }

  /// Forbidden conjunct over a register or location name.
  Builder &forbid(const char *N, Word V) {
    CondAtom A;
    const int R = P.findRegister(N);
    A.IsReg = R >= 0;
    A.Index = R >= 0 ? static_cast<unsigned>(R)
                     : static_cast<unsigned>(loc(N));
    A.Value = V;
    P.Forbidden.push_back(A);
    return *this;
  }

  Program build() { return std::move(P); }

private:
  std::vector<ProgOp> &ops() { return P.Threads.back().Ops; }

  unsigned loc(const char *N) {
    const int I = P.findLocation(N);
    assert(I >= 0 && "catalog entry references an undeclared location");
    return static_cast<unsigned>(I);
  }
  unsigned reg(const char *N) {
    const int I = P.findRegister(N);
    if (I >= 0)
      return static_cast<unsigned>(I);
    P.Registers.push_back(N);
    return static_cast<unsigned>(P.Registers.size() - 1);
  }

  Program P;
};

std::vector<Program> buildCatalog() {
  std::vector<Program> C;

  // The paper's Fig. 2 tuning set. Op shapes, block placement and the
  // forbidden outcomes mirror the original hand-written kernels exactly,
  // so the interpreter reproduces their executions bit-for-bit.
  C.push_back(Builder("MP", "message passing (Fig. 2)", {"x", "y"})
                  .thread(0).st("x", 1).optFence().st("y", 1)
                  .thread(1).ld("r0", "y").optFence().ld("r1", "x")
                  .forbid("r0", 1).forbid("r1", 0)
                  .build());
  C.push_back(Builder("LB", "load buffering (Fig. 2)", {"x", "y"})
                  .thread(0).ldAsync("r0", "x").optFence().st("y", 1)
                  .await("r0")
                  .thread(1).ldAsync("r1", "y").optFence().st("x", 1)
                  .await("r1")
                  .forbid("r0", 1).forbid("r1", 1)
                  .build());
  C.push_back(Builder("SB", "store buffering (Fig. 2)", {"x", "y"})
                  .thread(0).st("x", 1).optFence().ld("r0", "y")
                  .thread(1).st("y", 1).optFence().ld("r1", "x")
                  .forbid("r0", 0).forbid("r1", 0)
                  .build());

  // Further two-location shapes (Sec. 3.1's "new buggy idioms" axis). The
  // weak outcomes of S and 2+2W hinge on write-write reordering observed
  // through final memory states; the simulator's issue-ordered
  // per-location coherence forbids them (docs/litmus-format.md).
  C.push_back(Builder("R", "coherence-winning write vs. missed read",
                      {"x", "y"})
                  .thread(0).st("x", 1).optFence().st("y", 1)
                  .thread(1).st("y", 2).optFence().ld("r0", "x")
                  .forbid("y", 2).forbid("r0", 0)
                  .build());
  C.push_back(Builder("S", "write-write vs. read (model-forbidden)",
                      {"x", "y"})
                  .thread(0).st("x", 2).optFence().st("y", 1)
                  .thread(1).ld("r0", "y").optFence().st("x", 1)
                  .forbid("r0", 1).forbid("x", 2)
                  .build());
  C.push_back(Builder("2+2W", "double write-write (model-forbidden)",
                      {"x", "y"})
                  .thread(0).st("x", 1).optFence().st("y", 2)
                  .thread(1).st("y", 1).optFence().st("x", 2)
                  .forbid("x", 1).forbid("y", 1)
                  .build());

  // Classic multi-thread idioms. IRIW and WRC ride on split-phase loads
  // (the LB mechanism): the reader issues its first load asynchronously
  // and completes it after its second, so the two reads can be satisfied
  // against program order. ISA2, RWC and W+RWC are provokable with plain
  // in-order loads via delayed store-buffer drains, like MP and SB.
  C.push_back(Builder("IRIW", "independent reads of independent writes",
                      {"x", "y"})
                  .thread(0).st("x", 1)
                  .thread(1).st("y", 1)
                  .thread(2).ldAsync("r0", "x").optFence().ld("r1", "y")
                  .await("r0")
                  .thread(3).ldAsync("r2", "y").optFence().ld("r3", "x")
                  .await("r2")
                  .forbid("r0", 1).forbid("r1", 0).forbid("r2", 1)
                  .forbid("r3", 0)
                  .build());
  C.push_back(Builder("WRC", "write-to-read causality", {"x", "y"})
                  .thread(0).st("x", 1)
                  .thread(1).ld("r0", "x").optFence().st("y", 1)
                  .thread(2).ldAsync("r1", "y").optFence().ld("r2", "x")
                  .await("r1")
                  .forbid("r0", 1).forbid("r1", 1).forbid("r2", 0)
                  .build());
  C.push_back(Builder("ISA2", "three-thread message-passing chain",
                      {"x", "y", "z"})
                  .thread(0).st("x", 1).optFence().st("y", 1)
                  .thread(1).ld("r0", "y").optFence().st("z", 1)
                  .thread(2).ld("r1", "z").optFence().ld("r2", "x")
                  .forbid("r0", 1).forbid("r1", 1).forbid("r2", 0)
                  .build());
  C.push_back(Builder("RWC", "read-to-write causality", {"x", "y"})
                  .thread(0).st("x", 1)
                  .thread(1).ld("r0", "x").optFence().ld("r1", "y")
                  .thread(2).st("y", 1).optFence().ld("r2", "x")
                  .forbid("r0", 1).forbid("r1", 0).forbid("r2", 0)
                  .build());
  C.push_back(Builder("W+RWC", "write chain into read-to-write causality",
                      {"x", "y", "z"})
                  .thread(0).st("x", 1).optFence().st("z", 1)
                  .thread(1).ld("r0", "z").optFence().ld("r1", "y")
                  .thread(2).st("y", 1).optFence().ld("r2", "x")
                  .forbid("r0", 1).forbid("r1", 0).forbid("r2", 0)
                  .build());
  return C;
}

} // namespace

const std::vector<Program> &litmus::catalog() {
  static const std::vector<Program> C = buildCatalog();
  return C;
}

const Program *litmus::findCatalogProgram(std::string_view Name) {
  for (const Program &P : catalog())
    if (P.Name == Name)
      return &P;
  return nullptr;
}

std::vector<std::string> litmus::catalogNames() {
  std::vector<std::string> Names;
  for (const Program &P : catalog())
    Names.push_back(P.Name);
  return Names;
}

std::array<const Program *, 3> litmus::tuningPrograms() {
  return {findCatalogProgram("MP"), findCatalogProgram("LB"),
          findCatalogProgram("SB")};
}
