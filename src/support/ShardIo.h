//===- support/ShardIo.h - Durable record I/O primitives -------*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The storage primitives the sharded campaign fabric is built on
/// (DESIGN.md Sec. 16): CRC-framed append-only record logs with a
/// per-record fsync, and atomic write-then-rename file publication.
///
/// Crash model: a worker can die (SIGKILL, OOM, power loss) at any
/// instruction. Because every record is appended with one write() and
/// fsync'd before the append returns, the only damage a crash can cause
/// is a torn *tail* — a partial or corrupt final record — which readers
/// detect via the per-record CRC and truncate. Everything before the tail
/// is durable. Atomic writes (write temp, fsync, rename, fsync directory)
/// guarantee a published file is either absent or complete, never partial.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_SUPPORT_SHARDIO_H
#define GPUWMM_SUPPORT_SHARDIO_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gpuwmm {

/// CRC-32 (the standard reflected 0xEDB88320 polynomial) of \p Data.
uint32_t crc32(std::string_view Data);

/// Frames one record payload as a log line: 8 lowercase hex digits of
/// crc32(payload), a ':', the payload, '\n'. Payloads must not contain
/// newlines (the fabric's payloads are single-line JSON objects).
std::string frameRecord(std::string_view Payload);

/// The result of scanning a record log: every complete, CRC-valid record
/// in order, plus whether (and where) a torn tail was truncated.
struct FramedRecords {
  std::vector<std::string> Payloads;
  /// True when trailing bytes after the last valid record were not a
  /// complete, CRC-valid record — the signature of a crash mid-append.
  bool TornTail = false;
  /// Byte offset at which valid data ends (== text size when not torn).
  size_t ValidBytes = 0;
};

/// Scans \p Text as a sequence of framed records. Stops at the first
/// byte that does not begin a complete, CRC-valid record and reports the
/// remainder as a torn tail; under the append-only + fsync-per-record
/// discipline only the final record can ever be torn.
FramedRecords parseFramedRecords(std::string_view Text);

/// Reads all of \p Path into \p Out. False + \p Err on failure.
bool readFile(const std::string &Path, std::string &Out, std::string *Err);

/// Atomically publishes \p Contents at \p Path: writes "<Path>.tmp",
/// fsyncs it, renames it over \p Path, and fsyncs the parent directory.
/// A reader (or a crash) can only ever observe the old file, no file, or
/// the complete new file. False + \p Err on failure.
bool atomicWriteFile(const std::string &Path, std::string_view Contents,
                     std::string *Err);

/// An append-only log of CRC-framed records, fsync'd per append: once
/// append() returns true the record survives any crash.
class RecordLog {
public:
  RecordLog() = default;
  ~RecordLog();
  RecordLog(RecordLog &&O) noexcept;
  RecordLog &operator=(RecordLog &&O) noexcept;
  RecordLog(const RecordLog &) = delete;
  RecordLog &operator=(const RecordLog &) = delete;

  /// Creates \p Path exclusively (O_CREAT | O_EXCL): two workers racing
  /// for the same name cannot both win, so claiming a log file doubles as
  /// a lock-free shard-name allocator. Fsyncs the parent directory so the
  /// name itself is durable. nullopt + \p Err on failure; \p Exists is
  /// set when the failure was "already exists" (callers then try the
  /// next candidate name).
  static std::optional<RecordLog> createExclusive(const std::string &Path,
                                                  std::string *Err,
                                                  bool *Exists = nullptr);

  /// Appends one framed record and fsyncs. False + \p Err on failure.
  bool append(std::string_view Payload, std::string *Err);

  const std::string &path() const { return LogPath; }
  bool isOpen() const { return Fd >= 0; }

private:
  int Fd = -1;
  std::string LogPath;
};

} // namespace gpuwmm

#endif // GPUWMM_SUPPORT_SHARDIO_H
