//===- support/Table.cpp - Column-aligned text tables ----------------------===//

#include "support/Table.h"

#include <algorithm>
#include <cstdio>

using namespace gpuwmm;

void Table::addRow(std::vector<std::string> Row) {
  Row.resize(Headers.size());
  Rows.push_back(std::move(Row));
}

void Table::print(std::ostream &OS) const {
  std::vector<size_t> Widths(Headers.size());
  for (size_t C = 0; C != Headers.size(); ++C)
    Widths[C] = Headers[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C != Row.size(); ++C) {
      OS << Row[C];
      if (C + 1 == Row.size())
        break;
      OS << std::string(Widths[C] - Row[C].size() + 2, ' ');
    }
    OS << '\n';
  };

  PrintRow(Headers);
  size_t Total = 0;
  for (size_t C = 0; C != Widths.size(); ++C)
    Total += Widths[C] + (C + 1 == Widths.size() ? 0 : 2);
  OS << std::string(Total, '-') << '\n';
  for (const auto &Row : Rows)
    PrintRow(Row);
}

void Table::printCsv(std::ostream &OS) const {
  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C != Row.size(); ++C) {
      const std::string &Cell = Row[C];
      if (Cell.find(',') != std::string::npos)
        OS << '"' << Cell << '"';
      else
        OS << Cell;
      if (C + 1 != Row.size())
        OS << ',';
    }
    OS << '\n';
  };
  PrintRow(Headers);
  for (const auto &Row : Rows)
    PrintRow(Row);
}

std::string gpuwmm::formatDouble(double Value, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, Value);
  return Buf;
}

std::string gpuwmm::formatOverheadPercent(double Ratio) {
  const double Pct = (Ratio - 1.0) * 100.0;
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%+.0f%%", Pct);
  return Buf;
}
