//===- support/ThreadPool.cpp - Host-level parallel execution ----------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace gpuwmm;

unsigned ThreadPool::defaultJobs() {
  const unsigned HW = std::max(1u, std::thread::hardware_concurrency());
  if (const char *Env = std::getenv("GPUWMM_JOBS")) {
    char *End = nullptr;
    const long Jobs = std::strtol(Env, &End, 10);
    if (*Env != '\0' && *End == '\0' && Jobs > 0 && Jobs <= (1 << 16))
      return static_cast<unsigned>(Jobs);
    // Mirror the --jobs validation, but warn-and-fall-back rather than
    // exit: an environment variable should not be fatal to library users.
    std::fprintf(stderr,
                 "warning: ignoring invalid GPUWMM_JOBS='%s' (must be a "
                 "positive integer); using %u jobs\n",
                 Env, HW);
  }
  return HW;
}

ThreadPool::ThreadPool(unsigned Jobs)
    : NumJobs(Jobs == 0 ? defaultJobs() : Jobs) {
  Workers.reserve(NumJobs - 1);
  for (unsigned I = 1; I != NumJobs; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WorkReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::runBatch(const std::function<void(size_t)> &Body,
                          size_t N) {
  for (;;) {
    const size_t I = NextIndex.fetch_add(1, std::memory_order_relaxed);
    if (I >= N)
      return;
    Body(I);
  }
}

void ThreadPool::workerLoop() {
  uint64_t SeenGeneration = 0;
  std::unique_lock<std::mutex> Lock(Mutex);
  for (;;) {
    WorkReady.wait(Lock, [&] {
      return Stopping || Generation != SeenGeneration;
    });
    if (Stopping)
      return;
    SeenGeneration = Generation;
    // Small batches enrol only min(jobs, N) participants: a worker that
    // finds no slot left goes straight back to sleep and is never on the
    // submitting thread's critical path.
    if (SlotsLeft == 0)
      continue;
    --SlotsLeft;
    const std::function<void(size_t)> *B = Body;
    const size_t N = BatchSize;
    Lock.unlock();
    runBatch(*B, N);
    Lock.lock();
    // A batch ends only once every enrolled thread has drained the claim
    // counter, so a late-waking participant can never claim into the
    // next batch (and non-participants never touch the counter at all).
    if (--Pending == 0)
      BatchDone.notify_all();
  }
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Body) {
  if (N == 0)
    return;
  if (NumJobs == 1 || N == 1) {
    for (size_t I = 0; I != N; ++I)
      Body(I);
    return;
  }
  const size_t Participants = std::min<size_t>(NumJobs, N);
  std::unique_lock<std::mutex> Lock(Mutex);
  this->Body = &Body;
  BatchSize = N;
  NextIndex.store(0, std::memory_order_relaxed);
  Pending = Participants;
  SlotsLeft = Participants - 1; // The submitter takes one slot itself.
  ++Generation;
  WorkReady.notify_all();
  Lock.unlock();

  runBatch(Body, N);

  Lock.lock();
  if (--Pending != 0)
    BatchDone.wait(Lock, [&] { return Pending == 0; });
  this->Body = nullptr;
  BatchSize = 0;
}
