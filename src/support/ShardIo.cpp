//===- support/ShardIo.cpp - Durable record I/O primitives -------------------===//

#include "support/ShardIo.h"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace gpuwmm;

namespace {

/// The reflected CRC-32 table, built once.
const std::array<uint32_t, 256> &crcTable() {
  static const std::array<uint32_t, 256> Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I != 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K != 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  return Table;
}

void setErr(std::string *Err, const std::string &What) {
  if (Err)
    *Err = What + ": " + std::strerror(errno);
}

/// fsyncs the directory containing \p Path so a created/renamed name is
/// durable, not just the file contents.
bool fsyncParentDir(const std::string &Path, std::string *Err) {
  const size_t Slash = Path.find_last_of('/');
  const std::string Dir = Slash == std::string::npos
                              ? std::string(".")
                              : Path.substr(0, Slash == 0 ? 1 : Slash);
  const int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd < 0) {
    setErr(Err, "cannot open directory '" + Dir + "'");
    return false;
  }
  const bool Ok = ::fsync(Fd) == 0;
  if (!Ok)
    setErr(Err, "cannot fsync directory '" + Dir + "'");
  ::close(Fd);
  return Ok;
}

bool writeAll(int Fd, std::string_view Data, std::string *Err,
              const std::string &Path) {
  size_t Done = 0;
  while (Done != Data.size()) {
    const ssize_t N = ::write(Fd, Data.data() + Done, Data.size() - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      setErr(Err, "cannot write '" + Path + "'");
      return false;
    }
    Done += static_cast<size_t>(N);
  }
  return true;
}

/// Parses exactly 8 lowercase hex digits; false on any other character.
bool parseCrcHex(std::string_view Hex, uint32_t &Out) {
  if (Hex.size() != 8)
    return false;
  uint32_t V = 0;
  for (char C : Hex) {
    V <<= 4;
    if (C >= '0' && C <= '9')
      V |= static_cast<uint32_t>(C - '0');
    else if (C >= 'a' && C <= 'f')
      V |= static_cast<uint32_t>(C - 'a' + 10);
    else
      return false;
  }
  Out = V;
  return true;
}

} // namespace

uint32_t gpuwmm::crc32(std::string_view Data) {
  const auto &Table = crcTable();
  uint32_t C = 0xFFFFFFFFu;
  for (unsigned char B : Data)
    C = Table[(C ^ B) & 0xFFu] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

std::string gpuwmm::frameRecord(std::string_view Payload) {
  char Hex[9];
  std::snprintf(Hex, sizeof(Hex), "%08x", crc32(Payload));
  std::string Line;
  Line.reserve(Payload.size() + 10);
  Line += Hex;
  Line += ':';
  Line += Payload;
  Line += '\n';
  return Line;
}

FramedRecords gpuwmm::parseFramedRecords(std::string_view Text) {
  FramedRecords R;
  size_t Pos = 0;
  while (Pos != Text.size()) {
    const size_t Nl = Text.find('\n', Pos);
    if (Nl == std::string_view::npos)
      break; // Unterminated tail: torn.
    const std::string_view Line = Text.substr(Pos, Nl - Pos);
    uint32_t Crc = 0;
    if (Line.size() < 9 || Line[8] != ':' ||
        !parseCrcHex(Line.substr(0, 8), Crc))
      break; // Malformed framing: torn.
    const std::string_view Payload = Line.substr(9);
    if (crc32(Payload) != Crc)
      break; // Corrupt payload: torn.
    R.Payloads.emplace_back(Payload);
    Pos = Nl + 1;
  }
  R.ValidBytes = Pos;
  R.TornTail = Pos != Text.size();
  return R;
}

bool gpuwmm::readFile(const std::string &Path, std::string &Out,
                      std::string *Err) {
  const int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0) {
    setErr(Err, "cannot read '" + Path + "'");
    return false;
  }
  Out.clear();
  char Buf[1 << 16];
  for (;;) {
    const ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      setErr(Err, "cannot read '" + Path + "'");
      ::close(Fd);
      return false;
    }
    if (N == 0)
      break;
    Out.append(Buf, static_cast<size_t>(N));
  }
  ::close(Fd);
  return true;
}

bool gpuwmm::atomicWriteFile(const std::string &Path,
                             std::string_view Contents, std::string *Err) {
  const std::string Tmp = Path + ".tmp";
  const int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0) {
    setErr(Err, "cannot create '" + Tmp + "'");
    return false;
  }
  if (!writeAll(Fd, Contents, Err, Tmp) || ::fsync(Fd) != 0) {
    if (Err && Err->empty())
      setErr(Err, "cannot fsync '" + Tmp + "'");
    ::close(Fd);
    ::unlink(Tmp.c_str());
    return false;
  }
  ::close(Fd);
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    setErr(Err, "cannot rename '" + Tmp + "' to '" + Path + "'");
    ::unlink(Tmp.c_str());
    return false;
  }
  return fsyncParentDir(Path, Err);
}

RecordLog::~RecordLog() {
  if (Fd >= 0)
    ::close(Fd);
}

RecordLog::RecordLog(RecordLog &&O) noexcept
    : Fd(O.Fd), LogPath(std::move(O.LogPath)) {
  O.Fd = -1;
}

RecordLog &RecordLog::operator=(RecordLog &&O) noexcept {
  if (this != &O) {
    if (Fd >= 0)
      ::close(Fd);
    Fd = O.Fd;
    LogPath = std::move(O.LogPath);
    O.Fd = -1;
  }
  return *this;
}

std::optional<RecordLog> RecordLog::createExclusive(const std::string &Path,
                                                    std::string *Err,
                                                    bool *Exists) {
  if (Exists)
    *Exists = false;
  const int Fd =
      ::open(Path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_APPEND, 0644);
  if (Fd < 0) {
    if (Exists && errno == EEXIST)
      *Exists = true;
    setErr(Err, "cannot create '" + Path + "'");
    return std::nullopt;
  }
  if (!fsyncParentDir(Path, Err)) {
    ::close(Fd);
    return std::nullopt;
  }
  RecordLog Log;
  Log.Fd = Fd;
  Log.LogPath = Path;
  return Log;
}

bool RecordLog::append(std::string_view Payload, std::string *Err) {
  if (Fd < 0) {
    if (Err)
      *Err = "record log is not open";
    return false;
  }
  const std::string Line = frameRecord(Payload);
  if (!writeAll(Fd, Line, Err, LogPath))
    return false;
  if (::fsync(Fd) != 0) {
    setErr(Err, "cannot fsync '" + LogPath + "'");
    return false;
  }
  return true;
}
