//===- support/Options.h - Tiny command-line option parser -----*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny "--key=value" option parser plus the global experiment-scaling
/// knob (GPUWMM_SCALE) that lets users grow or shrink every experiment's
/// execution counts uniformly.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_SUPPORT_OPTIONS_H
#define GPUWMM_SUPPORT_OPTIONS_H

#include <cstdint>
#include <map>
#include <string>

namespace gpuwmm {

/// Parses "--key=value" and bare "--flag" arguments.
class Options {
public:
  Options(int Argc, char **Argv);

  bool has(const std::string &Key) const { return Values.count(Key) != 0; }

  /// Returns the integer value of \p Key, or \p Default when absent.
  int64_t getInt(const std::string &Key, int64_t Default) const;

  /// Returns the strictly positive integer value of \p Key, or \p Default
  /// when absent. When the option is present but zero, negative, not a
  /// number, or larger than \p Max (e.g. --jobs=0, --jobs=-3, --jobs=abc,
  /// or a value that would truncate when narrowed), prints a clear error
  /// to stderr and exits with status 2 instead of silently misbehaving.
  int64_t getPositiveInt(const std::string &Key, int64_t Default,
                         int64_t Max = INT64_MAX) const;

  /// Returns the double value of \p Key, or \p Default when absent.
  double getDouble(const std::string &Key, double Default) const;

  /// Returns the string value of \p Key, or \p Default when absent.
  std::string getString(const std::string &Key,
                        const std::string &Default) const;

private:
  std::map<std::string, std::string> Values;
};

/// Returns the global experiment scale factor.
///
/// Reads GPUWMM_SCALE from the environment (default 1.0). Experiment
/// binaries multiply their execution counts by this value, so
/// GPUWMM_SCALE=4 approaches the paper's counts and GPUWMM_SCALE=0.25 gives
/// a smoke-test run.
double experimentScale();

/// Scales \p Count by experimentScale(), with a floor of \p Min.
unsigned scaledCount(unsigned Count, unsigned Min = 1);

} // namespace gpuwmm

#endif // GPUWMM_SUPPORT_OPTIONS_H
