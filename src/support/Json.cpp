//===- support/Json.cpp - Minimal JSON reader --------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

using namespace gpuwmm;

uint64_t JsonValue::asUInt64() const {
  return std::strtoull(Text.c_str(), nullptr, 10);
}

int64_t JsonValue::asInt64() const {
  return std::strtoll(Text.c_str(), nullptr, 10);
}

const JsonValue *JsonValue::find(std::string_view Key) const {
  for (const auto &[Name, Value] : Members)
    if (Name == Key)
      return &Value;
  return nullptr;
}

namespace gpuwmm {

/// Recursive-descent parser over a string_view with a depth cap (our
/// artifacts nest two levels; 64 is head-room, not a limit anyone hits).
class JsonParser {
public:
  JsonParser(std::string_view Text, std::string *Err)
      : Text(Text), Err(Err) {}

  std::optional<JsonValue> parse() {
    JsonValue V;
    if (!parseValue(V, 0))
      return std::nullopt;
    skipWs();
    if (Pos != Text.size()) {
      fail("trailing characters after JSON document");
      return std::nullopt;
    }
    return V;
  }

private:
  static constexpr unsigned MaxDepth = 64;

  void fail(const std::string &What) {
    if (Err && Err->empty())
      *Err = What + " at offset " + std::to_string(Pos);
  }

  void skipWs() {
    while (Pos != Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool expect(char C) {
    if (Pos == Text.size() || Text[Pos] != C) {
      fail(std::string("expected '") + C + "'");
      return false;
    }
    ++Pos;
    return true;
  }

  bool parseValue(JsonValue &Out, unsigned Depth) {
    if (Depth > MaxDepth) {
      fail("JSON nested too deeply");
      return false;
    }
    skipWs();
    if (Pos == Text.size()) {
      fail("unexpected end of input");
      return false;
    }
    switch (Text[Pos]) {
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    case '"':
      Out.K = JsonValue::Kind::String;
      return parseString(Out.Text);
    case 't':
    case 'f':
      return parseKeyword(Out);
    case 'n':
      return parseKeyword(Out);
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(JsonValue &Out, unsigned Depth) {
    Out.K = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipWs();
    if (Pos != Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      std::string Key;
      if (Pos == Text.size() || Text[Pos] != '"') {
        fail("expected object key string");
        return false;
      }
      if (!parseString(Key))
        return false;
      skipWs();
      if (!expect(':'))
        return false;
      JsonValue V;
      if (!parseValue(V, Depth + 1))
        return false;
      Out.Members.emplace_back(std::move(Key), std::move(V));
      skipWs();
      if (Pos != Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      return expect('}');
    }
  }

  bool parseArray(JsonValue &Out, unsigned Depth) {
    Out.K = JsonValue::Kind::Array;
    ++Pos; // '['
    skipWs();
    if (Pos != Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      JsonValue V;
      if (!parseValue(V, Depth + 1))
        return false;
      Out.Items.push_back(std::move(V));
      skipWs();
      if (Pos != Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      return expect(']');
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // '"'
    Out.clear();
    while (Pos != Text.size()) {
      const char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C == '\\') {
        if (Pos + 1 == Text.size()) {
          fail("unterminated escape");
          return false;
        }
        const char E = Text[Pos + 1];
        Pos += 2;
        switch (E) {
        case '"':  Out += '"';  break;
        case '\\': Out += '\\'; break;
        case '/':  Out += '/';  break;
        case 'b':  Out += '\b'; break;
        case 'f':  Out += '\f'; break;
        case 'n':  Out += '\n'; break;
        case 'r':  Out += '\r'; break;
        case 't':  Out += '\t'; break;
        case 'u': {
          if (Pos + 4 > Text.size()) {
            fail("truncated \\u escape");
            return false;
          }
          unsigned V = 0;
          for (unsigned I = 0; I != 4; ++I) {
            const char H = Text[Pos + I];
            V <<= 4;
            if (H >= '0' && H <= '9')
              V |= static_cast<unsigned>(H - '0');
            else if (H >= 'a' && H <= 'f')
              V |= static_cast<unsigned>(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              V |= static_cast<unsigned>(H - 'A' + 10);
            else {
              fail("bad \\u escape");
              return false;
            }
          }
          Pos += 4;
          // Our writers only escape control characters; decode the
          // BMP code point as UTF-8.
          if (V < 0x80) {
            Out += static_cast<char>(V);
          } else if (V < 0x800) {
            Out += static_cast<char>(0xC0 | (V >> 6));
            Out += static_cast<char>(0x80 | (V & 0x3F));
          } else {
            Out += static_cast<char>(0xE0 | (V >> 12));
            Out += static_cast<char>(0x80 | ((V >> 6) & 0x3F));
            Out += static_cast<char>(0x80 | (V & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
          return false;
        }
        continue;
      }
      Out += C;
      ++Pos;
    }
    fail("unterminated string");
    return false;
  }

  bool parseKeyword(JsonValue &Out) {
    const std::string_view Rest = Text.substr(Pos);
    if (Rest.substr(0, 4) == "true") {
      Out.K = JsonValue::Kind::Bool;
      Out.BoolVal = true;
      Pos += 4;
      return true;
    }
    if (Rest.substr(0, 5) == "false") {
      Out.K = JsonValue::Kind::Bool;
      Out.BoolVal = false;
      Pos += 5;
      return true;
    }
    if (Rest.substr(0, 4) == "null") {
      Out.K = JsonValue::Kind::Null;
      Pos += 4;
      return true;
    }
    fail("unknown keyword");
    return false;
  }

  bool parseNumber(JsonValue &Out) {
    const size_t Start = Pos;
    if (Pos != Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos != Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start ||
        !std::isdigit(static_cast<unsigned char>(Text[Start == Pos ? Start
                                                      : Pos - 1]))) {
      fail("malformed number");
      return false;
    }
    // Must start with a digit after the optional sign.
    const size_t DigitAt = Text[Start] == '-' ? Start + 1 : Start;
    if (DigitAt >= Pos ||
        !std::isdigit(static_cast<unsigned char>(Text[DigitAt]))) {
      fail("malformed number");
      return false;
    }
    Out.K = JsonValue::Kind::Number;
    Out.Text.assign(Text.substr(Start, Pos - Start));
    return true;
  }

  std::string_view Text;
  std::string *Err;
  size_t Pos = 0;
};

} // namespace gpuwmm

std::optional<JsonValue> gpuwmm::parseJson(std::string_view Text,
                                           std::string *Err) {
  if (Err)
    Err->clear();
  return JsonParser(Text, Err).parse();
}

std::string gpuwmm::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':  Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n";  break;
    case '\r': Out += "\\r";  break;
    case '\t': Out += "\\t";  break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}
