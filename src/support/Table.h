//===- support/Table.h - Column-aligned text tables ------------*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal column-aligned text table used by the benchmark binaries to
/// print the paper's tables and figure data (plus a CSV emitter for
/// machine-readable output).
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_SUPPORT_TABLE_H
#define GPUWMM_SUPPORT_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace gpuwmm {

/// Accumulates rows of string cells and renders them with aligned columns.
class Table {
public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> Headers)
      : Headers(std::move(Headers)) {}

  /// Appends one row; the row is padded or truncated to the header width.
  void addRow(std::vector<std::string> Row);

  /// Renders with space-aligned columns and a rule under the header.
  void print(std::ostream &OS) const;

  /// Renders as comma-separated values (cells containing commas are quoted).
  void printCsv(std::ostream &OS) const;

  size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

/// Formats a double with \p Decimals fractional digits.
std::string formatDouble(double Value, int Decimals = 2);

/// Formats a ratio as a signed percentage overhead, e.g. 1.45 -> "+45%".
std::string formatOverheadPercent(double Ratio);

} // namespace gpuwmm

#endif // GPUWMM_SUPPORT_TABLE_H
