//===- support/Suggest.cpp - "did you mean" suggestions ----------------------===//

#include "support/Suggest.h"

#include <algorithm>
#include <cctype>

using namespace gpuwmm;

namespace {

std::string lowered(const std::string &S) {
  std::string L = S;
  std::transform(L.begin(), L.end(), L.begin(), [](unsigned char C) {
    return static_cast<char>(std::tolower(C));
  });
  return L;
}

} // namespace

unsigned gpuwmm::editDistance(const std::string &RawA,
                              const std::string &RawB) {
  const std::string A = lowered(RawA), B = lowered(RawB);
  std::vector<unsigned> Row(B.size() + 1);
  for (size_t J = 0; J <= B.size(); ++J)
    Row[J] = static_cast<unsigned>(J);
  for (size_t I = 1; I <= A.size(); ++I) {
    unsigned Diag = Row[0];
    Row[0] = static_cast<unsigned>(I);
    for (size_t J = 1; J <= B.size(); ++J) {
      const unsigned Sub = Diag + (A[I - 1] != B[J - 1]);
      Diag = Row[J];
      Row[J] = std::min({Row[J] + 1, Row[J - 1] + 1, Sub});
    }
  }
  return Row[B.size()];
}

std::vector<std::string>
gpuwmm::closeMatches(const std::string &Given,
                     const std::vector<std::string> &Candidates) {
  constexpr unsigned MaxDistance = 2;
  unsigned Best = MaxDistance + 1;
  std::vector<std::string> Matches;
  for (const std::string &C : Candidates) {
    const unsigned D = editDistance(Given, C);
    if (D > MaxDistance || D > Best)
      continue;
    if (D < Best) {
      Best = D;
      Matches.clear();
    }
    Matches.push_back(C);
  }
  return Matches;
}

std::string gpuwmm::suggestClause(const std::string &Given,
                                  const std::vector<std::string> &Candidates) {
  const std::vector<std::string> Matches = closeMatches(Given, Candidates);
  if (Matches.empty())
    return "";
  std::string Clause = " (did you mean ";
  for (size_t I = 0; I != Matches.size(); ++I) {
    if (I)
      Clause += I + 1 == Matches.size() ? " or " : ", ";
    Clause += "'" + Matches[I] + "'";
  }
  Clause += "?)";
  return Clause;
}
