//===- support/ThreadPool.h - Host-level parallel execution ----*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple shared-queue thread pool driving index-space parallel loops.
///
/// The paper's empirical pipeline is embarrassingly parallel: Tab. 5 alone
/// is a chip x environment x application grid of independent cells, and
/// every tuning sweep, fence-insertion trial and fuzzing batch decomposes
/// the same way. The pool runs such index spaces across worker threads.
///
/// Determinism contract (see DESIGN.md Sec. 11): callers must make each
/// index's work a pure function of per-index inputs — in this codebase,
/// an RNG stream derived via Rng::deriveStream — and write results only to
/// the index's own slot. Under that discipline results are bit-identical
/// for every job count, so `--jobs` is purely a wall-clock knob.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_SUPPORT_THREADPOOL_H
#define GPUWMM_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gpuwmm {

/// A fixed-size pool of worker threads executing one parallel loop at a
/// time. Workers pull indices from a shared atomic counter (a shared
/// queue of indices, without the queue allocation); the submitting thread
/// participates too, so `ThreadPool(1)` spawns no threads at all and runs
/// every loop inline — the serial reference the determinism tests compare
/// against.
class ThreadPool {
public:
  /// Creates a pool executing loops on \p Jobs threads (including the
  /// caller). Jobs == 0 means defaultJobs().
  explicit ThreadPool(unsigned Jobs = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// The number of threads loops run on (>= 1).
  unsigned jobs() const { return NumJobs; }

  /// Runs Body(0) .. Body(N-1), each exactly once, distributed over the
  /// pool. Blocks until all indices have completed. Body must not throw
  /// and must not call parallelFor on the same pool (no nesting). With
  /// jobs() == 1 or N <= 1 the loop runs inline on the caller.
  void parallelFor(size_t N, const std::function<void(size_t)> &Body);

  /// The default job count: the GPUWMM_JOBS environment variable when set
  /// to a positive integer, otherwise std::thread::hardware_concurrency()
  /// (with a floor of 1).
  static unsigned defaultJobs();

private:
  void workerLoop();
  void runBatch(const std::function<void(size_t)> &Body, size_t N);

  const unsigned NumJobs;
  std::vector<std::thread> Workers;

  // Batch state, published under Mutex; indices are claimed lock-free.
  std::mutex Mutex;
  std::condition_variable WorkReady;
  std::condition_variable BatchDone;
  const std::function<void(size_t)> *Body = nullptr;
  size_t BatchSize = 0;
  std::atomic<size_t> NextIndex{0};
  size_t Pending = 0;   ///< Enrolled threads still draining this batch.
  size_t SlotsLeft = 0; ///< Worker enrolment slots left: min(jobs, N) - 1.
  uint64_t Generation = 0; ///< Bumped per batch so workers wake exactly once.
  bool Stopping = false;
};

/// Null-tolerant loop dispatch: every layer that takes an optional pool
/// funnels through this one helper, so serial fallback behaviour cannot
/// drift between call sites.
inline void parallelFor(ThreadPool *Pool, size_t N,
                        const std::function<void(size_t)> &Body) {
  if (Pool) {
    Pool->parallelFor(N, Body);
    return;
  }
  for (size_t I = 0; I != N; ++I)
    Body(I);
}

} // namespace gpuwmm

#endif // GPUWMM_SUPPORT_THREADPOOL_H
