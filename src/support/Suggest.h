//===- support/Suggest.h - "did you mean" suggestions -----------*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Close-match suggestions for mistyped command-line names (litmus tests,
/// chips, ...): case-insensitive edit distance with a small threshold.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_SUPPORT_SUGGEST_H
#define GPUWMM_SUPPORT_SUGGEST_H

#include <string>
#include <vector>

namespace gpuwmm {

/// Levenshtein distance between \p A and \p B, case-insensitive.
unsigned editDistance(const std::string &A, const std::string &B);

/// The candidates closest to \p Given within a case-insensitive edit
/// distance of 2 (ties included, candidate order preserved). Empty when
/// nothing is close.
std::vector<std::string>
closeMatches(const std::string &Given,
             const std::vector<std::string> &Candidates);

/// Formats \p closeMatches as " (did you mean 'A' or 'B'?)", or "" when
/// nothing is close — ready to append to an unknown-name error.
std::string suggestClause(const std::string &Given,
                          const std::vector<std::string> &Candidates);

} // namespace gpuwmm

#endif // GPUWMM_SUPPORT_SUGGEST_H
