//===- support/Options.cpp - Tiny command-line option parser ---------------===//

#include "support/Options.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string_view>

using namespace gpuwmm;

Options::Options(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    if (Arg.substr(0, 2) != "--")
      continue;
    Arg.remove_prefix(2);
    const size_t Eq = Arg.find('=');
    if (Eq == std::string_view::npos)
      Values.insert_or_assign(std::string(Arg), std::string("1"));
    else
      Values.insert_or_assign(std::string(Arg.substr(0, Eq)),
                              std::string(Arg.substr(Eq + 1)));
  }
}

int64_t Options::getInt(const std::string &Key, int64_t Default) const {
  const auto It = Values.find(Key);
  if (It == Values.end())
    return Default;
  return std::strtoll(It->second.c_str(), nullptr, 10);
}

int64_t Options::getPositiveInt(const std::string &Key, int64_t Default,
                                int64_t Max) const {
  const auto It = Values.find(Key);
  if (It == Values.end())
    return Default;
  const std::string &Text = It->second;
  errno = 0;
  char *End = nullptr;
  const long long Parsed = std::strtoll(Text.c_str(), &End, 10);
  if (Text.empty() || End != Text.c_str() + Text.size() || errno == ERANGE ||
      Parsed <= 0 || Parsed > Max) {
    std::fprintf(stderr,
                 "error: --%s must be a positive integer no larger than "
                 "%lld (got '%s')\n",
                 Key.c_str(), static_cast<long long>(Max), Text.c_str());
    std::exit(2);
  }
  return Parsed;
}

double Options::getDouble(const std::string &Key, double Default) const {
  const auto It = Values.find(Key);
  if (It == Values.end())
    return Default;
  return std::strtod(It->second.c_str(), nullptr);
}

std::string Options::getString(const std::string &Key,
                               const std::string &Default) const {
  const auto It = Values.find(Key);
  return It == Values.end() ? Default : It->second;
}

double gpuwmm::experimentScale() {
  const char *Env = std::getenv("GPUWMM_SCALE");
  if (!Env)
    return 1.0;
  const double Scale = std::strtod(Env, nullptr);
  return Scale > 0.0 ? Scale : 1.0;
}

unsigned gpuwmm::scaledCount(unsigned Count, unsigned Min) {
  const double Scaled = static_cast<double>(Count) * experimentScale();
  const auto Result = static_cast<unsigned>(Scaled);
  return std::max(Result, Min);
}
