//===- support/Statistics.h - Small statistics helpers ---------*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Summary statistics (mean, median, percentiles) used by the experiment
/// harnesses when reporting tables and figures.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_SUPPORT_STATISTICS_H
#define GPUWMM_SUPPORT_STATISTICS_H

#include <cstddef>
#include <vector>

namespace gpuwmm {

/// Summary of a sample of doubles.
struct SampleSummary {
  size_t Count = 0;
  double Min = 0.0;
  double Max = 0.0;
  double Mean = 0.0;
  double Median = 0.0;
};

/// Returns the arithmetic mean of \p Values (0 for an empty sample).
double mean(const std::vector<double> &Values);

/// Returns the \p Q quantile (0 <= Q <= 1) of \p Values using linear
/// interpolation between order statistics. Returns 0 for an empty sample.
double quantile(std::vector<double> Values, double Q);

/// Returns the median of \p Values (0 for an empty sample).
double median(std::vector<double> Values);

/// Computes all summary fields for \p Values.
SampleSummary summarize(const std::vector<double> &Values);

} // namespace gpuwmm

#endif // GPUWMM_SUPPORT_STATISTICS_H
