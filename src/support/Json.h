//===- support/Json.h - Minimal JSON reader --------------------*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dependency-free JSON reader for the campaign fabric's own
/// artifacts (shard records and manifests; DESIGN.md Sec. 16). The
/// writers in this codebase emit the values, the readers here parse them
/// back — round-tripping our own output, not arbitrary JSON, is the
/// contract. Numbers keep their raw text so 64-bit seeds survive without
/// a lossy trip through double.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_SUPPORT_JSON_H
#define GPUWMM_SUPPORT_JSON_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gpuwmm {

/// One parsed JSON value. Objects preserve member order.
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return K; }
  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }

  /// Valid for Kind::Bool only.
  bool asBool() const { return BoolVal; }

  /// Valid for Kind::Number: the untouched numeric text.
  const std::string &numberText() const { return Text; }
  /// Number as uint64 (seeds); asserts the kind, saturates never — the
  /// writers only emit values that fit.
  uint64_t asUInt64() const;
  int64_t asInt64() const;

  /// Valid for Kind::String: the unescaped character data.
  const std::string &asString() const { return Text; }

  /// Valid for Kind::Array.
  const std::vector<JsonValue> &items() const { return Items; }

  /// Valid for Kind::Object: members in source order.
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Members;
  }
  /// Object member by key; null when absent (or not an object).
  const JsonValue *find(std::string_view Key) const;

private:
  friend class JsonParser;
  Kind K = Kind::Null;
  bool BoolVal = false;
  std::string Text; ///< Number text or unescaped string data.
  std::vector<JsonValue> Items;
  std::vector<std::pair<std::string, JsonValue>> Members;
};

/// Parses \p Text as one JSON document (trailing whitespace allowed,
/// trailing garbage rejected). nullopt + \p Err on malformed input.
std::optional<JsonValue> parseJson(std::string_view Text, std::string *Err);

/// Escapes \p S for embedding in a JSON string literal (quotes, backslash
/// and control characters; the writers' names never need more).
std::string jsonEscape(std::string_view S);

} // namespace gpuwmm

#endif // GPUWMM_SUPPORT_JSON_H
