//===- support/Statistics.cpp - Small statistics helpers ------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace gpuwmm;

double gpuwmm::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double gpuwmm::quantile(std::vector<double> Values, double Q) {
  assert(Q >= 0.0 && Q <= 1.0 && "quantile Q must lie in [0, 1]");
  if (Values.empty())
    return 0.0;
  std::sort(Values.begin(), Values.end());
  const double Pos = Q * static_cast<double>(Values.size() - 1);
  const size_t Lo = static_cast<size_t>(std::floor(Pos));
  const size_t Hi = static_cast<size_t>(std::ceil(Pos));
  if (Lo == Hi)
    return Values[Lo];
  const double Frac = Pos - static_cast<double>(Lo);
  return Values[Lo] * (1.0 - Frac) + Values[Hi] * Frac;
}

double gpuwmm::median(std::vector<double> Values) {
  return quantile(std::move(Values), 0.5);
}

SampleSummary gpuwmm::summarize(const std::vector<double> &Values) {
  SampleSummary S;
  S.Count = Values.size();
  if (Values.empty())
    return S;
  S.Min = *std::min_element(Values.begin(), Values.end());
  S.Max = *std::max_element(Values.begin(), Values.end());
  S.Mean = mean(Values);
  S.Median = median(Values);
  return S;
}
