//===- support/Rng.h - Deterministic random number generation --*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic pseudo-random number generator
/// (xoshiro256**) used throughout the simulator and the experiment
/// harnesses.  Every experiment derives its generators from a master seed so
/// that all results in this repository are exactly reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_SUPPORT_RNG_H
#define GPUWMM_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace gpuwmm {

/// xoshiro256** generator with splitmix64 seeding.
///
/// The generator supports deterministic forking (\ref fork) so that
/// independent experiment runs draw from statistically independent streams
/// while remaining a pure function of (master seed, stream id).
class Rng {
public:
  /// Seeds the generator from a single 64-bit value via splitmix64.
  explicit Rng(uint64_t Seed) { reseed(Seed); }

  /// Re-seeds in place (see constructor).
  void reseed(uint64_t Seed) {
    SeedMaterial = Seed;
    uint64_t X = Seed;
    for (uint64_t &Word : State)
      Word = splitmix64(X);
  }

  /// Returns the next raw 64-bit output.
  uint64_t next() {
    const uint64_t Result = rotl(State[1] * 5, 7) * 9;
    const uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Returns a uniform integer in [0, Bound). \p Bound must be non-zero.
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "below() requires a non-zero bound");
    // Debiased multiply-shift (Lemire). The bias for our bounds (tiny
    // relative to 2^64) is negligible, so the simple variant suffices.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * Bound) >> 64);
  }

  /// Returns a uniform integer in the inclusive range [Lo, Hi].
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "range() requires Lo <= Hi");
    return Lo + static_cast<int64_t>(
                    below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns a uniform double in [0, 1).
  double real() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns a uniform double in [Lo, Hi).
  double realIn(double Lo, double Hi) { return Lo + (Hi - Lo) * real(); }

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool chance(double P) {
    if (P <= 0.0)
      return false;
    if (P >= 1.0)
      return true;
    return real() < P;
  }

  /// Fisher-Yates shuffle of \p Values.
  template <typename T> void shuffle(std::vector<T> &Values) {
    for (size_t I = Values.size(); I > 1; --I)
      std::swap(Values[I - 1], Values[below(I)]);
  }

  /// Returns a deterministic child generator for stream \p StreamId.
  ///
  /// fork(S) depends only on this generator's seed material and \p StreamId,
  /// never on how many numbers have been drawn, so run K of an experiment is
  /// reproducible in isolation.
  Rng fork(uint64_t StreamId) const {
    return Rng(deriveStream(SeedMaterial, StreamId));
  }

  /// Derives the seed of independent stream \p StreamIndex of \p BaseSeed.
  ///
  /// A pure function (SplitMix-style double avalanche), so streams can be
  /// instantiated in any order, on any thread, without shared state: this
  /// is the primitive behind the parallel engine's determinism contract
  /// (DESIGN.md Sec. 11). Distinct (BaseSeed, StreamIndex) pairs yield
  /// decorrelated generators; unlike `Seed + I`-style offsets, nearby
  /// indices share no structure. Layers compose it hierarchically, e.g.
  /// deriveStream(deriveStream(Seed, Cell), Run).
  static uint64_t deriveStream(uint64_t BaseSeed, uint64_t StreamIndex) {
    // Whiten the base first so BaseSeed pairs that differ only in low bits
    // (common for user-chosen seeds) land in unrelated stream families,
    // then mix the stream index through a second avalanche round.
    uint64_t X = BaseSeed;
    const uint64_t Whitened = splitmix64(X);
    X = Whitened ^ (0x9e3779b97f4a7c15ULL * (StreamIndex + 1));
    return splitmix64(X);
  }

  /// Draws K distinct values from [0, Bound) in selection order.
  std::vector<unsigned> sampleDistinct(unsigned K, unsigned Bound) {
    assert(K <= Bound && "cannot sample more values than the universe holds");
    std::vector<unsigned> Universe(Bound);
    for (unsigned I = 0; I != Bound; ++I)
      Universe[I] = I;
    // Partial Fisher-Yates: the first K slots are the sample.
    for (unsigned I = 0; I != K; ++I)
      std::swap(Universe[I], Universe[I + below(Bound - I)]);
    Universe.resize(K);
    return Universe;
  }

private:
  static uint64_t splitmix64(uint64_t &X) {
    X += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = X;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
  uint64_t SeedMaterial = 0;
};

} // namespace gpuwmm

#endif // GPUWMM_SUPPORT_RNG_H
