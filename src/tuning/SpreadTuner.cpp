//===- tuning/SpreadTuner.cpp - Stress-spread selection ----------------------===//

#include "tuning/SpreadTuner.h"

#include <cassert>

using namespace gpuwmm;
using namespace gpuwmm::tuning;
using litmus::LitmusRunner;

std::vector<SpreadScore> SpreadTuner::rankAll(unsigned PatchSize,
                                              stress::AccessSequence Seq,
                                              const Config &Cfg,
                                              ThreadPool *Pool) {
  assert(PatchSize > 0 && "patch size required");
  std::vector<unsigned> Distances = Cfg.Distances;
  if (Distances.empty())
    Distances = {PatchSize, 2 * PatchSize, 3 * PatchSize,
                 3 * PatchSize + PatchSize / 2};

  std::vector<SpreadScore> Ranked(Cfg.MaxSpread);
  gpuwmm::parallelFor(Pool, Cfg.MaxSpread, [&](size_t I) {
    const unsigned M = static_cast<unsigned>(I) + 1;
    SpreadScore &Score = Ranked[I];
    Score.Spread = M;
    // Independent streams per spread: one for the litmus executions, one
    // for the random region subsets.
    const uint64_t SpreadSeed = Rng::deriveStream(Seed, I);
    LitmusRunner Runner(Chip, Rng::deriveStream(SpreadSeed, 0));
    Runner.setBatchWidth(Cfg.BatchWidth);
    Rng SubsetRng(Rng::deriveStream(SpreadSeed, 1));
    for (size_t K = 0; K != Cfg.Tests.size(); ++K) {
      uint64_t Total = 0;
      for (unsigned D : Distances) {
        for (unsigned C = 0; C != Cfg.Executions; ++C) {
          // A fresh random m-subset of regions per execution, as in the
          // paper's ⟨T_d, σ@Lm⟩ tests.
          std::vector<unsigned> Offsets;
          for (unsigned Region : SubsetRng.sampleDistinct(M, Cfg.MaxSpread))
            Offsets.push_back(Region * PatchSize);
          const auto S =
              LitmusRunner::MicroStress::atAll(Seq, std::move(Offsets));
          Total += Runner.countWeak(*Cfg.Tests[K], D, S, 1);
        }
      }
      Score.Scores[K] = Total;
    }
  });
  Execs += static_cast<uint64_t>(Cfg.MaxSpread) * Cfg.Tests.size() *
           Distances.size() * Cfg.Executions;
  return Ranked;
}

unsigned SpreadTuner::selectBest(const std::vector<SpreadScore> &Ranked) {
  std::vector<Objectives> Scores;
  Scores.reserve(Ranked.size());
  for (const SpreadScore &S : Ranked)
    Scores.push_back(S.Scores);
  const size_t Winner = selectParetoWinner(Scores);

  // Engineering tie-break beyond the paper: when a smaller spread's total
  // score is statistically indistinguishable from the Pareto winner's
  // (within ~18%), prefer the smaller spread — fewer stressed regions for
  // the same effectiveness. The paper's spread curves are shallow around
  // the optimum (Fig. 4), so without this the sampled winner wobbles
  // between adjacent spreads.
  auto Total = [](const Objectives &O) { return O[0] + O[1] + O[2]; };
  const uint64_t WinnerTotal = Total(Scores[Winner]);
  size_t Best = Winner;
  for (size_t I = 0; I != Ranked.size(); ++I) {
    if (Ranked[I].Spread >= Ranked[Best].Spread)
      continue;
    if (static_cast<double>(Total(Scores[I])) >=
        0.82 * static_cast<double>(WinnerTotal))
      Best = I;
  }
  return Ranked[Best].Spread;
}
