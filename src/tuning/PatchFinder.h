//===- tuning/PatchFinder.h - Critical patch size discovery ----*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the paper's Sec. 3.2: sweep stress over every scratchpad
/// location for a range of communication distances, extract eps-patches
/// (maximal contiguous runs of locations whose stress provokes more than
/// eps weak behaviours) and derive the chip's critical patch size — the
/// patch size P on which MP, LB and SB all agree.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_TUNING_PATCHFINDER_H
#define GPUWMM_TUNING_PATCHFINDER_H

#include "litmus/Litmus.h"
#include "stress/AccessSequence.h"
#include "support/ThreadPool.h"

#include <map>
#include <optional>
#include <vector>

namespace gpuwmm {
namespace tuning {

/// Raw weak-behaviour histograms from a patch-finding sweep.
struct PatchScan {
  /// Hist[kind][dIdx][location] = weak behaviours in C executions of
  /// ⟨T_d, σ@location⟩.
  std::vector<std::vector<std::vector<unsigned>>> Hist;
  std::vector<unsigned> Distances;
  unsigned NumLocations = 0;
  unsigned Executions = 0; ///< C, per (test, d, location) cell.
};

/// An eps-patch: a maximal contiguous run of effective stress locations.
struct EpsPatch {
  unsigned Start = 0;
  unsigned Size = 0;
};

/// Outcome of critical-patch-size detection.
struct PatchDecision {
  /// Mode patch size per litmus test (0 = no patches found).
  std::array<unsigned, 3> PerKindMode = {0, 0, 0};
  /// The agreed critical patch size, if MP, LB and SB agree.
  std::optional<unsigned> CriticalPatchSize;
  /// Majority (2-of-3) value used as a fallback when full agreement fails
  /// (the paper's 980 required exactly such judgement).
  std::optional<unsigned> MajorityPatchSize;
};

/// Runs patch-finding sweeps and analyses them.
class PatchFinder {
public:
  struct Config {
    unsigned NumLocations = 256;       ///< L.
    std::vector<unsigned> Distances;   ///< Subsampled d values.
    unsigned Executions = 50;          ///< C per cell.
    unsigned Eps = 3;                  ///< Noise threshold.
    /// The stressing loop body during patch finding: the paper's stressing
    /// thread stores to and then loads from its location.
    stress::AccessSequence Seq = stress::AccessSequence::parse("st ld");
    /// The three tuning idioms (Fig. 2 by default; any catalog trio via
    /// `gpuwmm tune --tests=a,b,c`).
    std::array<const litmus::Program *, 3> Tests = litmus::tuningPrograms();
    /// Batch width for the runners' batched engine (0 = process default);
    /// amortisation only — histograms are identical for every width.
    unsigned BatchWidth = 0;
  };

  /// Default distance subsampling for a chip: a spread of d values around
  /// multiples of plausible patch sizes up to 4*64.
  static std::vector<unsigned> defaultDistances();

  PatchFinder(const sim::ChipProfile &Chip, uint64_t Seed)
      : Chip(Chip), Seed(Seed) {}

  /// Runs the full sweep (|kinds| * |Distances| * L * C executions).
  ///
  /// Every (test, distance, location) cell executes on its own litmus
  /// runner seeded via Rng::deriveStream of the cell's flat index, so the
  /// sweep distributes over \p Pool with results bit-identical to serial
  /// execution, and repeated scans of one finder reproduce each other.
  PatchScan scan(const Config &Cfg, ThreadPool *Pool = nullptr);

  /// Extracts eps-patches from one histogram.
  static std::vector<EpsPatch> epsPatches(const std::vector<unsigned> &Hist,
                                          unsigned Eps);

  /// Counts eps-patches by size over all of one test's histograms.
  static std::map<unsigned, unsigned>
  patchSizeCounts(const PatchScan &Scan, unsigned KindIdx, unsigned Eps);

  /// Applies the paper's critical-patch-size rule to a scan.
  static PatchDecision decide(const PatchScan &Scan, unsigned Eps);

  uint64_t executions() const { return Execs; }

private:
  const sim::ChipProfile &Chip;
  uint64_t Seed;
  uint64_t Execs = 0;
};

} // namespace tuning
} // namespace gpuwmm

#endif // GPUWMM_TUNING_PATCHFINDER_H
