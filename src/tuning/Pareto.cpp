//===- tuning/Pareto.cpp - Pareto-optimal parameter selection ----------------===//

#include "tuning/Pareto.h"

#include <cassert>

using namespace gpuwmm;
using namespace gpuwmm::tuning;

std::vector<size_t>
tuning::paretoFront(const std::vector<Objectives> &Scores) {
  std::vector<size_t> Front;
  for (size_t I = 0; I != Scores.size(); ++I) {
    bool Dominated = false;
    for (size_t J = 0; J != Scores.size() && !Dominated; ++J)
      Dominated = J != I && dominates(Scores[J], Scores[I]);
    if (!Dominated)
      Front.push_back(I);
  }
  return Front;
}

size_t tuning::selectParetoWinner(const std::vector<Objectives> &Scores) {
  assert(!Scores.empty() && "no candidates");
  const std::vector<size_t> Front = paretoFront(Scores);
  assert(!Front.empty() && "a finite set always has a Pareto front");
  if (Front.size() == 1)
    return Front.front();

  // Tie-break: a candidate that wins at least two of three tests against
  // every other front member.
  for (size_t I : Front) {
    bool BeatsAll = true;
    for (size_t J : Front) {
      if (I == J)
        continue;
      unsigned Wins = 0;
      for (size_t K = 0; K != 3; ++K)
        Wins += Scores[I][K] > Scores[J][K];
      if (Wins < 2) {
        BeatsAll = false;
        break;
      }
    }
    if (BeatsAll)
      return I;
  }

  // Fallback: highest total.
  size_t Best = Front.front();
  uint64_t BestTotal = 0;
  for (size_t I : Front) {
    const uint64_t Total = Scores[I][0] + Scores[I][1] + Scores[I][2];
    if (Total > BestTotal) {
      BestTotal = Total;
      Best = I;
    }
  }
  return Best;
}
