//===- tuning/Tuner.cpp - End-to-end per-chip tuning pipeline ----------------===//

#include "tuning/Tuner.h"

#include <algorithm>
#include <chrono>

using namespace gpuwmm;
using namespace gpuwmm::tuning;

TuningResult Tuner::tune(double Scale, ThreadPool *Pool) {
  const auto Start = std::chrono::steady_clock::now();
  TuningResult Result;

  auto Scaled = [Scale](unsigned N) {
    return std::max(8u, static_cast<unsigned>(N * Scale));
  };

  // --- Stage 1: critical patch size (Sec. 3.2) ----------------------------
  PatchFinder PF(Chip, Rng::deriveStream(Seed, 1));
  PatchFinder::Config PFCfg;
  PFCfg.NumLocations = 256;
  PFCfg.Executions = Scaled(50);
  PFCfg.Tests = Tests;
  Result.Patch = PatchFinder::decide(PF.scan(PFCfg, Pool), PFCfg.Eps);
  unsigned P = 0;
  if (Result.Patch.CriticalPatchSize)
    P = *Result.Patch.CriticalPatchSize;
  else if (Result.Patch.MajorityPatchSize)
    P = *Result.Patch.MajorityPatchSize;
  else
    P = Chip.PatchSizeWords; // Last resort; never expected.
  Result.Params.PatchWords = P;

  // --- Stage 2: access sequence (Sec. 3.3) --------------------------------
  SequenceTuner ST(Chip, Rng::deriveStream(Seed, 2));
  SequenceTuner::Config STCfg;
  STCfg.NumLocations = 256;
  STCfg.Executions = Scaled(30);
  STCfg.Tests = Tests;
  Result.SequenceRanking = ST.rankAll(P, STCfg, Pool);
  Result.Params.Seq = SequenceTuner::selectBest(Result.SequenceRanking);

  // --- Stage 3: spread (Sec. 3.4) -------------------------------------------
  SpreadTuner SpT(Chip, Rng::deriveStream(Seed, 3));
  SpreadTuner::Config SpCfg;
  SpCfg.MaxSpread = 16;
  SpCfg.Executions = Scaled(500);
  SpCfg.Tests = Tests;
  Result.SpreadRanking = SpT.rankAll(P, Result.Params.Seq, SpCfg, Pool);
  Result.Params.Spread = SpreadTuner::selectBest(Result.SpreadRanking);
  Result.Params.ScratchRegions = 64;

  Result.Executions =
      PF.executions() + ST.executions() + SpT.executions();
  Result.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Result;
}
