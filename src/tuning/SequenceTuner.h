//===- tuning/SequenceTuner.h - Access-sequence ranking ---------*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the paper's Sec. 3.3: rank all 63 access sequences
/// σ ∈ (ld|st)^{0..5} by the number of weak behaviours they provoke in
/// ⟨T_d, σ@l⟩ instances, summed over distances and patch-aligned stress
/// locations; then pick the Pareto-optimal sequence over the three tuning
/// idioms (MP/LB/SB by default) with the paper's two-of-three tie-break.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_TUNING_SEQUENCETUNER_H
#define GPUWMM_TUNING_SEQUENCETUNER_H

#include "litmus/Litmus.h"
#include "stress/AccessSequence.h"
#include "support/ThreadPool.h"
#include "tuning/Pareto.h"

#include <vector>

namespace gpuwmm {
namespace tuning {

/// One sequence's scores over the three litmus tests.
struct SequenceScore {
  stress::AccessSequence Seq;
  Objectives Scores = {0, 0, 0}; ///< MP, LB, SB order.

  uint64_t total() const { return Scores[0] + Scores[1] + Scores[2]; }
};

/// Ranks access sequences for one chip.
class SequenceTuner {
public:
  struct Config {
    unsigned NumLocations = 256; ///< L; stress at the first word of each
                                 ///< critical-patch-sized region within L.
    unsigned Executions = 30;    ///< C per (test, d, location, sequence).
    /// Distances to sum over; when empty, multiples of the patch size
    /// {P, 2P, 3P, 7P/2} are used.
    std::vector<unsigned> Distances;
    /// The three tuning idioms (Fig. 2 by default; any catalog trio).
    std::array<const litmus::Program *, 3> Tests = litmus::tuningPrograms();
    /// Batch width for the runners' batched engine (0 = process default);
    /// amortisation only — scores are identical for every width.
    unsigned BatchWidth = 0;
  };

  SequenceTuner(const sim::ChipProfile &Chip, uint64_t Seed)
      : Chip(Chip), Seed(Seed) {}

  /// Scores all 63 sequences given the chip's critical patch size. Each
  /// sequence is an independent trial on its own derived RNG stream, so
  /// the ranking distributes over \p Pool with results bit-identical to
  /// serial execution.
  std::vector<SequenceScore> rankAll(unsigned PatchSize, const Config &Cfg,
                                     ThreadPool *Pool = nullptr);

  /// Pareto selection with the paper's tie-break.
  static stress::AccessSequence
  selectBest(const std::vector<SequenceScore> &Ranked);

  /// Sorts a copy of \p Ranked by descending score on test \p KindIdx
  /// (for Tab. 3-style reporting).
  static std::vector<SequenceScore>
  sortedByKind(std::vector<SequenceScore> Ranked, unsigned KindIdx);

  uint64_t executions() const { return Execs; }

private:
  const sim::ChipProfile &Chip;
  uint64_t Seed;
  uint64_t Execs = 0;
};

} // namespace tuning
} // namespace gpuwmm

#endif // GPUWMM_TUNING_SEQUENCETUNER_H
