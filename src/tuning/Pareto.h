//===- tuning/Pareto.h - Pareto-optimal parameter selection -----*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper selects stressing parameters that are "maximally effective":
/// Pareto optimal over the three litmus tests (Secs. 3.3 and 3.4), with a
/// two-out-of-three majority tie-break among Pareto-optimal candidates.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_TUNING_PARETO_H
#define GPUWMM_TUNING_PARETO_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace gpuwmm {
namespace tuning {

/// Per-candidate scores over the three litmus tests (MP, LB, SB order).
using Objectives = std::array<uint64_t, 3>;

/// True if \p B dominates \p A (B >= A everywhere and > somewhere).
inline bool dominates(const Objectives &B, const Objectives &A) {
  bool StrictlyBetter = false;
  for (size_t I = 0; I != A.size(); ++I) {
    if (B[I] < A[I])
      return false;
    if (B[I] > A[I])
      StrictlyBetter = true;
  }
  return StrictlyBetter;
}

/// Returns the indices of the Pareto-optimal (maximal) candidates.
std::vector<size_t> paretoFront(const std::vector<Objectives> &Scores);

/// Selects one winner: the unique Pareto-optimal candidate, or — when
/// several are maximally effective — the one that beats every other
/// Pareto-optimal rival on at least two of the three tests (the paper's
/// tie-break). Falls back to the largest objective total.
size_t selectParetoWinner(const std::vector<Objectives> &Scores);

} // namespace tuning
} // namespace gpuwmm

#endif // GPUWMM_TUNING_PARETO_H
