//===- tuning/SpreadTuner.h - Stress-spread selection -----------*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the paper's Sec. 3.4: determine how many critical-patch-sized
/// regions to stress simultaneously. For each spread m, run litmus
/// instances with stress applied at a random m-subset of the scratchpad's
/// regions; pick the Pareto-optimal spread over the three tuning idioms
/// (MP/LB/SB by default). The paper found
/// m = 2 on every chip (Tab. 2, Fig. 4).
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_TUNING_SPREADTUNER_H
#define GPUWMM_TUNING_SPREADTUNER_H

#include "litmus/Litmus.h"
#include "stress/AccessSequence.h"
#include "support/ThreadPool.h"
#include "tuning/Pareto.h"

#include <vector>

namespace gpuwmm {
namespace tuning {

/// One spread's scores over the three litmus tests.
struct SpreadScore {
  unsigned Spread = 1;
  Objectives Scores = {0, 0, 0};
};

/// Scores spreads 1..MaxSpread for one chip.
class SpreadTuner {
public:
  struct Config {
    unsigned MaxSpread = 16;  ///< M; scratchpad spans M regions.
    unsigned Executions = 50; ///< C per (test, d, spread).
    /// Distances to sum over; defaults to multiples of the patch size.
    std::vector<unsigned> Distances;
    /// The three tuning idioms (Fig. 2 by default; any catalog trio).
    std::array<const litmus::Program *, 3> Tests = litmus::tuningPrograms();
    /// Batch width for the runners' batched engine (0 = process default);
    /// amortisation only — scores are identical for every width.
    unsigned BatchWidth = 0;
  };

  SpreadTuner(const sim::ChipProfile &Chip, uint64_t Seed)
      : Chip(Chip), Seed(Seed) {}

  /// Scores every spread 1..MaxSpread. Each spread is an independent
  /// trial with its own derived runner and subset-sampling streams, so
  /// the ranking distributes over \p Pool with results bit-identical to
  /// serial execution.
  std::vector<SpreadScore> rankAll(unsigned PatchSize,
                                   stress::AccessSequence Seq,
                                   const Config &Cfg,
                                   ThreadPool *Pool = nullptr);

  /// Pareto selection (the paper observed a unique winner, no tie-break
  /// needed; we reuse the standard selection for robustness).
  static unsigned selectBest(const std::vector<SpreadScore> &Ranked);

  uint64_t executions() const { return Execs; }

private:
  const sim::ChipProfile &Chip;
  uint64_t Seed;
  uint64_t Execs = 0;
};

} // namespace tuning
} // namespace gpuwmm

#endif // GPUWMM_TUNING_SPREADTUNER_H
