//===- tuning/PatchFinder.cpp - Critical patch size discovery ----------------===//

#include "tuning/PatchFinder.h"

#include <algorithm>
#include <cassert>

using namespace gpuwmm;
using namespace gpuwmm::tuning;
using litmus::LitmusRunner;

std::vector<unsigned> PatchFinder::defaultDistances() {
  // Cover the interesting transitions for both candidate patch sizes
  // (32 and 64): below, at and beyond each boundary.
  return {0, 16, 32, 48, 64, 96, 128};
}

PatchScan PatchFinder::scan(const Config &Cfg, ThreadPool *Pool) {
  PatchScan Scan;
  Scan.Distances =
      Cfg.Distances.empty() ? defaultDistances() : Cfg.Distances;
  Scan.NumLocations = Cfg.NumLocations;
  Scan.Executions = Cfg.Executions;
  Scan.Hist.resize(Cfg.Tests.size());
  for (size_t K = 0; K != Cfg.Tests.size(); ++K) {
    Scan.Hist[K].resize(Scan.Distances.size());
    for (auto &Row : Scan.Hist[K])
      Row.resize(Cfg.NumLocations);
  }

  // Flatten (kind, distance, location): each cell runs on a private
  // litmus runner whose seed is derived from the cell's flat index, and
  // writes only its own histogram slot.
  const size_t NumCells =
      Cfg.Tests.size() * Scan.Distances.size() * Cfg.NumLocations;
  gpuwmm::parallelFor(Pool, NumCells, [&](size_t I) {
    const size_t K = I / (Scan.Distances.size() * Cfg.NumLocations);
    const size_t D = I / Cfg.NumLocations % Scan.Distances.size();
    const unsigned L = static_cast<unsigned>(I % Cfg.NumLocations);
    LitmusRunner Cell(Chip, Rng::deriveStream(Seed, I));
    Cell.setBatchWidth(Cfg.BatchWidth);
    Scan.Hist[K][D][L] =
        Cell.countWeak(*Cfg.Tests[K], Scan.Distances[D],
                       LitmusRunner::MicroStress::at(Cfg.Seq, L),
                       Cfg.Executions);
  });
  Execs += static_cast<uint64_t>(NumCells) * Cfg.Executions;
  return Scan;
}

std::vector<EpsPatch>
PatchFinder::epsPatches(const std::vector<unsigned> &Hist, unsigned Eps) {
  std::vector<EpsPatch> Patches;
  unsigned I = 0;
  const unsigned N = static_cast<unsigned>(Hist.size());
  while (I != N) {
    if (Hist[I] <= Eps) {
      ++I;
      continue;
    }
    const unsigned Start = I;
    while (I != N && Hist[I] > Eps)
      ++I;
    Patches.push_back({Start, I - Start});
  }
  return Patches;
}

std::map<unsigned, unsigned>
PatchFinder::patchSizeCounts(const PatchScan &Scan, unsigned KindIdx,
                             unsigned Eps) {
  std::map<unsigned, unsigned> Counts;
  for (const auto &Row : Scan.Hist[KindIdx])
    for (const EpsPatch &P : epsPatches(Row, Eps))
      ++Counts[P.Size];
  return Counts;
}

PatchDecision PatchFinder::decide(const PatchScan &Scan, unsigned Eps) {
  PatchDecision Decision;
  for (size_t K = 0; K != Scan.Hist.size(); ++K) {
    const auto Counts = patchSizeCounts(Scan, K, Eps);
    unsigned Mode = 0;
    unsigned Best = 0;
    for (const auto &[Size, Count] : Counts) {
      if (Count > Best) {
        Best = Count;
        Mode = Size;
      }
    }
    Decision.PerKindMode[K] = Mode;
  }

  const auto &M = Decision.PerKindMode;
  if (M[0] != 0 && M[0] == M[1] && M[1] == M[2]) {
    Decision.CriticalPatchSize = M[0];
    Decision.MajorityPatchSize = M[0];
    return Decision;
  }
  // 2-of-3 fallback (cf. the paper's handling of the 980, where MP patches
  // only emerge for very large distances).
  for (unsigned I = 0; I != 3; ++I) {
    const unsigned A = M[I];
    if (A != 0 && (A == M[(I + 1) % 3] || A == M[(I + 2) % 3])) {
      Decision.MajorityPatchSize = A;
      break;
    }
  }
  return Decision;
}
