//===- tuning/Tuner.h - End-to-end per-chip tuning pipeline -----*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The complete Sec. 3 tuning pipeline for one chip: patch finding, access
/// sequence ranking, spread finding — producing the chip's tuned stressing
/// parameters (the paper's Tab. 2).
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_TUNING_TUNER_H
#define GPUWMM_TUNING_TUNER_H

#include "stress/Environment.h"
#include "tuning/PatchFinder.h"
#include "tuning/SequenceTuner.h"
#include "tuning/SpreadTuner.h"

namespace gpuwmm {
namespace tuning {

/// Everything the pipeline derived for one chip.
struct TuningResult {
  stress::TunedStressParams Params;
  PatchDecision Patch;
  std::vector<SequenceScore> SequenceRanking;
  std::vector<SpreadScore> SpreadRanking;
  uint64_t Executions = 0;
  double WallSeconds = 0.0;
};

/// Runs the pipeline. Execution counts are scaled by \p Scale relative to
/// reduced-but-faithful defaults (the paper itself uses ~68M executions per
/// chip; GPUWMM_SCALE approaches that on capable machines).
class Tuner {
public:
  /// \p Tests is the idiom trio every stage scores against: the paper's
  /// Fig. 2 set by default, or any catalog trio (Sec. 3.1 anticipates
  /// re-tuning against new buggy idioms; `gpuwmm tune --tests=a,b,c`).
  Tuner(const sim::ChipProfile &Chip, uint64_t Seed,
        std::array<const litmus::Program *, 3> Tests =
            litmus::tuningPrograms())
      : Chip(Chip), Seed(Seed), Tests(Tests) {}

  /// Each stage draws from a stream derived from (seed, stage) and sweeps
  /// in parallel over \p Pool; results are identical for any job count.
  TuningResult tune(double Scale = 1.0, ThreadPool *Pool = nullptr);

private:
  const sim::ChipProfile &Chip;
  uint64_t Seed;
  std::array<const litmus::Program *, 3> Tests;
};

} // namespace tuning
} // namespace gpuwmm

#endif // GPUWMM_TUNING_TUNER_H
