//===- tuning/SequenceTuner.cpp - Access-sequence ranking --------------------===//

#include "tuning/SequenceTuner.h"

#include <algorithm>
#include <cassert>

using namespace gpuwmm;
using namespace gpuwmm::tuning;
using litmus::LitmusRunner;

std::vector<SequenceScore> SequenceTuner::rankAll(unsigned PatchSize,
                                                  const Config &Cfg,
                                                  ThreadPool *Pool) {
  assert(PatchSize > 0 && "patch size required");
  std::vector<unsigned> Distances = Cfg.Distances;
  if (Distances.empty())
    Distances = {PatchSize, 2 * PatchSize, 3 * PatchSize,
                 3 * PatchSize + PatchSize / 2};

  // Stressing multiple locations within one patch is redundant (Sec. 3.2),
  // so stress the first word of each patch-sized region within L.
  std::vector<unsigned> Locations;
  for (unsigned L = 0; L < Cfg.NumLocations; L += PatchSize)
    Locations.push_back(L);

  // One independent trial per sequence, on a runner seeded from the
  // sequence's index — trials are order-free, so they distribute over the
  // pool without changing any score.
  const auto All = stress::AccessSequence::enumerateAll();
  std::vector<SequenceScore> Ranked(All.size());
  gpuwmm::parallelFor(Pool, All.size(), [&](size_t I) {
    SequenceScore &Score = Ranked[I];
    Score.Seq = All[I];
    LitmusRunner Runner(Chip, Rng::deriveStream(Seed, I));
    Runner.setBatchWidth(Cfg.BatchWidth);
    for (size_t K = 0; K != Cfg.Tests.size(); ++K) {
      uint64_t Total = 0;
      for (unsigned D : Distances) {
        for (unsigned Loc : Locations) {
          const auto S = LitmusRunner::MicroStress::at(All[I], Loc);
          Total += Runner.countWeak(*Cfg.Tests[K], D, S, Cfg.Executions);
        }
      }
      Score.Scores[K] = Total;
    }
  });
  Execs += static_cast<uint64_t>(All.size()) * Cfg.Tests.size() *
           Distances.size() * Locations.size() * Cfg.Executions;
  return Ranked;
}

stress::AccessSequence
SequenceTuner::selectBest(const std::vector<SequenceScore> &Ranked) {
  std::vector<Objectives> Scores;
  Scores.reserve(Ranked.size());
  for (const SequenceScore &S : Ranked)
    Scores.push_back(S.Scores);
  return Ranked[selectParetoWinner(Scores)].Seq;
}

std::vector<SequenceScore>
SequenceTuner::sortedByKind(std::vector<SequenceScore> Ranked,
                            unsigned KindIdx) {
  assert(KindIdx < 3 && "bad litmus kind index");
  std::stable_sort(Ranked.begin(), Ranked.end(),
                   [KindIdx](const SequenceScore &A, const SequenceScore &B) {
                     return A.Scores[KindIdx] > B.Scores[KindIdx];
                   });
  return Ranked;
}
