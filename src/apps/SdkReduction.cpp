//===- apps/SdkReduction.cpp - CUDA SDK threadFenceReduction ------------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// The single-pass reduction from the CUDA SDK samples
// (threadFenceReduction): every block reduces its slice and stores a
// partial sum; an atomic counter elects the last block to finish, which
// combines the partials. The original kernel places a __threadfence()
// between the partial-sum store and the counter increment — exactly the
// ordering a weak machine needs. The paper's sdk-red-nf variant removes
// that fence; the partial store can then still be buffered when the last
// block reads it, producing a wrong total.
//
// As in the paper, the original (fenced) sdk-red never exhibits errors;
// only the -nf variant does (Tab. 5).
//
//===----------------------------------------------------------------------===//

#include "apps/AppsInternal.h"

#include "sim/ThreadContext.h"

using namespace gpuwmm;
using namespace gpuwmm::apps;
using sim::Addr;
using sim::Kernel;
using sim::ThreadContext;
using sim::Word;

namespace {

enum Site : int {
  SiteLoadInput = 0, ///< input loads.
  SitePartialSt,     ///< store of the block's partial sum (the bug).
  SiteCounterAdd,    ///< atomicAdd on the ticket counter.
  SitePartialLd,     ///< last block's loads of the partials.
  SiteOutSt,         ///< store of the final total.
  NumSites
};

const char *const SiteNames[NumSites] = {
    "load input[i]",
    "store partial[block]",
    "atomicAdd(ticket counter)",
    "last block: load partial[b]",
    "store out",
};

constexpr unsigned N = 256;
constexpr unsigned GridDim = 8;
constexpr unsigned BlockDim = 32;

Kernel reduceKernel(ThreadContext &Ctx, Addr In, Addr Cache, Addr Partials,
                    Addr Counter, Addr Out) {
  const unsigned CacheBase = Ctx.blockIdx() * Ctx.blockDim();

  // Grid-stride slice sum, then block reduction in shared-memory cache.
  Word Temp = 0;
  for (unsigned I = Ctx.globalId(); I < N;
       I += Ctx.blockDim() * Ctx.gridDim())
    Temp += co_await Ctx.ld(In + I, SiteLoadInput);
  co_await Ctx.st(Cache + CacheBase + Ctx.threadIdx(), Temp);
  co_await Ctx.syncthreads();
  if (Ctx.threadIdx() != 0)
    co_return;

  Word BlockSum = 0;
  for (unsigned I = 0; I != Ctx.blockDim(); ++I)
    BlockSum += co_await Ctx.ld(Cache + CacheBase + I);
  co_await Ctx.st(Partials + Ctx.blockIdx(), BlockSum, SitePartialSt);

  // The SDK kernel's __threadfence() (removed in sdk-red-nf).
  co_await Ctx.builtinFence();

  const Word Ticket = co_await Ctx.atomicAdd(Counter, 1, SiteCounterAdd);
  if (Ticket != Ctx.gridDim() - 1)
    co_return;

  // Last block standing combines every partial.
  Word Total = 0;
  for (unsigned B = 0; B != Ctx.gridDim(); ++B)
    Total += co_await Ctx.ld(Partials + B, SitePartialLd);
  co_await Ctx.st(Out, Total, SiteOutSt);
}

class SdkReduction final : public Application {
public:
  const char *name() const override { return "sdk-red"; }
  unsigned numSites() const override { return NumSites; }
  const char *siteName(unsigned Site) const override {
    return SiteNames[Site];
  }

  void setup(sim::Device &Dev, Rng &R) override {
    In = Dev.alloc(N);
    Cache = Dev.alloc(GridDim * BlockDim);
    Partials = Dev.alloc(GridDim);
    Counter = Dev.alloc(1);
    Out = Dev.alloc(1);
    Expected = 0;
    for (unsigned I = 0; I != N; ++I) {
      const Word V = static_cast<Word>(R.below(100));
      Dev.write(In + I, V);
      Expected += V;
    }
  }

  bool run(sim::Device &Dev) override {
    const Addr InV = In, CacheV = Cache, PartialsV = Partials,
               CounterV = Counter, OutV = Out;
    const sim::RunResult Result = Dev.run(
        {GridDim, BlockDim}, [=](ThreadContext &Ctx) -> Kernel {
          return reduceKernel(Ctx, InV, CacheV, PartialsV, CounterV, OutV);
        });
    return Result.completed();
  }

  bool checkPostCondition(const sim::Device &Dev) const override {
    return Dev.read(Out) == Expected;
  }

private:
  Addr In = 0, Cache = 0, Partials = 0, Counter = 0, Out = 0;
  Word Expected = 0;
};

} // namespace

std::unique_ptr<Application> apps::detail::makeSdkReduction() {
  return std::make_unique<SdkReduction>();
}
