//===- apps/CbeHashtable.cpp - CUDA-by-Example hashtable ----------------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// The concurrent hashtable of CUDA by Example [45, ch. A1.3]: threads
// insert key entries into per-bucket linked lists, each bucket protected by
// a custom spinlock. The post-condition (Tab. 4) checks that every
// inserted element is present in the final table exactly once.
//
// Weak-memory defect: the store publishing the new list head is a plain
// store that can stay buffered past the atomic unlock. The next inserter
// then links its node to the stale head, and whichever head-store drains
// last orphans the other chain — an element disappears.
//
// This is the paper's most provocable application: its many lock
// hand-offs per run make it the only case study to exhibit native errors
// (on the GTX 770) and the only one most of the weaker stressing
// strategies can expose (Tab. 5).
//
//===----------------------------------------------------------------------===//

#include "apps/AppsInternal.h"

#include "sim/ThreadContext.h"

#include <vector>

using namespace gpuwmm;
using namespace gpuwmm::apps;
using sim::Addr;
using sim::Kernel;
using sim::ThreadContext;
using sim::Word;

namespace {

enum Site : int {
  SiteLockCAS = 0,  ///< atomicCAS acquiring the bucket lock.
  SiteHeadLd,       ///< load of the bucket's current head.
  SiteNextSt,       ///< store of node->next.
  SiteKeySt,        ///< store of node->key.
  SiteHeadSt,       ///< store publishing the new head (the bug).
  SiteUnlockExch,   ///< atomicExch releasing the bucket lock.
  NumSites
};

const char *const SiteNames[NumSites] = {
    "lock: atomicCAS(bucket mutex)",
    "insert: load bucket head",
    "insert: store node->next",
    "insert: store node->key",
    "insert: store bucket head",
    "unlock: atomicExch(bucket mutex)",
};

constexpr unsigned NumBuckets = 8;
constexpr unsigned GridDim = 2;
constexpr unsigned BlockDim = 32;
constexpr unsigned KeysPerThread = 2;
constexpr unsigned NumKeys = GridDim * BlockDim * KeysPerThread;
constexpr Word NilIndex = 0xffffffffu;

unsigned hashKey(Word Key) { return (Key * 2654435761u) % NumBuckets; }

Kernel insertKernel(ThreadContext &Ctx, Addr Keys, Addr Heads, Addr Mutexes,
                    Addr NodeKeys, Addr NodeNexts) {
  for (unsigned I = 0; I != KeysPerThread; ++I) {
    const unsigned NodeIdx = Ctx.globalId() * KeysPerThread + I;
    const Word Key = co_await Ctx.ld(Keys + NodeIdx);
    const unsigned Bucket = hashKey(Key);

    // Awaits stay out of conditions (GCC 12 coroutine bug).
    for (;;) {
      const Word Lock =
          co_await Ctx.atomicCAS(Mutexes + Bucket, 0, 1, SiteLockCAS);
      if (Lock == 0)
        break;
      // Randomised backoff (see tpo-tm): avoids deterministic starvation.
      co_await Ctx.yield(1 + static_cast<unsigned>(Ctx.rand(3)));
    }

    const Word OldHead = co_await Ctx.ld(Heads + Bucket, SiteHeadLd);
    co_await Ctx.st(NodeNexts + NodeIdx, OldHead, SiteNextSt);
    co_await Ctx.st(NodeKeys + NodeIdx, Key, SiteKeySt);
    co_await Ctx.st(Heads + Bucket, NodeIdx, SiteHeadSt);

    co_await Ctx.atomicExch(Mutexes + Bucket, 0, SiteUnlockExch);
  }
}

class CbeHashtable final : public Application {
public:
  const char *name() const override { return "cbe-ht"; }
  unsigned numSites() const override { return NumSites; }
  const char *siteName(unsigned Site) const override {
    return SiteNames[Site];
  }

  void setup(sim::Device &Dev, Rng &R) override {
    Keys = Dev.alloc(NumKeys);
    Heads = Dev.alloc(NumBuckets);
    Mutexes = Dev.alloc(NumBuckets);
    NodeKeys = Dev.alloc(NumKeys);
    NodeNexts = Dev.alloc(NumKeys);
    InsertedKeys.clear();
    for (unsigned I = 0; I != NumKeys; ++I) {
      // Distinct keys so "exactly once" is checkable.
      const Word Key = static_cast<Word>(I * 7 + 1 + R.below(3) * NumKeys * 8);
      InsertedKeys.push_back(Key);
      Dev.write(Keys + I, Key);
    }
    for (unsigned B = 0; B != NumBuckets; ++B)
      Dev.write(Heads + B, NilIndex);
    for (unsigned I = 0; I != NumKeys; ++I)
      Dev.write(NodeNexts + I, NilIndex);
  }

  bool run(sim::Device &Dev) override {
    const Addr KeysV = Keys, HeadsV = Heads, MutexesV = Mutexes,
               NodeKeysV = NodeKeys, NodeNextsV = NodeNexts;
    const sim::RunResult Result = Dev.run(
        {GridDim, BlockDim}, [=](ThreadContext &Ctx) -> Kernel {
          return insertKernel(Ctx, KeysV, HeadsV, MutexesV, NodeKeysV,
                              NodeNextsV);
        });
    return Result.completed();
  }

  bool checkPostCondition(const sim::Device &Dev) const override {
    // Walk every bucket chain; every inserted key must appear exactly once
    // in the bucket its hash selects.
    std::vector<unsigned> Seen(NumKeys, 0);
    for (unsigned B = 0; B != NumBuckets; ++B) {
      Word Cur = Dev.read(Heads + B);
      unsigned Steps = 0;
      while (Cur != NilIndex) {
        if (Cur >= NumKeys || ++Steps > NumKeys)
          return false; // Corrupt link or cycle.
        const Word Key = Dev.read(NodeKeys + Cur);
        if (Key != InsertedKeys[Cur] || hashKey(Key) != B)
          return false;
        if (++Seen[Cur] > 1)
          return false;
        Cur = Dev.read(NodeNexts + Cur);
      }
    }
    for (unsigned I = 0; I != NumKeys; ++I)
      if (Seen[I] != 1)
        return false;
    return true;
  }

private:
  Addr Keys = 0, Heads = 0, Mutexes = 0, NodeKeys = 0, NodeNexts = 0;
  std::vector<Word> InsertedKeys;
};

} // namespace

std::unique_ptr<Application> apps::detail::makeCbeHashtable() {
  return std::make_unique<CbeHashtable>();
}
