//===- apps/CubScan.cpp - CUB decoupled-lookback prefix scan ------------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// The single-pass "decoupled lookback" prefix scan of the CUB library:
// every block publishes its local aggregate, then walks backwards over its
// predecessors' status flags, summing published aggregates until it meets
// an inclusive prefix, and finally publishes its own inclusive prefix.
// Each publication is an MP-style handshake: a data store (aggregate or
// inclusive prefix) followed by a flag store. CUB places a __threadfence()
// between data and flag on both handshakes; removing them (cub-scan-nf)
// lets the flag overtake the buffered data store, so a consumer adds a
// stale aggregate and the scan is wrong.
//
// As in the paper, original cub-scan never errs and the empirical fence
// insertion on cub-scan-nf rediscovers exactly the two provided fences.
//
//===----------------------------------------------------------------------===//

#include "apps/AppsInternal.h"

#include "sim/ThreadContext.h"

#include <vector>

using namespace gpuwmm;
using namespace gpuwmm::apps;
using sim::Addr;
using sim::Kernel;
using sim::ThreadContext;
using sim::Word;

namespace {

enum Site : int {
  SiteInLd = 0,   ///< input loads.
  SiteAggSt,      ///< store of the block aggregate (bug #1).
  SiteFlagAggSt,  ///< store of the AGGREGATE_READY flag.
  SiteFlagLd,     ///< lookback flag polls.
  SiteAggLd,      ///< lookback load of a predecessor aggregate.
  SiteInclLd,     ///< lookback load of a predecessor inclusive prefix.
  SiteInclSt,     ///< store of the inclusive prefix (bug #2).
  SiteFlagInclSt, ///< store of the INCLUSIVE_READY flag.
  SiteOutSt,      ///< output stores.
  NumSites
};

const char *const SiteNames[NumSites] = {
    "load in[i]",
    "store aggregate[block]",
    "store flag[block] = AGG",
    "lookback: load flag[j]",
    "lookback: load aggregate[j]",
    "lookback: load inclusive[j]",
    "store inclusive[block]",
    "store flag[block] = INCL",
    "store out[i]",
};

constexpr unsigned GridDim = 8;
constexpr unsigned BlockDim = 32;
constexpr unsigned N = GridDim * BlockDim;
constexpr Word FlagEmpty = 0, FlagAgg = 1, FlagIncl = 2;

Kernel scanKernel(ThreadContext &Ctx, Addr In, Addr Cache, Addr Aggregates,
                  Addr Inclusives, Addr Flags, Addr Exclusive, Addr Out) {
  const unsigned B = Ctx.blockIdx();
  const unsigned CacheBase = B * Ctx.blockDim();
  const unsigned Gid = Ctx.globalId();

  // Stage values in the shared-memory cache.
  const Word V = co_await Ctx.ld(In + Gid, SiteInLd);
  co_await Ctx.st(Cache + CacheBase + Ctx.threadIdx(), V);
  co_await Ctx.syncthreads();

  if (Ctx.threadIdx() == 0) {
    // Leader: block-local inclusive scan in shared memory.
    Word Running = 0;
    for (unsigned I = 0; I != Ctx.blockDim(); ++I) {
      Running += co_await Ctx.ld(Cache + CacheBase + I);
      co_await Ctx.st(Cache + CacheBase + I, Running);
    }
    const Word Aggregate = Running;

    // Handshake 1: publish the block aggregate.
    co_await Ctx.st(Aggregates + B, Aggregate, SiteAggSt);
    co_await Ctx.builtinFence(); // CUB's first __threadfence().
    co_await Ctx.st(Flags + B, FlagAgg, SiteFlagAggSt);

    // Decoupled lookback for the exclusive prefix.
    Word Prefix = 0;
    if (B != 0) {
      for (unsigned J = B; J-- != 0;) {
        Word Flag;
        do {
          Flag = co_await Ctx.ld(Flags + J, SiteFlagLd);
          if (Flag == FlagEmpty)
            co_await Ctx.yield(2);
        } while (Flag == FlagEmpty);
        if (Flag == FlagIncl) {
          Prefix += co_await Ctx.ld(Inclusives + J, SiteInclLd);
          break;
        }
        Prefix += co_await Ctx.ld(Aggregates + J, SiteAggLd);
      }
    }

    // Handshake 2: publish the inclusive prefix.
    co_await Ctx.st(Inclusives + B, Prefix + Aggregate, SiteInclSt);
    co_await Ctx.builtinFence(); // CUB's second __threadfence().
    co_await Ctx.st(Flags + B, FlagIncl, SiteFlagInclSt);

    co_await Ctx.st(Exclusive + B, Prefix); // Block-local broadcast slot.
  }
  co_await Ctx.syncthreads();

  const Word Prefix = co_await Ctx.ld(Exclusive + B);
  const Word Scanned = co_await Ctx.ld(Cache + CacheBase + Ctx.threadIdx());
  co_await Ctx.st(Out + Gid, Prefix + Scanned, SiteOutSt);
}

class CubScan final : public Application {
public:
  const char *name() const override { return "cub-scan"; }
  unsigned numSites() const override { return NumSites; }
  const char *siteName(unsigned Site) const override {
    return SiteNames[Site];
  }

  void setup(sim::Device &Dev, Rng &R) override {
    In = Dev.alloc(N);
    Cache = Dev.alloc(N);
    Aggregates = Dev.alloc(GridDim);
    Inclusives = Dev.alloc(GridDim);
    Flags = Dev.alloc(GridDim);
    Exclusive = Dev.alloc(GridDim);
    Out = Dev.alloc(N);
    Expected.assign(N, 0);
    Word Running = 0;
    for (unsigned I = 0; I != N; ++I) {
      const Word V = static_cast<Word>(R.below(50));
      Dev.write(In + I, V);
      Running += V;
      Expected[I] = Running; // Inclusive scan.
    }
  }

  bool run(sim::Device &Dev) override {
    const Addr InV = In, CacheV = Cache, AggV = Aggregates,
               InclV = Inclusives, FlagsV = Flags, ExclV = Exclusive,
               OutV = Out;
    const sim::RunResult Result = Dev.run(
        {GridDim, BlockDim}, [=](ThreadContext &Ctx) -> Kernel {
          return scanKernel(Ctx, InV, CacheV, AggV, InclV, FlagsV, ExclV,
                            OutV);
        });
    return Result.completed();
  }

  bool checkPostCondition(const sim::Device &Dev) const override {
    for (unsigned I = 0; I != N; ++I)
      if (Dev.read(Out + I) != Expected[I])
        return false;
    return true;
  }

private:
  Addr In = 0, Cache = 0, Aggregates = 0, Inclusives = 0, Flags = 0,
       Exclusive = 0, Out = 0;
  std::vector<Word> Expected;
};

} // namespace

std::unique_ptr<Application> apps::detail::makeCubScan() {
  return std::make_unique<CubScan>();
}
