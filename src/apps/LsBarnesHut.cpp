//===- apps/LsBarnesHut.cpp - Lonestar Barnes-Hut N-body ----------------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// The Barnes-Hut N-body simulation from the Lonestar GPU benchmarks [12],
// reduced to two dimensions and integer (fixed-point) arithmetic so that
// results compare exactly against a reference. Four kernels, as in the
// original: (1) concurrent lock-free quadtree build, (2) centre-of-mass
// summarisation, (3) force computation by tree traversal with the
// Barnes-Hut opening criterion, (4) position integration.
//
// Weak-memory defects live in the tree build: a thread that splits a leaf
// allocates a fresh internal node, initialises its child slots and places
// the displaced body with plain stores, and then publishes the node by
// storing its index into the parent's child slot. On a weak machine the
// publish can become visible while the initialisation stores are still
// buffered, so concurrent inserters descend into garbage.
//
// The original ls-bh contains fences, but the paper found them
// insufficient (errors in both ls-bh and ls-bh-nf; Tab. 5, Sec. 4.3). We
// model that faithfully: the built-in fence covers the child-slot
// initialisation but NOT the displaced-body placement, so even the fenced
// variant can lose a body. Empirical fence insertion on ls-bh-nf finds a
// superset of the provided fences, as in the paper (Sec. 5.2).
//
// The post-condition compares final positions against a sequentially
// consistent reference execution, the analogue of the paper's use of a
// conservatively fenced run as reference for ls-bh.
//
//===----------------------------------------------------------------------===//

#include "apps/AppsInternal.h"

#include "sim/ThreadContext.h"

#include <vector>

using namespace gpuwmm;
using namespace gpuwmm::apps;
using sim::Addr;
using sim::Kernel;
using sim::ThreadContext;
using sim::Word;

namespace {

enum Site : int {
  SiteChildLd = 0, ///< build: load of a child slot during descent.
  SiteInsCAS,      ///< build: CAS inserting a body into an empty slot.
  SiteLockCAS,     ///< build: CAS locking a body slot for splitting.
  SiteNewChildSt,  ///< build: store initialising a new node's child slot.
  SiteOldBodySt,   ///< build: store placing the displaced body (the bug
                   ///< the provided fences miss).
  SitePublishSt,   ///< build: store publishing the new node.
  SiteGeomLd,      ///< build: loads of node geometry during descent.
  SiteComSt,       ///< summarise: stores of mass/centre-of-mass.
  SiteSumLd,       ///< summarise: loads of children/positions.
  SiteForceLd,     ///< force: loads during traversal.
  SiteAccSt,       ///< force: store of the computed acceleration.
  SitePosSt,       ///< integrate: position stores.
  NumSites
};

const char *const SiteNames[NumSites] = {
    "build: load child slot",
    "build: CAS body into empty slot",
    "build: CAS lock body slot",
    "build: store new-node child slot",
    "build: store displaced body",
    "build: store publish new node",
    "build: load node geometry",
    "summarise: store COM fields",
    "summarise: loads",
    "force: traversal loads",
    "force: store acceleration",
    "integrate: store position",
};

constexpr unsigned NumBodies = 32;
constexpr unsigned GridDim = 2;
constexpr unsigned BlockDim = 16;
constexpr unsigned MaxNodes = 128;
constexpr unsigned CoordBits = 14; ///< Space is [0, 2^14)^2 fixed-point.
constexpr Word RootHalf = 1u << (CoordBits - 1);

// Child-slot encodings.
constexpr Word SlotEmpty = 0xffffffffu;
constexpr Word SlotLock = 0xfffffffeu;
constexpr Word BodyTagBit = 0x80000000u;

bool slotIsBody(Word S) { return (S & BodyTagBit) != 0 && S != SlotEmpty &&
                                 S != SlotLock; }
Word bodyTag(unsigned BodyIdx) { return BodyTagBit | BodyIdx; }
unsigned bodyOf(Word S) { return S & ~BodyTagBit; }

/// Node layout in the Nodes arrays (struct-of-arrays).
struct TreeAddrs {
  Addr Children;  ///< 4 slots per node.
  Addr CenterX;   ///< Cell centre.
  Addr CenterY;
  Addr Half;      ///< Cell half-width.
  Addr Mass;      ///< Filled by the summarise kernel.
  Addr ComX;
  Addr ComY;
  Addr NodeCount; ///< Allocation bump counter.
};

unsigned quadrantOf(Word X, Word Y, Word Cx, Word Cy) {
  return (X >= Cx ? 1u : 0u) | (Y >= Cy ? 2u : 0u);
}

/// Child cell centre for quadrant \p Q of a cell centred at (Cx, Cy).
void childCenter(unsigned Q, Word Cx, Word Cy, Word Half, Word &Ox,
                 Word &Oy) {
  const Word H2 = Half / 2;
  Ox = (Q & 1) ? Cx + H2 : Cx - H2;
  Oy = (Q & 2) ? Cy + H2 : Cy - H2;
}

//===----------------------------------------------------------------------===//
// Kernel 1: concurrent tree build
//===----------------------------------------------------------------------===//

Kernel buildKernel(ThreadContext &Ctx, TreeAddrs T, Addr PosX, Addr PosY,
                   Addr ErrorFlag) {
  for (unsigned Body = Ctx.globalId(); Body < NumBodies;
       Body += Ctx.blockDim() * Ctx.gridDim()) {
    const Word X = co_await Ctx.ld(PosX + Body);
    const Word Y = co_await Ctx.ld(PosY + Body);

    unsigned Cur = 0; // Root.
    unsigned Guard = 0;
    bool Done = false;
    while (!Done) {
      if (++Guard > 512) {
        // Corrupt descent (e.g. through a half-initialised node).
        co_await Ctx.st(ErrorFlag, 1);
        break;
      }
      const Word Cx = co_await Ctx.ld(T.CenterX + Cur, SiteGeomLd);
      const Word Cy = co_await Ctx.ld(T.CenterY + Cur, SiteGeomLd);
      const Word Half = co_await Ctx.ld(T.Half + Cur, SiteGeomLd);
      const unsigned Q = quadrantOf(X, Y, Cx, Cy);
      const Addr Slot = T.Children + Cur * 4 + Q;

      const Word C = co_await Ctx.ld(Slot, SiteChildLd);
      if (C == SlotLock) {
        co_await Ctx.yield(2 + static_cast<unsigned>(Ctx.rand(3)));
        continue;
      }
      if (C == SlotEmpty) {
        const Word Prev = co_await Ctx.atomicCAS(
            Slot, SlotEmpty, bodyTag(Body), SiteInsCAS);
        if (Prev == SlotEmpty)
          Done = true;
        continue; // Raced: re-examine the slot.
      }
      if (!slotIsBody(C)) {
        // Internal node: descend.
        if (C >= MaxNodes) {
          co_await Ctx.st(ErrorFlag, 1); // Garbage pointer.
          break;
        }
        Cur = static_cast<unsigned>(C);
        continue;
      }

      // Occupied by a body: split. Lock the slot first.
      const Word LockPrev =
          co_await Ctx.atomicCAS(Slot, C, SlotLock, SiteLockCAS);
      if (LockPrev != C)
        continue; // Raced: re-examine.

      const unsigned NewNode = static_cast<unsigned>(
          co_await Ctx.atomicAdd(T.NodeCount, 1));
      if (NewNode >= MaxNodes) {
        co_await Ctx.st(ErrorFlag, 1);
        break;
      }
      Word NCx, NCy;
      childCenter(Q, Cx, Cy, Half, NCx, NCy);

      // Initialise the fresh node.
      co_await Ctx.st(T.CenterX + NewNode, NCx, SiteNewChildSt);
      co_await Ctx.st(T.CenterY + NewNode, NCy, SiteNewChildSt);
      co_await Ctx.st(T.Half + NewNode, Half / 2, SiteNewChildSt);
      for (unsigned I = 0; I != 4; ++I)
        co_await Ctx.st(T.Children + NewNode * 4 + I, SlotEmpty,
                        SiteNewChildSt);

      // The original code fences here — covering the initialisation
      // stores but NOT the displaced-body placement below, which is why
      // ls-bh's provided fences are insufficient (paper Sec. 4.3).
      co_await Ctx.builtinFence();

      // Re-seat the displaced body in the new node.
      const unsigned OldBody = bodyOf(C);
      const Word OX = co_await Ctx.ld(PosX + OldBody);
      const Word OY = co_await Ctx.ld(PosY + OldBody);
      const unsigned OQ = quadrantOf(OX, OY, NCx, NCy);
      co_await Ctx.st(T.Children + NewNode * 4 + OQ, C, SiteOldBodySt);

      // Publish the new node (unlocks the slot). A plain store: the
      // release ordering is exactly what weak memory breaks.
      co_await Ctx.st(Slot, NewNode, SitePublishSt);
      // Loop: re-descend to place our own body (now into NewNode).
    }
  }
}

//===----------------------------------------------------------------------===//
// Kernel 2: centre-of-mass summarisation (single leader thread; the
// kernel boundary has already synchronised the tree).
//===----------------------------------------------------------------------===//

Kernel summariseKernel(ThreadContext &Ctx, TreeAddrs T, Addr PosX,
                       Addr PosY) {
  if (Ctx.globalId() != 0)
    co_return;
  const unsigned Count = co_await Ctx.ld(T.NodeCount);
  // Children always have higher indices than their parents, so one
  // reverse pass computes all centres of mass bottom-up. Exact coordinate
  // SUMS are stored (division happens at use in the force kernel), so the
  // results are independent of the racy-but-unique tree construction
  // order: a PR quadtree's shape, and hence every node's body set,
  // depends only on the body positions.
  for (unsigned I = Count; I-- != 0;) {
    Word Mass = 0, Sx = 0, Sy = 0;
    for (unsigned Q = 0; Q != 4; ++Q) {
      const Word C = co_await Ctx.ld(T.Children + I * 4 + Q, SiteSumLd);
      if (C == SlotEmpty || C == SlotLock)
        continue;
      if (slotIsBody(C)) {
        const unsigned B = bodyOf(C);
        Mass += 1;
        Sx += co_await Ctx.ld(PosX + B, SiteSumLd);
        Sy += co_await Ctx.ld(PosY + B, SiteSumLd);
        continue;
      }
      Mass += co_await Ctx.ld(T.Mass + C, SiteSumLd);
      Sx += co_await Ctx.ld(T.ComX + C, SiteSumLd);
      Sy += co_await Ctx.ld(T.ComY + C, SiteSumLd);
    }
    co_await Ctx.st(T.Mass + I, Mass, SiteComSt);
    co_await Ctx.st(T.ComX + I, Sx, SiteComSt); // Coordinate sums.
    co_await Ctx.st(T.ComY + I, Sy, SiteComSt);
  }
}

//===----------------------------------------------------------------------===//
// Kernel 3: force computation (read-only traversal)
//===----------------------------------------------------------------------===//

Kernel forceKernel(ThreadContext &Ctx, TreeAddrs T, Addr PosX, Addr PosY,
                   Addr AccX, Addr AccY, Addr ErrorFlag) {
  for (unsigned Body = Ctx.globalId(); Body < NumBodies;
       Body += Ctx.blockDim() * Ctx.gridDim()) {
    const Word X = co_await Ctx.ld(PosX + Body);
    const Word Y = co_await Ctx.ld(PosY + Body);

    // Explicit-stack traversal with the s/d < theta opening criterion.
    Word Ax = 0, Ay = 0;
    unsigned Stack[64];
    unsigned Top = 0;
    Stack[Top++] = 0;
    unsigned Guard = 0;
    while (Top != 0) {
      if (++Guard > 4096 || Top >= 60) {
        co_await Ctx.st(ErrorFlag, 1);
        break;
      }
      const unsigned Node = Stack[--Top];
      const Word Mass = co_await Ctx.ld(T.Mass + Node, SiteForceLd);
      if (Mass == 0)
        continue;
      // COM fields hold exact coordinate sums; divide at use.
      const Word Cmx =
          (co_await Ctx.ld(T.ComX + Node, SiteForceLd)) / Mass;
      const Word Cmy =
          (co_await Ctx.ld(T.ComY + Node, SiteForceLd)) / Mass;
      const Word Half = co_await Ctx.ld(T.Half + Node, SiteForceLd);
      const int64_t Dx = static_cast<int64_t>(Cmx) - X;
      const int64_t Dy = static_cast<int64_t>(Cmy) - Y;
      const int64_t Dist2 = Dx * Dx + Dy * Dy + 1;
      const int64_t Size2 = 4 * static_cast<int64_t>(Half) * Half;
      // Open the cell when (s/d)^2 >= theta^2 with theta = 1/2.
      if (Size2 * 4 >= Dist2) {
        for (unsigned Q = 0; Q != 4; ++Q) {
          const Word C =
              co_await Ctx.ld(T.Children + Node * 4 + Q, SiteForceLd);
          if (C == SlotEmpty || C == SlotLock)
            continue;
          if (slotIsBody(C)) {
            const unsigned B = bodyOf(C);
            if (B == Body)
              continue;
            const Word Bx = co_await Ctx.ld(PosX + B, SiteForceLd);
            const Word By = co_await Ctx.ld(PosY + B, SiteForceLd);
            const int64_t Ddx = static_cast<int64_t>(Bx) - X;
            const int64_t Ddy = static_cast<int64_t>(By) - Y;
            const int64_t D2 = Ddx * Ddx + Ddy * Ddy + 1;
            Ax = static_cast<Word>(Ax + ((Ddx << 12) / D2));
            Ay = static_cast<Word>(Ay + ((Ddy << 12) / D2));
          } else if (C < MaxNodes) {
            Stack[Top++] = static_cast<unsigned>(C);
          }
        }
        continue;
      }
      // Approximate by the cell's centre of mass.
      Ax = static_cast<Word>(Ax + Mass * ((Dx << 12) / Dist2));
      Ay = static_cast<Word>(Ay + Mass * ((Dy << 12) / Dist2));
    }
    co_await Ctx.st(AccX + Body, Ax, SiteAccSt);
    co_await Ctx.st(AccY + Body, Ay, SiteAccSt);
  }
}

//===----------------------------------------------------------------------===//
// Kernel 4: integration
//===----------------------------------------------------------------------===//

Kernel integrateKernel(ThreadContext &Ctx, Addr PosX, Addr PosY, Addr AccX,
                       Addr AccY) {
  for (unsigned Body = Ctx.globalId(); Body < NumBodies;
       Body += Ctx.blockDim() * Ctx.gridDim()) {
    const Word X = co_await Ctx.ld(PosX + Body);
    const Word Y = co_await Ctx.ld(PosY + Body);
    const Word Ax = co_await Ctx.ld(AccX + Body);
    const Word Ay = co_await Ctx.ld(AccY + Body);
    co_await Ctx.st(PosX + Body, (X + (Ax >> 6)) & ((1u << CoordBits) - 1),
                    SitePosSt);
    co_await Ctx.st(PosY + Body, (Y + (Ay >> 6)) & ((1u << CoordBits) - 1),
                    SitePosSt);
  }
}

//===----------------------------------------------------------------------===//
// The application
//===----------------------------------------------------------------------===//

class LsBarnesHut final : public Application {
public:
  const char *name() const override { return "ls-bh"; }
  unsigned numSites() const override { return NumSites; }
  const char *siteName(unsigned Site) const override {
    return SiteNames[Site];
  }
  uint64_t maxTicks() const override { return 120000; }

  void setup(sim::Device &Dev, Rng &R) override {
    PosX = Dev.alloc(NumBodies);
    PosY = Dev.alloc(NumBodies);
    AccX = Dev.alloc(NumBodies);
    AccY = Dev.alloc(NumBodies);
    T.Children = Dev.alloc(MaxNodes * 4);
    T.CenterX = Dev.alloc(MaxNodes);
    T.CenterY = Dev.alloc(MaxNodes);
    T.Half = Dev.alloc(MaxNodes);
    T.Mass = Dev.alloc(MaxNodes);
    T.ComX = Dev.alloc(MaxNodes);
    T.ComY = Dev.alloc(MaxNodes);
    T.NodeCount = Dev.alloc(1);
    ErrorFlag = Dev.alloc(1);

    InitialX.resize(NumBodies);
    InitialY.resize(NumBodies);
    for (unsigned I = 0; I != NumBodies; ++I) {
      InitialX[I] = static_cast<Word>(R.below(1u << CoordBits));
      InitialY[I] = static_cast<Word>(R.below(1u << CoordBits));
    }
    initialiseDevice(Dev);

    // Reference positions from a sequentially consistent execution (the
    // analogue of the paper's conservatively fenced reference run).
    computeReference(Dev.chip());
  }

  bool run(sim::Device &Dev) override { return runKernels(Dev); }

  bool checkPostCondition(const sim::Device &Dev) const override {
    if (Dev.read(ErrorFlag) != 0)
      return false;
    for (unsigned I = 0; I != NumBodies; ++I)
      if (Dev.read(PosX + I) != RefX[I] || Dev.read(PosY + I) != RefY[I])
        return false;
    return true;
  }

private:
  void initialiseDevice(sim::Device &Dev) {
    for (unsigned I = 0; I != NumBodies; ++I) {
      Dev.write(PosX + I, InitialX[I]);
      Dev.write(PosY + I, InitialY[I]);
    }
    for (unsigned I = 0; I != MaxNodes * 4; ++I)
      Dev.write(T.Children + I, SlotEmpty);
    // Root cell covers the whole space.
    Dev.write(T.CenterX, RootHalf);
    Dev.write(T.CenterY, RootHalf);
    Dev.write(T.Half, RootHalf);
    Dev.write(T.NodeCount, 1);
  }

  bool runKernels(sim::Device &Dev) {
    const TreeAddrs TV = T;
    const Addr PX = PosX, PY = PosY, AX = AccX, AY = AccY,
               Err = ErrorFlag;
    if (!Dev.run({GridDim, BlockDim}, [=](ThreadContext &Ctx) -> Kernel {
          return buildKernel(Ctx, TV, PX, PY, Err);
        }).completed())
      return false;
    if (!Dev.run({1, 1}, [=](ThreadContext &Ctx) -> Kernel {
          return summariseKernel(Ctx, TV, PX, PY);
        }).completed())
      return false;
    if (!Dev.run({GridDim, BlockDim}, [=](ThreadContext &Ctx) -> Kernel {
          return forceKernel(Ctx, TV, PX, PY, AX, AY, Err);
        }).completed())
      return false;
    return Dev
        .run({GridDim, BlockDim},
             [=](ThreadContext &Ctx) -> Kernel {
               return integrateKernel(Ctx, PX, PY, AX, AY);
             })
        .completed();
  }

  /// Runs the whole pipeline on a private SC device to obtain the
  /// reference positions.
  void computeReference(const sim::ChipProfile &Chip) {
    sim::Device Ref(Chip, /*Seed=*/1);
    Ref.setSequentialMode(true);
    // Mirror the allocation order exactly.
    LsBarnesHut Shadow;
    Shadow.PosX = Ref.alloc(NumBodies);
    Shadow.PosY = Ref.alloc(NumBodies);
    Shadow.AccX = Ref.alloc(NumBodies);
    Shadow.AccY = Ref.alloc(NumBodies);
    Shadow.T.Children = Ref.alloc(MaxNodes * 4);
    Shadow.T.CenterX = Ref.alloc(MaxNodes);
    Shadow.T.CenterY = Ref.alloc(MaxNodes);
    Shadow.T.Half = Ref.alloc(MaxNodes);
    Shadow.T.Mass = Ref.alloc(MaxNodes);
    Shadow.T.ComX = Ref.alloc(MaxNodes);
    Shadow.T.ComY = Ref.alloc(MaxNodes);
    Shadow.T.NodeCount = Ref.alloc(1);
    Shadow.ErrorFlag = Ref.alloc(1);
    Shadow.InitialX = InitialX;
    Shadow.InitialY = InitialY;
    Shadow.initialiseDevice(Ref);
    const bool Ok = Shadow.runKernels(Ref);
    (void)Ok;
    RefX.resize(NumBodies);
    RefY.resize(NumBodies);
    for (unsigned I = 0; I != NumBodies; ++I) {
      RefX[I] = Ref.read(Shadow.PosX + I);
      RefY[I] = Ref.read(Shadow.PosY + I);
    }
  }

  TreeAddrs T{};
  Addr PosX = 0, PosY = 0, AccX = 0, AccY = 0, ErrorFlag = 0;
  std::vector<Word> InitialX, InitialY, RefX, RefY;
};

} // namespace

std::unique_ptr<Application> apps::detail::makeLsBarnesHut() {
  return std::make_unique<LsBarnesHut>();
}
