//===- apps/TpoTaskMgmt.cpp - Tzeng-Patney-Owens task management --------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// The dynamic task-management framework of Tzeng, Patney and Owens [48]:
// a work queue protected by a custom spinlock; workers pop task
// descriptors, execute them, and push spawned child tasks. The Tab. 4
// post-condition checks that exactly the expected set of tasks executes
// (each exactly once).
//
// Weak-memory defects: the enqueue's payload and tail stores are plain
// stores that can stay buffered past the atomic unlock; a popper then
// either reads a stale descriptor (executing a wrong/duplicate task) or
// never observes the push (workers spin forever — the timeout the paper's
// 30-second limit catches).
//
//===----------------------------------------------------------------------===//

#include "apps/AppsInternal.h"

#include "sim/ThreadContext.h"

#include <vector>

using namespace gpuwmm;
using namespace gpuwmm::apps;
using sim::Addr;
using sim::Kernel;
using sim::ThreadContext;
using sim::Word;

namespace {

enum Site : int {
  SiteLockCAS = 0, ///< atomicCAS acquiring the queue lock.
  SiteHeadLd,      ///< pop: load head.
  SiteTailLd,      ///< pop/push: load tail.
  SiteBufLd,       ///< pop: load task descriptor.
  SiteBufSt,       ///< push: store task descriptor.
  SiteTailSt,      ///< push: store new tail (the bug).
  SiteUnlockExch,  ///< atomicExch releasing the queue lock.
  NumSites
};

const char *const SiteNames[NumSites] = {
    "lock: atomicCAS(queue mutex)",
    "pop: load head",
    "pop/push: load tail",
    "pop: load buf[head]",
    "push: store buf[tail]",
    "push: store tail",
    "unlock: atomicExch(queue mutex)",
};

constexpr unsigned GridDim = 4;
constexpr unsigned BlockDim = 16;
constexpr unsigned RootTasks = 24;
constexpr unsigned ChildrenPerRoot = 2;
constexpr unsigned TotalTasks = RootTasks * (1 + ChildrenPerRoot);
constexpr unsigned QueueCap = TotalTasks + 8;
constexpr Word EmptySlot = 0xffffffffu;

Word packTask(unsigned TaskId, bool IsRoot) {
  return static_cast<Word>(TaskId | (IsRoot ? 0x10000u : 0u));
}
unsigned taskId(Word Task) { return Task & 0xffffu; }
bool taskIsRoot(Word Task) { return (Task & 0x10000u) != 0; }

Kernel workerKernel(ThreadContext &Ctx, Addr Buf, Addr Head, Addr Tail,
                    Addr Mutex, Addr Done, Addr ExecCounts,
                    Addr ErrorFlag) {
  while (true) {
    // Note: awaits are kept out of control-flow conditions throughout
    // (GCC 12 miscompiles co_await inside a condition expression).
    const Word DoneCount = co_await Ctx.ld(Done);
    if (DoneCount >= TotalTasks)
      co_return;

    // Pop under the lock.
    for (;;) {
      const Word Lock = co_await Ctx.atomicCAS(Mutex, 0, 1, SiteLockCAS);
      if (Lock == 0)
        break;
      // Randomised backoff: breaks deterministic starvation cycles, as
      // contended spinlocks do on real hardware.
      co_await Ctx.yield(1 + static_cast<unsigned>(Ctx.rand(3)));
    }
    const Word H = co_await Ctx.ld(Head, SiteHeadLd);
    const Word T = co_await Ctx.ld(Tail, SiteTailLd);
    Word Task = EmptySlot;
    if (H < T) {
      Task = co_await Ctx.ld(Buf + H, SiteBufLd);
      co_await Ctx.atomicAdd(Head, 1); // Index update is atomic in [48].
    }
    co_await Ctx.atomicExch(Mutex, 0, SiteUnlockExch);

    if (Task == EmptySlot) {
      co_await Ctx.yield(3);
      continue;
    }
    const unsigned Id = taskId(Task);
    if (Id >= TotalTasks) {
      // Stale descriptor from a buffered push.
      co_await Ctx.st(ErrorFlag, 1);
      co_await Ctx.atomicAdd(Done, 1); // Count it or the grid never exits.
      continue;
    }

    // "Execute" the task.
    co_await Ctx.atomicAdd(ExecCounts + Id, 1);

    // Root tasks spawn children.
    if (taskIsRoot(Task)) {
      for (unsigned C = 0; C != ChildrenPerRoot; ++C) {
        const unsigned ChildId =
            RootTasks + Id * ChildrenPerRoot + C;
        for (;;) {
          const Word Lock =
              co_await Ctx.atomicCAS(Mutex, 0, 1, SiteLockCAS);
          if (Lock == 0)
            break;
          co_await Ctx.yield(1 + static_cast<unsigned>(Ctx.rand(3)));
        }
        const Word Slot = co_await Ctx.ld(Tail, SiteTailLd);
        if (Slot < QueueCap) {
          co_await Ctx.st(Buf + Slot, packTask(ChildId, false), SiteBufSt);
          co_await Ctx.st(Tail, Slot + 1, SiteTailSt);
        } else {
          co_await Ctx.st(ErrorFlag, 1);
        }
        co_await Ctx.atomicExch(Mutex, 0, SiteUnlockExch);
      }
    }
    co_await Ctx.atomicAdd(Done, 1);
  }
}

class TpoTaskMgmt final : public Application {
public:
  const char *name() const override { return "tpo-tm"; }
  unsigned numSites() const override { return NumSites; }
  const char *siteName(unsigned Site) const override {
    return SiteNames[Site];
  }
  uint64_t maxTicks() const override { return 250000; }

  void setup(sim::Device &Dev, Rng &R) override {
    (void)R;
    Buf = Dev.alloc(QueueCap);
    Head = Dev.alloc(1);
    Tail = Dev.alloc(1);
    Mutex = Dev.alloc(1);
    Done = Dev.alloc(1);
    ExecCounts = Dev.alloc(TotalTasks);
    ErrorFlag = Dev.alloc(1);
    for (unsigned I = 0; I != QueueCap; ++I)
      Dev.write(Buf + I, EmptySlot);
    for (unsigned I = 0; I != RootTasks; ++I)
      Dev.write(Buf + I, packTask(I, true));
    Dev.write(Tail, RootTasks);
  }

  bool run(sim::Device &Dev) override {
    const Addr BufV = Buf, HeadV = Head, TailV = Tail, MutexV = Mutex,
               DoneV = Done, ExecV = ExecCounts, ErrV = ErrorFlag;
    const sim::RunResult Result = Dev.run(
        {GridDim, BlockDim}, [=](ThreadContext &Ctx) -> Kernel {
          return workerKernel(Ctx, BufV, HeadV, TailV, MutexV, DoneV, ExecV,
                              ErrV);
        });
    return Result.completed();
  }

  bool checkPostCondition(const sim::Device &Dev) const override {
    if (Dev.read(ErrorFlag) != 0)
      return false;
    for (unsigned I = 0; I != TotalTasks; ++I)
      if (Dev.read(ExecCounts + I) != 1)
        return false;
    return true;
  }

private:
  Addr Buf = 0, Head = 0, Tail = 0, Mutex = 0, Done = 0, ExecCounts = 0,
       ErrorFlag = 0;
};

} // namespace

std::unique_ptr<Application> apps::detail::makeTpoTaskMgmt() {
  return std::make_unique<TpoTaskMgmt>();
}
