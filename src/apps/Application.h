//===- apps/Application.h - Application case-study framework ----*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framework for the paper's ten application case studies (Tab. 4):
/// seven code bases plus three "-nf" (no-fence) variants. Every application
/// provides kernels against the simulator API, instrumented fence sites
/// (for Sec. 5's empirical fence insertion and Sec. 6's cost study), and a
/// functional post-condition that decides whether an execution was
/// erroneous.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_APPS_APPLICATION_H
#define GPUWMM_APPS_APPLICATION_H

#include "sim/Device.h"
#include "stress/Environment.h"
#include "support/Rng.h"

#include <array>
#include <memory>
#include <optional>
#include <string>

namespace gpuwmm {
namespace apps {

/// The ten case studies of Tab. 4.
enum class AppKind {
  CbeHt,     ///< CUDA-by-Example hashtable (mutex-protected buckets).
  CbeDot,    ///< CUDA-by-Example dot product (mutex-protected reduction).
  CtOctree,  ///< Cederman-Tsigas octree partitioning (non-blocking queues).
  TpoTm,     ///< Tzeng-Patney-Owens task management (mutex-guarded queues).
  SdkRed,    ///< CUDA SDK reduction (atomic counter, last block combines).
  SdkRedNf,  ///< sdk-red with its fences removed.
  CubScan,   ///< CUB decoupled-lookback prefix scan (MP handshake).
  CubScanNf, ///< cub-scan with its fences removed.
  LsBh,      ///< Lonestar Barnes-Hut N-body (lock-free tree build).
  LsBhNf     ///< ls-bh with its fences removed.
};

inline constexpr std::array<AppKind, 10> AllAppKinds = {
    AppKind::CbeHt,     AppKind::CbeDot,  AppKind::CtOctree,
    AppKind::TpoTm,     AppKind::SdkRed,  AppKind::SdkRedNf,
    AppKind::CubScan,   AppKind::CubScanNf, AppKind::LsBh,
    AppKind::LsBhNf};

/// The paper's short name, e.g. "cbe-dot" or "sdk-red-nf".
const char *appName(AppKind K);

/// Parses an appName; returns nullopt for unknown names.
std::optional<AppKind> parseAppName(const std::string &Name);

/// True for the variants whose original code contains fence instructions
/// (sdk-red, cub-scan, ls-bh). Their -nf variants disable those fences.
bool appHasBuiltinFences(AppKind K);

/// True for -nf variants.
bool isNoFenceVariant(AppKind K);

/// One application case study. Instances are single-use: create, setup,
/// run, check.
class Application {
public:
  virtual ~Application() = default;

  virtual const char *name() const = 0;

  /// Number of instrumented memory-access sites (fence-insertion targets).
  virtual unsigned numSites() const = 0;

  /// Human-readable name of a site, e.g. "store *c (critical section)".
  virtual const char *siteName(unsigned Site) const = 0;

  /// Allocates device memory and initialises inputs. Must be called once,
  /// before the environment's scratchpad is allocated.
  virtual void setup(sim::Device &Dev, Rng &R) = 0;

  /// Launches the application's kernels. Returns false if any launch
  /// faulted (timeout, barrier divergence, kernel fault).
  virtual bool run(sim::Device &Dev) = 0;

  /// The paper's user-supplied functional post-condition (Tab. 4).
  virtual bool checkPostCondition(const sim::Device &Dev) const = 0;

  /// Per-launch tick budget (the analogue of the paper's 30s timeout).
  virtual uint64_t maxTicks() const { return 60000; }
};

/// Creates a fresh instance of the given case study.
std::unique_ptr<Application> makeApp(AppKind K);

/// Number of fence sites of \p K (without instantiating device state).
unsigned appNumSites(AppKind K);

/// How one application execution ended.
enum class AppVerdict {
  Pass,          ///< Completed and satisfied the post-condition.
  PostCondFail,  ///< Completed but computed a wrong result.
  Timeout,       ///< Exceeded the tick budget.
  SimFault       ///< Barrier divergence / kernel fault / deadlock.
};

const char *appVerdictName(AppVerdict V);

inline bool isErroneous(AppVerdict V) { return V != AppVerdict::Pass; }

/// Executes one application run under a testing environment.
///
/// \p Policy is the inserted-fence policy (null = no inserted fences);
/// built-in fences are enabled unless \p K is a -nf variant. \p Sequential
/// selects the SC reference mode.
///
/// Runs on \p Ctx, the reusable execution engine (reset for this run):
/// loops and pool workers pass their recycled context so repeated runs
/// allocate nothing in steady state. Results are bit-identical for any
/// context history (DESIGN.md Sec. 12).
AppVerdict runApplicationOnce(sim::ExecutionContext &Ctx, AppKind K,
                              const sim::ChipProfile &Chip,
                              const stress::Environment &Env,
                              const stress::TunedStressParams &Tuned,
                              const sim::FencePolicy *Policy, uint64_t Seed,
                              bool Sequential = false);

/// As above, leasing a recycled context from the current thread's pool.
AppVerdict runApplicationOnce(AppKind K, const sim::ChipProfile &Chip,
                              const stress::Environment &Env,
                              const stress::TunedStressParams &Tuned,
                              const sim::FencePolicy *Policy, uint64_t Seed,
                              bool Sequential = false);

} // namespace apps
} // namespace gpuwmm

#endif // GPUWMM_APPS_APPLICATION_H
