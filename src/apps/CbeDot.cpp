//===- apps/CbeDot.cpp - CUDA-by-Example dot product --------------------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// The paper's running example (Fig. 1), extracted from the dot product of
// the book CUDA by Example [45, ch. A1.2]: each block reduces its partial
// products in (shared) cache memory, then block leaders accumulate into a
// single global cell *c under a custom spinlock. Correctness depends on
// the store to *c draining before the unlock becomes visible; on a weak
// machine the unlock (an atomic, L2-direct) can overtake the buffered
// store, and the next lock holder reads a stale *c — a lost update.
//
// Integer arithmetic replaces the book's floats so the reference result is
// exact.
//
//===----------------------------------------------------------------------===//

#include "apps/AppsInternal.h"

#include "sim/ThreadContext.h"

using namespace gpuwmm;
using namespace gpuwmm::apps;
using sim::Addr;
using sim::Kernel;
using sim::ThreadContext;
using sim::Word;

namespace {

/// Fence-insertion sites (every global access in the dot kernel; the
/// block-local cache models shared memory and is exempt, as in CUDA).
enum Site : int {
  SiteLoadInput = 0, ///< a[tid] / b[tid] loads.
  SiteLockCAS,       ///< atomicCAS in lock().
  SiteLoadC,         ///< load of *c in the critical section.
  SiteStoreC,        ///< store of *c in the critical section (the bug).
  SiteUnlockExch,    ///< atomicExch in unlock().
  NumSites
};

const char *const SiteNames[NumSites] = {
    "load a[i]/b[i]",
    "lock: atomicCAS(mutex)",
    "critical: load *c",
    "critical: store *c",
    "unlock: atomicExch(mutex)",
};

constexpr unsigned N = 256;
constexpr unsigned GridDim = 4;
constexpr unsigned BlockDim = 32;

Kernel dotKernel(ThreadContext &Ctx, Addr A, Addr B, Addr Cache, Addr Mutex,
                 Addr C) {
  const unsigned CacheBase = Ctx.blockIdx() * Ctx.blockDim();
  const unsigned CacheIndex = Ctx.threadIdx();

  // Grid-stride partial products.
  Word Temp = 0;
  for (unsigned I = Ctx.globalId(); I < N;
       I += Ctx.blockDim() * Ctx.gridDim()) {
    const Word Av = co_await Ctx.ld(A + I, SiteLoadInput);
    const Word Bv = co_await Ctx.ld(B + I, SiteLoadInput);
    Temp += Av * Bv;
  }

  // Block-local reduction through the (shared-memory) cache.
  co_await Ctx.st(Cache + CacheBase + CacheIndex, Temp);
  co_await Ctx.syncthreads();
  if (CacheIndex != 0)
    co_return;
  Word BlockSum = 0;
  for (unsigned I = 0; I != Ctx.blockDim(); ++I)
    BlockSum += co_await Ctx.ld(Cache + CacheBase + I);

  // lock(mutex); *c += blockSum; unlock(mutex);  (Fig. 1, lines 13-16)
  // Awaits stay out of conditions (GCC 12 coroutine bug).
  for (;;) {
    const Word Lock = co_await Ctx.atomicCAS(Mutex, 0, 1, SiteLockCAS);
    if (Lock == 0)
      break;
    // Randomised backoff (see tpo-tm): avoids deterministic starvation.
    co_await Ctx.yield(1 + static_cast<unsigned>(Ctx.rand(3)));
  }
  const Word Old = co_await Ctx.ld(C, SiteLoadC);
  co_await Ctx.st(C, Old + BlockSum, SiteStoreC);
  co_await Ctx.atomicExch(Mutex, 0, SiteUnlockExch);
}

class CbeDot final : public Application {
public:
  const char *name() const override { return "cbe-dot"; }
  unsigned numSites() const override { return NumSites; }
  const char *siteName(unsigned Site) const override {
    return SiteNames[Site];
  }

  void setup(sim::Device &Dev, Rng &R) override {
    A = Dev.alloc(N);
    B = Dev.alloc(N);
    Cache = Dev.alloc(GridDim * BlockDim);
    Mutex = Dev.alloc(1);
    C = Dev.alloc(1);
    Expected = 0;
    for (unsigned I = 0; I != N; ++I) {
      const Word Av = static_cast<Word>(R.below(8));
      const Word Bv = static_cast<Word>(R.below(8));
      Dev.write(A + I, Av);
      Dev.write(B + I, Bv);
      Expected += Av * Bv;
    }
  }

  bool run(sim::Device &Dev) override {
    const Addr Av = A, Bv = B, CacheV = Cache, MutexV = Mutex, CV = C;
    const sim::RunResult Result = Dev.run(
        {GridDim, BlockDim}, [=](ThreadContext &Ctx) -> Kernel {
          return dotKernel(Ctx, Av, Bv, CacheV, MutexV, CV);
        });
    return Result.completed();
  }

  bool checkPostCondition(const sim::Device &Dev) const override {
    return Dev.read(C) == Expected;
  }

private:
  Addr A = 0, B = 0, Cache = 0, Mutex = 0, C = 0;
  Word Expected = 0;
};

} // namespace

std::unique_ptr<Application> apps::detail::makeCbeDot() {
  return std::make_unique<CbeDot>();
}
