//===- apps/AppsInternal.h - Private app factory hooks ----------*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal factory functions wiring each case-study implementation into
/// the registry in Application.cpp. Not part of the public API.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_APPS_APPSINTERNAL_H
#define GPUWMM_APPS_APPSINTERNAL_H

#include "apps/Application.h"

#include <memory>

namespace gpuwmm {
namespace apps {
namespace detail {

std::unique_ptr<Application> makeCbeDot();
std::unique_ptr<Application> makeCbeHashtable();
std::unique_ptr<Application> makeCtOctree();
std::unique_ptr<Application> makeTpoTaskMgmt();
std::unique_ptr<Application> makeSdkReduction();
std::unique_ptr<Application> makeCubScan();
std::unique_ptr<Application> makeLsBarnesHut();

} // namespace detail
} // namespace apps
} // namespace gpuwmm

#endif // GPUWMM_APPS_APPSINTERNAL_H
