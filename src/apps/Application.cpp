//===- apps/Application.cpp - Application case-study framework ---------------===//

#include "apps/Application.h"

#include "apps/AppsInternal.h"

#include <cassert>

using namespace gpuwmm;
using namespace gpuwmm::apps;

const char *apps::appName(AppKind K) {
  switch (K) {
  case AppKind::CbeHt:
    return "cbe-ht";
  case AppKind::CbeDot:
    return "cbe-dot";
  case AppKind::CtOctree:
    return "ct-octree";
  case AppKind::TpoTm:
    return "tpo-tm";
  case AppKind::SdkRed:
    return "sdk-red";
  case AppKind::SdkRedNf:
    return "sdk-red-nf";
  case AppKind::CubScan:
    return "cub-scan";
  case AppKind::CubScanNf:
    return "cub-scan-nf";
  case AppKind::LsBh:
    return "ls-bh";
  case AppKind::LsBhNf:
    return "ls-bh-nf";
  }
  return "unknown";
}

std::optional<AppKind> apps::parseAppName(const std::string &Name) {
  for (AppKind K : AllAppKinds)
    if (Name == appName(K))
      return K;
  return std::nullopt;
}

bool apps::appHasBuiltinFences(AppKind K) {
  return K == AppKind::SdkRed || K == AppKind::CubScan ||
         K == AppKind::LsBh;
}

bool apps::isNoFenceVariant(AppKind K) {
  return K == AppKind::SdkRedNf || K == AppKind::CubScanNf ||
         K == AppKind::LsBhNf;
}

std::unique_ptr<Application> apps::makeApp(AppKind K) {
  switch (K) {
  case AppKind::CbeHt:
    return detail::makeCbeHashtable();
  case AppKind::CbeDot:
    return detail::makeCbeDot();
  case AppKind::CtOctree:
    return detail::makeCtOctree();
  case AppKind::TpoTm:
    return detail::makeTpoTaskMgmt();
  case AppKind::SdkRed:
  case AppKind::SdkRedNf:
    return detail::makeSdkReduction();
  case AppKind::CubScan:
  case AppKind::CubScanNf:
    return detail::makeCubScan();
  case AppKind::LsBh:
  case AppKind::LsBhNf:
    return detail::makeLsBarnesHut();
  }
  return nullptr;
}

unsigned apps::appNumSites(AppKind K) { return makeApp(K)->numSites(); }

const char *apps::appVerdictName(AppVerdict V) {
  switch (V) {
  case AppVerdict::Pass:
    return "pass";
  case AppVerdict::PostCondFail:
    return "postcondition-fail";
  case AppVerdict::Timeout:
    return "timeout";
  case AppVerdict::SimFault:
    return "sim-fault";
  }
  return "unknown";
}

AppVerdict apps::runApplicationOnce(sim::ExecutionContext &Ctx, AppKind K,
                                    const sim::ChipProfile &Chip,
                                    const stress::Environment &Env,
                                    const stress::TunedStressParams &Tuned,
                                    const sim::FencePolicy *Policy,
                                    uint64_t Seed, bool Sequential) {
  Rng R(Seed);
  sim::Device Dev(Ctx, Chip, R.next());
  Dev.setSequentialMode(Sequential);
  Dev.setFencePolicy(Policy);
  Dev.setBuiltinFences(!isNoFenceVariant(K));

  std::unique_ptr<Application> App = makeApp(K);
  Dev.setMaxTicks(App->maxTicks());
  App->setup(Dev, R);

  // The environment's scratchpad is allocated after the application's
  // arrays, as in the paper's testing harness.
  Rng EnvRng = R.fork(1);
  const auto Stress = applyEnvironment(Env, Dev, Tuned, EnvRng);

  if (!App->run(Dev)) {
    switch (Dev.lastStatus()) {
    case sim::RunStatus::Timeout:
      return AppVerdict::Timeout;
    default:
      return AppVerdict::SimFault;
    }
  }
  return App->checkPostCondition(Dev) ? AppVerdict::Pass
                                      : AppVerdict::PostCondFail;
}

AppVerdict apps::runApplicationOnce(AppKind K, const sim::ChipProfile &Chip,
                                    const stress::Environment &Env,
                                    const stress::TunedStressParams &Tuned,
                                    const sim::FencePolicy *Policy,
                                    uint64_t Seed, bool Sequential) {
  sim::ContextLease Ctx;
  return runApplicationOnce(Ctx.get(), K, Chip, Env, Tuned, Policy, Seed,
                            Sequential);
}
