//===- apps/AppCompile.h - App kernels on the batched engine ----*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowering of the Tab. 4 application kernels to the batched flat
/// op-stream engine (DESIGN.md Sec. 19).
///
/// The regular kernels — sdk-red(-nf), cub-scan(-nf), cbe-dot, cbe-ht —
/// compile once per (app, chip shape, fence policy) into a BatchProgram:
/// compile-time loops unrolled, lane roles (leader vs. worker) split into
/// per-lane op ranges, data-dependent loops (lock spins, lookback polls)
/// expressed with register branches, barriers as the engine's Barrier op,
/// and both built-in and policy fences baked into the stream at their
/// arming sites. Addresses are baked by replaying the context's
/// deterministic patch-aligned bump allocator; every run asserts the
/// replayed layout against the live one.
///
/// runApplicationBatch then executes N seeds of one cell on a single
/// context, reusing the plan and the context's BatchScratch SoA slabs.
/// Per-run verdicts are bit-identical to apps::runApplicationOnce —
/// draw-for-draw, tick-for-tick — for every batch width and any context
/// history. Apps with irregular control (ct-octree, tpo-tm, ls-bh(-nf))
/// report !appLowerable and fall back to the coroutine path, as do traced
/// or sink-attached contexts and --engine=scalar.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_APPS_APPCOMPILE_H
#define GPUWMM_APPS_APPCOMPILE_H

#include "apps/Application.h"
#include "sim/BatchExec.h"

namespace gpuwmm {
namespace apps {

/// True iff compileApplication can lower \p K to the batched engine.
bool appLowerable(AppKind K);

/// A compiled application kernel: the op stream plus the allocation
/// layout the plan's baked addresses assume. Immutable once built.
struct AppPlan {
  sim::BatchProgram BP;
  uint64_t MaxTicks = 0; ///< The app's per-launch tick budget.
  /// allocatedWords() right after Application::setup — the replayed bump
  /// allocator's high-water mark, asserted against every live run.
  unsigned SetupAllocWords = 0;
};

/// Compiles \p K for \p Chip under inserted-fence policy \p Policy
/// (null = none). Cached per (app, chip shape, policy mask); the returned
/// reference stays valid for the thread's lifetime. \p K must be
/// appLowerable.
const AppPlan &compileApplication(AppKind K, const sim::ChipProfile &Chip,
                                  const sim::FencePolicy *Policy);

/// Executes \p N application runs (seeds \p Seeds[0..N)) of one
/// (app, chip, environment) cell on \p Ctx, writing per-run verdicts to
/// \p Verdicts. Verdicts are bit-identical to calling runApplicationOnce
/// per seed, for every batch width \p BatchWidth (0 = the process-wide
/// default) and any context history.
///
/// Dispatch: runs execute on the batched engine when the app lowers, the
/// engine mode allows it and \p Ctx has no tracing/streaming request;
/// otherwise each run takes the scalar coroutine path unchanged.
void runApplicationBatch(sim::ExecutionContext &Ctx, AppKind K,
                         const sim::ChipProfile &Chip,
                         const stress::Environment &Env,
                         const stress::TunedStressParams &Tuned,
                         const sim::FencePolicy *Policy,
                         const uint64_t *Seeds, AppVerdict *Verdicts,
                         size_t N, unsigned BatchWidth = 0);

} // namespace apps
} // namespace gpuwmm

#endif // GPUWMM_APPS_APPCOMPILE_H
