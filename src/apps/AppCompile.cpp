//===- apps/AppCompile.cpp - App kernels on the batched engine ----------------===//
//
// Lowering rules (DESIGN.md Sec. 19). The coroutine kernels execute as
// "free computation, then one co_await op" per resume; fidelity to the
// scalar engine needs only the suspending ops' side effects, sleeps and
// RNG draws to land in the same resumes, in the same order. The lowerings
// below therefore:
//
//  * unroll every compile-time loop (grid-stride slices, block
//    reductions, the per-thread key loop) and split lane roles — each
//    lane gets its own op range, so "if (threadIdx != 0) co_return"
//    becomes a shorter lane program;
//  * keep data-dependent loops (lock spins, lookback polls) as register
//    branches: free ops run at the head of the resume that issues the
//    next suspending op, exactly where the coroutine body evaluates its
//    conditions;
//  * fold free arithmetic into fused suspending ops (LoadAcc,
//    LoadMulAcc) where convenient — register state is invisible to the
//    memory model, so only op-for-op resume alignment matters;
//  * bake fences into the stream: a built-in fence is a FenceDevice op
//    (or a Sleep(1) in the -nf variants, matching the disabled
//    opBuiltinFence), and an inserted policy fence becomes the exact
//    two-resume sequence the scalar PendingFenceStage machinery executes
//    — Sleep(FenceBaseLatency), then FenceDevice — emitted directly
//    after each armed site, including inside spin loops (branch targets
//    re-enter at the memory op, never mid-fence);
//  * bake addresses by replaying MemorySystem::alloc's patch-aligned
//    bump allocator over the app's setup allocation sequence (asserted
//    against the live layout every run).
//
// Site-id tables mirror the file-local Site enums of the app sources
// (SdkReduction.cpp, CubScan.cpp, CbeDot.cpp, CbeHashtable.cpp); the
// AppBatch identity grid runs every app under FencePolicy::all, so any
// drift between the tables and the kernels fails the tier-1 suite.
//
//===----------------------------------------------------------------------===//

#include "apps/AppCompile.h"

#include "sim/ChipProfile.h"
#include "sim/ExecutionContext.h"
#include "sim/FencePolicy.h"

#include <cassert>
#include <memory>
#include <utility>
#include <vector>

using namespace gpuwmm;
using namespace gpuwmm::apps;
using sim::Addr;
using sim::BatchOp;
using sim::Word;
using Code = sim::BatchOp::Code;

bool apps::appLowerable(AppKind K) {
  switch (K) {
  case AppKind::CbeHt:
  case AppKind::CbeDot:
  case AppKind::SdkRed:
  case AppKind::SdkRedNf:
  case AppKind::CubScan:
  case AppKind::CubScanNf:
    return true;
  case AppKind::CtOctree: // Dynamic work queues (data-dependent fan-out).
  case AppKind::TpoTm:    // Task donation across queues.
  case AppKind::LsBh:     // Tree build with retry loops over child slots.
  case AppKind::LsBhNf:
    return false;
  }
  return false;
}

namespace {

//===----------------------------------------------------------------------===//
// PlanBuilder
//===----------------------------------------------------------------------===//

class PlanBuilder {
public:
  PlanBuilder(const sim::ChipProfile &Chip, uint32_t PolicyMask,
              unsigned GridDim, unsigned BlockDim)
      : Chip(Chip), Mask(PolicyMask) {
    Plan.BP.GridDim = GridDim;
    Plan.BP.BlockDim = BlockDim;
    Plan.BP.Lanes.resize(static_cast<size_t>(GridDim) * BlockDim);
  }

  /// Replays MemorySystem::alloc: align NextFree up to the patch size,
  /// return the aligned base, bump by Words.
  Addr alloc(unsigned Words) {
    const unsigned P = Chip.PatchSizeWords;
    Next = (Next + P - 1) / P * P;
    const Addr Base = Next;
    Next += Words;
    return Base;
  }

  /// A fresh per-lane register slot.
  uint16_t reg() {
    assert(Plan.BP.NumSlots < 0xffff && "register slots exhausted");
    return static_cast<uint16_t>(Plan.BP.NumSlots++);
  }

  void beginLane(unsigned Tid) {
    LaneTid = Tid;
    Plan.BP.Lanes[Tid].Begin = size();
  }
  void endLane() { Plan.BP.Lanes[LaneTid].End = size(); }

  uint32_t size() const {
    return static_cast<uint32_t>(Plan.BP.Ops.size());
  }

  uint32_t emit(Code C, uint16_t Slot = 0, uint16_t Slot2 = 0, Addr A = 0,
                Word Imm = 0) {
    Plan.BP.Ops.push_back({C, Slot, Slot2, A, Imm});
    return size() - 1;
  }

  /// A site-instrumented memory op: the op itself, then — when the
  /// policy fences the site — the two-resume inserted-fence sequence the
  /// scalar armPolicyFence/PendingFenceStage machinery produces.
  uint32_t emitMem(Code C, int Site, uint16_t Slot, uint16_t Slot2, Addr A,
                   Word Imm = 0) {
    const uint32_t Idx = emit(C, Slot, Slot2, A, Imm);
    if (Site >= 0 && (Mask >> Site) & 1u) {
      emit(Code::Sleep, 0, 0, 0, Chip.FenceBaseLatency);
      emit(Code::FenceDevice);
    }
    return Idx;
  }

  /// A built-in fence: opFenceDevice when enabled, the disabled
  /// opBuiltinFence's one-tick sleep in the -nf variants.
  void builtinFence(bool Enabled) {
    if (Enabled)
      emit(Code::FenceDevice);
    else
      emit(Code::Sleep, 0, 0, 0, 1);
  }

  /// Retargets a branch/jump emitted earlier to \p Target.
  void patch(uint32_t OpIdx, uint32_t Target) {
    Plan.BP.Ops[OpIdx].A = Target;
  }

  AppPlan finish(uint64_t MaxTicks) {
    Plan.MaxTicks = MaxTicks;
    Plan.SetupAllocWords = Next;
    Plan.BP.NumSlots = std::max(Plan.BP.NumSlots, 1u);
    return std::move(Plan);
  }

private:
  const sim::ChipProfile &Chip;
  uint32_t Mask;
  AppPlan Plan;
  unsigned LaneTid = 0;
  Addr Next = 0;
};

//===----------------------------------------------------------------------===//
// sdk-red / sdk-red-nf (SdkReduction.cpp)
//===----------------------------------------------------------------------===//

namespace sdkred {
enum : int {
  SiteLoadInput = 0,
  SitePartialSt,
  SiteCounterAdd,
  SitePartialLd,
  SiteOutSt
};
constexpr unsigned N = 256, GridDim = 8, BlockDim = 32;
} // namespace sdkred

void emitSdkRed(PlanBuilder &B, bool BuiltinFences) {
  using namespace sdkred;
  const Addr In = B.alloc(N);
  const Addr Cache = B.alloc(GridDim * BlockDim);
  const Addr Partials = B.alloc(GridDim);
  const Addr Counter = B.alloc(1);
  const Addr Out = B.alloc(1);

  for (unsigned Tid = 0; Tid != GridDim * BlockDim; ++Tid) {
    const unsigned Blk = Tid / BlockDim, L = Tid % BlockDim;
    B.beginLane(Tid);

    // Temp = 0; grid-stride sum (stride == N: one iteration at I = Tid).
    const uint16_t RT = B.reg();
    B.emit(Code::MovImm, RT);
    B.emitMem(Code::LoadAcc, SiteLoadInput, RT, 0, In + Tid);
    // st(cache[tid], Temp); syncthreads.
    B.emitMem(Code::WbStore, sim::NoSite, RT, 0, Cache + Tid);
    B.emit(Code::Barrier);
    if (L != 0) { // if (threadIdx != 0) co_return;
      B.endLane();
      continue;
    }

    // Leader: block reduction over the cache.
    const uint16_t RSum = B.reg();
    B.emit(Code::MovImm, RSum);
    for (unsigned I = 0; I != BlockDim; ++I)
      B.emitMem(Code::LoadAcc, sim::NoSite, RSum, 0,
                Cache + Blk * BlockDim + I);
    B.emitMem(Code::WbStore, SitePartialSt, RSum, 0, Partials + Blk);
    B.builtinFence(BuiltinFences); // The SDK __threadfence().
    const uint16_t RTicket = B.reg();
    B.emitMem(Code::AtomicAddReg, SiteCounterAdd, RTicket, 0, Counter, 1);
    // if (Ticket != gridDim - 1) co_return;
    const uint32_t Br = B.emit(Code::BrNe, RTicket, 0, 0, GridDim - 1);

    // Last block standing combines every partial.
    const uint16_t RTot = B.reg();
    B.emit(Code::MovImm, RTot);
    for (unsigned P = 0; P != GridDim; ++P)
      B.emitMem(Code::LoadAcc, SitePartialLd, RTot, 0, Partials + P);
    B.emitMem(Code::WbStore, SiteOutSt, RTot, 0, Out);
    B.patch(Br, B.size()); // co_return == lane end.
    B.endLane();
  }
}

//===----------------------------------------------------------------------===//
// cub-scan / cub-scan-nf (CubScan.cpp)
//===----------------------------------------------------------------------===//

namespace cubscan {
enum : int {
  SiteInLd = 0,
  SiteAggSt,
  SiteFlagAggSt,
  SiteFlagLd,
  SiteAggLd,
  SiteInclLd,
  SiteInclSt,
  SiteFlagInclSt,
  SiteOutSt
};
constexpr unsigned GridDim = 8, BlockDim = 32, N = GridDim * BlockDim;
constexpr Word FlagEmpty = 0, FlagAgg = 1, FlagIncl = 2;
} // namespace cubscan

void emitCubScan(PlanBuilder &B, bool BuiltinFences) {
  using namespace cubscan;
  const Addr In = B.alloc(N);
  const Addr Cache = B.alloc(N);
  const Addr Aggregates = B.alloc(GridDim);
  const Addr Inclusives = B.alloc(GridDim);
  const Addr Flags = B.alloc(GridDim);
  const Addr Exclusive = B.alloc(GridDim);
  const Addr Out = B.alloc(N);

  for (unsigned Tid = 0; Tid != N; ++Tid) {
    const unsigned Blk = Tid / BlockDim, L = Tid % BlockDim;
    B.beginLane(Tid);

    // Stage the value in the shared-memory cache.
    const uint16_t RV = B.reg();
    B.emitMem(Code::Load, SiteInLd, RV, 0, In + Tid);
    B.emitMem(Code::WbStore, sim::NoSite, RV, 0, Cache + Tid);
    B.emit(Code::Barrier);

    if (L == 0) {
      // Leader: block-local inclusive scan in shared memory.
      const uint16_t RRun = B.reg();
      B.emit(Code::MovImm, RRun);
      for (unsigned I = 0; I != BlockDim; ++I) {
        B.emitMem(Code::LoadAcc, sim::NoSite, RRun, 0,
                  Cache + Blk * BlockDim + I);
        B.emitMem(Code::WbStore, sim::NoSite, RRun, 0,
                  Cache + Blk * BlockDim + I);
      }
      // Handshake 1: publish the block aggregate.
      B.emitMem(Code::WbStore, SiteAggSt, RRun, 0, Aggregates + Blk);
      B.builtinFence(BuiltinFences); // CUB's first __threadfence().
      B.emitMem(Code::Store, SiteFlagAggSt, 0, 0, Flags + Blk, FlagAgg);

      // Decoupled lookback for the exclusive prefix.
      const uint16_t RPrefix = B.reg();
      B.emit(Code::MovImm, RPrefix);
      if (Blk != 0) {
        const uint16_t RJ = B.reg();
        const uint16_t RFlag = B.reg();
        B.emit(Code::MovImm, RJ, 0, 0, Blk - 1);
        const uint32_t Poll = B.size();
        B.emitMem(Code::LoadIdx, SiteFlagLd, RFlag, RJ, Flags);
        const uint32_t BrHave = B.emit(Code::BrNe, RFlag, 0, 0, FlagEmpty);
        B.emit(Code::Sleep, 0, 0, 0, 2); // yield(2) while empty.
        B.emit(Code::Jump, 0, 0, Poll);
        B.patch(BrHave, B.size());
        const uint32_t BrIncl = B.emit(Code::BrEq, RFlag, 0, 0, FlagIncl);
        B.emitMem(Code::LoadAccIdx, SiteAggLd, RPrefix, RJ, Aggregates);
        const uint32_t BrDone = B.emit(Code::BrEq, RJ, 0, 0, 0);
        B.emit(Code::AddImm, RJ, RJ, 0, 0xffffffffu); // --J.
        B.emit(Code::Jump, 0, 0, Poll);
        B.patch(BrIncl, B.size());
        B.emitMem(Code::LoadAccIdx, SiteInclLd, RPrefix, RJ, Inclusives);
        B.patch(BrDone, B.size());
      }
      // Handshake 2: publish the inclusive prefix.
      const uint16_t RIncl = B.reg();
      B.emit(Code::AddRR, RIncl, RPrefix, RRun);
      B.emitMem(Code::WbStore, SiteInclSt, RIncl, 0, Inclusives + Blk);
      B.builtinFence(BuiltinFences); // CUB's second __threadfence().
      B.emitMem(Code::Store, SiteFlagInclSt, 0, 0, Flags + Blk, FlagIncl);
      B.emitMem(Code::WbStore, sim::NoSite, RPrefix, 0, Exclusive + Blk);
    }
    B.emit(Code::Barrier);

    // out[gid] = exclusive[block] + scanned[tid].
    const uint16_t RP = B.reg();
    B.emitMem(Code::Load, sim::NoSite, RP, 0, Exclusive + Blk);
    B.emitMem(Code::LoadAcc, sim::NoSite, RP, 0, Cache + Tid);
    B.emitMem(Code::WbStore, SiteOutSt, RP, 0, Out + Tid);
    B.endLane();
  }
}

//===----------------------------------------------------------------------===//
// cbe-dot (CbeDot.cpp)
//===----------------------------------------------------------------------===//

namespace cbedot {
enum : int {
  SiteLoadInput = 0,
  SiteLockCAS,
  SiteLoadC,
  SiteStoreC,
  SiteUnlockExch
};
constexpr unsigned N = 256, GridDim = 4, BlockDim = 32;
} // namespace cbedot

void emitCbeDot(PlanBuilder &B) {
  using namespace cbedot;
  const Addr A = B.alloc(N);
  const Addr Bv = B.alloc(N);
  const Addr Cache = B.alloc(GridDim * BlockDim);
  const Addr Mutex = B.alloc(1);
  const Addr C = B.alloc(1);
  const unsigned Stride = GridDim * BlockDim; // 128: two iterations.

  for (unsigned Tid = 0; Tid != GridDim * BlockDim; ++Tid) {
    const unsigned Blk = Tid / BlockDim, L = Tid % BlockDim;
    B.beginLane(Tid);

    // Grid-stride partial products: Temp += a[i] * b[i], i in
    // {gid, gid + 128}. The multiply-accumulate folds into the b-load's
    // resume; the scalar body computes it as free code one resume later,
    // which no memory op can observe.
    const uint16_t RA = B.reg();
    const uint16_t RT = B.reg();
    B.emit(Code::MovImm, RT);
    for (unsigned I = Tid; I < N; I += Stride) {
      B.emitMem(Code::Load, SiteLoadInput, RA, 0, A + I);
      B.emitMem(Code::LoadMulAcc, SiteLoadInput, RT, RA, Bv + I);
    }
    B.emitMem(Code::WbStore, sim::NoSite, RT, 0, Cache + Tid);
    B.emit(Code::Barrier);
    if (L != 0) { // if (cacheIndex != 0) co_return;
      B.endLane();
      continue;
    }

    const uint16_t RSum = B.reg();
    B.emit(Code::MovImm, RSum);
    for (unsigned I = 0; I != BlockDim; ++I)
      B.emitMem(Code::LoadAcc, sim::NoSite, RSum, 0,
                Cache + Blk * BlockDim + I);

    // lock(mutex): spin on atomicCAS(mutex, 0, 1) with random backoff.
    const uint16_t RLock = B.reg();
    const uint32_t Spin = B.size();
    B.emitMem(Code::AtomicCas, SiteLockCAS, RLock, 0, Mutex, 1u << 16);
    const uint32_t BrCrit = B.emit(Code::BrEq, RLock, 0, 0, 0);
    B.emit(Code::SleepRand, 0, 0, 1, 3); // yield(1 + rand(3)).
    B.emit(Code::Jump, 0, 0, Spin);
    B.patch(BrCrit, B.size());

    // *c += blockSum; unlock(mutex).
    const uint16_t ROld = B.reg();
    const uint16_t RNew = B.reg();
    B.emitMem(Code::Load, SiteLoadC, ROld, 0, C);
    B.emit(Code::AddRR, RNew, ROld, RSum);
    B.emitMem(Code::WbStore, SiteStoreC, RNew, 0, C);
    B.emitMem(Code::AtomicExch, SiteUnlockExch, 0, 0, Mutex, 0);
    B.endLane();
  }
}

//===----------------------------------------------------------------------===//
// cbe-ht (CbeHashtable.cpp)
//===----------------------------------------------------------------------===//

namespace cbeht {
enum : int {
  SiteLockCAS = 0,
  SiteHeadLd,
  SiteNextSt,
  SiteKeySt,
  SiteHeadSt,
  SiteUnlockExch
};
constexpr unsigned NumBuckets = 8, GridDim = 2, BlockDim = 32;
constexpr unsigned KeysPerThread = 2;
constexpr unsigned NumKeys = GridDim * BlockDim * KeysPerThread;
} // namespace cbeht

void emitCbeHt(PlanBuilder &B) {
  using namespace cbeht;
  const Addr Keys = B.alloc(NumKeys);
  const Addr Heads = B.alloc(NumBuckets);
  const Addr Mutexes = B.alloc(NumBuckets);
  const Addr NodeKeys = B.alloc(NumKeys);
  const Addr NodeNexts = B.alloc(NumKeys);

  for (unsigned Tid = 0; Tid != GridDim * BlockDim; ++Tid) {
    B.beginLane(Tid);
    const uint16_t RKey = B.reg();
    const uint16_t RB = B.reg();
    const uint16_t RLock = B.reg();
    const uint16_t RHead = B.reg();

    for (unsigned I = 0; I != KeysPerThread; ++I) {
      const unsigned NodeIdx = Tid * KeysPerThread + I;
      B.emitMem(Code::Load, sim::NoSite, RKey, 0, Keys + NodeIdx);
      // bucket = (key * 2654435761) % NumBuckets (free, data-dependent).
      B.emit(Code::MulImm, RB, RKey, 0, 2654435761u);
      B.emit(Code::ModImm, RB, RB, 0, NumBuckets);

      // lock(mutexes[bucket]) with random backoff.
      const uint32_t Spin = B.size();
      B.emitMem(Code::AtomicCasIdx, SiteLockCAS, RLock, RB, Mutexes,
                1u << 16);
      const uint32_t BrCrit = B.emit(Code::BrEq, RLock, 0, 0, 0);
      B.emit(Code::SleepRand, 0, 0, 1, 3); // yield(1 + rand(3)).
      B.emit(Code::Jump, 0, 0, Spin);
      B.patch(BrCrit, B.size());

      // Link the node in front of the bucket chain.
      B.emitMem(Code::LoadIdx, SiteHeadLd, RHead, RB, Heads);
      B.emitMem(Code::WbStore, SiteNextSt, RHead, 0, NodeNexts + NodeIdx);
      B.emitMem(Code::WbStore, SiteKeySt, RKey, 0, NodeKeys + NodeIdx);
      B.emitMem(Code::StoreIdx, SiteHeadSt, 0, RB, Heads, NodeIdx);
      B.emitMem(Code::AtomicExchIdx, SiteUnlockExch, 0, RB, Mutexes, 0);
    }
    B.endLane();
  }
}

//===----------------------------------------------------------------------===//
// Compilation + cache
//===----------------------------------------------------------------------===//

uint32_t policyMask(AppKind K, const sim::FencePolicy *Policy) {
  if (!Policy)
    return 0;
  const unsigned NumSites = appNumSites(K);
  assert(NumSites <= 32 && "policy mask too narrow");
  uint32_t Mask = 0;
  for (unsigned S = 0; S != NumSites; ++S)
    if (Policy->fenceAfter(static_cast<int>(S)))
      Mask |= 1u << S;
  return Mask;
}

AppPlan compile(AppKind K, const sim::ChipProfile &Chip, uint32_t Mask) {
  const bool Builtin = appHasBuiltinFences(K) && !isNoFenceVariant(K);
  const uint64_t MaxTicks = makeApp(K)->maxTicks();
  switch (K) {
  case AppKind::SdkRed:
  case AppKind::SdkRedNf: {
    PlanBuilder B(Chip, Mask, sdkred::GridDim, sdkred::BlockDim);
    emitSdkRed(B, Builtin);
    return B.finish(MaxTicks);
  }
  case AppKind::CubScan:
  case AppKind::CubScanNf: {
    PlanBuilder B(Chip, Mask, cubscan::GridDim, cubscan::BlockDim);
    emitCubScan(B, Builtin);
    return B.finish(MaxTicks);
  }
  case AppKind::CbeDot: {
    PlanBuilder B(Chip, Mask, cbedot::GridDim, cbedot::BlockDim);
    emitCbeDot(B);
    return B.finish(MaxTicks);
  }
  case AppKind::CbeHt: {
    PlanBuilder B(Chip, Mask, cbeht::GridDim, cbeht::BlockDim);
    emitCbeHt(B);
    return B.finish(MaxTicks);
  }
  default:
    assert(false && "app does not lower (check appLowerable first)");
    return AppPlan();
  }
}

/// Plan-cache key: everything a plan bakes in. Chips enter through the
/// two fields compilation reads (patch alignment for addresses, the
/// policy fence's base latency), not through identity — two chips that
/// agree on both share a plan correctly.
struct PlanKey {
  AppKind K;
  uint32_t Mask;
  unsigned PatchWords;
  unsigned FenceBase;
  bool operator==(const PlanKey &) const = default;
};

} // namespace

const AppPlan &apps::compileApplication(AppKind K,
                                        const sim::ChipProfile &Chip,
                                        const sim::FencePolicy *Policy) {
  assert(appLowerable(K) && "app does not lower to the batched engine");
  const PlanKey Key{K, policyMask(K, Policy), Chip.PatchSizeWords,
                    Chip.FenceBaseLatency};
  // Worker-local cache, linear scan: campaigns touch a handful of
  // (app, chip) pairs and fence-insertion reductions a few dozen masks.
  thread_local std::vector<std::pair<PlanKey, std::unique_ptr<AppPlan>>>
      Cache;
  for (const auto &[CachedKey, Plan] : Cache)
    if (CachedKey == Key)
      return *Plan;
  Cache.emplace_back(Key,
                     std::make_unique<AppPlan>(compile(K, Chip, Key.Mask)));
  return *Cache.back().second;
}

void apps::runApplicationBatch(sim::ExecutionContext &Ctx, AppKind K,
                               const sim::ChipProfile &Chip,
                               const stress::Environment &Env,
                               const stress::TunedStressParams &Tuned,
                               const sim::FencePolicy *Policy,
                               const uint64_t *Seeds, AppVerdict *Verdicts,
                               size_t N, unsigned BatchWidth) {
  if (N == 0)
    return;
  // Traced / sink-attached contexts observe through the scalar engine's
  // event seam; --engine=scalar forces the coroutine path everywhere.
  const bool Scalar = !appLowerable(K) ||
                      sim::engineMode() == sim::EngineMode::Scalar ||
                      Ctx.tracingRequested() || Ctx.streamingSink();
  if (Scalar) {
    for (size_t J = 0; J != N; ++J)
      Verdicts[J] =
          runApplicationOnce(Ctx, K, Chip, Env, Tuned, Policy, Seeds[J]);
    return;
  }

  const AppPlan &Plan = compileApplication(K, Chip, Policy);
  const unsigned W =
      BatchWidth != 0 ? BatchWidth : sim::defaultBatchWidth();
  const std::unique_ptr<Application> App = makeApp(K);
  sim::BatchScratch &S = Ctx.batchScratch();
  // One SoA register slab serves W runs (striped); every lowering writes
  // each register before reading it, so stripes need no per-run clear.
  S.RegSlab.assign(static_cast<size_t>(W) * Plan.BP.NumSlots, 0);

  sim::BatchRunConfig Cfg;
  Cfg.RandomiseThreads = Env.Randomise;
  Cfg.MaxTicks = Plan.MaxTicks;

  for (size_t J = 0; J != N; ++J) {
    // Per-run draw order is exactly runApplicationOnce's: seed the
    // context, set up the app, fork the environment stream, apply the
    // stress — the batched executor then replaces only Device::run.
    Rng R(Seeds[J]);
    sim::Device Dev(Ctx, Chip, R.next());
    Dev.setSequentialMode(false);
    App->setup(Dev, R);
    assert(Ctx.memory().allocatedWords() == Plan.SetupAllocWords &&
           "allocation layout diverged from the compiled plan");
    Rng EnvRng = R.fork(1);
    const auto Stress = stress::applyEnvironment(Env, Dev, Tuned, EnvRng);
    (void)Stress; // Keeps the congestion source alive through the run.

    Word *Regs = S.RegSlab.data() +
                 static_cast<size_t>(J % W) * Plan.BP.NumSlots;
    const sim::RunResult Result = sim::runBatchProgram(
        Plan.BP, Chip, Ctx.memory(), Ctx.rng(), S, Regs, Cfg);

    if (Result.Status != sim::RunStatus::Completed)
      Verdicts[J] = Result.Status == sim::RunStatus::Timeout
                        ? AppVerdict::Timeout
                        : AppVerdict::SimFault;
    else
      Verdicts[J] = App->checkPostCondition(Dev) ? AppVerdict::Pass
                                                 : AppVerdict::PostCondFail;
  }
}
