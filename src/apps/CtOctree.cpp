//===- apps/CtOctree.cpp - Cederman-Tsigas octree partitioning ----------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// Octree (here: quadtree over 2-D points, the dimensionality is
// inessential) partitioning in the style of Cederman and Tsigas
// [22, ch. 37]: a shared work queue of (point, cell, depth) items is
// consumed by workers that classify each point one level deeper, either
// re-enqueueing it or — at the leaf level — depositing it in its final
// cell. The queue is non-blocking: producers reserve a slot with an atomic
// and then publish payload and ready flag with plain stores.
//
// Weak-memory defect: the ready-flag store can become visible while the
// payload store is still buffered, so a consumer reads a stale payload —
// a particle is misclassified or lost, violating Tab. 4's post-condition
// that all original particles end up in the final octree.
//
//===----------------------------------------------------------------------===//

#include "apps/AppsInternal.h"

#include "sim/ThreadContext.h"

#include <vector>

using namespace gpuwmm;
using namespace gpuwmm::apps;
using sim::Addr;
using sim::Kernel;
using sim::ThreadContext;
using sim::Word;

namespace {

enum Site : int {
  SiteBufSt = 0,  ///< store of the queue payload (the bug).
  SiteReadySt,    ///< store of the slot's ready flag.
  SiteReadyLd,    ///< consumer's poll of the ready flag.
  SiteBufLd,      ///< consumer's load of the payload.
  SiteLeafAdd,    ///< atomicAdd on a leaf cell's occupancy counter.
  NumSites
};

const char *const SiteNames[NumSites] = {
    "enqueue: store buf[slot]",
    "enqueue: store ready[slot]",
    "dequeue: load ready[slot]",
    "dequeue: load buf[slot]",
    "leaf: atomicAdd(cell count)",
};

constexpr unsigned NumPoints = 48;
constexpr unsigned GridDim = 4;
constexpr unsigned BlockDim = 16;
constexpr unsigned MaxDepth = 1;        ///< Items live at depths 0..MaxDepth.
constexpr unsigned TotalPops = NumPoints * (MaxDepth + 1);
constexpr unsigned QueueCap = TotalPops;
constexpr unsigned CoordBits = 8;       ///< Points in [0, 256)^2.
constexpr unsigned LeafCells = 16;      ///< 4^2 cells at depth 2.
constexpr Word EmptySlot = 0xffffffffu;

// Queue items pack (pointIdx:8 | x:8 | y:8 | depth:4 | cell:4... ) — we
// store the point index and depth; coordinates live in a read-only array.
Word packItem(unsigned PointIdx, unsigned Depth) {
  return static_cast<Word>(PointIdx | (Depth << 16));
}
unsigned itemPoint(Word Item) { return Item & 0xffffu; }
unsigned itemDepth(Word Item) { return (Item >> 16) & 0xffu; }

/// The depth-2 leaf cell of a point: two levels of quadrant selection.
unsigned leafCellOf(Word X, Word Y) {
  const unsigned Qx1 = (X >> (CoordBits - 1)) & 1;
  const unsigned Qy1 = (Y >> (CoordBits - 1)) & 1;
  const unsigned Qx2 = (X >> (CoordBits - 2)) & 1;
  const unsigned Qy2 = (Y >> (CoordBits - 2)) & 1;
  return (((Qy1 << 1) | Qx1) << 2) | ((Qy2 << 1) | Qx2);
}

Kernel workerKernel(ThreadContext &Ctx, Addr Xs, Addr Ys, Addr Buf,
                    Addr Ready, Addr Head, Addr Tail, Addr LeafCounts,
                    Addr ErrorFlag) {
  while (true) {
    const Word H = co_await Ctx.atomicAdd(Head, 1);
    if (H >= TotalPops)
      co_return;

    // Wait for the slot's payload to be published. (Awaits stay out of
    // conditions: GCC 12 coroutine bug.)
    for (;;) {
      const Word IsReady = co_await Ctx.ld(Ready + H, SiteReadyLd);
      if (IsReady != 0)
        break;
      co_await Ctx.yield(2 + static_cast<unsigned>(Ctx.rand(3)));
    }
    const Word Item = co_await Ctx.ld(Buf + H, SiteBufLd);

    const unsigned PointIdx = itemPoint(Item);
    if (Item == EmptySlot || PointIdx >= NumPoints) {
      // Stale payload: the out-of-bounds queue access the post-condition
      // (and, on the original code, a crash) would surface.
      co_await Ctx.st(ErrorFlag, 1);
      continue;
    }

    const Word X = co_await Ctx.ld(Xs + PointIdx);
    const Word Y = co_await Ctx.ld(Ys + PointIdx);
    const unsigned Depth = itemDepth(Item);
    if (Depth < MaxDepth) {
      // Push one level deeper: reserve, publish payload, publish flag.
      const Word Slot = co_await Ctx.atomicAdd(Tail, 1);
      if (Slot >= QueueCap) {
        co_await Ctx.st(ErrorFlag, 1);
        continue;
      }
      co_await Ctx.st(Buf + Slot, packItem(PointIdx, Depth + 1), SiteBufSt);
      co_await Ctx.st(Ready + Slot, 1, SiteReadySt);
      continue;
    }
    // Leaf level: deposit the particle in its final cell.
    co_await Ctx.atomicAdd(LeafCounts + leafCellOf(X, Y), 1, SiteLeafAdd);
  }
}

class CtOctree final : public Application {
public:
  const char *name() const override { return "ct-octree"; }
  unsigned numSites() const override { return NumSites; }
  const char *siteName(unsigned Site) const override {
    return SiteNames[Site];
  }

  void setup(sim::Device &Dev, Rng &R) override {
    Xs = Dev.alloc(NumPoints);
    Ys = Dev.alloc(NumPoints);
    Buf = Dev.alloc(QueueCap);
    Ready = Dev.alloc(QueueCap);
    Head = Dev.alloc(1);
    Tail = Dev.alloc(1);
    LeafCounts = Dev.alloc(LeafCells);
    ErrorFlag = Dev.alloc(1);

    ExpectedLeafCounts.assign(LeafCells, 0);
    for (unsigned I = 0; I != NumPoints; ++I) {
      const Word X = static_cast<Word>(R.below(1u << CoordBits));
      const Word Y = static_cast<Word>(R.below(1u << CoordBits));
      Dev.write(Xs + I, X);
      Dev.write(Ys + I, Y);
      ++ExpectedLeafCounts[leafCellOf(X, Y)];
    }
    for (unsigned I = 0; I != QueueCap; ++I) {
      Dev.write(Buf + I, EmptySlot);
      Dev.write(Ready + I, 0);
    }
    // Seed the queue with all points at depth 0.
    for (unsigned I = 0; I != NumPoints; ++I) {
      Dev.write(Buf + I, packItem(I, 0));
      Dev.write(Ready + I, 1);
    }
    Dev.write(Tail, NumPoints);
  }

  bool run(sim::Device &Dev) override {
    const Addr XsV = Xs, YsV = Ys, BufV = Buf, ReadyV = Ready,
               HeadV = Head, TailV = Tail, LeafV = LeafCounts,
               ErrV = ErrorFlag;
    const sim::RunResult Result = Dev.run(
        {GridDim, BlockDim}, [=](ThreadContext &Ctx) -> Kernel {
          return workerKernel(Ctx, XsV, YsV, BufV, ReadyV, HeadV, TailV,
                              LeafV, ErrV);
        });
    return Result.completed();
  }

  bool checkPostCondition(const sim::Device &Dev) const override {
    if (Dev.read(ErrorFlag) != 0)
      return false;
    for (unsigned C = 0; C != LeafCells; ++C)
      if (Dev.read(LeafCounts + C) != ExpectedLeafCounts[C])
        return false;
    return true;
  }

private:
  Addr Xs = 0, Ys = 0, Buf = 0, Ready = 0, Head = 0, Tail = 0,
       LeafCounts = 0, ErrorFlag = 0;
  std::vector<Word> ExpectedLeafCounts;
};

} // namespace

std::unique_ptr<Application> apps::detail::makeCtOctree() {
  return std::make_unique<CtOctree>();
}
