//===- harness/EnvironmentRunner.h - Tab. 5 experiment driver ---*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the paper's Sec. 4 experiment: execute an application repeatedly
/// under a testing environment and record how often erroneous runs
/// (post-condition failures, timeouts, faults) occur. An environment is
/// "effective" for a chip/application pair when errors appear in more than
/// 5% of executions.
///
/// Every execution's seed is derived from (cell seed, run index) via
/// Rng::deriveStream, so runs are independent cells of an index space and
/// can execute on a ThreadPool with results bit-identical to serial
/// execution (DESIGN.md Sec. 11).
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_HARNESS_ENVIRONMENTRUNNER_H
#define GPUWMM_HARNESS_ENVIRONMENTRUNNER_H

#include "apps/Application.h"
#include "stress/Environment.h"
#include "support/ThreadPool.h"

namespace gpuwmm {
namespace harness {

/// Error statistics for one (chip, application, environment) cell.
struct CellResult {
  unsigned Runs = 0;
  unsigned Errors = 0;   ///< All erroneous runs (including timeouts).
  unsigned Timeouts = 0; ///< Runs that exceeded the tick budget.

  /// Any erroneous run observed?
  bool observed() const { return Errors > 0; }

  /// The paper's effectiveness threshold: errors in more than 5% of runs.
  bool effective() const {
    return Runs != 0 &&
           static_cast<double>(Errors) > 0.05 * static_cast<double>(Runs);
  }

  double errorRate() const {
    return Runs == 0 ? 0.0
                     : static_cast<double>(Errors) /
                           static_cast<double>(Runs);
  }

  bool operator==(const CellResult &O) const {
    return Runs == O.Runs && Errors == O.Errors && Timeouts == O.Timeouts;
  }
};

/// Summary over the ten applications for one (chip, environment) pair, as
/// presented in Tab. 5's "a/b" cells.
struct EnvironmentSummary {
  unsigned AppsWithErrors = 0; ///< b: applications with any erroneous run.
  unsigned AppsEffective = 0;  ///< a: applications above the 5% threshold.

  bool operator==(const EnvironmentSummary &O) const {
    return AppsWithErrors == O.AppsWithErrors &&
           AppsEffective == O.AppsEffective;
  }
};

/// Runs \p Runs executions of one cell. Fences are as shipped: no inserted
/// fences; built-in fences enabled unless the app is a -nf variant. Run I
/// executes with seed deriveStream(Seed, I); when \p Pool is non-null the
/// runs are distributed over it (same result for any job count).
CellResult runCell(apps::AppKind App, const sim::ChipProfile &Chip,
                   const stress::Environment &Env,
                   const stress::TunedStressParams &Tuned, unsigned Runs,
                   uint64_t Seed, ThreadPool *Pool = nullptr);

/// Runs a full Tab. 5 row cell: all ten applications for one
/// (chip, environment) pair. Application A's cell runs with seed
/// deriveStream(Seed, index of A in AllAppKinds); the (app, run) index
/// space is flattened so a pool is kept busy across app boundaries.
EnvironmentSummary
runEnvironmentSummary(const sim::ChipProfile &Chip,
                      const stress::Environment &Env,
                      const stress::TunedStressParams &Tuned, unsigned Runs,
                      uint64_t Seed, ThreadPool *Pool = nullptr);

} // namespace harness
} // namespace gpuwmm

#endif // GPUWMM_HARNESS_ENVIRONMENTRUNNER_H
