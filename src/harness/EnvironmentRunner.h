//===- harness/EnvironmentRunner.h - Tab. 5 experiment driver ---*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the paper's Sec. 4 experiment: execute an application repeatedly
/// under a testing environment and record how often erroneous runs
/// (post-condition failures, timeouts, faults) occur. An environment is
/// "effective" for a chip/application pair when errors appear in more than
/// 5% of executions.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_HARNESS_ENVIRONMENTRUNNER_H
#define GPUWMM_HARNESS_ENVIRONMENTRUNNER_H

#include "apps/Application.h"
#include "stress/Environment.h"

namespace gpuwmm {
namespace harness {

/// Error statistics for one (chip, application, environment) cell.
struct CellResult {
  unsigned Runs = 0;
  unsigned Errors = 0;   ///< All erroneous runs (including timeouts).
  unsigned Timeouts = 0; ///< Runs that exceeded the tick budget.

  /// Any erroneous run observed?
  bool observed() const { return Errors > 0; }

  /// The paper's effectiveness threshold: errors in more than 5% of runs.
  bool effective() const {
    return Runs != 0 &&
           static_cast<double>(Errors) > 0.05 * static_cast<double>(Runs);
  }

  double errorRate() const {
    return Runs == 0 ? 0.0
                     : static_cast<double>(Errors) /
                           static_cast<double>(Runs);
  }
};

/// Summary over the ten applications for one (chip, environment) pair, as
/// presented in Tab. 5's "a/b" cells.
struct EnvironmentSummary {
  unsigned AppsWithErrors = 0; ///< b: applications with any erroneous run.
  unsigned AppsEffective = 0;  ///< a: applications above the 5% threshold.
};

/// Runs \p Runs executions of one cell. Fences are as shipped: no inserted
/// fences; built-in fences enabled unless the app is a -nf variant.
CellResult runCell(apps::AppKind App, const sim::ChipProfile &Chip,
                   const stress::Environment &Env,
                   const stress::TunedStressParams &Tuned, unsigned Runs,
                   uint64_t Seed);

/// Runs a full Tab. 5 row cell: all ten applications for one
/// (chip, environment) pair.
EnvironmentSummary
runEnvironmentSummary(const sim::ChipProfile &Chip,
                      const stress::Environment &Env,
                      const stress::TunedStressParams &Tuned, unsigned Runs,
                      uint64_t Seed);

} // namespace harness
} // namespace gpuwmm

#endif // GPUWMM_HARNESS_ENVIRONMENTRUNNER_H
